file(REMOVE_RECURSE
  "CMakeFiles/offline_analyzer.dir/offline_analyzer.cpp.o"
  "CMakeFiles/offline_analyzer.dir/offline_analyzer.cpp.o.d"
  "offline_analyzer"
  "offline_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
