# Empty compiler generated dependencies file for offline_analyzer.
# This may be replaced when dependencies are built.
