# Empty dependencies file for mytracks_usefree.
# This may be replaced when dependencies are built.
