file(REMOVE_RECURSE
  "CMakeFiles/mytracks_usefree.dir/mytracks_usefree.cpp.o"
  "CMakeFiles/mytracks_usefree.dir/mytracks_usefree.cpp.o.d"
  "mytracks_usefree"
  "mytracks_usefree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mytracks_usefree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
