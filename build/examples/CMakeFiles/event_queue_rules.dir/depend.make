# Empty dependencies file for event_queue_rules.
# This may be replaced when dependencies are built.
