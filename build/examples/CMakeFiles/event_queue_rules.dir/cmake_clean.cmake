file(REMOVE_RECURSE
  "CMakeFiles/event_queue_rules.dir/event_queue_rules.cpp.o"
  "CMakeFiles/event_queue_rules.dir/event_queue_rules.cpp.o.d"
  "event_queue_rules"
  "event_queue_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_queue_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
