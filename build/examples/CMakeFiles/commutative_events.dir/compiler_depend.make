# Empty compiler generated dependencies file for commutative_events.
# This may be replaced when dependencies are built.
