file(REMOVE_RECURSE
  "CMakeFiles/commutative_events.dir/commutative_events.cpp.o"
  "CMakeFiles/commutative_events.dir/commutative_events.cpp.o.d"
  "commutative_events"
  "commutative_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commutative_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
