
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/commutative_events.cpp" "examples/CMakeFiles/commutative_events.dir/commutative_events.cpp.o" "gcc" "examples/CMakeFiles/commutative_events.dir/commutative_events.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cafa/CMakeFiles/cafa.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cafa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/cafa_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/cafa_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/cafa_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cafa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cafa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cafa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
