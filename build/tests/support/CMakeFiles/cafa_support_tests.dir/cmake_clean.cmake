file(REMOVE_RECURSE
  "CMakeFiles/cafa_support_tests.dir/BitVecTest.cpp.o"
  "CMakeFiles/cafa_support_tests.dir/BitVecTest.cpp.o.d"
  "CMakeFiles/cafa_support_tests.dir/SupportTest.cpp.o"
  "CMakeFiles/cafa_support_tests.dir/SupportTest.cpp.o.d"
  "cafa_support_tests"
  "cafa_support_tests.pdb"
  "cafa_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
