# Empty compiler generated dependencies file for cafa_support_tests.
# This may be replaced when dependencies are built.
