file(REMOVE_RECURSE
  "CMakeFiles/cafa_ir_tests.dir/IrTest.cpp.o"
  "CMakeFiles/cafa_ir_tests.dir/IrTest.cpp.o.d"
  "cafa_ir_tests"
  "cafa_ir_tests.pdb"
  "cafa_ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
