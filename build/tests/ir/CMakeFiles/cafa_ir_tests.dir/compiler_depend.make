# Empty compiler generated dependencies file for cafa_ir_tests.
# This may be replaced when dependencies are built.
