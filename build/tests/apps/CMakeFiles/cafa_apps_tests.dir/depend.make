# Empty dependencies file for cafa_apps_tests.
# This may be replaced when dependencies are built.
