file(REMOVE_RECURSE
  "CMakeFiles/cafa_apps_tests.dir/AppKitTest.cpp.o"
  "CMakeFiles/cafa_apps_tests.dir/AppKitTest.cpp.o.d"
  "CMakeFiles/cafa_apps_tests.dir/AppsTest.cpp.o"
  "CMakeFiles/cafa_apps_tests.dir/AppsTest.cpp.o.d"
  "cafa_apps_tests"
  "cafa_apps_tests.pdb"
  "cafa_apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
