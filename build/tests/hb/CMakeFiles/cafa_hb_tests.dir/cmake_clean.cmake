file(REMOVE_RECURSE
  "CMakeFiles/cafa_hb_tests.dir/DotExportTest.cpp.o"
  "CMakeFiles/cafa_hb_tests.dir/DotExportTest.cpp.o.d"
  "CMakeFiles/cafa_hb_tests.dir/Fig4Test.cpp.o"
  "CMakeFiles/cafa_hb_tests.dir/Fig4Test.cpp.o.d"
  "CMakeFiles/cafa_hb_tests.dir/HbGraphTest.cpp.o"
  "CMakeFiles/cafa_hb_tests.dir/HbGraphTest.cpp.o.d"
  "CMakeFiles/cafa_hb_tests.dir/HbIndexTest.cpp.o"
  "CMakeFiles/cafa_hb_tests.dir/HbIndexTest.cpp.o.d"
  "CMakeFiles/cafa_hb_tests.dir/ReachabilityTest.cpp.o"
  "CMakeFiles/cafa_hb_tests.dir/ReachabilityTest.cpp.o.d"
  "cafa_hb_tests"
  "cafa_hb_tests.pdb"
  "cafa_hb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_hb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
