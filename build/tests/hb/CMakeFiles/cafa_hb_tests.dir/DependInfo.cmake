
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hb/DotExportTest.cpp" "tests/hb/CMakeFiles/cafa_hb_tests.dir/DotExportTest.cpp.o" "gcc" "tests/hb/CMakeFiles/cafa_hb_tests.dir/DotExportTest.cpp.o.d"
  "/root/repo/tests/hb/Fig4Test.cpp" "tests/hb/CMakeFiles/cafa_hb_tests.dir/Fig4Test.cpp.o" "gcc" "tests/hb/CMakeFiles/cafa_hb_tests.dir/Fig4Test.cpp.o.d"
  "/root/repo/tests/hb/HbGraphTest.cpp" "tests/hb/CMakeFiles/cafa_hb_tests.dir/HbGraphTest.cpp.o" "gcc" "tests/hb/CMakeFiles/cafa_hb_tests.dir/HbGraphTest.cpp.o.d"
  "/root/repo/tests/hb/HbIndexTest.cpp" "tests/hb/CMakeFiles/cafa_hb_tests.dir/HbIndexTest.cpp.o" "gcc" "tests/hb/CMakeFiles/cafa_hb_tests.dir/HbIndexTest.cpp.o.d"
  "/root/repo/tests/hb/ReachabilityTest.cpp" "tests/hb/CMakeFiles/cafa_hb_tests.dir/ReachabilityTest.cpp.o" "gcc" "tests/hb/CMakeFiles/cafa_hb_tests.dir/ReachabilityTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cafa/CMakeFiles/cafa.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cafa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/cafa_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/cafa_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/cafa_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cafa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cafa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cafa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
