# Empty compiler generated dependencies file for cafa_hb_tests.
# This may be replaced when dependencies are built.
