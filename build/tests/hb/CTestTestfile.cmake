# CMake generated Testfile for 
# Source directory: /root/repo/tests/hb
# Build directory: /root/repo/build/tests/hb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hb/cafa_hb_tests[1]_include.cmake")
