# Empty dependencies file for cafa_integration_tests.
# This may be replaced when dependencies are built.
