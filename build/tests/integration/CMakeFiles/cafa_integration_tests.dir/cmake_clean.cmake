file(REMOVE_RECURSE
  "CMakeFiles/cafa_integration_tests.dir/PipelineTest.cpp.o"
  "CMakeFiles/cafa_integration_tests.dir/PipelineTest.cpp.o.d"
  "CMakeFiles/cafa_integration_tests.dir/ReportJsonTest.cpp.o"
  "CMakeFiles/cafa_integration_tests.dir/ReportJsonTest.cpp.o.d"
  "CMakeFiles/cafa_integration_tests.dir/SmokeTest.cpp.o"
  "CMakeFiles/cafa_integration_tests.dir/SmokeTest.cpp.o.d"
  "cafa_integration_tests"
  "cafa_integration_tests.pdb"
  "cafa_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
