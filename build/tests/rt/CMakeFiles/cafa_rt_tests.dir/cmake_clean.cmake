file(REMOVE_RECURSE
  "CMakeFiles/cafa_rt_tests.dir/ObjectHeapTest.cpp.o"
  "CMakeFiles/cafa_rt_tests.dir/ObjectHeapTest.cpp.o.d"
  "CMakeFiles/cafa_rt_tests.dir/PipesAndTimeTest.cpp.o"
  "CMakeFiles/cafa_rt_tests.dir/PipesAndTimeTest.cpp.o.d"
  "CMakeFiles/cafa_rt_tests.dir/RuntimeFuzzTest.cpp.o"
  "CMakeFiles/cafa_rt_tests.dir/RuntimeFuzzTest.cpp.o.d"
  "CMakeFiles/cafa_rt_tests.dir/RuntimeTest.cpp.o"
  "CMakeFiles/cafa_rt_tests.dir/RuntimeTest.cpp.o.d"
  "cafa_rt_tests"
  "cafa_rt_tests.pdb"
  "cafa_rt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_rt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
