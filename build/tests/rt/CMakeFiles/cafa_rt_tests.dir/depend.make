# Empty dependencies file for cafa_rt_tests.
# This may be replaced when dependencies are built.
