# CMake generated Testfile for 
# Source directory: /root/repo/tests/rt
# Build directory: /root/repo/build/tests/rt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rt/cafa_rt_tests[1]_include.cmake")
