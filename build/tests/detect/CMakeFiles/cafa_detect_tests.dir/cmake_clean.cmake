file(REMOVE_RECURSE
  "CMakeFiles/cafa_detect_tests.dir/AccessesTest.cpp.o"
  "CMakeFiles/cafa_detect_tests.dir/AccessesTest.cpp.o.d"
  "CMakeFiles/cafa_detect_tests.dir/BaselinesTest.cpp.o"
  "CMakeFiles/cafa_detect_tests.dir/BaselinesTest.cpp.o.d"
  "CMakeFiles/cafa_detect_tests.dir/DerefDataflowTest.cpp.o"
  "CMakeFiles/cafa_detect_tests.dir/DerefDataflowTest.cpp.o.d"
  "CMakeFiles/cafa_detect_tests.dir/IfGuardTest.cpp.o"
  "CMakeFiles/cafa_detect_tests.dir/IfGuardTest.cpp.o.d"
  "CMakeFiles/cafa_detect_tests.dir/UseFreeDetectorTest.cpp.o"
  "CMakeFiles/cafa_detect_tests.dir/UseFreeDetectorTest.cpp.o.d"
  "cafa_detect_tests"
  "cafa_detect_tests.pdb"
  "cafa_detect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_detect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
