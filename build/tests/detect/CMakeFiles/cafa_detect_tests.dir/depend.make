# Empty dependencies file for cafa_detect_tests.
# This may be replaced when dependencies are built.
