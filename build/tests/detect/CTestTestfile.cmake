# CMake generated Testfile for 
# Source directory: /root/repo/tests/detect
# Build directory: /root/repo/build/tests/detect
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/detect/cafa_detect_tests[1]_include.cmake")
