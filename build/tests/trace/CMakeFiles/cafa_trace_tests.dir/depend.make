# Empty dependencies file for cafa_trace_tests.
# This may be replaced when dependencies are built.
