file(REMOVE_RECURSE
  "CMakeFiles/cafa_trace_tests.dir/TraceBuilderTest.cpp.o"
  "CMakeFiles/cafa_trace_tests.dir/TraceBuilderTest.cpp.o.d"
  "CMakeFiles/cafa_trace_tests.dir/TraceIOTest.cpp.o"
  "CMakeFiles/cafa_trace_tests.dir/TraceIOTest.cpp.o.d"
  "CMakeFiles/cafa_trace_tests.dir/TraceTest.cpp.o"
  "CMakeFiles/cafa_trace_tests.dir/TraceTest.cpp.o.d"
  "CMakeFiles/cafa_trace_tests.dir/ValidateTest.cpp.o"
  "CMakeFiles/cafa_trace_tests.dir/ValidateTest.cpp.o.d"
  "cafa_trace_tests"
  "cafa_trace_tests.pdb"
  "cafa_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
