file(REMOVE_RECURSE
  "CMakeFiles/ablation_reachability.dir/ablation_reachability.cpp.o"
  "CMakeFiles/ablation_reachability.dir/ablation_reachability.cpp.o.d"
  "ablation_reachability"
  "ablation_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
