# Empty dependencies file for ablation_reachability.
# This may be replaced when dependencies are built.
