# Empty compiler generated dependencies file for naive_vs_cafa.
# This may be replaced when dependencies are built.
