file(REMOVE_RECURSE
  "CMakeFiles/naive_vs_cafa.dir/naive_vs_cafa.cpp.o"
  "CMakeFiles/naive_vs_cafa.dir/naive_vs_cafa.cpp.o.d"
  "naive_vs_cafa"
  "naive_vs_cafa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_vs_cafa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
