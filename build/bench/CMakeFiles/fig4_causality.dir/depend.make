# Empty dependencies file for fig4_causality.
# This may be replaced when dependencies are built.
