file(REMOVE_RECURSE
  "CMakeFiles/fig4_causality.dir/fig4_causality.cpp.o"
  "CMakeFiles/fig4_causality.dir/fig4_causality.cpp.o.d"
  "fig4_causality"
  "fig4_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
