# Empty compiler generated dependencies file for ablation_deref_matching.
# This may be replaced when dependencies are built.
