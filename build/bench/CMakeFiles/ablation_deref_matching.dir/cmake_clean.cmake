file(REMOVE_RECURSE
  "CMakeFiles/ablation_deref_matching.dir/ablation_deref_matching.cpp.o"
  "CMakeFiles/ablation_deref_matching.dir/ablation_deref_matching.cpp.o.d"
  "ablation_deref_matching"
  "ablation_deref_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deref_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
