file(REMOVE_RECURSE
  "CMakeFiles/table1_races.dir/table1_races.cpp.o"
  "CMakeFiles/table1_races.dir/table1_races.cpp.o.d"
  "table1_races"
  "table1_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
