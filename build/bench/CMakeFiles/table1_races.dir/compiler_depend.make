# Empty compiler generated dependencies file for table1_races.
# This may be replaced when dependencies are built.
