# Empty dependencies file for offline_scaling.
# This may be replaced when dependencies are built.
