file(REMOVE_RECURSE
  "CMakeFiles/offline_scaling.dir/offline_scaling.cpp.o"
  "CMakeFiles/offline_scaling.dir/offline_scaling.cpp.o.d"
  "offline_scaling"
  "offline_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
