# Empty compiler generated dependencies file for cafa_rt.
# This may be replaced when dependencies are built.
