file(REMOVE_RECURSE
  "libcafa_rt.a"
)
