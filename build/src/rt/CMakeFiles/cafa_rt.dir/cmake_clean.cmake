file(REMOVE_RECURSE
  "CMakeFiles/cafa_rt.dir/Runtime.cpp.o"
  "CMakeFiles/cafa_rt.dir/Runtime.cpp.o.d"
  "libcafa_rt.a"
  "libcafa_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
