file(REMOVE_RECURSE
  "libcafa_apps.a"
)
