
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/AppKit.cpp" "src/apps/CMakeFiles/cafa_apps.dir/AppKit.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/AppKit.cpp.o.d"
  "/root/repo/src/apps/Browser.cpp" "src/apps/CMakeFiles/cafa_apps.dir/Browser.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/Browser.cpp.o.d"
  "/root/repo/src/apps/Camera.cpp" "src/apps/CMakeFiles/cafa_apps.dir/Camera.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/Camera.cpp.o.d"
  "/root/repo/src/apps/ConnectBot.cpp" "src/apps/CMakeFiles/cafa_apps.dir/ConnectBot.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/ConnectBot.cpp.o.d"
  "/root/repo/src/apps/FBReader.cpp" "src/apps/CMakeFiles/cafa_apps.dir/FBReader.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/FBReader.cpp.o.d"
  "/root/repo/src/apps/Firefox.cpp" "src/apps/CMakeFiles/cafa_apps.dir/Firefox.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/Firefox.cpp.o.d"
  "/root/repo/src/apps/Music.cpp" "src/apps/CMakeFiles/cafa_apps.dir/Music.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/Music.cpp.o.d"
  "/root/repo/src/apps/MyTracks.cpp" "src/apps/CMakeFiles/cafa_apps.dir/MyTracks.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/MyTracks.cpp.o.d"
  "/root/repo/src/apps/Registry.cpp" "src/apps/CMakeFiles/cafa_apps.dir/Registry.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/Registry.cpp.o.d"
  "/root/repo/src/apps/ToDoList.cpp" "src/apps/CMakeFiles/cafa_apps.dir/ToDoList.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/ToDoList.cpp.o.d"
  "/root/repo/src/apps/Vlc.cpp" "src/apps/CMakeFiles/cafa_apps.dir/Vlc.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/Vlc.cpp.o.d"
  "/root/repo/src/apps/ZXing.cpp" "src/apps/CMakeFiles/cafa_apps.dir/ZXing.cpp.o" "gcc" "src/apps/CMakeFiles/cafa_apps.dir/ZXing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/cafa_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cafa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/cafa_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cafa_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/cafa_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cafa_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
