# Empty dependencies file for cafa_apps.
# This may be replaced when dependencies are built.
