file(REMOVE_RECURSE
  "CMakeFiles/cafa_apps.dir/AppKit.cpp.o"
  "CMakeFiles/cafa_apps.dir/AppKit.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/Browser.cpp.o"
  "CMakeFiles/cafa_apps.dir/Browser.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/Camera.cpp.o"
  "CMakeFiles/cafa_apps.dir/Camera.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/ConnectBot.cpp.o"
  "CMakeFiles/cafa_apps.dir/ConnectBot.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/FBReader.cpp.o"
  "CMakeFiles/cafa_apps.dir/FBReader.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/Firefox.cpp.o"
  "CMakeFiles/cafa_apps.dir/Firefox.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/Music.cpp.o"
  "CMakeFiles/cafa_apps.dir/Music.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/MyTracks.cpp.o"
  "CMakeFiles/cafa_apps.dir/MyTracks.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/Registry.cpp.o"
  "CMakeFiles/cafa_apps.dir/Registry.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/ToDoList.cpp.o"
  "CMakeFiles/cafa_apps.dir/ToDoList.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/Vlc.cpp.o"
  "CMakeFiles/cafa_apps.dir/Vlc.cpp.o.d"
  "CMakeFiles/cafa_apps.dir/ZXing.cpp.o"
  "CMakeFiles/cafa_apps.dir/ZXing.cpp.o.d"
  "libcafa_apps.a"
  "libcafa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
