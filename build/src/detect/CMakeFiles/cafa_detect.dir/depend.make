# Empty dependencies file for cafa_detect.
# This may be replaced when dependencies are built.
