
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/Accesses.cpp" "src/detect/CMakeFiles/cafa_detect.dir/Accesses.cpp.o" "gcc" "src/detect/CMakeFiles/cafa_detect.dir/Accesses.cpp.o.d"
  "/root/repo/src/detect/Baselines.cpp" "src/detect/CMakeFiles/cafa_detect.dir/Baselines.cpp.o" "gcc" "src/detect/CMakeFiles/cafa_detect.dir/Baselines.cpp.o.d"
  "/root/repo/src/detect/DerefDataflow.cpp" "src/detect/CMakeFiles/cafa_detect.dir/DerefDataflow.cpp.o" "gcc" "src/detect/CMakeFiles/cafa_detect.dir/DerefDataflow.cpp.o.d"
  "/root/repo/src/detect/GroundTruth.cpp" "src/detect/CMakeFiles/cafa_detect.dir/GroundTruth.cpp.o" "gcc" "src/detect/CMakeFiles/cafa_detect.dir/GroundTruth.cpp.o.d"
  "/root/repo/src/detect/RaceReport.cpp" "src/detect/CMakeFiles/cafa_detect.dir/RaceReport.cpp.o" "gcc" "src/detect/CMakeFiles/cafa_detect.dir/RaceReport.cpp.o.d"
  "/root/repo/src/detect/UseFreeDetector.cpp" "src/detect/CMakeFiles/cafa_detect.dir/UseFreeDetector.cpp.o" "gcc" "src/detect/CMakeFiles/cafa_detect.dir/UseFreeDetector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hb/CMakeFiles/cafa_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cafa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cafa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
