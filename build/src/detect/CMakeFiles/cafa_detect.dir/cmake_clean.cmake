file(REMOVE_RECURSE
  "CMakeFiles/cafa_detect.dir/Accesses.cpp.o"
  "CMakeFiles/cafa_detect.dir/Accesses.cpp.o.d"
  "CMakeFiles/cafa_detect.dir/Baselines.cpp.o"
  "CMakeFiles/cafa_detect.dir/Baselines.cpp.o.d"
  "CMakeFiles/cafa_detect.dir/DerefDataflow.cpp.o"
  "CMakeFiles/cafa_detect.dir/DerefDataflow.cpp.o.d"
  "CMakeFiles/cafa_detect.dir/GroundTruth.cpp.o"
  "CMakeFiles/cafa_detect.dir/GroundTruth.cpp.o.d"
  "CMakeFiles/cafa_detect.dir/RaceReport.cpp.o"
  "CMakeFiles/cafa_detect.dir/RaceReport.cpp.o.d"
  "CMakeFiles/cafa_detect.dir/UseFreeDetector.cpp.o"
  "CMakeFiles/cafa_detect.dir/UseFreeDetector.cpp.o.d"
  "libcafa_detect.a"
  "libcafa_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
