file(REMOVE_RECURSE
  "libcafa_detect.a"
)
