file(REMOVE_RECURSE
  "CMakeFiles/cafa_ir.dir/Disasm.cpp.o"
  "CMakeFiles/cafa_ir.dir/Disasm.cpp.o.d"
  "CMakeFiles/cafa_ir.dir/Instr.cpp.o"
  "CMakeFiles/cafa_ir.dir/Instr.cpp.o.d"
  "CMakeFiles/cafa_ir.dir/IrBuilder.cpp.o"
  "CMakeFiles/cafa_ir.dir/IrBuilder.cpp.o.d"
  "CMakeFiles/cafa_ir.dir/Module.cpp.o"
  "CMakeFiles/cafa_ir.dir/Module.cpp.o.d"
  "CMakeFiles/cafa_ir.dir/Verifier.cpp.o"
  "CMakeFiles/cafa_ir.dir/Verifier.cpp.o.d"
  "libcafa_ir.a"
  "libcafa_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
