# Empty dependencies file for cafa_ir.
# This may be replaced when dependencies are built.
