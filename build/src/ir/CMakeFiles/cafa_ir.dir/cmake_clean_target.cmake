file(REMOVE_RECURSE
  "libcafa_ir.a"
)
