file(REMOVE_RECURSE
  "CMakeFiles/cafa_support.dir/BitVec.cpp.o"
  "CMakeFiles/cafa_support.dir/BitVec.cpp.o.d"
  "CMakeFiles/cafa_support.dir/Format.cpp.o"
  "CMakeFiles/cafa_support.dir/Format.cpp.o.d"
  "CMakeFiles/cafa_support.dir/Status.cpp.o"
  "CMakeFiles/cafa_support.dir/Status.cpp.o.d"
  "CMakeFiles/cafa_support.dir/StringInterner.cpp.o"
  "CMakeFiles/cafa_support.dir/StringInterner.cpp.o.d"
  "CMakeFiles/cafa_support.dir/Timer.cpp.o"
  "CMakeFiles/cafa_support.dir/Timer.cpp.o.d"
  "libcafa_support.a"
  "libcafa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
