file(REMOVE_RECURSE
  "libcafa_support.a"
)
