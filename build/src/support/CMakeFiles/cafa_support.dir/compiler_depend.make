# Empty compiler generated dependencies file for cafa_support.
# This may be replaced when dependencies are built.
