file(REMOVE_RECURSE
  "libcafa_hb.a"
)
