file(REMOVE_RECURSE
  "CMakeFiles/cafa_hb.dir/DotExport.cpp.o"
  "CMakeFiles/cafa_hb.dir/DotExport.cpp.o.d"
  "CMakeFiles/cafa_hb.dir/HbGraph.cpp.o"
  "CMakeFiles/cafa_hb.dir/HbGraph.cpp.o.d"
  "CMakeFiles/cafa_hb.dir/HbIndex.cpp.o"
  "CMakeFiles/cafa_hb.dir/HbIndex.cpp.o.d"
  "CMakeFiles/cafa_hb.dir/Reachability.cpp.o"
  "CMakeFiles/cafa_hb.dir/Reachability.cpp.o.d"
  "libcafa_hb.a"
  "libcafa_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
