# Empty compiler generated dependencies file for cafa_hb.
# This may be replaced when dependencies are built.
