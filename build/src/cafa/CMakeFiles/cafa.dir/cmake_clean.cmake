file(REMOVE_RECURSE
  "CMakeFiles/cafa.dir/Cafa.cpp.o"
  "CMakeFiles/cafa.dir/Cafa.cpp.o.d"
  "CMakeFiles/cafa.dir/Fig4.cpp.o"
  "CMakeFiles/cafa.dir/Fig4.cpp.o.d"
  "CMakeFiles/cafa.dir/ReportJson.cpp.o"
  "CMakeFiles/cafa.dir/ReportJson.cpp.o.d"
  "libcafa.a"
  "libcafa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
