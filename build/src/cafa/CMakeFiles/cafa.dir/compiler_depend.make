# Empty compiler generated dependencies file for cafa.
# This may be replaced when dependencies are built.
