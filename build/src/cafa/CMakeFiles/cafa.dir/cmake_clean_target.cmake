file(REMOVE_RECURSE
  "libcafa.a"
)
