file(REMOVE_RECURSE
  "CMakeFiles/cafa_trace.dir/LoggerDevice.cpp.o"
  "CMakeFiles/cafa_trace.dir/LoggerDevice.cpp.o.d"
  "CMakeFiles/cafa_trace.dir/Trace.cpp.o"
  "CMakeFiles/cafa_trace.dir/Trace.cpp.o.d"
  "CMakeFiles/cafa_trace.dir/TraceBuilder.cpp.o"
  "CMakeFiles/cafa_trace.dir/TraceBuilder.cpp.o.d"
  "CMakeFiles/cafa_trace.dir/TraceIO.cpp.o"
  "CMakeFiles/cafa_trace.dir/TraceIO.cpp.o.d"
  "CMakeFiles/cafa_trace.dir/TraceRecordNames.cpp.o"
  "CMakeFiles/cafa_trace.dir/TraceRecordNames.cpp.o.d"
  "CMakeFiles/cafa_trace.dir/TraceStats.cpp.o"
  "CMakeFiles/cafa_trace.dir/TraceStats.cpp.o.d"
  "CMakeFiles/cafa_trace.dir/Validate.cpp.o"
  "CMakeFiles/cafa_trace.dir/Validate.cpp.o.d"
  "libcafa_trace.a"
  "libcafa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
