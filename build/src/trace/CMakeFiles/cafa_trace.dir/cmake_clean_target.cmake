file(REMOVE_RECURSE
  "libcafa_trace.a"
)
