# Empty dependencies file for cafa_trace.
# This may be replaced when dependencies are built.
