//===- tests/confirm/ConfirmTest.cpp ------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The confirmation subsystem's contract: a seeded use-free race is
// reproduced as an actual crash at the predicted dereference site by a
// synthesized free-before-use schedule; claims that violate program
// order or happens-before come back infeasible without running a single
// replay; the schedule budget resolves request > environment > default;
// and the whole summary is byte-identical at every worker-thread count.
//
//===----------------------------------------------------------------------===//

#include "confirm/Confirm.h"

#include "apps/AppKit.h"
#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "hb/HbIndex.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// Renders a summary to bytes so two runs can be diffed with a single
/// string comparison (verdict, evidence, and budget accounting).
std::string serializeSummary(const ConfirmSummary &Sum) {
  std::ostringstream OS;
  OS << Sum.Confirmed << '/' << Sum.Infeasible << '/' << Sum.Unconfirmed
     << '/' << Sum.SchedulesRun << '\n';
  for (const RaceConfirmation &C : Sum.PerRace)
    OS << static_cast<int>(C.Verdict) << ' ' << C.SchedulesTried << ' '
       << C.Detail << '\n';
  return OS.str();
}

/// One seeded intra-thread race, analyzed: the canonical fixture.
struct RacyFixture {
  AppModel Model;
  Trace T;
  AnalysisResult R;
};

RacyFixture makeRacyFixture() {
  AppBuilder App("confirmfix");
  App.seedIntraThreadRace("staleSession");
  Table1Row Dummy;
  RacyFixture F;
  F.Model = App.finish(Dummy);
  F.T = runScenario(F.Model.S, RuntimeOptions());
  F.R = analyzeTrace(F.T, DetectorOptions());
  return F;
}

TEST(ConfirmTest, ResolveBoundPrecedence) {
  const char *Ambient = std::getenv("CAFA_CONFIRM");
  std::string Saved = Ambient ? Ambient : "";
  ::unsetenv("CAFA_CONFIRM");

  EXPECT_EQ(resolveConfirmBound(0), 4u) << "default";
  EXPECT_EQ(resolveConfirmBound(7), 7u) << "explicit request";
  EXPECT_EQ(resolveConfirmBound(100000), 1024u) << "capped";

  ::setenv("CAFA_CONFIRM", "9", 1);
  EXPECT_EQ(resolveConfirmBound(0), 9u) << "environment";
  EXPECT_EQ(resolveConfirmBound(2), 2u) << "request beats environment";
  ::setenv("CAFA_CONFIRM", "0", 1);
  EXPECT_EQ(resolveConfirmBound(0), 4u) << "zero is not a budget";
  ::setenv("CAFA_CONFIRM", "not-a-number", 1);
  EXPECT_EQ(resolveConfirmBound(0), 4u) << "garbage ignored";
  ::setenv("CAFA_CONFIRM", "99999", 1);
  EXPECT_EQ(resolveConfirmBound(0), 1024u) << "environment capped too";

  if (Ambient)
    ::setenv("CAFA_CONFIRM", Saved.c_str(), 1);
  else
    ::unsetenv("CAFA_CONFIRM");
}

TEST(ConfirmTest, ConfirmsSeededIntraThreadRace) {
  RacyFixture F = makeRacyFixture();
  ASSERT_EQ(F.R.Report.Races.size(), 1u);

  ConfirmSummary Sum = confirmRaces(F.Model.S, F.T, F.R.Report);
  ASSERT_EQ(Sum.PerRace.size(), 1u);
  EXPECT_EQ(Sum.Confirmed, 1u);
  EXPECT_EQ(Sum.PerRace[0].Verdict, ConfirmVerdict::Confirmed);
  EXPECT_GE(Sum.PerRace[0].SchedulesTried, 1u);
  // The evidence names the predicted dereference site: the crash that
  // was reproduced is the crash that was predicted, by construction.
  EXPECT_EQ(Sum.PerRace[0].Detail.rfind("confirmed: crash at ", 0), 0u)
      << Sum.PerRace[0].Detail;
  EXPECT_NE(Sum.PerRace[0].Detail.find("staleSession_onTimer"),
            std::string::npos)
      << Sum.PerRace[0].Detail;
  EXPECT_EQ(Sum.SchedulesRun, Sum.PerRace[0].SchedulesTried);
}

TEST(ConfirmTest, SameTaskClaimIsInfeasibleWithoutReplay) {
  RacyFixture F = makeRacyFixture();
  ASSERT_EQ(F.R.Report.Races.size(), 1u);

  // Forge a claim the detector would normally filter: use and free in
  // one task.  Confirmation treats the report as untrusted and must
  // refute it from program order alone -- zero replays.
  RaceReport Forged = F.R.Report;
  Forged.Races[0].Free.Task = Forged.Races[0].Use.Task;

  ConfirmSummary Sum = confirmRaces(F.Model.S, F.T, Forged);
  ASSERT_EQ(Sum.PerRace.size(), 1u);
  EXPECT_EQ(Sum.PerRace[0].Verdict, ConfirmVerdict::Infeasible);
  EXPECT_EQ(Sum.PerRace[0].SchedulesTried, 0u);
  EXPECT_EQ(Sum.PerRace[0].Detail,
            "infeasible: use and free in the same task (program order)");
  EXPECT_EQ(Sum.Infeasible, 1u);
  EXPECT_EQ(Sum.SchedulesRun, 0u);
}

TEST(ConfirmTest, HbOrderedClaimIsInfeasibleWithoutReplay) {
  RacyFixture F = makeRacyFixture();
  ASSERT_EQ(F.R.Report.Races.size(), 1u);

  // Find a cross-task happens-before-ordered record pair (a parent's
  // record and a record of a task it transitively caused) and forge a
  // race claim over it.  Triage must label it infeasible against the
  // saturated relation, again without replaying.
  TaskIndex Index(F.T);
  HbIndex Hb(F.T, Index, HbOptions());
  uint32_t UseRec = UINT32_MAX, FreeRec = UINT32_MAX;
  for (uint32_t A = 0; A < F.T.numRecords() && UseRec == UINT32_MAX; ++A)
    for (uint32_t B = A + 1; B < F.T.numRecords(); ++B) {
      if (F.T.record(A).Task == F.T.record(B).Task)
        continue;
      if (Hb.ordered(A, B)) {
        UseRec = A;
        FreeRec = B;
        break;
      }
    }
  ASSERT_NE(UseRec, UINT32_MAX)
      << "fixture trace has no cross-task ordered pair";

  RaceReport Forged = F.R.Report;
  Forged.Races[0].Use.Task = F.T.record(UseRec).Task;
  Forged.Races[0].Use.Record = UseRec;
  Forged.Races[0].Free.Task = F.T.record(FreeRec).Task;
  Forged.Races[0].Free.Record = FreeRec;

  ConfirmSummary Sum = confirmRaces(F.Model.S, F.T, Forged);
  ASSERT_EQ(Sum.PerRace.size(), 1u);
  EXPECT_EQ(Sum.PerRace[0].Verdict, ConfirmVerdict::Infeasible);
  EXPECT_EQ(Sum.PerRace[0].SchedulesTried, 0u);
  EXPECT_EQ(Sum.PerRace[0].Detail,
            "infeasible: use and free are happens-before ordered");
}

TEST(ConfirmTest, BudgetBoundsReplaysPerRace) {
  RacyFixture F = makeRacyFixture();
  ConfirmOptions Opt;
  Opt.MaxSchedules = 1;
  ConfirmSummary Sum = confirmRaces(F.Model.S, F.T, F.R.Report, Opt);
  for (const RaceConfirmation &C : Sum.PerRace)
    EXPECT_LE(C.SchedulesTried, 1u);
  EXPECT_LE(Sum.SchedulesRun, Sum.PerRace.size());
}

TEST(ConfirmTest, VerdictsByteIdenticalAcrossThreadCounts) {
  // A full committed app model: tens of races of every category, enough
  // parallel replay work for thread-count bugs to surface.
  AppModel Model = buildApp("todolist");
  Trace T = runScenario(Model.S, RuntimeOptions());
  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  ASSERT_GE(R.Report.Races.size(), 3u);

  ConfirmOptions One;
  One.Threads = 1;
  ConfirmOptions Four;
  Four.Threads = 4;
  std::string A = serializeSummary(confirmRaces(Model.S, T, R.Report, One));
  std::string B = serializeSummary(confirmRaces(Model.S, T, R.Report, Four));
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("confirmed: crash at "), std::string::npos) << A;
}

TEST(ConfirmTest, AppliesVerdictsToDocumentAndJson) {
  RacyFixture F = makeRacyFixture();
  ASSERT_EQ(F.R.Report.Races.size(), 1u);

  RaceDocument Doc = buildRaceDocument(F.R.Report, F.T);
  // Pre-confirmation documents render without the field -- pinned
  // byte-compatibility with pre-confirmation corpora.
  std::string Before = renderRaceReportJson(Doc);
  EXPECT_EQ(Before.find("\"confirm\""), std::string::npos);

  ConfirmSummary Sum = confirmRaces(F.Model.S, F.T, F.R.Report);
  applyConfirmVerdicts(Sum, Doc);
  ASSERT_EQ(Doc.Races.size(), 1u);
  EXPECT_EQ(Doc.Races[0].Verdict, ConfirmVerdict::Confirmed);

  // The verdict survives a JSON round-trip.
  std::string After = renderRaceReportJson(Doc);
  EXPECT_NE(After.find("\"confirm\": \"confirmed\""), std::string::npos)
      << After;
  RaceDocument Parsed;
  ASSERT_TRUE(parseRaceReportJson(After, Parsed).ok());
  ASSERT_EQ(Parsed.Races.size(), 1u);
  EXPECT_EQ(Parsed.Races[0].Verdict, ConfirmVerdict::Confirmed);

  // And the human rendering gains the per-race marker.
  EXPECT_NE(renderRaceReportText(Doc).find("=> confirmed"),
            std::string::npos);
}

TEST(ConfirmTest, VerdictMergeLatticeAndNames) {
  using V = ConfirmVerdict;
  // Evidence order: confirmed > infeasible > unconfirmed > none,
  // commutatively.
  EXPECT_EQ(mergeConfirmVerdicts(V::None, V::Unconfirmed), V::Unconfirmed);
  EXPECT_EQ(mergeConfirmVerdicts(V::Unconfirmed, V::Infeasible),
            V::Infeasible);
  EXPECT_EQ(mergeConfirmVerdicts(V::Infeasible, V::Confirmed), V::Confirmed);
  EXPECT_EQ(mergeConfirmVerdicts(V::Confirmed, V::None), V::Confirmed);
  EXPECT_EQ(mergeConfirmVerdicts(V::Infeasible, V::Unconfirmed),
            V::Infeasible);
  EXPECT_EQ(mergeConfirmVerdicts(V::None, V::None), V::None);

  for (V Verdict : {V::Confirmed, V::Infeasible, V::Unconfirmed}) {
    V Back = V::None;
    ASSERT_TRUE(confirmVerdictFromName(confirmVerdictName(Verdict), Back));
    EXPECT_EQ(Back, Verdict);
  }
  EXPECT_EQ(std::string(confirmVerdictName(V::None)), "");
  V Out = V::Confirmed;
  EXPECT_FALSE(confirmVerdictFromName("definitely-real", Out));
  EXPECT_EQ(Out, V::Confirmed) << "unknown names leave the output alone";
  ASSERT_TRUE(confirmVerdictFromName("", Out));
  EXPECT_EQ(Out, V::None) << "the empty string parses to None";
}

} // namespace
