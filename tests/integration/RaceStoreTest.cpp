//===- tests/integration/RaceStoreTest.cpp ------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The persistent race store under corruption: every failure a torn
// append or a flipped bit can produce must recover to the last valid
// prefix of the journal -- never to an empty store, and never to
// mis-decoded records.  Incompatible journals (wrong magic, version, or
// schema fingerprint) are refused *without modifying the file*, so a
// build skew cannot destroy data.  Compaction is byte-deterministic:
// the same stored records always produce the same journal bytes.
//
// The corruption offsets are computed from the store's own observable
// layout (stats().JournalBytes after each append), not hard-coded, so
// the tests survive record-size changes as long as the framing
// invariants hold.
//
//===----------------------------------------------------------------------===//

#include "cafa/RaceStore.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace cafa;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::string &Data) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Data;
}

class RaceStoreTest : public testing::Test {
protected:
  std::string Scratch;

  void SetUp() override {
    Scratch = testing::TempDir() + "/cafa_race_store";
    ::mkdir(Scratch.c_str(), 0755);
    // Unique per test *and* per run: ctest runs each test as its own
    // process (pid disambiguates parallel tests and earlier runs'
    // leftovers), and a plain gtest binary runs them all in one
    // process (the counter disambiguates).
    static int Counter = 0;
    Scratch += "/t" + std::to_string(Counter++) + "_" +
               std::to_string(::getpid());
    ::mkdir(Scratch.c_str(), 0755);
  }

  /// A done row with a one-race report.
  static void doneJob(const std::string &Id, FleetJobStatus &Row,
                      RaceDocument &Report) {
    Row = FleetJobStatus();
    Row.Id = Id;
    Row.TracePath = "/traces/" + Id + ".trace";
    Row.State = "done";
    Row.Attempts = 1;
    Row.ExitCode = 1;
    RaceRecord Race;
    Race.UseMethod = "View.draw";
    Race.UsePc = 12;
    Race.UseTask = "ui";
    Race.FreeMethod = "Activity.onDestroy";
    Race.FreePc = 34;
    Race.FreeTask = "lifecycle";
    Race.Category = "a";
    Race.DynamicCount = 2;
    Report = RaceDocument();
    Report.Races.push_back(Race);
  }

  /// Opens a fresh store and appends \p N done jobs, returning the
  /// journal size after each append (RecordEnd[0] is the header-only
  /// size before any record).
  void seedStore(const std::string &Path, int N, RaceStore &Store,
                 std::vector<size_t> &SizeAfter) {
    ASSERT_TRUE(Store.open(Path).ok());
    SizeAfter.push_back(Store.stats().JournalBytes);
    for (int I = 0; I < N; ++I) {
      FleetJobStatus Row;
      RaceDocument Report;
      doneJob("job" + std::to_string(I), Row, Report);
      ASSERT_TRUE(Store.appendJob(Row, &Report).ok());
      SizeAfter.push_back(Store.stats().JournalBytes);
    }
  }
};

TEST_F(RaceStoreTest, AppendReplayRoundTrip) {
  std::string Path = Scratch + "/roundtrip.journal";
  {
    RaceStore Store;
    ASSERT_TRUE(Store.open(Path).ok());
    EXPECT_EQ(Store.numJobs(), 0u);

    FleetJobStatus Row;
    RaceDocument Report;
    doneJob("alpha", Row, Report);
    Row.Resumed = true; // raw operational fields must round-trip
    Row.ExitCode = 4;
    ASSERT_TRUE(Store.appendJob(Row, &Report).ok());

    FleetJobStatus Failed;
    Failed.Id = "broken";
    Failed.TracePath = "/traces/broken.trace";
    Failed.State = "failed:unreadable";
    Failed.Attempts = 1;
    Failed.ExitCode = 2;
    ASSERT_TRUE(Store.appendJob(Failed, nullptr).ok());
  }
  RaceStore Replayed;
  ASSERT_TRUE(Replayed.open(Path).ok());
  ASSERT_EQ(Replayed.numJobs(), 2u);
  EXPECT_TRUE(Replayed.hasJob("alpha"));
  EXPECT_TRUE(Replayed.hasJob("broken"));
  const StoredJob &Alpha = Replayed.jobs()[0];
  EXPECT_EQ(Alpha.Row.State, "done");
  EXPECT_EQ(Alpha.Row.ExitCode, 4);
  EXPECT_TRUE(Alpha.Row.Resumed);
  ASSERT_TRUE(Alpha.HasReport);
  ASSERT_EQ(Alpha.Report.Races.size(), 1u);
  EXPECT_EQ(Alpha.Report.Races[0].UseMethod, "View.draw");
  EXPECT_EQ(Alpha.Report.Races[0].DynamicCount, 2u);
  const StoredJob &Broken = Replayed.jobs()[1];
  EXPECT_EQ(Broken.Row.ExitCode, 2);
  EXPECT_FALSE(Broken.HasReport);

  RaceStore::Stats S = Replayed.stats();
  EXPECT_EQ(S.Jobs, 2u);
  EXPECT_EQ(S.Done, 1u);
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.ResumedCompletions, 1u);
  EXPECT_EQ(S.DistinctRaces, 1u);
  EXPECT_FALSE(S.RecoveredTail);
}

TEST_F(RaceStoreTest, TornAppendTruncatesToLastValidPrefix) {
  std::string Path = Scratch + "/torn.journal";
  std::vector<size_t> SizeAfter;
  {
    RaceStore Store;
    seedStore(Path, 3, Store, SizeAfter);
  }
  std::string Full = slurp(Path);
  ASSERT_EQ(Full.size(), SizeAfter[3]);

  // Cut mid-record-3 at several depths: inside the frame header and
  // inside the payload.  Every cut must recover exactly jobs 0 and 1.
  for (size_t Cut : {SizeAfter[2] + 3, SizeAfter[2] + 12 + 5,
                     SizeAfter[3] - 1}) {
    spit(Path, Full.substr(0, Cut));
    RaceStore Store;
    ASSERT_TRUE(Store.open(Path).ok()) << "cut at " << Cut;
    EXPECT_EQ(Store.numJobs(), 2u) << "cut at " << Cut;
    EXPECT_TRUE(Store.hasJob("job0"));
    EXPECT_TRUE(Store.hasJob("job1"));
    EXPECT_FALSE(Store.hasJob("job2"));
    RaceStore::Stats S = Store.stats();
    EXPECT_TRUE(S.RecoveredTail);
    EXPECT_EQ(S.RecoveredBytes, Cut - SizeAfter[2]);
    // The truncation is physical: the file is back to the valid prefix
    // and the next append extends a clean journal.
    struct stat St;
    ASSERT_EQ(::stat(Path.c_str(), &St), 0);
    EXPECT_EQ(static_cast<size_t>(St.st_size), SizeAfter[2]);
    FleetJobStatus Row;
    RaceDocument Report;
    doneJob("job2", Row, Report);
    ASSERT_TRUE(Store.appendJob(Row, &Report).ok());
  }

  // After the last loop iteration re-appended job2, a replay sees all
  // three again -- recovery lost only the torn suffix, nothing else.
  RaceStore Replayed;
  ASSERT_TRUE(Replayed.open(Path).ok());
  EXPECT_EQ(Replayed.numJobs(), 3u);
  EXPECT_FALSE(Replayed.stats().RecoveredTail);
}

TEST_F(RaceStoreTest, BitFlipDropsTheRecordAndEverythingAfterIt) {
  std::string Path = Scratch + "/bitflip.journal";
  std::vector<size_t> SizeAfter;
  {
    RaceStore Store;
    seedStore(Path, 3, Store, SizeAfter);
  }
  std::string Full = slurp(Path);
  // Flip one payload byte inside record 2 (the middle one).
  std::string Damaged = Full;
  Damaged[SizeAfter[1] + 12 + 4] ^= 0x20;
  spit(Path, Damaged);

  RaceStore Store;
  ASSERT_TRUE(Store.open(Path).ok());
  // Prefix semantics: record 2 fails its checksum, and record 3 --
  // although intact on disk -- is unreachable past a frame that cannot
  // be trusted.  Never an empty store, though: job0 survives.
  EXPECT_EQ(Store.numJobs(), 1u);
  EXPECT_TRUE(Store.hasJob("job0"));
  RaceStore::Stats S = Store.stats();
  EXPECT_TRUE(S.RecoveredTail);
  EXPECT_EQ(S.RecoveredBytes, Full.size() - SizeAfter[1]);
}

TEST_F(RaceStoreTest, IncompatibleJournalsRefusedWithoutModification) {
  std::string Path = Scratch + "/incompat.journal";
  std::vector<size_t> SizeAfter;
  {
    RaceStore Store;
    seedStore(Path, 1, Store, SizeAfter);
  }
  std::string Good = slurp(Path);

  // Stale schema fingerprint (bytes 12..19 of the header).
  std::string Stale = Good;
  Stale[12] ^= 0xFF;
  spit(Path, Stale);
  {
    RaceStore Store;
    Status S = Store.open(Path);
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find("fingerprint"), std::string::npos);
    EXPECT_FALSE(Store.isOpen());
    // Refusal must not "fix" the file: a newer build may still read it.
    EXPECT_EQ(slurp(Path), Stale);
  }

  // Wrong format version (bytes 8..11).
  std::string Versioned = Good;
  Versioned[8] = 0x7F;
  spit(Path, Versioned);
  {
    RaceStore Store;
    Status S = Store.open(Path);
    ASSERT_FALSE(S.ok());
    EXPECT_NE(S.message().find("version"), std::string::npos);
    EXPECT_EQ(slurp(Path), Versioned);
  }

  // Not a journal at all.
  spit(Path, "PK\x03\x04 definitely a zip file, left alone");
  {
    RaceStore Store;
    ASSERT_FALSE(Store.open(Path).ok());
    EXPECT_EQ(slurp(Path),
              std::string("PK\x03\x04 definitely a zip file, left alone"));
  }
}

TEST_F(RaceStoreTest, TornHeaderStartsFresh) {
  // A crash during store *creation* can tear the 20-byte header
  // itself.  Nothing valid ever existed, so this -- and only this --
  // case resets to a fresh store.
  std::string Path = Scratch + "/tornheader.journal";
  spit(Path, "CAFA");
  RaceStore Store;
  ASSERT_TRUE(Store.open(Path).ok());
  EXPECT_EQ(Store.numJobs(), 0u);
  RaceStore::Stats S = Store.stats();
  EXPECT_TRUE(S.RecoveredTail);
  EXPECT_EQ(S.RecoveredBytes, 4u);
}

TEST_F(RaceStoreTest, CompactionIsByteDeterministic) {
  std::string PathA = Scratch + "/compact_a.journal";
  std::string PathB = Scratch + "/compact_b.journal";
  std::vector<size_t> SizeA, SizeB;
  RaceStore A, B;
  seedStore(PathA, 3, A, SizeA);
  seedStore(PathB, 3, B, SizeB);

  // Store A suffers a torn append and re-appends the lost job; store B
  // was never damaged.  After compaction both journals hold the same
  // records -- and must be byte-identical.
  std::string FullA = slurp(PathA);
  spit(PathA, FullA.substr(0, SizeA[3] - 7));
  RaceStore ARec;
  ASSERT_TRUE(ARec.open(PathA).ok());
  ASSERT_TRUE(ARec.stats().RecoveredTail);
  FleetJobStatus Row;
  RaceDocument Report;
  doneJob("job2", Row, Report);
  ASSERT_TRUE(ARec.appendJob(Row, &Report).ok());
  ASSERT_TRUE(ARec.compact().ok());
  EXPECT_FALSE(ARec.stats().RecoveredTail);

  EXPECT_EQ(slurp(PathA), slurp(PathB));

  // Compacting an already-canonical journal is a byte-level no-op.
  ASSERT_TRUE(B.compact().ok());
  EXPECT_EQ(slurp(PathA), slurp(PathB));

  // And the compacted journal replays to the same store.
  RaceStore Replayed;
  ASSERT_TRUE(Replayed.open(PathA).ok());
  EXPECT_EQ(Replayed.numJobs(), 3u);
}

TEST_F(RaceStoreTest, ConfirmVerdictRoundTripsThroughJournal) {
  std::string Path = Scratch + "/verdict.journal";
  {
    RaceStore Store;
    ASSERT_TRUE(Store.open(Path).ok());
    FleetJobStatus Row;
    RaceDocument Report;
    doneJob("triaged", Row, Report);
    Report.Races[0].Verdict = ConfirmVerdict::Confirmed;
    RaceRecord Refuted = Report.Races[0];
    Refuted.UsePc = 99; // distinct static site
    Refuted.Verdict = ConfirmVerdict::Infeasible;
    Report.Races.push_back(Refuted);
    ASSERT_TRUE(Store.appendJob(Row, &Report).ok());
  }
  RaceStore Replayed;
  ASSERT_TRUE(Replayed.open(Path).ok());
  ASSERT_EQ(Replayed.numJobs(), 1u);
  const StoredJob &Job = Replayed.jobs()[0];
  ASSERT_EQ(Job.Report.Races.size(), 2u);
  EXPECT_EQ(Job.Report.Races[0].Verdict, ConfirmVerdict::Confirmed);
  EXPECT_EQ(Job.Report.Races[1].Verdict, ConfirmVerdict::Infeasible);
  // The verdict flows into the rendered aggregate...
  EXPECT_NE(Replayed.renderJson().find("\"confirm\": \"confirmed\""),
            std::string::npos);
  EXPECT_NE(Replayed.renderJson().find("\"confirm\": \"infeasible\""),
            std::string::npos);
  // ...while a verdict-free journal keeps its pre-confirmation bytes.
  RaceStore Plain;
  std::vector<size_t> Sizes;
  seedStore(Scratch + "/plain.journal", 1, Plain, Sizes);
  EXPECT_EQ(Plain.renderJson().find("\"confirm\""), std::string::npos);
}

TEST_F(RaceStoreTest, RejectsDuplicatesInterruptedAndUnopened) {
  RaceStore Unopened;
  FleetJobStatus Row;
  RaceDocument Report;
  doneJob("x", Row, Report);
  EXPECT_FALSE(Unopened.appendJob(Row, &Report).ok());

  RaceStore Store;
  ASSERT_TRUE(Store.open(Scratch + "/rejects.journal").ok());
  ASSERT_TRUE(Store.appendJob(Row, &Report).ok());
  EXPECT_FALSE(Store.appendJob(Row, &Report).ok()) << "duplicate id";

  FleetJobStatus Interrupted;
  Interrupted.Id = "cut-short";
  Interrupted.TracePath = "/traces/cut.trace";
  Interrupted.State = "interrupted";
  EXPECT_FALSE(Store.appendJob(Interrupted, nullptr).ok())
      << "interrupted is resumable work, not a result";

  FleetJobStatus Empty;
  Empty.State = "done";
  EXPECT_FALSE(Store.appendJob(Empty, nullptr).ok()) << "empty id";
}

TEST_F(RaceStoreTest, RenderNormalizesOperationalHistoryAway) {
  // Store A's job took the scenic route: interrupted daemon, restart,
  // resumed from checkpoint (exit 4, resumed, 3 attempts).  Store B's
  // identical job completed first try.  The rendered aggregates must be
  // byte-identical -- that is the whole point of the store's render
  // normalization (docs/server.md).
  RaceStore A, B;
  ASSERT_TRUE(A.open(Scratch + "/norm_a.journal").ok());
  ASSERT_TRUE(B.open(Scratch + "/norm_b.journal").ok());

  FleetJobStatus Row;
  RaceDocument Report;
  doneJob("resumed", Row, Report);
  Row.ExitCode = 4;
  Row.Resumed = true;
  Row.Attempts = 3;
  ASSERT_TRUE(A.appendJob(Row, &Report).ok());

  doneJob("resumed", Row, Report);
  ASSERT_TRUE(B.appendJob(Row, &Report).ok());

  EXPECT_EQ(A.renderJson(), B.renderJson());
  EXPECT_EQ(A.renderText(), B.renderText());
  // The raw history is not lost: stats still proves the resume.
  EXPECT_EQ(A.stats().ResumedCompletions, 1u);
  EXPECT_EQ(B.stats().ResumedCompletions, 0u);

  // Failed rows keep their operational fields: there the history *is*
  // the result.
  FleetJobStatus Failed;
  Failed.Id = "wedged";
  Failed.TracePath = "/traces/wedged.trace";
  Failed.State = "failed:hung";
  Failed.Attempts = 3;
  Failed.ExitCode = -1;
  ASSERT_TRUE(A.appendJob(Failed, nullptr).ok());
  EXPECT_NE(A.renderJson().find("\"attempts\": 3"), std::string::npos);
}

TEST_F(RaceStoreTest, RenderSortsByJobIdNotInsertionOrder) {
  // Batches arrive in whatever order users submit them; the aggregate
  // must not care.  Same records, opposite insertion orders.
  RaceStore Forward, Backward;
  ASSERT_TRUE(Forward.open(Scratch + "/order_f.journal").ok());
  ASSERT_TRUE(Backward.open(Scratch + "/order_b.journal").ok());

  FleetJobStatus Row;
  RaceDocument Report;
  for (const char *Id : {"aaa", "mmm", "zzz"}) {
    doneJob(Id, Row, Report);
    ASSERT_TRUE(Forward.appendJob(Row, &Report).ok());
  }
  for (const char *Id : {"zzz", "mmm", "aaa"}) {
    doneJob(Id, Row, Report);
    ASSERT_TRUE(Backward.appendJob(Row, &Report).ok());
  }
  EXPECT_EQ(Forward.renderJson(), Backward.renderJson());
  EXPECT_EQ(Forward.renderText(), Backward.renderText());
  // Occurrence counts accumulated: one race seen from three jobs.
  EXPECT_NE(Forward.renderJson().find("\"jobs\": 3, \"dynamicCount\": 6"),
            std::string::npos)
      << Forward.renderJson();
}

} // namespace
