//===- tests/integration/DegradationTest.cpp ----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The graceful-degradation ladder end to end: a memory ceiling steps the
// reachability oracle down Incremental -> Closure -> Bfs with
// bit-identical reports, and a blown wall-clock deadline produces a
// partial report flagged with a machine-readable cause.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

Trace buildAppTrace() {
  apps::AppBuilder App("degrade");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.addGuardedCommutativePair("delta");
  App.fillVolumeTo(300);
  Table1Row Dummy;
  apps::AppModel Model = App.finish(Dummy);
  return runScenario(Model.S, RuntimeOptions());
}

TEST(DegradationTest, EstimatesAreMonotoneAlongTheLadder) {
  for (size_t N : {200u, 5000u, 100000u}) {
    size_t Inc = estimateReachabilityMemory(N, ReachMode::Incremental);
    size_t Clo = estimateReachabilityMemory(N, ReachMode::Closure);
    size_t Bfs = estimateReachabilityMemory(N, ReachMode::Bfs);
    EXPECT_LT(Bfs, Clo) << N;
    EXPECT_LT(Clo, Inc) << N;
  }
}

TEST(DegradationTest, MemoryCeilingFallsBackToBfsBitIdentical) {
  Trace T = buildAppTrace();

  AnalysisResult Full = analyzeTrace(T, DetectorOptions());
  EXPECT_EQ(Full.Degradation.UsedReach, ReachMode::Incremental);
  EXPECT_FALSE(Full.Degradation.degraded());

  DetectorOptions Tiny;
  Tiny.Hb.MemLimitBytes = 1; // nothing closure-shaped fits
  AnalysisResult Lim = analyzeTrace(T, Tiny);
  EXPECT_EQ(Lim.Degradation.RequestedReach, ReachMode::Incremental);
  EXPECT_EQ(Lim.Degradation.UsedReach, ReachMode::Bfs);
  EXPECT_TRUE(Lim.Degradation.DowngradedForMemory);
  EXPECT_FALSE(Lim.Degradation.DeadlineExceeded);
  EXPECT_FALSE(Lim.Report.Partial);

  // The oracles answer identically, so the entire rendered report --
  // races, categories, dynamic counts, filter counters -- must match
  // byte for byte.
  EXPECT_EQ(renderRaceReportJson(Full.Report, T),
            renderRaceReportJson(Lim.Report, T));
  EXPECT_GT(Full.Report.Races.size(), 0u); // the comparison is not vacuous
}

TEST(DegradationTest, MemoryCeilingUsesMiddleRungWhenItFits) {
  Trace T = buildAppTrace();
  TaskIndex Index(T);

  // Learn the node count from an unconstrained build, then pick a limit
  // that admits Closure but not Incremental (the incremental estimate is
  // strictly larger by construction).
  HbOptions Free;
  HbIndex Unlimited(T, Index, Free);
  size_t N = Unlimited.graph().numNodes();
  ASSERT_GT(N, 0u);

  HbOptions Capped;
  Capped.MemLimitBytes = estimateReachabilityMemory(N, ReachMode::Closure);
  HbIndex Limited(T, Index, Capped);
  EXPECT_EQ(Limited.degradation().UsedReach, ReachMode::Closure);
  EXPECT_TRUE(Limited.degradation().DowngradedForMemory);

  // Same relation: spot-check every pair of the first records of a few
  // tasks through the public query interface.
  AccessDb Db = extractAccesses(T, Index);
  DetectorOptions DOpt;
  DOpt.Classify = false;
  RaceReport A = detectUseFreeRaces(T, Index, Db, Unlimited, DOpt);
  RaceReport B = detectUseFreeRaces(T, Index, Db, Limited, DOpt);
  EXPECT_EQ(renderRaceReportJson(A, T), renderRaceReportJson(B, T));
}

TEST(DegradationTest, BlownHbDeadlineYieldsPartialReport) {
  Trace T = buildAppTrace();

  DetectorOptions Opt;
  Opt.DeadlineMillis = 1e-6; // expires before the first fixpoint round
  AnalysisResult R = analyzeTrace(T, Opt);

  EXPECT_TRUE(R.Degradation.DeadlineExceeded);
  ASSERT_TRUE(R.Report.Partial);
  EXPECT_EQ(R.Report.PartialCause, "hb-deadline");

  std::string Json = renderRaceReportJson(R.Report, T);
  EXPECT_NE(Json.find("\"partial\": true"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"partialCause\": \"hb-deadline\""),
            std::string::npos)
      << Json;
  EXPECT_NE(renderRaceReport(R.Report, T).find("PARTIAL"),
            std::string::npos);

  // A missing-edge relation only ever surfaces *more* candidates.
  AnalysisResult Full = analyzeTrace(T, DetectorOptions());
  EXPECT_GE(R.Report.Filters.CandidatePairs -
                R.Report.Filters.OrderedByHb,
            Full.Report.Filters.CandidatePairs -
                Full.Report.Filters.OrderedByHb);
}

TEST(DegradationTest, BlownDetectDeadlineCutsTheScan) {
  // Two unordered threads with 70 uses x 70 frees of one pointer cell:
  // 4900 candidate pairs, comfortably past the detector's 4096-pair
  // deadline checkpoint.
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 256);
  TaskId A = TB.addThread("user");
  TaskId B = TB.addThread("freer");
  TB.begin(A);
  for (uint32_t I = 0; I != 70; ++I) {
    TB.ptrRead(A, 5, 9, M, I);
    TB.deref(A, 9, DerefKind::Invoke, M, I);
  }
  TB.end(A);
  TB.begin(B);
  for (uint32_t I = 0; I != 70; ++I)
    TB.ptrWrite(B, 5, 0, M, 100 + I);
  TB.end(B);
  Trace T = TB.take();

  DetectorOptions Fast;
  Fast.Classify = false;
  Fast.DeadlineMillis = 1e-6;
  RaceReport R = detectUseFreeRaces(T, Fast);
  ASSERT_TRUE(R.Partial);
  EXPECT_EQ(R.PartialCause, "detect-deadline");
  EXPECT_GT(R.Filters.CandidatePairs, 0u);
  EXPECT_LT(R.Filters.CandidatePairs, 4900u); // the scan really stopped

  // Without a deadline the same trace scans every pair.
  DetectorOptions NoLimit;
  NoLimit.Classify = false;
  RaceReport FullR = detectUseFreeRaces(T, NoLimit);
  EXPECT_FALSE(FullR.Partial);
  EXPECT_EQ(FullR.Filters.CandidatePairs, 4900u);
}

TEST(DegradationTest, ReachModeNamesAreStable) {
  EXPECT_STREQ(reachModeName(ReachMode::Incremental), "incremental");
  EXPECT_STREQ(reachModeName(ReachMode::Closure), "closure");
  EXPECT_STREQ(reachModeName(ReachMode::Bfs), "bfs");
}

} // namespace
