//===- tests/integration/DegradationTest.cpp ----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The graceful-degradation ladder end to end: a memory ceiling steps the
// reachability oracle down Incremental -> Closure -> Bfs with
// bit-identical reports, and a blown wall-clock deadline produces a
// partial report flagged with a machine-readable cause.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <tuple>

using namespace cafa;

namespace {

Trace buildAppTrace() {
  apps::AppBuilder App("degrade");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.addGuardedCommutativePair("delta");
  App.fillVolumeTo(300);
  Table1Row Dummy;
  apps::AppModel Model = App.finish(Dummy);
  return runScenario(Model.S, RuntimeOptions());
}

TEST(DegradationTest, EstimatesAreMonotoneAlongTheLadder) {
  for (size_t N : {200u, 5000u, 100000u}) {
    size_t Inc = estimateReachabilityMemory(N, ReachMode::Incremental);
    size_t Clo = estimateReachabilityMemory(N, ReachMode::Closure);
    size_t Bfs = estimateReachabilityMemory(N, ReachMode::Bfs);
    EXPECT_LT(Bfs, Clo) << N;
    EXPECT_LT(Clo, Inc) << N;
    // Chain sits between Bfs and Closure only once the quadratic closure
    // estimate overtakes the O(N * MaxChainsForClocks) clock matrix --
    // roughly N > 4500.  Below that the ladder's Closure -> Chain step
    // is still sound: the chain oracle refuses the clock matrix under a
    // tight budget and serves queries from its linear search phase.
    size_t Cha = estimateReachabilityMemory(N, ReachMode::Chain);
    EXPECT_LT(Bfs, Cha) << N;
    if (N >= 5000)
      EXPECT_LT(Cha, Clo) << N;
  }
}

TEST(DegradationTest, MemoryCeilingFallsBackToBfsBitIdentical) {
  Trace T = buildAppTrace();

  // Pin the request: this test asserts which rung the ladder lands on,
  // so the CAFA_REACH-forced CI legs must not redirect the default.
  DetectorOptions Pinned;
  Pinned.Hb.Reach = ReachMode::Incremental;
  AnalysisResult Full = analyzeTrace(T, Pinned);
  EXPECT_EQ(Full.Degradation.UsedReach, ReachMode::Incremental);
  EXPECT_FALSE(Full.Degradation.degraded());

  DetectorOptions Tiny = Pinned;
  Tiny.Hb.MemLimitBytes = 1; // nothing closure-shaped fits
  AnalysisResult Lim = analyzeTrace(T, Tiny);
  EXPECT_EQ(Lim.Degradation.RequestedReach, ReachMode::Incremental);
  EXPECT_EQ(Lim.Degradation.UsedReach, ReachMode::Bfs);
  EXPECT_TRUE(Lim.Degradation.DowngradedForMemory);
  EXPECT_FALSE(Lim.Degradation.DeadlineExceeded);
  EXPECT_FALSE(Lim.Report.Partial);

  // The oracles answer identically, so the entire rendered report --
  // races, categories, dynamic counts, filter counters -- must match
  // byte for byte.
  EXPECT_EQ(renderRaceReportJson(Full.Report, T),
            renderRaceReportJson(Lim.Report, T));
  EXPECT_GT(Full.Report.Races.size(), 0u); // the comparison is not vacuous
}

TEST(DegradationTest, MemoryCeilingUsesMiddleRungWhenItFits) {
  Trace T = buildAppTrace();
  TaskIndex Index(T);

  // Learn the node count from an unconstrained build, then pick a limit
  // that admits Closure but not Incremental (the incremental estimate is
  // strictly larger by construction).
  HbOptions Free;
  Free.Reach = ReachMode::Incremental; // ladder assertions: pin the request
  HbIndex Unlimited(T, Index, Free);
  size_t N = Unlimited.graph().numNodes();
  ASSERT_GT(N, 0u);

  HbOptions Capped = Free;
  Capped.MemLimitBytes = estimateReachabilityMemory(N, ReachMode::Closure);
  HbIndex Limited(T, Index, Capped);
  EXPECT_EQ(Limited.degradation().UsedReach, ReachMode::Closure);
  EXPECT_TRUE(Limited.degradation().DowngradedForMemory);

  // Same relation: spot-check every pair of the first records of a few
  // tasks through the public query interface.
  AccessDb Db = extractAccesses(T, Index);
  DetectorOptions DOpt;
  DOpt.Classify = false;
  RaceReport A = detectUseFreeRaces(T, Index, Db, Unlimited, DOpt);
  RaceReport B = detectUseFreeRaces(T, Index, Db, Limited, DOpt);
  EXPECT_EQ(renderRaceReportJson(A, T), renderRaceReportJson(B, T));
}

TEST(DegradationTest, MemoryCeilingUsesChainRungWhenClosureDoesNotFit) {
  // A trace big enough that the chain oracle's measured footprint sits
  // well below the closure bitset: a budget between the two makes the
  // ladder walk Incremental -> Closure -> Chain and stop there.
  apps::AppBuilder App("degrade-chain");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.fillVolumeTo(2500);
  Table1Row Dummy;
  apps::AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());
  TaskIndex Index(T);

  HbOptions ChainOpt;
  ChainOpt.Reach = ReachMode::Chain;
  HbIndex ChainIdx(T, Index, ChainOpt);
  size_t ChainBytes = ChainIdx.degradation().MeasuredReachBytes;
  HbOptions CloOpt;
  CloOpt.Reach = ReachMode::Closure;
  HbIndex CloIdx(T, Index, CloOpt);
  size_t CloBytes = CloIdx.degradation().MeasuredReachBytes;
  ASSERT_LT(ChainBytes, CloBytes); // the rung is meaningful at this size

  HbOptions Capped;
  Capped.Reach = ReachMode::Incremental;
  Capped.MemLimitBytes = ChainBytes + (CloBytes - ChainBytes) / 2;
  HbIndex Limited(T, Index, Capped);
  EXPECT_EQ(Limited.degradation().UsedReach, ReachMode::Chain);
  EXPECT_TRUE(Limited.degradation().DowngradedForMemory);

  // Downgrading never changes the relation, hence never the report.
  AccessDb Db = extractAccesses(T, Index);
  DetectorOptions DOpt;
  DOpt.Classify = false;
  RaceReport A = detectUseFreeRaces(T, Index, Db, ChainIdx, DOpt);
  RaceReport B = detectUseFreeRaces(T, Index, Db, Limited, DOpt);
  EXPECT_EQ(renderRaceReportJson(A, T), renderRaceReportJson(B, T));
}

TEST(DegradationTest, BlownHbDeadlineYieldsPartialReport) {
  Trace T = buildAppTrace();

  DetectorOptions Opt;
  Opt.DeadlineMillis = 1e-6; // expires before the first fixpoint round
  AnalysisResult R = analyzeTrace(T, Opt);

  EXPECT_TRUE(R.Degradation.DeadlineExceeded);
  ASSERT_TRUE(R.Report.Partial);
  EXPECT_EQ(R.Report.PartialCause, "hb-deadline");

  std::string Json = renderRaceReportJson(R.Report, T);
  EXPECT_NE(Json.find("\"partial\": true"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"partialCause\": \"hb-deadline\""),
            std::string::npos)
      << Json;
  EXPECT_NE(renderRaceReport(R.Report, T).find("PARTIAL"),
            std::string::npos);

  // A missing-edge relation only ever surfaces *more* candidates.
  AnalysisResult Full = analyzeTrace(T, DetectorOptions());
  EXPECT_GE(R.Report.Filters.CandidatePairs -
                R.Report.Filters.OrderedByHb,
            Full.Report.Filters.CandidatePairs -
                Full.Report.Filters.OrderedByHb);
}

/// Two unordered threads with \p N uses x \p N frees of one pointer
/// cell: N^2 candidate pairs against the detector's ~4096-pair deadline
/// poll cadence.
static Trace buildPairGridTrace(uint32_t N) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 4096);
  TaskId A = TB.addThread("user");
  TaskId B = TB.addThread("freer");
  TB.begin(A);
  for (uint32_t I = 0; I != N; ++I) {
    TB.ptrRead(A, 5, 9, M, I);
    TB.deref(A, 9, DerefKind::Invoke, M, I);
  }
  TB.end(A);
  TB.begin(B);
  for (uint32_t I = 0; I != N; ++I)
    TB.ptrWrite(B, 5, 0, M, 2000 + I);
  TB.end(B);
  return TB.take();
}

TEST(DegradationTest, BlownDetectDeadlineShedsFiltersFirst) {
  // 70x70 = 4900 pairs: the first deadline poll (~pair 4096) sheds the
  // lockset/if-guard filters and doubles the budget; the scan then
  // finishes before the next poll (~pair 8192), so every pair is
  // examined and the cause stays "filters-shed".
  Trace T = buildPairGridTrace(70);

  DetectorOptions Fast;
  Fast.Classify = false;
  Fast.DeadlineMillis = 1e-6;
  RaceReport R = detectUseFreeRaces(T, Fast);
  ASSERT_TRUE(R.Partial);
  EXPECT_EQ(R.PartialCause, "filters-shed");
  EXPECT_EQ(R.Filters.CandidatePairs, 4900u); // the scan completed
  EXPECT_FALSE(R.PartialDetail.empty());

  // Without a deadline the same trace scans every pair, cleanly.
  DetectorOptions NoLimit;
  NoLimit.Classify = false;
  RaceReport FullR = detectUseFreeRaces(T, NoLimit);
  EXPECT_FALSE(FullR.Partial);
  EXPECT_EQ(FullR.Filters.CandidatePairs, 4900u);
}

TEST(DegradationTest, BlownDetectDeadlineCutsTheScanAfterShedding) {
  // 104x104 = 10816 pairs: the first poll sheds the filters (rung 1),
  // and the next poll finds the doubled budget also expired and cuts
  // the scan (rung 2).
  Trace T = buildPairGridTrace(104);

  DetectorOptions Fast;
  Fast.Classify = false;
  Fast.DeadlineMillis = 1e-6;
  RaceReport R = detectUseFreeRaces(T, Fast);
  ASSERT_TRUE(R.Partial);
  EXPECT_EQ(R.PartialCause, "detect-deadline");
  EXPECT_GT(R.Filters.CandidatePairs, 0u);
  EXPECT_LT(R.Filters.CandidatePairs, 10816u); // the scan really stopped
}

TEST(DegradationTest, BlownDetectDeadlineCutsDirectlyWithoutSheddableFilters) {
  // With the lockset and if-guard filters disabled, rung 1 has nothing
  // to shed and the first expiry cuts the scan immediately.
  Trace T = buildPairGridTrace(70);

  DetectorOptions Fast;
  Fast.Classify = false;
  Fast.LocksetFilter = false;
  Fast.IfGuardFilter = false;
  Fast.DeadlineMillis = 1e-6;
  RaceReport R = detectUseFreeRaces(T, Fast);
  ASSERT_TRUE(R.Partial);
  EXPECT_EQ(R.PartialCause, "detect-deadline");
  EXPECT_LT(R.Filters.CandidatePairs, 4900u);
}

TEST(DegradationTest, FilterShedReportsAreASupersetOfCompleteOnes) {
  // A grid trace plus lockset-protected pairs: the complete run
  // suppresses the locked races; the shed run (deadline rung 1) must
  // report every race the complete run reports -- shedding only ever
  // un-suppresses -- and here strictly more.
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 4096);
  TaskId A = TB.addThread("user");
  TaskId B = TB.addThread("freer");
  TB.begin(A);
  for (uint32_t I = 0; I != 70; ++I) {
    TB.ptrRead(A, 5, 9, M, I);
    TB.deref(A, 9, DerefKind::Invoke, M, I);
  }
  // A second cell touched only under a common lock.
  TB.lockAcquire(A, 77);
  TB.ptrRead(A, 6, 10, M, 500);
  TB.deref(A, 10, DerefKind::Invoke, M, 500);
  TB.lockRelease(A, 77);
  TB.end(A);
  TB.begin(B);
  for (uint32_t I = 0; I != 70; ++I)
    TB.ptrWrite(B, 5, 0, M, 2000 + I);
  TB.lockAcquire(B, 77);
  TB.ptrWrite(B, 6, 0, M, 2500);
  TB.lockRelease(B, 77);
  TB.end(B);
  Trace T = TB.take();

  DetectorOptions NoLimit;
  NoLimit.Classify = false;
  RaceReport Complete = detectUseFreeRaces(T, NoLimit);
  EXPECT_FALSE(Complete.Partial);
  EXPECT_GT(Complete.Filters.LocksetProtected, 0u);

  DetectorOptions Fast = NoLimit;
  Fast.DeadlineMillis = 1e-6;
  RaceReport Shed = detectUseFreeRaces(T, Fast);
  ASSERT_TRUE(Shed.Partial);
  ASSERT_EQ(Shed.PartialCause, "filters-shed");
  EXPECT_EQ(Shed.Filters.CandidatePairs, Complete.Filters.CandidatePairs);

  auto staticKeys = [](const RaceReport &R) {
    std::set<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>> Keys;
    for (const UseFreeRace &Race : R.Races)
      Keys.insert({Race.Use.Method.value(), Race.Use.Pc,
                   Race.Free.Method.value(), Race.Free.Pc});
    return Keys;
  };
  std::set<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>>
      CompleteKeys = staticKeys(Complete),
      ShedKeys = staticKeys(Shed);
  for (const auto &K : CompleteKeys)
    EXPECT_TRUE(ShedKeys.count(K));
  // The lockset-protected race surfaced: strictly more races.
  EXPECT_GT(ShedKeys.size(), CompleteKeys.size());
}

TEST(DegradationTest, ReachModeNamesAreStable) {
  EXPECT_STREQ(reachModeName(ReachMode::Incremental), "incremental");
  EXPECT_STREQ(reachModeName(ReachMode::Closure), "closure");
  EXPECT_STREQ(reachModeName(ReachMode::Bfs), "bfs");
  EXPECT_STREQ(reachModeName(ReachMode::Chain), "chain");
  EXPECT_STREQ(reachModeName(ReachMode::Auto), "auto");
}

TEST(DegradationTest, ReachModeResolvesRequestOverEnvOverDefault) {
  // Save whatever the surrounding CI leg exported so this test cannot
  // leak state into its neighbours.
  const char *Old = std::getenv("CAFA_REACH");
  std::string Saved = Old ? Old : "";
  bool Had = Old != nullptr;

  setenv("CAFA_REACH", "chain", 1);
  EXPECT_EQ(resolveReachMode(ReachMode::Auto), ReachMode::Chain);
  // An explicit request always wins over the environment.
  EXPECT_EQ(resolveReachMode(ReachMode::Bfs), ReachMode::Bfs);
  EXPECT_EQ(resolveReachMode(ReachMode::Incremental),
            ReachMode::Incremental);

  setenv("CAFA_REACH", "closure", 1);
  EXPECT_EQ(resolveReachMode(ReachMode::Auto), ReachMode::Closure);
  setenv("CAFA_REACH", "bfs", 1);
  EXPECT_EQ(resolveReachMode(ReachMode::Auto), ReachMode::Bfs);
  setenv("CAFA_REACH", "incremental", 1);
  EXPECT_EQ(resolveReachMode(ReachMode::Auto), ReachMode::Incremental);

  // Unknown values and an unset variable both fall back to the default.
  setenv("CAFA_REACH", "nonsense", 1);
  EXPECT_EQ(resolveReachMode(ReachMode::Auto), ReachMode::Incremental);
  unsetenv("CAFA_REACH");
  EXPECT_EQ(resolveReachMode(ReachMode::Auto), ReachMode::Incremental);

  if (Had)
    setenv("CAFA_REACH", Saved.c_str(), 1);
  else
    unsetenv("CAFA_REACH");
}

} // namespace
