//===- tests/integration/IngestCheckpointTest.cpp -----------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Crash-safe checkpoint/resume for the *ingest* phase (the merge side of
// sharded ingestion), mirroring CheckpointTest.cpp's contract for the
// analysis phases: an interrupted merge leaves a snapshot, a resumed run
// skips the merged prefix and produces a Trace and IngestReport
// bit-identical to an uninterrupted one, and every corrupt or mismatched
// snapshot degrades to a clean full re-ingest -- never a wrong merge.
//
//===----------------------------------------------------------------------===//

#include "trace/FaultInjector.h"
#include "trace/IngestSession.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>

using namespace cafa;

namespace {

/// A damaged multi-shard dump: big enough that tiny shards make dozens
/// of merge steps, damaged enough that the report is non-trivial.
std::string buildDamagedDump() {
  TraceBuilder TB;
  MethodId M = TB.addMethod("work", 256);
  TaskId A = TB.addThread("producer");
  TaskId B = TB.addThread("consumer");
  TB.begin(A);
  for (uint32_t I = 0; I != 400; ++I) {
    TB.lockAcquire(A, 1);
    TB.write(A, I % 13, I);
    TB.ptrWrite(A, I % 7, I % 3, M, I % 250);
    TB.lockRelease(A, 1);
  }
  TB.end(A);
  TB.begin(B);
  for (uint32_t I = 0; I != 400; ++I) {
    TB.ptrRead(B, I % 7, I % 3, M, I % 250);
    TB.deref(B, I % 3, DerefKind::Invoke, M, I % 250);
  }
  TB.end(B);
  std::string Text = serializeTrace(TB.take());
  for (uint64_t I = 0; I != 12; ++I) {
    FaultKind Kind = static_cast<FaultKind>(1 + I % (NumFaultKinds - 1));
    Text = injectFault(Text, Kind, /*Seed=*/0xfeed + I).Text;
  }
  return Text;
}

std::string freshDir(const char *Name) {
  std::string Dir = testing::TempDir() + "/cafa_ingest_ckpt_" + Name;
  ::mkdir(Dir.c_str(), 0755);
  std::remove(ingestCheckpointPath(Dir).c_str());
  return Dir;
}

std::string writeDump(const std::string &Dir, const char *Name,
                      const std::string &Text) {
  std::string Path = Dir + "/" + Name;
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Text.data(), static_cast<std::streamsize>(Text.size()));
  return Path;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// Options that force many small shards and a snapshot after every
/// merged shard, so DebugAbortAfterShards lands mid-stream.
IngestOptions tinyShardOptions(const std::string &Dir) {
  IngestOptions O;
  O.Threads = 2;
  O.ShardBytes = 512;
  O.CheckpointDirectory = Dir;
  O.CheckpointEveryBytes = 1;
  return O;
}

struct Result {
  Status St = Status::success();
  std::string Serialized;
  std::string Summary;
};

Result ingestFile(const std::string &Path, const IngestOptions &O,
                  IngestResumeOutcome *OutcomeOut = nullptr) {
  IngestSession S(O);
  Status FS = S.feedFile(Path);
  Result R;
  if (!FS.ok()) {
    R.St = FS;
    return R;
  }
  Trace T;
  IngestReport Rep;
  R.St = S.finish(T, Rep);
  if (OutcomeOut)
    *OutcomeOut = S.resumeOutcome();
  if (R.St.ok())
    R.Serialized = serializeTrace(T);
  R.Summary = Rep.summary();
  return R;
}

} // namespace

TEST(IngestCheckpointTest, InterruptedMergeResumesBitIdentical) {
  std::string Dump = buildDamagedDump();
  std::string Dir = freshDir("resume");
  std::string Path = writeDump(Dir, "dump.trace", Dump);

  // Uninterrupted reference (no checkpointing involved at all).
  IngestOptions Plain;
  Plain.Threads = 2;
  Plain.ShardBytes = 512;
  Result Ref = ingestFile(Path, Plain);
  ASSERT_TRUE(Ref.St.ok()) << Ref.St.message();

  // Crash after 5 merged shards; the snapshot cadence of one byte means
  // the last merged shard is always durable.
  IngestOptions Crash = tinyShardOptions(Dir);
  Crash.DebugAbortAfterShards = 5;
  Result Cut = ingestFile(Path, Crash);
  ASSERT_FALSE(Cut.St.ok());
  EXPECT_NE(Cut.St.message().find("interrupted"), std::string::npos);
  ASSERT_TRUE(fileExists(ingestCheckpointPath(Dir)));

  // Resume: the merged prefix is skipped, the result is bit-identical,
  // and the snapshot is retired on success.
  IngestOptions Resume = tinyShardOptions(Dir);
  Resume.Resume = true;
  IngestResumeOutcome Outcome;
  Result Resumed = ingestFile(Path, Resume, &Outcome);
  ASSERT_TRUE(Resumed.St.ok()) << Resumed.St.message();
  EXPECT_TRUE(Outcome.Attempted);
  EXPECT_TRUE(Outcome.Resumed) << Outcome.RejectReason;
  EXPECT_EQ(Outcome.ShardsSkipped, 5u);
  EXPECT_GT(Outcome.BytesSkipped, 0u);
  EXPECT_EQ(Resumed.Serialized, Ref.Serialized);
  EXPECT_EQ(Resumed.Summary, Ref.Summary);
  EXPECT_FALSE(fileExists(ingestCheckpointPath(Dir)));
}

TEST(IngestCheckpointTest, ResumeAcrossDifferentShardSizeAndThreads) {
  // Shard size and thread count are scheduling knobs, not semantic
  // options: a snapshot cut under one configuration must resume cleanly
  // under another, with identical results.
  std::string Dump = buildDamagedDump();
  std::string Dir = freshDir("resched");
  std::string Path = writeDump(Dir, "dump.trace", Dump);

  Result Ref = ingestFile(Path, IngestOptions());
  ASSERT_TRUE(Ref.St.ok());

  IngestOptions Crash = tinyShardOptions(Dir);
  Crash.DebugAbortAfterShards = 3;
  ASSERT_FALSE(ingestFile(Path, Crash).St.ok());

  IngestOptions Resume;
  Resume.Threads = 8;
  Resume.ShardBytes = 4096; // different cut pattern for the tail
  Resume.CheckpointDirectory = Dir;
  Resume.Resume = true;
  IngestResumeOutcome Outcome;
  Result Resumed = ingestFile(Path, Resume, &Outcome);
  ASSERT_TRUE(Resumed.St.ok());
  EXPECT_TRUE(Outcome.Resumed) << Outcome.RejectReason;
  EXPECT_EQ(Resumed.Serialized, Ref.Serialized);
  EXPECT_EQ(Resumed.Summary, Ref.Summary);
}

TEST(IngestCheckpointTest, CorruptSnapshotRejectsToCleanRestart) {
  std::string Dump = buildDamagedDump();
  std::string Dir = freshDir("corrupt");
  std::string Path = writeDump(Dir, "dump.trace", Dump);

  Result Ref = ingestFile(Path, IngestOptions());
  ASSERT_TRUE(Ref.St.ok());

  IngestOptions Crash = tinyShardOptions(Dir);
  Crash.DebugAbortAfterShards = 4;
  ASSERT_FALSE(ingestFile(Path, Crash).St.ok());

  // Flip one byte in the middle of the snapshot payload.
  std::string SnapPath = ingestCheckpointPath(Dir);
  std::ifstream In(SnapPath, std::ios::binary);
  std::string Snap((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Snap.size(), 64u);
  Snap[Snap.size() / 2] ^= 0x40;
  std::ofstream Out(SnapPath, std::ios::binary | std::ios::trunc);
  Out.write(Snap.data(), static_cast<std::streamsize>(Snap.size()));
  Out.close();

  IngestOptions Resume = tinyShardOptions(Dir);
  Resume.Resume = true;
  IngestResumeOutcome Outcome;
  Result Resumed = ingestFile(Path, Resume, &Outcome);
  ASSERT_TRUE(Resumed.St.ok());
  EXPECT_TRUE(Outcome.Attempted);
  EXPECT_FALSE(Outcome.Resumed);
  EXPECT_FALSE(Outcome.RejectReason.empty());
  EXPECT_EQ(Resumed.Serialized, Ref.Serialized);
  EXPECT_EQ(Resumed.Summary, Ref.Summary);
}

TEST(IngestCheckpointTest, SnapshotForDifferentInputIsRejected) {
  std::string DumpA = buildDamagedDump();
  // A different stream: a leading comment line shifts every byte after
  // it, so the snapshotted prefix of A can never re-hash over B.
  std::string DumpB = "# a different capture of the same app\n" + DumpA;

  std::string Dir = freshDir("mismatch");
  std::string PathA = writeDump(Dir, "a.trace", DumpA);
  std::string PathB = writeDump(Dir, "b.trace", DumpB);

  Result RefB = ingestFile(PathB, IngestOptions());
  ASSERT_TRUE(RefB.St.ok());

  IngestOptions Crash = tinyShardOptions(Dir);
  Crash.DebugAbortAfterShards = 4;
  ASSERT_FALSE(ingestFile(PathA, Crash).St.ok());

  // Resuming the *other* file against A's snapshot must hash-mismatch
  // and re-ingest B from scratch.
  IngestOptions Resume = tinyShardOptions(Dir);
  Resume.Resume = true;
  IngestResumeOutcome Outcome;
  Result Resumed = ingestFile(PathB, Resume, &Outcome);
  ASSERT_TRUE(Resumed.St.ok());
  EXPECT_FALSE(Outcome.Resumed);
  EXPECT_NE(Outcome.RejectReason.find("does not match"), std::string::npos)
      << Outcome.RejectReason;
  EXPECT_EQ(Resumed.Serialized, RefB.Serialized);
  EXPECT_EQ(Resumed.Summary, RefB.Summary);
}

TEST(IngestCheckpointTest, SnapshotUnderDifferentOptionsIsRejected) {
  std::string Dump = buildDamagedDump();
  std::string Dir = freshDir("opts");
  std::string Path = writeDump(Dir, "dump.trace", Dump);

  IngestOptions Crash = tinyShardOptions(Dir);
  Crash.DebugAbortAfterShards = 4;
  ASSERT_FALSE(ingestFile(Path, Crash).St.ok());

  // Different semantic salvage options -> different digest -> rejected.
  IngestOptions Resume = tinyShardOptions(Dir);
  Resume.Resume = true;
  Resume.Salvage.MaxDiagnostics = 64;
  IngestResumeOutcome Outcome;
  Result Resumed = ingestFile(Path, Resume, &Outcome);
  ASSERT_TRUE(Resumed.St.ok());
  EXPECT_FALSE(Outcome.Resumed);
  EXPECT_NE(Outcome.RejectReason.find("options changed"),
            std::string::npos)
      << Outcome.RejectReason;

  // And it must equal a clean run under the *new* options.
  IngestOptions Plain;
  Plain.Salvage.MaxDiagnostics = 64;
  Result Ref = ingestFile(Path, Plain);
  ASSERT_TRUE(Ref.St.ok());
  EXPECT_EQ(Resumed.Serialized, Ref.Serialized);
  EXPECT_EQ(Resumed.Summary, Ref.Summary);
}

TEST(IngestCheckpointTest, MissingSnapshotIsAFreshRunNotAnError) {
  std::string Dump = buildDamagedDump();
  std::string Dir = freshDir("fresh");
  std::string Path = writeDump(Dir, "dump.trace", Dump);

  IngestOptions Resume = tinyShardOptions(Dir);
  Resume.Resume = true;
  IngestResumeOutcome Outcome;
  Result R = ingestFile(Path, Resume, &Outcome);
  ASSERT_TRUE(R.St.ok());
  EXPECT_TRUE(Outcome.Attempted);
  EXPECT_TRUE(Outcome.NoSnapshot);
  EXPECT_FALSE(Outcome.Resumed);

  Result Ref = ingestFile(Path, IngestOptions());
  ASSERT_TRUE(Ref.St.ok());
  EXPECT_EQ(R.Serialized, Ref.Serialized);
  EXPECT_EQ(R.Summary, Ref.Summary);
}

TEST(IngestCheckpointTest, CoexistsWithAnalysisCheckpointInOneDirectory) {
  // The two phases snapshot into distinct files of the same directory;
  // neither may clobber the other.
  std::string Dir = freshDir("coexist");
  EXPECT_NE(ingestCheckpointPath(Dir).find("ingest.snapshot"),
            std::string::npos);

  std::string Dump = buildDamagedDump();
  std::string Path = writeDump(Dir, "dump.trace", Dump);

  // Plant a fake analysis snapshot; an interrupted ingest must leave it
  // alone, and the resumed ingest must not consume it.
  std::string AnalysisSnap = Dir + "/analysis.snapshot";
  {
    std::ofstream Out(AnalysisSnap, std::ios::binary);
    Out << "not-an-ingest-snapshot";
  }

  IngestOptions Crash = tinyShardOptions(Dir);
  Crash.DebugAbortAfterShards = 3;
  ASSERT_FALSE(ingestFile(Path, Crash).St.ok());
  EXPECT_TRUE(fileExists(AnalysisSnap));
  ASSERT_TRUE(fileExists(ingestCheckpointPath(Dir)));

  IngestOptions Resume = tinyShardOptions(Dir);
  Resume.Resume = true;
  IngestResumeOutcome Outcome;
  Result R = ingestFile(Path, Resume, &Outcome);
  ASSERT_TRUE(R.St.ok());
  EXPECT_TRUE(Outcome.Resumed) << Outcome.RejectReason;
  EXPECT_TRUE(fileExists(AnalysisSnap));
  EXPECT_FALSE(fileExists(ingestCheckpointPath(Dir)));
  std::remove(AnalysisSnap.c_str());
}
