//===- tests/integration/CrashRecoveryTest.cpp --------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The checkpoint/resume guarantee at the process level: offline_analyzer
// is run as a subprocess, interrupted -- by a deadline cut or by SIGKILL
// at randomized points mid-analysis -- and resumed.  The resumed run's
// stdout must be byte-identical to an uninterrupted run's, in both text
// and JSON renderings, and a corrupted snapshot must fall back to a
// clean restart with a diagnostic.  Library-level coverage of the same
// machinery lives in CheckpointTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Checkpoint.h"
#include "rt/Runtime.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace cafa;

namespace {

/// Result of one subprocess run of the analyzer.
struct RunResult {
  int ExitCode = -1;    // meaningful only when !Killed
  bool Killed = false;  // the parent SIGKILLed it mid-run
  std::string Out;      // captured stdout (the report)
  std::string Err;      // captured stderr (diagnostics)
};

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// fork/exec OFFLINE_ANALYZER_PATH with \p Args, capturing stdout and
/// stderr.  With \p KillAfterMillis >= 0 the child is SIGKILLed once
/// that much wall time passes (unless it exits first).
RunResult runAnalyzer(const std::vector<std::string> &Args,
                      const std::string &ScratchDir,
                      int KillAfterMillis = -1) {
  RunResult R;
  std::string OutPath = ScratchDir + "/stdout";
  std::string ErrPath = ScratchDir + "/stderr";

  pid_t Pid = ::fork();
  if (Pid == 0) {
    std::freopen(OutPath.c_str(), "wb", stdout);
    std::freopen(ErrPath.c_str(), "wb", stderr);
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(OFFLINE_ANALYZER_PATH));
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(OFFLINE_ANALYZER_PATH, Argv.data());
    _exit(127);
  }
  if (Pid < 0) {
    ADD_FAILURE() << "fork failed";
    return R;
  }

  int Status = 0;
  if (KillAfterMillis >= 0) {
    // Poll in 1ms steps so an early exit is observed before the kill.
    int Waited = 0;
    for (;;) {
      pid_t Done = ::waitpid(Pid, &Status, WNOHANG);
      if (Done == Pid)
        break;
      if (Waited >= KillAfterMillis) {
        ::kill(Pid, SIGKILL);
        ::waitpid(Pid, &Status, 0);
        break;
      }
      ::usleep(1000);
      ++Waited;
    }
  } else {
    ::waitpid(Pid, &Status, 0);
  }

  R.Killed = WIFSIGNALED(Status);
  if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  R.Out = readFile(OutPath);
  R.Err = readFile(ErrPath);
  return R;
}

/// One shared trace file (and a larger one for the kill tests), recorded
/// once per process.
class CrashRecoveryTest : public testing::Test {
protected:
  static std::string Scratch;
  static std::string TracePath;

  static void SetUpTestSuite() {
    Scratch = testing::TempDir() + "/cafa_crash_recovery";
    ::mkdir(Scratch.c_str(), 0755);
    TracePath = Scratch + "/app.trace";

    apps::AppBuilder App("crashy");
    App.seedIntraThreadRace("alpha");
    App.seedInterThreadRace("beta");
    App.addGuardedCommutativePair("delta");
    App.fillVolumeTo(600);
    Table1Row Dummy;
    apps::AppModel Model = App.finish(Dummy);
    Trace T = runScenario(Model.S, RuntimeOptions());
    ASSERT_TRUE(writeTraceFile(T, TracePath).ok());
  }

  /// A fresh checkpoint dir with no stale snapshot.
  std::string freshDir(const std::string &Name) {
    std::string Dir = Scratch + "/" + Name;
    ::mkdir(Dir.c_str(), 0755);
    std::remove(checkpointPath(Dir).c_str());
    return Dir;
  }

  bool snapshotExists(const std::string &Dir) {
    struct stat St;
    return ::stat(checkpointPath(Dir).c_str(), &St) == 0;
  }
};

std::string CrashRecoveryTest::Scratch;
std::string CrashRecoveryTest::TracePath;

TEST_F(CrashRecoveryTest, DeadlineCutThenResumeMatchesByteForByte) {
  for (bool Json : {false, true}) {
    SCOPED_TRACE(Json ? "json" : "text");
    std::string Dir = freshDir(Json ? "cut_json" : "cut_text");
    std::vector<std::string> Render = {"analyze", TracePath};
    if (Json)
      Render.push_back("--json");

    RunResult Ref = runAnalyzer(Render, Dir);
    ASSERT_FALSE(Ref.Killed);
    ASSERT_TRUE(Ref.ExitCode == 0 || Ref.ExitCode == 1) << Ref.Err;
    ASSERT_FALSE(Ref.Out.empty());

    std::vector<std::string> Cut = Render;
    Cut.push_back("--deadline=0.000001");
    Cut.push_back("--checkpoint-dir=" + Dir);
    RunResult CutRun = runAnalyzer(Cut, Dir);
    ASSERT_FALSE(CutRun.Killed);
    EXPECT_EQ(CutRun.ExitCode, 3) << CutRun.Err;
    ASSERT_TRUE(snapshotExists(Dir)) << CutRun.Err;
    EXPECT_NE(CutRun.Out, Ref.Out); // the cut report really was partial

    std::vector<std::string> Resume = Render;
    Resume.push_back("--checkpoint-dir=" + Dir);
    Resume.push_back("--resume");
    RunResult Resumed = runAnalyzer(Resume, Dir);
    ASSERT_FALSE(Resumed.Killed);
    EXPECT_EQ(Resumed.ExitCode, 4) << Resumed.Err;
    EXPECT_NE(Resumed.Err.find("resumed from checkpoint"),
              std::string::npos)
        << Resumed.Err;
    EXPECT_EQ(Resumed.Out, Ref.Out);
    EXPECT_FALSE(snapshotExists(Dir)); // retired on clean completion
  }
}

TEST_F(CrashRecoveryTest, CorruptedSnapshotFallsBackToACleanRun) {
  std::string Dir = freshDir("corrupt");
  RunResult Ref = runAnalyzer({"analyze", TracePath, "--json"}, Dir);
  ASSERT_FALSE(Ref.Killed);

  RunResult Cut = runAnalyzer({"analyze", TracePath, "--json",
                               "--deadline=0.000001",
                               "--checkpoint-dir=" + Dir},
                              Dir);
  ASSERT_FALSE(Cut.Killed);
  ASSERT_TRUE(snapshotExists(Dir));

  // Flip one payload byte; the checksum must catch it.
  std::string Path = checkpointPath(Dir);
  std::string Bytes = readFile(Path);
  ASSERT_GT(Bytes.size(), 40u);
  Bytes[Bytes.size() - 5] = static_cast<char>(Bytes[Bytes.size() - 5] ^ 1);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  RunResult Resumed = runAnalyzer({"analyze", TracePath, "--json",
                                   "--checkpoint-dir=" + Dir, "--resume"},
                                  Dir);
  ASSERT_FALSE(Resumed.Killed);
  EXPECT_NE(Resumed.Err.find("checkpoint rejected"), std::string::npos)
      << Resumed.Err;
  // Clean restart: same report, and *not* exit 4 (nothing was resumed).
  EXPECT_EQ(Resumed.Out, Ref.Out);
  EXPECT_EQ(Resumed.ExitCode, Ref.ExitCode) << Resumed.Err;
}

TEST_F(CrashRecoveryTest, SigkillAtRandomizedPointsResumesByteIdentical) {
  RunResult Ref =
      runAnalyzer({"analyze", TracePath, "--json"}, freshDir("kill_ref"));
  ASSERT_FALSE(Ref.Killed);
  ASSERT_TRUE(Ref.ExitCode == 0 || Ref.ExitCode == 1) << Ref.Err;

  // Kill at spread-out points: some land before the first checkpoint
  // save, some mid-analysis, some after the run already finished.  The
  // invariant is the same everywhere: rerunning with --resume yields
  // exactly the reference report.
  const int KillDelaysMillis[] = {1, 3, 6, 12, 25, 50};
  for (int Delay : KillDelaysMillis) {
    SCOPED_TRACE("kill after " + std::to_string(Delay) + "ms");
    std::string Dir = freshDir("kill_" + std::to_string(Delay));
    RunResult First = runAnalyzer({"analyze", TracePath, "--json",
                                   "--checkpoint-dir=" + Dir,
                                   "--checkpoint-every=1"},
                                  Dir, Delay);
    if (!First.Killed) {
      // Finished before the kill landed; the run must simply be clean.
      EXPECT_EQ(First.Out, Ref.Out);
      continue;
    }

    RunResult Resumed = runAnalyzer({"analyze", TracePath, "--json",
                                     "--checkpoint-dir=" + Dir,
                                     "--checkpoint-every=1", "--resume"},
                                    Dir);
    ASSERT_FALSE(Resumed.Killed);
    // 4 when a snapshot was adopted, 0/1 when the kill landed before the
    // first save (fresh start) -- never 2/3, and always the same bytes.
    EXPECT_TRUE(Resumed.ExitCode == 4 || Resumed.ExitCode == Ref.ExitCode)
        << "exit " << Resumed.ExitCode << "\n"
        << Resumed.Err;
    EXPECT_EQ(Resumed.Out, Ref.Out) << Resumed.Err;
    EXPECT_FALSE(snapshotExists(Dir));
  }
}

TEST_F(CrashRecoveryTest, SigkillUnderChainOracleResumesByteIdentical) {
  // The SIGKILL sweep again with --reach=chain pinned on every leg: the
  // chain oracle's decomposition + clock matrix travels through the v3
  // snapshot and must land a report byte-identical to an uninterrupted
  // chain run -- which itself must match the default-oracle reference.
  RunResult Default =
      runAnalyzer({"analyze", TracePath, "--json"}, freshDir("ckill_def"));
  RunResult Ref = runAnalyzer({"analyze", TracePath, "--json",
                               "--reach=chain"},
                              freshDir("ckill_ref"));
  ASSERT_FALSE(Ref.Killed);
  ASSERT_TRUE(Ref.ExitCode == 0 || Ref.ExitCode == 1) << Ref.Err;
  EXPECT_EQ(Ref.Out, Default.Out); // oracle choice never changes a report

  const int KillDelaysMillis[] = {2, 8, 30};
  for (int Delay : KillDelaysMillis) {
    SCOPED_TRACE("kill after " + std::to_string(Delay) + "ms");
    std::string Dir = freshDir("ckill_" + std::to_string(Delay));
    RunResult First = runAnalyzer({"analyze", TracePath, "--json",
                                   "--reach=chain",
                                   "--checkpoint-dir=" + Dir,
                                   "--checkpoint-every=1"},
                                  Dir, Delay);
    if (!First.Killed) {
      EXPECT_EQ(First.Out, Ref.Out);
      continue;
    }

    RunResult Resumed = runAnalyzer({"analyze", TracePath, "--json",
                                     "--reach=chain",
                                     "--checkpoint-dir=" + Dir,
                                     "--checkpoint-every=1", "--resume"},
                                    Dir);
    ASSERT_FALSE(Resumed.Killed);
    EXPECT_TRUE(Resumed.ExitCode == 4 || Resumed.ExitCode == Ref.ExitCode)
        << "exit " << Resumed.ExitCode << "\n"
        << Resumed.Err;
    EXPECT_EQ(Resumed.Out, Ref.Out) << Resumed.Err;
    EXPECT_FALSE(snapshotExists(Dir));
  }
}

} // namespace
