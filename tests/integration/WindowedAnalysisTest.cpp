//===- tests/integration/WindowedAnalysisTest.cpp -----------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Pipeline-level contract of the windowed streaming analysis
// (docs/windowed-analysis.md): at every window size and thread count
// the analyzer renders byte-identical reports, the memory-pressure
// ladder sheds to the window without changing a byte, a run cut in
// either detect mode resumes in the other (the snapshot's happens-
// before frontier is mode-agnostic and WindowEvents is excluded from
// the options digest), SIGKILL mid-windowed-run resumes byte-identical
// at the process level, and an input too big for --mem-limit fails
// with a clean usage error unless a window streams it.
//
// Batch references pin WindowEvents = WindowOff: these tests also run
// under the windowed CI leg, where CAFA_WINDOW is set for the whole
// suite and would otherwise silently turn the reference windowed.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "rt/Runtime.h"
#include "support/Rng.h"
#include "trace/IngestSession.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace cafa;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

std::vector<std::string> fixtureFiles() {
  std::vector<std::string> Files;
  if (DIR *D = ::opendir(CAFA_TRACE_FIXTURE_DIR)) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name.size() > 6 && Name.rfind(".trace") == Name.size() - 6)
        Files.push_back(std::string(CAFA_TRACE_FIXTURE_DIR) + "/" + Name);
    }
    ::closedir(D);
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// Both renderings of an analysis at \p Window / \p Threads.
std::pair<std::string, std::string> renderWith(const Trace &T,
                                               uint64_t Window,
                                               unsigned Threads) {
  DetectorOptions Opt;
  Opt.WindowEvents = Window;
  Opt.Hb.Threads = Threads;
  AnalysisResult R = analyzeTrace(T, Opt);
  if (Window != DetectorOptions::WindowOff) {
    EXPECT_EQ(R.WindowEventsUsed, Window);
    EXPECT_EQ(R.ExtractMillis, 0.0);
  } else {
    EXPECT_EQ(R.WindowEventsUsed, 0u);
  }
  return {renderRaceReport(R.Report, T), renderRaceReportJson(R.Report, T)};
}

TEST(WindowedAnalysisTest, FixturesByteIdenticalAcrossWindowSizes) {
  std::vector<std::string> Files = fixtureFiles();
  ASSERT_FALSE(Files.empty());
  for (const std::string &Path : Files) {
    SCOPED_TRACE(Path);
    Trace T;
    IngestReport Ingest;
    Status S = ingestTrace(readFile(Path), T, Ingest);
    if (!S.ok())
      continue; // rejected fixtures are ingest-layer tests, not ours
    auto [RefText, RefJson] = renderWith(T, DetectorOptions::WindowOff, 1);
    for (uint64_t Window : {uint64_t(64), uint64_t(4096)})
      for (unsigned Threads : {1u, 4u}) {
        auto [Text, Json] = renderWith(T, Window, Threads);
        EXPECT_EQ(Text, RefText)
            << "window " << Window << ", " << Threads << " threads";
        EXPECT_EQ(Json, RefJson)
            << "window " << Window << ", " << Threads << " threads";
      }
  }
}

/// Random structurally valid trace with enough queue traffic to exercise
/// the rule-engine scans and enough pointer traffic to give the detector
/// real pairs (the generator AnalysisThreadsTest pins thread parity
/// with; duplicated by project convention).
Trace randomPtrTrace(uint64_t Seed, size_t Steps) {
  Rng R(Seed);
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 65536);

  std::vector<QueueId> Queues;
  for (int I = 0, E = 1 + static_cast<int>(R.below(3)); I != E; ++I)
    Queues.push_back(TB.addQueue("q" + std::to_string(I)));

  struct LiveTask {
    TaskId Id;
    bool IsEvent;
    QueueId Queue;
  };
  std::vector<LiveTask> Running, Pending;
  std::vector<TaskId> ActivePerQueue(Queues.size(), TaskId::invalid());
  for (int I = 0, E = 2 + static_cast<int>(R.below(2)); I != E; ++I) {
    TaskId T = TB.addThread("thread" + std::to_string(I));
    TB.begin(T);
    Running.push_back({T, false, QueueId()});
  }

  size_t EventCounter = 0;
  uint32_t Pc = 0;
  for (size_t Step = 0; Step != Steps && !Running.empty(); ++Step) {
    LiveTask &Actor = Running[R.below(Running.size())];
    switch (R.below(10)) {
    case 0: { // send a new event
      QueueId Q = Queues[R.below(Queues.size())];
      bool AtFront = R.chance(1, 5);
      uint64_t Delay = AtFront ? 0 : R.below(4);
      TaskId E = TB.addEvent("event" + std::to_string(EventCounter++), Q,
                             Delay, AtFront, false);
      if (AtFront)
        TB.sendAtFront(Actor.Id, E);
      else
        TB.send(Actor.Id, E, Delay);
      Pending.push_back({E, true, Q});
      break;
    }
    case 1: { // begin a pending event on an idle queue
      for (size_t I = 0; I != Pending.size(); ++I) {
        LiveTask &P = Pending[I];
        if (ActivePerQueue[P.Queue.index()].isValid())
          continue;
        TB.begin(P.Id);
        ActivePerQueue[P.Queue.index()] = P.Id;
        Running.push_back(P);
        Pending.erase(Pending.begin() + static_cast<long>(I));
        break;
      }
      break;
    }
    case 2: { // end an event
      if (Actor.IsEvent && Running.size() > 1) {
        ActivePerQueue[Actor.Queue.index()] = TaskId::invalid();
        TB.end(Actor.Id);
        Running.erase(Running.begin() + (&Actor - Running.data()));
      }
      break;
    }
    case 3: { // lock-guarded access pair
      uint32_t Var = static_cast<uint32_t>(R.below(4));
      uint32_t Lock = static_cast<uint32_t>(R.below(2));
      TB.lockAcquire(Actor.Id, Lock);
      TB.ptrRead(Actor.Id, Var, 9 + Var, M, ++Pc);
      TB.deref(Actor.Id, 9 + Var, DerefKind::Invoke, M, ++Pc);
      TB.lockRelease(Actor.Id, Lock);
      break;
    }
    case 4: // free a cell
      TB.ptrWrite(Actor.Id, static_cast<uint32_t>(R.below(4)), 0, M, ++Pc);
      break;
    default: { // use a cell
      uint32_t Var = static_cast<uint32_t>(R.below(4));
      TB.ptrRead(Actor.Id, Var, 9 + Var, M, ++Pc);
      TB.deref(Actor.Id, 9 + Var, DerefKind::Invoke, M, ++Pc);
      break;
    }
    }
  }
  for (const LiveTask &L : Running)
    TB.end(L.Id);
  return TB.take();
}

class RandomWindowParityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomWindowParityTest, ReportsByteIdenticalAcrossWindowSizes) {
  Trace T = randomPtrTrace(GetParam() * 0x9E3779B97F4A7C15ull + 3, 250);
  ASSERT_TRUE(validateTrace(T).ok()) << validateTrace(T).message();
  auto [RefText, RefJson] = renderWith(T, DetectorOptions::WindowOff, 1);
  // Window 64 is deliberately pathological: most traces span a few
  // thousand records, so the scan sweeps dozens of times per run.
  for (uint64_t Window : {uint64_t(64), uint64_t(1024)})
    for (unsigned Threads : {1u, 4u}) {
      auto [Text, Json] = renderWith(T, Window, Threads);
      ASSERT_EQ(Text, RefText) << "seed " << GetParam() << " window "
                               << Window << " at " << Threads << " threads";
      ASSERT_EQ(Json, RefJson) << "seed " << GetParam() << " window "
                               << Window << " at " << Threads << " threads";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds100, RandomWindowParityTest,
                         testing::Range<uint64_t>(0, 100));

Trace buildAppTrace() {
  apps::AppBuilder App("windowed");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.addGuardedCommutativePair("delta");
  App.fillVolumeTo(300);
  Table1Row Dummy;
  apps::AppModel Model = App.finish(Dummy);
  return runScenario(Model.S, RuntimeOptions());
}

std::string freshCheckpointDir(const char *Name) {
  std::string Dir = testing::TempDir() + "/cafa_windowed_" + Name;
  ::mkdir(Dir.c_str(), 0755);
  std::remove(checkpointPath(Dir).c_str());
  return Dir;
}

TEST(WindowedAnalysisTest, DeadlineCutResumesWindowedByteIdentical) {
  Trace T = buildAppTrace();
  std::string Dir = freshCheckpointDir("cut");

  DetectorOptions Win;
  Win.WindowEvents = 64;
  AnalysisResult Clean = analyzeTrace(T, Win);
  ASSERT_FALSE(Clean.Report.Partial);

  DetectorOptions Tiny = Win;
  Tiny.DeadlineMillis = 1e-6;
  AnalysisOptions CutOpt(Tiny);
  CutOpt.Checkpoint.Directory = Dir;
  AnalysisResult Cut = analyzeTrace(T, CutOpt);
  ASSERT_TRUE(Cut.Report.Partial);

  AnalysisOptions ResumeOpt(Win);
  ResumeOpt.Checkpoint.Directory = Dir;
  ResumeOpt.Checkpoint.Resume = true;
  AnalysisResult Resumed = analyzeTrace(T, ResumeOpt);
  ASSERT_TRUE(Resumed.Resume.Resumed) << Resumed.Resume.RejectReason;
  EXPECT_FALSE(Resumed.Report.Partial);
  EXPECT_EQ(renderRaceReportJson(Resumed.Report, T),
            renderRaceReportJson(Clean.Report, T));
  EXPECT_EQ(renderRaceReport(Resumed.Report, T),
            renderRaceReport(Clean.Report, T));
  std::remove(checkpointPath(Dir).c_str());
}

TEST(WindowedAnalysisTest, CrossModeResumeRecomputesNeverRejects) {
  // WindowEvents is excluded from the options digest on purpose: a
  // snapshot cut in one detect mode must resume in the other.  The
  // happens-before frontier is mode-agnostic; any frozen detect
  // frontier of the *other* mode is simply not applicable and the
  // detect phase recomputes from the restored relation.
  Trace T = buildAppTrace();
  DetectorOptions Batch;
  Batch.WindowEvents = DetectorOptions::WindowOff;
  DetectorOptions Win;
  Win.WindowEvents = 64;
  AnalysisResult Clean = analyzeTrace(T, Batch);
  ASSERT_FALSE(Clean.Report.Partial);
  std::string CleanJson = renderRaceReportJson(Clean.Report, T);

  struct Direction {
    const char *Name;
    DetectorOptions CutAs, ResumeAs;
  };
  const Direction Directions[] = {{"batch-to-windowed", Batch, Win},
                                  {"windowed-to-batch", Win, Batch}};
  for (const Direction &D : Directions) {
    SCOPED_TRACE(D.Name);
    std::string Dir = freshCheckpointDir(D.Name);
    DetectorOptions Tiny = D.CutAs;
    Tiny.DeadlineMillis = 1e-6;
    AnalysisOptions CutOpt(Tiny);
    CutOpt.Checkpoint.Directory = Dir;
    AnalysisResult Cut = analyzeTrace(T, CutOpt);
    ASSERT_TRUE(Cut.Report.Partial);

    AnalysisOptions ResumeOpt(D.ResumeAs);
    ResumeOpt.Checkpoint.Directory = Dir;
    ResumeOpt.Checkpoint.Resume = true;
    AnalysisResult Resumed = analyzeTrace(T, ResumeOpt);
    EXPECT_TRUE(Resumed.Resume.Resumed) << Resumed.Resume.RejectReason;
    EXPECT_FALSE(Resumed.Report.Partial);
    EXPECT_EQ(renderRaceReportJson(Resumed.Report, T), CleanJson);
    std::remove(checkpointPath(Dir).c_str());
  }
}

TEST(WindowedAnalysisTest, MemoryPressureLadderShedsToTheWindow) {
  // The auto ladder must engage only when nothing was requested: pin
  // the environment for the duration (the windowed CI leg exports
  // CAFA_WINDOW for the whole suite).
  char *SavedEnv = std::getenv("CAFA_WINDOW");
  std::string SavedVal = SavedEnv ? SavedEnv : "";
  ::unsetenv("CAFA_WINDOW");

  Trace T = buildAppTrace();
  DetectorOptions Batch;
  Batch.WindowEvents = DetectorOptions::WindowOff;
  AnalysisResult Clean = analyzeTrace(T, Batch);

  // A 1-byte budget downgrades the reachability oracle; the ladder
  // then sheds the detect phase to the windowed scan as well.
  DetectorOptions Squeezed;
  Squeezed.Hb.MemLimitBytes = 1;
  AnalysisResult R = analyzeTrace(T, Squeezed);
  EXPECT_TRUE(R.Degradation.DowngradedForMemory);
  EXPECT_TRUE(R.WindowShedByMemory);
  EXPECT_EQ(R.WindowEventsUsed, 65536u);
  EXPECT_GT(R.WindowedDetect.OverlayHighWaterBytes, 0u);
  // Shedding is a memory decision, never a result decision.
  EXPECT_EQ(renderRaceReportJson(R.Report, T),
            renderRaceReportJson(Clean.Report, T));

  // An explicit batch pin beats the ladder.
  DetectorOptions Pinned = Squeezed;
  Pinned.WindowEvents = DetectorOptions::WindowOff;
  AnalysisResult P = analyzeTrace(T, Pinned);
  EXPECT_FALSE(P.WindowShedByMemory);
  EXPECT_EQ(P.WindowEventsUsed, 0u);
  EXPECT_EQ(renderRaceReportJson(P.Report, T),
            renderRaceReportJson(Clean.Report, T));

  if (SavedEnv)
    ::setenv("CAFA_WINDOW", SavedVal.c_str(), 1);
}

TEST(WindowedAnalysisTest, WindowedFrontierSurvivesSnapshotRoundTrip) {
  AnalysisSnapshot Snap;
  Snap.TraceFingerprint = 0x1122334455667788ull;
  Snap.NumRecords = 42;
  Snap.OptionsDigest = 0x99aabbccddeeff00ull;
  Snap.Phase = SnapshotPhase::Detect;
  Snap.Hb.UsedReach = ReachMode::Chain;
  Snap.Hb.Saturated = true;
  Snap.HasWindowedDetect = true;
  Snap.WindowedDetect.CursorRecord = 37;
  Snap.WindowedDetect.PairsDoneAtCursor = 12;
  Snap.WindowedDetect.FiltersShed = true;
  Snap.WindowedDetect.Filters.CandidatePairs = 4242;
  Snap.WindowedDetect.Filters.SameTask = 7;
  Snap.WindowedDetect.Survivors = {{1, 2, 10, 20, 5, 6, 7, 8, 1},
                                   {3, 4, 30, 40, 9, 10, 11, 12, 0}};

  std::string Dir = freshCheckpointDir("roundtrip");
  std::string Path = checkpointPath(Dir);
  ASSERT_TRUE(saveAnalysisSnapshot(Snap, Path).ok());

  AnalysisSnapshot Back;
  ASSERT_TRUE(loadAnalysisSnapshot(Back, Path).ok());
  ASSERT_TRUE(Back.HasWindowedDetect);
  EXPECT_EQ(Back.WindowedDetect.CursorRecord, 37u);
  EXPECT_EQ(Back.WindowedDetect.PairsDoneAtCursor, 12u);
  EXPECT_TRUE(Back.WindowedDetect.FiltersShed);
  EXPECT_EQ(Back.WindowedDetect.Filters.CandidatePairs, 4242u);
  EXPECT_EQ(Back.WindowedDetect.Filters.SameTask, 7u);
  ASSERT_EQ(Back.WindowedDetect.Survivors.size(), 2u);
  EXPECT_EQ(Back.WindowedDetect.Survivors[0].FreeRecord, 20u);
  EXPECT_EQ(Back.WindowedDetect.Survivors[0].SameLooper, 1u);
  EXPECT_EQ(Back.WindowedDetect.Survivors[1].FreePc, 12u);
  std::remove(Path.c_str());
}

/// fork/exec the analyzer capturing stdout+stderr; SIGKILL after
/// \p KillAfterMillis unless it exits first.  CAFA_WINDOW is scrubbed
/// from the child environment: these tests pass the window (or its
/// absence) explicitly and must mean it even under the windowed CI leg.
struct RunResult {
  int ExitCode = -1;
  bool Killed = false;
  std::string Out, Err;
};

RunResult runAnalyzer(const std::vector<std::string> &Args,
                      const std::string &ScratchDir,
                      int KillAfterMillis = -1) {
  RunResult R;
  std::string OutPath = ScratchDir + "/stdout";
  std::string ErrPath = ScratchDir + "/stderr";
  pid_t Pid = ::fork();
  if (Pid == 0) {
    ::unsetenv("CAFA_WINDOW");
    std::freopen(OutPath.c_str(), "wb", stdout);
    std::freopen(ErrPath.c_str(), "wb", stderr);
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(OFFLINE_ANALYZER_PATH));
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(OFFLINE_ANALYZER_PATH, Argv.data());
    _exit(127);
  }
  if (Pid < 0) {
    ADD_FAILURE() << "fork failed";
    return R;
  }
  int Status = 0;
  if (KillAfterMillis >= 0) {
    int Waited = 0;
    for (;;) {
      pid_t Done = ::waitpid(Pid, &Status, WNOHANG);
      if (Done == Pid)
        break;
      if (Waited >= KillAfterMillis) {
        ::kill(Pid, SIGKILL);
        ::waitpid(Pid, &Status, 0);
        break;
      }
      ::usleep(1000);
      ++Waited;
    }
  } else {
    ::waitpid(Pid, &Status, 0);
  }
  R.Killed = WIFSIGNALED(Status);
  if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  R.Out = readFile(OutPath);
  R.Err = readFile(ErrPath);
  return R;
}

TEST(WindowedAnalysisTest, SigkillMidWindowedRunResumesByteIdentical) {
  std::string Scratch = testing::TempDir() + "/cafa_windowed_kill";
  ::mkdir(Scratch.c_str(), 0755);
  std::string TracePath = Scratch + "/app.trace";

  apps::AppBuilder App("winkill");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.addGuardedCommutativePair("delta");
  App.fillVolumeTo(600);
  Table1Row Dummy;
  Trace T = runScenario(App.finish(Dummy).S, RuntimeOptions());
  ASSERT_TRUE(writeTraceFile(T, TracePath).ok());

  RunResult Ref =
      runAnalyzer({"analyze", TracePath, "--json", "--window=64"}, Scratch);
  ASSERT_FALSE(Ref.Killed);
  ASSERT_TRUE(Ref.ExitCode == 0 || Ref.ExitCode == 1);
  // The windowed run reports the same races as the batch run.
  RunResult Batch = runAnalyzer({"analyze", TracePath, "--json"}, Scratch);
  EXPECT_EQ(Ref.Out, Batch.Out);
  EXPECT_EQ(Ref.ExitCode, Batch.ExitCode);

  for (int Delay : {2, 8, 25}) {
    SCOPED_TRACE("kill after " + std::to_string(Delay) + "ms");
    std::string Dir = Scratch + "/kill_" + std::to_string(Delay);
    ::mkdir(Dir.c_str(), 0755);
    std::remove(checkpointPath(Dir).c_str());
    RunResult First =
        runAnalyzer({"analyze", TracePath, "--json", "--window=64",
                     "--checkpoint-dir=" + Dir, "--checkpoint-every=1"},
                    Dir, Delay);
    if (!First.Killed) {
      EXPECT_EQ(First.Out, Ref.Out);
      continue;
    }
    RunResult Resumed =
        runAnalyzer({"analyze", TracePath, "--json", "--window=64",
                     "--checkpoint-dir=" + Dir, "--checkpoint-every=1",
                     "--resume"},
                    Dir);
    ASSERT_FALSE(Resumed.Killed);
    EXPECT_TRUE(Resumed.ExitCode == 4 || Resumed.ExitCode == Ref.ExitCode);
    EXPECT_EQ(Resumed.Out, Ref.Out);
  }

  // Deterministic variant: the chaos hook kills the worker right after
  // its first snapshot save, wherever that save lands.
  std::string Dir = Scratch + "/chaos";
  ::mkdir(Dir.c_str(), 0755);
  std::remove(checkpointPath(Dir).c_str());
  RunResult Chaos =
      runAnalyzer({"analyze", TracePath, "--json", "--window=64",
                   "--checkpoint-dir=" + Dir, "--checkpoint-every=1",
                   "--chaos-kill-after-save"},
                  Dir, 10000);
  ASSERT_NE(Chaos.ExitCode, 127);
  RunResult Recovered =
      runAnalyzer({"analyze", TracePath, "--json", "--window=64",
                   "--checkpoint-dir=" + Dir, "--checkpoint-every=1",
                   "--resume"},
                  Dir);
  ASSERT_FALSE(Recovered.Killed);
  EXPECT_TRUE(Recovered.ExitCode == 4 || Recovered.ExitCode == Ref.ExitCode);
  EXPECT_EQ(Recovered.Out, Ref.Out);
}

TEST(WindowedAnalysisTest, OversizedInputNeedsAWindowToStream) {
  std::string Scratch = testing::TempDir() + "/cafa_windowed_oversize";
  ::mkdir(Scratch.c_str(), 0755);
  std::string TracePath = Scratch + "/app.trace";
  Trace T = buildAppTrace();
  ASSERT_TRUE(writeTraceFile(T, TracePath).ok());
  struct stat St;
  ASSERT_EQ(::stat(TracePath.c_str(), &St), 0);
  ASSERT_GT(St.st_size, 2048);

  // Without a window the whole input must fit the budget: the analyzer
  // fails up front with a usage error instead of OOMing mid-ingest.
  RunResult Refused = runAnalyzer(
      {"analyze", TracePath, "--json", "--mem-limit=2048"}, Scratch);
  EXPECT_EQ(Refused.ExitCode, 2);
  EXPECT_NE(Refused.Err.find("memory budget"), std::string::npos)
      << Refused.Err;

  // The same budget with a window streams the input and completes.
  RunResult Streamed = runAnalyzer(
      {"analyze", TracePath, "--json", "--mem-limit=2048", "--window=64"},
      Scratch);
  EXPECT_TRUE(Streamed.ExitCode == 0 || Streamed.ExitCode == 1)
      << Streamed.ExitCode << "\n"
      << Streamed.Err;
  RunResult Plain = runAnalyzer({"analyze", TracePath, "--json"}, Scratch);
  EXPECT_EQ(Streamed.Out, Plain.Out);
}

} // namespace
