//===- tests/integration/FleetChaosTest.cpp -----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The fleet supervisor under chaos: a batch is seeded with workers that
// are SIGKILLed mid-analysis, hang forever, OOM inside an RLIMIT_AS
// jail, or chew on corrupt input -- and the batch must still terminate,
// with every healthy job's report byte-identical to a fault-free run
// and every faulty job in a deterministic terminal state.  The
// linchpin assertion is "retry is resume": a job whose worker died
// after saving a snapshot must complete on the retry with exit 4
// (resumed-from-checkpoint), not by redoing the analysis from scratch.
//
// The chaos itself is deterministic: the analyzer's --chaos-* hooks
// (kill-after-save, hang, alloc ballast) are injected per (job,
// attempt) through FleetOptions::ChaosArgsForAttempt, so every run
// replays the same fault schedule.
//
//===----------------------------------------------------------------------===//

#include "fleet/Fleet.h"

#include "apps/AppKit.h"
#include "rt/Runtime.h"
#include "trace/FaultInjector.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define CAFA_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CAFA_HAS_ASAN 1
#endif
#endif

using namespace cafa;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

class FleetChaosTest : public testing::Test {
protected:
  static std::string Scratch;
  static std::string RacyTrace;    // medium, several races
  static std::string OtherTrace;   // different race population
  static std::string CleanTrace;   // small, no races
  static std::string DamagedTrace; // FaultInjector-truncated RacyTrace
  static std::string GarbageTrace; // not a trace at all

  static void SetUpTestSuite() {
    Scratch = testing::TempDir() + "/cafa_fleet_chaos";
    ::mkdir(Scratch.c_str(), 0755);
    Table1Row Dummy;

    {
      apps::AppBuilder App("fleet_racy");
      App.seedIntraThreadRace("alpha");
      App.seedInterThreadRace("beta");
      App.fillVolumeTo(600);
      apps::AppModel Model = App.finish(Dummy);
      Trace T = runScenario(Model.S, RuntimeOptions());
      RacyTrace = Scratch + "/racy.trace";
      ASSERT_TRUE(writeTraceFile(T, RacyTrace).ok());
    }
    {
      apps::AppBuilder App("fleet_other");
      App.seedIntraThreadRace("gamma");
      App.fillVolumeTo(600);
      apps::AppModel Model = App.finish(Dummy);
      Trace T = runScenario(Model.S, RuntimeOptions());
      OtherTrace = Scratch + "/other.trace";
      ASSERT_TRUE(writeTraceFile(T, OtherTrace).ok());
    }
    {
      apps::AppBuilder App("fleet_clean");
      App.addGuardedCommutativePair("quiet");
      apps::AppModel Model = App.finish(Dummy);
      Trace T = runScenario(Model.S, RuntimeOptions());
      CleanTrace = Scratch + "/clean.trace";
      ASSERT_TRUE(writeTraceFile(T, CleanTrace).ok());
    }
    {
      // A logger stream that died mid-record: salvage must repair it
      // into a degraded (exit 3) analysis, not an unreadable one.  The
      // seed is chosen so the (deterministic) cut lands mid-file --
      // deep enough that records are genuinely lost, not in the
      // header where the result would be a benign short trace.
      InjectedFault Fault = injectFault(
          slurp(RacyTrace), FaultKind::TruncateAtOffset, /*Seed=*/6);
      DamagedTrace = Scratch + "/damaged.trace";
      std::ofstream Out(DamagedTrace, std::ios::binary);
      Out << Fault.Text;
    }
    {
      GarbageTrace = Scratch + "/garbage.trace";
      std::ofstream Out(GarbageTrace, std::ios::binary);
      Out << "not a CAFA trace\n";
    }
  }

  /// Common options: real analyzer, fast deterministic retries.
  FleetOptions baseOptions(const std::string &RootName) {
    FleetOptions Options;
    Options.AnalyzerPath = OFFLINE_ANALYZER_PATH;
    Options.CheckpointRoot = Scratch + "/" + RootName;
    Options.CheckpointEveryMillis = 1; // snapshot early and often
    Options.Backoff.InitialMillis = 0; // zero-sleep fast path
    return Options;
  }

  FleetJob job(const char *Id, const std::string &Trace) {
    FleetJob Job;
    Job.Id = Id;
    Job.TracePath = Trace;
    return Job;
  }

  const FleetJobResult *find(const FleetResult &R, const char *Id) {
    for (const FleetJobResult &Job : R.Jobs)
      if (Job.Id == Id)
        return &Job;
    return nullptr;
  }
};

std::string FleetChaosTest::Scratch;
std::string FleetChaosTest::RacyTrace;
std::string FleetChaosTest::OtherTrace;
std::string FleetChaosTest::CleanTrace;
std::string FleetChaosTest::DamagedTrace;
std::string FleetChaosTest::GarbageTrace;

TEST_F(FleetChaosTest, ChaosBatchTerminatesInDeterministicTerminalStates) {
  // Fault-free reference: what the healthy jobs must reproduce.
  FleetResult Ref;
  ASSERT_TRUE(runFleet({job("healthy", RacyTrace)}, baseOptions("ref"),
                       Ref)
                  .ok());
  ASSERT_EQ(Ref.Jobs[0].State, "done");
  ASSERT_FALSE(Ref.Jobs[0].ReportJson.empty());

  FleetOptions Options = baseOptions("chaos");
  Options.Workers = 3;
  Options.MaxAttempts = 2;
  Options.WatchdogMillis = 4000;
  Options.ChaosArgsForAttempt =
      [](const FleetJob &Job,
         unsigned Attempt) -> std::vector<std::string> {
    if (Job.Id == "kill_me" && Attempt == 1)
      return {"--chaos-kill-after-save"}; // SIGKILL once a snapshot lands
    if (Job.Id == "hang_me")
      return {"--chaos-hang-ms=60000"}; // far beyond the watchdog
    return {};
  };

  FleetResult Result;
  ASSERT_TRUE(runFleet({job("healthy", RacyTrace),
                        job("kill_me", RacyTrace),
                        job("hang_me", CleanTrace),
                        job("corrupt", DamagedTrace),
                        job("garbage", GarbageTrace)},
                       Options, Result)
                  .ok());
  ASSERT_EQ(Result.Jobs.size(), 5u);
  // Input order is preserved no matter which worker finished first.
  EXPECT_EQ(Result.Jobs[0].Id, "healthy");
  EXPECT_EQ(Result.Jobs[4].Id, "garbage");

  // Healthy job: untouched by its neighbours' chaos, byte-identical
  // report to the fault-free run.
  const FleetJobResult *Healthy = find(Result, "healthy");
  ASSERT_NE(Healthy, nullptr);
  EXPECT_EQ(Healthy->State, "done");
  EXPECT_EQ(Healthy->Attempts, 1u);
  EXPECT_EQ(Healthy->ReportJson, Ref.Jobs[0].ReportJson);

  // Killed worker: the retry *resumed* the dead worker's snapshot
  // (exit 4), and the resumed report is still byte-identical.
  const FleetJobResult *Killed = find(Result, "kill_me");
  ASSERT_NE(Killed, nullptr);
  EXPECT_EQ(Killed->State, "done");
  EXPECT_EQ(Killed->Attempts, 2u);
  EXPECT_TRUE(Killed->Resumed);
  EXPECT_EQ(Killed->FinalExitCode, 4) << Killed->History.back().Command;
  EXPECT_EQ(Killed->ReportJson, Ref.Jobs[0].ReportJson);
  ASSERT_EQ(Killed->History.size(), 2u);
  EXPECT_TRUE(Killed->History[0].Signaled);
  EXPECT_EQ(Killed->History[0].Signal, SIGKILL);
  EXPECT_EQ(Killed->History[0].Cause, "crash-SIGKILL");

  // Hung worker: watchdog-killed on every attempt, terminal failure.
  const FleetJobResult *Hung = find(Result, "hang_me");
  ASSERT_NE(Hung, nullptr);
  EXPECT_EQ(Hung->State, "failed:hung");
  EXPECT_EQ(Hung->Attempts, 2u);
  for (const FleetAttempt &A : Hung->History) {
    EXPECT_TRUE(A.TimedOut);
    EXPECT_EQ(A.Cause, "hung");
  }
  EXPECT_TRUE(Hung->ReportJson.empty());

  // Corrupt-but-salvageable input: the worker degrades (exit 3), the
  // fleet accepts the partial report without burning retries.
  const FleetJobResult *Corrupt = find(Result, "corrupt");
  ASSERT_NE(Corrupt, nullptr);
  EXPECT_EQ(Corrupt->State, "done:partial") << Corrupt->ReportJson;
  EXPECT_EQ(Corrupt->Attempts, 1u);
  EXPECT_EQ(Corrupt->FinalExitCode, 3);
  EXPECT_TRUE(Corrupt->Partial);

  // Unreadable input: permanent, exactly one attempt, never retried.
  const FleetJobResult *Garbage = find(Result, "garbage");
  ASSERT_NE(Garbage, nullptr);
  EXPECT_EQ(Garbage->State, "failed:unreadable");
  EXPECT_EQ(Garbage->Attempts, 1u);

  // Batch accounting: the exit-code-4 bookkeeping proves the resume.
  EXPECT_EQ(Result.Done, 2u);
  EXPECT_EQ(Result.Partial, 1u);
  EXPECT_EQ(Result.Failed, 2u);
  EXPECT_EQ(Result.Retries, 2u); // kill_me + one hang retry
  EXPECT_EQ(Result.ResumedCompletions, 1u);
}

TEST_F(FleetChaosTest, OomInsideRlimitJailRetriesAndCompletes) {
#ifdef CAFA_HAS_ASAN
  GTEST_SKIP() << "RLIMIT_AS jail conflicts with ASan shadow memory";
#endif
  FleetOptions Options = baseOptions("oom");
  Options.MaxAttempts = 2;
  Options.RlimitBytes = 512u << 20; // jail: 512 MiB of address space

  // Attempt 1 carries 1 GiB of ballast: the allocation blows the jail
  // (bad_alloc -> terminate -> SIGABRT).  Attempt 2 runs clean.
  Options.ChaosArgsForAttempt =
      [](const FleetJob &,
         unsigned Attempt) -> std::vector<std::string> {
    if (Attempt == 1)
      return {"--chaos-alloc-mb=1024"};
    return {};
  };

  FleetResult Result;
  ASSERT_TRUE(
      runFleet({job("oom_me", RacyTrace)}, Options, Result).ok());
  const FleetJobResult &Job = Result.Jobs[0];
  EXPECT_EQ(Job.State, "done") << Job.History.back().Cause;
  EXPECT_EQ(Job.Attempts, 2u);
  ASSERT_EQ(Job.History.size(), 2u);
  EXPECT_EQ(Job.History[0].Cause, "oom") << Job.History[0].Command;
  EXPECT_TRUE(Job.History[0].Signaled);
  EXPECT_FALSE(Job.ReportJson.empty());
}

TEST_F(FleetChaosTest, TwoJobsOneRootResumeIndependently) {
  // Regression: two jobs sharing one checkpoint *root* must not share a
  // snapshot.  Both workers are killed after saving; both retries must
  // resume from their own sub-directory and land their own report.
  FleetResult RefA, RefB;
  ASSERT_TRUE(
      runFleet({job("a", RacyTrace)}, baseOptions("tworef_a"), RefA)
          .ok());
  ASSERT_TRUE(
      runFleet({job("b", OtherTrace)}, baseOptions("tworef_b"), RefB)
          .ok());
  ASSERT_NE(RefA.Jobs[0].ReportJson, RefB.Jobs[0].ReportJson);

  FleetOptions Options = baseOptions("tworoot");
  Options.Workers = 2;
  Options.MaxAttempts = 3;
  Options.ChaosArgsForAttempt =
      [](const FleetJob &,
         unsigned Attempt) -> std::vector<std::string> {
    if (Attempt == 1)
      return {"--chaos-kill-after-save"};
    return {};
  };
  EXPECT_NE(fleetJobDir(Options.CheckpointRoot, "a"),
            fleetJobDir(Options.CheckpointRoot, "b"));

  FleetResult Result;
  ASSERT_TRUE(
      runFleet({job("a", RacyTrace), job("b", OtherTrace)}, Options,
               Result)
          .ok());
  for (const FleetJobResult &Job : Result.Jobs) {
    EXPECT_EQ(Job.State, "done") << Job.Id;
    EXPECT_EQ(Job.Attempts, 2u) << Job.Id;
    EXPECT_TRUE(Job.Resumed) << Job.Id;
  }
  // Each job resumed *its own* analysis: reports match their own
  // references, not each other's.
  EXPECT_EQ(Result.Jobs[0].ReportJson, RefA.Jobs[0].ReportJson);
  EXPECT_EQ(Result.Jobs[1].ReportJson, RefB.Jobs[0].ReportJson);
  EXPECT_EQ(Result.ResumedCompletions, 2u);

  // Both sub-directories really exist on disk.
  struct stat St;
  EXPECT_EQ(
      ::stat(fleetJobDir(Options.CheckpointRoot, "a").c_str(), &St), 0);
  EXPECT_EQ(
      ::stat(fleetJobDir(Options.CheckpointRoot, "b").c_str(), &St), 0);
}

TEST_F(FleetChaosTest, EscalationLadderTightensLimitsPerAttempt) {
  FleetOptions Options;
  Options.DeadlineMillis = 8000;
  Options.MemLimitBytes = 64u << 20;
  // Attempt 1 runs at the caller's limits; each retry halves them.
  EXPECT_DOUBLE_EQ(fleetDeadlineForAttempt(Options, 1), 8000);
  EXPECT_DOUBLE_EQ(fleetDeadlineForAttempt(Options, 2), 4000);
  EXPECT_DOUBLE_EQ(fleetDeadlineForAttempt(Options, 3), 2000);
  EXPECT_EQ(fleetMemLimitForAttempt(Options, 1, 0), 64u << 20);
  EXPECT_EQ(fleetMemLimitForAttempt(Options, 2, 0), 32u << 20);
  EXPECT_EQ(fleetMemLimitForAttempt(Options, 3, 0), 16u << 20);

  // No explicit deadline: retries derive one from the watchdog so the
  // worker can cut itself into a partial report before the next kill.
  FleetOptions WatchdogOnly;
  WatchdogOnly.WatchdogMillis = 4000;
  EXPECT_DOUBLE_EQ(fleetDeadlineForAttempt(WatchdogOnly, 1), 0);
  EXPECT_DOUBLE_EQ(fleetDeadlineForAttempt(WatchdogOnly, 2), 1000);

  // No explicit mem limit: retries derive one from the RLIMIT_AS jail,
  // floored at 1 MiB so the soft limit stays meaningful.
  FleetOptions JailOnly;
  JailOnly.RlimitBytes = 256u << 20;
  EXPECT_EQ(fleetMemLimitForAttempt(JailOnly, 1, 0), 0u);
  EXPECT_EQ(fleetMemLimitForAttempt(JailOnly, 2, 0), 64u << 20);
  EXPECT_EQ(fleetMemLimitForAttempt(JailOnly, 20, 0), 1u << 20);
  // A per-job jail overrides the fleet-wide one.
  EXPECT_EQ(fleetMemLimitForAttempt(JailOnly, 2, 64u << 20), 16u << 20);
}

TEST_F(FleetChaosTest, BatchFailsFastOnSetupErrors) {
  FleetResult Result;
  EXPECT_FALSE(runFleet({}, baseOptions("setup"), Result).ok());

  FleetOptions Bad = baseOptions("setup");
  Bad.AnalyzerPath = "/nonexistent/analyzer";
  EXPECT_FALSE(
      runFleet({job("x", RacyTrace)}, Bad, Result).ok());

  EXPECT_FALSE(runFleet({job("dup", RacyTrace), job("dup", RacyTrace)},
                        baseOptions("setup"), Result)
                   .ok());
}

TEST_F(FleetChaosTest, AggregateIsByteIdenticalAcrossWorkerCounts) {
  // The 20-job determinism batch: five traces, four jobs each, run at
  // different worker counts.  Completion interleavings differ wildly;
  // the aggregate JSON must not.
  const std::string Traces[] = {RacyTrace, OtherTrace, CleanTrace,
                                DamagedTrace, RacyTrace};
  auto batch = [&] {
    std::vector<FleetJob> Jobs;
    for (int Round = 0; Round < 4; ++Round)
      for (size_t T = 0; T < 5; ++T) {
        FleetJob J;
        J.Id = "j" + std::to_string(Round * 5 + T);
        J.TracePath = Traces[T];
        Jobs.push_back(J);
      }
    return Jobs;
  };

  FleetOptions Wide = baseOptions("det_wide");
  Wide.Workers = 4;
  FleetOptions Narrow = baseOptions("det_narrow");
  Narrow.Workers = 1;

  FleetResult A, B;
  ASSERT_TRUE(runFleet(batch(), Wide, A).ok());
  ASSERT_TRUE(runFleet(batch(), Narrow, B).ok());
  ASSERT_EQ(A.Jobs.size(), 20u);
  EXPECT_EQ(A.AggregateJson, B.AggregateJson);
  EXPECT_EQ(A.AggregateText, B.AggregateText);
  EXPECT_GT(A.DistinctRaces, 0u);
  // The same race from four copies of the same trace merged, not
  // quadrupled: distinct count is well below the summed per-job count.
  size_t SummedRaces = 0;
  for (const FleetJobResult &Job : A.Jobs)
    SummedRaces += Job.Parsed.Races.size();
  EXPECT_LT(A.DistinctRaces, SummedRaces);
}

/// The installed driver binary end-to-end: manifest in, aggregate out.
TEST_F(FleetChaosTest, DriverRunsAManifestEndToEnd) {
  std::string Dir = Scratch + "/driver";
  ::mkdir(Dir.c_str(), 0755);
  std::string ManifestPath = Dir + "/batch.manifest";
  {
    std::ofstream Out(ManifestPath);
    Out << "# driver smoke batch\n"
        << RacyTrace << "\n"
        << "named_job " << CleanTrace << "\n"
        << "bad " << GarbageTrace << "\n";
  }
  std::string OutPath = Dir + "/stdout";
  std::string ErrPath = Dir + "/stderr";

  const std::string Analyzer = "--analyzer=" OFFLINE_ANALYZER_PATH;
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    std::freopen(OutPath.c_str(), "wb", stdout);
    std::freopen(ErrPath.c_str(), "wb", stderr);
    const char *Argv[] = {CAFA_FLEET_PATH,  "run",
                          ManifestPath.c_str(), Analyzer.c_str(),
                          "--workers=2",    "--max-attempts=1",
                          "--json",         nullptr};
    ::execv(CAFA_FLEET_PATH, const_cast<char **>(Argv));
    _exit(127);
  }
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
  ASSERT_TRUE(WIFEXITED(Status));
  // One job failed terminally (garbage): exit 5 outranks races.
  EXPECT_EQ(WEXITSTATUS(Status), 5) << slurp(ErrPath);

  std::string Json = slurp(OutPath);
  EXPECT_NE(Json.find("\"summary\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"id\": \"named_job\""), std::string::npos);
  EXPECT_NE(Json.find("\"state\": \"failed:unreadable\""),
            std::string::npos)
      << Json;
  std::string Err = slurp(ErrPath);
  EXPECT_NE(Err.find("1 failed"), std::string::npos) << Err;
}

/// SIGTERM mid-batch: the driver must stop cleanly with exit 6, mark
/// the unfinished jobs "interrupted", and still emit (and durably
/// write) the aggregate for the partial batch.
TEST_F(FleetChaosTest, DriverSigtermDrainsToExitSix) {
  // Pid-unique: the test polls for j1's worker-stdout file as the
  // "batch is running" signal, so a leftover from an earlier run
  // would fire the SIGTERM before the driver even starts.
  std::string Dir = Scratch + "/sigterm_" + std::to_string(::getpid());
  ::mkdir(Dir.c_str(), 0755);
  std::string ManifestPath = Dir + "/batch.manifest";
  {
    std::ofstream Out(ManifestPath);
    Out << "j1 " << CleanTrace << "\n"
        << "j2 " << CleanTrace << "\n";
  }
  std::string OutPath = Dir + "/stdout";
  std::string ErrPath = Dir + "/stderr";
  std::string AggPath = Dir + "/agg.json";
  std::string Root = Dir + "/fleet";

  // Every worker hangs far beyond the test: j1 wedges mid-analysis,
  // j2 never launches (one worker slot).
  const std::string Analyzer = "--analyzer=" OFFLINE_ANALYZER_PATH;
  const std::string RootArg = "--checkpoint-root=" + Root;
  const std::string OutputArg = "--output=" + AggPath;
  pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    std::freopen(OutPath.c_str(), "wb", stdout);
    std::freopen(ErrPath.c_str(), "wb", stderr);
    const char *Argv[] = {CAFA_FLEET_PATH,
                          "run",
                          ManifestPath.c_str(),
                          Analyzer.c_str(),
                          RootArg.c_str(),
                          OutputArg.c_str(),
                          "--workers=1",
                          "--worker-arg=--chaos-hang-ms=60000",
                          "--json",
                          nullptr};
    ::execv(CAFA_FLEET_PATH, const_cast<char **>(Argv));
    _exit(127);
  }

  // No fixed sleeps: j1's worker creates its stdout capture file the
  // moment it is spawned -- that is the "batch is genuinely running"
  // signal to send SIGTERM on.
  std::string J1Stdout = fleetJobDir(Root, "j1") + "/stdout";
  struct stat St;
  for (int Tick = 0; Tick < 30 * 100 && ::stat(J1Stdout.c_str(), &St);
       ++Tick)
    ::usleep(10 * 1000);
  ASSERT_EQ(::stat(J1Stdout.c_str(), &St), 0) << slurp(ErrPath);
  ASSERT_EQ(::kill(Pid, SIGTERM), 0);

  int Status = 0;
  ::waitpid(Pid, &Status, 0);
  ASSERT_TRUE(WIFEXITED(Status)) << "driver must drain, not die";
  EXPECT_EQ(WEXITSTATUS(Status), 6) << slurp(ErrPath);

  // The aggregate still came out -- stdout and the durable --output
  // copy agree -- flagged with the interrupted count.
  std::string Json = slurp(OutPath);
  EXPECT_EQ(Json, slurp(AggPath));
  EXPECT_NE(Json.find("\"interrupted\": 2"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"state\": \"interrupted\""), std::string::npos);
  std::string Err = slurp(ErrPath);
  EXPECT_NE(Err.find("interrupted by signal"), std::string::npos) << Err;

  // The wedged worker did not outlive the drain: its checkpoint dir
  // remains (resumable), but the batch is over and nothing holds the
  // trace open.  A second, unsignalled run over the same manifest and
  // root completes normally.
  pid_t Pid2 = ::fork();
  ASSERT_GE(Pid2, 0);
  if (Pid2 == 0) {
    std::freopen(OutPath.c_str(), "wb", stdout);
    std::freopen(ErrPath.c_str(), "wb", stderr);
    const char *Argv[] = {CAFA_FLEET_PATH,  "run",
                          ManifestPath.c_str(), Analyzer.c_str(),
                          RootArg.c_str(),  "--workers=1",
                          "--json",         nullptr};
    ::execv(CAFA_FLEET_PATH, const_cast<char **>(Argv));
    _exit(127);
  }
  ::waitpid(Pid2, &Status, 0);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0) << slurp(ErrPath);
}

} // namespace
