//===- tests/integration/SmokeTest.cpp - Figure 1 end to end ----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Builds the paper's Figure 1 scenario by hand -- MyTracks' onResume binds
// a service over Binder, the service posts onServiceConnected back to the
// main looper where providerUtils is used, and a later external onDestroy
// frees it -- and checks that the full pipeline reports exactly that
// use-free race as an intra-thread (category (a)) violation.
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"
#include "ir/IrBuilder.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

struct Fig1Fixture {
  Scenario S;
  uint32_t UsePc = 0;
  MethodId UseMethod;
  uint32_t FreePc = 0;
  MethodId FreeMethod;

  Fig1Fixture() {
    auto M = std::make_shared<Module>();
    ProcessId App = M->addProcess("mytracks");
    ProcessId Service = M->addProcess("recording-service");
    QueueId Main = M->addQueue("main", App);
    FieldId ProviderUtils = M->addStaticField("providerUtils", true);
    ClassId ProviderUtilsClass = M->addClass("ProviderUtils");

    IrBuilder B(*M);

    // ProviderUtils.updateTrack(): some work.
    B.beginMethod("updateTrack", 1);
    B.work(4);
    MethodId UpdateTrack = B.endMethod();

    // onServiceConnected: use providerUtils.
    B.beginMethod("onServiceConnected", 2);
    UsePc = B.nextPc();
    B.sgetObject(1, ProviderUtils);
    B.invokeVirtual(1, UpdateTrack);
    UseMethod = B.endMethod();

    // Service.onBind (runs on a Binder thread in the service process):
    // posts onServiceConnected back to the app's main looper.
    B.beginMethod("onBind", 1);
    B.work(2);
    B.sendEvent(Main, UseMethod, /*DelayMs=*/0);
    MethodId OnBind = B.endMethod();

    // onResume: RPC to the service.
    B.beginMethod("onResume", 1);
    B.binderCall(Service, OnBind);
    MethodId OnResume = B.endMethod();

    // onDestroy: free providerUtils.
    B.beginMethod("onDestroy", 1);
    B.constNull(0);
    FreePc = B.nextPc();
    B.sputObject(ProviderUtils, 0);
    FreeMethod = B.endMethod();

    // Bootstrap: allocate providerUtils before anything runs.
    B.beginMethod("appMain", 1);
    B.newInstance(0, ProviderUtilsClass);
    B.sputObject(ProviderUtils, 0);
    MethodId AppMain = B.endMethod();

    S.AppName = "fig1";
    S.Program = M;
    S.BootThreads.push_back({0, AppMain, App, "app-main"});
    S.ExternalEvents.push_back({5'000, Main, OnResume, "onResume"});
    S.ExternalEvents.push_back({50'000, Main, FreeMethod, "onDestroy"});
  }
};

TEST(SmokeTest, Figure1RaceIsDetected) {
  Fig1Fixture F;
  RuntimeStats Stats;
  Trace T = runScenario(F.S, RuntimeOptions(), &Stats);

  EXPECT_EQ(Stats.NullPointerExceptions, 0u);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 0u);
  ASSERT_TRUE(validateTrace(T).ok()) << validateTrace(T).message();

  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  ASSERT_EQ(R.Report.Races.size(), 1u)
      << renderRaceReport(R.Report, T);
  const UseFreeRace &Race = R.Report.Races[0];
  EXPECT_EQ(Race.Use.Method, F.UseMethod);
  EXPECT_EQ(Race.Use.Pc, F.UsePc);
  EXPECT_EQ(Race.Free.Method, F.FreeMethod);
  EXPECT_EQ(Race.Free.Pc, F.FreePc);
  EXPECT_EQ(Race.Category, RaceCategory::IntraThread);
}

TEST(SmokeTest, Figure1GroundTruthJoin) {
  Fig1Fixture F;
  GroundTruth Truth;
  Truth.Entries.push_back({F.UseMethod, F.UsePc, F.FreeMethod, F.FreePc,
                           RaceLabel::Harmful, RaceCategory::IntraThread,
                           "Figure 1 providerUtils race"});
  Table1Row Row;
  analyzeScenario(F.S, RuntimeOptions(), DetectorOptions(), &Truth, &Row);
  EXPECT_EQ(Row.Reported, 1u);
  EXPECT_EQ(Row.TrueA, 1u);
  EXPECT_EQ(Row.Unexpected, 0u);
  EXPECT_EQ(Row.Missed, 0u);
}

TEST(SmokeTest, TracingOnOffSameSchedule) {
  Fig1Fixture F;
  RuntimeOptions On;
  RuntimeStats StatsOn;
  runScenario(F.S, On, &StatsOn);

  RuntimeOptions Off;
  Off.Tracing = false;
  Runtime Rt(F.S, Off);
  ASSERT_TRUE(Rt.run().ok());
  const RuntimeStats &StatsOff = Rt.stats();

  EXPECT_EQ(StatsOn.InstructionsExecuted, StatsOff.InstructionsExecuted);
  EXPECT_EQ(StatsOn.TasksCreated, StatsOff.TasksCreated);
  EXPECT_EQ(StatsOn.EventsProcessed, StatsOff.EventsProcessed);
  EXPECT_EQ(StatsOn.SimEndMicros, StatsOff.SimEndMicros);
  EXPECT_EQ(StatsOff.RecordsEmitted, 0u);
}

} // namespace
