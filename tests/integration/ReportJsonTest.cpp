//===- tests/integration/ReportJsonTest.cpp -----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/ReportJson.h"

#include "apps/AppKit.h"
#include "cafa/Cafa.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cafa;
using namespace cafa::apps;

namespace {

TEST(ReportJsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ReportJsonTest, RaceReportRendersAllFields) {
  AppBuilder App("json");
  App.seedIntraThreadRace("staleSession");
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());
  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  ASSERT_EQ(R.Report.Races.size(), 1u);

  std::string Json = renderRaceReportJson(R.Report, T);
  EXPECT_NE(Json.find("\"races\": ["), std::string::npos);
  EXPECT_NE(Json.find("\"category\": \"a\""), std::string::npos);
  EXPECT_NE(Json.find("staleSession_onTimer"), std::string::npos);
  EXPECT_NE(Json.find("staleSession_onPause"), std::string::npos);
  EXPECT_NE(Json.find("\"filters\""), std::string::npos);
  EXPECT_NE(Json.find("\"candidates\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '['),
            std::count(Json.begin(), Json.end(), ']'));
}

TEST(ReportJsonTest, EmptyReportIsValidJson) {
  Trace T;
  RaceReport Empty;
  std::string Json = renderRaceReportJson(Empty, T);
  EXPECT_NE(Json.find("\"races\": ["), std::string::npos);
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
}

TEST(ReportJsonTest, Table1Rows) {
  Table1Row Row;
  Row.App = "mytracks";
  Row.Events = 6628;
  Row.Reported = 8;
  Row.TrueA = 1;
  Row.TrueB = 3;
  Row.FpII = 4;
  std::string Json = renderTable1Json({Row});
  EXPECT_NE(Json.find("\"app\": \"mytracks\""), std::string::npos);
  EXPECT_NE(Json.find("\"events\": 6628"), std::string::npos);
  EXPECT_NE(Json.find("\"trueB\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"fpII\": 4"), std::string::npos);
}

} // namespace
