//===- tests/integration/PipelineTest.cpp -------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Cross-module integration: trace files round-trip through the full
// analyzer unchanged; a predicted race manifests as a real crash when
// the schedule flips; the conventional model is consistent end to end.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "ir/IrBuilder.h"
#include "trace/IngestSession.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

namespace {

TEST(PipelineTest, TraceFileRoundTripPreservesAnalysis) {
  AppModel Model = buildZXing();
  Trace Original = runScenario(Model.S, RuntimeOptions());
  AnalysisResult Before = analyzeTrace(Original, DetectorOptions());

  std::string Path = testing::TempDir() + "/cafa_pipeline_roundtrip.trace";
  ASSERT_TRUE(writeTraceFile(Original, Path).ok());
  Trace Reloaded;
  ASSERT_TRUE(readTraceFile(Path, Reloaded).ok());
  std::remove(Path.c_str());
  ASSERT_TRUE(validateTrace(Reloaded).ok());

  AnalysisResult After = analyzeTrace(Reloaded, DetectorOptions());
  ASSERT_EQ(Before.Report.Races.size(), After.Report.Races.size());
  for (size_t I = 0; I != Before.Report.Races.size(); ++I) {
    EXPECT_EQ(Before.Report.Races[I].Use.Pc, After.Report.Races[I].Use.Pc);
    EXPECT_EQ(Before.Report.Races[I].Free.Pc,
              After.Report.Races[I].Free.Pc);
    EXPECT_EQ(Before.Report.Races[I].Category,
              After.Report.Races[I].Category);
  }
}

/// The payoff test: CAFA predicts the race from a crash-free trace; the
/// reversed schedule actually crashes.  This is Figure 1(a) vs 1(b).
TEST(PipelineTest, PredictedRaceManifestsUnderFlippedSchedule) {
  auto build = [](uint64_t UseAtMicros, uint64_t FreeAtMicros,
                  Scenario &S) {
    auto M = std::make_shared<Module>();
    ProcessId App = M->addProcess("app");
    QueueId Main = M->addQueue("main", App);
    FieldId Ptr = M->addStaticField("ptr", true);
    ClassId C = M->addClass("C");
    IrBuilder B(*M);
    B.beginMethod("victim", 1);
    B.work(1);
    MethodId Victim = B.endMethod();
    B.beginMethod("onUse", 2);
    B.sgetObject(1, Ptr);
    B.invokeVirtual(1, Victim); // NPE if ptr was freed first
    MethodId OnUse = B.endMethod();
    B.beginMethod("onFree", 1);
    B.constNull(0);
    B.sputObject(Ptr, 0);
    MethodId OnFree = B.endMethod();
    B.beginMethod("boot", 1);
    B.newInstance(0, C);
    B.sputObject(Ptr, 0);
    B.sendEvent(Main, OnUse,
                static_cast<int32_t>(UseAtMicros / 1000));
    MethodId Boot = B.endMethod();
    S.AppName = "flip";
    S.Program = M;
    S.BootThreads.push_back({0, Boot, App, "boot"});
    S.ExternalEvents.push_back({FreeAtMicros, Main, OnFree, "onFree"});
  };

  // Correct order: use at 10 ms, free at 30 ms -- no crash, race found.
  Scenario Good;
  build(10'000, 30'000, Good);
  RuntimeStats GoodStats;
  Trace T = runScenario(Good, RuntimeOptions(), &GoodStats);
  EXPECT_EQ(GoodStats.NullPointerExceptions, 0u);
  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  ASSERT_EQ(R.Report.Races.size(), 1u);

  // Flipped order: free at 10 ms, use at 30 ms -- the predicted
  // use-after-free actually throws.
  Scenario Bad;
  build(30'000, 10'000, Bad);
  RuntimeStats BadStats;
  runScenario(Bad, RuntimeOptions(), &BadStats);
  EXPECT_EQ(BadStats.NullPointerExceptions, 1u);
}

TEST(PipelineTest, AnalysisResultCarriesPhaseStats) {
  AppModel Model = buildVlc();
  Trace T = runScenario(Model.S, RuntimeOptions());
  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  EXPECT_GT(R.HbStats.ProgramOrderEdges, 0u);
  EXPECT_GT(R.HbStats.SendEdges, 0u);
  EXPECT_GT(R.HbStats.FixpointRounds, 0u);
  EXPECT_GT(R.HbMemoryBytes, 0u);
  EXPECT_EQ(R.TraceStatistics.NumEvents, Model.PaperRow.Events);
  EXPECT_GE(R.HbBuildMillis, 0.0);
}

TEST(PipelineTest, AllOraclesReproduceTheAppReport) {
  // End-to-end agreement of the three oracles on an app-shaped trace.
  // (Small volume: the BFS oracle pays per-query search inside the
  // quadratic rule scans, which is the point of the ablation bench.)
  AppBuilder App("mini");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.seedAliasMismatchFp("gamma");
  App.addGuardedCommutativePair("delta");
  App.fillVolumeTo(300);
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);

  DetectorOptions Closure;
  Closure.Classify = false;
  Closure.Hb.Reach = ReachMode::Closure;
  HbIndex HbClosure(T, Index, Closure.Hb);
  RaceReport A = detectUseFreeRaces(T, Index, Db, HbClosure, Closure);

  DetectorOptions Bfs;
  Bfs.Classify = false;
  Bfs.Hb.Reach = ReachMode::Bfs;
  HbIndex HbBfs(T, Index, Bfs.Hb);
  RaceReport B = detectUseFreeRaces(T, Index, Db, HbBfs, Bfs);

  DetectorOptions Inc;
  Inc.Classify = false;
  Inc.Hb.Reach = ReachMode::Incremental;
  HbIndex HbInc(T, Index, Inc.Hb);
  RaceReport C = detectUseFreeRaces(T, Index, Db, HbInc, Inc);

  ASSERT_EQ(A.Races.size(), B.Races.size());
  ASSERT_EQ(A.Races.size(), C.Races.size());
  for (size_t I = 0; I != A.Races.size(); ++I) {
    EXPECT_EQ(A.Races[I].Use.Record, B.Races[I].Use.Record);
    EXPECT_EQ(A.Races[I].Free.Record, B.Races[I].Free.Record);
    EXPECT_EQ(A.Races[I].Use.Record, C.Races[I].Use.Record);
    EXPECT_EQ(A.Races[I].Free.Record, C.Races[I].Free.Record);
  }
}

TEST(PipelineTest, SerializedAppTraceValidates) {
  // Serialization of a large trace stays parseable and valid.
  AppModel Model = buildConnectBot();
  Trace T = runScenario(Model.S, RuntimeOptions());
  std::string Text = serializeTrace(T);
  EXPECT_GT(Text.size(), 100'000u);
  Trace Parsed;
  IngestOptions Strict;
  Strict.Mode = IngestMode::Parse;
  IngestReport Report;
  ASSERT_TRUE(ingestTrace(Text, Parsed, Report, Strict).ok());
  EXPECT_TRUE(validateTrace(Parsed).ok());
  EXPECT_EQ(Parsed.numRecords(), T.numRecords());
}

} // namespace
