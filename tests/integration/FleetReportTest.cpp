//===- tests/integration/FleetReportTest.cpp ----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The fleet aggregation layer against the real analysis pipeline: a
// report rendered by renderRaceReportJson must parse back losslessly
// (the supervisor consumes its own workers' output), and merging
// several parsed reports must deduplicate by static race key, count
// occurrences, cap exemplars, and render deterministically regardless
// of the interner's insertion order.
//
//===----------------------------------------------------------------------===//

#include "cafa/FleetReport.h"

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// A real single-app analysis, rendered to JSON the way a worker would.
std::string analyzedJson(const char *Name, RaceReport *ReportOut = nullptr) {
  AppBuilder App(Name);
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());
  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  if (ReportOut)
    *ReportOut = R.Report;
  return renderRaceReportJson(R.Report, T);
}

TEST(FleetReportTest, RoundTripsRenderRaceReportJson) {
  RaceReport Report;
  std::string Json = analyzedJson("roundtrip", &Report);
  RaceDocument Parsed;
  ASSERT_TRUE(parseRaceReportJson(Json, Parsed).ok());
  ASSERT_EQ(Parsed.Races.size(), Report.Races.size());
  EXPECT_FALSE(Parsed.Partial);

  // Every race the analysis reported must come back with its static key
  // intact (method names resolved, pcs exact, category preserved).
  bool SawAlpha = false, SawBeta = false;
  for (const RaceRecord &R : Parsed.Races) {
    EXPECT_FALSE(R.UseMethod.empty());
    EXPECT_FALSE(R.FreeMethod.empty());
    EXPECT_TRUE(R.Category == "a" || R.Category == "b" ||
                R.Category == "c")
        << R.Category;
    EXPECT_GE(R.DynamicCount, 1u);
    SawAlpha |= R.UseMethod.find("alpha") != std::string::npos;
    SawBeta |= R.UseMethod.find("beta") != std::string::npos;
  }
  EXPECT_TRUE(SawAlpha);
  EXPECT_TRUE(SawBeta);
}

TEST(FleetReportTest, ParsesPartialFlagAndCause) {
  RaceDocument Parsed;
  ASSERT_TRUE(parseRaceReportJson("{\n  \"races\": [],\n"
                                  "  \"partial\": true,\n"
                                  "  \"partialCause\": \"hb-deadline\"\n}\n",
                                  Parsed)
                  .ok());
  EXPECT_TRUE(Parsed.Partial);
  EXPECT_EQ(Parsed.PartialCause, "hb-deadline");
  EXPECT_TRUE(Parsed.Races.empty());
}

TEST(FleetReportTest, RejectsMalformedJson) {
  RaceDocument Parsed;
  EXPECT_FALSE(parseRaceReportJson("", Parsed).ok());
  EXPECT_FALSE(parseRaceReportJson("{\"races\": [", Parsed).ok());
  EXPECT_FALSE(parseRaceReportJson("not json at all", Parsed).ok());
  // A race without its static key is unusable for merging.
  EXPECT_FALSE(
      parseRaceReportJson("{\"races\": [{\"category\": \"a\"}]}", Parsed)
          .ok());
  EXPECT_TRUE(Parsed.Races.empty());
}

TEST(FleetReportTest, ToleratesUnknownFields) {
  RaceDocument Parsed;
  ASSERT_TRUE(parseRaceReportJson(
                  "{\"futureField\": {\"nested\": [1, 2.5, true, null]},\n"
                  " \"races\": [{\"category\": \"b\", \"dynamicCount\": 7,\n"
                  "   \"novel\": \"ignored\",\n"
                  "   \"use\": {\"method\": \"m1\", \"pc\": 3, \"task\": \"t\"},\n"
                  "   \"free\": {\"method\": \"m2\", \"pc\": 9, \"task\": \"u\"}}],\n"
                  " \"partial\": false}",
                  Parsed)
                  .ok());
  ASSERT_EQ(Parsed.Races.size(), 1u);
  EXPECT_EQ(Parsed.Races[0].UseMethod, "m1");
  EXPECT_EQ(Parsed.Races[0].UsePc, 3u);
  EXPECT_EQ(Parsed.Races[0].FreeMethod, "m2");
  EXPECT_EQ(Parsed.Races[0].FreePc, 9u);
  EXPECT_EQ(Parsed.Races[0].DynamicCount, 7u);
}

/// Hand-built parsed report with one race keyed (Use, UsePc, Free, FreePc).
RaceDocument oneRace(const char *Use, uint32_t UsePc, const char *Free,
                         uint32_t FreePc, uint32_t Dyn = 1,
                         bool Partial = false) {
  RaceDocument R;
  RaceRecord Race;
  Race.UseMethod = Use;
  Race.UsePc = UsePc;
  Race.FreeMethod = Free;
  Race.FreePc = FreePc;
  Race.Category = "a";
  Race.DynamicCount = Dyn;
  R.Races.push_back(Race);
  R.Partial = Partial;
  return R;
}

FleetJobStatus job(const char *Id, const char *Trace) {
  FleetJobStatus J;
  J.Id = Id;
  J.TracePath = Trace;
  J.State = "done";
  J.Attempts = 1;
  J.ExitCode = 1;
  return J;
}

TEST(FleetReportTest, MergesByStaticKeyAcrossJobs) {
  FleetAggregator Agg(/*MaxExemplars=*/2);
  // Same static race from three jobs, a distinct one from the second.
  RaceDocument A = oneRace("useM", 1, "freeM", 2, 3);
  RaceDocument B = oneRace("useM", 1, "freeM", 2, 4);
  B.Races.push_back(oneRace("other", 5, "freeM", 2).Races[0]);
  RaceDocument C = oneRace("useM", 1, "freeM", 2);
  Agg.addJob(job("j1", "a.trace"), &A);
  Agg.addJob(job("j2", "b.trace"), &B);
  Agg.addJob(job("j3", "c.trace"), &C);
  EXPECT_EQ(Agg.numDistinctRaces(), 2u);

  std::string Json = Agg.renderJson();
  // The shared race: 3 jobs, summed dynamic count, exemplars capped at 2.
  EXPECT_NE(Json.find("\"jobs\": 3, \"dynamicCount\": 8"),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"exemplars\": [\"a.trace\", \"b.trace\"]"),
            std::string::npos)
      << Json;
  EXPECT_EQ(Json.find("c.trace\"]"), std::string::npos) << Json;
  // The singleton keeps its single exemplar.
  EXPECT_NE(Json.find("\"jobs\": 1, \"dynamicCount\": 1"),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"summary\""), std::string::npos);
  EXPECT_NE(Json.find("\"distinctRaces\": 2"), std::string::npos);
}

TEST(FleetReportTest, AggregatesBestConfirmVerdictAcrossJobs) {
  // The same static race triaged differently by different jobs: one
  // budget-exhausted, one crash-reproduced.  The aggregate must carry
  // the best evidence (the crash), per mergeConfirmVerdicts.
  RaceDocument Unconfirmed = oneRace("useM", 1, "freeM", 2);
  Unconfirmed.Races[0].Verdict = ConfirmVerdict::Unconfirmed;
  RaceDocument Confirmed = oneRace("useM", 1, "freeM", 2);
  Confirmed.Races[0].Verdict = ConfirmVerdict::Confirmed;

  FleetAggregator Agg;
  Agg.addJob(job("j1", "a.trace"), &Unconfirmed);
  Agg.addJob(job("j2", "b.trace"), &Confirmed);
  std::string Json = Agg.renderJson();
  EXPECT_NE(Json.find("\"confirm\": \"confirmed\""), std::string::npos)
      << Json;
  EXPECT_EQ(Json.find("unconfirmed"), std::string::npos) << Json;
  EXPECT_NE(Agg.renderText().find("confirmed"), std::string::npos);

  // Verdict-free aggregates keep their pinned pre-confirmation bytes.
  RaceDocument Plain = oneRace("useM", 1, "freeM", 2);
  FleetAggregator NoVerdicts;
  NoVerdicts.addJob(job("j1", "a.trace"), &Plain);
  EXPECT_EQ(NoVerdicts.renderJson().find("\"confirm\""), std::string::npos);
}

TEST(FleetReportTest, RenderOrderIsKeyOrderNotArrivalOrder) {
  // The same job/report mapping fed twice, with the races inside the
  // report in opposite orders -- so the two interners number the
  // methods differently.  The rendered JSON must be byte-identical:
  // merged races sort by the lexicographic static key, not by the
  // interner ids arrival order happened to assign.
  RaceDocument Fwd = oneRace("zz_use", 1, "zz_free", 1);
  Fwd.Races.push_back(oneRace("aa_use", 1, "aa_free", 1).Races[0]);
  RaceDocument Rev;
  Rev.Races.push_back(Fwd.Races[1]);
  Rev.Races.push_back(Fwd.Races[0]);

  FleetAggregator A, B;
  A.addJob(job("j1", "t1.trace"), &Fwd);
  B.addJob(job("j1", "t1.trace"), &Rev);
  std::string AJson = A.renderJson(), BJson = B.renderJson();
  EXPECT_EQ(AJson, BJson);
  // aa_* sorts before zz_* regardless of which was interned first.
  EXPECT_LT(AJson.find("aa_use"), AJson.find("zz_use"));
}

TEST(FleetReportTest, PartialProvenanceTracksContainingReports) {
  // A race seen *only* in partial reports is flagged; once any complete
  // report contains it, the flag drops.
  RaceDocument P1 = oneRace("useM", 1, "freeM", 2, 1, /*Partial=*/true);
  FleetAggregator OnlyPartial;
  FleetJobStatus J1 = job("j1", "a.trace");
  J1.State = "done:partial";
  J1.Partial = true;
  OnlyPartial.addJob(J1, &P1);
  EXPECT_EQ(OnlyPartial.numPartialJobs(), 1u);
  EXPECT_NE(OnlyPartial.renderJson().find("\"fromPartialOnly\": true"),
            std::string::npos);

  FleetAggregator Mixed;
  RaceDocument Full = oneRace("useM", 1, "freeM", 2);
  Mixed.addJob(J1, &P1);
  Mixed.addJob(job("j2", "b.trace"), &Full);
  EXPECT_EQ(Mixed.renderJson().find("\"fromPartialOnly\""),
            std::string::npos);
}

TEST(FleetReportTest, FailedJobsAppearWithoutContributingRaces) {
  FleetAggregator Agg;
  FleetJobStatus Failed = job("broken", "x.trace");
  Failed.State = "failed:hung";
  Failed.ExitCode = -1;
  Failed.Attempts = 3;
  Agg.addJob(Failed, nullptr); // terminal failure: no report to merge
  RaceDocument Ok = oneRace("useM", 1, "freeM", 2);
  Agg.addJob(job("ok", "y.trace"), &Ok);

  EXPECT_EQ(Agg.numDistinctRaces(), 1u);
  std::string Json = Agg.renderJson();
  EXPECT_NE(Json.find("\"state\": \"failed:hung\""), std::string::npos);
  EXPECT_NE(Json.find("\"failed\": 1"), std::string::npos);
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));

  std::string Text = Agg.renderText();
  EXPECT_NE(Text.find("failed:hung"), std::string::npos);
  EXPECT_NE(Text.find("1 failed"), std::string::npos);
}

} // namespace
