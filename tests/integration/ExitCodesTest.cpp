//===- tests/integration/ExitCodesTest.cpp ------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Pins offline_analyzer's exit-code contract.  The fleet supervisor's
// retry policy keys off these codes (docs/robustness.md section 6,
// docs/fleet.md), so a renumbering that would silently change fleet
// behaviour must fail here first:
//
//   0  analysis completed, no races
//   1  analysis completed, races reported
//   2  usage error / unreadable trace (permanent -- fleet never retries)
//   3  deadline hit, degraded partial report (accepted as done:partial)
//   4  resumed from a checkpoint and completed (counts toward the
//      fleet's ResumedCompletions accounting)
//
// Also pins the cafa_server daemon's contract (docs/server.md): every
// flag, setup, or connection failure exits 2 before any state changes,
// and the usage text keeps documenting the 0/2/6 serve codes.  The
// daemon's happy-path codes (0 drained clean, 6 cut short by a signal)
// are exercised with a live daemon in ServerTest.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Checkpoint.h"
#include "rt/Runtime.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace cafa;

namespace {

struct ExitRun {
  int ExitCode = -1;
  std::string Out;
  std::string Err;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

ExitRun runTool(const char *Binary, const std::vector<std::string> &Args,
                const std::string &ScratchDir) {
  ExitRun R;
  std::string OutPath = ScratchDir + "/ec_stdout";
  std::string ErrPath = ScratchDir + "/ec_stderr";
  pid_t Pid = ::fork();
  if (Pid == 0) {
    std::freopen(OutPath.c_str(), "wb", stdout);
    std::freopen(ErrPath.c_str(), "wb", stderr);
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(Binary));
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(Binary, Argv.data());
    _exit(127);
  }
  int Status = 0;
  ::waitpid(Pid, &Status, 0);
  if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  R.Out = slurp(OutPath);
  R.Err = slurp(ErrPath);
  return R;
}

ExitRun runAnalyzer(const std::vector<std::string> &Args,
                    const std::string &ScratchDir) {
  return runTool(OFFLINE_ANALYZER_PATH, Args, ScratchDir);
}

class ExitCodesTest : public testing::Test {
protected:
  static std::string Scratch;
  static std::string RacyTrace;  // exits 1
  static std::string CleanTrace; // exits 0

  static void SetUpTestSuite() {
    Scratch = testing::TempDir() + "/cafa_exit_codes";
    ::mkdir(Scratch.c_str(), 0755);
    Table1Row Dummy;

    {
      apps::AppBuilder App("racy");
      App.seedIntraThreadRace("alpha");
      App.fillVolumeTo(400);
      apps::AppModel Model = App.finish(Dummy);
      Trace T = runScenario(Model.S, RuntimeOptions());
      RacyTrace = Scratch + "/racy.trace";
      ASSERT_TRUE(writeTraceFile(T, RacyTrace).ok());
    }
    {
      apps::AppBuilder App("clean");
      App.addGuardedCommutativePair("quiet"); // well-synchronized only
      apps::AppModel Model = App.finish(Dummy);
      Trace T = runScenario(Model.S, RuntimeOptions());
      CleanTrace = Scratch + "/clean.trace";
      ASSERT_TRUE(writeTraceFile(T, CleanTrace).ok());
    }
  }
};

std::string ExitCodesTest::Scratch;
std::string ExitCodesTest::RacyTrace;
std::string ExitCodesTest::CleanTrace;

TEST_F(ExitCodesTest, Exit0CleanTraceNoRaces) {
  ExitRun R = runAnalyzer({"analyze", CleanTrace}, Scratch);
  EXPECT_EQ(R.ExitCode, 0) << R.Err;
  EXPECT_NE(R.Out.find("0 use-free race(s)"), std::string::npos) << R.Out;
}

TEST_F(ExitCodesTest, Exit1RacesReported) {
  ExitRun R = runAnalyzer({"analyze", RacyTrace}, Scratch);
  EXPECT_EQ(R.ExitCode, 1) << R.Err;
}

TEST_F(ExitCodesTest, Exit2UsageAndUnreadableTrace) {
  // No arguments: usage error.
  ExitRun Usage = runAnalyzer({}, Scratch);
  EXPECT_EQ(Usage.ExitCode, 2);
  // The usage text documents the whole contract, including the chaos
  // hooks the fleet chaos suite drives.
  for (const char *Needle :
       {"0 no races", "1 races", "2 unreadable input",
        "3 degraded/partial analysis",
        "4 resumed from checkpoint and completed", "--chaos-hang-ms",
        "--chaos-kill-after-save", "--chaos-alloc-mb"})
    EXPECT_NE(Usage.Err.find(Needle), std::string::npos)
        << "usage text lost: " << Needle;

  // Missing file.
  ExitRun Missing =
      runAnalyzer({"analyze", Scratch + "/nope.trace"}, Scratch);
  EXPECT_EQ(Missing.ExitCode, 2) << Missing.Err;

  // Garbage bytes: unreadable, permanent, never retried by the fleet.
  std::string Garbage = Scratch + "/garbage.trace";
  {
    std::ofstream Out(Garbage, std::ios::binary);
    Out << "this is not a CAFA trace\n";
  }
  ExitRun Bad = runAnalyzer({"analyze", Garbage}, Scratch);
  EXPECT_EQ(Bad.ExitCode, 2) << Bad.Err;

  // Chaos hooks are opt-in and validated: --chaos-kill-after-save is
  // meaningless without a checkpoint dir to watch.
  ExitRun Chaos =
      runAnalyzer({"analyze", RacyTrace, "--chaos-kill-after-save"},
                  Scratch);
  EXPECT_EQ(Chaos.ExitCode, 2) << Chaos.Err;
}

TEST_F(ExitCodesTest, Exit3DeadlineDegradesToPartial) {
  std::string Dir = Scratch + "/deg";
  ::mkdir(Dir.c_str(), 0755);
  ExitRun R = runAnalyzer({"analyze", RacyTrace, "--json",
                           "--deadline=0.000001",
                           "--checkpoint-dir=" + Dir},
                          Scratch);
  EXPECT_EQ(R.ExitCode, 3) << R.Err;
  EXPECT_NE(R.Out.find("\"partial\": true"), std::string::npos) << R.Out;
}

TEST_F(ExitCodesTest, Exit4ResumeFromCheckpointCompletes) {
  std::string Dir = Scratch + "/res";
  ::mkdir(Dir.c_str(), 0755);
  ExitRun Cut = runAnalyzer({"analyze", RacyTrace, "--json",
                             "--deadline=0.000001",
                             "--checkpoint-dir=" + Dir},
                            Scratch);
  ASSERT_EQ(Cut.ExitCode, 3) << Cut.Err;
  ExitRun Resumed = runAnalyzer({"analyze", RacyTrace, "--json",
                                 "--checkpoint-dir=" + Dir, "--resume"},
                                Scratch);
  EXPECT_EQ(Resumed.ExitCode, 4) << Resumed.Err;
  EXPECT_NE(Resumed.Err.find("resumed from checkpoint"),
            std::string::npos)
      << Resumed.Err;
}

TEST_F(ExitCodesTest, ServerUsageAndSetupErrorsExitTwo) {
  // No arguments / unknown subcommand: usage, exit 2, and the usage
  // text keeps documenting the serve and ctl contracts the other
  // suites rely on.
  ExitRun Usage = runTool(CAFA_SERVER_PATH, {}, Scratch);
  EXPECT_EQ(Usage.ExitCode, 2);
  for (const char *Needle :
       {"serve --socket=<path> --store=<path>", "ctl <socket> <command>",
        "submit <id> <trace>", "drain", "--max-queue",
        "--drain-grace", "0 drained clean, 2 usage/setup error",
        "6 drained with jobs cut short"})
    EXPECT_NE(Usage.Err.find(Needle), std::string::npos)
        << "usage text lost: " << Needle;
  EXPECT_EQ(runTool(CAFA_SERVER_PATH, {"bogus"}, Scratch).ExitCode, 2);

  // serve without the mandatory flags, or with an unknown one.
  EXPECT_EQ(runTool(CAFA_SERVER_PATH, {"serve"}, Scratch).ExitCode, 2);
  EXPECT_EQ(runTool(CAFA_SERVER_PATH,
                    {"serve", "--socket=" + Scratch + "/s.sock"},
                    Scratch)
                .ExitCode,
            2)
      << "missing --store must not start a daemon";
  EXPECT_EQ(runTool(CAFA_SERVER_PATH,
                    {"serve", "--socket=" + Scratch + "/s.sock",
                     "--store=" + Scratch + "/s.journal", "--frob"},
                    Scratch)
                .ExitCode,
            2);

  // Setup failures (unbindable socket path) exit 2 before the loop
  // ever runs.
  ExitRun Bind = runTool(
      CAFA_SERVER_PATH,
      {"serve", "--socket=" + Scratch + "/no/such/dir/s.sock",
       "--store=" + Scratch + "/never.journal"},
      Scratch);
  EXPECT_EQ(Bind.ExitCode, 2) << Bind.Err;

  // ctl: too few arguments is usage; an unreachable daemon is a
  // connection failure.  Both exit 2 (a daemon *refusal* exits 1,
  // pinned with a live daemon in ServerTest).
  EXPECT_EQ(runTool(CAFA_SERVER_PATH, {"ctl"}, Scratch).ExitCode, 2);
  ExitRun NoDaemon = runTool(
      CAFA_SERVER_PATH, {"ctl", Scratch + "/no-daemon.sock", "ping"},
      Scratch);
  EXPECT_EQ(NoDaemon.ExitCode, 2) << NoDaemon.Err;
}

} // namespace
