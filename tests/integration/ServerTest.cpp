//===- tests/integration/ServerTest.cpp ---------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The analysis daemon end-to-end: a real cafa_server process on a real
// Unix socket, driven through the same serverRequest() client the ctl
// subcommand uses.  The two linchpin suites are restart accumulation --
// two daemon invocations over disjoint submissions must render a store
// aggregate byte-identical to one fleet batch over the union -- and the
// chaos pin: kill -9 the daemon mid-batch, restart it on the same store
// and checkpoint root, resubmit, and the final aggregate must be
// byte-identical to the uninterrupted run, with the resume visible only
// in the status endpoint's resumedCompletions accounting.
//
// No fixed sleeps anywhere: every wait polls the daemon's own status
// endpoint for the state it asserts, so the suite is immune to slow
// machines and never slower than the daemon itself.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "apps/AppKit.h"
#include "cafa/RaceStore.h"
#include "fleet/Fleet.h"
#include "rt/Runtime.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace cafa;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// Forks and execs `cafa_server serve <Args...>`, stderr to \p ErrPath.
pid_t spawnDaemon(const std::vector<std::string> &Args,
                  const std::string &ErrPath) {
  pid_t Pid = ::fork();
  if (Pid == 0) {
    std::freopen("/dev/null", "wb", stdout);
    std::freopen(ErrPath.c_str(), "wb", stderr);
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(CAFA_SERVER_PATH));
    Argv.push_back(const_cast<char *>("serve"));
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(CAFA_SERVER_PATH, Argv.data());
    _exit(127);
  }
  return Pid;
}

/// Reaps \p Pid, polling so a wedged daemon fails the test instead of
/// hanging ctest.  Returns the exit code, 128+sig for signal deaths,
/// -2 on timeout (after SIGKILLing the stray).
int waitForExit(pid_t Pid, int TimeoutSeconds = 60) {
  for (int Tick = 0; Tick < TimeoutSeconds * 100; ++Tick) {
    int St = 0;
    if (::waitpid(Pid, &St, WNOHANG) == Pid) {
      if (WIFEXITED(St))
        return WEXITSTATUS(St);
      if (WIFSIGNALED(St))
        return 128 + WTERMSIG(St);
      return -1;
    }
    ::usleep(10 * 1000);
  }
  ::kill(Pid, SIGKILL);
  ::waitpid(Pid, nullptr, 0);
  return -2;
}

/// One control-plane request; empty string on connection failure.
std::string ctl(const std::string &Socket, const std::string &Command) {
  std::string Response;
  if (!serverRequest(Socket, Command, Response).ok())
    return "";
  return Response;
}

/// Polls `<Command>` until the response contains \p Needle.  This is
/// the only wait primitive the suite uses.
testing::AssertionResult pollFor(const std::string &Socket,
                                 const std::string &Needle,
                                 const std::string &Command = "status",
                                 int TimeoutSeconds = 60) {
  std::string Last;
  for (int Tick = 0; Tick < TimeoutSeconds * 100; ++Tick) {
    Last = ctl(Socket, Command);
    if (Last.find(Needle) != std::string::npos)
      return testing::AssertionSuccess();
    ::usleep(10 * 1000);
  }
  return testing::AssertionFailure()
         << "daemon never reported \"" << Needle << "\"; last response:\n"
         << Last;
}

class ServerTest : public testing::Test {
protected:
  static std::string Scratch;
  static std::string RacyTrace;  // several races
  static std::string OtherTrace; // different race population
  static std::string CleanTrace; // no races

  static void SetUpTestSuite() {
    Scratch = testing::TempDir() + "/cafa_server_test";
    ::mkdir(Scratch.c_str(), 0755);
    Table1Row Dummy;

    {
      apps::AppBuilder App("server_racy");
      App.seedIntraThreadRace("alpha");
      App.seedInterThreadRace("beta");
      App.fillVolumeTo(600);
      apps::AppModel Model = App.finish(Dummy);
      Trace T = runScenario(Model.S, RuntimeOptions());
      RacyTrace = Scratch + "/racy.trace";
      ASSERT_TRUE(writeTraceFile(T, RacyTrace).ok());
    }
    {
      apps::AppBuilder App("server_other");
      App.seedIntraThreadRace("gamma");
      App.fillVolumeTo(600);
      apps::AppModel Model = App.finish(Dummy);
      Trace T = runScenario(Model.S, RuntimeOptions());
      OtherTrace = Scratch + "/other.trace";
      ASSERT_TRUE(writeTraceFile(T, OtherTrace).ok());
    }
    {
      apps::AppBuilder App("server_clean");
      App.addGuardedCommutativePair("quiet");
      apps::AppModel Model = App.finish(Dummy);
      Trace T = runScenario(Model.S, RuntimeOptions());
      CleanTrace = Scratch + "/clean.trace";
      ASSERT_TRUE(writeTraceFile(T, CleanTrace).ok());
    }
  }

  /// Per-test state dir + the standard serve flags: real analyzer,
  /// fast checkpoints, zero-backoff retries.  Socket paths stay short
  /// (sun_path is 108 bytes).  The pid suffix keeps sites unique
  /// across parallel ctest processes and across earlier runs'
  /// leftover stores/checkpoints -- restart tests must restart into
  /// *this* run's state.
  struct Site {
    std::string Dir, Socket, Store, Root, ErrPath;
  };
  Site site(const char *Name) {
    Site S;
    S.Dir = Scratch + "/" + Name + "_" + std::to_string(::getpid());
    ::mkdir(S.Dir.c_str(), 0755);
    S.Socket = S.Dir + "/sock";
    S.Store = S.Dir + "/races.journal";
    S.Root = S.Dir + "/jobs";
    S.ErrPath = S.Dir + "/daemon.stderr";
    return S;
  }
  std::vector<std::string> serveArgs(const Site &S) {
    return {"--socket=" + S.Socket,
            "--store=" + S.Store,
            "--checkpoint-root=" + S.Root,
            "--analyzer=" OFFLINE_ANALYZER_PATH,
            "--checkpoint-every=1",
            "--backoff-initial=0"};
  }

  /// Spawns a daemon and waits until its control plane answers.
  pid_t startDaemon(const Site &S, std::vector<std::string> Extra = {}) {
    std::vector<std::string> Args = serveArgs(S);
    Args.insert(Args.end(), Extra.begin(), Extra.end());
    pid_t Pid = spawnDaemon(Args, S.ErrPath);
    EXPECT_TRUE(pollFor(S.Socket, "ok pong", "ping"))
        << slurp(S.ErrPath);
    return Pid;
  }
};

std::string ServerTest::Scratch;
std::string ServerTest::RacyTrace;
std::string ServerTest::OtherTrace;
std::string ServerTest::CleanTrace;

TEST_F(ServerTest, ControlPlaneLifecycle) {
  Site S = site("lifecycle");
  pid_t Pid = startDaemon(S);

  // Admission validates before it queues.
  EXPECT_EQ(ctl(S.Socket, "submit"), "err malformed\n");
  EXPECT_EQ(ctl(S.Socket, "submit ../evil " + RacyTrace),
            "err bad-id\n");
  EXPECT_EQ(ctl(S.Socket, "frobnicate"), "err unknown-command\n");

  // Queue one real analysis and one terminal failure.
  EXPECT_EQ(ctl(S.Socket, "submit racy " + RacyTrace), "ok queued racy\n");
  EXPECT_EQ(ctl(S.Socket, "submit bad " + S.Dir + "/missing.trace"),
            "ok queued bad\n");
  ASSERT_TRUE(pollFor(S.Socket, "\"store\": {\"jobs\": 2"));

  // Resubmitting a stored id is idempotent success, not an error.
  EXPECT_EQ(ctl(S.Socket, "submit racy " + RacyTrace), "ok exists racy\n");

  std::string Status = ctl(S.Socket, "status");
  EXPECT_NE(Status.find("\"draining\": false"), std::string::npos);
  EXPECT_NE(Status.find("\"state\": \"done\""), std::string::npos)
      << Status;
  EXPECT_NE(Status.find("\"state\": \"failed:unreadable\""),
            std::string::npos)
      << Status;

  std::string Report = ctl(S.Socket, "report");
  EXPECT_NE(Report.find("\"summary\""), std::string::npos) << Report;
  EXPECT_NE(Report.find("\"id\": \"racy\""), std::string::npos);
  EXPECT_NE(Report.find("\"failed\": 1"), std::string::npos) << Report;

  EXPECT_EQ(ctl(S.Socket, "compact"), "ok compacted\n");

  // Drain closes admission, then the daemon exits clean.  Everything
  // queued is already terminal here, so the daemon may exit before a
  // late submission even connects -- an explicit refusal and a gone
  // daemon both prove admission closed.
  EXPECT_EQ(ctl(S.Socket, "drain"), "ok draining\n");
  std::string Late = ctl(S.Socket, "submit late " + CleanTrace);
  EXPECT_TRUE(Late == "err draining\n" || Late.empty()) << Late;
  EXPECT_EQ(waitForExit(Pid), ServerExitClean) << slurp(S.ErrPath);

  // The socket is gone, the store persists -- and never admitted the
  // late job.
  struct stat St;
  EXPECT_NE(::stat(S.Socket.c_str(), &St), 0);
  EXPECT_EQ(::stat(S.Store.c_str(), &St), 0);
  RaceStore Replayed;
  ASSERT_TRUE(Replayed.open(S.Store).ok());
  EXPECT_EQ(Replayed.numJobs(), 2u);
  EXPECT_FALSE(Replayed.hasJob("late"));
}

TEST_F(ServerTest, QueueBoundAndSignalDrainExitSix) {
  Site S = site("bound");
  // One slot, no grace: SIGTERM checkpoint-kills immediately.
  pid_t Pid = startDaemon(S, {"--max-queue=1", "--drain-grace=0"});

  // The slot holder hangs far beyond the test's lifetime (extra
  // worker args ride the submit line, as docs/server.md specifies).
  EXPECT_EQ(ctl(S.Socket,
                "submit stuck " + CleanTrace + " --chaos-hang-ms=60000"),
            "ok queued stuck\n");
  EXPECT_TRUE(pollFor(S.Socket, "\"phase\": \"running\""));
  // Admission control: the queue is full while it runs...
  EXPECT_EQ(ctl(S.Socket, "submit next " + CleanTrace),
            "err queue-full\n");
  // ...but resubmitting the active id is not an admission.
  EXPECT_EQ(ctl(S.Socket, "submit stuck " + CleanTrace),
            "ok active stuck\n");

  // SIGTERM: fast drain.  The hung worker is checkpoint-killed, the
  // job ends "interrupted", and the exit code says so.
  ASSERT_EQ(::kill(Pid, SIGTERM), 0);
  EXPECT_EQ(waitForExit(Pid), ServerExitInterrupted) << slurp(S.ErrPath);

  // Interrupted jobs are resumable work, not results: the store stays
  // empty, and a restarted daemon accepts the id again.
  pid_t Pid2 = startDaemon(S);
  std::string Status = ctl(S.Socket, "status");
  EXPECT_NE(Status.find("\"store\": {\"jobs\": 0"), std::string::npos)
      << Status;
  EXPECT_EQ(ctl(S.Socket, "submit stuck " + CleanTrace),
            "ok queued stuck\n");
  ASSERT_TRUE(pollFor(S.Socket, "\"store\": {\"jobs\": 1"));
  EXPECT_EQ(ctl(S.Socket, "drain"), "ok draining\n");
  EXPECT_EQ(waitForExit(Pid2), ServerExitClean) << slurp(S.ErrPath);
}

TEST_F(ServerTest, RestartAccumulationMatchesOneFleetBatch) {
  // Reference: one fleet batch over the union of both days' traces.
  FleetOptions Ref;
  Ref.AnalyzerPath = OFFLINE_ANALYZER_PATH;
  Ref.CheckpointRoot =
      Scratch + "/accum_ref_" + std::to_string(::getpid());
  Ref.CheckpointEveryMillis = 1;
  Ref.Backoff.InitialMillis = 0;
  FleetJob A, B;
  A.Id = "day1";
  A.TracePath = RacyTrace;
  B.Id = "day2";
  B.TracePath = OtherTrace;
  FleetResult RefResult;
  ASSERT_TRUE(runFleet({A, B}, Ref, RefResult).ok());
  ASSERT_GT(RefResult.DistinctRaces, 0u);

  // Daemon invocation one analyzes day1's trace, then drains.
  Site S = site("accum");
  pid_t Pid = startDaemon(S);
  EXPECT_EQ(ctl(S.Socket, "submit day1 " + RacyTrace),
            "ok queued day1\n");
  ASSERT_TRUE(pollFor(S.Socket, "\"store\": {\"jobs\": 1"));
  EXPECT_EQ(ctl(S.Socket, "drain"), "ok draining\n");
  ASSERT_EQ(waitForExit(Pid), ServerExitClean) << slurp(S.ErrPath);

  // Invocation two reopens the same store and adds day2's trace.  The
  // replayed journal answers for day1 ("ok exists") without re-running
  // anything.
  pid_t Pid2 = startDaemon(S);
  EXPECT_EQ(ctl(S.Socket, "submit day1 " + RacyTrace),
            "ok exists day1\n");
  EXPECT_EQ(ctl(S.Socket, "submit day2 " + OtherTrace),
            "ok queued day2\n");
  ASSERT_TRUE(pollFor(S.Socket, "\"store\": {\"jobs\": 2"));
  std::string Report = ctl(S.Socket, "report");
  EXPECT_EQ(ctl(S.Socket, "drain"), "ok draining\n");
  ASSERT_EQ(waitForExit(Pid2), ServerExitClean) << slurp(S.ErrPath);

  // The accumulated store renders byte-identical to the single batch:
  // same rows, same merged races, same occurrence counts.
  EXPECT_EQ(Report, RefResult.AggregateJson);
}

TEST_F(ServerTest, KillNineRestartResubmitIsByteIdentical) {
  // The acceptance-criteria chaos pin.  Reference first: an
  // uninterrupted daemon over both jobs.
  Site Ref = site("chaos_ref");
  pid_t RefPid = startDaemon(Ref);
  EXPECT_EQ(ctl(Ref.Socket, "submit jobA " + RacyTrace),
            "ok queued jobA\n");
  EXPECT_EQ(ctl(Ref.Socket, "submit jobB " + OtherTrace),
            "ok queued jobB\n");
  ASSERT_TRUE(pollFor(Ref.Socket, "\"store\": {\"jobs\": 2"));
  std::string RefReport = ctl(Ref.Socket, "report");
  EXPECT_EQ(ctl(Ref.Socket, "drain"), "ok draining\n");
  ASSERT_EQ(waitForExit(RefPid), ServerExitClean) << slurp(Ref.ErrPath);

  // Chaos leg.  jobA's worker SIGKILLs itself the moment its snapshot
  // lands; the huge backoff parks the retry so the daemon sits in a
  // deterministic mid-batch state: jobA in backoff with an orphanable
  // checkpoint, jobB completed and stored.
  Site S = site("chaos");
  pid_t Pid = startDaemon(
      S, {"--workers=1", "--backoff-initial=600000", "--seed=7"});
  EXPECT_EQ(ctl(S.Socket, "submit jobA " + RacyTrace +
                              " --chaos-kill-after-save"),
            "ok queued jobA\n");
  EXPECT_EQ(ctl(S.Socket, "submit jobB " + OtherTrace),
            "ok queued jobB\n");
  ASSERT_TRUE(pollFor(S.Socket, "\"id\": \"jobA\", \"phase\": \"backoff\""));
  ASSERT_TRUE(pollFor(S.Socket, "\"store\": {\"jobs\": 1"));

  // kill -9: no drain, no flush, no goodbye.
  ASSERT_EQ(::kill(Pid, SIGKILL), 0);
  EXPECT_EQ(waitForExit(Pid), 128 + SIGKILL);

  // Restart on the same store and checkpoint root; resubmit the
  // remainder.  jobB's result survived in the journal; jobA re-adopts
  // the orphaned checkpoint and completes by *resuming* it (exit 4).
  pid_t Pid2 = startDaemon(S);
  EXPECT_EQ(ctl(S.Socket, "submit jobB " + OtherTrace),
            "ok exists jobB\n");
  EXPECT_EQ(ctl(S.Socket, "submit jobA " + RacyTrace),
            "ok queued jobA\n");
  ASSERT_TRUE(pollFor(S.Socket, "\"store\": {\"jobs\": 2"));

  // The resume is real and visible in the raw accounting...
  std::string Status = ctl(S.Socket, "status");
  EXPECT_NE(Status.find("\"resumedCompletions\": 1"), std::string::npos)
      << Status;
  // ...and invisible in the report: byte-identical to the
  // uninterrupted run.
  EXPECT_EQ(ctl(S.Socket, "report"), RefReport);

  EXPECT_EQ(ctl(S.Socket, "drain"), "ok draining\n");
  ASSERT_EQ(waitForExit(Pid2), ServerExitClean) << slurp(S.ErrPath);

  // And the journal itself replays to the same aggregate after both
  // daemons are gone -- the store is the durable artifact, not the
  // daemon's memory.
  RaceStore Replayed;
  ASSERT_TRUE(Replayed.open(S.Store).ok());
  EXPECT_EQ(Replayed.renderJson(), RefReport);
  EXPECT_EQ(Replayed.stats().ResumedCompletions, 1u);
}

TEST_F(ServerTest, CtlBinarySpeaksTheProtocol) {
  Site S = site("ctlbin");
  pid_t Pid = startDaemon(S);

  auto runCtl = [&](const std::vector<std::string> &Args, int &Exit) {
    std::string OutPath = S.Dir + "/ctl.out";
    pid_t CtlPid = ::fork();
    if (CtlPid == 0) {
      std::freopen(OutPath.c_str(), "wb", stdout);
      std::freopen("/dev/null", "wb", stderr);
      std::vector<char *> Argv;
      Argv.push_back(const_cast<char *>(CAFA_SERVER_PATH));
      Argv.push_back(const_cast<char *>("ctl"));
      for (const std::string &A : Args)
        Argv.push_back(const_cast<char *>(A.c_str()));
      Argv.push_back(nullptr);
      ::execv(CAFA_SERVER_PATH, Argv.data());
      _exit(127);
    }
    Exit = waitForExit(CtlPid);
    return slurp(OutPath);
  };

  // ok replies exit 0; "err" replies exit 1; no daemon exits 2.
  int Exit = -1;
  EXPECT_EQ(runCtl({S.Socket, "ping"}, Exit), "ok pong\n");
  EXPECT_EQ(Exit, 0);
  EXPECT_EQ(runCtl({S.Socket, "frobnicate"}, Exit),
            "err unknown-command\n");
  EXPECT_EQ(Exit, 1);
  runCtl({S.Dir + "/no-such-socket", "ping"}, Exit);
  EXPECT_EQ(Exit, 2);

  EXPECT_EQ(ctl(S.Socket, "drain"), "ok draining\n");
  EXPECT_EQ(waitForExit(Pid), ServerExitClean) << slurp(S.ErrPath);
}

} // namespace
