//===- tests/integration/CheckpointTest.cpp -----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Crash-safe checkpoint/resume at the library level: a deadline-cut
// analysis leaves a snapshot behind, a resumed run restores the frontier
// mid-flight and produces a report bit-identical to an uninterrupted
// run, and every corrupt or mismatched snapshot degrades to a clean
// restart -- never a wrong answer.  The process-level (SIGKILL) side of
// the same guarantee lives in CrashRecoveryTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>

using namespace cafa;

namespace {

AnalysisOptions withCheckpoint(const DetectorOptions &Det,
                               const CheckpointOptions &Ckpt) {
  AnalysisOptions O(Det);
  O.Checkpoint = Ckpt;
  return O;
}

Trace buildAppTrace() {
  apps::AppBuilder App("ckpt");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.addGuardedCommutativePair("delta");
  App.fillVolumeTo(300);
  Table1Row Dummy;
  apps::AppModel Model = App.finish(Dummy);
  return runScenario(Model.S, RuntimeOptions());
}

// Two unordered threads with 70 uses x 70 frees of one cell: 4900
// candidate pairs, past the detector's 4096-pair clock poll, so a tiny
// detect deadline cuts the scan after a forced checkpoint save.
Trace buildWideScanTrace() {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 256);
  TaskId A = TB.addThread("user");
  TaskId B = TB.addThread("freer");
  TB.begin(A);
  for (uint32_t I = 0; I != 70; ++I) {
    TB.ptrRead(A, 5, 9, M, I);
    TB.deref(A, 9, DerefKind::Invoke, M, I);
  }
  TB.end(A);
  TB.begin(B);
  for (uint32_t I = 0; I != 70; ++I)
    TB.ptrWrite(B, 5, 0, M, 100 + I);
  TB.end(B);
  return TB.take();
}

/// A fresh checkpoint directory with no stale snapshot in it.
std::string freshCheckpointDir(const char *Name) {
  std::string Dir = testing::TempDir() + "/cafa_ckpt_" + Name;
  ::mkdir(Dir.c_str(), 0755);
  std::remove(checkpointPath(Dir).c_str());
  return Dir;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

TEST(CheckpointTest, HbDeadlineCutThenResumeIsBitIdentical) {
  Trace T = buildAppTrace();
  std::string Dir = freshCheckpointDir("hb_cut");

  AnalysisResult Clean = analyzeTrace(T, DetectorOptions());
  ASSERT_FALSE(Clean.Report.Partial);
  ASSERT_GT(Clean.Report.Races.size(), 0u);

  // Cut the fixpoint before its first round; the cut must leave a
  // resumable snapshot behind even with no cadence configured.
  DetectorOptions Tiny;
  Tiny.DeadlineMillis = 1e-6;
  CheckpointOptions Ckpt;
  Ckpt.Directory = Dir;
  AnalysisResult Cut = analyzeTrace(T, withCheckpoint(Tiny, Ckpt));
  ASSERT_TRUE(Cut.Report.Partial);
  EXPECT_EQ(Cut.Report.PartialCause, "hb-deadline");
  EXPECT_TRUE(fileExists(checkpointPath(Dir)));

  // Resume without a deadline: the run completes, and both renderings
  // match the uninterrupted run byte for byte.
  Ckpt.Resume = true;
  AnalysisResult Resumed = analyzeTrace(T, withCheckpoint(DetectorOptions(), Ckpt));
  EXPECT_TRUE(Resumed.Resume.Attempted);
  EXPECT_TRUE(Resumed.Resume.Resumed) << Resumed.Resume.RejectReason;
  EXPECT_FALSE(Resumed.Report.Partial);
  EXPECT_EQ(renderRaceReport(Resumed.Report, T),
            renderRaceReport(Clean.Report, T));
  EXPECT_EQ(renderRaceReportJson(Resumed.Report, T),
            renderRaceReportJson(Clean.Report, T));

  // A finished analysis retires its snapshot.
  EXPECT_FALSE(fileExists(checkpointPath(Dir)));
}

TEST(CheckpointTest, ResumeDiffsProvisionalRacesAgainstFinalReport) {
  Trace T = buildAppTrace();
  std::string Dir = freshCheckpointDir("diff");

  DetectorOptions Tiny;
  Tiny.DeadlineMillis = 1e-6;
  CheckpointOptions Ckpt;
  Ckpt.Directory = Dir;
  AnalysisResult Cut = analyzeTrace(T, withCheckpoint(Tiny, Ckpt));
  ASSERT_TRUE(Cut.Report.Partial);

  // The partial report's races are provisional: the relation was cut,
  // so some may disappear once the fixpoint saturates.  Both renderers
  // must say so.
  EXPECT_TRUE(Cut.Report.racesProvisional());
  if (!Cut.Report.Races.empty()) {
    EXPECT_NE(renderRaceReport(Cut.Report, T).find("(provisional)"),
              std::string::npos);
    EXPECT_NE(
        renderRaceReportJson(Cut.Report, T).find("\"provisional\": true"),
        std::string::npos);
  }
  EXPECT_FALSE(Cut.Report.PartialDetail.empty());

  Ckpt.Resume = true;
  AnalysisResult Resumed = analyzeTrace(T, withCheckpoint(DetectorOptions(), Ckpt));
  ASSERT_TRUE(Resumed.Resume.Resumed) << Resumed.Resume.RejectReason;
  ASSERT_TRUE(Resumed.Resume.HasBaseline);
  EXPECT_EQ(Resumed.Resume.ConfirmedRaces +
                Resumed.Resume.RetractedRaces.size(),
            Cut.Report.Races.size());
  EXPECT_EQ(Resumed.Resume.ConfirmedRaces + Resumed.Resume.NewRaces,
            Resumed.Report.Races.size());

  // A complete report never carries provisional markers -- that is what
  // keeps resumed output identical to an uninterrupted run's.
  EXPECT_FALSE(Resumed.Report.racesProvisional());
  EXPECT_EQ(renderRaceReport(Resumed.Report, T).find("(provisional)"),
            std::string::npos);
}

TEST(CheckpointTest, DetectScanCutThenResumeIsBitIdentical) {
  Trace T = buildWideScanTrace();
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());
  AccessDb Db = extractAccesses(T, Index);

  // Disable the sheddable filters so the deadline ladder's first rung
  // has nothing to shed and the first expiry cuts the scan outright
  // (the shed rung itself is covered by DegradationTest).
  DetectorOptions Opt;
  Opt.Classify = false;
  Opt.LocksetFilter = false;
  Opt.IfGuardFilter = false;
  RaceReport Clean = detectUseFreeRaces(T, Index, Db, Hb, Opt);
  ASSERT_FALSE(Clean.Partial);
  ASSERT_EQ(Clean.Filters.CandidatePairs, 4900u);

  // Cut the scan at its first clock poll; the deadline forces a save.
  DetectFrontier Saved;
  bool Wrote = false;
  DetectCheckpointing CutCk;
  CutCk.Save = [&](const DetectFrontier &F) {
    Saved = F;
    Wrote = true;
  };
  DetectorOptions Tiny = Opt;
  Tiny.DeadlineMillis = 1e-6;
  RaceReport Cut = detectUseFreeRaces(T, Index, Db, Hb, Tiny, &CutCk);
  ASSERT_TRUE(Cut.Partial);
  EXPECT_EQ(Cut.PartialCause, "detect-deadline");
  ASSERT_TRUE(Wrote);
  EXPECT_LT(Cut.Filters.CandidatePairs, 4900u);

  // Resume from the saved frontier: the remaining pairs are scanned and
  // the rendered report matches the uninterrupted one byte for byte.
  DetectCheckpointing ResumeCk;
  ResumeCk.Resume = &Saved;
  RaceReport Resumed = detectUseFreeRaces(T, Index, Db, Hb, Opt, &ResumeCk);
  EXPECT_TRUE(ResumeCk.ResumeAccepted);
  EXPECT_FALSE(Resumed.Partial);
  EXPECT_EQ(Resumed.Filters.CandidatePairs, 4900u);
  EXPECT_EQ(renderRaceReportJson(Resumed, T),
            renderRaceReportJson(Clean, T));
  EXPECT_EQ(renderRaceReport(Resumed, T), renderRaceReport(Clean, T));
}

TEST(CheckpointTest, ShedStateSurvivesDetectCheckpointResume) {
  // 104x104 = 10816 pairs: the deadline ladder sheds the filters at the
  // first poll and cuts at the second.  The frontier must carry the
  // shed flag so a resume keeps scanning with filters shed -- silently
  // re-enabling them would make the report depend on where the cut
  // happened to land.
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 4096);
  TaskId A = TB.addThread("user");
  TaskId B = TB.addThread("freer");
  TB.begin(A);
  for (uint32_t I = 0; I != 104; ++I) {
    TB.ptrRead(A, 5, 9, M, I);
    TB.deref(A, 9, DerefKind::Invoke, M, I);
  }
  TB.end(A);
  TB.begin(B);
  for (uint32_t I = 0; I != 104; ++I)
    TB.ptrWrite(B, 5, 0, M, 2000 + I);
  TB.end(B);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());
  AccessDb Db = extractAccesses(T, Index);

  DetectFrontier Saved;
  bool Wrote = false;
  DetectCheckpointing CutCk;
  CutCk.Save = [&](const DetectFrontier &F) {
    Saved = F;
    Wrote = true;
  };
  DetectorOptions Tiny;
  Tiny.Classify = false;
  Tiny.DeadlineMillis = 1e-6;
  RaceReport Cut = detectUseFreeRaces(T, Index, Db, Hb, Tiny, &CutCk);
  ASSERT_TRUE(Cut.Partial);
  EXPECT_EQ(Cut.PartialCause, "detect-deadline");
  ASSERT_TRUE(Wrote);
  EXPECT_TRUE(Saved.FiltersShed);

  // Resume without a deadline: the scan finishes, and the report stays
  // flagged as a filters-shed run covering every pair.
  DetectCheckpointing ResumeCk;
  ResumeCk.Resume = &Saved;
  DetectorOptions NoLimit;
  NoLimit.Classify = false;
  RaceReport Resumed = detectUseFreeRaces(T, Index, Db, Hb, NoLimit, &ResumeCk);
  EXPECT_TRUE(ResumeCk.ResumeAccepted);
  ASSERT_TRUE(Resumed.Partial);
  EXPECT_EQ(Resumed.PartialCause, "filters-shed");
  EXPECT_EQ(Resumed.Filters.CandidatePairs, 10816u);

  // Nothing found before the cut is lost on resume.
  for (const UseFreeRace &Race : Cut.Races) {
    bool Found = false;
    for (const UseFreeRace &R : Resumed.Races)
      Found |= R.Use.Method == Race.Use.Method && R.Use.Pc == Race.Use.Pc &&
               R.Free.Method == Race.Free.Method && R.Free.Pc == Race.Free.Pc;
    EXPECT_TRUE(Found);
  }
}

TEST(CheckpointTest, MidFlightHbFrontierResumesToSameRelation) {
  Trace T = buildAppTrace();
  TaskIndex Index(T);

  HbIndex Clean(T, Index, HbOptions());
  ASSERT_TRUE(Clean.saturated());

  // Freeze the fixpoint after one round, well short of saturation.
  HbOptions OneRound;
  OneRound.MaxFixpointRounds = 1;
  HbIndex Stopped(T, Index, OneRound);
  HbFrontier F = Stopped.exportFrontier();
  EXPECT_EQ(F.RoundsDone, 1u);
  ASSERT_FALSE(F.Saturated);
  EXPECT_FALSE(F.DerivedEdges.empty());

  // Resume: the replayed frontier continues to the same fixpoint, and
  // the resumed round counter keeps counting from where it stopped.
  HbCheckpointing Ck;
  Ck.Resume = &F;
  HbIndex Resumed(T, Index, HbOptions(), &Ck);
  EXPECT_TRUE(Resumed.saturated());
  EXPECT_GT(Resumed.ruleStats().FixpointRounds, 1u);

  AccessDb Db = extractAccesses(T, Index);
  DetectorOptions Opt;
  RaceReport A = detectUseFreeRaces(T, Index, Db, Clean, Opt);
  RaceReport B = detectUseFreeRaces(T, Index, Db, Resumed, Opt);
  EXPECT_EQ(renderRaceReportJson(A, T), renderRaceReportJson(B, T));
}

TEST(CheckpointTest, HbDeadlineCutUnderChainResumesBitIdentical) {
  // Same cut/resume contract as the incremental-mode test above, with
  // the chain oracle pinned end to end -- and the resumed chain report
  // must also match a default-oracle clean run, because no oracle choice
  // is allowed to change a report.
  Trace T = buildAppTrace();
  std::string Dir = freshCheckpointDir("hb_cut_chain");

  DetectorOptions ChainDet;
  ChainDet.Hb.Reach = ReachMode::Chain;
  AnalysisResult Clean = analyzeTrace(T, ChainDet);
  ASSERT_FALSE(Clean.Report.Partial);
  EXPECT_EQ(Clean.Degradation.UsedReach, ReachMode::Chain);

  AnalysisResult Default = analyzeTrace(T, DetectorOptions());
  EXPECT_EQ(renderRaceReportJson(Clean.Report, T),
            renderRaceReportJson(Default.Report, T));

  DetectorOptions Tiny = ChainDet;
  Tiny.DeadlineMillis = 1e-6;
  CheckpointOptions Ckpt;
  Ckpt.Directory = Dir;
  AnalysisResult Cut = analyzeTrace(T, withCheckpoint(Tiny, Ckpt));
  ASSERT_TRUE(Cut.Report.Partial);
  EXPECT_TRUE(fileExists(checkpointPath(Dir)));

  Ckpt.Resume = true;
  AnalysisResult Resumed = analyzeTrace(T, withCheckpoint(ChainDet, Ckpt));
  EXPECT_TRUE(Resumed.Resume.Resumed) << Resumed.Resume.RejectReason;
  EXPECT_FALSE(Resumed.Report.Partial);
  EXPECT_EQ(renderRaceReport(Resumed.Report, T),
            renderRaceReport(Clean.Report, T));
  EXPECT_EQ(renderRaceReportJson(Resumed.Report, T),
            renderRaceReportJson(Clean.Report, T));
  EXPECT_FALSE(fileExists(checkpointPath(Dir)));
}

TEST(CheckpointTest, ChainFrontierRoundTripsClocksByteIdentical) {
  // A saturated chain-mode index exports its decomposition + clock
  // matrix; a resume adopts it (no recompute) and re-exports the exact
  // same words.  The closure-rows blob and the chain blob are mutually
  // exclusive: exactly one is ever populated.
  Trace T = buildAppTrace();
  TaskIndex Index(T);
  HbOptions ChainOpt;
  ChainOpt.Reach = ReachMode::Chain;
  HbIndex Clean(T, Index, ChainOpt);
  ASSERT_TRUE(Clean.saturated());
  ASSERT_GT(Clean.degradation().ChainCount, 0u);
  ASSERT_LE(Clean.degradation().ChainCount,
            size_t(ChainReachability::MaxChainsForClocks));

  HbFrontier F = Clean.exportFrontier();
  ASSERT_FALSE(F.ChainState.empty()); // clocks are live at saturation
  EXPECT_TRUE(F.ClosureRows.empty());

  HbCheckpointing Ck;
  Ck.Resume = &F;
  HbIndex Resumed(T, Index, ChainOpt, &Ck);
  EXPECT_TRUE(Resumed.saturated());
  HbFrontier F2 = Resumed.exportFrontier();
  EXPECT_EQ(F.ChainState, F2.ChainState); // byte-stable across resume

  AccessDb Db = extractAccesses(T, Index);
  DetectorOptions Opt;
  RaceReport A = detectUseFreeRaces(T, Index, Db, Clean, Opt);
  RaceReport B = detectUseFreeRaces(T, Index, Db, Resumed, Opt);
  EXPECT_EQ(renderRaceReportJson(A, T), renderRaceReportJson(B, T));
}

TEST(CheckpointTest, CrossModeResumeRecomputesCleanly) {
  // A frontier cut under one oracle resumed under another: the foreign
  // blob fails the importer's shape/type check and the resume
  // *recomputes* the oracle state from the carried edges -- it never
  // rejects the resume and never yields a different relation
  // (docs/robustness.md, "Cross-mode resume").
  Trace T = buildAppTrace();
  TaskIndex Index(T);

  // Incremental cut -> chain resume.
  HbOptions IncCut;
  IncCut.Reach = ReachMode::Incremental;
  IncCut.MaxFixpointRounds = 1;
  HbIndex Stopped(T, Index, IncCut);
  HbFrontier F = Stopped.exportFrontier();
  ASSERT_FALSE(F.ClosureRows.empty());
  ASSERT_TRUE(F.ChainState.empty());

  HbCheckpointing Ck;
  Ck.Resume = &F;
  HbOptions ChainOpt;
  ChainOpt.Reach = ReachMode::Chain;
  HbIndex ChainResumed(T, Index, ChainOpt, &Ck);
  EXPECT_TRUE(ChainResumed.saturated());

  // Chain cut -> incremental resume (the mirror image).
  HbIndex ChainFull(T, Index, ChainOpt);
  HbFrontier FC = ChainFull.exportFrontier();
  ASSERT_FALSE(FC.ChainState.empty());
  HbCheckpointing Ck2;
  Ck2.Resume = &FC;
  HbOptions IncOpt;
  IncOpt.Reach = ReachMode::Incremental;
  HbIndex IncResumed(T, Index, IncOpt, &Ck2);
  EXPECT_TRUE(IncResumed.saturated());

  // All four paths agree byte for byte.
  HbIndex CleanDefault(T, Index, HbOptions());
  AccessDb Db = extractAccesses(T, Index);
  DetectorOptions Opt;
  std::string Ref = renderRaceReportJson(
      detectUseFreeRaces(T, Index, Db, CleanDefault, Opt), T);
  EXPECT_EQ(renderRaceReportJson(
                detectUseFreeRaces(T, Index, Db, ChainResumed, Opt), T),
            Ref);
  EXPECT_EQ(renderRaceReportJson(
                detectUseFreeRaces(T, Index, Db, IncResumed, Opt), T),
            Ref);
}

TEST(CheckpointTest, SnapshotSurvivesAnEncodeDecodeRoundTrip) {
  AnalysisSnapshot Snap;
  Snap.TraceFingerprint = 0x1122334455667788ull;
  Snap.NumRecords = 42;
  Snap.OptionsDigest = 0x99aabbccddeeff00ull;
  Snap.Phase = SnapshotPhase::Detect;
  Snap.Hb.UsedReach = ReachMode::Closure;
  Snap.Hb.RoundsDone = 7;
  Snap.Hb.Saturated = true;
  Snap.Hb.Stats.FixpointRounds = 7;
  Snap.Hb.Stats.AtomicityEdges = 13;
  Snap.Hb.DerivedEdges = {{NodeId(3), NodeId(4)}, {NodeId(9), NodeId(1)}};
  Snap.Hb.AtomCursors = {{4, 2}, {2, 0}};
  Snap.Hb.SendCursors = {{8, 5}};
  Snap.Hb.RowWords = 1;
  Snap.Hb.ClosureRows = {0xdeadbeefull, 0x12345678ull};
  Snap.Hb.ChainState = {10, 3, 1, 0x0000000100000000ull, 0x21ull};
  Snap.Hb.UnsaturatedRules = {"atomicity"};
  Snap.HasDetect = true;
  Snap.Detect.UseIdx = 11;
  Snap.Detect.FreePos = 3;
  Snap.Detect.Filters.CandidatePairs = 4096;
  Snap.Detect.Races = {{5, 6, 2, 3}};
  Snap.HasPartialRaces = true;
  Snap.PartialRaces = {{1, 2, 3, 4, "label one"}, {5, 6, 7, 8, "two"}};

  std::string Dir = freshCheckpointDir("roundtrip");
  std::string Path = checkpointPath(Dir);
  ASSERT_TRUE(saveAnalysisSnapshot(Snap, Path).ok());

  AnalysisSnapshot Back;
  ASSERT_TRUE(loadAnalysisSnapshot(Back, Path).ok());
  EXPECT_EQ(Back.TraceFingerprint, Snap.TraceFingerprint);
  EXPECT_EQ(Back.NumRecords, Snap.NumRecords);
  EXPECT_EQ(Back.OptionsDigest, Snap.OptionsDigest);
  EXPECT_EQ(Back.Phase, Snap.Phase);
  EXPECT_EQ(Back.Hb.UsedReach, Snap.Hb.UsedReach);
  EXPECT_EQ(Back.Hb.RoundsDone, Snap.Hb.RoundsDone);
  EXPECT_EQ(Back.Hb.Saturated, Snap.Hb.Saturated);
  EXPECT_EQ(Back.Hb.Stats.AtomicityEdges, Snap.Hb.Stats.AtomicityEdges);
  ASSERT_EQ(Back.Hb.DerivedEdges.size(), 2u);
  EXPECT_EQ(Back.Hb.DerivedEdges[1].From.value(), 9u);
  ASSERT_EQ(Back.Hb.AtomCursors.size(), 2u);
  EXPECT_EQ(Back.Hb.AtomCursors[0].Gap, 4u);
  EXPECT_EQ(Back.Hb.AtomCursors[0].I, 2u);
  EXPECT_EQ(Back.Hb.RowWords, 1u);
  EXPECT_EQ(Back.Hb.ClosureRows, Snap.Hb.ClosureRows);
  EXPECT_EQ(Back.Hb.ChainState, Snap.Hb.ChainState);
  ASSERT_EQ(Back.Hb.UnsaturatedRules.size(), 1u);
  EXPECT_EQ(Back.Hb.UnsaturatedRules[0], "atomicity");
  ASSERT_TRUE(Back.HasDetect);
  EXPECT_EQ(Back.Detect.UseIdx, 11u);
  EXPECT_EQ(Back.Detect.FreePos, 3u);
  EXPECT_EQ(Back.Detect.Filters.CandidatePairs, 4096u);
  ASSERT_EQ(Back.Detect.Races.size(), 1u);
  EXPECT_EQ(Back.Detect.Races[0].DynamicCount, 3u);
  ASSERT_TRUE(Back.HasPartialRaces);
  ASSERT_EQ(Back.PartialRaces.size(), 2u);
  EXPECT_EQ(Back.PartialRaces[0].Label, "label one");
  EXPECT_EQ(Back.PartialRaces[1].FreePc, 8u);
}

TEST(CheckpointTest, CorruptSnapshotsAreRejectedWithACleanRestart) {
  Trace T = buildAppTrace();
  std::string Dir = freshCheckpointDir("corrupt");
  std::string Path = checkpointPath(Dir);

  AnalysisResult Clean = analyzeTrace(T, DetectorOptions());

  DetectorOptions Tiny;
  Tiny.DeadlineMillis = 1e-6;
  CheckpointOptions Ckpt;
  Ckpt.Directory = Dir;
  analyzeTrace(T, withCheckpoint(Tiny, Ckpt));
  ASSERT_TRUE(fileExists(Path));
  std::string Good = readFile(Path);
  ASSERT_GT(Good.size(), 40u);

  Ckpt.Resume = true;
  struct Mutation {
    const char *Name;
    std::string Bytes;
  };
  std::string Flipped = Good;
  Flipped[Good.size() / 2] =
      static_cast<char>(Flipped[Good.size() / 2] ^ 0x40);
  std::string BadMagic = Good;
  BadMagic[0] = 'X';
  const Mutation Mutations[] = {
      {"bit flip in the payload", Flipped},
      {"truncated file", Good.substr(0, Good.size() / 2)},
      {"bad magic", BadMagic},
      {"empty file", std::string()},
  };
  for (const Mutation &M : Mutations) {
    writeFile(Path, M.Bytes);
    AnalysisResult R = analyzeTrace(T, withCheckpoint(DetectorOptions(), Ckpt));
    EXPECT_TRUE(R.Resume.Attempted) << M.Name;
    EXPECT_FALSE(R.Resume.Resumed) << M.Name;
    EXPECT_FALSE(R.Resume.RejectReason.empty()) << M.Name;
    // The rejected snapshot degrades to a clean full analysis -- the
    // report matches an uninterrupted run exactly.
    EXPECT_EQ(renderRaceReportJson(R.Report, T),
              renderRaceReportJson(Clean.Report, T))
        << M.Name;
  }

  // Missing snapshot: also a clean start, but flagged differently.
  std::remove(Path.c_str());
  AnalysisResult R = analyzeTrace(T, withCheckpoint(DetectorOptions(), Ckpt));
  EXPECT_TRUE(R.Resume.Attempted);
  EXPECT_TRUE(R.Resume.NoSnapshot);
  EXPECT_FALSE(R.Resume.Resumed);
  EXPECT_TRUE(R.Resume.RejectReason.empty());
}

TEST(CheckpointTest, MismatchedTraceOrOptionsAreRejected) {
  Trace T = buildAppTrace();
  std::string Dir = freshCheckpointDir("mismatch");

  DetectorOptions Tiny;
  Tiny.DeadlineMillis = 1e-6;
  CheckpointOptions Ckpt;
  Ckpt.Directory = Dir;
  analyzeTrace(T, withCheckpoint(Tiny, Ckpt));
  ASSERT_TRUE(fileExists(checkpointPath(Dir)));

  // A different trace must not adopt this trace's fixpoint.
  apps::AppBuilder App("other");
  App.seedInterThreadRace("gamma");
  App.fillVolumeTo(120);
  Table1Row Dummy;
  apps::AppModel Model = App.finish(Dummy);
  Trace Other = runScenario(Model.S, RuntimeOptions());

  Ckpt.Resume = true;
  AnalysisResult R = analyzeTrace(Other, withCheckpoint(DetectorOptions(), Ckpt));
  EXPECT_FALSE(R.Resume.Resumed);
  EXPECT_NE(R.Resume.RejectReason.find("does not match this trace"),
            std::string::npos)
      << R.Resume.RejectReason;

  // Same trace, different semantic options: also rejected.
  DetectorOptions Conv;
  Conv.Hb.Model = OrderingModel::Conventional;
  AnalysisResult R2 = analyzeTrace(T, withCheckpoint(Conv, Ckpt));
  EXPECT_FALSE(R2.Resume.Resumed);
  EXPECT_NE(R2.Resume.RejectReason.find("different analysis options"),
            std::string::npos)
      << R2.Resume.RejectReason;

  // Pure budget knobs are *not* semantic: a snapshot taken under one
  // deadline/oracle budget resumes under another.
  DetectorOptions OtherBudget;
  OtherBudget.Hb.Reach = ReachMode::Bfs;
  OtherBudget.Hb.MemLimitBytes = 1 << 20;
  AnalysisResult R3 = analyzeTrace(T, withCheckpoint(OtherBudget, Ckpt));
  EXPECT_TRUE(R3.Resume.Resumed) << R3.Resume.RejectReason;
}

TEST(CheckpointTest, CadenceSavesDuringACleanRunLeaveNoSnapshotBehind) {
  Trace T = buildAppTrace();
  std::string Dir = freshCheckpointDir("cadence");

  CheckpointOptions Ckpt;
  Ckpt.Directory = Dir;
  Ckpt.EveryMillis = 1e-7; // save at every opportunity
  AnalysisResult R = analyzeTrace(T, withCheckpoint(DetectorOptions(), Ckpt));
  EXPECT_FALSE(R.Report.Partial);
  EXPECT_TRUE(R.Resume.SaveError.empty()) << R.Resume.SaveError;

  // Intermediate snapshots were written, but a clean completion retires
  // the file so a stale snapshot can't shadow a finished analysis.
  EXPECT_FALSE(fileExists(checkpointPath(Dir)));

  AnalysisResult Clean = analyzeTrace(T, DetectorOptions());
  EXPECT_EQ(renderRaceReportJson(R.Report, T),
            renderRaceReportJson(Clean.Report, T));
}

TEST(CheckpointTest, FingerprintAndDigestSeparateInputsAndSemantics) {
  Trace T = buildAppTrace();
  Trace T2 = buildAppTrace(); // deterministic runtime: same content
  EXPECT_EQ(traceFingerprint(T), traceFingerprint(T2));

  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 16);
  TaskId A = TB.addThread("t");
  TB.begin(A);
  TB.ptrWrite(A, 1, 2, M, 0);
  TB.end(A);
  Trace Small = TB.take();
  EXPECT_NE(traceFingerprint(T), traceFingerprint(Small));

  DetectorOptions Base;
  EXPECT_EQ(detectorOptionsDigest(Base, false),
            detectorOptionsDigest(DetectorOptions(), false));
  EXPECT_NE(detectorOptionsDigest(Base, false),
            detectorOptionsDigest(Base, true));
  DetectorOptions NoAtom;
  NoAtom.Hb.EnableAtomicityRule = false;
  EXPECT_NE(detectorOptionsDigest(Base, false),
            detectorOptionsDigest(NoAtom, false));
  // Budget knobs don't change the digest.
  DetectorOptions Budget;
  Budget.Hb.Reach = ReachMode::Bfs;
  Budget.Hb.MemLimitBytes = 123;
  Budget.DeadlineMillis = 5;
  EXPECT_EQ(detectorOptionsDigest(Base, false),
            detectorOptionsDigest(Budget, false));
}

} // namespace
