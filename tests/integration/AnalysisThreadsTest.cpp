//===- tests/integration/AnalysisThreadsTest.cpp ------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The parallel-analysis determinism contract (docs/robustness.md): for
// every thread count, the analysis phase -- closure sweeps, rule-engine
// scans, detector pair scan -- must render byte-identical reports.
// Pinned three ways: over the committed trace fixtures, over randomized
// traces (100 seeds), and at the process level with SIGKILL landing
// mid-run while CAFA_ANALYSIS_THREADS=4.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "rt/Runtime.h"
#include "support/Rng.h"
#include "trace/IngestSession.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace cafa;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

std::vector<std::string> fixtureFiles() {
  std::vector<std::string> Files;
  if (DIR *D = ::opendir(CAFA_TRACE_FIXTURE_DIR)) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name.size() > 6 && Name.rfind(".trace") == Name.size() - 6)
        Files.push_back(std::string(CAFA_TRACE_FIXTURE_DIR) + "/" + Name);
    }
    ::closedir(D);
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// Both renderings of an analysis at \p Threads analysis threads.
std::pair<std::string, std::string> renderAt(const Trace &T,
                                             unsigned Threads) {
  DetectorOptions Opt;
  Opt.Hb.Threads = Threads;
  AnalysisResult R = analyzeTrace(T, Opt);
  return {renderRaceReport(R.Report, T), renderRaceReportJson(R.Report, T)};
}

TEST(AnalysisThreadsTest, FixturesByteIdenticalAcrossThreadCounts) {
  std::vector<std::string> Files = fixtureFiles();
  ASSERT_FALSE(Files.empty());
  for (const std::string &Path : Files) {
    SCOPED_TRACE(Path);
    Trace T;
    IngestReport Ingest;
    Status S = ingestTrace(readFile(Path), T, Ingest);
    if (!S.ok())
      continue; // rejected fixtures are ingest-layer tests, not ours
    auto [RefText, RefJson] = renderAt(T, 1);
    for (unsigned Threads : {2u, 4u, 8u}) {
      auto [Text, Json] = renderAt(T, Threads);
      EXPECT_EQ(Text, RefText) << Threads << " threads";
      EXPECT_EQ(Json, RefJson) << Threads << " threads";
    }
  }
}

/// Random structurally valid trace with enough queue traffic to exercise
/// the rule-engine scans and enough pointer traffic to give the detector
/// real pairs.
Trace randomPtrTrace(uint64_t Seed, size_t Steps) {
  Rng R(Seed);
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 65536);

  std::vector<QueueId> Queues;
  for (int I = 0, E = 1 + static_cast<int>(R.below(3)); I != E; ++I)
    Queues.push_back(TB.addQueue("q" + std::to_string(I)));

  struct LiveTask {
    TaskId Id;
    bool IsEvent;
    QueueId Queue;
  };
  std::vector<LiveTask> Running, Pending;
  std::vector<TaskId> ActivePerQueue(Queues.size(), TaskId::invalid());
  for (int I = 0, E = 2 + static_cast<int>(R.below(2)); I != E; ++I) {
    TaskId T = TB.addThread("thread" + std::to_string(I));
    TB.begin(T);
    Running.push_back({T, false, QueueId()});
  }

  size_t EventCounter = 0;
  uint32_t Pc = 0;
  for (size_t Step = 0; Step != Steps && !Running.empty(); ++Step) {
    LiveTask &Actor = Running[R.below(Running.size())];
    switch (R.below(10)) {
    case 0: { // send a new event
      QueueId Q = Queues[R.below(Queues.size())];
      bool AtFront = R.chance(1, 5);
      uint64_t Delay = AtFront ? 0 : R.below(4);
      TaskId E = TB.addEvent("event" + std::to_string(EventCounter++), Q,
                             Delay, AtFront, false);
      if (AtFront)
        TB.sendAtFront(Actor.Id, E);
      else
        TB.send(Actor.Id, E, Delay);
      Pending.push_back({E, true, Q});
      break;
    }
    case 1: { // begin a pending event on an idle queue
      for (size_t I = 0; I != Pending.size(); ++I) {
        LiveTask &P = Pending[I];
        if (ActivePerQueue[P.Queue.index()].isValid())
          continue;
        TB.begin(P.Id);
        ActivePerQueue[P.Queue.index()] = P.Id;
        Running.push_back(P);
        Pending.erase(Pending.begin() + static_cast<long>(I));
        break;
      }
      break;
    }
    case 2: { // end an event
      if (Actor.IsEvent && Running.size() > 1) {
        ActivePerQueue[Actor.Queue.index()] = TaskId::invalid();
        TB.end(Actor.Id);
        Running.erase(Running.begin() + (&Actor - Running.data()));
      }
      break;
    }
    case 3: { // lock-guarded access pair
      uint32_t Var = static_cast<uint32_t>(R.below(4));
      uint32_t Lock = static_cast<uint32_t>(R.below(2));
      TB.lockAcquire(Actor.Id, Lock);
      TB.ptrRead(Actor.Id, Var, 9 + Var, M, ++Pc);
      TB.deref(Actor.Id, 9 + Var, DerefKind::Invoke, M, ++Pc);
      TB.lockRelease(Actor.Id, Lock);
      break;
    }
    case 4: // free a cell
      TB.ptrWrite(Actor.Id, static_cast<uint32_t>(R.below(4)), 0, M, ++Pc);
      break;
    default: { // use a cell
      uint32_t Var = static_cast<uint32_t>(R.below(4));
      TB.ptrRead(Actor.Id, Var, 9 + Var, M, ++Pc);
      TB.deref(Actor.Id, 9 + Var, DerefKind::Invoke, M, ++Pc);
      break;
    }
    }
  }
  for (const LiveTask &L : Running)
    TB.end(L.Id);
  return TB.take();
}

class RandomThreadParityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RandomThreadParityTest, ReportsByteIdenticalAcrossThreadCounts) {
  Trace T = randomPtrTrace(GetParam() * 2654435761u + 11, 250);
  ASSERT_TRUE(validateTrace(T).ok()) << validateTrace(T).message();
  auto [RefText, RefJson] = renderAt(T, 1);
  for (unsigned Threads : {4u, 8u}) {
    auto [Text, Json] = renderAt(T, Threads);
    ASSERT_EQ(Text, RefText) << "seed " << GetParam() << " at " << Threads
                             << " threads";
    ASSERT_EQ(Json, RefJson) << "seed " << GetParam() << " at " << Threads
                             << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds100, RandomThreadParityTest,
                         testing::Range<uint64_t>(0, 100));

TEST(AnalysisThreadsTest, CheckpointCutAtOneThreadResumesAtFour) {
  // Thread count is excluded from the checkpoint options digest on
  // purpose: a snapshot cut at one thread count must resume cleanly at
  // another and still match the uninterrupted report byte for byte.
  apps::AppBuilder App("xthreads");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.fillVolumeTo(300);
  Table1Row Dummy;
  Trace T = runScenario(App.finish(Dummy).S, RuntimeOptions());

  std::string Dir = testing::TempDir() + "/cafa_xthreads_ckpt";
  ::mkdir(Dir.c_str(), 0755);
  std::remove(checkpointPath(Dir).c_str());

  DetectorOptions Ref;
  Ref.Hb.Threads = 1;
  AnalysisResult Clean = analyzeTrace(T, Ref);
  ASSERT_FALSE(Clean.Report.Partial);

  DetectorOptions Tiny = Ref;
  Tiny.DeadlineMillis = 1e-6;
  AnalysisOptions CutOpt(Tiny);
  CutOpt.Checkpoint.Directory = Dir;
  AnalysisResult Cut = analyzeTrace(T, CutOpt);
  ASSERT_TRUE(Cut.Report.Partial);

  DetectorOptions Par;
  Par.Hb.Threads = 4;
  AnalysisOptions ResumeOpt(Par);
  ResumeOpt.Checkpoint.Directory = Dir;
  ResumeOpt.Checkpoint.Resume = true;
  AnalysisResult Resumed = analyzeTrace(T, ResumeOpt);
  ASSERT_TRUE(Resumed.Resume.Resumed) << Resumed.Resume.RejectReason;
  EXPECT_FALSE(Resumed.Report.Partial);
  EXPECT_EQ(renderRaceReportJson(Resumed.Report, T),
            renderRaceReportJson(Clean.Report, T));
  std::remove(checkpointPath(Dir).c_str());
}

/// fork/exec the analyzer with CAFA_ANALYSIS_THREADS=4 in the child's
/// environment, capturing stdout; SIGKILL after \p KillAfterMillis
/// unless it exits first (mirrors CrashRecoveryTest::runAnalyzer).
struct RunResult {
  int ExitCode = -1;
  bool Killed = false;
  std::string Out;
};

RunResult runParallelAnalyzer(const std::vector<std::string> &Args,
                              const std::string &ScratchDir,
                              int KillAfterMillis = -1) {
  RunResult R;
  std::string OutPath = ScratchDir + "/stdout";
  std::string ErrPath = ScratchDir + "/stderr";
  pid_t Pid = ::fork();
  if (Pid == 0) {
    ::setenv("CAFA_ANALYSIS_THREADS", "4", 1);
    std::freopen(OutPath.c_str(), "wb", stdout);
    std::freopen(ErrPath.c_str(), "wb", stderr);
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(OFFLINE_ANALYZER_PATH));
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(OFFLINE_ANALYZER_PATH, Argv.data());
    _exit(127);
  }
  if (Pid < 0) {
    ADD_FAILURE() << "fork failed";
    return R;
  }
  int Status = 0;
  if (KillAfterMillis >= 0) {
    int Waited = 0;
    for (;;) {
      pid_t Done = ::waitpid(Pid, &Status, WNOHANG);
      if (Done == Pid)
        break;
      if (Waited >= KillAfterMillis) {
        ::kill(Pid, SIGKILL);
        ::waitpid(Pid, &Status, 0);
        break;
      }
      ::usleep(1000);
      ++Waited;
    }
  } else {
    ::waitpid(Pid, &Status, 0);
  }
  R.Killed = WIFSIGNALED(Status);
  if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  R.Out = readFile(OutPath);
  return R;
}

TEST(AnalysisThreadsTest, SigkillUnderParallelAnalysisResumesByteIdentical) {
  std::string Scratch = testing::TempDir() + "/cafa_parallel_kill";
  ::mkdir(Scratch.c_str(), 0755);
  std::string TracePath = Scratch + "/app.trace";

  apps::AppBuilder App("parkill");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.addGuardedCommutativePair("delta");
  App.fillVolumeTo(600);
  Table1Row Dummy;
  Trace T = runScenario(App.finish(Dummy).S, RuntimeOptions());
  ASSERT_TRUE(writeTraceFile(T, TracePath).ok());

  RunResult Ref =
      runParallelAnalyzer({"analyze", TracePath, "--json"}, Scratch);
  ASSERT_FALSE(Ref.Killed);
  ASSERT_TRUE(Ref.ExitCode == 0 || Ref.ExitCode == 1);

  for (int Delay : {2, 8, 25}) {
    SCOPED_TRACE("kill after " + std::to_string(Delay) + "ms");
    std::string Dir = Scratch + "/kill_" + std::to_string(Delay);
    ::mkdir(Dir.c_str(), 0755);
    std::remove(checkpointPath(Dir).c_str());
    RunResult First = runParallelAnalyzer({"analyze", TracePath, "--json",
                                           "--checkpoint-dir=" + Dir,
                                           "--checkpoint-every=1"},
                                          Dir, Delay);
    if (!First.Killed) {
      EXPECT_EQ(First.Out, Ref.Out);
      continue;
    }
    RunResult Resumed = runParallelAnalyzer(
        {"analyze", TracePath, "--json", "--checkpoint-dir=" + Dir,
         "--checkpoint-every=1", "--resume"},
        Dir);
    ASSERT_FALSE(Resumed.Killed);
    EXPECT_TRUE(Resumed.ExitCode == 4 || Resumed.ExitCode == Ref.ExitCode);
    EXPECT_EQ(Resumed.Out, Ref.Out);
  }
}

} // namespace
