//===- tests/trace/ManifestTest.cpp -------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The fleet manifest grammar: derived vs explicit job ids, comment and
// blank-line handling, relative-path resolution against a base
// directory, and the error cases (extra tokens, invalid ids, duplicate
// ids) that must fail the whole parse rather than drop lines silently.
//
//===----------------------------------------------------------------------===//

#include "trace/Manifest.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

TEST(ManifestTest, SanitizeJobIdReplacesUnsafeCharacters) {
  EXPECT_EQ(sanitizeJobId("nightly_run-1.v2"), "nightly_run-1.v2");
  EXPECT_EQ(sanitizeJobId("a/b c*d"), "a_b_c_d");
  EXPECT_EQ(sanitizeJobId(""), "_");
}

TEST(ManifestTest, DeriveJobIdUsesIndexAndBasename) {
  EXPECT_EQ(deriveJobId(0, "traces/zxing-run1.trace"), "j001_zxing-run1");
  EXPECT_EQ(deriveJobId(11, "/abs/path/todo.trace"), "j012_todo");
  // The index prefix keeps repeated paths unique.
  EXPECT_NE(deriveJobId(0, "a.trace"), deriveJobId(1, "a.trace"));
}

TEST(ManifestTest, ParsesDerivedAndExplicitIds) {
  std::vector<ManifestEntry> Entries;
  ASSERT_TRUE(parseManifest("# nightly corpus\n"
                            "\n"
                            "traces/zxing.trace\n"
                            "  todo_hot   traces/todo.trace   \n"
                            "traces/zxing.trace\n",
                            "", Entries)
                  .ok());
  ASSERT_EQ(Entries.size(), 3u);
  EXPECT_EQ(Entries[0].Id, "j001_zxing");
  EXPECT_EQ(Entries[0].TracePath, "traces/zxing.trace");
  EXPECT_EQ(Entries[1].Id, "todo_hot");
  EXPECT_EQ(Entries[1].TracePath, "traces/todo.trace");
  // Same path twice is fine -- the ids differ.
  EXPECT_EQ(Entries[2].Id, "j003_zxing");
}

TEST(ManifestTest, RelativePathsResolveAgainstBaseDir) {
  std::vector<ManifestEntry> Entries;
  ASSERT_TRUE(parseManifest("rel.trace\n"
                            "abs /abs/fixed.trace\n",
                            "/corpus/night", Entries)
                  .ok());
  ASSERT_EQ(Entries.size(), 2u);
  EXPECT_EQ(Entries[0].TracePath, "/corpus/night/rel.trace");
  EXPECT_EQ(Entries[1].TracePath, "/abs/fixed.trace"); // left as written
}

TEST(ManifestTest, RejectsMalformedLines) {
  std::vector<ManifestEntry> Entries;
  // Three tokens: ambiguous, refuse rather than guess.
  Status S = parseManifest("id path.trace extra\n", "", Entries);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("extra token"), std::string::npos)
      << S.message();
  EXPECT_TRUE(Entries.empty());

  // Explicit ids become directory names; reject unsafe characters
  // instead of silently rewriting what the user asked for.
  S = parseManifest("bad/id path.trace\n", "", Entries);
  EXPECT_FALSE(S.ok());
  EXPECT_TRUE(Entries.empty());
}

TEST(ManifestTest, RejectsDuplicateIds) {
  std::vector<ManifestEntry> Entries;
  Status S = parseManifest("same a.trace\nsame b.trace\n", "", Entries);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("duplicate"), std::string::npos)
      << S.message();
  EXPECT_TRUE(Entries.empty());
}

TEST(ManifestTest, MissingFileIsAnError) {
  std::vector<ManifestEntry> Entries;
  EXPECT_FALSE(
      readManifestFile("/nonexistent/dir/none.manifest", Entries).ok());
}

} // namespace
