//===- tests/trace/TraceBuilderTest.cpp ---------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

TEST(TraceBuilderTest, TimestampsAutoIncrement) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).read(T1, 0).write(T1, 1).end(T1);
  const Trace &T = TB.trace();
  ASSERT_EQ(T.numRecords(), 4u);
  for (uint32_t I = 1; I != 4; ++I)
    EXPECT_LT(T.record(I - 1).Time, T.record(I).Time);
}

TEST(TraceBuilderTest, LastRecordTracksAppends) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  EXPECT_EQ(TB.lastRecord(), 0u);
  TB.read(T1, 5);
  EXPECT_EQ(TB.lastRecord(), 1u);
}

TEST(TraceBuilderTest, SendFillsQueueFromTaskTable) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId T1 = TB.addThread("t");
  TaskId E1 = TB.addEvent("e", Q, 7);
  TB.begin(T1).send(T1, E1, 7);
  const TraceRecord &Send = TB.trace().record(TB.lastRecord());
  EXPECT_EQ(Send.queue(), Q);
  EXPECT_EQ(Send.targetTask(), E1);
  EXPECT_EQ(Send.delayMs(), 7u);
}

TEST(TraceBuilderTest, SideTablesCarryMetadata) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  MethodId M = TB.addMethod("onPause", 17);
  ListenerId L = TB.addListener("focus", /*Instrumented=*/false);
  TaskId E = TB.addEvent("e", Q, 3, /*AtFront=*/true, /*External=*/true);
  const Trace &T = TB.trace();
  EXPECT_EQ(T.methodName(M), "onPause");
  EXPECT_EQ(T.methodInfo(M).CodeSize, 17u);
  EXPECT_FALSE(T.listenerInfo(L).Instrumented);
  EXPECT_TRUE(T.taskInfo(E).SentAtFront);
  EXPECT_TRUE(T.taskInfo(E).External);
  EXPECT_EQ(T.taskInfo(E).DelayMs, 3u);
  EXPECT_EQ(T.taskInfo(E).Queue, Q);
}

TEST(TraceBuilderTest, RecordsCarryMethodAndPc) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 30);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.ptrRead(T1, 4, 9, M, 12);
  const TraceRecord &Rec = TB.trace().record(TB.lastRecord());
  EXPECT_EQ(Rec.Method, M);
  EXPECT_EQ(Rec.Pc, 12u);
  EXPECT_EQ(Rec.var(), VarId(4));
  EXPECT_EQ(Rec.object(), ObjectId(9));
}

TEST(TraceBuilderTest, TakeMovesTheTrace) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).end(T1);
  Trace T = TB.take();
  EXPECT_EQ(T.numRecords(), 2u);
  EXPECT_EQ(T.numTasks(), 1u);
}

} // namespace
