//===- tests/trace/IngestSessionTest.cpp --------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The sharded-ingestion contract: the Trace and IngestReport coming out
// of IngestSession are bit-identical at every thread count and every
// shard size -- on pristine dumps, on every damaged fixture, and on 100
// randomized FaultInjector corruptions with shard boundaries landing
// mid-record.  Plus the strict Parse mode honouring its strong error
// guarantee (the output Trace is untouched on failure).
//
//===----------------------------------------------------------------------===//

#include "trace/FaultInjector.h"
#include "trace/IngestSession.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cafa;

namespace {

/// Everything observable about one ingestion run, rendered to bytes so
/// two runs can be diffed with a single string comparison.
struct IngestOutcome {
  bool Ok = false;
  std::string StatusMessage;
  std::string SerializedTrace; ///< empty when !Ok
  std::string ReportSummary;
  uint64_t InternedNames = 0;

  bool operator==(const IngestOutcome &O) const {
    return Ok == O.Ok && StatusMessage == O.StatusMessage &&
           SerializedTrace == O.SerializedTrace &&
           ReportSummary == O.ReportSummary &&
           InternedNames == O.InternedNames;
  }
};

IngestOutcome runIngest(const std::string &Text, unsigned Threads,
                        uint64_t ShardBytes,
                        const SalvageOptions &Salvage = SalvageOptions()) {
  IngestOptions O;
  O.Salvage = Salvage;
  O.Threads = Threads;
  O.ShardBytes = ShardBytes;
  Trace T;
  IngestReport R;
  Status S = ingestTrace(Text, T, R, O);
  IngestOutcome Out;
  Out.Ok = S.ok();
  Out.StatusMessage = S.ok() ? "" : S.message();
  if (S.ok()) {
    Out.SerializedTrace = serializeTrace(T);
    Out.InternedNames = T.names().size();
  }
  Out.ReportSummary = R.summary();
  return Out;
}

std::string describe(const IngestOutcome &O) {
  return "ok=" + std::string(O.Ok ? "yes" : "no") + " status='" +
         O.StatusMessage + "'\nreport:\n" + O.ReportSummary;
}

/// A representative well-formed trace exercising every side table and
/// most record kinds, serialized to text.
std::string buildRichTraceText(uint32_t Volume) {
  TraceBuilder TB;
  MethodId M0 = TB.addMethod("onCreate", 128);
  MethodId M1 = TB.addMethod("handleMessage", 256);
  QueueId Q = TB.addQueue("main-queue");
  ListenerId L = TB.addListener("onClick");
  TaskId Main = TB.addThread("main");
  TaskId Worker = TB.addThread("worker");
  TaskId Ev1 = TB.addEvent("ev-click", Q);
  TaskId Ev2 = TB.addEvent("ev-delayed", Q, /*DelayMs=*/25);

  TB.begin(Main);
  TB.methodEnter(Main, M0, 1);
  TB.registerListener(Main, L);
  TB.write(Main, 7, 1);
  TB.send(Main, Ev1);
  TB.fork(Main, Worker);
  TB.methodExit(Main, M0, 1);
  TB.end(Main);

  TB.begin(Worker);
  for (uint32_t I = 0; I != Volume; ++I) {
    TB.lockAcquire(Worker, 3);
    TB.write(Worker, 100 + (I % 17), I);
    TB.ptrWrite(Worker, 50 + (I % 5), I % 3, M1, I);
    TB.lockRelease(Worker, 3);
  }
  TB.end(Worker);

  TB.begin(Ev1);
  TB.performListener(Ev1, L);
  TB.methodEnter(Ev1, M1, 2);
  TB.read(Ev1, 7);
  for (uint32_t I = 0; I != Volume; ++I) {
    TB.ptrRead(Ev1, 50 + (I % 5), I % 3, M1, I);
    TB.deref(Ev1, I % 3, DerefKind::Invoke, M1, I);
  }
  TB.send(Ev1, Ev2);
  TB.methodExit(Ev1, M1, 2);
  TB.end(Ev1);

  TB.begin(Ev2);
  TB.wait(Ev2, 9);
  TB.notify(Ev2, 9);
  TB.ipcSend(Ev2, 77);
  TB.ipcRecv(Ev2, 77);
  TB.end(Ev2);

  return serializeTrace(TB.take());
}

std::string fixturePath(const char *Name) {
  return std::string(CAFA_TRACE_FIXTURE_DIR) + "/" + Name;
}

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const char *AllFixtures[] = {
    "minimal_truncated.trace", "mytracks_droppeddup.trace",
    "mytracks_head.trace",     "todolist_garbage.trace",
    "todolist_head.trace",     "zxing_cut.trace",
    "zxing_fielddamage.trace", "zxing_head.trace",
};

} // namespace

//===----------------------------------------------------------------------===//
// Bit-identity across thread counts and shard sizes
//===----------------------------------------------------------------------===//

TEST(IngestSessionTest, ShardedMatchesSingleThreadOnEveryFixture) {
  for (const char *Name : AllFixtures) {
    SCOPED_TRACE(Name);
    std::string Text = readFileOrDie(fixturePath(Name));
    // Reference: one thread, one shard (the whole input).
    IngestOutcome Ref = runIngest(Text, 1, /*ShardBytes=*/UINT64_MAX);
    for (unsigned Threads : {1u, 2u, 3u, 8u}) {
      // Shard sizes chosen to cut mid-line, mid-record, and mid-token:
      // 1 forces a shard per line, 7 lands inside most tokens.
      for (uint64_t ShardBytes : {1ull, 7ull, 64ull, 4096ull}) {
        IngestOutcome Got = runIngest(Text, Threads, ShardBytes);
        EXPECT_TRUE(Got == Ref)
            << "threads=" << Threads << " shard=" << ShardBytes
            << "\n--- reference ---\n"
            << describe(Ref) << "\n--- got ---\n"
            << describe(Got);
      }
    }
  }
}

TEST(IngestSessionTest, PristineTraceSurvivesShardingUnchanged) {
  std::string Text = buildRichTraceText(50);
  IngestOutcome Ref = runIngest(Text, 1, UINT64_MAX);
  ASSERT_TRUE(Ref.Ok) << describe(Ref);
  EXPECT_EQ(Ref.SerializedTrace, Text); // lossless round-trip
  for (unsigned Threads : {2u, 4u}) {
    IngestOutcome Got = runIngest(Text, Threads, 128);
    EXPECT_TRUE(Got == Ref) << describe(Got);
  }
}

TEST(IngestSessionTest, ReportsAreByteIdenticalAt1And2And8Threads) {
  // A damaged dump with plenty of diagnostics: the report -- counters,
  // diagnostic text, and diagnostic ORDER -- must not depend on worker
  // scheduling in any way.
  std::string Text = buildRichTraceText(40);
  for (uint64_t I = 0; I != 25; ++I) {
    FaultKind Kind = static_cast<FaultKind>(1 + I % (NumFaultKinds - 1));
    Text = injectFault(Text, Kind, /*Seed=*/0xabcdef + I).Text;
  }
  SalvageOptions SOpt;
  SOpt.MaxDiagnostics = 64; // keep every diagnostic comparable
  IngestOutcome One = runIngest(Text, 1, 96, SOpt);
  IngestOutcome Two = runIngest(Text, 2, 96, SOpt);
  IngestOutcome Eight = runIngest(Text, 8, 96, SOpt);
  EXPECT_TRUE(Two == One) << "--- 1 thread ---\n"
                          << describe(One) << "\n--- 2 threads ---\n"
                          << describe(Two);
  EXPECT_TRUE(Eight == One) << "--- 1 thread ---\n"
                            << describe(One) << "\n--- 8 threads ---\n"
                            << describe(Eight);
}

TEST(IngestSessionTest, RandomizedDifferential100Seeds) {
  // 100 seeds x (random damage, random shard size, random thread count):
  // the sharded merge must match the single-thread single-shard
  // reference bit for bit, including when shard cuts land mid-record.
  const std::string Base = buildRichTraceText(30);
  for (uint64_t Seed = 0; Seed != 100; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    // splitmix64 over the seed: cheap, deterministic, well mixed.
    auto Next = [State = Seed + 0x9e3779b97f4a7c15ull]() mutable {
      State += 0x9e3779b97f4a7c15ull;
      uint64_t Z = State;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      return Z ^ (Z >> 31);
    };
    std::string Text = Base;
    uint64_t Rounds = 1 + Next() % 8;
    for (uint64_t I = 0; I != Rounds; ++I) {
      FaultKind Kind = static_cast<FaultKind>(Next() % NumFaultKinds);
      Text = injectFault(Text, Kind, Next()).Text;
    }
    IngestOutcome Ref = runIngest(Text, 1, UINT64_MAX);
    uint64_t ShardBytes = 1 + Next() % (Text.size() + 1);
    unsigned Threads = 1 + static_cast<unsigned>(Next() % 8);
    IngestOutcome Got = runIngest(Text, Threads, ShardBytes);
    EXPECT_TRUE(Got == Ref)
        << "threads=" << Threads << " shard=" << ShardBytes
        << " damage-rounds=" << Rounds << "\n--- reference ---\n"
        << describe(Ref) << "\n--- got ---\n"
        << describe(Got);
  }
}

TEST(IngestSessionTest, StrictModeAndBudgetsFailIdenticallyWhenSharded) {
  std::string Text = buildRichTraceText(10);
  Text = injectFault(Text, FaultKind::GarbageLine, 42).Text;
  Text = injectFault(Text, FaultKind::CorruptField, 43).Text;

  SalvageOptions Strict;
  Strict.Strict = true;
  IngestOutcome StrictRef = runIngest(Text, 1, UINT64_MAX, Strict);
  ASSERT_FALSE(StrictRef.Ok);
  for (unsigned Threads : {2u, 8u}) {
    IngestOutcome Got = runIngest(Text, Threads, 32, Strict);
    EXPECT_TRUE(Got == StrictRef) << describe(Got);
  }

  SalvageOptions Budget;
  Budget.MaxDroppedLines = 0; // first dropped line blows the budget
  IngestOutcome BudgetRef = runIngest(Text, 1, UINT64_MAX, Budget);
  ASSERT_FALSE(BudgetRef.Ok);
  for (unsigned Threads : {2u, 8u}) {
    IngestOutcome Got = runIngest(Text, Threads, 32, Budget);
    EXPECT_TRUE(Got == BudgetRef) << describe(Got);
  }
}

TEST(IngestSessionTest, ChunkedFeedMatchesOneShot) {
  std::string Text = buildRichTraceText(20);
  Text = injectFault(Text, FaultKind::TruncateAtOffset, 7).Text;

  IngestOutcome Ref = runIngest(Text, 2, 64);

  IngestOptions O;
  O.Threads = 2;
  O.ShardBytes = 64;
  IngestSession S(O);
  // Feed in awkward prime-sized chunks so chunk boundaries and shard
  // boundaries never coincide.
  for (size_t I = 0; I < Text.size(); I += 131)
    S.feed(std::string_view(Text).substr(I, 131));
  Trace T;
  IngestReport R;
  Status St = S.finish(T, R);
  ASSERT_EQ(St.ok(), Ref.Ok);
  if (St.ok())
    EXPECT_EQ(serializeTrace(T), Ref.SerializedTrace);
  EXPECT_EQ(R.summary(), Ref.ReportSummary);
}

//===----------------------------------------------------------------------===//
// Session surface
//===----------------------------------------------------------------------===//

TEST(IngestSessionTest, FinishTwiceFails) {
  IngestSession S;
  Trace T;
  IngestReport R;
  EXPECT_TRUE(S.finish(T, R).ok());
  Status Again = S.finish(T, R);
  EXPECT_FALSE(Again.ok());
  EXPECT_NE(Again.message().find("finish() called twice"),
            std::string::npos);
}

TEST(IngestSessionTest, FeedFileReportsMissingFile) {
  IngestSession S;
  Status St = S.feedFile("/nonexistent/definitely-not-here.trace");
  EXPECT_FALSE(St.ok());
  EXPECT_NE(St.message().find("cannot open"), std::string::npos);
}

TEST(IngestSessionTest, ResolveThreadsHonorsEnvironment) {
  // CI legs run the whole suite under CAFA_INGEST_THREADS; stash any
  // ambient value so the hardware-default probe below is really
  // env-free, and restore it on the way out.
  const char *Ambient = ::getenv("CAFA_INGEST_THREADS");
  std::string Saved = Ambient ? Ambient : "";
  ::unsetenv("CAFA_INGEST_THREADS");

  unsigned HwDefault = IngestSession::resolveThreads(0);
  EXPECT_GE(HwDefault, 1u);
  EXPECT_EQ(IngestSession::resolveThreads(5), 5u);
  EXPECT_EQ(IngestSession::resolveThreads(100000), 256u); // capped

  ::setenv("CAFA_INGEST_THREADS", "3", 1);
  EXPECT_EQ(IngestSession::resolveThreads(0), 3u);
  // Explicit request beats the environment.
  EXPECT_EQ(IngestSession::resolveThreads(2), 2u);
  ::setenv("CAFA_INGEST_THREADS", "not-a-number", 1);
  EXPECT_EQ(IngestSession::resolveThreads(0), HwDefault);

  if (Ambient)
    ::setenv("CAFA_INGEST_THREADS", Saved.c_str(), 1);
  else
    ::unsetenv("CAFA_INGEST_THREADS");
}

TEST(IngestSessionTest, ParseModeIsStrict) {
  std::string Good = buildRichTraceText(5);
  std::string Bad = injectFault(Good, FaultKind::GarbageLine, 11).Text;

  IngestOptions O;
  O.Mode = IngestMode::Parse;

  // A pristine dump parses cleanly and keeps every record.
  {
    Trace T;
    IngestReport R;
    ASSERT_TRUE(ingestTrace(Good, T, R, O).ok());
    EXPECT_EQ(R.RecordsKept, T.numRecords());
    EXPECT_TRUE(R.clean());
  }

  // A damaged dump fails at the first offending byte, leaving the output
  // Trace untouched (strong guarantee) — while the default salvage mode
  // still repairs the same text.
  {
    Trace T;
    IngestReport R;
    Status St = ingestTrace(Bad, T, R, O);
    ASSERT_FALSE(St.ok());
    EXPECT_NE(St.message().find("trace line"), std::string::npos);
    EXPECT_EQ(T.numRecords(), 0u);
    EXPECT_EQ(T.numTasks(), 0u);

    Trace Repaired;
    IngestReport SalvageReport;
    EXPECT_TRUE(ingestTrace(Bad, Repaired, SalvageReport).ok());
    EXPECT_GT(Repaired.numRecords(), 0u);
    EXPECT_FALSE(SalvageReport.clean());
  }
}
