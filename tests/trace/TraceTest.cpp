//===- tests/trace/TraceTest.cpp ----------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "trace/TraceBuilder.h"
#include "trace/TraceStats.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

TEST(TraceRecordTest, OpKindNamesRoundTrip) {
  for (unsigned I = 0; I != NumOpKinds; ++I) {
    OpKind Kind = static_cast<OpKind>(I);
    OpKind Parsed;
    ASSERT_TRUE(opKindFromName(opKindName(Kind), Parsed))
        << "name " << opKindName(Kind);
    EXPECT_EQ(Parsed, Kind);
  }
  OpKind Unused;
  EXPECT_FALSE(opKindFromName("not-a-kind", Unused));
}

TEST(TraceRecordTest, FreeAndAllocationPredicates) {
  TraceRecord Rec;
  Rec.Kind = OpKind::PtrWrite;
  Rec.Arg1 = 0;
  EXPECT_TRUE(Rec.isFree());
  EXPECT_FALSE(Rec.isAllocation());
  Rec.Arg1 = 17;
  EXPECT_FALSE(Rec.isFree());
  EXPECT_TRUE(Rec.isAllocation());
  Rec.Kind = OpKind::PtrRead;
  Rec.Arg1 = 0;
  EXPECT_FALSE(Rec.isFree());
}

TEST(TraceRecordTest, TypedAccessors) {
  TraceRecord Rec;
  Rec.Kind = OpKind::Send;
  Rec.Arg0 = 12;
  Rec.Arg1 = 250;
  Rec.Arg2 = 3;
  EXPECT_EQ(Rec.targetTask(), TaskId(12));
  EXPECT_EQ(Rec.delayMs(), 250u);
  EXPECT_EQ(Rec.queue(), QueueId(3));

  Rec.Kind = OpKind::Branch;
  Rec.Arg0 = static_cast<uint64_t>(BranchKind::IfNez);
  Rec.Arg1 = 77;
  Rec.Arg2 = 21;
  EXPECT_EQ(Rec.branchKind(), BranchKind::IfNez);
  EXPECT_EQ(Rec.branchObject(), ObjectId(77));
  EXPECT_EQ(Rec.branchTargetPc(), 21u);
}

TEST(TraceTest, NamesForUnnamedEntities) {
  Trace T;
  TaskInfo Info;
  TaskId Task = T.addTask(Info);
  EXPECT_EQ(T.taskName(Task), "<task 0>");
  EXPECT_EQ(T.taskName(TaskId::invalid()), "<invalid task>");
  EXPECT_EQ(T.methodName(MethodId::invalid()), "<invalid method>");
}

TEST(TraceTest, NumEventsCountsOnlyEvents) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TB.addThread("t1");
  TB.addEvent("e1", Q);
  TB.addEvent("e2", Q);
  EXPECT_EQ(TB.trace().numEvents(), 2u);
}

TEST(TaskIndexTest, LocalIndicesAscendPerTask) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId T1 = TB.addThread("t1");
  TaskId E1 = TB.addEvent("e1", Q, 0, false, true);
  TB.begin(T1);
  TB.begin(E1);
  TB.read(T1, 0);
  TB.read(E1, 1);
  TB.end(E1);
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  EXPECT_EQ(Index.recordsOf(T1).size(), 3u);
  EXPECT_EQ(Index.recordsOf(E1).size(), 3u);
  // Record 2 (read in T1) is T1's second record.
  EXPECT_EQ(Index.localIndexOf(2), 1u);
  // Record 3 (read in E1) is E1's second record.
  EXPECT_EQ(Index.localIndexOf(3), 1u);
  // Record 5 (end of T1) is T1's third record.
  EXPECT_EQ(Index.localIndexOf(5), 2u);
}

TEST(TraceStatsTest, CountsKindsAndTasks) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId T1 = TB.addThread("t1");
  TaskId E1 = TB.addEvent("e1", Q, 5, false, false);
  TaskId E2 = TB.addEvent("e2", Q, 0, true, true);
  TB.begin(T1).send(T1, E1, 5).sendAtFront(T1, E2);
  TB.begin(E2).ptrWrite(E2, 0, 0).end(E2);
  TB.begin(E1).ptrWrite(E1, 0, 9).end(E1);
  TB.end(T1);
  TraceStats Stats = computeTraceStats(TB.trace());
  EXPECT_EQ(Stats.NumEvents, 2u);
  EXPECT_EQ(Stats.NumThreads, 1u);
  EXPECT_EQ(Stats.NumExternalEvents, 1u);
  EXPECT_EQ(Stats.NumFrontEvents, 1u);
  EXPECT_EQ(Stats.NumFrees, 1u);
  EXPECT_EQ(Stats.NumAllocations, 1u);
  EXPECT_EQ(Stats.EventsPerQueue.at(Q.index()), 2u);
  EXPECT_EQ(Stats.KindCounts[static_cast<unsigned>(OpKind::Send)], 1u);
  EXPECT_EQ(Stats.KindCounts[static_cast<unsigned>(OpKind::SendAtFront)],
            1u);
  EXPECT_GT(Stats.EndTime, 0u);
  std::string Render = renderTraceStats(Stats);
  EXPECT_NE(Render.find("events: 2"), std::string::npos);
}

} // namespace
