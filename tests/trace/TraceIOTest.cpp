//===- tests/trace/TraceIOTest.cpp --------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "support/Rng.h"
#include "trace/IngestSession.h"
#include "trace/TraceBuilder.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace cafa;

namespace {

/// Strict parse through the unified ingestion API (IngestMode::Parse):
/// fails on the first offending byte, leaving \p Out untouched.
Status parseStrict(const std::string &Text, Trace &Out) {
  IngestOptions Opt;
  Opt.Mode = IngestMode::Parse;
  IngestReport Report;
  return ingestTrace(Text, Out, Report, Opt);
}

Trace makeSampleTrace() {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main queue"); // space exercises escaping
  TB.addMethod("onPause", 12);
  MethodId M = TB.addMethod("on Resume", 30);
  TB.addListener("focus", false);
  TaskId T1 = TB.addThread("worker");
  TaskId E1 = TB.addEvent("onPause", Q, 25, false, false);
  TaskId E2 = TB.addEvent("tap", Q, 0, false, true);
  TB.begin(T1).send(T1, E1, 25);
  TB.begin(E2).ptrRead(E2, 4, 9, M, 7).deref(E2, 9, DerefKind::Invoke, M, 8);
  TB.end(E2);
  TB.begin(E1).ptrWrite(E1, 4, 0, M, 3).end(E1);
  TB.end(T1);
  return TB.take();
}

/// Structural equality of two traces.
void expectTracesEqual(const Trace &A, const Trace &B) {
  ASSERT_EQ(A.numRecords(), B.numRecords());
  ASSERT_EQ(A.numTasks(), B.numTasks());
  ASSERT_EQ(A.numQueues(), B.numQueues());
  ASSERT_EQ(A.numMethods(), B.numMethods());
  ASSERT_EQ(A.numListeners(), B.numListeners());
  for (uint32_t I = 0; I != A.numRecords(); ++I) {
    const TraceRecord &X = A.record(I);
    const TraceRecord &Y = B.record(I);
    EXPECT_EQ(X.Task, Y.Task) << "record " << I;
    EXPECT_EQ(X.Kind, Y.Kind) << "record " << I;
    EXPECT_EQ(X.Method, Y.Method) << "record " << I;
    EXPECT_EQ(X.Pc, Y.Pc) << "record " << I;
    EXPECT_EQ(X.Arg0, Y.Arg0) << "record " << I;
    EXPECT_EQ(X.Arg1, Y.Arg1) << "record " << I;
    EXPECT_EQ(X.Arg2, Y.Arg2) << "record " << I;
    EXPECT_EQ(X.Time, Y.Time) << "record " << I;
  }
  for (uint32_t I = 0; I != A.numTasks(); ++I) {
    const TaskInfo &X = A.taskInfo(TaskId(I));
    const TaskInfo &Y = B.taskInfo(TaskId(I));
    EXPECT_EQ(X.Kind, Y.Kind);
    EXPECT_EQ(A.taskName(TaskId(I)), B.taskName(TaskId(I)));
    EXPECT_EQ(X.Process, Y.Process);
    EXPECT_EQ(X.Queue, Y.Queue);
    EXPECT_EQ(X.Handler, Y.Handler);
    EXPECT_EQ(X.DelayMs, Y.DelayMs);
    EXPECT_EQ(X.SentAtFront, Y.SentAtFront);
    EXPECT_EQ(X.External, Y.External);
    EXPECT_EQ(X.Parent, Y.Parent);
    EXPECT_EQ(X.IsLooper, Y.IsLooper);
  }
  for (uint32_t I = 0; I != A.numQueues(); ++I) {
    const QueueInfo &X = A.queueInfo(QueueId(I));
    const QueueInfo &Y = B.queueInfo(QueueId(I));
    EXPECT_EQ(X.Name.isValid() ? A.names().str(X.Name) : std::string(),
              Y.Name.isValid() ? B.names().str(Y.Name) : std::string());
    EXPECT_EQ(X.Looper, Y.Looper);
  }
  for (uint32_t I = 0; I != A.numMethods(); ++I) {
    EXPECT_EQ(A.methodName(MethodId(I)), B.methodName(MethodId(I)));
    EXPECT_EQ(A.methodInfo(MethodId(I)).CodeSize,
              B.methodInfo(MethodId(I)).CodeSize);
  }
  for (uint32_t I = 0; I != A.numListeners(); ++I) {
    const ListenerInfo &X = A.listenerInfo(ListenerId(I));
    const ListenerInfo &Y = B.listenerInfo(ListenerId(I));
    EXPECT_EQ(X.Name.isValid() ? A.names().str(X.Name) : std::string(),
              Y.Name.isValid() ? B.names().str(Y.Name) : std::string());
    EXPECT_EQ(X.Instrumented, Y.Instrumented);
  }
}

TEST(TraceIOTest, SerializeParseRoundTrip) {
  Trace Original = makeSampleTrace();
  std::string Text = serializeTrace(Original);
  Trace Parsed;
  Status S = parseStrict(Text, Parsed);
  ASSERT_TRUE(S.ok()) << S.message();
  expectTracesEqual(Original, Parsed);
}

TEST(TraceIOTest, FileRoundTrip) {
  Trace Original = makeSampleTrace();
  std::string Path = testing::TempDir() + "/cafa_trace_io_test.trace";
  ASSERT_TRUE(writeTraceFile(Original, Path).ok());
  Trace Parsed;
  Status S = readTraceFile(Path, Parsed);
  ASSERT_TRUE(S.ok()) << S.message();
  expectTracesEqual(Original, Parsed);
  std::remove(Path.c_str());
}

TEST(TraceIOTest, MissingHeaderRejected) {
  Trace Out;
  Status S = parseStrict("not a trace\n", Out);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("header"), std::string::npos);
}

TEST(TraceIOTest, UnknownDirectiveRejected) {
  Trace Out;
  Status S = parseStrict("cafa-trace v1\nbogus 1 2 3\n", Out);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("unknown directive"), std::string::npos);
}

TEST(TraceIOTest, MalformedRecLineRejected) {
  Trace Out;
  Status S = parseStrict("cafa-trace v1\n"
                        "task 0 thread t - 4294967295 4294967295 "
                        "4294967295 0 0 0 4294967295 0\n"
                        "rec 0 rd 0\n",
                        Out);
  EXPECT_FALSE(S.ok());
}

TEST(TraceIOTest, RecForUndeclaredTaskRejected) {
  Trace Out;
  Status S = parseStrict(
      "cafa-trace v1\nrec 5 rd 4294967295 0 0 0 0 1\n", Out);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("undeclared task"), std::string::npos);
}

TEST(TraceIOTest, NonDenseIdsRejected) {
  Trace Out;
  Status S = parseStrict("cafa-trace v1\nmethod 3 foo 10\n", Out);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("dense"), std::string::npos);
}

TEST(TraceIOTest, CommentsAndBlankLinesIgnored) {
  Trace Out;
  Status S = parseStrict("cafa-trace v1\n\n# a comment\n", Out);
  EXPECT_TRUE(S.ok()) << S.message();
  EXPECT_EQ(Out.numRecords(), 0u);
}

TEST(TraceIOTest, NameEscapingSurvivesSpacesAndBackslashes) {
  TraceBuilder TB;
  TB.addQueue("queue with spaces");
  TB.addMethod("weird\\name", 1);
  std::string Text = serializeTrace(TB.trace());
  Trace Parsed;
  ASSERT_TRUE(parseStrict(Text, Parsed).ok());
  EXPECT_EQ(Parsed.names().str(Parsed.queueInfo(QueueId(0)).Name),
            "queue with spaces");
  EXPECT_EQ(Parsed.methodName(MethodId(0)), "weird\\name");
}

TEST(TraceIOTest, ReadMissingFileFails) {
  Trace Out;
  Status S = readTraceFile("/nonexistent/path/file.trace", Out);
  EXPECT_FALSE(S.ok());
}

TEST(TraceIOTest, ParseFailureLeavesOutputUntouched) {
  // IngestMode::Parse documents the strong error guarantee: on failure the
  // output trace is exactly what the caller passed in, never a
  // half-parsed hybrid.
  Trace Out = makeSampleTrace();
  std::string Bad =
      serializeTrace(Out) + "rec 0 rd not-a-number 0 0 0 0 99\n";
  ASSERT_FALSE(parseStrict(Bad, Out).ok());
  expectTracesEqual(Out, makeSampleTrace());

  // Same contract when the header itself is missing.
  ASSERT_FALSE(parseStrict("not a trace\n", Out).ok());
  expectTracesEqual(Out, makeSampleTrace());
}

/// Builds a structurally arbitrary trace from \p Seed: every record
/// kind, full-range argument values, sentinel and valid cross-table
/// references, and names exercising the escaping rules.
Trace makeRandomTrace(uint64_t Seed) {
  Rng R(Seed);
  Trace T;

  auto randomName = [&](const char *Prefix) {
    std::string S = Prefix;
    // Includes the two escaped characters (space, backslash) plus
    // ordinary ones.
    static const char Alphabet[] = "ab z\\_-.X9";
    size_t Len = R.below(10);
    for (size_t I = 0; I != Len; ++I)
      S.push_back(Alphabet[R.below(sizeof(Alphabet) - 1)]);
    return T.names().intern(S);
  };

  size_t NumMethods = 1 + R.below(4);
  for (size_t I = 0; I != NumMethods; ++I) {
    MethodInfo M;
    if (!R.chance(1, 4))
      M.Name = randomName("m ");
    M.CodeSize = static_cast<uint32_t>(R.next());
    T.addMethod(M);
  }
  size_t NumQueues = 1 + R.below(3);
  for (size_t I = 0; I != NumQueues; ++I) {
    QueueInfo Q;
    if (!R.chance(1, 4))
      Q.Name = randomName("q\\");
    if (R.chance(1, 2))
      Q.Looper = TaskId(static_cast<uint32_t>(R.below(8)));
    T.addQueue(Q);
  }
  size_t NumListeners = R.below(3);
  for (size_t I = 0; I != NumListeners; ++I) {
    ListenerInfo L;
    if (!R.chance(1, 4))
      L.Name = randomName("l");
    L.Instrumented = R.chance(1, 2);
    T.addListener(L);
  }
  size_t NumTasks = 2 + R.below(6);
  for (size_t I = 0; I != NumTasks; ++I) {
    TaskInfo Info;
    Info.Kind = R.chance(1, 2) ? TaskKind::Event : TaskKind::Thread;
    if (!R.chance(1, 4))
      Info.Name = randomName("t ");
    if (R.chance(1, 2))
      Info.Process = ProcessId(static_cast<uint32_t>(R.below(4)));
    if (R.chance(2, 3))
      Info.Queue = QueueId(static_cast<uint32_t>(R.below(NumQueues)));
    if (R.chance(1, 2))
      Info.Handler = MethodId(static_cast<uint32_t>(R.below(NumMethods)));
    Info.DelayMs = R.next();
    Info.SentAtFront = R.chance(1, 3);
    Info.External = R.chance(1, 3);
    if (R.chance(1, 2))
      Info.Parent = TaskId(static_cast<uint32_t>(R.below(NumTasks)));
    Info.IsLooper = R.chance(1, 4);
    T.addTask(Info);
  }

  size_t NumRecords = 20 + R.below(60);
  for (size_t I = 0; I != NumRecords; ++I) {
    TraceRecord Rec;
    Rec.Task = TaskId(static_cast<uint32_t>(R.below(NumTasks)));
    Rec.Kind = static_cast<OpKind>(R.below(NumOpKinds));
    if (R.chance(1, 2))
      Rec.Method = MethodId(static_cast<uint32_t>(R.below(NumMethods)));
    Rec.Pc = static_cast<uint32_t>(R.next());
    Rec.Arg0 = R.next();
    Rec.Arg1 = R.next();
    Rec.Arg2 = R.next();
    Rec.Time = R.next();
    T.append(Rec);
  }
  return T;
}

TEST(TraceIOTest, RandomizedRoundTripIsIdentity) {
  // The property pin: parseStrict(serializeTrace(T)) == T over 100
  // randomized traces covering every record kind, full-range values,
  // sentinel ids, and names with spaces and backslashes.
  for (uint64_t Seed = 0; Seed != 100; ++Seed) {
    Trace Original = makeRandomTrace(Seed);
    Trace Parsed;
    Status S = parseStrict(serializeTrace(Original), Parsed);
    ASSERT_TRUE(S.ok()) << "seed " << Seed << ": " << S.message();
    expectTracesEqual(Original, Parsed);
    if (::testing::Test::HasFatalFailure() ||
        ::testing::Test::HasNonfatalFailure()) {
      ADD_FAILURE() << "round-trip diverged at seed " << Seed;
      return;
    }
  }
}

} // namespace
