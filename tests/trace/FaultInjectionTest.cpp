//===- tests/trace/FaultInjectionTest.cpp -------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The fault-injection harness for the salvage pipeline.  Valid traces are
// deterministically corrupted (trace/FaultInjector.h) and pushed through
// salvage -> validate -> analyze, asserting the ingestion contract:
//
//  - no mutation crashes the parser, the validator, or the analyzer;
//  - whatever salvage admits satisfies every validateTrace() invariant
//    (modulo AllowUnsentEvents for events whose send line was lost);
//  - corrupting a single record line loses at most that one record;
//  - a trace truncated mid-event still parses and analyzes;
//  - strict mode accepts exactly the pristine inputs;
//  - the error budgets actually fail ingestion when exceeded.
//
//===----------------------------------------------------------------------===//

#include "trace/FaultInjector.h"

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "trace/IngestSession.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace cafa;

namespace {

/// Salvage one text through the unified ingestion API.
Status salvage(const std::string &Text, Trace &Out, IngestReport &Report,
               const SalvageOptions &Opt = SalvageOptions()) {
  IngestOptions IO;
  IO.Salvage = Opt;
  return ingestTrace(Text, Out, Report, IO);
}

/// Strict parse (IngestMode::Parse) through the same API.
Status parseStrict(const std::string &Text, Trace &Out) {
  IngestOptions Opt;
  Opt.Mode = IngestMode::Parse;
  IngestReport Report;
  return ingestTrace(Text, Out, Report, Opt);
}

/// A compact hand-built trace exercising every record kind and every
/// side table, so mutations can hit every parser code path.
std::string buildKitchenSinkText() {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  MethodId M1 = TB.addMethod("onCreate", 64);
  MethodId M2 = TB.addMethod("worker", 64);
  ListenerId L = TB.addListener("onClick");
  TaskId Boot = TB.addThread("boot");
  TaskId W = TB.addThread("bg-worker");
  TaskId E1 = TB.addEvent("ev-use", Q);
  TaskId E2 = TB.addEvent("ev-free", Q);
  TaskId Ext = TB.addEvent("ev-ext", Q, 0, false, /*External=*/true);

  TB.begin(Boot);
  TB.methodEnter(Boot, M1, 1);
  TB.registerListener(Boot, L);
  TB.lockAcquire(Boot, 7);
  TB.write(Boot, 3, 1);
  TB.read(Boot, 3, 1);
  TB.lockRelease(Boot, 7);
  TB.fork(Boot, W);
  TB.send(Boot, E1, 0);
  TB.send(Boot, E2, 5);
  TB.ipcSend(Boot, 11);
  TB.methodExit(Boot, M1, 1);
  TB.end(Boot);

  TB.begin(W);
  TB.ipcRecv(W, 11);
  TB.wait(W, 4);
  TB.ptrWrite(W, 5, 8, M2, 2);
  TB.end(W);

  TB.begin(E1);
  TB.performListener(E1, L);
  TB.methodEnter(E1, M2, 2);
  TB.ptrRead(E1, 5, 8, M2, 3);
  TB.deref(E1, 8, DerefKind::Invoke, M2, 4);
  TB.branch(E1, BranchKind::IfNez, 8, M2, 5, 9);
  TB.notify(E1, 4);
  TB.methodExit(E1, M2, 2);
  TB.end(E1);

  TB.begin(E2);
  TB.ptrWrite(E2, 5, 0, M2, 7);
  TB.end(E2);

  TB.begin(Ext);
  TB.read(Ext, 3, 1);
  TB.end(Ext);

  return serializeTrace(TB.take());
}

/// A larger app-shaped trace from the scenario runtime.
std::string buildAppText() {
  apps::AppBuilder App("faultmini");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.addGuardedCommutativePair("delta");
  App.fillVolumeTo(300);
  Table1Row Dummy;
  apps::AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());
  return serializeTrace(T);
}

/// Pushes one corrupted text through the whole pipeline.  Every stage
/// must terminate normally; whatever salvage admits must validate.
void runPipelineOn(const std::string &Text, const std::string &What) {
  SalvageOptions Opt;
  Opt.MaxDroppedRatio = 1.0; // the no-crash sweep disables the budget
  Trace T;
  IngestReport Report;
  Status S = salvage(Text, T, Report, Opt);
  ASSERT_TRUE(S.ok()) << What << ": " << S.message() << "\n"
                      << Report.summary();

  ValidateOptions VOpt;
  VOpt.AllowUnsentEvents = true;
  Status V = validateTrace(T, VOpt);
  ASSERT_TRUE(V.ok()) << What << ": salvage admitted an invalid trace: "
                      << V.message() << "\n"
                      << Report.summary();

  DetectorOptions DOpt;
  DOpt.Classify = false;
  AnalysisResult R = analyzeTrace(T, DOpt);
  // Any answer is acceptable; reaching here without a crash is the test.
  (void)R;
}

TEST(FaultInjectionTest, MutationSweepNeverCrashes) {
  const std::vector<std::string> Bases = {buildKitchenSinkText(),
                                          buildAppText()};
  constexpr uint64_t SeedsPerKind = 32;
  size_t Mutations = 0;
  for (const std::string &Base : Bases) {
    for (unsigned K = 0; K != NumFaultKinds; ++K) {
      for (uint64_t Seed = 0; Seed != SeedsPerKind; ++Seed) {
        FaultKind Kind = static_cast<FaultKind>(K);
        InjectedFault F = injectFault(Base, Kind, Seed);
        ++Mutations;
        runPipelineOn(F.Text,
                      std::string(faultKindName(Kind)) + " seed " +
                          std::to_string(Seed) + ": " + F.Description);
        if (::testing::Test::HasFatalFailure())
          return;
      }
    }
  }
  // The acceptance bar: at least 500 deterministic mutated traces ran
  // end to end.
  EXPECT_GE(Mutations, 500u);
}

/// Multiset key for one record, ignoring the timestamp (repairs clamp
/// times) -- everything else must survive ingestion untouched.
std::string recordKey(const TraceRecord &R) {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf), "%u|%u|%u|%u|%llu|%llu|%llu",
                R.Task.value(), static_cast<unsigned>(R.Kind),
                R.Method.value(), R.Pc,
                static_cast<unsigned long long>(R.Arg0),
                static_cast<unsigned long long>(R.Arg1),
                static_cast<unsigned long long>(R.Arg2));
  return Buf;
}

TEST(FaultInjectionTest, SingleLineCorruptionLosesOnlyThatRecord) {
  std::string Base = buildKitchenSinkText();
  Trace Original;
  ASSERT_TRUE(parseStrict(Base, Original).ok());

  // Split into lines and corrupt each record line in turn.  (Corrupting
  // a directive line shifts every later implicit id and legitimately
  // cascades, so the single-record guarantee is scoped to `rec` lines.)
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start < Base.size()) {
    size_t NL = Base.find('\n', Start);
    if (NL == std::string::npos)
      NL = Base.size();
    Lines.push_back(Base.substr(Start, NL - Start));
    Start = NL + 1;
  }

  size_t Corrupted = 0;
  for (size_t I = 0; I != Lines.size(); ++I) {
    if (Lines[I].rfind("rec ", 0) != 0)
      continue;
    ++Corrupted;
    std::string Mutated;
    for (size_t J = 0; J != Lines.size(); ++J) {
      Mutated += J == I ? "@@@ corrupted @@@" : Lines[J];
      Mutated += '\n';
    }

    Trace T;
    IngestReport Report;
    ASSERT_TRUE(salvage(Mutated, T, Report).ok()) << Lines[I];
    EXPECT_EQ(Report.LinesDropped, 1u) << Lines[I];

    // Every original record except (at most) the corrupted one must be
    // present in the salvaged trace, up to multiplicity.
    std::map<std::string, int> Have;
    for (const TraceRecord &R : T.records())
      ++Have[recordKey(R)];
    size_t Lost = 0;
    for (const TraceRecord &R : Original.records()) {
      auto It = Have.find(recordKey(R));
      if (It == Have.end() || It->second == 0)
        ++Lost;
      else
        --It->second;
    }
    EXPECT_LE(Lost, 1u) << "corrupting '" << Lines[I] << "' lost " << Lost
                        << " records\n"
                        << Report.summary();
  }
  EXPECT_GT(Corrupted, 20u); // the fixture is meant to be rich
}

TEST(FaultInjectionTest, TruncationMidEventStillAnalyzable) {
  std::string Base = buildKitchenSinkText();
  // Cut inside the E1 event body: mid-line, mid-event, mid-method.
  size_t Cut = Base.find(" deref ");
  ASSERT_NE(Cut, std::string::npos);
  std::string Truncated = Base.substr(0, Cut + 5);

  Trace T;
  IngestReport Report;
  ASSERT_TRUE(salvage(Truncated, T, Report).ok())
      << Report.summary();
  EXPECT_TRUE(Report.TruncatedFinalLine);
  EXPECT_GT(Report.RecordsSynthesized, 0u); // the open event was closed
  EXPECT_GT(T.numRecords(), 10u);

  ValidateOptions VOpt;
  VOpt.AllowUnsentEvents = true;
  EXPECT_TRUE(validateTrace(T, VOpt).ok());

  DetectorOptions DOpt;
  DOpt.Classify = false;
  AnalysisResult R = analyzeTrace(T, DOpt);
  EXPECT_GT(R.HbStats.ProgramOrderEdges, 0u);
}

TEST(FaultInjectionTest, StrictModeAcceptsExactlyPristineInput) {
  std::string Base = buildKitchenSinkText();
  SalvageOptions Strict;
  Strict.Strict = true;

  Trace Clean;
  IngestReport CleanReport;
  ASSERT_TRUE(salvage(Base, Clean, CleanReport, Strict).ok());
  EXPECT_TRUE(CleanReport.clean());

  Trace Parsed;
  ASSERT_TRUE(parseStrict(Base, Parsed).ok());
  EXPECT_EQ(Clean.numRecords(), Parsed.numRecords());

  // Any corruption that actually lands must be rejected in strict mode,
  // while non-strict salvage still gets through.
  InjectedFault F = injectFault(Base, FaultKind::GarbageLine, 1);
  ASSERT_NE(F.Text, Base);
  Trace T;
  IngestReport Report;
  EXPECT_FALSE(salvage(F.Text, T, Report, Strict).ok());
  EXPECT_TRUE(salvage(F.Text, T, Report).ok());
}

TEST(FaultInjectionTest, DroppedLineBudgetFailsIngestion) {
  std::string Base = buildKitchenSinkText();
  InjectedFault F = injectFault(Base, FaultKind::GarbageLine, 3);
  ASSERT_NE(F.Text, Base);

  SalvageOptions NoDrops;
  NoDrops.MaxDroppedLines = 0;
  Trace T;
  IngestReport Report;
  EXPECT_FALSE(salvage(F.Text, T, Report, NoDrops).ok());
  EXPECT_GE(Report.LinesDropped, 1u);
}

TEST(FaultInjectionTest, DroppedRatioBudgetFailsIngestion) {
  // Three garbage lines against a tight relative budget.
  std::string Text = buildKitchenSinkText();
  for (uint64_t Seed = 10; Seed != 13; ++Seed)
    Text = injectFault(Text, FaultKind::GarbageLine, Seed).Text;

  SalvageOptions Tight;
  Tight.MaxDroppedRatio = 0.01;
  Trace T;
  IngestReport Report;
  EXPECT_FALSE(salvage(Text, T, Report, Tight).ok());
}

TEST(FaultInjectionTest, InjectorIsDeterministic) {
  std::string Base = buildKitchenSinkText();
  for (unsigned K = 0; K != NumFaultKinds; ++K) {
    FaultKind Kind = static_cast<FaultKind>(K);
    InjectedFault A = injectFault(Base, Kind, 42);
    InjectedFault B = injectFault(Base, Kind, 42);
    EXPECT_EQ(A.Text, B.Text) << faultKindName(Kind);
    EXPECT_EQ(A.Description, B.Description) << faultKindName(Kind);
    // A different seed should (for this input size) pick a different
    // mutation site for at least one kind; sanity-check one.
    if (Kind == FaultKind::TruncateAtOffset)
      EXPECT_NE(injectFault(Base, Kind, 1).Text,
                injectFault(Base, Kind, 2).Text);
  }
}

TEST(FaultInjectionTest, DiagnosticsAreCappedButCounted) {
  std::string Text = buildKitchenSinkText();
  for (uint64_t Seed = 0; Seed != 8; ++Seed)
    Text = injectFault(Text, FaultKind::GarbageLine, 100 + Seed).Text;

  SalvageOptions Opt;
  Opt.MaxDiagnostics = 2;
  Opt.MaxDroppedRatio = 1.0;
  Trace T;
  IngestReport Report;
  ASSERT_TRUE(salvage(Text, T, Report, Opt).ok());
  EXPECT_LE(Report.Diagnostics.size(), 2u);
  EXPECT_GE(Report.IncidentsTotal, 8u);
  for (const IngestDiagnostic &D : Report.Diagnostics)
    EXPECT_GT(D.LineNo, 0u);
}

} // namespace
