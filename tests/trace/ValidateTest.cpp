//===- tests/trace/ValidateTest.cpp -------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Validate.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

/// Expects validation to fail with a message containing \p Needle.
void expectInvalid(const Trace &T, const char *Needle) {
  Status S = validateTrace(T);
  ASSERT_FALSE(S.ok()) << "expected validation failure: " << Needle;
  EXPECT_NE(S.message().find(Needle), std::string::npos) << S.message();
}

TEST(ValidateTest, AcceptsWellFormedTrace) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId T1 = TB.addThread("t");
  TaskId E1 = TB.addEvent("e", Q);
  TB.begin(T1).send(T1, E1, 0);
  TB.begin(E1).end(E1);
  TB.end(T1);
  EXPECT_TRUE(validateTrace(TB.trace()).ok());
}

TEST(ValidateTest, RejectsDuplicateBegin) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).begin(T1);
  expectInvalid(TB.trace(), "duplicate begin");
}

TEST(ValidateTest, RejectsOperationBeforeBegin) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.read(T1, 0);
  expectInvalid(TB.trace(), "before task begin");
}

TEST(ValidateTest, RejectsOperationAfterEnd) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).end(T1).read(T1, 0);
  expectInvalid(TB.trace(), "after task end");
}

TEST(ValidateTest, RejectsUnsentEventBegin) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId E1 = TB.addEvent("e", Q);
  TB.begin(E1);
  expectInvalid(TB.trace(), "before being sent");
}

TEST(ValidateTest, AllowUnsentEventsRelaxesOnlyTheSendRule) {
  // The salvage pipeline's relaxation: an unsent non-external event is
  // admitted under AllowUnsentEvents...
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId E1 = TB.addEvent("e", Q);
  TB.begin(E1).end(E1);
  ASSERT_FALSE(validateTrace(TB.trace()).ok());
  ValidateOptions Opt;
  Opt.AllowUnsentEvents = true;
  EXPECT_TRUE(validateTrace(TB.trace(), Opt).ok());

  // ...but every other invariant still holds under the relaxation.
  TraceBuilder Bad;
  TaskId T1 = Bad.addThread("t");
  Bad.begin(T1).begin(T1);
  EXPECT_FALSE(validateTrace(Bad.trace(), Opt).ok());
}

TEST(ValidateTest, AcceptsExternalEventWithoutSend) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId E1 = TB.addEvent("e", Q, 0, false, /*External=*/true);
  TB.begin(E1).end(E1);
  EXPECT_TRUE(validateTrace(TB.trace()).ok());
}

TEST(ValidateTest, RejectsDoubleSend) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId T1 = TB.addThread("t");
  TaskId E1 = TB.addEvent("e", Q);
  TB.begin(T1).send(T1, E1, 0).send(T1, E1, 0);
  expectInvalid(TB.trace(), "sent twice");
}

TEST(ValidateTest, RejectsInterleavedEventsOnOneQueue) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId E1 = TB.addEvent("e1", Q, 0, false, true);
  TaskId E2 = TB.addEvent("e2", Q, 0, false, true);
  TB.begin(E1).begin(E2);
  expectInvalid(TB.trace(), "must not interleave");
}

TEST(ValidateTest, AcceptsInterleavedEventsOnDifferentQueues) {
  TraceBuilder TB;
  QueueId Q1 = TB.addQueue("main");
  QueueId Q2 = TB.addQueue("bg");
  TaskId E1 = TB.addEvent("e1", Q1, 0, false, true);
  TaskId E2 = TB.addEvent("e2", Q2, 0, false, true);
  TB.begin(E1).begin(E2).end(E2).end(E1);
  EXPECT_TRUE(validateTrace(TB.trace()).ok());
}

TEST(ValidateTest, RejectsJoinOfRunningThread) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2).join(T1, T2);
  expectInvalid(TB.trace(), "has not ended");
}

TEST(ValidateTest, RejectsUnbalancedLockRelease) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).lockRelease(T1, 3);
  expectInvalid(TB.trace(), "unbalanced lock release");
}

TEST(ValidateTest, RejectsEndWhileHoldingLock) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).lockAcquire(T1, 3).end(T1);
  expectInvalid(TB.trace(), "holding a lock");
}

TEST(ValidateTest, RejectsUnbalancedMethodExit) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 4);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).methodExit(T1, M, 1);
  expectInvalid(TB.trace(), "unbalanced method exit");
}

TEST(ValidateTest, RejectsFrameIdReuse) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 4);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1)
      .methodEnter(T1, M, 7)
      .methodExit(T1, M, 7)
      .methodEnter(T1, M, 7);
  expectInvalid(TB.trace(), "frame id reused");
}

TEST(ValidateTest, RejectsNonMonotonicTimestamps) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).read(T1, 0);
  Trace T = TB.take();
  // Corrupt the second record's time by rebuilding a raw trace.
  Trace Bad;
  TaskInfo Info;
  Info.Kind = TaskKind::Thread;
  TaskId BT = Bad.addTask(Info);
  TraceRecord R1;
  R1.Task = BT;
  R1.Kind = OpKind::TaskBegin;
  R1.Time = 10;
  Bad.append(R1);
  TraceRecord R2;
  R2.Task = BT;
  R2.Kind = OpKind::Read;
  R2.Time = 5;
  Bad.append(R2);
  expectInvalid(Bad, "nondecreasing");
}

TEST(ValidateTest, RejectsSendQueueMismatch) {
  TraceBuilder TB;
  QueueId Q1 = TB.addQueue("main");
  TB.addQueue("bg");
  TaskId T1 = TB.addThread("t");
  TaskId E1 = TB.addEvent("e", Q1);
  TB.begin(T1);
  // Forge a send naming the wrong queue.
  Trace T = TB.take();
  TraceRecord Rec;
  Rec.Task = T1;
  Rec.Kind = OpKind::Send;
  Rec.Arg0 = E1.value();
  Rec.Arg1 = 0;
  Rec.Arg2 = 1; // wrong queue
  Rec.Time = 100;
  T.append(Rec);
  expectInvalid(T, "queue disagrees");
}

} // namespace
