//===- tests/rt/RuntimeTest.cpp -----------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Behavioral tests of the runtime simulator: event queue semantics
// (FIFO, delays, sendAtFront), thread primitives (fork/join, monitors,
// locks), listeners, Binder IPC, NPE unwinding, determinism, and the
// instrumentation's record stream.
//
//===----------------------------------------------------------------------===//

#include "rt/Runtime.h"

#include "ir/IrBuilder.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

/// Scaffold for building small scenarios.
struct Fixture {
  std::shared_ptr<Module> M = std::make_shared<Module>();
  IrBuilder B{*M};
  ProcessId App;
  QueueId Main;
  Scenario S;

  Fixture() {
    App = M->addProcess("app");
    Main = M->addQueue("main", App);
    S.AppName = "test";
    S.Program = M;
  }

  /// A handler that writes \p Marker to static scalar \p Field (used to
  /// observe execution order via write-record order).
  MethodId markerHandler(const char *Name, FieldId Field, int32_t Marker) {
    B.beginMethod(Name, 1);
    B.constInt(0, Marker);
    B.sput(Field, 0);
    return B.endMethod();
  }

  Trace run(RuntimeStats *Stats = nullptr) {
    return runScenario(S, RuntimeOptions(), Stats);
  }
};

/// Returns the Arg1 payloads of all scalar writes to \p Var, in trace
/// order -- the observed execution order of marker handlers.
std::vector<int64_t> writesTo(const Trace &T, uint32_t Var) {
  std::vector<int64_t> Out;
  for (const TraceRecord &Rec : T.records())
    if (Rec.Kind == OpKind::Write && Rec.Arg0 == Var)
      Out.push_back(static_cast<int64_t>(Rec.Arg1));
  return Out;
}

/// Finds the var id used by writes in the trace (single-field fixtures).
uint32_t onlyWrittenVar(const Trace &T) {
  for (const TraceRecord &Rec : T.records())
    if (Rec.Kind == OpKind::Write)
      return static_cast<uint32_t>(Rec.Arg0);
  ADD_FAILURE() << "no scalar write in trace";
  return 0;
}

TEST(RuntimeTest, EventsProcessedInFifoOrder) {
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  MethodId H1 = F.markerHandler("h1", Marker, 1);
  MethodId H2 = F.markerHandler("h2", Marker, 2);
  MethodId H3 = F.markerHandler("h3", Marker, 3);
  F.B.beginMethod("sender", 1);
  F.B.sendEvent(F.Main, H1, 0);
  F.B.sendEvent(F.Main, H2, 0);
  F.B.sendEvent(F.Main, H3, 0);
  MethodId Sender = F.B.endMethod();
  F.S.BootThreads.push_back({0, Sender, F.App, "sender"});

  Trace T = F.run();
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)),
            (std::vector<int64_t>{1, 2, 3}));
}

TEST(RuntimeTest, DelayedEventIsOvertakenByReadyOne) {
  // Figure 4c: A sent first with delay 5 ms, B second with delay 0;
  // B must execute before A.
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  MethodId HA = F.markerHandler("ha", Marker, 1);
  MethodId HB = F.markerHandler("hb", Marker, 2);
  F.B.beginMethod("sender", 1);
  F.B.sendEvent(F.Main, HA, 5);
  F.B.sendEvent(F.Main, HB, 0);
  MethodId Sender = F.B.endMethod();
  F.S.BootThreads.push_back({0, Sender, F.App, "sender"});

  Trace T = F.run();
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)), (std::vector<int64_t>{2, 1}));
}

TEST(RuntimeTest, SendAtFrontJumpsTheQueue) {
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  MethodId H1 = F.markerHandler("h1", Marker, 1);
  MethodId H2 = F.markerHandler("h2", Marker, 2);
  MethodId HFront = F.markerHandler("hf", Marker, 9);

  // An event C enqueues two normal events then pushes one to the front;
  // since C finishes before the looper picks again, the front event runs
  // first (the paper's Figure 4d situation).
  F.B.beginMethod("c", 1);
  F.B.sendEvent(F.Main, H1, 0);
  F.B.sendEvent(F.Main, H2, 0);
  F.B.sendEventAtFront(F.Main, HFront);
  MethodId C = F.B.endMethod();
  F.S.ExternalEvents.push_back({1'000, F.Main, C, "c"});

  Trace T = F.run();
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)),
            (std::vector<int64_t>{9, 1, 2}));
}

TEST(RuntimeTest, JoinWaitsForThreadEnd) {
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  F.B.beginMethod("child", 1);
  F.B.sleep(5'000);
  F.B.constInt(0, 1);
  F.B.sput(Marker, 0);
  MethodId Child = F.B.endMethod();

  F.B.beginMethod("parent", 2);
  F.B.forkThread(0, Child);
  F.B.joinThread(0);
  F.B.constInt(1, 2);
  F.B.sput(Marker, 1);
  MethodId Parent = F.B.endMethod();
  F.S.BootThreads.push_back({0, Parent, F.App, "parent"});

  RuntimeStats Stats;
  Trace T = F.run(&Stats);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 0u);
  // Child's write precedes parent's post-join write.
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)), (std::vector<int64_t>{1, 2}));
  // The join record appears after the child's end record.
  int JoinAt = -1, ChildEndAt = -1;
  for (uint32_t I = 0; I != T.numRecords(); ++I) {
    if (T.record(I).Kind == OpKind::Join)
      JoinAt = static_cast<int>(I);
    if (T.record(I).Kind == OpKind::TaskEnd &&
        T.taskName(T.record(I).Task).find("child") != std::string::npos)
      ChildEndAt = static_cast<int>(I);
  }
  ASSERT_GE(JoinAt, 0);
  ASSERT_GE(ChildEndAt, 0);
  EXPECT_GT(JoinAt, ChildEndAt);
}

TEST(RuntimeTest, WaitBlocksUntilNotify) {
  Fixture F;
  MonitorId Mon = F.M->addMonitor("mon");
  FieldId Marker = F.M->addStaticField("marker", false);

  F.B.beginMethod("waiter", 1);
  F.B.waitMonitor(Mon);
  F.B.constInt(0, 1);
  F.B.sput(Marker, 0);
  MethodId Waiter = F.B.endMethod();

  F.B.beginMethod("notifier", 1);
  F.B.sleep(5'000);
  F.B.constInt(0, 2);
  F.B.sput(Marker, 0);
  F.B.notifyMonitor(Mon);
  MethodId Notifier = F.B.endMethod();

  F.S.BootThreads.push_back({0, Waiter, F.App, "waiter"});
  F.S.BootThreads.push_back({0, Notifier, F.App, "notifier"});

  RuntimeStats Stats;
  Trace T = F.run(&Stats);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 0u);
  // Notifier's write (2) must precede the waiter's (1).
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)), (std::vector<int64_t>{2, 1}));
}

TEST(RuntimeTest, PendingNotifyIsConsumedByLaterWait) {
  Fixture F;
  MonitorId Mon = F.M->addMonitor("mon");
  F.B.beginMethod("notifier", 1);
  F.B.notifyMonitor(Mon);
  MethodId Notifier = F.B.endMethod();
  F.B.beginMethod("waiter", 1);
  F.B.sleep(5'000); // wait long after the notify happened
  F.B.waitMonitor(Mon);
  MethodId Waiter = F.B.endMethod();
  F.S.BootThreads.push_back({0, Notifier, F.App, "notifier"});
  F.S.BootThreads.push_back({0, Waiter, F.App, "waiter"});

  RuntimeStats Stats;
  F.run(&Stats);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 0u);
}

TEST(RuntimeTest, WaitWithNoNotifyBlocksForever) {
  Fixture F;
  MonitorId Mon = F.M->addMonitor("mon");
  F.B.beginMethod("waiter", 1);
  F.B.waitMonitor(Mon);
  MethodId Waiter = F.B.endMethod();
  F.S.BootThreads.push_back({0, Waiter, F.App, "waiter"});
  RuntimeStats Stats;
  F.run(&Stats);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 1u);
}

TEST(RuntimeTest, ContendedLockSerializesCriticalSections) {
  Fixture F;
  LockId L = F.M->addLock("l");
  FieldId Marker = F.M->addStaticField("marker", false);

  // Two threads enter the same critical section; the lock must hand over
  // cleanly (acquire/release records strictly alternate).
  for (int I = 0; I != 2; ++I) {
    F.B.beginMethod(I == 0 ? "t0" : "t1", 1);
    F.B.monitorEnter(L);
    F.B.constInt(0, I + 1);
    F.B.sput(Marker, 0);
    F.B.work(200);
    F.B.monitorExit(L);
    MethodId Body = F.B.endMethod();
    F.S.BootThreads.push_back(
        {0, Body, F.App, I == 0 ? "t0" : "t1"});
  }

  RuntimeStats Stats;
  Trace T = F.run(&Stats);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 0u);
  int Depth = 0;
  for (const TraceRecord &Rec : T.records()) {
    if (Rec.Kind == OpKind::LockAcquire) {
      ++Depth;
      EXPECT_EQ(Depth, 1) << "lock held twice concurrently";
    } else if (Rec.Kind == OpKind::LockRelease) {
      --Depth;
      EXPECT_EQ(Depth, 0);
    }
  }
}

TEST(RuntimeTest, ListenerDispatchesToRegisteredHandler) {
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  ListenerId L = F.M->addListener("lis", F.Main);
  MethodId Handler = F.markerHandler("cb", Marker, 7);

  F.B.beginMethod("registrar", 1);
  F.B.registerListener(L, Handler);
  MethodId Registrar = F.B.endMethod();
  F.B.beginMethod("firer", 1);
  F.B.sleep(5'000);
  F.B.triggerListener(L);
  MethodId Firer = F.B.endMethod();
  F.S.BootThreads.push_back({0, Registrar, F.App, "registrar"});
  F.S.BootThreads.push_back({0, Firer, F.App, "firer"});

  Trace T = F.run();
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)), (std::vector<int64_t>{7}));
  // Register, send and perform records all present (instrumented).
  bool SawRegister = false, SawPerform = false;
  for (const TraceRecord &Rec : T.records()) {
    SawRegister |= Rec.Kind == OpKind::RegisterListener;
    SawPerform |= Rec.Kind == OpKind::PerformListener;
  }
  EXPECT_TRUE(SawRegister);
  EXPECT_TRUE(SawPerform);
}

TEST(RuntimeTest, UnregisteredTriggerIsNoOp) {
  Fixture F;
  ListenerId L = F.M->addListener("lis", F.Main);
  F.B.beginMethod("firer", 1);
  F.B.triggerListener(L);
  MethodId Firer = F.B.endMethod();
  F.S.BootThreads.push_back({0, Firer, F.App, "firer"});
  RuntimeStats Stats;
  Trace T = F.run(&Stats);
  EXPECT_EQ(Stats.EventsProcessed, 0u);
  for (const TraceRecord &Rec : T.records())
    EXPECT_NE(Rec.Kind, OpKind::Send);
}

TEST(RuntimeTest, UninstrumentedListenerOmitsRecordsButDispatches) {
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  ListenerId L = F.M->addListener("lis", F.Main, /*Instrumented=*/false);
  MethodId Handler = F.markerHandler("cb", Marker, 7);
  F.B.beginMethod("registrar", 1);
  F.B.registerListener(L, Handler);
  F.B.triggerListener(L);
  MethodId Registrar = F.B.endMethod();
  F.S.BootThreads.push_back({0, Registrar, F.App, "registrar"});

  Trace T = F.run();
  // The callback ran...
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)), (std::vector<int64_t>{7}));
  // ...but neither register nor perform was traced; the framework send
  // still is (Section 5.2: Handler/Looper are instrumented).
  bool SawSend = false;
  for (const TraceRecord &Rec : T.records()) {
    EXPECT_NE(Rec.Kind, OpKind::RegisterListener);
    EXPECT_NE(Rec.Kind, OpKind::PerformListener);
    SawSend |= Rec.Kind == OpKind::Send;
  }
  EXPECT_TRUE(SawSend);
}

TEST(RuntimeTest, BinderCallRunsInTargetProcessWithIpcRecords) {
  Fixture F;
  ProcessId Svc = F.M->addProcess("service");
  FieldId Marker = F.M->addStaticField("marker", false);
  MethodId Remote = F.markerHandler("remoteBody", Marker, 5);
  F.B.beginMethod("caller", 1);
  F.B.binderCall(Svc, Remote);
  MethodId Caller = F.B.endMethod();
  F.S.BootThreads.push_back({0, Caller, F.App, "caller"});

  Trace T = F.run();
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)), (std::vector<int64_t>{5}));
  int SendAt = -1, RecvAt = -1;
  uint64_t Txn = 0;
  for (uint32_t I = 0; I != T.numRecords(); ++I) {
    const TraceRecord &Rec = T.record(I);
    if (Rec.Kind == OpKind::IpcSend) {
      SendAt = static_cast<int>(I);
      Txn = Rec.Arg0;
    }
    if (Rec.Kind == OpKind::IpcRecv) {
      RecvAt = static_cast<int>(I);
      EXPECT_EQ(Rec.Arg0, Txn);
      EXPECT_EQ(T.taskInfo(Rec.Task).Process, Svc);
    }
  }
  ASSERT_GE(SendAt, 0);
  ASSERT_GE(RecvAt, 0);
  EXPECT_GT(RecvAt, SendAt);
}

TEST(RuntimeTest, NullDereferenceAbortsTaskNotRun) {
  Fixture F;
  FieldId Ptr = F.M->addStaticField("ptr", true);
  FieldId Marker = F.M->addStaticField("marker", false);
  F.B.beginMethod("crasher", 2);
  F.B.sgetObject(0, Ptr); // null: never initialized
  F.B.igetObject(1, 0, F.M->addField("f", F.M->addClass("C"), true));
  MethodId Crasher = F.B.endMethod();
  MethodId After = F.markerHandler("after", Marker, 3);
  F.S.ExternalEvents.push_back({1'000, F.Main, Crasher, "crasher"});
  F.S.ExternalEvents.push_back({5'000, F.Main, After, "after"});

  RuntimeStats Stats;
  Trace T = F.run(&Stats);
  EXPECT_EQ(Stats.NullPointerExceptions, 1u);
  // The run continued: the later event executed.
  EXPECT_EQ(writesTo(T, onlyWrittenVar(T)), (std::vector<int64_t>{3}));
  // The crashing frame exited by throw.
  bool SawThrowExit = false;
  for (const TraceRecord &Rec : T.records())
    if (Rec.Kind == OpKind::MethodExit && Rec.exitedByThrow())
      SawThrowExit = true;
  EXPECT_TRUE(SawThrowExit);
  // The trace is still well-formed.
  EXPECT_TRUE(validateTrace(T).ok()) << validateTrace(T).message();
}

TEST(RuntimeTest, InstructionCapFailsTheRun) {
  Fixture F;
  F.B.beginMethod("spin", 1);
  Label Loop = F.B.newLabel();
  F.B.bind(Loop);
  F.B.constInt(0, 1);
  F.B.gotoLabel(Loop);
  MethodId Spin = F.B.endMethod();
  F.S.BootThreads.push_back({0, Spin, F.App, "spin"});
  RuntimeOptions Opt;
  Opt.MaxInstructions = 10'000;
  Runtime Rt(F.S, Opt);
  Status S = Rt.run();
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("instruction cap"), std::string::npos);
}

TEST(RuntimeTest, VerifierFailureSurfacesFromRun) {
  Fixture F;
  MethodDef Bad;
  Bad.Name = F.M->names().intern("bad");
  Bad.NumRegs = 1;
  Instr I;
  I.Op = Opcode::ConstNull;
  I.A = 9; // out of range
  Bad.Code.push_back(I);
  Instr Ret;
  Ret.Op = Opcode::ReturnVoid;
  Bad.Code.push_back(Ret);
  MethodId BadId = F.M->addMethod(std::move(Bad));
  F.S.BootThreads.push_back({0, BadId, F.App, "bad"});
  Runtime Rt(F.S, RuntimeOptions());
  EXPECT_FALSE(Rt.run().ok());
}

TEST(RuntimeTest, DeterministicTraceAcrossRuns) {
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  MethodId H1 = F.markerHandler("h1", Marker, 1);
  F.B.beginMethod("sender", 2);
  Label Loop = F.B.newLabel();
  F.B.constInt(0, 20);
  F.B.bind(Loop);
  F.B.sendEvent(F.Main, H1, 0);
  F.B.addInt(0, 0, -1);
  F.B.ifIntNez(0, Loop);
  MethodId Sender = F.B.endMethod();
  F.S.BootThreads.push_back({0, Sender, F.App, "sender"});

  Trace T1 = runScenario(F.S, RuntimeOptions());
  Trace T2 = runScenario(F.S, RuntimeOptions());
  EXPECT_EQ(serializeTrace(T1), serializeTrace(T2));
}

TEST(RuntimeTest, SleepAdvancesSimTimeCheaply) {
  Fixture F;
  F.B.beginMethod("sleeper", 1);
  F.B.sleep(250'000);
  MethodId Sleeper = F.B.endMethod();
  F.S.BootThreads.push_back({0, Sleeper, F.App, "sleeper"});
  RuntimeStats Stats;
  F.run(&Stats);
  EXPECT_GE(Stats.SimEndMicros, 250'000u);
  EXPECT_LT(Stats.InstructionsExecuted, 10u);
}

TEST(RuntimeTest, EventArgumentReachesHandler) {
  Fixture F;
  ClassId C = F.M->addClass("C");
  FieldId IntField = F.M->addField("x", C, false);
  FieldId Marker = F.M->addStaticField("marker", false);

  // Handler receives an object in v0 and copies its field to the marker.
  F.B.beginMethod("handler", 2);
  F.B.iget(1, 0, IntField);
  F.B.sput(Marker, 1);
  MethodId Handler = F.B.endMethod();

  F.B.beginMethod("sender", 2);
  F.B.newInstance(0, C);
  F.B.constInt(1, 41);
  F.B.iput(0, IntField, 1);
  F.B.sendEvent(F.Main, Handler, 0, /*Arg=*/0);
  MethodId Sender = F.B.endMethod();
  F.S.BootThreads.push_back({0, Sender, F.App, "sender"});

  Trace T = F.run();
  std::vector<int64_t> MarkerWrites;
  for (const TraceRecord &Rec : T.records())
    if (Rec.Kind == OpKind::Write)
      MarkerWrites.push_back(static_cast<int64_t>(Rec.Arg1));
  ASSERT_FALSE(MarkerWrites.empty());
  EXPECT_EQ(MarkerWrites.back(), 41);
}

TEST(RuntimeTest, TraceValidatesForAllPrimitives) {
  // A scenario touching every primitive produces a validator-clean trace.
  Fixture F;
  ProcessId Svc = F.M->addProcess("svc");
  LockId L = F.M->addLock("l");
  MonitorId Mon = F.M->addMonitor("mon");
  ListenerId Lis = F.M->addListener("lis", F.Main);
  FieldId Marker = F.M->addStaticField("marker", false);

  MethodId Cb = F.markerHandler("cb", Marker, 1);
  MethodId Remote = F.markerHandler("remote", Marker, 2);

  F.B.beginMethod("worker", 1);
  F.B.monitorEnter(L);
  F.B.monitorExit(L);
  F.B.notifyMonitor(Mon);
  MethodId Worker = F.B.endMethod();

  F.B.beginMethod("mainBody", 2);
  F.B.registerListener(Lis, Cb);
  F.B.forkThread(0, Worker);
  F.B.waitMonitor(Mon);
  F.B.joinThread(0);
  F.B.triggerListener(Lis);
  F.B.binderCall(Svc, Remote);
  MethodId MainBody = F.B.endMethod();
  F.S.BootThreads.push_back({0, MainBody, F.App, "main"});

  RuntimeStats Stats;
  Trace T = F.run(&Stats);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 0u);
  EXPECT_EQ(Stats.NullPointerExceptions, 0u);
  Status V = validateTrace(T);
  EXPECT_TRUE(V.ok()) << V.message();
}

} // namespace
