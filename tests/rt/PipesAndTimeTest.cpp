//===- tests/rt/PipesAndTimeTest.cpp ------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The pipe IPC channel (Section 5.2's "Other IPC Channels") and
// absolute-time event sends (Section 2.1's time constraints).
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"
#include "ir/IrBuilder.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

struct Fixture {
  std::shared_ptr<Module> M = std::make_shared<Module>();
  IrBuilder B{*M};
  ProcessId App;
  QueueId Main;
  Scenario S;

  Fixture() {
    App = M->addProcess("app");
    Main = M->addQueue("main", App);
    S.AppName = "pipes";
    S.Program = M;
  }

  Trace run(RuntimeStats *Stats = nullptr) {
    return runScenario(S, RuntimeOptions(), Stats);
  }
};

TEST(PipeTest, BlockingReadWaitsForWriter) {
  Fixture F;
  PipeId P = F.M->addPipe("input");
  FieldId Marker = F.M->addStaticField("marker", false);

  F.B.beginMethod("reader", 1);
  F.B.pipeRead(P);
  F.B.constInt(0, 1);
  F.B.sput(Marker, 0);
  MethodId Reader = F.B.endMethod();

  F.B.beginMethod("writer", 1);
  F.B.sleep(5'000);
  F.B.constInt(0, 2);
  F.B.sput(Marker, 0);
  F.B.pipeWrite(P);
  MethodId Writer = F.B.endMethod();

  F.S.BootThreads.push_back({0, Reader, F.App, "reader"});
  F.S.BootThreads.push_back({0, Writer, F.App, "writer"});

  RuntimeStats Stats;
  Trace T = F.run(&Stats);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 0u);
  ASSERT_TRUE(validateTrace(T).ok());

  // The writer's marker (2) is written before the reader's (1).
  std::vector<int64_t> Writes;
  for (const TraceRecord &Rec : T.records())
    if (Rec.Kind == OpKind::Write)
      Writes.push_back(static_cast<int64_t>(Rec.Arg1));
  EXPECT_EQ(Writes, (std::vector<int64_t>{2, 1}));
}

TEST(PipeTest, MessagesCarryObjectsFifo) {
  Fixture F;
  PipeId P = F.M->addPipe("frames");
  ClassId C = F.M->addClass("Frame");
  FieldId Tag = F.M->addField("tag", C, false);
  FieldId Marker = F.M->addStaticField("marker", false);

  // Writer sends two tagged objects.
  F.B.beginMethod("writer", 2);
  for (int TagVal : {7, 8}) {
    F.B.newInstance(0, C);
    F.B.constInt(1, TagVal);
    F.B.iput(0, Tag, 1);
    F.B.pipeWrite(P, 0);
  }
  MethodId Writer = F.B.endMethod();

  // Reader receives both and records their tags in order.
  F.B.beginMethod("reader", 2);
  for (int I = 0; I != 2; ++I) {
    F.B.pipeRead(P, 0);
    F.B.iget(1, 0, Tag);
    F.B.sput(Marker, 1);
  }
  MethodId Reader = F.B.endMethod();

  F.S.BootThreads.push_back({0, Writer, F.App, "writer"});
  F.S.BootThreads.push_back({0, Reader, F.App, "reader"});

  Trace T = F.run();
  // Only the reader's writes (the writer's iput of the tag also logs).
  std::vector<int64_t> Tags;
  for (const TraceRecord &Rec : T.records())
    if (Rec.Kind == OpKind::Write && T.taskName(Rec.Task) == "reader")
      Tags.push_back(static_cast<int64_t>(Rec.Arg1));
  EXPECT_EQ(Tags, (std::vector<int64_t>{7, 8}));
}

TEST(PipeTest, PipeMessageCreatesHappensBeforeEdge) {
  // A use before the pipe write and a free after the pipe read are
  // ordered through the transaction edge: no race.
  Fixture F;
  PipeId P = F.M->addPipe("sync");
  FieldId Ptr = F.M->addStaticField("ptr", true);
  ClassId C = F.M->addClass("C");
  MethodId Run = [&] {
    F.B.beginMethod("run", 1);
    F.B.work(1);
    return F.B.endMethod();
  }();

  F.B.beginMethod("userThread", 2);
  F.B.sgetObject(1, Ptr);
  F.B.invokeVirtual(1, Run); // use
  F.B.pipeWrite(P);
  MethodId User = F.B.endMethod();

  F.B.beginMethod("freerThread", 1);
  F.B.pipeRead(P);
  F.B.constNull(0);
  F.B.sputObject(Ptr, 0); // free, after the message
  MethodId Freer = F.B.endMethod();

  F.B.beginMethod("boot", 1);
  F.B.newInstance(0, C);
  F.B.sputObject(Ptr, 0);
  MethodId Boot = F.B.endMethod();

  F.S.BootThreads.push_back({0, Boot, F.App, "boot"});
  F.S.BootThreads.push_back({1'000, User, F.App, "user"});
  F.S.BootThreads.push_back({1'000, Freer, F.App, "freer"});

  Trace T = F.run();
  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  EXPECT_TRUE(R.Report.Races.empty()) << renderRaceReport(R.Report, T);
  EXPECT_EQ(R.Report.Filters.OrderedByHb, 1u);
}

TEST(PipeTest, UnpairedPipesLeaveTasksConcurrent) {
  // Two different pipes: no cross edge, the race is reported.
  Fixture F;
  PipeId P1 = F.M->addPipe("p1");
  PipeId P2 = F.M->addPipe("p2");
  FieldId Ptr = F.M->addStaticField("ptr", true);
  ClassId C = F.M->addClass("C");
  MethodId Run = [&] {
    F.B.beginMethod("run", 1);
    F.B.work(1);
    return F.B.endMethod();
  }();

  F.B.beginMethod("userThread", 2);
  F.B.sgetObject(1, Ptr);
  F.B.invokeVirtual(1, Run);
  F.B.pipeWrite(P1);
  MethodId User = F.B.endMethod();

  F.B.beginMethod("feeder", 1);
  F.B.sleep(2'000);
  F.B.pipeWrite(P2);
  MethodId Feeder = F.B.endMethod();

  F.B.beginMethod("freerThread", 1);
  F.B.pipeRead(P2); // reads the *other* pipe
  F.B.constNull(0);
  F.B.sputObject(Ptr, 0);
  MethodId Freer = F.B.endMethod();

  F.B.beginMethod("boot", 1);
  F.B.newInstance(0, C);
  F.B.sputObject(Ptr, 0);
  MethodId Boot = F.B.endMethod();

  F.S.BootThreads.push_back({0, Boot, F.App, "boot"});
  F.S.BootThreads.push_back({1'000, User, F.App, "user"});
  F.S.BootThreads.push_back({1'000, Feeder, F.App, "feeder"});
  F.S.BootThreads.push_back({1'000, Freer, F.App, "freer"});

  Trace T = F.run();
  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  EXPECT_EQ(R.Report.Races.size(), 1u);
}

TEST(PipeTest, ReaderWithNoWriterBlocksAtQuiescence) {
  Fixture F;
  PipeId P = F.M->addPipe("dead");
  F.B.beginMethod("reader", 1);
  F.B.pipeRead(P);
  MethodId Reader = F.B.endMethod();
  F.S.BootThreads.push_back({0, Reader, F.App, "reader"});
  RuntimeStats Stats;
  F.run(&Stats);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 1u);
}

TEST(SendAtTimeTest, EventFiresAtAbsoluteTime) {
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  F.B.beginMethod("handler", 1);
  F.B.constInt(0, 1);
  F.B.sput(Marker, 0);
  MethodId Handler = F.B.endMethod();

  F.B.beginMethod("boot", 1);
  F.B.sendEventAtTime(F.Main, Handler, /*AtMillis=*/40);
  MethodId Boot = F.B.endMethod();
  F.S.BootThreads.push_back({0, Boot, F.App, "boot"});

  Trace T = F.run();
  // The handler's write is stamped at ~40 ms simulated time.
  for (const TraceRecord &Rec : T.records()) {
    if (Rec.Kind == OpKind::Write) {
      EXPECT_GE(Rec.Time, 39'000u);
      EXPECT_LT(Rec.Time, 42'000u);
    }
  }
  // The send record carries the equivalent delay.
  for (const TraceRecord &Rec : T.records()) {
    if (Rec.Kind == OpKind::Send) {
      EXPECT_NEAR(static_cast<double>(Rec.delayMs()), 40.0, 1.0);
    }
  }
}

TEST(SendAtTimeTest, ElapsedTargetFiresImmediately) {
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  F.B.beginMethod("handler", 1);
  F.B.constInt(0, 1);
  F.B.sput(Marker, 0);
  MethodId Handler = F.B.endMethod();

  F.B.beginMethod("boot", 1);
  F.B.sleep(50'000); // now at 50 ms
  F.B.sendEventAtTime(F.Main, Handler, /*AtMillis=*/10); // in the past
  MethodId Boot = F.B.endMethod();
  F.S.BootThreads.push_back({0, Boot, F.App, "boot"});

  Trace T = F.run();
  for (const TraceRecord &Rec : T.records()) {
    if (Rec.Kind == OpKind::Send) {
      EXPECT_EQ(Rec.delayMs(), 0u);
    }
  }
  for (const TraceRecord &Rec : T.records()) {
    if (Rec.Kind == OpKind::Write) {
      EXPECT_LT(Rec.Time, 55'000u);
    }
  }
}

TEST(SendAtTimeTest, OrderedEqualTargetsGetQueueRule1Edge) {
  // Two at-time sends from one task with the same target time convert to
  // the same delay: queue rule 1 orders the events.
  Fixture F;
  FieldId Marker = F.M->addStaticField("marker", false);
  F.B.beginMethod("h1", 1);
  F.B.constInt(0, 1);
  F.B.sput(Marker, 0);
  MethodId H1 = F.B.endMethod();
  F.B.beginMethod("h2", 1);
  F.B.constInt(0, 2);
  F.B.sput(Marker, 0);
  MethodId H2 = F.B.endMethod();

  F.B.beginMethod("boot", 1);
  F.B.sendEventAtTime(F.Main, H1, 20);
  F.B.sendEventAtTime(F.Main, H2, 20);
  MethodId Boot = F.B.endMethod();
  F.S.BootThreads.push_back({0, Boot, F.App, "boot"});

  Trace T = F.run();
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());
  // Find the two event tasks.
  TaskId E1, E2;
  for (uint32_t I = 0; I != T.numTasks(); ++I) {
    if (T.taskName(TaskId(I)) == "h1")
      E1 = TaskId(I);
    if (T.taskName(TaskId(I)) == "h2")
      E2 = TaskId(I);
  }
  ASSERT_TRUE(E1.isValid() && E2.isValid());
  EXPECT_TRUE(Hb.taskOrdered(E1, E2));
  EXPECT_FALSE(Hb.taskOrdered(E2, E1));
}

} // namespace
