//===- tests/rt/ObjectHeapTest.cpp --------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "rt/ObjectHeap.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

Module makeModule() {
  Module M;
  ClassId C = M.addClass("C");
  M.addField("obj", C, true);
  M.addField("num", C, false);
  M.addStaticField("sObj", true);
  return M;
}

TEST(ObjectHeapTest, ObjectIdsStartAtOneAndAreDense) {
  Module M = makeModule();
  ObjectHeap Heap(M);
  ObjectId A = Heap.allocate(ClassId(0));
  ObjectId B = Heap.allocate(ClassId(0));
  EXPECT_EQ(A.value(), 1u); // 0 is null
  EXPECT_EQ(B.value(), 2u);
  EXPECT_EQ(Heap.numObjects(), 2u);
  EXPECT_EQ(Heap.classOf(A), ClassId(0));
}

TEST(ObjectHeapTest, FieldsStartZeroedAndStoreBits) {
  Module M = makeModule();
  ObjectHeap Heap(M);
  ObjectId Obj = Heap.allocate(ClassId(0));
  EXPECT_EQ(Heap.getField(Obj, FieldId(0)), 0u); // null pointer
  EXPECT_EQ(Heap.getField(Obj, FieldId(1)), 0u); // zero scalar
  Heap.setField(Obj, FieldId(1), 42);
  EXPECT_EQ(Heap.getField(Obj, FieldId(1)), 42u);
  // A second object is unaffected.
  ObjectId Other = Heap.allocate(ClassId(0));
  EXPECT_EQ(Heap.getField(Other, FieldId(1)), 0u);
}

TEST(ObjectHeapTest, StaticsStartZeroed) {
  Module M = makeModule();
  ObjectHeap Heap(M);
  EXPECT_EQ(Heap.getStatic(FieldId(2)), 0u);
  Heap.setStatic(FieldId(2), 7);
  EXPECT_EQ(Heap.getStatic(FieldId(2)), 7u);
}

TEST(ObjectHeapTest, VarInterningIsStablePerCell) {
  Module M = makeModule();
  ObjectHeap Heap(M);
  ObjectId A = Heap.allocate(ClassId(0));
  ObjectId B = Heap.allocate(ClassId(0));
  VarId V1 = Heap.varFor(A, FieldId(0));
  VarId V2 = Heap.varFor(A, FieldId(0));
  VarId V3 = Heap.varFor(B, FieldId(0));
  VarId V4 = Heap.varFor(A, FieldId(1));
  VarId V5 = Heap.varForStatic(FieldId(2));
  EXPECT_EQ(V1, V2);
  EXPECT_NE(V1, V3);
  EXPECT_NE(V1, V4);
  EXPECT_NE(V1, V5);
  EXPECT_EQ(Heap.numVars(), 4u);
  // Descriptor round-trips.
  EXPECT_EQ(Heap.varDesc(V1).Object, A);
  EXPECT_EQ(Heap.varDesc(V1).Field, FieldId(0));
  EXPECT_FALSE(Heap.varDesc(V5).Object.isValid());
}

TEST(ValueTest, TaggedValues) {
  Value S = Value::makeScalar(-5);
  EXPECT_FALSE(S.IsObject);
  EXPECT_EQ(S.scalar(), -5);
  Value O = Value::makeObject(ObjectId(9));
  EXPECT_TRUE(O.IsObject);
  EXPECT_EQ(O.object(), ObjectId(9));
  EXPECT_FALSE(O.isNullRef());
  Value N = Value::makeNull();
  EXPECT_TRUE(N.isNullRef());
  EXPECT_EQ(N.object().value(), 0u);
  // makeObject of an invalid id is null too.
  EXPECT_TRUE(Value::makeObject(ObjectId::invalid()).isNullRef());
}

} // namespace
