//===- tests/rt/RuntimeFuzzTest.cpp -------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Differential fuzzing of the whole stack: generate random (but
// verifier-valid, type-consistent) modules with events, threads, RPC,
// listeners and heap traffic; then assert that every run produces a
// well-formed trace, that scheduling is deterministic, and that the
// offline analyzer accepts the result with both reachability oracles
// agreeing.
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"
#include "ir/IrBuilder.h"
#include "support/Rng.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

/// Generates a random scenario.  Registers 0..1 hold objects, 2..3 hold
/// scalars throughout, so every generated instruction is type-correct.
Scenario randomScenario(uint64_t Seed) {
  Rng R(Seed);
  auto M = std::make_shared<Module>();
  ProcessId App = M->addProcess("fuzz");
  ProcessId Svc = M->addProcess("fuzz-svc");
  std::vector<QueueId> Queues;
  for (int I = 0, E = 1 + static_cast<int>(R.below(2)); I != E; ++I)
    Queues.push_back(M->addQueue("q" + std::to_string(I), App));
  ClassId Class = M->addClass("Obj");
  FieldId InstObj = M->addField("io", Class, true);
  FieldId InstInt = M->addField("ii", Class, false);
  std::vector<FieldId> ObjFields, IntFields;
  for (int I = 0; I != 4; ++I)
    ObjFields.push_back(
        M->addStaticField("so" + std::to_string(I), true));
  for (int I = 0; I != 4; ++I)
    IntFields.push_back(
        M->addStaticField("si" + std::to_string(I), false));
  LockId Lock = M->addLock("lock");
  PipeId Pipe = M->addPipe("pipe");

  IrBuilder B(*M);
  B.beginMethod("leafWork", 1);
  B.work(1);
  MethodId Leaf = B.endMethod();

  // A pool of generated handler/worker methods; later methods may call
  // or send to earlier ones (no recursion possible).
  std::vector<MethodId> Pool = {Leaf};

  auto objField = [&] { return ObjFields[R.below(ObjFields.size())]; };
  auto intField = [&] { return IntFields[R.below(IntFields.size())]; };

  int NumMethods = 4 + static_cast<int>(R.below(6));
  for (int MI = 0; MI != NumMethods; ++MI) {
    B.beginMethod("gen" + std::to_string(MI), 4);
    // Establish object registers: v0 may be a handler argument (already
    // an object or null); make v1 a fresh object.
    B.newInstance(1, Class);
    int Len = 3 + static_cast<int>(R.below(10));
    for (int Op = 0; Op != Len; ++Op) {
      switch (R.below(14)) {
      case 0:
        B.sgetObject(0, objField());
        break;
      case 1:
        B.sputObject(objField(), 1);
        break;
      case 2: { // guarded use of a static pointer (NPE-safe)
        Label Skip = B.newLabel();
        B.sgetObject(0, objField());
        B.ifEqz(0, Skip);
        B.invokeVirtual(0, Leaf);
        B.bind(Skip);
        break;
      }
      case 3: // free
        B.constNull(0);
        B.sputObject(objField(), 0);
        break;
      case 4: // scalar traffic
        B.sget(2, intField());
        B.addInt(2, 2, 1);
        B.sput(intField(), 2);
        break;
      case 5: // instance traffic on the local object (never null)
        B.iput(1, InstInt, 2);
        B.iget(3, 1, InstInt);
        B.iputObject(1, InstObj, 1);
        break;
      case 6: // critical section
        B.monitorEnter(Lock);
        B.sput(intField(), 2);
        B.monitorExit(Lock);
        break;
      case 7: // post an event
        B.sendEvent(Queues[R.below(Queues.size())],
                    Pool[R.below(Pool.size())],
                    static_cast<int32_t>(R.below(4)), 1);
        break;
      case 8: // post at front
        B.sendEventAtFront(Queues[R.below(Queues.size())],
                           Pool[R.below(Pool.size())], 1);
        break;
      case 9: // absolute-time post
        B.sendEventAtTime(Queues[R.below(Queues.size())],
                          Pool[R.below(Pool.size())],
                          static_cast<int32_t>(R.below(50)), 1);
        break;
      case 10: // RPC into the service process
        B.binderCall(Svc, Pool[R.below(Pool.size())], 1);
        break;
      case 11: // static call
        B.invokeStatic(Pool[R.below(Pool.size())], 1);
        break;
      case 12: // non-blocking pipe traffic (write only; reads would risk
               // deadlock in random code)
        B.pipeWrite(Pipe, 1);
        break;
      default:
        B.work(static_cast<int32_t>(1 + R.below(3)));
        break;
      }
    }
    Pool.push_back(B.endMethod());
  }

  // One drainer thread empties the pipe so writes have a counterpart.
  B.beginMethod("pipeDrainer", 3);
  {
    Label Loop = B.newLabel();
    B.constInt(2, 12);
    B.bind(Loop);
    B.pipeRead(Pipe, 0);
    B.addInt(2, 2, -1);
    B.ifIntNez(2, Loop);
  }
  MethodId Drainer = B.endMethod();
  (void)Drainer; // drained pipes are wired in only when generated code
                 // wrote to them; the thread below always runs

  Scenario S;
  S.AppName = "fuzz";
  S.Program = M;
  // Bootstrap: initialize the static pointers.
  B.beginMethod("boot", 2);
  for (FieldId F : ObjFields) {
    B.newInstance(0, Class);
    B.sputObject(F, 0);
  }
  MethodId Boot = B.endMethod();
  S.BootThreads.push_back({0, Boot, App, "boot"});

  // Worker threads and external events drive the generated methods.
  int NumWorkers = 1 + static_cast<int>(R.below(3));
  for (int I = 0; I != NumWorkers; ++I)
    S.BootThreads.push_back({R.below(20) * 1'000,
                             Pool[1 + R.below(Pool.size() - 1)], App,
                             "worker" + std::to_string(I)});
  int NumExternals = 3 + static_cast<int>(R.below(10));
  for (int I = 0; I != NumExternals; ++I)
    S.ExternalEvents.push_back(
        {5'000 + R.below(100) * 1'000, Queues[R.below(Queues.size())],
         Pool[1 + R.below(Pool.size() - 1)],
         "ext" + std::to_string(I)});
  return S;
}

class RuntimeFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RuntimeFuzzTest, RandomProgramsProduceValidDeterministicTraces) {
  Scenario S = randomScenario(GetParam());

  RuntimeOptions Opt;
  Opt.MaxInstructions = 2'000'000;
  Runtime Rt1(S, Opt);
  ASSERT_TRUE(Rt1.run().ok());
  Trace T1 = Rt1.takeTrace();

  // No NPEs: every generated use is null-guarded.
  EXPECT_EQ(Rt1.stats().NullPointerExceptions, 0u);

  // The trace is structurally valid.
  Status V = validateTrace(T1);
  ASSERT_TRUE(V.ok()) << V.message();

  // Determinism: byte-identical serialization across runs.
  Runtime Rt2(S, Opt);
  ASSERT_TRUE(Rt2.run().ok());
  Trace T2 = Rt2.takeTrace();
  EXPECT_EQ(serializeTrace(T1), serializeTrace(T2));

  // The analyzer accepts it and the detector completes.
  AnalysisResult R = analyzeTrace(T1, DetectorOptions());
  (void)R;
}

TEST_P(RuntimeFuzzTest, OraclesAgreeOnRandomPrograms) {
  Scenario S = randomScenario(GetParam() ^ 0xF00D);
  RuntimeOptions Opt;
  Opt.MaxInstructions = 2'000'000;
  Trace T = runScenario(S, Opt);

  TaskIndex Index(T);
  HbOptions ClosureOpt;
  ClosureOpt.Reach = ReachMode::Closure;
  HbIndex HbClosure(T, Index, ClosureOpt);
  HbOptions BfsOpt;
  BfsOpt.Reach = ReachMode::Bfs;
  HbIndex HbBfs(T, Index, BfsOpt);
  HbOptions IncOpt;
  IncOpt.Reach = ReachMode::Incremental;
  HbIndex HbInc(T, Index, IncOpt);

  Rng R(GetParam());
  uint32_t N = static_cast<uint32_t>(T.numRecords());
  ASSERT_GT(N, 0u);
  for (int I = 0; I != 1500; ++I) {
    uint32_t A = static_cast<uint32_t>(R.below(N));
    uint32_t B = static_cast<uint32_t>(R.below(N));
    bool Expected = HbClosure.happensBefore(A, B);
    ASSERT_EQ(Expected, HbBfs.happensBefore(A, B))
        << "seed " << GetParam() << " records " << A << "->" << B;
    ASSERT_EQ(Expected, HbInc.happensBefore(A, B))
        << "seed " << GetParam() << " records " << A << "->" << B;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeFuzzTest,
                         testing::Values(101, 202, 303, 404, 505, 606,
                                         707, 808));

} // namespace
