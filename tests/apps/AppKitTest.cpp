//===- tests/apps/AppKitTest.cpp ----------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Each AppKit seed in isolation: one seed in an otherwise empty app must
// produce exactly its intended detector outcome (category, label, or
// silence for the benign patterns), and the rule-protected pairs must
// flip to reported when their rule is disabled.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"

#include "cafa/Cafa.h"

#include <gtest/gtest.h>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// Builds an app with a single seed (applied by \p Seed) and runs the
/// default pipeline; returns (races, row).
struct SeedResult {
  RaceReport Report;
  Table1Row Row;
  Trace T;
};

template <typename SeedFn>
SeedResult runSeed(SeedFn Seed,
                   DetectorOptions DetOpt = DetectorOptions()) {
  AppBuilder App("isolated");
  Seed(App);
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);
  SeedResult Out;
  Out.T = runScenario(Model.S, RuntimeOptions());
  Out.Report = analyzeTrace(Out.T, DetOpt).Report;
  Out.Row = evaluateReport(Out.Report, Model.Truth, Out.T, "isolated");
  return Out;
}

TEST(AppKitSeedTest, IntraThreadRaceIsCategoryA) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.seedIntraThreadRace("x"); });
  ASSERT_EQ(R.Report.Races.size(), 1u) << renderRaceReport(R.Report, R.T);
  EXPECT_EQ(R.Report.Races[0].Category, RaceCategory::IntraThread);
  EXPECT_EQ(R.Row.TrueA, 1u);
  EXPECT_EQ(R.Row.Unexpected, 0u);
}

TEST(AppKitSeedTest, RpcIntraThreadRaceIsCategoryA) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.seedRpcIntraThreadRace("x"); });
  ASSERT_EQ(R.Report.Races.size(), 1u) << renderRaceReport(R.Report, R.T);
  EXPECT_EQ(R.Report.Races[0].Category, RaceCategory::IntraThread);
  EXPECT_EQ(R.Row.TrueA, 1u);
}

TEST(AppKitSeedTest, InterThreadRaceIsCategoryB) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.seedInterThreadRace("x"); });
  ASSERT_EQ(R.Report.Races.size(), 1u) << renderRaceReport(R.Report, R.T);
  EXPECT_EQ(R.Report.Races[0].Category, RaceCategory::InterThread);
  EXPECT_EQ(R.Row.TrueB, 1u);
}

TEST(AppKitSeedTest, ConventionalRaceIsCategoryC) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.seedConventionalRace("x"); });
  ASSERT_EQ(R.Report.Races.size(), 1u) << renderRaceReport(R.Report, R.T);
  EXPECT_EQ(R.Report.Races[0].Category, RaceCategory::Conventional);
  EXPECT_EQ(R.Row.TrueC, 1u);
}

TEST(AppKitSeedTest, UninstrumentedListenerReported) {
  SeedResult R = runSeed(
      [](AppBuilder &A) { A.seedUninstrumentedListenerFp("x"); });
  ASSERT_EQ(R.Report.Races.size(), 1u) << renderRaceReport(R.Report, R.T);
  EXPECT_EQ(R.Row.FpI, 1u);
}

TEST(AppKitSeedTest, InstrumentedListenerSuppressesTheSameSeed) {
  // The defining property of a Type I false positive: tracing the
  // listener package removes the report.
  SeedResult R = runSeed([](AppBuilder &A) {
    A.seedUninstrumentedListenerFp("x", /*Instrumented=*/true);
  });
  EXPECT_TRUE(R.Report.Races.empty()) << renderRaceReport(R.Report, R.T);
}

TEST(AppKitSeedTest, FlagGuardedReportedAsFpII) {
  SeedResult R = runSeed([](AppBuilder &A) { A.seedFlagGuardedFp("x"); });
  ASSERT_EQ(R.Report.Races.size(), 1u) << renderRaceReport(R.Report, R.T);
  EXPECT_EQ(R.Row.FpII, 1u);
}

TEST(AppKitSeedTest, AliasMismatchReportedAsFpIII) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.seedAliasMismatchFp("x"); });
  ASSERT_EQ(R.Report.Races.size(), 1u) << renderRaceReport(R.Report, R.T);
  EXPECT_EQ(R.Row.FpIII, 1u);
}

TEST(AppKitSeedTest, GuardedCommutativePairSilent) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.addGuardedCommutativePair("x"); });
  EXPECT_TRUE(R.Report.Races.empty()) << renderRaceReport(R.Report, R.T);
  EXPECT_EQ(R.Report.Filters.IfGuardFiltered, 1u);
}

TEST(AppKitSeedTest, GuardedPairReportedWithoutIfGuard) {
  DetectorOptions Opt;
  Opt.IfGuardFilter = false;
  SeedResult R = runSeed(
      [](AppBuilder &A) { A.addGuardedCommutativePair("x"); }, Opt);
  EXPECT_EQ(R.Report.Races.size(), 1u);
}

TEST(AppKitSeedTest, AllocBeforeUsePairSilent) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.addAllocBeforeUsePair("x"); });
  EXPECT_TRUE(R.Report.Races.empty()) << renderRaceReport(R.Report, R.T);
  EXPECT_GE(R.Report.Filters.IntraEventAlloc, 1u);
}

TEST(AppKitSeedTest, FreeThenAllocPairSilent) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.addFreeThenAllocPair("x"); });
  EXPECT_TRUE(R.Report.Races.empty()) << renderRaceReport(R.Report, R.T);
  EXPECT_GE(R.Report.Filters.IntraEventAlloc, 1u);
}

TEST(AppKitSeedTest, LockProtectedPairSilent) {
  SeedResult R =
      runSeed([](AppBuilder &A) { A.addLockProtectedPair("x"); });
  EXPECT_TRUE(R.Report.Races.empty()) << renderRaceReport(R.Report, R.T);
  EXPECT_GE(R.Report.Filters.LocksetProtected, 1u);
}

TEST(AppKitSeedTest, QueueOrderedPairSilentWithRuleReportedWithout) {
  SeedResult With =
      runSeed([](AppBuilder &A) { A.addQueueOrderedPair("x"); });
  EXPECT_TRUE(With.Report.Races.empty())
      << renderRaceReport(With.Report, With.T);

  DetectorOptions Opt;
  Opt.Hb.EnableQueueRules = false;
  SeedResult Without =
      runSeed([](AppBuilder &A) { A.addQueueOrderedPair("x"); }, Opt);
  EXPECT_EQ(Without.Report.Races.size(), 1u);
}

TEST(AppKitSeedTest, AtomicityOrderedPairSilentWithRuleReportedWithout) {
  SeedResult With =
      runSeed([](AppBuilder &A) { A.addAtomicityOrderedPair("x"); });
  EXPECT_TRUE(With.Report.Races.empty())
      << renderRaceReport(With.Report, With.T);

  DetectorOptions Opt;
  Opt.Hb.EnableAtomicityRule = false;
  SeedResult Without =
      runSeed([](AppBuilder &A) { A.addAtomicityOrderedPair("x"); }, Opt);
  EXPECT_EQ(Without.Report.Races.size(), 1u);
}

TEST(AppKitSeedTest, ExternalOrderedPairSilentWithRuleReportedWithout) {
  SeedResult With =
      runSeed([](AppBuilder &A) { A.addExternalOrderedPair("x"); });
  EXPECT_TRUE(With.Report.Races.empty())
      << renderRaceReport(With.Report, With.T);

  DetectorOptions Opt;
  Opt.Hb.EnableExternalInputRule = false;
  SeedResult Without =
      runSeed([](AppBuilder &A) { A.addExternalOrderedPair("x"); }, Opt);
  EXPECT_EQ(Without.Report.Races.size(), 1u);
}

TEST(AppKitTest, VolumeFillHitsExactEventCount) {
  AppBuilder App("vol");
  App.seedIntraThreadRace("x");
  App.fillVolumeTo(500);
  EXPECT_EQ(App.plannedEvents(), 500u);
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());
  EXPECT_EQ(T.numEvents(), 500u);
}

TEST(AppKitTest, NaiveNoiseProducesFourRacesPerField) {
  AppBuilder App("noise");
  App.addNaiveNoise(/*NumFields=*/10, /*ReaderInstances=*/3,
                    /*WriterInstances=*/2);
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());
  NaiveRaceResult Naive =
      detectLowLevelRaces(T, Index, Hb, NaiveDetectorOptions());
  EXPECT_EQ(Naive.StaticRaces, 40u);
  // And none of it is a use-free race.
  AccessDb Db = extractAccesses(T, Index);
  RaceReport Report =
      detectUseFreeRaces(T, Index, Db, Hb, DetectorOptions());
  EXPECT_TRUE(Report.Races.empty());
}

TEST(AppKitTest, ExtraReadPcsAddTwoRacesEach) {
  AppBuilder App("noise");
  App.addNaiveNoise(10, 3, 2, /*ExtraReadPcs=*/3);
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());
  NaiveRaceResult Naive =
      detectLowLevelRaces(T, Index, Hb, NaiveDetectorOptions());
  EXPECT_EQ(Naive.StaticRaces, 46u);
}

} // namespace
