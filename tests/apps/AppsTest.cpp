//===- tests/apps/AppsTest.cpp ------------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The headline reproduction check: every application model regenerates
// its Table 1 row exactly -- same event volume, same race counts per
// category, same false positives per type, nothing unexpected, nothing
// missed.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "cafa/Cafa.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

using namespace cafa;
using namespace cafa::apps;

namespace {

class AppTable1Test : public testing::TestWithParam<std::string> {};

TEST_P(AppTable1Test, ReproducesPaperRowExactly) {
  AppModel Model = buildApp(GetParam());
  RuntimeStats Stats;
  Trace T = runScenario(Model.S, RuntimeOptions(), &Stats);

  // The simulated execution itself is clean.
  EXPECT_EQ(Stats.NullPointerExceptions, 0u);
  EXPECT_EQ(Stats.BlockedAtQuiescence, 0u);
  Status V = validateTrace(T);
  ASSERT_TRUE(V.ok()) << V.message();

  // The Events column is matched exactly, not approximately.
  EXPECT_EQ(T.numEvents(), Model.PaperRow.Events);

  AnalysisResult R = analyzeTrace(T, DetectorOptions());
  Table1Row Row = evaluateReport(R.Report, Model.Truth, T, GetParam());

  EXPECT_EQ(Row.Reported, Model.PaperRow.Reported)
      << renderRaceReport(R.Report, T);
  EXPECT_EQ(Row.TrueA, Model.PaperRow.TrueA);
  EXPECT_EQ(Row.TrueB, Model.PaperRow.TrueB);
  EXPECT_EQ(Row.TrueC, Model.PaperRow.TrueC);
  EXPECT_EQ(Row.FpI, Model.PaperRow.FpI);
  EXPECT_EQ(Row.FpII, Model.PaperRow.FpII);
  EXPECT_EQ(Row.FpIII, Model.PaperRow.FpIII);
  EXPECT_EQ(Row.Unexpected, 0u) << renderRaceReport(R.Report, T);
  EXPECT_EQ(Row.Missed, 0u);
}

TEST_P(AppTable1Test, DeterministicAcrossRuns) {
  AppModel Model = buildApp(GetParam());
  Trace T1 = runScenario(Model.S, RuntimeOptions());
  Trace T2 = runScenario(Model.S, RuntimeOptions());
  ASSERT_EQ(T1.numRecords(), T2.numRecords());
  for (uint32_t I = 0; I != T1.numRecords(); ++I) {
    const TraceRecord &A = T1.record(I);
    const TraceRecord &B = T2.record(I);
    ASSERT_TRUE(A.Task == B.Task && A.Kind == B.Kind &&
                A.Arg0 == B.Arg0 && A.Time == B.Time)
        << "record " << I << " differs between runs";
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppTable1Test,
                         testing::ValuesIn(appNames()),
                         [](const testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

TEST(AppsTest, OverallNumbersMatchPaperHeadline) {
  // Section 6.3: 115 reports, 69 harmful (60%), 13/25/31 by category,
  // 9/32/5 false positives by type.
  Table1Row Total;
  for (const std::string &Name : appNames()) {
    AppModel Model = buildApp(Name);
    Table1Row Row;
    analyzeScenario(Model.S, RuntimeOptions(), DetectorOptions(),
                    &Model.Truth, &Row);
    Total.Reported += Row.Reported;
    Total.TrueA += Row.TrueA;
    Total.TrueB += Row.TrueB;
    Total.TrueC += Row.TrueC;
    Total.FpI += Row.FpI;
    Total.FpII += Row.FpII;
    Total.FpIII += Row.FpIII;
  }
  EXPECT_EQ(Total.Reported, 115u);
  EXPECT_EQ(Total.TrueA, 13u);
  EXPECT_EQ(Total.TrueB, 25u);
  EXPECT_EQ(Total.TrueC, 31u);
  EXPECT_EQ(Total.FpI, 9u);
  EXPECT_EQ(Total.FpII, 32u);
  EXPECT_EQ(Total.FpIII, 5u);
  EXPECT_EQ(Total.trueTotal(), 69u);
}

TEST(AppsTest, RegistryKnowsAllTenApps) {
  EXPECT_EQ(appNames().size(), 10u);
  EXPECT_EQ(buildAllApps().size(), 10u);
  for (const std::string &Name : appNames())
    EXPECT_EQ(buildApp(Name).S.AppName, Name);
}

} // namespace
