//===- tests/detect/IfGuardTest.cpp -------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The four Figure 6 geometries of the if-guard check (forward/backward
// jumps of if-eqz and if-nez/if-eq), plus scoping rules: same frame, same
// pointer, branch-before-use.
//
//===----------------------------------------------------------------------===//

#include "detect/UseFreeDetector.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

/// Builds a one-task trace with a read at \p UsePc guarded (or not) by a
/// branch, and asks isUseIfGuarded.
struct GuardFixture {
  TraceBuilder TB;
  MethodId M;
  TaskId Task;
  static constexpr uint32_t CodeSize = 40;

  GuardFixture() {
    M = TB.addMethod("m", CodeSize);
    Task = TB.addThread("t");
    TB.begin(Task);
    TB.methodEnter(Task, M, 1);
  }

  /// Read of var 5 -> object 9 at \p Pc followed by a deref (makes it a
  /// use).
  void use(uint32_t Pc) {
    TB.ptrRead(Task, 5, 9, M, Pc);
    TB.deref(Task, 9, DerefKind::Invoke, M, Pc + 1);
  }

  /// A guarded branch at \p Pc jumping to \p TargetPc, testing the same
  /// pointer (object 9, previously read from var 5 so it matches).
  void guard(BranchKind Kind, uint32_t Pc, uint32_t TargetPc,
             uint32_t Object = 9, uint32_t MatchVar = 5) {
    // The matcher needs a previous read of the object; do it at the
    // branch pc itself (javac emits the read right before the test).
    TB.ptrRead(Task, MatchVar, Object, M, Pc);
    TB.branch(Task, Kind, Object, M, Pc, TargetPc);
  }

  bool guarded() {
    TB.methodExit(Task, M, 1);
    TB.end(Task);
    Trace T = TB.take();
    TaskIndex Index(T);
    AccessDb Db = extractAccesses(T, Index);
    // The use is the LAST use in the db (the guard's read may or may not
    // be a use).
    if (Db.Uses.empty()) {
      ADD_FAILURE() << "fixture produced no use";
      return false;
    }
    return isUseIfGuarded(T, Db, Db.Uses.back());
  }
};

TEST(IfGuardTest, IfEqzForwardGuardsRegionUpToTarget) {
  // if-eqz at 5 jumping forward to 20 (logged when not taken): pcs in
  // (5, 20) are non-null.
  GuardFixture F;
  F.guard(BranchKind::IfEqz, 5, 20);
  F.use(10);
  EXPECT_TRUE(F.guarded());
}

TEST(IfGuardTest, IfEqzForwardDoesNotGuardPastTarget) {
  GuardFixture F;
  F.guard(BranchKind::IfEqz, 5, 20);
  F.use(25);
  EXPECT_FALSE(F.guarded());
}

TEST(IfGuardTest, IfEqzBackwardGuardsToFunctionEnd) {
  // if-eqz at 15 jumping backward to 2: fall-through region [16, end).
  GuardFixture F;
  F.guard(BranchKind::IfEqz, 15, 2);
  F.use(30);
  EXPECT_TRUE(F.guarded());
}

TEST(IfGuardTest, IfNezForwardGuardsTargetRegion) {
  // if-nez at 5 jumping to 20 (logged when taken): [20, end) non-null.
  GuardFixture F;
  F.guard(BranchKind::IfNez, 5, 20);
  F.use(22);
  EXPECT_TRUE(F.guarded());
}

TEST(IfGuardTest, IfNezForwardDoesNotGuardFallthrough) {
  GuardFixture F;
  F.guard(BranchKind::IfNez, 5, 20);
  F.use(10);
  EXPECT_FALSE(F.guarded());
}

TEST(IfGuardTest, IfNezBackwardGuardsBetweenTargetAndBranch) {
  // if-nez at 25 jumping back to 10: [10, 25) non-null.  The use happens
  // after the branch at runtime but its pc is inside the region.
  GuardFixture F;
  F.guard(BranchKind::IfNez, 25, 10);
  F.use(12);
  EXPECT_TRUE(F.guarded());
}

TEST(IfGuardTest, IfEqBehavesLikeIfNez) {
  GuardFixture F;
  F.guard(BranchKind::IfEq, 5, 20);
  F.use(22);
  EXPECT_TRUE(F.guarded());
}

TEST(IfGuardTest, DifferentPointerDoesNotGuard) {
  GuardFixture F;
  // The branch tests object 8 read from var 6 -- a different pointer.
  F.guard(BranchKind::IfEqz, 5, 20, /*Object=*/8, /*MatchVar=*/6);
  F.use(10);
  EXPECT_FALSE(F.guarded());
}

TEST(IfGuardTest, BranchAfterUseDoesNotGuard) {
  GuardFixture F;
  F.use(10); // runtime order: use first
  F.guard(BranchKind::IfEqz, 5, 20);
  EXPECT_FALSE(F.guarded());
}

TEST(IfGuardTest, DifferentFrameDoesNotGuard) {
  // Guard in one invocation, use in a later invocation of the same
  // method: no protection.
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 40);
  TaskId Task = TB.addThread("t");
  TB.begin(Task);
  TB.methodEnter(Task, M, 1);
  TB.ptrRead(Task, 5, 9, M, 5);
  TB.branch(Task, BranchKind::IfEqz, 9, M, 5, 20);
  TB.methodExit(Task, M, 1);
  TB.methodEnter(Task, M, 2);
  TB.ptrRead(Task, 5, 9, M, 10);
  TB.deref(Task, 9, DerefKind::Invoke, M, 11);
  TB.methodExit(Task, M, 2);
  TB.end(Task);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  ASSERT_FALSE(Db.Uses.empty());
  EXPECT_FALSE(isUseIfGuarded(T, Db, Db.Uses.back()));
}

TEST(IfGuardTest, UseAtBranchPcNotGuarded) {
  // Region bounds are exclusive of the branch pc itself.
  GuardFixture F;
  F.guard(BranchKind::IfEqz, 5, 20);
  F.use(5);
  EXPECT_FALSE(F.guarded());
}

} // namespace
