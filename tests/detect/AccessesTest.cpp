//===- tests/detect/AccessesTest.cpp ------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/Accesses.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

TEST(AccessesTest, UseRecognizedViaNearestPreviousRead) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.ptrRead(T1, /*Var=*/5, /*Object=*/9, M, /*Pc=*/3);
  uint32_t Read = TB.lastRecord();
  TB.deref(T1, 9, DerefKind::Invoke, M, 4);
  uint32_t Deref = TB.lastRecord();
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  ASSERT_EQ(Db.Uses.size(), 1u);
  EXPECT_EQ(Db.Uses[0].Record, Read);
  EXPECT_EQ(Db.Uses[0].DerefRecord, Deref);
  EXPECT_EQ(Db.Uses[0].Var, VarId(5));
  EXPECT_EQ(Db.Uses[0].Pc, 3u);
  EXPECT_EQ(Db.UnmatchedDerefs, 0u);
}

TEST(AccessesTest, MismatchAttributesDerefToNearestRead) {
  // Two reads of different vars produce the same object; the dereference
  // is attributed to the *second* (nearest) read -- the Type III source.
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.ptrRead(T1, /*Var=*/1, /*Object=*/9, M, 0);
  TB.ptrRead(T1, /*Var=*/2, /*Object=*/9, M, 1);
  uint32_t SecondRead = TB.lastRecord();
  TB.deref(T1, 9, DerefKind::Invoke, M, 2);
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  ASSERT_EQ(Db.Uses.size(), 1u);
  EXPECT_EQ(Db.Uses[0].Record, SecondRead);
  EXPECT_EQ(Db.Uses[0].Var, VarId(2));
  // The shadowed first read counts as unmatched.
  EXPECT_EQ(Db.UnmatchedReads, 1u);
}

TEST(AccessesTest, ReadWithoutDerefIsNotAUse) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.ptrRead(T1, 5, 9, M, 0);
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  EXPECT_TRUE(Db.Uses.empty());
  EXPECT_EQ(Db.UnmatchedReads, 1u);
}

TEST(AccessesTest, DerefWithoutReadIsUnmatched) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.deref(T1, 9, DerefKind::FieldAccess, M, 0);
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  EXPECT_TRUE(Db.Uses.empty());
  EXPECT_EQ(Db.UnmatchedDerefs, 1u);
}

TEST(AccessesTest, ReadsDoNotMatchAcrossTasks) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.ptrRead(T1, 5, 9, M, 0);
  TB.deref(T2, 9, DerefKind::Invoke, M, 1); // other task
  TB.end(T1).end(T2);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  EXPECT_TRUE(Db.Uses.empty());
  EXPECT_EQ(Db.UnmatchedDerefs, 1u);
}

TEST(AccessesTest, NullReadsAreIgnored) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.ptrRead(T1, 5, /*Object=*/0, M, 0); // read null
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  EXPECT_TRUE(Db.Uses.empty());
  EXPECT_EQ(Db.UnmatchedReads, 0u);
}

TEST(AccessesTest, FreesAndAllocationsSplitByValue) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.ptrWrite(T1, 5, 0, M, 0); // free
  TB.ptrWrite(T1, 5, 7, M, 1); // allocation
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  ASSERT_EQ(Db.Frees.size(), 1u);
  ASSERT_EQ(Db.Allocs.size(), 1u);
  EXPECT_EQ(Db.Frees[0].Pc, 0u);
  EXPECT_EQ(Db.Allocs[0].Pc, 1u);
}

TEST(AccessesTest, FrameAnnotationFollowsMethodStack) {
  TraceBuilder TB;
  MethodId Outer = TB.addMethod("outer", 32);
  MethodId Inner = TB.addMethod("inner", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.methodEnter(T1, Outer, 100);
  TB.ptrRead(T1, 1, 9, Outer, 0);
  TB.deref(T1, 9, DerefKind::Invoke, Outer, 1);
  TB.methodEnter(T1, Inner, 101);
  TB.ptrRead(T1, 2, 8, Inner, 0);
  TB.deref(T1, 8, DerefKind::Invoke, Inner, 1);
  TB.methodExit(T1, Inner, 101);
  TB.methodExit(T1, Outer, 100);
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  ASSERT_EQ(Db.Uses.size(), 2u);
  EXPECT_EQ(Db.Uses[0].Frame, 100u);
  EXPECT_EQ(Db.Uses[1].Frame, 101u);
}

TEST(AccessesTest, LocksetCapturedAtAccess) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.lockAcquire(T1, 3);
  TB.lockAcquire(T1, 1);
  TB.ptrWrite(T1, 5, 0, M, 0);
  TB.lockRelease(T1, 1);
  TB.ptrWrite(T1, 6, 0, M, 1);
  TB.lockRelease(T1, 3);
  TB.ptrWrite(T1, 7, 0, M, 2);
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  ASSERT_EQ(Db.Frees.size(), 3u);
  EXPECT_EQ(Db.Frees[0].Lockset, (std::vector<uint32_t>{1, 3})); // sorted
  EXPECT_EQ(Db.Frees[1].Lockset, (std::vector<uint32_t>{3}));
  EXPECT_TRUE(Db.Frees[2].Lockset.empty());
}

TEST(AccessesTest, BranchMatchedToPointerVar) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.ptrRead(T1, 5, 9, M, 0);
  TB.branch(T1, BranchKind::IfEqz, 9, M, 1, 6);
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  ASSERT_EQ(Db.Branches.size(), 1u);
  EXPECT_EQ(Db.Branches[0].Var, VarId(5));
  EXPECT_EQ(Db.Branches[0].Kind, BranchKind::IfEqz);
  EXPECT_EQ(Db.Branches[0].TargetPc, 6u);
}

TEST(AccessesTest, BranchWithUnknownObjectHasNoVar) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 32);
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.branch(T1, BranchKind::IfNez, 9, M, 1, 6); // no prior read of 9
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  ASSERT_EQ(Db.Branches.size(), 1u);
  EXPECT_FALSE(Db.Branches[0].Var.isValid());
}

} // namespace
