//===- tests/detect/WindowedScanTest.cpp --------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The windowed streaming scan's contract is byte-identity: at every
// window size it must render exactly the batch detector's report --
// the window is only the retirement sweep cadence, never a result
// knob.  These tests pin that at the detect-function level, plus the
// windowed frontier's cut/resume behaviour (the deadline ladder, shed
// state carried across a cut, and stale frontiers degrading to a clean
// rescan).  Pipeline-level coverage lives in
// tests/integration/WindowedAnalysisTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "cafa/ReportJson.h"
#include "detect/Accesses.h"
#include "detect/RaceReport.h"
#include "detect/UseFreeDetector.h"
#include "hb/HbIndex.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

// Two unordered threads with 70 uses x 70 frees of one cell: 4900
// candidate pairs, past the scan's 4096-pair clock poll, so a tiny
// detect deadline cuts mid-scan after a forced checkpoint save.
Trace buildWideScanTrace() {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 256);
  TaskId A = TB.addThread("user");
  TaskId B = TB.addThread("freer");
  TB.begin(A);
  for (uint32_t I = 0; I != 70; ++I) {
    TB.ptrRead(A, 5, 9, M, I);
    TB.deref(A, 9, DerefKind::Invoke, M, I);
  }
  TB.end(A);
  TB.begin(B);
  for (uint32_t I = 0; I != 70; ++I)
    TB.ptrWrite(B, 5, 0, M, 100 + I);
  TB.end(B);
  return TB.take();
}

// A small trace exercising every filter the scan replays: ordered and
// unordered pairs, lock-guarded pairs, an if-guarded use, and multiple
// cells so retention buckets retire at different horizons.
Trace buildFilterMixTrace() {
  TraceBuilder TB;
  MethodId M = TB.addMethod("mix", 4096);
  TaskId A = TB.addThread("user");
  TaskId B = TB.addThread("freer");
  TB.begin(A);
  for (uint32_t V = 0; V != 3; ++V) {
    TB.lockAcquire(A, 7);
    TB.ptrRead(A, V, 9 + V, M, 10 * V);
    TB.deref(A, 9 + V, DerefKind::Invoke, M, 10 * V);
    TB.lockRelease(A, 7);
    TB.ptrRead(A, V, 9 + V, M, 10 * V + 1);
    TB.deref(A, 9 + V, DerefKind::FieldAccess, M, 10 * V + 1);
  }
  TB.end(A);
  TB.begin(B);
  for (uint32_t V = 0; V != 3; ++V) {
    TB.lockAcquire(B, 7);
    TB.ptrWrite(B, V, 0, M, 100 + V);
    TB.lockRelease(B, 7);
  }
  TB.end(B);
  return TB.take();
}

TEST(WindowedScanTest, EveryWindowSizeRendersTheBatchReport) {
  for (Trace T : {buildWideScanTrace(), buildFilterMixTrace()}) {
    TaskIndex Index(T);
    DetectorOptions Opt;
    HbIndex Hb(T, Index, Opt.Hb);
    AccessDb Db = extractAccesses(T, Index);
    RaceReport Batch = detectUseFreeRaces(T, Index, Db, Hb, Opt);
    std::string BatchText = renderRaceReport(Batch, T);
    std::string BatchJson = renderRaceReportJson(Batch, T);
    ASSERT_GT(Batch.Races.size(), 0u);

    for (uint64_t W : {uint64_t(1), uint64_t(64), uint64_t(4096),
                       uint64_t(1) << 20}) {
      WindowedDetectStats Stats;
      RaceReport Win =
          detectUseFreeRacesWindowed(T, Index, Hb, Opt, W, nullptr, &Stats);
      EXPECT_EQ(renderRaceReport(Win, T), BatchText) << "window " << W;
      EXPECT_EQ(renderRaceReportJson(Win, T), BatchJson) << "window " << W;
      EXPECT_EQ(Stats.WindowEvents, W);
      EXPECT_EQ(Stats.NumUses, Db.Uses.size());
      EXPECT_EQ(Stats.NumFrees, Db.Frees.size());
      EXPECT_GT(Stats.Chains, 0u);
      EXPECT_GT(Stats.OverlayHighWaterBytes, 0u);
    }
  }
}

TEST(WindowedScanTest, CutThenResumeIsBitIdentical) {
  Trace T = buildWideScanTrace();
  TaskIndex Index(T);
  DetectorOptions Opt;
  // Disable the sheddable filters so the deadline ladder's first rung
  // has nothing to shed and the first expiry cuts the scan outright.
  Opt.Classify = false;
  Opt.LocksetFilter = false;
  Opt.IfGuardFilter = false;
  HbIndex Hb(T, Index, Opt.Hb);
  RaceReport Clean = detectUseFreeRacesWindowed(T, Index, Hb, Opt, 16);
  ASSERT_FALSE(Clean.Partial);
  ASSERT_EQ(Clean.Filters.CandidatePairs, 4900u);

  // Cut the scan at its first clock poll; the deadline forces a save.
  WindowedDetectFrontier Saved;
  bool Wrote = false;
  WindowedDetectCheckpointing CutCk;
  CutCk.Save = [&](const WindowedDetectFrontier &F) {
    Saved = F;
    Wrote = true;
  };
  DetectorOptions Tiny = Opt;
  Tiny.DeadlineMillis = 1e-6;
  RaceReport Cut =
      detectUseFreeRacesWindowed(T, Index, Hb, Tiny, 16, nullptr, nullptr,
                                 &CutCk);
  ASSERT_TRUE(Cut.Partial);
  EXPECT_EQ(Cut.PartialCause, "detect-deadline");
  ASSERT_TRUE(Wrote);
  EXPECT_LT(Saved.Filters.CandidatePairs, 4900u);

  // Resume from the saved frontier: the remaining pairs are scanned,
  // straggler survivor bodies are re-captured, and the rendered report
  // matches the uninterrupted one byte for byte.
  WindowedDetectCheckpointing ResumeCk;
  ResumeCk.Resume = &Saved;
  RaceReport Resumed =
      detectUseFreeRacesWindowed(T, Index, Hb, Opt, 16, nullptr, nullptr,
                                 &ResumeCk);
  EXPECT_TRUE(ResumeCk.ResumeAccepted);
  EXPECT_FALSE(Resumed.Partial);
  EXPECT_EQ(Resumed.Filters.CandidatePairs, 4900u);
  EXPECT_EQ(renderRaceReportJson(Resumed, T), renderRaceReportJson(Clean, T));
  EXPECT_EQ(renderRaceReport(Resumed, T), renderRaceReport(Clean, T));
}

TEST(WindowedScanTest, ShedStateSurvivesResume) {
  // 104x104 = 10816 pairs: the ladder sheds the filters at the first
  // poll and cuts at the second; the frontier must carry the shed flag
  // so the resumed report cannot depend on where the cut landed.
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 4096);
  TaskId A = TB.addThread("user");
  TaskId B = TB.addThread("freer");
  TB.begin(A);
  for (uint32_t I = 0; I != 104; ++I) {
    TB.ptrRead(A, 5, 9, M, I);
    TB.deref(A, 9, DerefKind::Invoke, M, I);
  }
  TB.end(A);
  TB.begin(B);
  for (uint32_t I = 0; I != 104; ++I)
    TB.ptrWrite(B, 5, 0, M, 2000 + I);
  TB.end(B);
  Trace T = TB.take();
  TaskIndex Index(T);
  DetectorOptions Tiny;
  Tiny.Classify = false;
  Tiny.DeadlineMillis = 1e-6;
  HbIndex Hb(T, Index, Tiny.Hb);

  WindowedDetectFrontier Saved;
  bool Wrote = false;
  WindowedDetectCheckpointing CutCk;
  CutCk.Save = [&](const WindowedDetectFrontier &F) {
    Saved = F;
    Wrote = true;
  };
  RaceReport Cut =
      detectUseFreeRacesWindowed(T, Index, Hb, Tiny, 32, nullptr, nullptr,
                                 &CutCk);
  ASSERT_TRUE(Cut.Partial);
  EXPECT_EQ(Cut.PartialCause, "detect-deadline");
  ASSERT_TRUE(Wrote);
  EXPECT_TRUE(Saved.FiltersShed);

  WindowedDetectCheckpointing ResumeCk;
  ResumeCk.Resume = &Saved;
  DetectorOptions NoLimit;
  NoLimit.Classify = false;
  RaceReport Resumed =
      detectUseFreeRacesWindowed(T, Index, Hb, NoLimit, 32, nullptr, nullptr,
                                 &ResumeCk);
  EXPECT_TRUE(ResumeCk.ResumeAccepted);
  ASSERT_TRUE(Resumed.Partial);
  EXPECT_EQ(Resumed.PartialCause, "filters-shed");
  EXPECT_EQ(Resumed.Filters.CandidatePairs, 10816u);
}

TEST(WindowedScanTest, StaleFrontierDegradesToACleanRescan) {
  Trace T = buildWideScanTrace();
  TaskIndex Index(T);
  DetectorOptions Opt;
  Opt.Classify = false;
  Opt.LocksetFilter = false;
  Opt.IfGuardFilter = false;
  HbIndex Hb(T, Index, Opt.Hb);
  RaceReport Clean = detectUseFreeRacesWindowed(T, Index, Hb, Opt, 16);

  WindowedDetectFrontier Saved;
  WindowedDetectCheckpointing CutCk;
  CutCk.Save = [&](const WindowedDetectFrontier &F) { Saved = F; };
  DetectorOptions Tiny = Opt;
  Tiny.DeadlineMillis = 1e-6;
  (void)detectUseFreeRacesWindowed(T, Index, Hb, Tiny, 16, nullptr, nullptr,
                                   &CutCk);
  ASSERT_FALSE(Saved.Survivors.empty());

  // A survivor whose recorded use position no longer matches the trace
  // (as after analyzing a different input) must be rejected wholesale;
  // the scan silently restarts and still produces the clean report.
  Saved.Survivors[0].UseRecord += 1;
  WindowedDetectCheckpointing ResumeCk;
  ResumeCk.Resume = &Saved;
  RaceReport Resumed =
      detectUseFreeRacesWindowed(T, Index, Hb, Opt, 16, nullptr, nullptr,
                                 &ResumeCk);
  EXPECT_FALSE(ResumeCk.ResumeAccepted);
  EXPECT_FALSE(Resumed.Partial);
  EXPECT_EQ(renderRaceReport(Resumed, T), renderRaceReport(Clean, T));
}

} // namespace
