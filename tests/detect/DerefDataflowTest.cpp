//===- tests/detect/DerefDataflowTest.cpp -------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The Section 6.3 extension: static reaching-load analysis, and its
// effect on Type III false positives end to end.
//
//===----------------------------------------------------------------------===//

#include "detect/DerefDataflow.h"

#include "apps/AppKit.h"
#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "ir/IrBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;
using namespace cafa::apps;

namespace {

TEST(DerefDataflowTest, StraightLineResolves) {
  Module M;
  FieldId F = M.addStaticField("f", true);
  IrBuilder B(M);
  B.beginMethod("callee", 1);
  MethodId Callee = B.endMethod();
  B.beginMethod("m", 2);
  uint32_t LoadPc = B.nextPc();
  B.sgetObject(1, F); // pc 0
  uint32_t SitePc = B.nextPc();
  B.invokeVirtual(1, Callee); // pc 1
  MethodId M1 = B.endMethod();

  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, SitePc), static_cast<int64_t>(LoadPc));
  EXPECT_GE(R.resolvedSites(), 1u);
}

TEST(DerefDataflowTest, MovePropagatesTheLoad) {
  Module M;
  FieldId F = M.addStaticField("f", true);
  IrBuilder B(M);
  B.beginMethod("callee", 1);
  MethodId Callee = B.endMethod();
  B.beginMethod("m", 3);
  uint32_t LoadPc = B.nextPc();
  B.sgetObject(1, F);
  B.move(2, 1);
  uint32_t SitePc = B.nextPc();
  B.invokeVirtual(2, Callee);
  MethodId M1 = B.endMethod();
  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, SitePc), static_cast<int64_t>(LoadPc));
}

TEST(DerefDataflowTest, SecondLoadShadowsFirst) {
  Module M;
  FieldId F = M.addStaticField("f", true);
  FieldId G = M.addStaticField("g", true);
  IrBuilder B(M);
  B.beginMethod("callee", 1);
  MethodId Callee = B.endMethod();
  B.beginMethod("m", 2);
  B.sgetObject(1, F); // pc 0
  uint32_t SecondLoad = B.nextPc();
  B.sgetObject(1, G); // pc 1: overwrites v1
  uint32_t SitePc = B.nextPc();
  B.invokeVirtual(1, Callee);
  MethodId M1 = B.endMethod();
  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, SitePc), static_cast<int64_t>(SecondLoad));
}

TEST(DerefDataflowTest, AliasedRegistersResolveIndependently) {
  // The Type III shape: v1 = f; v2 = g; deref v1 -- statically the
  // deref is f's load even though both fields hold the same object at
  // runtime.
  Module M;
  FieldId F = M.addStaticField("f", true);
  FieldId G = M.addStaticField("g", true);
  IrBuilder B(M);
  B.beginMethod("callee", 1);
  MethodId Callee = B.endMethod();
  B.beginMethod("m", 3);
  uint32_t LoadF = B.nextPc();
  B.sgetObject(1, F);
  B.sgetObject(2, G);
  uint32_t SitePc = B.nextPc();
  B.invokeVirtual(1, Callee); // deref via v1 = f
  MethodId M1 = B.endMethod();
  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, SitePc), static_cast<int64_t>(LoadF));
}

TEST(DerefDataflowTest, BranchMergeOfDifferentLoadsIsUnresolved) {
  Module M;
  FieldId F = M.addStaticField("f", true);
  FieldId G = M.addStaticField("g", true);
  FieldId Flag = M.addStaticField("flag", false);
  IrBuilder B(M);
  B.beginMethod("callee", 1);
  MethodId Callee = B.endMethod();
  B.beginMethod("m", 3);
  Label Else = B.newLabel();
  Label Join = B.newLabel();
  B.sget(0, Flag);
  B.ifIntEqz(0, Else);
  B.sgetObject(1, F);
  B.gotoLabel(Join);
  B.bind(Else);
  B.sgetObject(1, G);
  B.bind(Join);
  uint32_t SitePc = B.nextPc();
  B.invokeVirtual(1, Callee);
  MethodId M1 = B.endMethod();
  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, SitePc), DerefResolver::Unresolved);
  EXPECT_GE(R.unresolvedSites(), 1u);
}

TEST(DerefDataflowTest, BranchMergeOfSameLoadResolves) {
  Module M;
  FieldId F = M.addStaticField("f", true);
  FieldId Flag = M.addStaticField("flag", false);
  IrBuilder B(M);
  B.beginMethod("callee", 1);
  MethodId Callee = B.endMethod();
  B.beginMethod("m", 3);
  Label Skip = B.newLabel();
  uint32_t LoadPc = B.nextPc();
  B.sgetObject(1, F);
  B.sget(0, Flag);
  B.ifIntEqz(0, Skip);
  B.work(1);
  B.bind(Skip);
  uint32_t SitePc = B.nextPc();
  B.invokeVirtual(1, Callee);
  MethodId M1 = B.endMethod();
  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, SitePc), static_cast<int64_t>(LoadPc));
}

TEST(DerefDataflowTest, NewInstanceIsNotALoad) {
  Module M;
  ClassId C = M.addClass("C");
  IrBuilder B(M);
  B.beginMethod("callee", 1);
  MethodId Callee = B.endMethod();
  B.beginMethod("m", 2);
  B.newInstance(1, C);
  uint32_t SitePc = B.nextPc();
  B.invokeVirtual(1, Callee);
  MethodId M1 = B.endMethod();
  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, SitePc), DerefResolver::Unresolved);
}

TEST(DerefDataflowTest, LoopBackEdgeKeepsUniqueLoad) {
  Module M;
  FieldId F = M.addStaticField("f", true);
  IrBuilder B(M);
  B.beginMethod("callee", 1);
  MethodId Callee = B.endMethod();
  B.beginMethod("m", 3);
  Label Loop = B.newLabel();
  B.constInt(0, 3);
  B.bind(Loop);
  uint32_t LoadPc = B.nextPc();
  B.sgetObject(1, F);
  uint32_t SitePc = B.nextPc();
  B.invokeVirtual(1, Callee);
  B.addInt(0, 0, -1);
  B.ifIntNez(0, Loop);
  MethodId M1 = B.endMethod();
  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, SitePc), static_cast<int64_t>(LoadPc));
}

TEST(DerefDataflowTest, GuardBranchSitesResolveToo) {
  Module M;
  FieldId F = M.addStaticField("f", true);
  IrBuilder B(M);
  B.beginMethod("m", 2);
  Label Skip = B.newLabel();
  uint32_t LoadPc = B.nextPc();
  B.sgetObject(1, F);
  uint32_t BranchPc = B.nextPc();
  B.ifEqz(1, Skip);
  B.work(1);
  B.bind(Skip);
  MethodId M1 = B.endMethod();
  DerefResolver R(M);
  EXPECT_EQ(R.loadFor(M1, BranchPc), static_cast<int64_t>(LoadPc));
}

TEST(DerefDataflowTest, PreciseMatchingRemovesTypeIIIFalsePositive) {
  // End to end: the alias-mismatch seed is reported with the runtime
  // heuristic and vanishes with the static resolver, while a genuine
  // race stays reported in both modes.
  AppBuilder App("precise");
  App.seedAliasMismatchFp("cacheAlias");
  App.seedIntraThreadRace("realBug");
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);
  Trace T = runScenario(Model.S, RuntimeOptions());

  AnalysisResult Heuristic = analyzeTrace(T, DetectorOptions());
  EXPECT_EQ(Heuristic.Report.Races.size(), 2u)
      << renderRaceReport(Heuristic.Report, T);

  DerefResolver Resolver(Model.S.module());
  AnalysisOptions Precise0;
  Precise0.Resolver = &Resolver;
  AnalysisResult Precise = analyzeTrace(T, Precise0);
  ASSERT_EQ(Precise.Report.Races.size(), 1u)
      << renderRaceReport(Precise.Report, T);
  // The surviving race is the real bug, not the alias artifact.
  EXPECT_NE(T.methodName(Precise.Report.Races[0].Use.Method)
                .find("realBug"),
            std::string::npos);
}

TEST(DerefDataflowTest, Table1TypeIIIColumnDropsToZeroWithResolver) {
  // Run the three apps with Type III seeds under the precise matcher:
  // their FP-III counts must vanish and everything else must hold.
  for (const char *Name : {"zxing", "vlc", "music"}) {
    AppModel Model = buildApp(Name);
    Trace T = runScenario(Model.S, RuntimeOptions());
    DerefResolver Resolver(Model.S.module());
    AnalysisOptions AO;
    AO.Resolver = &Resolver;
    AnalysisResult R = analyzeTrace(T, AO);
    Table1Row Row = evaluateReport(R.Report, Model.Truth, T, Name);
    EXPECT_EQ(Row.FpIII, 0u) << Name;
    EXPECT_EQ(Row.TrueA, Model.PaperRow.TrueA) << Name;
    EXPECT_EQ(Row.TrueB, Model.PaperRow.TrueB) << Name;
    EXPECT_EQ(Row.TrueC, Model.PaperRow.TrueC) << Name;
    EXPECT_EQ(Row.FpI, Model.PaperRow.FpI) << Name;
    EXPECT_EQ(Row.FpII, Model.PaperRow.FpII) << Name;
    EXPECT_EQ(Row.Unexpected, 0u) << Name;
    // The Type III pairs are now "missed" -- by design.
    EXPECT_EQ(Row.Missed, Model.PaperRow.FpIII) << Name;
  }
}

} // namespace
