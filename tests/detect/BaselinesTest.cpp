//===- tests/detect/BaselinesTest.cpp -----------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/Baselines.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

NaiveRaceResult runNaive(const Trace &T,
                         NaiveDetectorOptions Opt = NaiveDetectorOptions()) {
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());
  return detectLowLevelRaces(T, Index, Hb, Opt);
}

TEST(BaselinesTest, UnorderedConflictingPairCounts) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.read(T1, 5);
  TB.write(T2, 5);
  TB.end(T1).end(T2);
  NaiveRaceResult R = runNaive(TB.take());
  EXPECT_EQ(R.StaticRaces, 1u);
}

TEST(BaselinesTest, ReadReadDoesNotCount) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.read(T1, 5);
  TB.read(T2, 5);
  TB.end(T1).end(T2);
  EXPECT_EQ(runNaive(TB.take()).StaticRaces, 0u);
}

TEST(BaselinesTest, OrderedPairDoesNotCount) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1);
  TB.write(T1, 5);
  TB.fork(T1, T2);
  TB.begin(T2);
  TB.read(T2, 5);
  TB.end(T2);
  TB.end(T1);
  EXPECT_EQ(runNaive(TB.take()).StaticRaces, 0u);
}

TEST(BaselinesTest, SameTaskDoesNotCount) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TB.begin(T1);
  TB.write(T1, 5);
  TB.read(T1, 5);
  TB.end(T1);
  EXPECT_EQ(runNaive(TB.take()).StaticRaces, 0u);
}

TEST(BaselinesTest, DifferentCellsCountSeparately) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.write(T1, 5, 0);
  TB.write(T1, 6, 0);
  TB.read(T2, 5);
  TB.read(T2, 6);
  TB.end(T1).end(T2);
  EXPECT_EQ(runNaive(TB.take()).StaticRaces, 2u);
}

TEST(BaselinesTest, DynamicRepeatsCollapseToOneStaticRace) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  for (int I = 0; I != 5; ++I) {
    TB.write(T1, 5, 0);
    TB.read(T2, 5);
  }
  TB.end(T1).end(T2);
  NaiveRaceResult R = runNaive(TB.take());
  // One (pc, pc, cell) static identity despite 5x5 dynamic pairs.
  EXPECT_EQ(R.StaticRaces, 1u);
}

TEST(BaselinesTest, PointerAccessesAlsoCount) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 10);
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.ptrRead(T1, 5, 9, M, 0);
  TB.ptrWrite(T2, 5, 0, M, 1);
  TB.end(T1).end(T2);
  EXPECT_EQ(runNaive(TB.take()).StaticRaces, 1u);
}

TEST(BaselinesTest, LocksetFilterSuppresses) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.lockAcquire(T1, 1);
  TB.write(T1, 5);
  TB.lockRelease(T1, 1);
  TB.lockAcquire(T2, 1);
  TB.read(T2, 5);
  TB.lockRelease(T2, 1);
  TB.end(T1).end(T2);
  EXPECT_EQ(runNaive(TB.take()).StaticRaces, 0u);

  NaiveDetectorOptions NoLock;
  NoLock.LocksetFilter = false;
  TraceBuilder TB2;
  TaskId A = TB2.addThread("a");
  TaskId B = TB2.addThread("b");
  TB2.begin(A).begin(B);
  TB2.lockAcquire(A, 1);
  TB2.write(A, 5);
  TB2.lockRelease(A, 1);
  TB2.lockAcquire(B, 1);
  TB2.read(B, 5);
  TB2.lockRelease(B, 1);
  TB2.end(A).end(B);
  EXPECT_EQ(runNaive(TB2.take(), NoLock).StaticRaces, 1u);
}

TEST(BaselinesTest, PairCapIsCountedNotSilent) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  for (int I = 0; I != 60; ++I) {
    TB.write(T1, 5, 0);
    TB.read(T2, 5);
  }
  TB.end(T1).end(T2);
  NaiveDetectorOptions Opt;
  Opt.MaxPairsPerCell = 100; // far below 120*119/2
  NaiveRaceResult R = runNaive(TB.take(), Opt);
  EXPECT_EQ(R.CappedPairs, 1u);
}

TEST(BaselinesTest, ConcurrentLooperEventsConflict) {
  // The Figure 2 situation: two concurrent events of one looper with a
  // scalar read-write conflict count as a naive race (and this is
  // exactly the false positive CAFA's use-free focus avoids).
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId S1 = TB.addThread("s1");
  TaskId S2 = TB.addThread("s2");
  TaskId E1 = TB.addEvent("onLayout", Q);
  TaskId E2 = TB.addEvent("onPause", Q);
  TB.begin(S1).send(S1, E1, 0).end(S1);
  TB.begin(S2).send(S2, E2, 0).end(S2);
  TB.begin(E1);
  TB.read(E1, 5); // resizeAllowed
  TB.end(E1);
  TB.begin(E2);
  TB.write(E2, 5, 0);
  TB.end(E2);
  EXPECT_EQ(runNaive(TB.take()).StaticRaces, 1u);
}

} // namespace
