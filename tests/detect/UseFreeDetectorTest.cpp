//===- tests/detect/UseFreeDetectorTest.cpp -----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/UseFreeDetector.h"

#include "detect/GroundTruth.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

/// Two concurrent events on one looper: one uses var 5, one frees it.
/// Hooks let tests add guards/allocations and relocate the accesses.
struct PairFixture {
  TraceBuilder TB;
  MethodId UseM, FreeM;
  QueueId Q;
  TaskId UseEvent, FreeEvent, UseSender, FreeSender;

  PairFixture() {
    Q = TB.addQueue("main");
    UseM = TB.addMethod("useM", 40);
    FreeM = TB.addMethod("freeM", 40);
    // Unrelated senders keep the events concurrent.
    UseSender = TB.addThread("useSender");
    FreeSender = TB.addThread("freeSender");
    UseEvent = TB.addEvent("useEvent", Q);
    FreeEvent = TB.addEvent("freeEvent", Q);
    TB.begin(UseSender).send(UseSender, UseEvent, 0).end(UseSender);
    TB.begin(FreeSender).send(FreeSender, FreeEvent, 0).end(FreeSender);
  }

  /// Emits the use event: [alloc] read+deref.
  void emitUseEvent(bool AllocBefore = false) {
    TB.begin(UseEvent);
    TB.methodEnter(UseEvent, UseM, 1);
    if (AllocBefore)
      TB.ptrWrite(UseEvent, 5, 8, UseM, 1);
    TB.ptrRead(UseEvent, 5, 9, UseM, 3);
    TB.deref(UseEvent, 9, DerefKind::Invoke, UseM, 4);
    TB.methodExit(UseEvent, UseM, 1);
    TB.end(UseEvent);
  }

  /// Emits the free event: free [then alloc].
  void emitFreeEvent(bool AllocAfter = false) {
    TB.begin(FreeEvent);
    TB.methodEnter(FreeEvent, FreeM, 2);
    TB.ptrWrite(FreeEvent, 5, 0, FreeM, 7);
    if (AllocAfter)
      TB.ptrWrite(FreeEvent, 5, 8, FreeM, 8);
    TB.methodExit(FreeEvent, FreeM, 2);
    TB.end(FreeEvent);
  }

  RaceReport detect(DetectorOptions Opt = DetectorOptions()) {
    Trace T = TB.take();
    return detectUseFreeRaces(T, Opt);
  }
};

TEST(UseFreeDetectorTest, ConcurrentUseFreeIsReported) {
  PairFixture F;
  F.emitUseEvent();
  F.emitFreeEvent();
  RaceReport R = F.detect();
  ASSERT_EQ(R.Races.size(), 1u);
  EXPECT_EQ(R.Races[0].Use.Method, F.UseM);
  EXPECT_EQ(R.Races[0].Use.Pc, 3u);
  EXPECT_EQ(R.Races[0].Free.Method, F.FreeM);
  EXPECT_EQ(R.Races[0].Free.Pc, 7u);
  EXPECT_EQ(R.Races[0].Category, RaceCategory::IntraThread);
}

TEST(UseFreeDetectorTest, IntraEventAllocBeforeUseFilters) {
  PairFixture F;
  F.emitUseEvent(/*AllocBefore=*/true);
  F.emitFreeEvent();
  RaceReport R = F.detect();
  EXPECT_TRUE(R.Races.empty());
  EXPECT_EQ(R.Filters.IntraEventAlloc, 1u);
}

TEST(UseFreeDetectorTest, IntraEventAllocAfterFreeFilters) {
  PairFixture F;
  F.emitUseEvent();
  F.emitFreeEvent(/*AllocAfter=*/true);
  RaceReport R = F.detect();
  EXPECT_TRUE(R.Races.empty());
  EXPECT_EQ(R.Filters.IntraEventAlloc, 1u);
}

TEST(UseFreeDetectorTest, FiltersCanBeDisabled) {
  PairFixture F;
  F.emitUseEvent(/*AllocBefore=*/true);
  F.emitFreeEvent();
  DetectorOptions Opt;
  Opt.IntraEventAllocFilter = false;
  RaceReport R = F.detect(Opt);
  EXPECT_EQ(R.Races.size(), 1u);
}

TEST(UseFreeDetectorTest, HbOrderedPairSuppressed) {
  // The free event's send happens in the use event, so atomicity orders
  // them: no race.
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  MethodId UseM = TB.addMethod("useM", 40);
  MethodId FreeM = TB.addMethod("freeM", 40);
  TaskId UseEvent = TB.addEvent("useEvent", Q, 0, false, true);
  TaskId FreeEvent = TB.addEvent("freeEvent", Q);
  TB.begin(UseEvent);
  TB.ptrRead(UseEvent, 5, 9, UseM, 3);
  TB.deref(UseEvent, 9, DerefKind::Invoke, UseM, 4);
  TB.send(UseEvent, FreeEvent, 0);
  TB.end(UseEvent);
  TB.begin(FreeEvent);
  TB.ptrWrite(FreeEvent, 5, 0, FreeM, 7);
  TB.end(FreeEvent);
  RaceReport R = detectUseFreeRaces(TB.take(), DetectorOptions());
  EXPECT_TRUE(R.Races.empty());
  EXPECT_EQ(R.Filters.OrderedByHb, 1u);
}

TEST(UseFreeDetectorTest, SameTaskPairSuppressed) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  MethodId M = TB.addMethod("m", 40);
  TaskId E = TB.addEvent("e", Q, 0, false, true);
  TB.begin(E);
  TB.ptrRead(E, 5, 9, M, 3);
  TB.deref(E, 9, DerefKind::Invoke, M, 4);
  TB.ptrWrite(E, 5, 0, M, 7);
  TB.end(E);
  RaceReport R = detectUseFreeRaces(TB.take(), DetectorOptions());
  EXPECT_TRUE(R.Races.empty());
  EXPECT_EQ(R.Filters.SameTask, 1u);
}

TEST(UseFreeDetectorTest, LocksetFilterSuppressesCommonLock) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 40);
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.lockAcquire(T1, 3);
  TB.ptrRead(T1, 5, 9, M, 0);
  TB.deref(T1, 9, DerefKind::Invoke, M, 1);
  TB.lockRelease(T1, 3);
  TB.lockAcquire(T2, 3);
  TB.ptrWrite(T2, 5, 0, M, 7);
  TB.lockRelease(T2, 3);
  TB.end(T1).end(T2);
  RaceReport R = detectUseFreeRaces(TB.take(), DetectorOptions());
  EXPECT_TRUE(R.Races.empty());
  EXPECT_EQ(R.Filters.LocksetProtected, 1u);
}

TEST(UseFreeDetectorTest, DisjointLocksetsStillRace) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("m", 40);
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.lockAcquire(T1, 3);
  TB.ptrRead(T1, 5, 9, M, 0);
  TB.deref(T1, 9, DerefKind::Invoke, M, 1);
  TB.lockRelease(T1, 3);
  TB.lockAcquire(T2, 4); // different lock
  TB.ptrWrite(T2, 5, 0, M, 7);
  TB.lockRelease(T2, 4);
  TB.end(T1).end(T2);
  RaceReport R = detectUseFreeRaces(TB.take(), DetectorOptions());
  EXPECT_EQ(R.Races.size(), 1u);
}

TEST(UseFreeDetectorTest, HeuristicsDoNotApplyAcrossQueues) {
  // Use event on a second looper with an alloc-before-use: the
  // intra-event-allocation heuristic is restricted to same-queue pairs,
  // so the race is still reported (Section 4.3).
  TraceBuilder TB;
  QueueId Q1 = TB.addQueue("main");
  QueueId Q2 = TB.addQueue("bg");
  MethodId UseM = TB.addMethod("useM", 40);
  MethodId FreeM = TB.addMethod("freeM", 40);
  TaskId S1 = TB.addThread("s1");
  TaskId S2 = TB.addThread("s2");
  TaskId UseEvent = TB.addEvent("useEvent", Q2);
  TaskId FreeEvent = TB.addEvent("freeEvent", Q1);
  TB.begin(S1).send(S1, UseEvent, 0).end(S1);
  TB.begin(S2).send(S2, FreeEvent, 0).end(S2);
  TB.begin(UseEvent);
  TB.ptrWrite(UseEvent, 5, 8, UseM, 1); // alloc before use
  TB.ptrRead(UseEvent, 5, 9, UseM, 3);
  TB.deref(UseEvent, 9, DerefKind::Invoke, UseM, 4);
  TB.end(UseEvent);
  TB.begin(FreeEvent);
  TB.ptrWrite(FreeEvent, 5, 0, FreeM, 7);
  TB.end(FreeEvent);
  RaceReport R = detectUseFreeRaces(TB.take(), DetectorOptions());
  EXPECT_EQ(R.Races.size(), 1u);
  EXPECT_NE(R.Races[0].Category, RaceCategory::IntraThread);
}

TEST(UseFreeDetectorTest, DynamicInstancesDeduplicateToStaticPair) {
  // Two dynamic instances of the same use site against one free: one
  // reported race with DynamicCount 2.
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  MethodId UseM = TB.addMethod("useM", 40);
  MethodId FreeM = TB.addMethod("freeM", 40);
  TaskId S = TB.addThread("s");
  TaskId U1 = TB.addEvent("u1", Q);
  TaskId U2 = TB.addEvent("u2", Q);
  TaskId FreeSender = TB.addThread("fs");
  TaskId F1 = TB.addEvent("f1", Q);
  TB.begin(S).send(S, U1, 0).send(S, U2, 5).end(S);
  TB.begin(FreeSender).send(FreeSender, F1, 0).end(FreeSender);
  for (TaskId U : {U1, U2}) {
    TB.begin(U);
    TB.ptrRead(U, 5, 9, UseM, 3);
    TB.deref(U, 9, DerefKind::Invoke, UseM, 4);
    TB.end(U);
  }
  TB.begin(F1);
  TB.ptrWrite(F1, 5, 0, FreeM, 7);
  TB.end(F1);
  RaceReport R = detectUseFreeRaces(TB.take(), DetectorOptions());
  ASSERT_EQ(R.Races.size(), 1u);
  EXPECT_EQ(R.Races[0].DynamicCount, 2u);
}

TEST(UseFreeDetectorTest, ClassificationInterThreadVsConventional) {
  // Masked worker (posts an event that precedes the free in execution):
  // category (b).  Plain worker: category (c).
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  MethodId WorkerM = TB.addMethod("worker", 40);
  MethodId Worker2M = TB.addMethod("worker2", 40);
  MethodId FreeM = TB.addMethod("freeM", 40);
  TaskId W = TB.addThread("w");
  TaskId W2 = TB.addThread("w2");
  TaskId Ui = TB.addEvent("ui", Q);
  TaskId F1 = TB.addEvent("free", Q, 0, false, true);

  TB.begin(W);
  TB.ptrRead(W, 5, 9, WorkerM, 0);
  TB.deref(W, 9, DerefKind::Invoke, WorkerM, 1);
  TB.send(W, Ui, 0);
  TB.end(W);
  TB.begin(W2);
  TB.ptrRead(W2, 6, 8, Worker2M, 0);
  TB.deref(W2, 8, DerefKind::Invoke, Worker2M, 1);
  TB.end(W2);
  TB.begin(Ui).end(Ui);
  TB.begin(F1);
  TB.ptrWrite(F1, 5, 0, FreeM, 7);
  TB.ptrWrite(F1, 6, 0, FreeM, 8);
  TB.end(F1);

  RaceReport R = detectUseFreeRaces(TB.take(), DetectorOptions());
  ASSERT_EQ(R.Races.size(), 2u);
  RaceCategory MaskedCat = RaceCategory::IntraThread;
  RaceCategory PlainCat = RaceCategory::IntraThread;
  for (const UseFreeRace &Race : R.Races) {
    if (Race.Use.Method == WorkerM)
      MaskedCat = Race.Category;
    else
      PlainCat = Race.Category;
  }
  EXPECT_EQ(MaskedCat, RaceCategory::InterThread);
  EXPECT_EQ(PlainCat, RaceCategory::Conventional);
}

TEST(UseFreeDetectorTest, ReportRendersNamesAndCounters) {
  PairFixture F;
  F.emitUseEvent();
  F.emitFreeEvent();
  Trace T = F.TB.take();
  RaceReport R = detectUseFreeRaces(T, DetectorOptions());
  std::string Text = renderRaceReport(R, T);
  EXPECT_NE(Text.find("useM:3"), std::string::npos);
  EXPECT_NE(Text.find("freeM:7"), std::string::npos);
  EXPECT_NE(Text.find("candidates="), std::string::npos);
}

TEST(GroundTruthTest, EvaluateJoinsLabelsAndCountsMisses) {
  PairFixture F;
  F.emitUseEvent();
  F.emitFreeEvent();
  Trace T = F.TB.take();
  RaceReport R = detectUseFreeRaces(T, DetectorOptions());

  GroundTruth Truth;
  Truth.Entries.push_back({F.UseM, 3, F.FreeM, 7, RaceLabel::Harmful,
                           RaceCategory::IntraThread, "the pair"});
  // A second labeled pair that the detector will not find.
  Truth.Entries.push_back({F.UseM, 30, F.FreeM, 31, RaceLabel::FalseTypeII,
                           RaceCategory::IntraThread, "missing"});
  Table1Row Row = evaluateReport(R, Truth, T, "app");
  EXPECT_EQ(Row.Reported, 1u);
  EXPECT_EQ(Row.TrueA, 1u);
  EXPECT_EQ(Row.Missed, 1u);
  EXPECT_EQ(Row.Unexpected, 0u);

  // Unlabeled report shows up as unexpected.
  GroundTruth Empty;
  Table1Row Row2 = evaluateReport(R, Empty, T, "app");
  EXPECT_EQ(Row2.Unexpected, 1u);

  std::string Rendered = renderTable1({Row});
  EXPECT_NE(Rendered.find("app"), std::string::npos);
  EXPECT_NE(Rendered.find("harmful"), std::string::npos);
}

TEST(GroundTruthTest, LabelNames) {
  EXPECT_STREQ(raceLabelName(RaceLabel::Harmful), "harmful");
  EXPECT_STREQ(raceLabelName(RaceLabel::FalseTypeI), "FP-I");
  EXPECT_STREQ(raceLabelName(RaceLabel::FalseTypeII), "FP-II");
  EXPECT_STREQ(raceLabelName(RaceLabel::FalseTypeIII), "FP-III");
  EXPECT_STREQ(raceCategoryName(RaceCategory::IntraThread), "a");
  EXPECT_STREQ(raceCategoryName(RaceCategory::InterThread), "b");
  EXPECT_STREQ(raceCategoryName(RaceCategory::Conventional), "c");
}

} // namespace
