//===- tests/hb/HbGraphTest.cpp -----------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/HbGraph.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

TEST(HbGraphTest, OnlyRelevantOpsBecomeNodes) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId T1 = TB.addThread("t");
  TaskId E1 = TB.addEvent("e", Q);
  TB.begin(T1);          // node
  TB.read(T1, 0);        // not a node
  TB.ptrRead(T1, 1, 9);  // not a node
  TB.send(T1, E1, 0);    // node
  TB.end(T1);            // node
  TB.begin(E1).end(E1);  // 2 nodes
  Trace T = TB.take();
  TaskIndex Index(T);
  HbGraph G(T, Index);
  EXPECT_EQ(G.numNodes(), 5u);
  EXPECT_FALSE(G.nodeForRecord(1).isValid()); // the scalar read
  EXPECT_TRUE(G.nodeForRecord(3).isValid());  // the send
  EXPECT_EQ(G.taskNodes(T1).size(), 3u);
  EXPECT_EQ(G.taskNodes(E1).size(), 2u);
}

TEST(HbGraphTest, RelevantOpPredicate) {
  EXPECT_TRUE(isRelevantOp(OpKind::TaskBegin));
  EXPECT_TRUE(isRelevantOp(OpKind::Send));
  EXPECT_TRUE(isRelevantOp(OpKind::IpcRecv));
  EXPECT_FALSE(isRelevantOp(OpKind::Read));
  EXPECT_FALSE(isRelevantOp(OpKind::PtrWrite));
  EXPECT_FALSE(isRelevantOp(OpKind::Branch));
  EXPECT_FALSE(isRelevantOp(OpKind::MethodEnter));
  EXPECT_FALSE(isRelevantOp(OpKind::LockAcquire));
}

TEST(HbGraphTest, NeighborLookups) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);           // record 0, node
  TB.read(T1, 0);         // record 1
  TB.read(T1, 1);         // record 2
  TB.notify(T1, 0);       // record 3, node
  TB.read(T1, 2);         // record 4
  TB.end(T1);             // record 5, node
  Trace T = TB.take();
  TaskIndex Index(T);
  HbGraph G(T, Index);

  // First at-or-after: a relevant record maps to itself.
  EXPECT_EQ(G.recordOfNode(G.firstNodeAtOrAfter(3)), 3u);
  // A memory op maps forward to the next relevant node.
  EXPECT_EQ(G.recordOfNode(G.firstNodeAtOrAfter(1)), 3u);
  EXPECT_EQ(G.recordOfNode(G.firstNodeAtOrAfter(4)), 5u);
  // Last at-or-before maps backward.
  EXPECT_EQ(G.recordOfNode(G.lastNodeAtOrBefore(4)), 3u);
  EXPECT_EQ(G.recordOfNode(G.lastNodeAtOrBefore(1)), 0u);
  EXPECT_EQ(G.recordOfNode(G.lastNodeAtOrBefore(3)), 3u);
}

TEST(HbGraphTest, BeginEndNodesAndTaskPositions) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1);
  TB.begin(T2);
  TB.end(T2);
  // T1 never ends (live at cutoff).
  Trace T = TB.take();
  TaskIndex Index(T);
  HbGraph G(T, Index);
  EXPECT_TRUE(G.beginNode(T1).isValid());
  EXPECT_FALSE(G.endNode(T1).isValid());
  EXPECT_TRUE(G.endNode(T2).isValid());
  NodeId B2 = G.beginNode(T2);
  EXPECT_EQ(G.taskOfNode(B2), T2);
  EXPECT_EQ(G.posOfNode(B2), 0u);
  EXPECT_EQ(G.posOfNode(G.endNode(T2)), 1u);
}

TEST(HbGraphTest, ProgramOrderEdgesChainTaskNodes) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1).notify(T1, 0).end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbGraph G(T, Index);
  // begin -> notify -> end: exactly 2 program-order edges.
  EXPECT_EQ(G.numEdges(), 2u);
  NodeId Begin = G.beginNode(T1);
  ASSERT_EQ(G.successors(Begin).size(), 1u);
  EXPECT_EQ(G.recordOfNode(NodeId(G.successors(Begin)[0])), 1u);
}

} // namespace
