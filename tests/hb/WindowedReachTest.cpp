//===- tests/hb/WindowedReachTest.cpp -----------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The windowed frontier oracle must answer every cross-task ordering
// query -- issued with the later record at the admission cursor, the
// only shape the windowed scan produces -- exactly like the batch
// HbIndex over the same saturated graph.  Pinned over randomized traces
// by querying *every* cross-task record pair at its admission point
// while the cursor sweeps forward, so retirement timing bugs (a row
// freed while still the query target) cannot hide.
//
//===----------------------------------------------------------------------===//

#include "hb/WindowedReach.h"

#include "hb/HbIndex.h"
#include "support/Rng.h"
#include "trace/TraceBuilder.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

/// Random structurally valid trace with send/fork/join/notify traffic
/// (cross-task edges in every rule family the fixpoint derives).
Trace randomTrace(uint64_t Seed, size_t Steps) {
  Rng R(Seed);
  TraceBuilder TB;

  std::vector<QueueId> Queues;
  for (int I = 0, E = 1 + static_cast<int>(R.below(3)); I != E; ++I)
    Queues.push_back(TB.addQueue("q" + std::to_string(I)));

  struct LiveTask {
    TaskId Id;
    bool IsEvent;
    QueueId Queue;
  };
  std::vector<LiveTask> Running, Pending;
  std::vector<TaskId> EndedThreads;
  std::vector<TaskId> ActivePerQueue(Queues.size(), TaskId::invalid());
  for (int I = 0, E = 2 + static_cast<int>(R.below(3)); I != E; ++I) {
    TaskId T = TB.addThread("thread" + std::to_string(I));
    TB.begin(T);
    Running.push_back({T, false, QueueId()});
  }

  size_t EventCounter = 0;
  for (size_t Step = 0; Step != Steps && !Running.empty(); ++Step) {
    LiveTask &Actor = Running[R.below(Running.size())];
    switch (R.below(10)) {
    case 0: { // send a new event
      QueueId Q = Queues[R.below(Queues.size())];
      bool AtFront = R.chance(1, 5);
      uint64_t Delay = AtFront ? 0 : R.below(4);
      TaskId E = TB.addEvent("event" + std::to_string(EventCounter++), Q,
                             Delay, AtFront, false);
      if (AtFront)
        TB.sendAtFront(Actor.Id, E);
      else
        TB.send(Actor.Id, E, Delay);
      Pending.push_back({E, true, Q});
      break;
    }
    case 1: { // begin a pending event on an idle queue
      for (size_t I = 0; I != Pending.size(); ++I) {
        LiveTask &P = Pending[I];
        if (ActivePerQueue[P.Queue.index()].isValid())
          continue;
        TB.begin(P.Id);
        ActivePerQueue[P.Queue.index()] = P.Id;
        Running.push_back(P);
        Pending.erase(Pending.begin() + static_cast<long>(I));
        break;
      }
      break;
    }
    case 2: { // end an event
      if (Actor.IsEvent && Running.size() > 1) {
        ActivePerQueue[Actor.Queue.index()] = TaskId::invalid();
        TB.end(Actor.Id);
        Running.erase(Running.begin() + (&Actor - Running.data()));
      }
      break;
    }
    case 3: { // fork a thread
      TaskId T = TB.addThread("forked" + std::to_string(Step));
      TB.fork(Actor.Id, T);
      TB.begin(T);
      Running.push_back({T, false, QueueId()});
      break;
    }
    case 4: { // end + join an old thread
      if (!Actor.IsEvent && Running.size() > 2 && R.chance(1, 2)) {
        TB.end(Actor.Id);
        EndedThreads.push_back(Actor.Id);
        Running.erase(Running.begin() + (&Actor - Running.data()));
      } else if (!EndedThreads.empty()) {
        TB.join(Actor.Id, EndedThreads[R.below(EndedThreads.size())]);
      }
      break;
    }
    case 5:
      TB.notify(Actor.Id, static_cast<uint32_t>(R.below(2)));
      break;
    case 6:
      TB.wait(Actor.Id, static_cast<uint32_t>(R.below(2)));
      break;
    default:
      if (R.chance(1, 2))
        TB.read(Actor.Id, static_cast<uint32_t>(R.below(8)));
      else
        TB.write(Actor.Id, static_cast<uint32_t>(R.below(8)));
      break;
    }
  }
  for (const LiveTask &L : Running)
    TB.end(L.Id);
  return TB.take();
}

class WindowedReachPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(WindowedReachPropertyTest, MatchesBatchOracleAtEveryCursor) {
  Trace T = randomTrace(GetParam() * 0x9E3779B9u + 7, 300);
  ASSERT_TRUE(validateTrace(T).ok()) << validateTrace(T).message();
  TaskIndex Index(T);
  HbOptions Opt;
  Opt.Reach = ReachMode::Incremental; // pinned: CI reach legs must not skew
  HbIndex Hb(T, Index, Opt);

  const uint32_t N = static_cast<uint32_t>(T.numRecords());
  ASSERT_GT(N, 0u);
  WindowedReach WR(Hb.graph(), N - 1);
  for (uint32_t B = 0; B != N; ++B) {
    WR.advanceTo(B);
    for (uint32_t A = 0; A != B; ++A) {
      if (T.record(A).Task == T.record(B).Task)
        continue; // the windowed scan answers same-task pairs elsewhere
      ASSERT_EQ(WR.orderedCrossTask(A, B), Hb.ordered(A, B))
          << "seed " << GetParam() << " pair (" << A << ", " << B << ")";
    }
  }
  EXPECT_GT(WR.numChains(), 0u);
  EXPECT_LE(WR.liveRows(), WR.highWaterRows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowedReachPropertyTest,
                         testing::Range<uint64_t>(0, 25));

TEST(WindowedReachTest, RetiresRowsBehindTheCursor) {
  // A long two-task ping-pong: the frontier stays narrow, so rows must
  // turn over instead of accumulating -- the bounded-memory claim.
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1"), T2 = TB.addThread("t2");
  TB.begin(T1);
  TB.begin(T2);
  for (int I = 0; I != 200; ++I) {
    TB.notify(T1, 0);
    TB.wait(T2, 0);
    TB.notify(T2, 1);
    TB.wait(T1, 1);
  }
  TB.end(T1);
  TB.end(T2);
  Trace T = TB.take();
  ASSERT_TRUE(validateTrace(T).ok());

  TaskIndex Index(T);
  HbOptions Opt;
  Opt.Reach = ReachMode::Incremental;
  HbIndex Hb(T, Index, Opt);
  const uint32_t N = static_cast<uint32_t>(T.numRecords());
  WindowedReach WR(Hb.graph(), N - 1);
  // Advance record by record, the way the scan drives it; a single
  // giant jump would admit everything before retiring anything.
  for (uint32_t R = 0; R != N; ++R)
    WR.advanceTo(R);
  // The graph has ~4 nodes per iteration; a frontier that retires keeps
  // far fewer rows live than the node count.
  EXPECT_LT(WR.highWaterRows(), Hb.graph().numNodes() / 4);
}

} // namespace
