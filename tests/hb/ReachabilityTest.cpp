//===- tests/hb/ReachabilityTest.cpp ------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Property tests: the four reachability oracles must agree on every
// query over randomly generated (but structurally valid) traces -- both
// through the full HbIndex fixpoint and under raw random DAGs with
// incremental edge batches -- the chain oracle's delta reports must be
// element-wise identical to the incremental closure's, and the
// happens-before relation must be a strict partial order.
//
//===----------------------------------------------------------------------===//

#include "hb/HbIndex.h"

#include "support/Rng.h"
#include "support/WorkerPool.h"
#include "trace/TraceBuilder.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

/// Generates a random structurally valid trace: several queues and
/// threads, events sent with random delays / at-front flags, random
/// fork/join, notify/wait, listener and IPC traffic, and memory accesses
/// sprinkled throughout.
Trace randomTrace(uint64_t Seed, size_t Steps) {
  Rng R(Seed);
  TraceBuilder TB;

  std::vector<QueueId> Queues;
  for (int I = 0, E = 1 + static_cast<int>(R.below(3)); I != E; ++I)
    Queues.push_back(TB.addQueue("q" + std::to_string(I)));
  std::vector<ListenerId> Listeners;
  for (int I = 0; I != 2; ++I)
    Listeners.push_back(TB.addListener("l" + std::to_string(I)));

  struct LiveTask {
    TaskId Id;
    bool IsEvent;
    QueueId Queue;
  };
  std::vector<LiveTask> Running;   // begun, not ended
  std::vector<LiveTask> Pending;   // events sent, not begun
  std::vector<TaskId> EndedThreads;
  std::vector<TaskId> ActivePerQueue(Queues.size(), TaskId::invalid());
  std::vector<bool> Registered(Listeners.size(), false);
  uint32_t NextTxn = 1;
  std::vector<uint32_t> SentTxns;

  // Root threads.
  for (int I = 0, E = 2 + static_cast<int>(R.below(3)); I != E; ++I) {
    TaskId T = TB.addThread("thread" + std::to_string(I));
    TB.begin(T);
    Running.push_back({T, false, QueueId()});
  }

  size_t EventCounter = 0;
  for (size_t Step = 0; Step != Steps; ++Step) {
    // Pick a running task to perform the next operation.
    LiveTask &Actor = Running[R.below(Running.size())];
    switch (R.below(12)) {
    case 0: { // send a new event
      QueueId Q = Queues[R.below(Queues.size())];
      bool AtFront = R.chance(1, 5);
      uint64_t Delay = AtFront ? 0 : R.below(4);
      TaskId E = TB.addEvent("event" + std::to_string(EventCounter++), Q,
                             Delay, AtFront, false);
      if (AtFront)
        TB.sendAtFront(Actor.Id, E);
      else
        TB.send(Actor.Id, E, Delay);
      Pending.push_back({E, true, Q});
      break;
    }
    case 1: { // begin a pending event whose queue is idle
      for (size_t I = 0; I != Pending.size(); ++I) {
        LiveTask &P = Pending[I];
        if (ActivePerQueue[P.Queue.index()].isValid())
          continue;
        TB.begin(P.Id);
        if (R.chance(1, 4) && Registered[0])
          TB.performListener(P.Id, Listeners[0]);
        ActivePerQueue[P.Queue.index()] = P.Id;
        Running.push_back(P);
        Pending.erase(Pending.begin() + static_cast<long>(I));
        break;
      }
      break;
    }
    case 2: { // end an event (frees its queue)
      if (Actor.IsEvent) {
        ActivePerQueue[Actor.Queue.index()] = TaskId::invalid();
        TB.end(Actor.Id);
        Running.erase(Running.begin() + (&Actor - Running.data()));
      }
      break;
    }
    case 3: { // fork a thread
      TaskId T = TB.addThread("forked" + std::to_string(Step));
      TB.fork(Actor.Id, T);
      TB.begin(T);
      Running.push_back({T, false, QueueId()});
      break;
    }
    case 4: { // end + join an old thread
      if (!Actor.IsEvent && Running.size() > 2 && R.chance(1, 2)) {
        // End the actor so someone can join it later.
        TB.end(Actor.Id);
        EndedThreads.push_back(Actor.Id);
        Running.erase(Running.begin() + (&Actor - Running.data()));
      } else if (!EndedThreads.empty()) {
        TB.join(Actor.Id, EndedThreads[R.below(EndedThreads.size())]);
      }
      break;
    }
    case 5:
      TB.notify(Actor.Id, static_cast<uint32_t>(R.below(2)));
      break;
    case 6:
      TB.wait(Actor.Id, static_cast<uint32_t>(R.below(2)));
      break;
    case 7: {
      size_t L = R.below(Listeners.size());
      TB.registerListener(Actor.Id, Listeners[L]);
      Registered[L] = true;
      break;
    }
    case 8: { // ipc send / recv pairing
      if (R.chance(1, 2) || SentTxns.empty()) {
        TB.ipcSend(Actor.Id, NextTxn);
        SentTxns.push_back(NextTxn++);
      } else {
        TB.ipcRecv(Actor.Id, SentTxns.back());
        SentTxns.pop_back();
      }
      break;
    }
    default:
      if (R.chance(1, 2))
        TB.read(Actor.Id, static_cast<uint32_t>(R.below(8)));
      else
        TB.write(Actor.Id, static_cast<uint32_t>(R.below(8)));
      break;
    }
    if (Running.empty())
      break;
  }
  // Close everything still running.
  for (const LiveTask &L : Running)
    TB.end(L.Id);
  return TB.take();
}

class ReachabilityPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ReachabilityPropertyTest, AllOraclesAgreeOnRandomTraces) {
  Trace T = randomTrace(GetParam(), 400);
  ASSERT_TRUE(validateTrace(T).ok()) << validateTrace(T).message();
  TaskIndex Index(T);

  HbOptions ClosureOpt;
  ClosureOpt.Reach = ReachMode::Closure;
  HbIndex HbClosure(T, Index, ClosureOpt);
  HbOptions BfsOpt;
  BfsOpt.Reach = ReachMode::Bfs;
  HbIndex HbBfs(T, Index, BfsOpt);
  HbOptions IncOpt;
  IncOpt.Reach = ReachMode::Incremental;
  HbIndex HbInc(T, Index, IncOpt);
  HbOptions ChainOpt;
  ChainOpt.Reach = ReachMode::Chain;
  ChainOpt.Threads = 1;
  HbIndex HbChain(T, Index, ChainOpt);
  HbOptions ChainOpt4 = ChainOpt;
  ChainOpt4.Threads = 4; // pooled rule scans over frozen chain clocks
  HbIndex HbChain4(T, Index, ChainOpt4);

  Rng R(GetParam() ^ 0xABCDEF);
  uint32_t N = static_cast<uint32_t>(T.numRecords());
  ASSERT_GT(N, 0u);
  for (int I = 0; I != 3000; ++I) {
    uint32_t A = static_cast<uint32_t>(R.below(N));
    uint32_t B = static_cast<uint32_t>(R.below(N));
    bool Expected = HbClosure.happensBefore(A, B);
    EXPECT_EQ(Expected, HbBfs.happensBefore(A, B))
        << "records " << A << " -> " << B;
    EXPECT_EQ(Expected, HbInc.happensBefore(A, B))
        << "records " << A << " -> " << B;
    EXPECT_EQ(Expected, HbChain.happensBefore(A, B))
        << "records " << A << " -> " << B;
    EXPECT_EQ(Expected, HbChain4.happensBefore(A, B))
        << "records " << A << " -> " << B;
  }
}

TEST_P(ReachabilityPropertyTest, HappensBeforeIsStrictPartialOrder) {
  Trace T = randomTrace(GetParam() + 77, 300);
  ASSERT_TRUE(validateTrace(T).ok());
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());

  Rng R(GetParam());
  uint32_t N = static_cast<uint32_t>(T.numRecords());
  for (int I = 0; I != 500; ++I) {
    uint32_t A = static_cast<uint32_t>(R.below(N));
    uint32_t B = static_cast<uint32_t>(R.below(N));
    uint32_t C = static_cast<uint32_t>(R.below(N));
    // Irreflexivity.
    EXPECT_FALSE(Hb.happensBefore(A, A));
    // Antisymmetry.
    if (Hb.happensBefore(A, B)) {
      EXPECT_FALSE(Hb.happensBefore(B, A));
    }
    // Transitivity.
    if (Hb.happensBefore(A, B) && Hb.happensBefore(B, C)) {
      EXPECT_TRUE(Hb.happensBefore(A, C));
    }
    // Consistency with trace order: HB never points backward.
    if (Hb.happensBefore(A, B)) {
      EXPECT_LT(T.record(A).Time, T.record(B).Time + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilityPropertyTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                         89));

/// Differential test of the oracle layer itself: random DAGs (the
/// program-order skeleton of a random trace) grown by random batches of
/// forward edges, with the incremental and chain oracles exercising an
/// arbitrary interleaving of their addEdges delta path and full
/// refresh() rebuilds.  After every batch all four oracles must agree
/// on reaches(u, v) -- the closures and the chain clocks exhaustively,
/// the BFS on a sample -- and the chain oracle's delta stream must be
/// element-wise identical to the incremental closure's.
class IncrementalDifferentialTest : public testing::TestWithParam<uint64_t> {
};

TEST_P(IncrementalDifferentialTest, OraclesAgreeUnderIncrementalBatches) {
  uint64_t Seed = GetParam();
  Trace T = randomTrace(Seed * 7919 + 17, 150);
  ASSERT_TRUE(validateTrace(T).ok());
  TaskIndex Index(T);
  HbGraph G(T, Index); // program-order chains only

  ClosureReachability Closure(G);
  BfsReachability Bfs(G);
  IncrementalClosureReachability Inc(G);
  ChainReachability Chain(G);
  // The program-order skeleton is a disjoint union of task chains, so
  // the greedy cover is narrow and the clock matrix must be live; the
  // assertion keeps a policy regression from silently demoting every
  // query to the search phase (which would still pass the agreement
  // checks but void the delta-parity ones).
  ASSERT_TRUE(Chain.clocksActive()) << "seed " << Seed;

  Rng R(Seed ^ 0x5EED5EEDull);
  uint32_t N = static_cast<uint32_t>(G.numNodes());
  ASSERT_GT(N, 1u);

  // Exercise the delta-report surface too: with an all-ones fact filter,
  // gainedWords() must enumerate exactly the facts each delta sweep adds
  // and changedRows() must cover every row that grew.
  BitVec AllNodes(N);
  for (uint32_t I = 0; I != N; ++I)
    AllNodes.set(I);
  Inc.setFactFilter(AllNodes, AllNodes);
  Chain.setFactFilter(AllNodes, AllNodes);

  for (int Batch = 0; Batch != 4; ++Batch) {
    // Brute-force pre-batch relation, for diffing the delta reports.
    std::vector<uint8_t> Prev;
    if (N <= 160) {
      Prev.assign(size_t(N) * N, 0);
      for (uint32_t U = 0; U != N; ++U)
        for (uint32_t V = 0; V != N; ++V)
          Prev[size_t(U) * N + V] = Inc.reaches(NodeId(U), NodeId(V));
    }
    // Grow the DAG by a random batch of forward edges (node ids ascend
    // in record order, so A < B keeps every edge forward / acyclic).
    std::vector<HbEdge> Edges;
    for (size_t I = 0, E = 1 + R.below(8); I != E; ++I) {
      uint32_t A = static_cast<uint32_t>(R.below(N));
      uint32_t B = static_cast<uint32_t>(R.below(N));
      if (A == B)
        continue;
      if (A > B)
        std::swap(A, B);
      G.addEdge(NodeId(A), NodeId(B));
      Edges.push_back({NodeId(A), NodeId(B)});
    }

    Closure.refresh();
    bool UsedDelta = !R.chance(1, 3);
    if (UsedDelta) {
      Inc.addEdges(Edges);
      Chain.addEdges(Edges);
    } else {
      Inc.refresh(); // interleave full rebuilds with delta updates
      Chain.refresh();
    }
    ASSERT_TRUE(Chain.clocksActive())
        << "seed " << Seed << " batch " << Batch;

    // The closure oracles and the chain clocks must agree bit for bit.
    if (N <= 160) {
      for (uint32_t U = 0; U != N; ++U)
        for (uint32_t V = 0; V != N; ++V) {
          ASSERT_EQ(Closure.reaches(NodeId(U), NodeId(V)),
                    Inc.reaches(NodeId(U), NodeId(V)))
              << "seed " << Seed << " batch " << Batch << " " << U << "->"
              << V;
          ASSERT_EQ(Closure.reaches(NodeId(U), NodeId(V)),
                    Chain.reaches(NodeId(U), NodeId(V)))
              << "seed " << Seed << " batch " << Batch << " " << U << "->"
              << V;
        }
    } else {
      for (int Q = 0; Q != 4000; ++Q) {
        uint32_t U = static_cast<uint32_t>(R.below(N));
        uint32_t V = static_cast<uint32_t>(R.below(N));
        ASSERT_EQ(Closure.reaches(NodeId(U), NodeId(V)),
                  Inc.reaches(NodeId(U), NodeId(V)))
            << "seed " << Seed << " batch " << Batch << " " << U << "->"
            << V;
        ASSERT_EQ(Closure.reaches(NodeId(U), NodeId(V)),
                  Chain.reaches(NodeId(U), NodeId(V)))
            << "seed " << Seed << " batch " << Batch << " " << U << "->"
            << V;
      }
    }
    // The search oracle agrees on a sample (per-query cost is higher).
    for (int Q = 0; Q != 250; ++Q) {
      uint32_t U = static_cast<uint32_t>(R.below(N));
      uint32_t V = static_cast<uint32_t>(R.below(N));
      ASSERT_EQ(Closure.reaches(NodeId(U), NodeId(V)),
                Bfs.reaches(NodeId(U), NodeId(V)))
          << "seed " << Seed << " batch " << Batch << " " << U << "->" << V;
    }

    // Delta reports: a full rebuild cannot say what changed; a delta
    // sweep must report exactly the facts it added.  The chain oracle
    // promises the *same* delta stream as the incremental closure --
    // same dirty rows, and gained words element-wise equal, in order
    // (the rule engine's scan order feeds off the stream, so "same set,
    // different order" would not be good enough).
    if (!UsedDelta) {
      EXPECT_EQ(Inc.changedRows(), nullptr);
      EXPECT_EQ(Inc.gainedWords(), nullptr);
      EXPECT_EQ(Chain.changedRows(), nullptr);
      EXPECT_EQ(Chain.gainedWords(), nullptr);
    } else {
      const uint8_t *CI = Inc.changedRows(), *CC = Chain.changedRows();
      ASSERT_NE(CI, nullptr);
      ASSERT_NE(CC, nullptr);
      for (uint32_t U = 0; U != N; ++U)
        ASSERT_EQ(CI[U], CC[U]) << "seed " << Seed << " batch " << Batch
                                << " dirty row " << U;
      const std::vector<GainedWord> *GI = Inc.gainedWords();
      const std::vector<GainedWord> *GC = Chain.gainedWords();
      ASSERT_NE(GI, nullptr);
      ASSERT_NE(GC, nullptr);
      ASSERT_EQ(GI->size(), GC->size())
          << "seed " << Seed << " batch " << Batch;
      for (size_t I = 0; I != GI->size(); ++I) {
        ASSERT_EQ((*GI)[I].From, (*GC)[I].From)
            << "seed " << Seed << " batch " << Batch << " word " << I;
        ASSERT_EQ((*GI)[I].WordIdx, (*GC)[I].WordIdx)
            << "seed " << Seed << " batch " << Batch << " word " << I;
        ASSERT_EQ((*GI)[I].Bits, (*GC)[I].Bits)
            << "seed " << Seed << " batch " << Batch << " word " << I;
      }
    }
    if (UsedDelta && N <= 160) {
      const uint8_t *CR = Inc.changedRows();
      const std::vector<GainedWord> *GW = Inc.gainedWords();
      ASSERT_NE(CR, nullptr);
      ASSERT_NE(GW, nullptr);
      std::vector<uint8_t> Reported(size_t(N) * N, 0);
      for (const GainedWord &W : *GW)
        for (uint64_t Bits = W.Bits; Bits; Bits &= Bits - 1)
          Reported[size_t(W.From) * N + W.WordIdx * 64 +
                   static_cast<uint32_t>(__builtin_ctzll(Bits))] = 1;
      for (uint32_t U = 0; U != N; ++U) {
        bool RowGrew = false;
        for (uint32_t V = 0; V != N; ++V) {
          bool New = Inc.reaches(NodeId(U), NodeId(V)) &&
                     !Prev[size_t(U) * N + V];
          RowGrew |= New;
          ASSERT_EQ(static_cast<bool>(Reported[size_t(U) * N + V]), New)
              << "seed " << Seed << " batch " << Batch << " gained fact "
              << U << "->" << V;
        }
        if (RowGrew)
          ASSERT_TRUE(CR[U]) << "seed " << Seed << " batch " << Batch
                             << " row " << U << " grew but is not dirty";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds100, IncrementalDifferentialTest,
                         testing::Range<uint64_t>(0, 100));

/// Cross-chain edge storm: many parallel task chains with interleaved
/// node ids, then dense batches of cross-chain edges.  Every batch
/// forces the chain oracle to widen clock rows across most chains at
/// once (the worst case for the incremental min-merge sweep), and the
/// delta stream must still match the incremental closure word for word.
TEST(ChainEdgeStormTest, CrossChainBatchesWidenClocksConsistently) {
  constexpr uint32_t NumThreads = 12, ReadsPerThread = 40;
  TraceBuilder TB;
  std::vector<TaskId> Threads;
  for (uint32_t I = 0; I != NumThreads; ++I)
    Threads.push_back(TB.addThread("lane" + std::to_string(I)));
  for (TaskId T : Threads)
    TB.begin(T);
  // Round-robin so consecutive node ids belong to different chains.
  for (uint32_t P = 0; P != ReadsPerThread; ++P)
    for (TaskId T : Threads)
      TB.read(T, P % 8);
  for (TaskId T : Threads)
    TB.end(T);
  Trace T = TB.take();
  ASSERT_TRUE(validateTrace(T).ok());
  TaskIndex Index(T);
  HbGraph G(T, Index);

  IncrementalClosureReachability Inc(G);
  ChainReachability Chain(G);
  ASSERT_TRUE(Chain.clocksActive());
  ASSERT_GE(Chain.chainCount(), size_t(NumThreads));

  uint32_t N = static_cast<uint32_t>(G.numNodes());
  BitVec AllNodes(N);
  for (uint32_t I = 0; I != N; ++I)
    AllNodes.set(I);
  Inc.setFactFilter(AllNodes, AllNodes);
  Chain.setFactFilter(AllNodes, AllNodes);

  Rng R(0xC4A1Full);
  for (int Batch = 0; Batch != 8; ++Batch) {
    std::vector<HbEdge> Edges;
    for (int I = 0; I != 64; ++I) {
      // Bias sources early and targets late so a single edge often
      // improves an entire row of chain clocks at once.
      uint32_t A = static_cast<uint32_t>(R.below(N / 2));
      uint32_t B = A + 1 +
                   static_cast<uint32_t>(R.below(N - A - 1));
      G.addEdge(NodeId(A), NodeId(B));
      Edges.push_back({NodeId(A), NodeId(B)});
    }
    Inc.addEdges(Edges);
    Chain.addEdges(Edges);
    ASSERT_TRUE(Chain.clocksActive()) << "batch " << Batch;

    for (uint32_t U = 0; U != N; ++U)
      for (uint32_t V = 0; V != N; ++V)
        ASSERT_EQ(Inc.reaches(NodeId(U), NodeId(V)),
                  Chain.reaches(NodeId(U), NodeId(V)))
            << "batch " << Batch << " " << U << "->" << V;

    const uint8_t *CI = Inc.changedRows(), *CC = Chain.changedRows();
    ASSERT_NE(CI, nullptr);
    ASSERT_NE(CC, nullptr);
    for (uint32_t U = 0; U != N; ++U)
      ASSERT_EQ(CI[U], CC[U]) << "batch " << Batch << " row " << U;
    const std::vector<GainedWord> *GI = Inc.gainedWords();
    const std::vector<GainedWord> *GC = Chain.gainedWords();
    ASSERT_NE(GI, nullptr);
    ASSERT_NE(GC, nullptr);
    ASSERT_EQ(GI->size(), GC->size()) << "batch " << Batch;
    for (size_t I = 0; I != GI->size(); ++I) {
      ASSERT_EQ((*GI)[I].From, (*GC)[I].From) << "word " << I;
      ASSERT_EQ((*GI)[I].WordIdx, (*GC)[I].WordIdx) << "word " << I;
      ASSERT_EQ((*GI)[I].Bits, (*GC)[I].Bits) << "word " << I;
    }
  }
}

/// Parallel column-strip parity: the pooled refresh()/addEdges() sweeps
/// must be bit-identical to the sequential ones -- same rows, same dirty
/// flags, and the same gained-word stream in the same order (the rule
/// engine's scan order feeds off it, so "same set, different order"
/// would not be good enough).
class StripParityTest : public testing::TestWithParam<uint64_t> {};

TEST_P(StripParityTest, PooledSweepsMatchSequentialBitForBit) {
  uint64_t Seed = GetParam();
  Trace T = randomTrace(Seed * 104729 + 31, 200);
  ASSERT_TRUE(validateTrace(T).ok());
  TaskIndex Index(T);
  HbGraph GSeq(T, Index);
  HbGraph GPar(T, Index);

  WorkerPool Pool(3); // 4-way sweeps
  IncrementalClosureReachability Seq(GSeq);
  IncrementalClosureReachability Par(GPar);
  Par.setWorkerPool(&Pool);

  uint32_t N = static_cast<uint32_t>(GSeq.numNodes());
  ASSERT_GT(N, 1u);
  BitVec AllNodes(N);
  for (uint32_t I = 0; I != N; ++I)
    AllNodes.set(I);
  Seq.setFactFilter(AllNodes, AllNodes);
  Par.setFactFilter(AllNodes, AllNodes);

  Rng R(Seed ^ 0x9E3779B9ull);
  for (int Batch = 0; Batch != 5; ++Batch) {
    std::vector<HbEdge> Edges;
    for (size_t I = 0, E = 1 + R.below(10); I != E; ++I) {
      uint32_t A = static_cast<uint32_t>(R.below(N));
      uint32_t B = static_cast<uint32_t>(R.below(N));
      if (A == B)
        continue;
      if (A > B)
        std::swap(A, B);
      GSeq.addEdge(NodeId(A), NodeId(B));
      GPar.addEdge(NodeId(A), NodeId(B));
      Edges.push_back({NodeId(A), NodeId(B)});
    }
    bool UseDelta = !R.chance(1, 3);
    if (UseDelta) {
      Seq.addEdges(Edges);
      Par.addEdges(Edges);
    } else {
      Seq.refresh();
      Par.refresh();
    }

    for (uint32_t U = 0; U != N; ++U)
      for (uint32_t V = 0; V != N; ++V)
        ASSERT_EQ(Seq.reaches(NodeId(U), NodeId(V)),
                  Par.reaches(NodeId(U), NodeId(V)))
            << "seed " << Seed << " batch " << Batch << " " << U << "->"
            << V;

    if (UseDelta) {
      const uint8_t *CS = Seq.changedRows(), *CP = Par.changedRows();
      ASSERT_NE(CS, nullptr);
      ASSERT_NE(CP, nullptr);
      for (uint32_t U = 0; U != N; ++U)
        ASSERT_EQ(CS[U], CP[U])
            << "seed " << Seed << " batch " << Batch << " row " << U;

      const std::vector<GainedWord> *WS = Seq.gainedWords();
      const std::vector<GainedWord> *WP = Par.gainedWords();
      ASSERT_NE(WS, nullptr);
      ASSERT_NE(WP, nullptr);
      ASSERT_EQ(WS->size(), WP->size())
          << "seed " << Seed << " batch " << Batch;
      for (size_t I = 0; I != WS->size(); ++I) {
        EXPECT_EQ((*WS)[I].From, (*WP)[I].From) << "word " << I;
        EXPECT_EQ((*WS)[I].WordIdx, (*WP)[I].WordIdx) << "word " << I;
        EXPECT_EQ((*WS)[I].Bits, (*WP)[I].Bits) << "word " << I;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StripParityTest,
                         testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 11, 42));

} // namespace
