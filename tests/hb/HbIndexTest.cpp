//===- tests/hb/HbIndexTest.cpp -----------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Rule-by-rule unit tests of the causality model at record granularity.
//
//===----------------------------------------------------------------------===//

#include "hb/HbIndex.h"

#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

HbIndex build(const Trace &T, const TaskIndex &Index,
              HbOptions Opt = HbOptions()) {
  return HbIndex(T, Index, Opt);
}

TEST(HbIndexTest, ProgramOrderWithinTask) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t");
  TB.begin(T1);
  TB.read(T1, 0);
  uint32_t R1 = TB.lastRecord();
  TB.write(T1, 1);
  uint32_t R2 = TB.lastRecord();
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_TRUE(Hb.happensBefore(R1, R2));
  EXPECT_FALSE(Hb.happensBefore(R2, R1));
  EXPECT_FALSE(Hb.happensBefore(R1, R1));
}

TEST(HbIndexTest, NoOrderBetweenLooperEventsByDefault) {
  // Two non-external events processed sequentially with no edges: the
  // defining relaxation of the model.
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId Sender1 = TB.addThread("s1");
  TaskId Sender2 = TB.addThread("s2");
  TaskId E1 = TB.addEvent("e1", Q);
  TaskId E2 = TB.addEvent("e2", Q);
  TB.begin(Sender1).send(Sender1, E1, 0).end(Sender1);
  TB.begin(Sender2).send(Sender2, E2, 0).end(Sender2);
  TB.begin(E1);
  TB.read(E1, 0);
  uint32_t R1 = TB.lastRecord();
  TB.end(E1);
  TB.begin(E2);
  TB.write(E2, 0);
  uint32_t R2 = TB.lastRecord();
  TB.end(E2);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_FALSE(Hb.ordered(R1, R2));
  EXPECT_FALSE(Hb.taskOrdered(E1, E2));
}

TEST(HbIndexTest, ConventionalModelTotallyOrdersLooperEvents) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId S1 = TB.addThread("s1");
  TaskId S2 = TB.addThread("s2");
  TaskId E1 = TB.addEvent("e1", Q);
  TaskId E2 = TB.addEvent("e2", Q);
  TB.begin(S1).send(S1, E1, 0).end(S1);
  TB.begin(S2).send(S2, E2, 0).end(S2);
  TB.begin(E1).end(E1);
  TB.begin(E2).end(E2);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbOptions Opt;
  Opt.Model = OrderingModel::Conventional;
  HbIndex Hb = build(T, Index, Opt);
  EXPECT_TRUE(Hb.taskOrdered(E1, E2));
  EXPECT_FALSE(Hb.taskOrdered(E2, E1));
  EXPECT_GT(Hb.ruleStats().ConventionalOrderEdges, 0u);
}

TEST(HbIndexTest, ForkJoinRule) {
  TraceBuilder TB;
  TaskId Parent = TB.addThread("parent");
  TaskId Child = TB.addThread("child");
  TB.begin(Parent);
  TB.write(Parent, 0);
  uint32_t PreFork = TB.lastRecord();
  TB.fork(Parent, Child);
  TB.begin(Child);
  TB.read(Child, 0);
  uint32_t InChild = TB.lastRecord();
  TB.end(Child);
  TB.join(Parent, Child);
  TB.read(Parent, 0);
  uint32_t PostJoin = TB.lastRecord();
  TB.end(Parent);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_TRUE(Hb.happensBefore(PreFork, InChild));
  EXPECT_TRUE(Hb.happensBefore(InChild, PostJoin));
  EXPECT_FALSE(Hb.happensBefore(PostJoin, InChild));
}

TEST(HbIndexTest, NotifyWaitRule) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("notifier");
  TaskId T2 = TB.addThread("waiter");
  TB.begin(T1).begin(T2);
  TB.write(T1, 5);
  uint32_t PreNotify = TB.lastRecord();
  TB.notify(T1, 0);
  TB.wait(T2, 0);
  TB.read(T2, 5);
  uint32_t PostWait = TB.lastRecord();
  TB.end(T1).end(T2);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_TRUE(Hb.happensBefore(PreNotify, PostWait));
  EXPECT_FALSE(Hb.happensBefore(PostWait, PreNotify));
  EXPECT_GT(Hb.ruleStats().NotifyWaitEdges, 0u);
}

TEST(HbIndexTest, NotifyWaitDifferentMonitorsUnordered) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("notifier");
  TaskId T2 = TB.addThread("waiter");
  TB.begin(T1).begin(T2);
  TB.notify(T1, 0);
  uint32_t Notify = TB.lastRecord();
  TB.wait(T2, 1); // different monitor
  uint32_t Wait = TB.lastRecord();
  TB.end(T1).end(T2);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_FALSE(Hb.ordered(Notify, Wait));
}

TEST(HbIndexTest, ListenerRule) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  ListenerId L = TB.addListener("l");
  TaskId T1 = TB.addThread("registrar");
  TaskId E1 = TB.addEvent("cb", Q, 0, false, /*External=*/true);
  TB.begin(T1);
  TB.registerListener(T1, L);
  uint32_t Reg = TB.lastRecord();
  TB.begin(E1);
  TB.performListener(E1, L);
  TB.read(E1, 0);
  uint32_t InEvent = TB.lastRecord();
  TB.end(E1);
  TB.end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_TRUE(Hb.happensBefore(Reg, InEvent));

  // Without the listener rule, no order.
  HbOptions Opt;
  Opt.EnableListenerRule = false;
  HbIndex Hb2 = build(T, Index, Opt);
  EXPECT_FALSE(Hb2.happensBefore(Reg, InEvent));
}

TEST(HbIndexTest, SendRule) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId T1 = TB.addThread("sender");
  TaskId E1 = TB.addEvent("e", Q, 10);
  TB.begin(T1);
  TB.write(T1, 0);
  uint32_t PreSend = TB.lastRecord();
  TB.send(T1, E1, 10);
  TB.read(T1, 1);
  uint32_t PostSend = TB.lastRecord();
  TB.end(T1);
  TB.begin(E1);
  TB.read(E1, 0);
  uint32_t InEvent = TB.lastRecord();
  TB.end(E1);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_TRUE(Hb.happensBefore(PreSend, InEvent));
  // Operations after the send are not ordered with the event.
  EXPECT_FALSE(Hb.ordered(PostSend, InEvent));
}

TEST(HbIndexTest, ExternalInputRuleChainsExternalEvents) {
  TraceBuilder TB;
  QueueId Q1 = TB.addQueue("main");
  QueueId Q2 = TB.addQueue("bg");
  TaskId E1 = TB.addEvent("tap1", Q1, 0, false, true);
  TaskId E2 = TB.addEvent("sensor", Q2, 0, false, true);
  TaskId E3 = TB.addEvent("tap2", Q1, 0, false, true);
  TB.begin(E1).end(E1);
  TB.begin(E2).end(E2);
  TB.begin(E3).end(E3);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  // Chained across queues, transitively.
  EXPECT_TRUE(Hb.taskOrdered(E1, E2));
  EXPECT_TRUE(Hb.taskOrdered(E2, E3));
  EXPECT_TRUE(Hb.taskOrdered(E1, E3));
  EXPECT_FALSE(Hb.taskOrdered(E3, E1));

  HbOptions Opt;
  Opt.EnableExternalInputRule = false;
  HbIndex Hb2 = build(T, Index, Opt);
  EXPECT_FALSE(Hb2.taskOrdered(E1, E2));
}

TEST(HbIndexTest, IpcRule) {
  TraceBuilder TB;
  TaskId Caller = TB.addThread("caller");
  TaskId Handler = TB.addThread("rpc");
  TB.begin(Caller);
  TB.write(Caller, 0);
  uint32_t PreCall = TB.lastRecord();
  TB.ipcSend(Caller, 42);
  TB.end(Caller);
  TB.begin(Handler);
  TB.ipcRecv(Handler, 42);
  TB.read(Handler, 0);
  uint32_t InHandler = TB.lastRecord();
  TB.end(Handler);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_TRUE(Hb.happensBefore(PreCall, InHandler));
  EXPECT_EQ(Hb.ruleStats().IpcEdges, 1u);
}

TEST(HbIndexTest, MismatchedIpcTransactionsUnordered) {
  TraceBuilder TB;
  TaskId Caller = TB.addThread("caller");
  TaskId Handler = TB.addThread("rpc");
  TB.begin(Caller).ipcSend(Caller, 1);
  uint32_t Send = TB.lastRecord();
  TB.end(Caller);
  TB.begin(Handler).ipcRecv(Handler, 2);
  uint32_t Recv = TB.lastRecord();
  TB.end(Handler);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_FALSE(Hb.ordered(Send, Recv));
}

TEST(HbIndexTest, LocksContributeNoEdges) {
  // Two critical sections under one lock: the predictive relaxation
  // leaves them unordered (Section 3.1).
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.lockAcquire(T1, 0);
  TB.write(T1, 3);
  uint32_t W1 = TB.lastRecord();
  TB.lockRelease(T1, 0);
  TB.lockAcquire(T2, 0);
  TB.write(T2, 3);
  uint32_t W2 = TB.lastRecord();
  TB.lockRelease(T2, 0);
  TB.end(T1).end(T2);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_FALSE(Hb.ordered(W1, W2));
}

TEST(HbIndexTest, AtomicityDerivedOrderIsTransitiveAcrossEvents) {
  // e1 -> e2 by atomicity (via fork/begin path), then anything in e1
  // happens before anything in e2 at record level.
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId E1 = TB.addEvent("e1", Q, 0, false, true);
  TaskId E2 = TB.addEvent("e2", Q, 0, false, true);
  TaskId Th = TB.addThread("th");
  ListenerId L = TB.addListener("l");
  TB.begin(E1);
  TB.read(E1, 9);
  uint32_t InE1 = TB.lastRecord();
  TB.fork(E1, Th).end(E1);
  TB.begin(Th).registerListener(Th, L);
  TB.begin(E2).performListener(E2, L);
  TB.write(E2, 9);
  uint32_t InE2 = TB.lastRecord();
  TB.end(E2);
  TB.end(Th);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbOptions Opt;
  Opt.EnableExternalInputRule = false; // isolate atomicity
  HbIndex Hb = build(T, Index, Opt);
  EXPECT_TRUE(Hb.happensBefore(InE1, InE2));
}

TEST(HbIndexTest, TaskOrderedIsIrreflexiveAndAntisymmetric) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId E1 = TB.addEvent("e1", Q, 0, false, true);
  TaskId E2 = TB.addEvent("e2", Q, 0, false, true);
  TB.begin(E1).end(E1);
  TB.begin(E2).end(E2);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_FALSE(Hb.taskOrdered(E1, E1));
  EXPECT_TRUE(Hb.taskOrdered(E1, E2));
  EXPECT_FALSE(Hb.taskOrdered(E2, E1));
}

TEST(HbIndexTest, RecordsWithoutRelevantNeighborsUnordered) {
  // A task whose only records are memory ops after its last relevant
  // node cannot be ordered with another task.
  TraceBuilder TB;
  TaskId T1 = TB.addThread("t1");
  TaskId T2 = TB.addThread("t2");
  TB.begin(T1).begin(T2);
  TB.read(T1, 0);
  uint32_t R1 = TB.lastRecord();
  TB.write(T2, 0);
  uint32_t R2 = TB.lastRecord();
  // No ends: tasks still live at trace cutoff.
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb = build(T, Index);
  EXPECT_FALSE(Hb.ordered(R1, R2));
}

} // namespace
