//===- tests/hb/Fig4Test.cpp --------------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 4 scenarios as parameterized tests, plus checks that
// each derivation disappears when its responsible rule is disabled.
//
//===----------------------------------------------------------------------===//

#include "cafa/Fig4.h"

#include "hb/HbIndex.h"
#include "trace/Validate.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

class Fig4Test : public testing::TestWithParam<size_t> {
protected:
  static std::vector<Fig4Scenario> &scenarios() {
    static std::vector<Fig4Scenario> S = buildFig4Scenarios();
    return S;
  }
};

TEST_P(Fig4Test, TraceIsWellFormed) {
  const Fig4Scenario &S = scenarios()[GetParam()];
  Status V = validateTrace(S.T);
  EXPECT_TRUE(V.ok()) << S.Name << ": " << V.message();
}

TEST_P(Fig4Test, DerivesExpectedOrder) {
  const Fig4Scenario &S = scenarios()[GetParam()];
  TaskIndex Index(S.T);
  HbIndex Hb(S.T, Index, HbOptions());
  EXPECT_EQ(Hb.taskOrdered(S.A, S.B), S.ExpectAB) << S.Name;
  EXPECT_EQ(Hb.taskOrdered(S.B, S.A), S.ExpectBA) << S.Name;
}

TEST_P(Fig4Test, BfsOracleAgrees) {
  const Fig4Scenario &S = scenarios()[GetParam()];
  TaskIndex Index(S.T);
  HbOptions Opt;
  Opt.Reach = ReachMode::Bfs;
  HbIndex Hb(S.T, Index, Opt);
  EXPECT_EQ(Hb.taskOrdered(S.A, S.B), S.ExpectAB) << S.Name;
  EXPECT_EQ(Hb.taskOrdered(S.B, S.A), S.ExpectBA) << S.Name;
}

TEST_P(Fig4Test, DisablingResponsibleRuleDropsTheOrder) {
  const Fig4Scenario &S = scenarios()[GetParam()];
  if (S.Rule == "none")
    GTEST_SKIP() << "negative scenario; nothing to disable";
  TaskIndex Index(S.T);
  HbOptions Opt;
  if (S.Rule == "atomicity")
    Opt.EnableAtomicityRule = false;
  else
    Opt.EnableQueueRules = false;
  HbIndex Hb(S.T, Index, Opt);
  EXPECT_FALSE(Hb.taskOrdered(S.A, S.B)) << S.Name;
  EXPECT_FALSE(Hb.taskOrdered(S.B, S.A)) << S.Name;
}

TEST_P(Fig4Test, RuleStatsAttributeTheEdge) {
  const Fig4Scenario &S = scenarios()[GetParam()];
  TaskIndex Index(S.T);
  HbIndex Hb(S.T, Index, HbOptions());
  const HbRuleStats &Stats = Hb.ruleStats();
  if (S.Rule == "atomicity") {
    EXPECT_GT(Stats.AtomicityEdges, 0u) << S.Name;
  } else if (S.Rule == "queue-1") {
    EXPECT_GT(Stats.QueueRule1Edges, 0u) << S.Name;
  } else if (S.Rule == "queue-2") {
    EXPECT_GT(Stats.QueueRule2Edges, 0u) << S.Name;
  } else if (S.Rule == "queue-3") {
    EXPECT_GT(Stats.QueueRule3Edges, 0u) << S.Name;
  } else if (S.Rule == "queue-4") {
    EXPECT_GT(Stats.QueueRule4Edges, 0u) << S.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, Fig4Test,
    testing::Range<size_t>(0, buildFig4Scenarios().size()),
    [](const testing::TestParamInfo<size_t> &Info) {
      static std::vector<Fig4Scenario> S = buildFig4Scenarios();
      std::string Name = S[Info.param].Name;
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

} // namespace
