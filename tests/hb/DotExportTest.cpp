//===- tests/hb/DotExportTest.cpp ---------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/DotExport.h"

#include "cafa/Fig4.h"
#include "support/Format.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

TEST(DotExportTest, NodeGraphContainsTasksOpsAndEdges) {
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId T1 = TB.addThread("sender");
  TaskId E1 = TB.addEvent("onPause", Q);
  TB.begin(T1).send(T1, E1, 0).end(T1);
  TB.begin(E1).end(E1);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());

  std::string Dot = exportHbGraphDot(Hb, T);
  EXPECT_NE(Dot.find("digraph cafa_hb"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"sender\""), std::string::npos);
  EXPECT_NE(Dot.find("label=\"onPause\""), std::string::npos);
  EXPECT_NE(Dot.find("label=\"send\""), std::string::npos);
  // Cross-task send edge plus dotted program-order edges.
  EXPECT_NE(Dot.find("->"), std::string::npos);
  EXPECT_NE(Dot.find("style=dotted"), std::string::npos);
}

TEST(DotExportTest, TaskDigestIsTransitivelyReduced) {
  // Three chained external events: a->b->c must not include the
  // redundant a->c edge.
  TraceBuilder TB;
  QueueId Q = TB.addQueue("main");
  TaskId A = TB.addEvent("a", Q, 0, false, true);
  TaskId B = TB.addEvent("b", Q, 0, false, true);
  TaskId C = TB.addEvent("c", Q, 0, false, true);
  TB.begin(A).end(A);
  TB.begin(B).end(B);
  TB.begin(C).end(C);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());

  std::string Dot = exportTaskOrderDot(Hb, T);
  std::string EdgeAB = formatString("t%u -> t%u", A.value(), B.value());
  std::string EdgeBC = formatString("t%u -> t%u", B.value(), C.value());
  std::string EdgeAC = formatString("t%u -> t%u", A.value(), C.value());
  EXPECT_NE(Dot.find(EdgeAB), std::string::npos);
  EXPECT_NE(Dot.find(EdgeBC), std::string::npos);
  EXPECT_EQ(Dot.find(EdgeAC), std::string::npos);
  // External events are rendered filled.
  EXPECT_NE(Dot.find("fillcolor=lightgrey"), std::string::npos);
}

TEST(DotExportTest, Fig4ScenariosExportCleanly) {
  for (Fig4Scenario &S : buildFig4Scenarios()) {
    TaskIndex Index(S.T);
    HbIndex Hb(S.T, Index, HbOptions());
    std::string Dot = exportTaskOrderDot(Hb, S.T);
    EXPECT_NE(Dot.find("digraph"), std::string::npos) << S.Name;
    // Both protagonists appear.
    EXPECT_NE(Dot.find("\"A\""), std::string::npos) << S.Name;
    EXPECT_NE(Dot.find("\"B\""), std::string::npos) << S.Name;
  }
}

TEST(DotExportTest, LabelsAreEscaped) {
  TraceBuilder TB;
  TaskId T1 = TB.addThread("we\"ird\\name");
  TB.begin(T1).end(T1);
  Trace T = TB.take();
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());
  std::string Dot = exportTaskOrderDot(Hb, T);
  EXPECT_NE(Dot.find("we\\\"ird\\\\name"), std::string::npos);
}

} // namespace
