//===- tests/ir/IrTest.cpp ----------------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/Disasm.h"
#include "ir/IrBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cafa;

namespace {

TEST(IrBuilderTest, EmitsInstructionsWithAscendingPcs) {
  Module M;
  FieldId F = M.addStaticField("f", true);
  IrBuilder B(M);
  B.beginMethod("m", 2);
  EXPECT_EQ(B.nextPc(), 0u);
  B.constNull(0);
  EXPECT_EQ(B.nextPc(), 1u);
  B.sputObject(F, 0);
  EXPECT_EQ(B.nextPc(), 2u);
  MethodId Id = B.endMethod();
  const MethodDef &Def = M.methodDef(Id);
  // const-null, sput-object, auto-appended return.
  ASSERT_EQ(Def.Code.size(), 3u);
  EXPECT_EQ(Def.Code[0].Op, Opcode::ConstNull);
  EXPECT_EQ(Def.Code[1].Op, Opcode::SPutObject);
  EXPECT_EQ(Def.Code[2].Op, Opcode::ReturnVoid);
}

TEST(IrBuilderTest, NoAutoReturnAfterTerminator) {
  Module M;
  IrBuilder B(M);
  B.beginMethod("m", 1);
  B.returnVoid();
  MethodId Id = B.endMethod();
  EXPECT_EQ(M.methodDef(Id).Code.size(), 1u);
}

TEST(IrBuilderTest, ForwardLabelFixup) {
  Module M;
  IrBuilder B(M);
  B.beginMethod("m", 2);
  Label L = B.newLabel();
  B.constInt(0, 1);      // pc 0
  B.ifIntEqz(0, L);      // pc 1 -> pc 4
  B.constInt(1, 2);      // pc 2
  B.constInt(1, 3);      // pc 3
  B.bind(L);             // pc 4
  B.returnVoid();        // pc 4
  MethodId Id = B.endMethod();
  const Instr &Branch = M.methodDef(Id).Code[1];
  EXPECT_EQ(Branch.Imm, 3); // relative: 1 + 3 = 4
}

TEST(IrBuilderTest, BackwardLabelFixup) {
  Module M;
  IrBuilder B(M);
  B.beginMethod("m", 2);
  Label Loop = B.newLabel();
  B.constInt(0, 3); // pc 0
  B.bind(Loop);     // pc 1
  B.addInt(0, 0, -1);   // pc 1
  B.ifIntNez(0, Loop);  // pc 2 -> pc 1
  MethodId Id = B.endMethod();
  const Instr &Branch = M.methodDef(Id).Code[2];
  EXPECT_EQ(Branch.Imm, -1);
}

TEST(VerifierTest, AcceptsWellFormedModule) {
  Module M;
  ProcessId P = M.addProcess("app");
  QueueId Q = M.addQueue("main", P);
  FieldId F = M.addStaticField("f", true);
  ClassId C = M.addClass("C");
  IrBuilder B(M);
  B.beginMethod("handler", 2);
  B.newInstance(0, C);
  B.sputObject(F, 0);
  MethodId Handler = B.endMethod();
  B.beginMethod("main", 2);
  B.sendEvent(Q, Handler, 10);
  B.endMethod();
  EXPECT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();
}

/// A named malformed-instruction case for the parameterized verifier test.
struct BadInstrCase {
  const char *Name;
  Instr I;
  const char *ExpectMessage;
};

class VerifierRejectsTest : public testing::TestWithParam<BadInstrCase> {};

TEST_P(VerifierRejectsTest, RejectsMalformedInstruction) {
  const BadInstrCase &Case = GetParam();
  Module M;
  ProcessId P = M.addProcess("app");
  M.addQueue("main", P);
  M.addStaticField("sObj", true);
  M.addStaticField("sInt", false);
  ClassId C = M.addClass("C");
  M.addField("iObj", C, true);
  M.addLock("l");
  M.addMonitor("m");
  MethodDef Def;
  Def.Name = M.names().intern("bad");
  Def.NumRegs = 2;
  Def.Code.push_back(Case.I);
  Instr Ret;
  Ret.Op = Opcode::ReturnVoid;
  Def.Code.push_back(Ret);
  MethodId Id = M.addMethod(std::move(Def));
  Status S = verifyMethod(M, Id);
  ASSERT_FALSE(S.ok()) << Case.Name;
  EXPECT_NE(S.message().find(Case.ExpectMessage), std::string::npos)
      << Case.Name << ": " << S.message();
}

Instr make(Opcode Op, Reg A, Reg B, int32_t Imm, uint32_t Ref,
           uint32_t Aux) {
  Instr I;
  I.Op = Op;
  I.A = A;
  I.B = B;
  I.Imm = Imm;
  I.Ref = Ref;
  I.Aux = Aux;
  return I;
}

const BadInstrCase BadCases[] = {
    {"reg-out-of-range", make(Opcode::ConstNull, 5, NoReg, 0, 0, 0),
     "register out of range"},
    {"unknown-class", make(Opcode::NewInstance, 0, NoReg, 0, 9, 0),
     "unknown class"},
    {"unknown-field", make(Opcode::SGetObject, 0, NoReg, 0, 99, 0),
     "unknown field"},
    {"static-access-to-instance", make(Opcode::SGetObject, 0, NoReg, 0,
                                       /*iObj=*/2, 0),
     "static access to an instance field"},
    {"instance-access-to-static", make(Opcode::IGetObject, 0, 1, 0,
                                       /*sObj=*/0, 0),
     "instance access to a static field"},
    {"field-kind-mismatch", make(Opcode::SGet, 0, NoReg, 0, /*sObj=*/0, 0),
     "field kind mismatch"},
    {"unknown-callee", make(Opcode::InvokeStatic, NoReg, NoReg, 0, 42, 0),
     "unknown callee"},
    {"branch-out-of-range", make(Opcode::Goto, NoReg, NoReg, 99, 0, 0),
     "branch target out of range"},
    {"branch-to-self", make(Opcode::IfIntEqz, 0, NoReg, 0, 0, 0),
     "branch to itself"},
    {"negative-delay", make(Opcode::SendEvent, NoReg, NoReg, -5, 0, 0),
     "negative event delay"},
    {"unknown-queue", make(Opcode::SendEvent, NoReg, NoReg, 0, 0, 7),
     "unknown event queue"},
    {"unknown-lock", make(Opcode::MonitorEnter, NoReg, NoReg, 0, 9, 0),
     "unknown lock"},
    {"unknown-monitor", make(Opcode::WaitMonitor, NoReg, NoReg, 0, 9, 0),
     "unknown monitor"},
    {"unknown-listener", make(Opcode::TriggerListener, NoReg, NoReg, 0, 3,
                              0),
     "unknown listener"},
    {"unknown-process", make(Opcode::BinderCall, NoReg, NoReg, 0, 0, 9),
     "unknown target process"},
    {"negative-work", make(Opcode::Work, NoReg, NoReg, -1, 0, 0),
     "negative work amount"},
    {"negative-sleep", make(Opcode::Sleep, NoReg, NoReg, -1, 0, 0),
     "negative sleep duration"},
};

INSTANTIATE_TEST_SUITE_P(AllBadInstrs, VerifierRejectsTest,
                         testing::ValuesIn(BadCases),
                         [](const testing::TestParamInfo<BadInstrCase> &I) {
                           std::string Name = I.param.Name;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

TEST(VerifierTest, RejectsEmptyMethod) {
  Module M;
  MethodDef Def;
  Def.Name = M.names().intern("empty");
  MethodId Id = M.addMethod(std::move(Def));
  Status S = verifyMethod(M, Id);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("no code"), std::string::npos);
}

TEST(VerifierTest, RejectsFallOffEnd) {
  Module M;
  MethodDef Def;
  Def.Name = M.names().intern("falls");
  Def.NumRegs = 1;
  Instr I;
  I.Op = Opcode::ConstNull;
  I.A = 0;
  Def.Code.push_back(I);
  MethodId Id = M.addMethod(std::move(Def));
  Status S = verifyMethod(M, Id);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("fall off"), std::string::npos);
}

TEST(VerifierTest, RejectsListenerWithoutQueue) {
  Module M;
  M.addListener("dangling", QueueId::invalid());
  Status S = verifyModule(M);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("delivery queue"), std::string::npos);
}

TEST(DisasmTest, EveryOpcodeRenders) {
  Module M;
  ProcessId P = M.addProcess("app");
  QueueId Q = M.addQueue("main", P);
  FieldId SObj = M.addStaticField("sObj", true);
  FieldId SInt = M.addStaticField("sInt", false);
  ClassId C = M.addClass("C");
  FieldId IObj = M.addField("iObj", C, true);
  FieldId IInt = M.addField("iInt", C, false);
  LockId L = M.addLock("l");
  MonitorId Mon = M.addMonitor("mon");
  ListenerId Lis = M.addListener("lis", Q);
  PipeId Pipe = M.addPipe("pipe");

  IrBuilder B(M);
  B.beginMethod("callee", 1);
  B.work(1);
  MethodId Callee = B.endMethod();

  B.beginMethod("all", 3);
  Label End = B.newLabel();
  B.nop();
  B.constNull(0);
  B.constInt(1, 42);
  B.newInstance(0, C);
  B.move(2, 0);
  B.igetObject(2, 0, IObj);
  B.iputObject(0, IObj, 2);
  B.sgetObject(2, SObj);
  B.sputObject(SObj, 2);
  B.iget(1, 0, IInt);
  B.iput(0, IInt, 1);
  B.sget(1, SInt);
  B.sput(SInt, 1);
  B.addInt(1, 1, 5);
  B.invokeVirtual(0, Callee);
  B.invokeStatic(Callee);
  B.ifEqz(0, End);
  B.ifNez(0, End);
  B.ifEq(0, 2, End);
  B.ifIntEqz(1, End);
  B.ifIntNez(1, End);
  B.monitorEnter(L);
  B.monitorExit(L);
  B.waitMonitor(Mon);
  B.notifyMonitor(Mon);
  B.forkThread(1, Callee);
  B.joinThread(1);
  B.sendEvent(Q, Callee, 25);
  B.sendEventAtFront(Q, Callee);
  B.registerListener(Lis, Callee);
  B.triggerListener(Lis);
  B.binderCall(P, Callee);
  B.pipeWrite(Pipe, 0);
  B.pipeRead(Pipe, 0);
  B.sendEventAtTime(Q, Callee, 75);
  B.work(3);
  B.sleep(100);
  B.gotoLabel(End);
  B.bind(End);
  B.returnVoid();
  MethodId All = B.endMethod();

  ASSERT_TRUE(verifyModule(M).ok()) << verifyModule(M).message();
  std::string Text = disassembleMethod(M, All);
  // Every opcode mnemonic that was emitted must appear.
  for (const char *Needle :
       {"nop", "const-null", "const-int", "new-instance", "move",
        "iget-object", "iput-object", "sget-object", "sput-object",
        "iget", "iput", "sget", "sput", "add-int", "invoke-virtual",
        "invoke-static", "if-eqz", "if-nez", "if-eq", "if-int-eqz",
        "if-int-nez", "monitor-enter", "monitor-exit", "wait", "notify",
        "fork-thread", "join-thread", "send-event", "send-at-front",
        "register-listener", "trigger-listener", "binder-call",
        "pipe-write", "pipe-read", "send-at-time", "work", "sleep",
        "goto", "return-void"})
    EXPECT_NE(Text.find(Needle), std::string::npos) << Needle;
  // Module-level disassembly includes both methods.
  std::string ModText = disassembleModule(M);
  EXPECT_NE(ModText.find("method callee"), std::string::npos);
  EXPECT_NE(ModText.find("method all"), std::string::npos);
}

TEST(InstrTest, Predicates) {
  EXPECT_TRUE(isBranch(Opcode::Goto));
  EXPECT_TRUE(isBranch(Opcode::IfEqz));
  EXPECT_FALSE(isBranch(Opcode::Work));
  EXPECT_TRUE(isGuardBranch(Opcode::IfEqz));
  EXPECT_TRUE(isGuardBranch(Opcode::IfNez));
  EXPECT_TRUE(isGuardBranch(Opcode::IfEq));
  EXPECT_FALSE(isGuardBranch(Opcode::IfIntEqz));
  EXPECT_TRUE(isTerminator(Opcode::ReturnVoid));
  EXPECT_TRUE(isTerminator(Opcode::Goto));
  EXPECT_FALSE(isTerminator(Opcode::IfEqz));
}

} // namespace
