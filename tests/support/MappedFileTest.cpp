//===- tests/support/MappedFileTest.cpp ---------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/MappedFile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/stat.h>

using namespace cafa;

namespace {

std::string writeTemp(const std::string &Name, const std::string &Bytes) {
  std::string Path = testing::TempDir() + "/" + Name;
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  return Path;
}

TEST(MappedFileTest, MapsRegularFileContents) {
  std::string Bytes = "begin 1\nsend 1 2 0\nend 1\n";
  std::string Path = writeTemp("mapped_basic", Bytes);
  MappedFile M;
  ASSERT_EQ(M.open(Path), MappedFile::Outcome::Mapped);
  EXPECT_TRUE(M.mapped());
  EXPECT_EQ(M.size(), Bytes.size());
  EXPECT_EQ(M.contents(), Bytes);
  M.reset();
  EXPECT_FALSE(M.mapped());
  EXPECT_EQ(M.size(), 0u);
  std::remove(Path.c_str());
}

TEST(MappedFileTest, EmptyFileIsNotMappable) {
  std::string Path = writeTemp("mapped_empty", "");
  MappedFile M;
  EXPECT_EQ(M.open(Path), MappedFile::Outcome::NotMappable);
  EXPECT_FALSE(M.mapped());
  std::remove(Path.c_str());
}

TEST(MappedFileTest, NonRegularFileIsNotMappable) {
  // /dev/null exists everywhere the tests run and is a character device.
  MappedFile M;
  EXPECT_EQ(M.open("/dev/null"), MappedFile::Outcome::NotMappable);
  EXPECT_FALSE(M.mapped());
}

TEST(MappedFileTest, MissingFileIsError) {
  Status Err;
  MappedFile M;
  EXPECT_EQ(M.open(testing::TempDir() + "/definitely_missing_file", &Err),
            MappedFile::Outcome::Error);
  EXPECT_FALSE(Err.ok());
  EXPECT_FALSE(M.mapped());
}

TEST(MappedFileTest, MoveTransfersOwnership) {
  std::string Bytes(8192, 'x');
  std::string Path = writeTemp("mapped_move", Bytes);
  MappedFile A;
  ASSERT_EQ(A.open(Path), MappedFile::Outcome::Mapped);
  MappedFile B(std::move(A));
  EXPECT_FALSE(A.mapped());
  ASSERT_TRUE(B.mapped());
  EXPECT_EQ(B.contents(), Bytes);
  std::remove(Path.c_str());
}

TEST(MappedFileTest, RegularFileSizePreflight) {
  std::string Path = writeTemp("mapped_size", "12345");
  EXPECT_EQ(MappedFile::regularFileSize(Path), 5);
  EXPECT_EQ(MappedFile::regularFileSize("/dev/null"), -1);
  EXPECT_EQ(MappedFile::regularFileSize(Path + ".missing"), -1);
  std::remove(Path.c_str());
}

} // namespace
