//===- tests/support/BitVecTest.cpp -------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/BitVec.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace cafa;

namespace {

TEST(BitVecTest, StartsEmpty) {
  BitVec V(100);
  EXPECT_EQ(V.size(), 100u);
  EXPECT_TRUE(V.none());
  EXPECT_EQ(V.count(), 0u);
  for (size_t I = 0; I < 100; ++I)
    EXPECT_FALSE(V.test(I));
}

TEST(BitVecTest, SetResetTest) {
  BitVec V(130);
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 4u);
  V.reset(63);
  EXPECT_FALSE(V.test(63));
  EXPECT_EQ(V.count(), 3u);
}

TEST(BitVecTest, Clear) {
  BitVec V(70);
  V.set(3);
  V.set(69);
  V.clear();
  EXPECT_TRUE(V.none());
}

TEST(BitVecTest, OrWithReportsChange) {
  BitVec A(128), B(128);
  B.set(5);
  B.set(100);
  EXPECT_TRUE(A.orWith(B));
  EXPECT_TRUE(A.test(5));
  EXPECT_TRUE(A.test(100));
  // Second OR changes nothing.
  EXPECT_FALSE(A.orWith(B));
}

TEST(BitVecTest, AnyCommon) {
  BitVec A(200), B(200);
  A.set(150);
  B.set(151);
  EXPECT_FALSE(A.anyCommon(B));
  B.set(150);
  EXPECT_TRUE(A.anyCommon(B));
}

TEST(BitVecTest, ForEachSetBitAscending) {
  BitVec V(300);
  std::vector<size_t> Want = {0, 1, 63, 64, 65, 128, 299};
  for (size_t I : Want)
    V.set(I);
  std::vector<size_t> Got;
  V.forEachSetBit([&](size_t I) { Got.push_back(I); });
  EXPECT_EQ(Got, Want);
}

TEST(BitVecTest, ResizeKeepsBitsAndClearsTail) {
  BitVec V(10);
  V.set(9);
  V.resize(100);
  EXPECT_TRUE(V.test(9));
  EXPECT_FALSE(V.test(99));
  EXPECT_EQ(V.count(), 1u);
  // Shrinking drops out-of-range bits from count().
  V.set(90);
  V.resize(50);
  EXPECT_EQ(V.count(), 1u);
}

TEST(BitVecTest, NonMultipleOf64CountExact) {
  BitVec V(67);
  for (size_t I = 0; I < 67; ++I)
    V.set(I);
  EXPECT_EQ(V.count(), 67u);
}

/// Property: BitVec agrees with a std::set reference model under random
/// operations.
TEST(BitVecTest, PropertyMatchesReferenceModel) {
  Rng R(42);
  for (int Round = 0; Round != 20; ++Round) {
    size_t N = 1 + R.below(500);
    BitVec V(N);
    std::set<size_t> Ref;
    for (int Op = 0; Op != 300; ++Op) {
      size_t I = R.below(N);
      if (R.chance(1, 3)) {
        V.reset(I);
        Ref.erase(I);
      } else {
        V.set(I);
        Ref.insert(I);
      }
    }
    EXPECT_EQ(V.count(), Ref.size());
    std::vector<size_t> Got;
    V.forEachSetBit([&](size_t I) { Got.push_back(I); });
    EXPECT_EQ(Got, std::vector<size_t>(Ref.begin(), Ref.end()));
  }
}

} // namespace
