//===- tests/support/WorkerPoolTest.cpp ---------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The worker pool underneath every parallel phase: parallelFor must run
// every task exactly once and return only after all of them finished,
// submit must drain FIFO work, and the thread-count resolution must obey
// the explicit-request > environment > hardware precedence.
//
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <vector>

using namespace cafa;

namespace {

TEST(WorkerPoolTest, ParallelForRunsEveryTaskExactlyOnce) {
  for (unsigned Helpers : {0u, 1u, 3u, 7u}) {
    WorkerPool Pool(Helpers);
    EXPECT_EQ(Pool.helperThreads(), Helpers);
    for (size_t N : {0u, 1u, 2u, 5u, 64u, 1000u}) {
      std::vector<std::atomic<int>> Hits(N);
      Pool.parallelFor(N, [&](size_t I) { ++Hits[I]; });
      for (size_t I = 0; I != N; ++I)
        EXPECT_EQ(Hits[I].load(), 1) << "helpers " << Helpers << " task "
                                     << I << " of " << N;
    }
  }
}

TEST(WorkerPoolTest, ParallelForIsABarrier) {
  // Each task writes its slot; the sum read right after parallelFor
  // returns must already be complete -- the call may not return while a
  // helper is still mid-task.
  WorkerPool Pool(3);
  for (int Round = 0; Round != 50; ++Round) {
    std::vector<uint64_t> Slots(256, 0);
    Pool.parallelFor(Slots.size(), [&](size_t I) { Slots[I] = I + 1; });
    uint64_t Sum = std::accumulate(Slots.begin(), Slots.end(), uint64_t(0));
    ASSERT_EQ(Sum, uint64_t(256) * 257 / 2) << "round " << Round;
  }
}

TEST(WorkerPoolTest, ParallelForNestsWithDisjointPools) {
  // The detector owns its own pool while HbIndex owns another; nothing
  // shared, so nesting across distinct pools must be safe.
  WorkerPool Outer(2);
  std::atomic<int> Total{0};
  Outer.parallelFor(4, [&](size_t) {
    WorkerPool Inner(0); // inline
    Inner.parallelFor(8, [&](size_t) { ++Total; });
  });
  EXPECT_EQ(Total.load(), 32);
}

TEST(WorkerPoolTest, SubmitRunsInlineWithZeroHelpers) {
  WorkerPool Pool(0);
  bool Ran = false;
  Pool.submit([&] { Ran = true; });
  // Zero helpers: submit is synchronous by contract.
  EXPECT_TRUE(Ran);
}

TEST(WorkerPoolTest, ResolvePrefersExplicitRequest) {
  ::setenv("CAFA_TEST_POOL_VAR", "7", 1);
  EXPECT_EQ(resolveWorkerThreads(3, "CAFA_TEST_POOL_VAR"), 3u);
  EXPECT_EQ(resolveWorkerThreads(0, "CAFA_TEST_POOL_VAR"), 7u);
  ::unsetenv("CAFA_TEST_POOL_VAR");
  // With neither a request nor the env var, fall back to hardware
  // concurrency (at least 1), capped at 256.
  unsigned Auto = resolveWorkerThreads(0, "CAFA_TEST_POOL_VAR");
  EXPECT_GE(Auto, 1u);
  EXPECT_LE(Auto, 256u);
  EXPECT_EQ(resolveWorkerThreads(100000, "CAFA_TEST_POOL_VAR"), 256u);
}

TEST(WorkerPoolTest, ResolveIgnoresGarbageEnvValues) {
  for (const char *Bad : {"", "zero", "-3", "0"}) {
    ::setenv("CAFA_TEST_POOL_VAR", Bad, 1);
    unsigned Got = resolveWorkerThreads(0, "CAFA_TEST_POOL_VAR");
    EXPECT_GE(Got, 1u) << "env value \"" << Bad << "\"";
    EXPECT_LE(Got, 256u) << "env value \"" << Bad << "\"";
  }
  ::unsetenv("CAFA_TEST_POOL_VAR");
}

TEST(WorkerPoolTest, AnalysisKnobReadsItsEnvVar) {
  ::setenv("CAFA_ANALYSIS_THREADS", "5", 1);
  EXPECT_EQ(resolveAnalysisThreads(0), 5u);
  EXPECT_EQ(resolveAnalysisThreads(2), 2u);
  ::unsetenv("CAFA_ANALYSIS_THREADS");
}

} // namespace
