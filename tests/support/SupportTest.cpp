//===- tests/support/SupportTest.cpp ------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/Ids.h"
#include "support/Rng.h"
#include "support/Status.h"
#include "support/StringInterner.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace cafa;

namespace {

// --- Ids ----------------------------------------------------------------

TEST(IdsTest, InvalidSentinel) {
  TaskId Id;
  EXPECT_FALSE(Id.isValid());
  EXPECT_EQ(Id, TaskId::invalid());
  TaskId Valid(0);
  EXPECT_TRUE(Valid.isValid());
  EXPECT_NE(Valid, Id);
}

TEST(IdsTest, OrderingAndHash) {
  EXPECT_LT(TaskId(1), TaskId(2));
  EXPECT_LE(TaskId(2), TaskId(2));
  EXPECT_GT(TaskId(3), TaskId(2));
  std::unordered_set<TaskId> Set;
  Set.insert(TaskId(7));
  EXPECT_TRUE(Set.count(TaskId(7)));
  EXPECT_FALSE(Set.count(TaskId(8)));
}

TEST(IdsTest, DistinctIdSpacesDoNotMix) {
  // Compile-time property: TaskId and QueueId are unrelated types.
  static_assert(!std::is_convertible_v<TaskId, QueueId>,
                "id spaces must not convert into each other");
  static_assert(!std::is_convertible_v<uint32_t, TaskId>,
                "raw integers must not implicitly become ids");
  SUCCEED();
}

// --- Status / Expected -----------------------------------------------------

TEST(StatusTest, SuccessAndError) {
  Status Ok;
  EXPECT_TRUE(Ok.ok());
  EXPECT_TRUE(Ok.message().empty());
  Status Err = Status::error("file is corrupt");
  EXPECT_FALSE(Err.ok());
  EXPECT_EQ(Err.message(), "file is corrupt");
}

TEST(StatusTest, ExpectedHoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(*E, 42);
  EXPECT_EQ(E.take(), 42);
}

TEST(StatusTest, ExpectedHoldsError) {
  Expected<int> E(Status::error("nope"));
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.status().message(), "nope");
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng R(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.below(Bound), Bound);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng R(11);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.chance(1, 4);
  EXPECT_GT(Hits, 2100);
  EXPECT_LT(Hits, 2900);
}

// --- Format ---------------------------------------------------------------------

TEST(FormatTest, FormatString) {
  EXPECT_EQ(formatString("x=%d y=%s", 5, "ok"), "x=5 y=ok");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(FormatTest, ThousandsSeparator) {
  EXPECT_EQ(withThousandsSep(0), "0");
  EXPECT_EQ(withThousandsSep(999), "999");
  EXPECT_EQ(withThousandsSep(1000), "1,000");
  EXPECT_EQ(withThousandsSep(1664), "1,664");
  EXPECT_EQ(withThousandsSep(1234567890), "1,234,567,890");
}

TEST(FormatTest, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abc");
  EXPECT_EQ(padRight("abcdef", 3), "abc");
}

// --- StringInterner -----------------------------------------------------------

TEST(StringInternerTest, InternsAndDeduplicates) {
  StringInterner Pool;
  StrId A = Pool.intern("onPause");
  StrId B = Pool.intern("onResume");
  StrId A2 = Pool.intern("onPause");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_EQ(Pool.str(A), "onPause");
  EXPECT_EQ(Pool.str(B), "onResume");
  EXPECT_EQ(Pool.size(), 2u);
}

TEST(StringInternerTest, EmptyAndLongStrings) {
  StringInterner Pool;
  StrId Empty = Pool.intern("");
  EXPECT_EQ(Pool.str(Empty), "");
  std::string Long(5000, 'x');
  StrId L = Pool.intern(Long);
  EXPECT_EQ(Pool.str(L), Long);
}

// --- Timer -----------------------------------------------------------------------

TEST(TimerTest, ElapsedIsMonotonic) {
  Timer T;
  uint64_t W1 = T.elapsedWallNanos();
  uint64_t W2 = T.elapsedWallNanos();
  EXPECT_LE(W1, W2);
  T.restart();
  // After restart the counter starts over (can only check it is small
  // relative to a second).
  EXPECT_LT(T.elapsedWallMillis(), 1000.0);
}

} // namespace
