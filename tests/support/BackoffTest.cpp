//===- tests/support/BackoffTest.cpp ------------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The retry-delay schedule the fleet supervisor leans on: exponential
// growth, a hard cap no jittered delay may pierce, bit-determinism
// under a seeded Rng, and the zero-sleep fast path chaos tests use to
// retry instantly.
//
//===----------------------------------------------------------------------===//

#include "support/Backoff.h"

#include <gtest/gtest.h>

#include <vector>

using namespace cafa;

namespace {

TEST(BackoffTest, GrowsExponentiallyWithoutJitter) {
  BackoffPolicy P;
  P.InitialMillis = 10;
  P.MaxMillis = 1000;
  P.Multiplier = 2.0;
  P.JitterFraction = 0; // exact schedule
  Backoff B(P);
  EXPECT_DOUBLE_EQ(B.nextDelayMillis(), 10);
  EXPECT_DOUBLE_EQ(B.nextDelayMillis(), 20);
  EXPECT_DOUBLE_EQ(B.nextDelayMillis(), 40);
  EXPECT_DOUBLE_EQ(B.nextDelayMillis(), 80);
  EXPECT_EQ(B.attempts(), 4u);
}

TEST(BackoffTest, CapIsRespectedEvenOnLongFailureStreaks) {
  BackoffPolicy P;
  P.InitialMillis = 100;
  P.MaxMillis = 1500;
  P.Multiplier = 3.0;
  P.JitterFraction = 0.5;
  Backoff B(P);
  // 200 attempts would overflow pow(); the schedule must saturate.
  for (int I = 0; I < 200; ++I) {
    double D = B.nextDelayMillis();
    EXPECT_LE(D, P.MaxMillis) << "attempt " << I;
    EXPECT_GE(D, 0) << "attempt " << I;
  }
  // Once saturated, jitter still keeps delays in [cap/2, cap].
  double Tail = B.nextDelayMillis();
  EXPECT_GE(Tail, P.MaxMillis * (1 - P.JitterFraction));
  EXPECT_LE(Tail, P.MaxMillis);
}

TEST(BackoffTest, JitterNeverInflatesADelay) {
  // Subtractive jitter: every delay lands in [base*(1-j), base] where
  // base is the unjittered schedule value.
  BackoffPolicy Exact;
  Exact.InitialMillis = 50;
  Exact.MaxMillis = 10000;
  Exact.JitterFraction = 0;
  BackoffPolicy Jittered = Exact;
  Jittered.JitterFraction = 0.25;
  Backoff Ref(Exact), B(Jittered);
  for (int I = 0; I < 12; ++I) {
    double Base = Ref.nextDelayMillis();
    double D = B.nextDelayMillis();
    EXPECT_LE(D, Base) << "attempt " << I;
    EXPECT_GE(D, Base * 0.75) << "attempt " << I;
  }
}

TEST(BackoffTest, DeterministicUnderSeededRng) {
  BackoffPolicy P;
  P.Seed = 0xFEEDF00Dull;
  auto Draw = [&P] {
    Backoff B(P);
    std::vector<double> Delays;
    for (int I = 0; I < 16; ++I)
      Delays.push_back(B.nextDelayMillis());
    return Delays;
  };
  // Same policy, same seed: the jittered sequence replays exactly.
  EXPECT_EQ(Draw(), Draw());

  // A different seed decorrelates (the fleet derives one per job so a
  // batch of failing jobs does not retry in lockstep).
  BackoffPolicy Q = P;
  Q.Seed = P.Seed + 1;
  Backoff A(P), B(Q);
  bool Differs = false;
  for (int I = 0; I < 16; ++I)
    Differs |= A.nextDelayMillis() != B.nextDelayMillis();
  EXPECT_TRUE(Differs);
}

TEST(BackoffTest, ZeroInitialIsTheZeroSleepFastPath) {
  BackoffPolicy P;
  P.InitialMillis = 0;
  Backoff B(P);
  for (int I = 0; I < 8; ++I)
    EXPECT_DOUBLE_EQ(B.nextDelayMillis(), 0) << "attempt " << I;
  EXPECT_EQ(B.attempts(), 8u);

  // The fast path must not consult the RNG: two instances with
  // *different* seeds emit identical (all-zero) schedules, so chaos
  // tests that retry instantly stay deterministic regardless of seed.
  BackoffPolicy Q = P;
  Q.Seed = P.Seed ^ 0xABCDEFull;
  Backoff C(P), D(Q);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(C.nextDelayMillis(), D.nextDelayMillis());
}

TEST(BackoffTest, ResetRestartsTheGrowthLadder) {
  BackoffPolicy P;
  P.InitialMillis = 10;
  P.JitterFraction = 0;
  Backoff B(P);
  B.nextDelayMillis();
  B.nextDelayMillis();
  ASSERT_EQ(B.attempts(), 2u);
  B.reset();
  EXPECT_EQ(B.attempts(), 0u);
  EXPECT_DOUBLE_EQ(B.nextDelayMillis(), 10); // back at the initial delay
}

} // namespace
