//===- bench/offline_scaling.cpp - Section 6.4 analysis-time scaling ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Section 6.4 observation: offline analysis time grows
// superlinearly with the number of events in a trace (the paper saw 30
// minutes to 10 hours for most apps and ~16 h / ~1 day for the
// event-heavy ToDoList and Music).  We sweep a synthetic app over event
// counts and report the analysis phase breakdown (access extraction,
// happens-before construction incl. the fixpoint, race detection) and
// the happens-before memory footprint -- once with the full-rebuild
// closure oracle (the original implementation) and once with the
// incremental closure (the default), so the sweep doubles as the
// before/after curve for the delta-propagation engine.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "support/Format.h"
#include "support/Timer.h"
#include "trace/FaultInjector.h"
#include "trace/IngestSession.h"
#include "trace/TraceIO.h"

#include <cstdio>
#include <string>
#include <thread>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// Builds a synthetic app with \p Events events and a representative mix
/// of seeds.
Scenario buildSynthetic(uint64_t Events) {
  AppBuilder App("synthetic");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.seedConventionalRace("gamma");
  App.seedFlagGuardedFp("delta");
  App.addNaiveNoise(16, 4, 3);
  App.fillVolumeTo(Events, /*WorkPerTick=*/1);
  Table1Row Dummy;
  return App.finish(Dummy).S;
}

/// Corrupted-input axis: how salvage cost, analysis cost, and the
/// report respond as an increasing fraction of a serialized trace is
/// damaged.  Calibrates the SalvageOptions error-budget defaults: the
/// sweep shows where reports stop being trustworthy, which is where the
/// budget should start rejecting (see EXPERIMENTS.md).
void sweepCorruption(const Trace &Pristine) {
  std::string Text = serializeTrace(Pristine);
  size_t Lines = 1;
  for (char C : Text)
    Lines += C == '\n';

  DetectorOptions Opt; // defaults: the configuration users actually run
  AnalysisResult Base = analyzeTrace(Pristine, Opt);
  std::string BaseJson = renderRaceReportJson(Base.Report, Pristine);

  std::printf("\ncorrupted-input axis (%s records, %s lines, default "
              "SalvageOptions):\n",
              withThousandsSep(Pristine.numRecords()).c_str(),
              withThousandsSep(Lines).c_str());
  std::printf("%8s %10s %10s %12s %12s %8s %8s %10s\n", "damage",
              "incidents", "dropped", "salvage(ms)", "analyze(ms)",
              "races", "delta", "verdict");

  const double Ratios[] = {0,    0.001, 0.005, 0.01, 0.05,
                           0.10, 0.25,  0.40,  0.60};
  for (double Ratio : Ratios) {
    // Damage ~Ratio of the lines, rotating through the line-local fault
    // families (cumulative TruncateAtOffset would collapse the stream
    // and measure truncation depth, not damage ratio).  Seeds are
    // fixed, so a surprising row is directly replayable.
    std::string Damaged = Text;
    uint64_t Faults = static_cast<uint64_t>(Ratio * Lines);
    for (uint64_t I = 0; I != Faults; ++I) {
      FaultKind Kind = static_cast<FaultKind>(1 + I % (NumFaultKinds - 1));
      Damaged = injectFault(Damaged, Kind, /*Seed=*/0x5eed + I).Text;
    }

    Timer SalvageTime;
    Trace T;
    IngestReport Ingest;
    Status S = ingestTrace(Damaged, T, Ingest);
    double SalvageMs = SalvageTime.elapsedWallMillis();
    if (!S.ok()) {
      std::printf("%7.1f%% %10s %10s %12.1f %12s %8s %8s %10s\n",
                  Ratio * 100,
                  withThousandsSep(Ingest.IncidentsTotal).c_str(),
                  withThousandsSep(Ingest.LinesDropped).c_str(),
                  SalvageMs, "-", "-", "-", "rejected");
      continue;
    }

    Timer AnalyzeTime;
    AnalysisResult R = analyzeTrace(T, Opt);
    double AnalyzeMs = AnalyzeTime.elapsedWallMillis();
    long Delta = static_cast<long>(R.Report.Races.size()) -
                 static_cast<long>(Base.Report.Races.size());
    const char *Verdict =
        Ratio == 0 ? (renderRaceReportJson(R.Report, T) == BaseJson
                          ? "identical"
                          : "DIFFERS")
                   : (Delta == 0 ? "same-count" : "drifted");
    std::printf("%7.1f%% %10s %10s %12.1f %12.1f %8zu %+8ld %10s\n",
                Ratio * 100,
                withThousandsSep(Ingest.IncidentsTotal).c_str(),
                withThousandsSep(Ingest.LinesDropped).c_str(), SalvageMs,
                AnalyzeMs, R.Report.Races.size(), Delta, Verdict);
  }
}

/// Ingest thread-count axis: wall time and speedup of sharded salvage
/// ingestion at 1/2/4/8 lexer threads over the same serialized dump,
/// with the bit-identity contract checked on every row (serialized
/// trace and report summary must match the 1-thread reference exactly).
/// Speedup is relative to the 1-thread sharded run; rows beyond the
/// machine's core count cannot speed up and say so honestly.
void sweepIngestThreads(const Trace &Pristine) {
  std::string Text = serializeTrace(Pristine);
  size_t Lines = 1;
  for (char C : Text)
    Lines += C == '\n';

  // Small shards so even this bench-sized dump splits into enough
  // pieces to keep every worker busy.
  IngestOptions Base;
  Base.ShardBytes = 64 << 10;

  std::printf("\ningest thread axis (%s lines, %s bytes, %u hardware "
              "threads, %llu-byte shards):\n",
              withThousandsSep(Lines).c_str(),
              withThousandsSep(Text.size()).c_str(),
              std::thread::hardware_concurrency(),
              static_cast<unsigned long long>(Base.ShardBytes));
  std::printf("%8s %12s %8s %10s\n", "threads", "ingest(ms)", "speedup",
              "verdict");

  std::string RefText;
  std::string RefSummary;
  double RefMs = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    IngestOptions IOpt = Base;
    IOpt.Threads = Threads;

    // Median of three: ingest at these sizes is milliseconds, where a
    // single stray scheduler tick would otherwise dominate the row.
    double BestMs = 0;
    Trace T;
    IngestReport Report;
    for (int Rep = 0; Rep != 3; ++Rep) {
      Trace Candidate;
      IngestReport CandReport;
      Timer IngestTime;
      Status S = ingestTrace(Text, Candidate, CandReport, IOpt);
      double Ms = IngestTime.elapsedWallMillis();
      if (!S.ok()) {
        std::printf("%8u %12s %8s %10s\n", Threads, "-", "-", "FAILED");
        return;
      }
      if (Rep == 0 || Ms < BestMs) {
        BestMs = Ms;
        T = std::move(Candidate);
        Report = CandReport;
      }
    }

    std::string GotText = serializeTrace(T);
    std::string GotSummary = Report.summary();
    const char *Verdict;
    if (Threads == 1) {
      RefText = std::move(GotText);
      RefSummary = std::move(GotSummary);
      RefMs = BestMs;
      Verdict = "reference";
    } else {
      Verdict = (GotText == RefText && GotSummary == RefSummary)
                    ? "identical"
                    : "DIFFERS";
    }
    double Speedup = BestMs > 0 ? RefMs / BestMs : 0;
    std::printf("%8u %12.1f %7.2fx %10s\n", Threads, BestMs, Speedup,
                Verdict);
  }
}

/// Analysis thread-count axis: wall time of the happens-before build
/// (closure sweeps + rule-engine scans) and the detector pair scan at
/// 1/2/4/8 analysis threads, with the bit-identity contract checked on
/// every row -- the rendered JSON report must match the 1-thread
/// reference byte for byte.  Speedup is relative to the 1-thread run;
/// rows beyond the machine's core count cannot speed up and say so
/// honestly.
void sweepAnalysisThreads(const Trace &T) {
  std::printf("\nanalysis thread axis (%s records, %u hardware "
              "threads):\n",
              withThousandsSep(T.numRecords()).c_str(),
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %12s %10s %8s %10s\n", "threads", "hb(ms)",
              "detect(ms)", "total(ms)", "speedup", "verdict");

  std::string RefJson;
  double RefHbMs = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    DetectorOptions Opt;
    Opt.Hb.Threads = Threads;

    // Median-of-three (best-of, really): at bench sizes a stray
    // scheduler tick would otherwise dominate the row.
    double BestHb = 0, BestDetect = 0, BestTotal = 0;
    std::string Json;
    for (int Rep = 0; Rep != 3; ++Rep) {
      Timer Total;
      AnalysisResult R = analyzeTrace(T, Opt);
      double TotalMs = Total.elapsedWallMillis();
      if (Rep == 0 || R.HbBuildMillis < BestHb) {
        BestHb = R.HbBuildMillis;
        BestDetect = R.DetectMillis;
        BestTotal = TotalMs;
        Json = renderRaceReportJson(R.Report, T);
      }
    }

    const char *Verdict;
    if (Threads == 1) {
      RefJson = std::move(Json);
      RefHbMs = BestHb;
      Verdict = "reference";
    } else {
      Verdict = Json == RefJson ? "identical" : "DIFFERS";
    }
    double Speedup = BestHb > 0 ? RefHbMs / BestHb : 0;
    std::printf("%8u %10.1f %12.1f %10.1f %7.2fx %10s\n", Threads, BestHb,
                BestDetect, BestTotal, Speedup, Verdict);
  }
}

/// Checkpoint cadence axis: analysis wall time with cadence saves at
/// several --checkpoint-every settings (0 = checkpointing off), plus a
/// cut-then-resume row.  The overhead column calibrates the default
/// cadence documented in EXPERIMENTS.md; the resume row re-checks the
/// bit-identity contract under a real mid-scan cut.
void sweepCheckpointCadence(const Trace &T) {
  std::string Dir = "/tmp/cafa_bench_ckpt";
  ::system(("mkdir -p " + Dir).c_str());

  DetectorOptions Opt; // defaults
  Timer BaseTime;
  AnalysisResult Base = analyzeTrace(T, Opt);
  double BaseMs = BaseTime.elapsedWallMillis();
  std::string BaseJson = renderRaceReportJson(Base.Report, T);

  std::printf("\ncheckpoint cadence axis (%s records, baseline "
              "%.1f ms):\n",
              withThousandsSep(T.numRecords()).c_str(), BaseMs);
  std::printf("%12s %12s %10s %10s\n", "cadence(ms)", "analyze(ms)",
              "overhead", "verdict");

  for (double Every : {5.0, 20.0, 100.0}) {
    std::remove(checkpointPath(Dir).c_str());
    AnalysisOptions AOpt(Opt);
    AOpt.Checkpoint.Directory = Dir;
    AOpt.Checkpoint.EveryMillis = Every;
    Timer Time;
    AnalysisResult R = analyzeTrace(T, AOpt);
    double Ms = Time.elapsedWallMillis();
    double Overhead = BaseMs > 0 ? (Ms - BaseMs) / BaseMs * 100 : 0;
    const char *Verdict =
        renderRaceReportJson(R.Report, T) == BaseJson ? "identical"
                                                      : "DIFFERS";
    std::printf("%12.0f %12.1f %+9.1f%% %10s\n", Every, Ms, Overhead,
                Verdict);
  }

  // Cut mid-analysis with a deadline, then resume to completion: the
  // resumed report must match the uninterrupted baseline byte for byte.
  std::remove(checkpointPath(Dir).c_str());
  DetectorOptions Tiny = Opt;
  Tiny.DeadlineMillis = 1e-6;
  AnalysisOptions CutOpt(Tiny);
  CutOpt.Checkpoint.Directory = Dir;
  Timer CutTime;
  AnalysisResult Cut = analyzeTrace(T, CutOpt);
  double CutMs = CutTime.elapsedWallMillis();

  AnalysisOptions ResumeOpt(Opt);
  ResumeOpt.Checkpoint.Directory = Dir;
  ResumeOpt.Checkpoint.Resume = true;
  Timer ResumeTime;
  AnalysisResult Resumed = analyzeTrace(T, ResumeOpt);
  double ResumeMs = ResumeTime.elapsedWallMillis();
  const char *Verdict = !Cut.Report.Partial ? "not-cut"
                        : renderRaceReportJson(Resumed.Report, T) == BaseJson
                            ? "identical"
                            : "DIFFERS";
  std::printf("%12s %12.1f %+9.1f%% %10s  (cut %.1f ms + resume)\n",
              "cut+resume", CutMs + ResumeMs,
              BaseMs > 0 ? (CutMs + ResumeMs - BaseMs) / BaseMs * 100 : 0,
              Verdict, CutMs);
  std::remove(checkpointPath(Dir).c_str());
}

} // namespace

int main(int argc, char **argv) {
  uint64_t MaxEvents = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 8000;

  std::printf("%8s %10s %12s %14s %14s %8s %12s %12s\n", "events",
              "records", "extract(ms)", "hb-rebuild(ms)", "hb-incr(ms)",
              "speedup", "detect(ms)", "hb-mem(MB)");
  for (uint64_t Events = 500; Events <= MaxEvents; Events *= 2) {
    Scenario S = buildSynthetic(Events);
    Trace T = runScenario(S, RuntimeOptions());

    DetectorOptions Rebuild;
    Rebuild.Hb.Reach = ReachMode::Closure;
    AnalysisResult Before = analyzeTrace(T, Rebuild);

    DetectorOptions Incremental;
    Incremental.Hb.Reach = ReachMode::Incremental;
    AnalysisResult After = analyzeTrace(T, Incremental);

    double Speedup = After.HbBuildMillis > 0
                         ? Before.HbBuildMillis / After.HbBuildMillis
                         : 0.0;
    std::printf("%8s %10s %12.1f %14.1f %14.1f %7.2fx %12.1f %12.1f\n",
                withThousandsSep(Events).c_str(),
                withThousandsSep(T.numRecords()).c_str(),
                After.ExtractMillis, Before.HbBuildMillis,
                After.HbBuildMillis, Speedup, After.DetectMillis,
                static_cast<double>(After.HbMemoryBytes) / 1e6);
  }
  std::printf("\nshape to compare with the paper: happens-before "
              "construction dominates and grows superlinearly in events;\n"
              "the incremental oracle shrinks the constant (same reports, "
              "same asymptote of the quadratic rule scans)\n");

  // Fixed-size trace for the corruption sweep: the axis of interest is
  // damage ratio, not event count.
  Trace T = runScenario(buildSynthetic(2000), RuntimeOptions());
  sweepCorruption(T);

  // Thread axes over the largest swept trace, so the shards / queue
  // scans are big enough for the workers to have real work.
  Trace Large = runScenario(buildSynthetic(MaxEvents), RuntimeOptions());
  sweepIngestThreads(Large);
  sweepAnalysisThreads(Large);
  sweepCheckpointCadence(Large);
  return 0;
}
