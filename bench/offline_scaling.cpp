//===- bench/offline_scaling.cpp - Section 6.4 analysis-time scaling ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Section 6.4 observation: offline analysis time grows
// superlinearly with the number of events in a trace (the paper saw 30
// minutes to 10 hours for most apps and ~16 h / ~1 day for the
// event-heavy ToDoList and Music).  We sweep a synthetic app over event
// counts and report the analysis phase breakdown (access extraction,
// happens-before construction incl. the fixpoint, race detection) and
// the happens-before memory footprint -- once with the full-rebuild
// closure oracle (the original implementation) and once with the
// incremental closure (the default), so the sweep doubles as the
// before/after curve for the delta-propagation engine.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "support/Format.h"
#include "support/Timer.h"
#include "trace/FaultInjector.h"
#include "trace/TraceBuilder.h"
#include "trace/IngestSession.h"
#include "trace/TraceIO.h"

#include <cstdio>
#include <string>
#include <thread>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// Builds a synthetic app with \p Events events and a representative mix
/// of seeds.
Scenario buildSynthetic(uint64_t Events) {
  AppBuilder App("synthetic");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.seedConventionalRace("gamma");
  App.seedFlagGuardedFp("delta");
  App.addNaiveNoise(16, 4, 3);
  App.fillVolumeTo(Events, /*WorkPerTick=*/1);
  Table1Row Dummy;
  return App.finish(Dummy).S;
}

/// Builds a fully chainable event trace with \p Events event tasks
/// spread over a handful of loopers: every queue has exactly one
/// poster (each handler posts its own successor with no delay), so
/// queue-FIFO order coincides with post order, every consecutive pair
/// is covered by a post edge, and the happens-before relation is a
/// union of a few long chains.  This is the shape the chain oracle is
/// built for -- the greedy cover finds one chain per looper -- and the
/// shape where the closure-family oracles drown in O(N^2 / 8) row
/// bytes.  A small cross-looper use/free on one object seeds real
/// races so the detector scan is exercised, not skipped.
Trace buildChainable(uint64_t Events) {
  TraceBuilder TB;
  MethodId M = TB.addMethod("handler", 128);
  const uint32_t NumQueues = 4;
  const uint64_t PerQueue = Events / NumQueues;

  TaskId Main = TB.addThread("main");
  std::vector<std::vector<TaskId>> Evs(NumQueues);
  for (uint32_t Q = 0; Q != NumQueues; ++Q) {
    QueueId Qu = TB.addQueue("looper" + std::to_string(Q));
    Evs[Q].reserve(PerQueue);
    for (uint64_t I = 0; I != PerQueue; ++I)
      Evs[Q].push_back(TB.addEvent("e", Qu));
  }

  // The main thread seeds each looper's first event; everything after
  // that is self-posted.
  TB.begin(Main);
  for (uint32_t Q = 0; Q != NumQueues; ++Q)
    TB.send(Main, Evs[Q][0]);
  TB.end(Main);

  for (uint32_t Q = 0; Q != NumQueues; ++Q) {
    for (uint64_t I = 0; I != PerQueue; ++I) {
      TaskId E = Evs[Q][I];
      TB.begin(E);
      // Mid-chain accesses to one shared object: looper 0 uses it,
      // looper 1 frees it.  The pairs sit on different loopers whose
      // only common ancestor is main, so they race.
      if (I == PerQueue / 2 && Q == 0) {
        TB.ptrRead(E, /*Var=*/5, /*Object=*/9, M, 1);
        TB.deref(E, /*Object=*/9, DerefKind::Invoke, M, 2);
      }
      if (I == PerQueue / 2 && Q == 1)
        TB.ptrWrite(E, /*Var=*/5, /*Object=*/0, M, 3);
      if (I + 1 != PerQueue)
        TB.send(E, Evs[Q][I + 1]);
      TB.end(E);
    }
  }
  return TB.take();
}

/// Chain-oracle scaling axis ("breaking the quadratic wall" in
/// EXPERIMENTS.md): analysis cost and happens-before memory under
/// ReachMode::Chain on chainable traces from 8k up to \p MaxEvents
/// (default 1M) event tasks.  The bytes/event column is the honesty
/// check on the O(N * chains) memory claim -- it must stay flat while
/// events grow 125x.  Rows small enough for the closure-family oracles
/// also run those and byte-compare the reports: Incremental at <= 8k
/// (its row bytes pass 2 GB long before 250k), Bfs at <= 100k (its
/// per-query cost makes the rule scans quadratic past that).
void sweepChainScaling(uint64_t MaxEvents) {
  const uint64_t BfsVerifyMax = 100000;
  const uint64_t IncVerifyMax = 8000;

  std::printf("\nchain-oracle scaling axis (single-poster chainable "
              "traces, 1 analysis thread):\n");
  std::printf("%10s %10s %7s %10s %12s %11s %9s %14s\n", "events",
              "records", "chains", "hb(ms)", "detect(ms)", "hb-mem(MB)",
              "B/event", "verdict");

  for (uint64_t Events : {uint64_t(8000), uint64_t(100000),
                          uint64_t(250000), uint64_t(500000),
                          uint64_t(1000000)}) {
    if (Events > MaxEvents)
      break;
    Trace T = buildChainable(Events);

    DetectorOptions ChainOpt;
    ChainOpt.Hb.Reach = ReachMode::Chain;
    AnalysisResult R = analyzeTrace(T, ChainOpt);
    std::string Json = renderRaceReportJson(R.Report, T);

    std::string Verdict = "reference";
    std::string CrossModes;
    if (Events <= BfsVerifyMax) {
      DetectorOptions BfsOpt;
      BfsOpt.Hb.Reach = ReachMode::Bfs;
      AnalysisResult B = analyzeTrace(T, BfsOpt);
      Verdict = renderRaceReportJson(B.Report, T) == Json ? "=bfs"
                                                          : "DIFFERS(bfs)";
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "  [bfs hb=%.1fms mem=%.1fMB]",
                    B.HbBuildMillis,
                    static_cast<double>(B.HbMemoryBytes) / 1e6);
      CrossModes += Buf;
      if (Events <= IncVerifyMax) {
        DetectorOptions IncOpt;
        IncOpt.Hb.Reach = ReachMode::Incremental;
        AnalysisResult I = analyzeTrace(T, IncOpt);
        Verdict += renderRaceReportJson(I.Report, T) == Json
                       ? ",=incr"
                       : ",DIFFERS(incr)";
        std::snprintf(Buf, sizeof(Buf), " [incr hb=%.1fms mem=%.1fMB]",
                      I.HbBuildMillis,
                      static_cast<double>(I.HbMemoryBytes) / 1e6);
        CrossModes += Buf;
      }
    }

    double PerEvent =
        Events ? static_cast<double>(R.HbMemoryBytes) / Events : 0;
    std::printf("%10s %10s %7zu %10.1f %12.1f %11.1f %9.1f %14s%s\n",
                withThousandsSep(Events).c_str(),
                withThousandsSep(T.numRecords()).c_str(),
                R.Degradation.ChainCount, R.HbBuildMillis, R.DetectMillis,
                static_cast<double>(R.HbMemoryBytes) / 1e6, PerEvent,
                Verdict.c_str(),
                R.Degradation.UsedReach == ReachMode::Chain
                    ? CrossModes.c_str()
                    : "  [DOWNGRADED]");
    if (R.Report.Races.empty())
      std::printf("%10s seeded race missing -- trace shape regressed\n",
                  "!!");
  }
  std::printf("flat B/event is the O(N * chains) memory contract; "
              "hb(ms) growth near 1x per 2x events is the near-linear "
              "claim\n");
}

/// Windowed-scan axis ("Bounding the memory wall" in EXPERIMENTS.md):
/// detector wall time and analysis-overlay high-water at retirement
/// cadences 4k / 64k / full (the batch scan) over the chainable
/// family, chain HB oracle on every row so the only variable is the
/// detector path.  The overlay high-water column is the honesty check
/// on the bounded-memory claim -- it must stay flat while events grow
/// 125x -- and every windowed report is byte-compared against the
/// batch reference (the window is a memory knob, never a result
/// knob).  detect(ms) against the full row is the streaming overhead.
void sweepWindowScaling(uint64_t MaxEvents) {
  std::printf("\nwindowed-scan axis (single-poster chainable traces, "
              "chain HB oracle, 1 analysis thread):\n");
  std::printf("%10s %10s %8s %12s %14s %9s %11s\n", "events", "records",
              "window", "detect(ms)", "overlay-hw(KB)", "rows-hw",
              "verdict");

  for (uint64_t Events : {uint64_t(8000), uint64_t(100000),
                          uint64_t(1000000)}) {
    if (Events > MaxEvents)
      break;
    Trace T = buildChainable(Events);

    DetectorOptions BatchOpt;
    BatchOpt.Hb.Reach = ReachMode::Chain;
    BatchOpt.WindowEvents = DetectorOptions::WindowOff;
    AnalysisResult Batch = analyzeTrace(T, BatchOpt);
    std::string BatchJson = renderRaceReportJson(Batch.Report, T);
    std::printf("%10s %10s %8s %12.1f %14s %9s %11s\n",
                withThousandsSep(Events).c_str(),
                withThousandsSep(T.numRecords()).c_str(), "full",
                Batch.DetectMillis, "-", "-", "reference");

    for (uint64_t W : {uint64_t(4096), uint64_t(65536)}) {
      DetectorOptions Opt = BatchOpt;
      Opt.WindowEvents = W;
      AnalysisResult R = analyzeTrace(T, Opt);
      const char *Verdict =
          renderRaceReportJson(R.Report, T) == BatchJson ? "identical"
                                                         : "DIFFERS";
      std::printf("%10s %10s %8s %12.1f %14.1f %9zu %11s\n",
                  withThousandsSep(Events).c_str(),
                  withThousandsSep(T.numRecords()).c_str(),
                  withThousandsSep(W).c_str(), R.DetectMillis,
                  static_cast<double>(
                      R.WindowedDetect.OverlayHighWaterBytes) /
                      1e3,
                  R.WindowedDetect.ReachHighWaterRows, Verdict);
    }
  }
  std::printf("flat overlay-hw across 125x events is the bounded-memory "
              "contract; identical verdicts are the window-invariance "
              "contract\n");
}

/// Corrupted-input axis: how salvage cost, analysis cost, and the
/// report respond as an increasing fraction of a serialized trace is
/// damaged.  Calibrates the SalvageOptions error-budget defaults: the
/// sweep shows where reports stop being trustworthy, which is where the
/// budget should start rejecting (see EXPERIMENTS.md).
void sweepCorruption(const Trace &Pristine) {
  std::string Text = serializeTrace(Pristine);
  size_t Lines = 1;
  for (char C : Text)
    Lines += C == '\n';

  DetectorOptions Opt; // defaults: the configuration users actually run
  AnalysisResult Base = analyzeTrace(Pristine, Opt);
  std::string BaseJson = renderRaceReportJson(Base.Report, Pristine);

  std::printf("\ncorrupted-input axis (%s records, %s lines, default "
              "SalvageOptions):\n",
              withThousandsSep(Pristine.numRecords()).c_str(),
              withThousandsSep(Lines).c_str());
  std::printf("%8s %10s %10s %12s %12s %8s %8s %10s\n", "damage",
              "incidents", "dropped", "salvage(ms)", "analyze(ms)",
              "races", "delta", "verdict");

  const double Ratios[] = {0,    0.001, 0.005, 0.01, 0.05,
                           0.10, 0.25,  0.40,  0.60};
  for (double Ratio : Ratios) {
    // Damage ~Ratio of the lines, rotating through the line-local fault
    // families (cumulative TruncateAtOffset would collapse the stream
    // and measure truncation depth, not damage ratio).  Seeds are
    // fixed, so a surprising row is directly replayable.
    std::string Damaged = Text;
    uint64_t Faults = static_cast<uint64_t>(Ratio * Lines);
    for (uint64_t I = 0; I != Faults; ++I) {
      FaultKind Kind = static_cast<FaultKind>(1 + I % (NumFaultKinds - 1));
      Damaged = injectFault(Damaged, Kind, /*Seed=*/0x5eed + I).Text;
    }

    Timer SalvageTime;
    Trace T;
    IngestReport Ingest;
    Status S = ingestTrace(Damaged, T, Ingest);
    double SalvageMs = SalvageTime.elapsedWallMillis();
    if (!S.ok()) {
      std::printf("%7.1f%% %10s %10s %12.1f %12s %8s %8s %10s\n",
                  Ratio * 100,
                  withThousandsSep(Ingest.IncidentsTotal).c_str(),
                  withThousandsSep(Ingest.LinesDropped).c_str(),
                  SalvageMs, "-", "-", "-", "rejected");
      continue;
    }

    Timer AnalyzeTime;
    AnalysisResult R = analyzeTrace(T, Opt);
    double AnalyzeMs = AnalyzeTime.elapsedWallMillis();
    long Delta = static_cast<long>(R.Report.Races.size()) -
                 static_cast<long>(Base.Report.Races.size());
    const char *Verdict =
        Ratio == 0 ? (renderRaceReportJson(R.Report, T) == BaseJson
                          ? "identical"
                          : "DIFFERS")
                   : (Delta == 0 ? "same-count" : "drifted");
    std::printf("%7.1f%% %10s %10s %12.1f %12.1f %8zu %+8ld %10s\n",
                Ratio * 100,
                withThousandsSep(Ingest.IncidentsTotal).c_str(),
                withThousandsSep(Ingest.LinesDropped).c_str(), SalvageMs,
                AnalyzeMs, R.Report.Races.size(), Delta, Verdict);
  }
}

/// Ingest thread-count axis: wall time and speedup of sharded salvage
/// ingestion at 1/2/4/8 lexer threads over the same serialized dump,
/// with the bit-identity contract checked on every row (serialized
/// trace and report summary must match the 1-thread reference exactly).
/// Speedup is relative to the 1-thread sharded run; rows beyond the
/// machine's core count cannot speed up and say so honestly.
void sweepIngestThreads(const Trace &Pristine) {
  std::string Text = serializeTrace(Pristine);
  size_t Lines = 1;
  for (char C : Text)
    Lines += C == '\n';

  // Small shards so even this bench-sized dump splits into enough
  // pieces to keep every worker busy.
  IngestOptions Base;
  Base.ShardBytes = 64 << 10;

  std::printf("\ningest thread axis (%s lines, %s bytes, %u hardware "
              "threads, %llu-byte shards):\n",
              withThousandsSep(Lines).c_str(),
              withThousandsSep(Text.size()).c_str(),
              std::thread::hardware_concurrency(),
              static_cast<unsigned long long>(Base.ShardBytes));
  std::printf("%8s %12s %8s %10s\n", "threads", "ingest(ms)", "speedup",
              "verdict");

  std::string RefText;
  std::string RefSummary;
  double RefMs = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    IngestOptions IOpt = Base;
    IOpt.Threads = Threads;

    // Median of three: ingest at these sizes is milliseconds, where a
    // single stray scheduler tick would otherwise dominate the row.
    double BestMs = 0;
    Trace T;
    IngestReport Report;
    for (int Rep = 0; Rep != 3; ++Rep) {
      Trace Candidate;
      IngestReport CandReport;
      Timer IngestTime;
      Status S = ingestTrace(Text, Candidate, CandReport, IOpt);
      double Ms = IngestTime.elapsedWallMillis();
      if (!S.ok()) {
        std::printf("%8u %12s %8s %10s\n", Threads, "-", "-", "FAILED");
        return;
      }
      if (Rep == 0 || Ms < BestMs) {
        BestMs = Ms;
        T = std::move(Candidate);
        Report = CandReport;
      }
    }

    std::string GotText = serializeTrace(T);
    std::string GotSummary = Report.summary();
    const char *Verdict;
    if (Threads == 1) {
      RefText = std::move(GotText);
      RefSummary = std::move(GotSummary);
      RefMs = BestMs;
      Verdict = "reference";
    } else {
      Verdict = (GotText == RefText && GotSummary == RefSummary)
                    ? "identical"
                    : "DIFFERS";
    }
    double Speedup = BestMs > 0 ? RefMs / BestMs : 0;
    std::printf("%8u %12.1f %7.2fx %10s\n", Threads, BestMs, Speedup,
                Verdict);
  }
}

/// Analysis thread-count axis: wall time of the happens-before build
/// (closure sweeps + rule-engine scans) and the detector pair scan at
/// 1/2/4/8 analysis threads, with the bit-identity contract checked on
/// every row -- the rendered JSON report must match the 1-thread
/// reference byte for byte.  Speedup is relative to the 1-thread run;
/// rows beyond the machine's core count cannot speed up and say so
/// honestly.
void sweepAnalysisThreads(const Trace &T) {
  std::printf("\nanalysis thread axis (%s records, %u hardware "
              "threads):\n",
              withThousandsSep(T.numRecords()).c_str(),
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %12s %10s %8s %10s\n", "threads", "hb(ms)",
              "detect(ms)", "total(ms)", "speedup", "verdict");

  std::string RefJson;
  double RefHbMs = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    DetectorOptions Opt;
    Opt.Hb.Threads = Threads;

    // Median-of-three (best-of, really): at bench sizes a stray
    // scheduler tick would otherwise dominate the row.
    double BestHb = 0, BestDetect = 0, BestTotal = 0;
    std::string Json;
    for (int Rep = 0; Rep != 3; ++Rep) {
      Timer Total;
      AnalysisResult R = analyzeTrace(T, Opt);
      double TotalMs = Total.elapsedWallMillis();
      if (Rep == 0 || R.HbBuildMillis < BestHb) {
        BestHb = R.HbBuildMillis;
        BestDetect = R.DetectMillis;
        BestTotal = TotalMs;
        Json = renderRaceReportJson(R.Report, T);
      }
    }

    const char *Verdict;
    if (Threads == 1) {
      RefJson = std::move(Json);
      RefHbMs = BestHb;
      Verdict = "reference";
    } else {
      Verdict = Json == RefJson ? "identical" : "DIFFERS";
    }
    double Speedup = BestHb > 0 ? RefHbMs / BestHb : 0;
    std::printf("%8u %10.1f %12.1f %10.1f %7.2fx %10s\n", Threads, BestHb,
                BestDetect, BestTotal, Speedup, Verdict);
  }
}

/// Checkpoint cadence axis: analysis wall time with cadence saves at
/// several --checkpoint-every settings (0 = checkpointing off), plus a
/// cut-then-resume row.  The overhead column calibrates the default
/// cadence documented in EXPERIMENTS.md; the resume row re-checks the
/// bit-identity contract under a real mid-scan cut.
void sweepCheckpointCadence(const Trace &T) {
  std::string Dir = "/tmp/cafa_bench_ckpt";
  ::system(("mkdir -p " + Dir).c_str());

  DetectorOptions Opt; // defaults
  Timer BaseTime;
  AnalysisResult Base = analyzeTrace(T, Opt);
  double BaseMs = BaseTime.elapsedWallMillis();
  std::string BaseJson = renderRaceReportJson(Base.Report, T);

  std::printf("\ncheckpoint cadence axis (%s records, baseline "
              "%.1f ms):\n",
              withThousandsSep(T.numRecords()).c_str(), BaseMs);
  std::printf("%12s %12s %10s %10s\n", "cadence(ms)", "analyze(ms)",
              "overhead", "verdict");

  for (double Every : {5.0, 20.0, 100.0}) {
    std::remove(checkpointPath(Dir).c_str());
    AnalysisOptions AOpt(Opt);
    AOpt.Checkpoint.Directory = Dir;
    AOpt.Checkpoint.EveryMillis = Every;
    Timer Time;
    AnalysisResult R = analyzeTrace(T, AOpt);
    double Ms = Time.elapsedWallMillis();
    double Overhead = BaseMs > 0 ? (Ms - BaseMs) / BaseMs * 100 : 0;
    const char *Verdict =
        renderRaceReportJson(R.Report, T) == BaseJson ? "identical"
                                                      : "DIFFERS";
    std::printf("%12.0f %12.1f %+9.1f%% %10s\n", Every, Ms, Overhead,
                Verdict);
  }

  // Cut mid-analysis with a deadline, then resume to completion: the
  // resumed report must match the uninterrupted baseline byte for byte.
  std::remove(checkpointPath(Dir).c_str());
  DetectorOptions Tiny = Opt;
  Tiny.DeadlineMillis = 1e-6;
  AnalysisOptions CutOpt(Tiny);
  CutOpt.Checkpoint.Directory = Dir;
  Timer CutTime;
  AnalysisResult Cut = analyzeTrace(T, CutOpt);
  double CutMs = CutTime.elapsedWallMillis();

  AnalysisOptions ResumeOpt(Opt);
  ResumeOpt.Checkpoint.Directory = Dir;
  ResumeOpt.Checkpoint.Resume = true;
  Timer ResumeTime;
  AnalysisResult Resumed = analyzeTrace(T, ResumeOpt);
  double ResumeMs = ResumeTime.elapsedWallMillis();
  const char *Verdict = !Cut.Report.Partial ? "not-cut"
                        : renderRaceReportJson(Resumed.Report, T) == BaseJson
                            ? "identical"
                            : "DIFFERS";
  std::printf("%12s %12.1f %+9.1f%% %10s  (cut %.1f ms + resume)\n",
              "cut+resume", CutMs + ResumeMs,
              BaseMs > 0 ? (CutMs + ResumeMs - BaseMs) / BaseMs * 100 : 0,
              Verdict, CutMs);
  std::remove(checkpointPath(Dir).c_str());
}

} // namespace

int main(int argc, char **argv) {
  uint64_t MaxEvents = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 8000;
  uint64_t ChainMaxEvents = argc > 2
                                ? std::strtoull(argv[2], nullptr, 10)
                                : 1000000;

  std::printf("%8s %10s %12s %14s %14s %8s %12s %12s\n", "events",
              "records", "extract(ms)", "hb-rebuild(ms)", "hb-incr(ms)",
              "speedup", "detect(ms)", "hb-mem(MB)");
  for (uint64_t Events = 500; Events <= MaxEvents; Events *= 2) {
    Scenario S = buildSynthetic(Events);
    Trace T = runScenario(S, RuntimeOptions());

    DetectorOptions Rebuild;
    Rebuild.Hb.Reach = ReachMode::Closure;
    AnalysisResult Before = analyzeTrace(T, Rebuild);

    DetectorOptions Incremental;
    Incremental.Hb.Reach = ReachMode::Incremental;
    AnalysisResult After = analyzeTrace(T, Incremental);

    double Speedup = After.HbBuildMillis > 0
                         ? Before.HbBuildMillis / After.HbBuildMillis
                         : 0.0;
    std::printf("%8s %10s %12.1f %14.1f %14.1f %7.2fx %12.1f %12.1f\n",
                withThousandsSep(Events).c_str(),
                withThousandsSep(T.numRecords()).c_str(),
                After.ExtractMillis, Before.HbBuildMillis,
                After.HbBuildMillis, Speedup, After.DetectMillis,
                static_cast<double>(After.HbMemoryBytes) / 1e6);
  }
  std::printf("\nshape to compare with the paper: happens-before "
              "construction dominates and grows superlinearly in events;\n"
              "the incremental oracle shrinks the constant (same reports, "
              "same asymptote of the quadratic rule scans)\n");

  // Fixed-size trace for the corruption sweep: the axis of interest is
  // damage ratio, not event count.
  Trace T = runScenario(buildSynthetic(2000), RuntimeOptions());
  sweepCorruption(T);

  // Thread axes over the largest swept trace, so the shards / queue
  // scans are big enough for the workers to have real work.
  Trace Large = runScenario(buildSynthetic(MaxEvents), RuntimeOptions());
  sweepIngestThreads(Large);
  sweepAnalysisThreads(Large);
  sweepCheckpointCadence(Large);

  // Chain-oracle axis on its own trace family, last because it dwarfs
  // the others in size: the app-shaped synthetic above interleaves
  // external events, which keeps every oracle at the rule scans'
  // quadratic floor; the chainable family isolates what the chain
  // oracle changes ("Breaking the quadratic wall" in EXPERIMENTS.md).
  sweepChainScaling(ChainMaxEvents);

  // Windowed-scan axis on the same trace family: with the chain oracle
  // holding HB memory flat, this isolates what the streaming detector
  // adds -- a bounded analysis overlay in place of the O(accesses)
  // AccessDb, at the same reports.
  sweepWindowScaling(ChainMaxEvents);
  return 0;
}
