//===- bench/offline_scaling.cpp - Section 6.4 analysis-time scaling ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Section 6.4 observation: offline analysis time grows
// superlinearly with the number of events in a trace (the paper saw 30
// minutes to 10 hours for most apps and ~16 h / ~1 day for the
// event-heavy ToDoList and Music).  We sweep a synthetic app over event
// counts and report the analysis phase breakdown (access extraction,
// happens-before construction incl. the fixpoint, race detection) and
// the happens-before memory footprint -- once with the full-rebuild
// closure oracle (the original implementation) and once with the
// incremental closure (the default), so the sweep doubles as the
// before/after curve for the delta-propagation engine.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "support/Format.h"
#include "support/Timer.h"
#include "trace/FaultInjector.h"
#include "trace/TraceIO.h"
#include "trace/TraceReader.h"

#include <cstdio>
#include <string>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// Builds a synthetic app with \p Events events and a representative mix
/// of seeds.
Scenario buildSynthetic(uint64_t Events) {
  AppBuilder App("synthetic");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.seedConventionalRace("gamma");
  App.seedFlagGuardedFp("delta");
  App.addNaiveNoise(16, 4, 3);
  App.fillVolumeTo(Events, /*WorkPerTick=*/1);
  Table1Row Dummy;
  return App.finish(Dummy).S;
}

/// Corrupted-input axis: how salvage cost, analysis cost, and the
/// report respond as an increasing fraction of a serialized trace is
/// damaged.  Calibrates the SalvageOptions error-budget defaults: the
/// sweep shows where reports stop being trustworthy, which is where the
/// budget should start rejecting (see EXPERIMENTS.md).
void sweepCorruption(const Trace &Pristine) {
  std::string Text = serializeTrace(Pristine);
  size_t Lines = 1;
  for (char C : Text)
    Lines += C == '\n';

  DetectorOptions Opt; // defaults: the configuration users actually run
  AnalysisResult Base = analyzeTrace(Pristine, Opt);
  std::string BaseJson = renderRaceReportJson(Base.Report, Pristine);

  std::printf("\ncorrupted-input axis (%s records, %s lines, default "
              "SalvageOptions):\n",
              withThousandsSep(Pristine.numRecords()).c_str(),
              withThousandsSep(Lines).c_str());
  std::printf("%8s %10s %10s %12s %12s %8s %8s %10s\n", "damage",
              "incidents", "dropped", "salvage(ms)", "analyze(ms)",
              "races", "delta", "verdict");

  const double Ratios[] = {0,    0.001, 0.005, 0.01, 0.05,
                           0.10, 0.25,  0.40,  0.60};
  for (double Ratio : Ratios) {
    // Damage ~Ratio of the lines, rotating through the line-local fault
    // families (cumulative TruncateAtOffset would collapse the stream
    // and measure truncation depth, not damage ratio).  Seeds are
    // fixed, so a surprising row is directly replayable.
    std::string Damaged = Text;
    uint64_t Faults = static_cast<uint64_t>(Ratio * Lines);
    for (uint64_t I = 0; I != Faults; ++I) {
      FaultKind Kind = static_cast<FaultKind>(1 + I % (NumFaultKinds - 1));
      Damaged = injectFault(Damaged, Kind, /*Seed=*/0x5eed + I).Text;
    }

    Timer SalvageTime;
    Trace T;
    IngestReport Ingest;
    Status S = salvageTrace(Damaged, T, Ingest);
    double SalvageMs = SalvageTime.elapsedWallMillis();
    if (!S.ok()) {
      std::printf("%7.1f%% %10s %10s %12.1f %12s %8s %8s %10s\n",
                  Ratio * 100,
                  withThousandsSep(Ingest.IncidentsTotal).c_str(),
                  withThousandsSep(Ingest.LinesDropped).c_str(),
                  SalvageMs, "-", "-", "-", "rejected");
      continue;
    }

    Timer AnalyzeTime;
    AnalysisResult R = analyzeTrace(T, Opt);
    double AnalyzeMs = AnalyzeTime.elapsedWallMillis();
    long Delta = static_cast<long>(R.Report.Races.size()) -
                 static_cast<long>(Base.Report.Races.size());
    const char *Verdict =
        Ratio == 0 ? (renderRaceReportJson(R.Report, T) == BaseJson
                          ? "identical"
                          : "DIFFERS")
                   : (Delta == 0 ? "same-count" : "drifted");
    std::printf("%7.1f%% %10s %10s %12.1f %12.1f %8zu %+8ld %10s\n",
                Ratio * 100,
                withThousandsSep(Ingest.IncidentsTotal).c_str(),
                withThousandsSep(Ingest.LinesDropped).c_str(), SalvageMs,
                AnalyzeMs, R.Report.Races.size(), Delta, Verdict);
  }
}

} // namespace

int main(int argc, char **argv) {
  uint64_t MaxEvents = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 8000;

  std::printf("%8s %10s %12s %14s %14s %8s %12s %12s\n", "events",
              "records", "extract(ms)", "hb-rebuild(ms)", "hb-incr(ms)",
              "speedup", "detect(ms)", "hb-mem(MB)");
  for (uint64_t Events = 500; Events <= MaxEvents; Events *= 2) {
    Scenario S = buildSynthetic(Events);
    Trace T = runScenario(S, RuntimeOptions());

    DetectorOptions Rebuild;
    Rebuild.Hb.Reach = ReachMode::Closure;
    AnalysisResult Before = analyzeTrace(T, Rebuild);

    DetectorOptions Incremental;
    Incremental.Hb.Reach = ReachMode::Incremental;
    AnalysisResult After = analyzeTrace(T, Incremental);

    double Speedup = After.HbBuildMillis > 0
                         ? Before.HbBuildMillis / After.HbBuildMillis
                         : 0.0;
    std::printf("%8s %10s %12.1f %14.1f %14.1f %7.2fx %12.1f %12.1f\n",
                withThousandsSep(Events).c_str(),
                withThousandsSep(T.numRecords()).c_str(),
                After.ExtractMillis, Before.HbBuildMillis,
                After.HbBuildMillis, Speedup, After.DetectMillis,
                static_cast<double>(After.HbMemoryBytes) / 1e6);
  }
  std::printf("\nshape to compare with the paper: happens-before "
              "construction dominates and grows superlinearly in events;\n"
              "the incremental oracle shrinks the constant (same reports, "
              "same asymptote of the quadratic rule scans)\n");

  // Fixed-size trace for the corruption sweep: the axis of interest is
  // damage ratio, not event count.
  Trace T = runScenario(buildSynthetic(2000), RuntimeOptions());
  sweepCorruption(T);
  return 0;
}
