//===- bench/offline_scaling.cpp - Section 6.4 analysis-time scaling ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Section 6.4 observation: offline analysis time grows
// superlinearly with the number of events in a trace (the paper saw 30
// minutes to 10 hours for most apps and ~16 h / ~1 day for the
// event-heavy ToDoList and Music).  We sweep a synthetic app over event
// counts and report the analysis phase breakdown (access extraction,
// happens-before construction incl. the fixpoint, race detection) and
// the happens-before memory footprint -- once with the full-rebuild
// closure oracle (the original implementation) and once with the
// incremental closure (the default), so the sweep doubles as the
// before/after curve for the delta-propagation engine.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"
#include "support/Format.h"

#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// Builds a synthetic app with \p Events events and a representative mix
/// of seeds.
Scenario buildSynthetic(uint64_t Events) {
  AppBuilder App("synthetic");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.seedConventionalRace("gamma");
  App.seedFlagGuardedFp("delta");
  App.addNaiveNoise(16, 4, 3);
  App.fillVolumeTo(Events, /*WorkPerTick=*/1);
  Table1Row Dummy;
  return App.finish(Dummy).S;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t MaxEvents = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                : 8000;

  std::printf("%8s %10s %12s %14s %14s %8s %12s %12s\n", "events",
              "records", "extract(ms)", "hb-rebuild(ms)", "hb-incr(ms)",
              "speedup", "detect(ms)", "hb-mem(MB)");
  for (uint64_t Events = 500; Events <= MaxEvents; Events *= 2) {
    Scenario S = buildSynthetic(Events);
    Trace T = runScenario(S, RuntimeOptions());

    DetectorOptions Rebuild;
    Rebuild.Hb.Reach = ReachMode::Closure;
    AnalysisResult Before = analyzeTrace(T, Rebuild);

    DetectorOptions Incremental;
    Incremental.Hb.Reach = ReachMode::Incremental;
    AnalysisResult After = analyzeTrace(T, Incremental);

    double Speedup = After.HbBuildMillis > 0
                         ? Before.HbBuildMillis / After.HbBuildMillis
                         : 0.0;
    std::printf("%8s %10s %12.1f %14.1f %14.1f %7.2fx %12.1f %12.1f\n",
                withThousandsSep(Events).c_str(),
                withThousandsSep(T.numRecords()).c_str(),
                After.ExtractMillis, Before.HbBuildMillis,
                After.HbBuildMillis, Speedup, After.DetectMillis,
                static_cast<double>(After.HbMemoryBytes) / 1e6);
  }
  std::printf("\nshape to compare with the paper: happens-before "
              "construction dominates and grows superlinearly in events;\n"
              "the incremental oracle shrinks the constant (same reports, "
              "same asymptote of the quadratic rule scans)\n");
  return 0;
}
