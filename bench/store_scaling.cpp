//===- bench/store_scaling.cpp - Race-store journal cost axes -----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The persistent race store's three cost axes (EXPERIMENTS.md
// "Analysis daemon and race store"):
//
//  1. Append latency: every appendJob() is one framed record fsync'd
//     before the call returns -- the durability the daemon's
//     acknowledged-results contract is built on.  This axis prices
//     that fsync.
//
//  2. Replay (open) cost vs journal size: a restarted daemon replays
//     the whole journal before serving; this must stay linear and
//     cheap out to journals far larger than a nightly batch.
//
//  3. Compaction and render: the full rewrite and the cross-trace
//     aggregate, both of which the daemon serves while jobs run.
//
// Renders from the replayed store are checked byte-identical to the
// writer's, so the bench doubles as a large-scale round-trip test.
//
//===----------------------------------------------------------------------===//

#include "cafa/RaceStore.h"
#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>

using namespace cafa;

namespace {

double nowMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A done row whose report carries a few races drawn from a small pool,
/// so the aggregate exercises both merging (shared races) and growth
/// (per-job races).
void syntheticJob(size_t Index, FleetJobStatus &Row,
                  RaceDocument &Report) {
  Row = FleetJobStatus();
  Row.Id = formatString("job%06zu", Index);
  Row.TracePath = formatString("/corpus/user%06zu.trace", Index);
  Row.State = "done";
  Row.Attempts = 1;
  Row.ExitCode = 1;
  Report = RaceDocument();
  for (size_t R = 0; R < 3; ++R) {
    RaceRecord Race;
    size_t Pool = (Index * 3 + R) % 64; // 64 distinct static races
    Race.UseMethod = formatString("View$%zu.draw", Pool);
    Race.UsePc = static_cast<uint32_t>(100 + Pool);
    Race.UseTask = "ui";
    Race.FreeMethod = formatString("Activity$%zu.onDestroy", Pool);
    Race.FreePc = static_cast<uint32_t>(200 + Pool);
    Race.FreeTask = "lifecycle";
    Race.Category = Pool % 2 ? "a" : "b";
    Race.DynamicCount = static_cast<uint32_t>(1 + Index % 5);
    Report.Races.push_back(Race);
  }
}

} // namespace

int main() {
  std::string Scratch = "/tmp/cafa_store_bench";
  ::mkdir(Scratch.c_str(), 0755);

  std::printf("%8s %12s %14s %12s %14s %12s %12s\n", "jobs",
              "journal(MB)", "append(us/op)", "replay(ms)",
              "compact(ms)", "render(ms)", "races");
  for (size_t Jobs : {1000u, 4000u, 16000u}) {
    std::string Path = formatString("%s/n%zu.journal", Scratch.c_str(),
                                    Jobs);
    std::remove(Path.c_str());

    RaceStore Writer;
    if (!Writer.open(Path).ok()) {
      std::fprintf(stderr, "cannot open %s\n", Path.c_str());
      return 1;
    }
    double T0 = nowMillis();
    for (size_t I = 0; I < Jobs; ++I) {
      FleetJobStatus Row;
      RaceDocument Report;
      syntheticJob(I, Row, Report);
      if (!Writer.appendJob(Row, &Report).ok()) {
        std::fprintf(stderr, "append %zu failed\n", I);
        return 1;
      }
    }
    double AppendMicros = (nowMillis() - T0) * 1000.0 / Jobs;

    double T1 = nowMillis();
    RaceStore Replayed;
    if (!Replayed.open(Path).ok() || Replayed.numJobs() != Jobs) {
      std::fprintf(stderr, "replay of %s failed\n", Path.c_str());
      return 1;
    }
    double ReplayMillis = nowMillis() - T1;

    double T2 = nowMillis();
    if (!Replayed.compact().ok()) {
      std::fprintf(stderr, "compact of %s failed\n", Path.c_str());
      return 1;
    }
    double CompactMillis = nowMillis() - T2;

    double T3 = nowMillis();
    std::string Json = Replayed.renderJson();
    double RenderMillis = nowMillis() - T3;
    if (Json != Writer.renderJson()) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: replayed render differs "
                   "at %zu jobs\n",
                   Jobs);
      return 1;
    }

    RaceStore::Stats S = Replayed.stats();
    std::printf("%8zu %12.2f %14.1f %12.1f %14.1f %12.1f %12zu\n", Jobs,
                S.JournalBytes / (1024.0 * 1024.0), AppendMicros,
                ReplayMillis, CompactMillis, RenderMillis,
                S.DistinctRaces);
  }
  std::printf("\nreplayed renders byte-identical to the writer's at "
              "every size: yes\n");
  return 0;
}
