//===- bench/ablation_deref_matching.cpp - The Section 6.3 improvement --------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Ablation D: the improvement Section 6.3 proposes against Type III
// false positives -- static data-flow matching of dereferences to their
// pointer reads, instead of the runtime nearest-previous-read heuristic.
// Per app: reports and Type III count under both matchers, plus how many
// query sites the static analysis resolves uniquely.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"

#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

int main() {
  std::printf("%-14s %18s %18s %22s\n", "Application",
              "heuristic (rep/III)", "dataflow (rep/III)",
              "static sites resolved");
  uint64_t SumRep[2] = {}, SumIII[2] = {};
  for (const std::string &Name : appNames()) {
    AppModel Model = buildApp(Name);
    Trace T = runScenario(Model.S, RuntimeOptions());

    AnalysisResult Heuristic = analyzeTrace(T, DetectorOptions());
    Table1Row RowH =
        evaluateReport(Heuristic.Report, Model.Truth, T, Name);

    DerefResolver Resolver(Model.S.module());
    AnalysisOptions PreciseOpt;
    PreciseOpt.Resolver = &Resolver;
    AnalysisResult Precise = analyzeTrace(T, PreciseOpt);
    Table1Row RowP = evaluateReport(Precise.Report, Model.Truth, T, Name);

    std::printf("%-14s %13llu / %-3llu %13llu / %-3llu %14llu of %llu\n",
                Name.c_str(),
                static_cast<unsigned long long>(RowH.Reported),
                static_cast<unsigned long long>(RowH.FpIII),
                static_cast<unsigned long long>(RowP.Reported),
                static_cast<unsigned long long>(RowP.FpIII),
                static_cast<unsigned long long>(Resolver.resolvedSites()),
                static_cast<unsigned long long>(
                    Resolver.resolvedSites() +
                    Resolver.unresolvedSites()));
    SumRep[0] += RowH.Reported;
    SumRep[1] += RowP.Reported;
    SumIII[0] += RowH.FpIII;
    SumIII[1] += RowP.FpIII;
  }
  std::printf("%-14s %13llu / %-3llu %13llu / %-3llu\n", "Overall",
              static_cast<unsigned long long>(SumRep[0]),
              static_cast<unsigned long long>(SumIII[0]),
              static_cast<unsigned long long>(SumRep[1]),
              static_cast<unsigned long long>(SumIII[1]));
  std::printf("\nthe static matcher eliminates every Type III false "
              "positive (paper: 5 of 115 reports) without losing a "
              "harmful race\n");
  return 0;
}
