//===- bench/ablation_reachability.cpp - Oracle ablation (DESIGN.md B) --------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Ablation B: the reachability oracle behind the happens-before graph.
// Sweeps a synthetic app over event counts and compares three oracles on
// total analysis time and happens-before memory: the full-rebuild bitset
// transitive closure (O(1) queries, quadratic memory, rebuilt every
// fixpoint round), the pruned BFS (linear memory, per-query search), and
// the incremental closure (same matrix, delta propagation per round).
// This is the trade-off Section 4.2 alludes to when rejecting vector
// clocks for event-driven traces; see docs/hb-reachability.md.
//
// Uses google-benchmark so per-size timings come with proper repetition.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"

#include <benchmark/benchmark.h>

using namespace cafa;
using namespace cafa::apps;

namespace {

Scenario buildSynthetic(uint64_t Events) {
  AppBuilder App("synthetic");
  App.seedIntraThreadRace("alpha");
  App.seedInterThreadRace("beta");
  App.seedFlagGuardedFp("gamma");
  App.addNaiveNoise(16, 4, 3);
  App.fillVolumeTo(Events, /*WorkPerTick=*/1);
  Table1Row Dummy;
  return App.finish(Dummy).S;
}

/// Shared traces per size so google-benchmark repetitions do not re-run
/// the simulator.
const Trace &traceForSize(int64_t Events) {
  static std::map<int64_t, Trace> Cache;
  auto It = Cache.find(Events);
  if (It == Cache.end())
    It = Cache
             .emplace(Events, runScenario(buildSynthetic(
                                              static_cast<uint64_t>(Events)),
                                          RuntimeOptions()))
             .first;
  return It->second;
}

void analyzeWith(benchmark::State &State, ReachMode Mode) {
  const Trace &T = traceForSize(State.range(0));
  size_t HbMem = 0;
  for (auto _ : State) {
    TaskIndex Index(T);
    AccessDb Db = extractAccesses(T, Index);
    HbOptions HbOpt;
    HbOpt.Reach = Mode;
    HbIndex Hb(T, Index, HbOpt);
    DetectorOptions Opt;
    Opt.Classify = false;
    RaceReport Report = detectUseFreeRaces(T, Index, Db, Hb, Opt);
    benchmark::DoNotOptimize(Report.Races.size());
    HbMem = Hb.memoryBytes();
  }
  State.counters["hb_mem_mb"] =
      static_cast<double>(HbMem) / 1e6;
  State.counters["events"] = static_cast<double>(State.range(0));
}

void BM_AnalyzeClosure(benchmark::State &State) {
  analyzeWith(State, ReachMode::Closure);
}

void BM_AnalyzeBfs(benchmark::State &State) {
  analyzeWith(State, ReachMode::Bfs);
}

void BM_AnalyzeIncremental(benchmark::State &State) {
  analyzeWith(State, ReachMode::Incremental);
}

} // namespace

// The BFS oracle pays per-query search inside the quadratic rule scans,
// so it is only practical on small traces -- which is exactly the point
// of the ablation.  The closures get extra sizes to show their headroom,
// and the incremental closure one more to show where delta propagation
// pulls ahead of the per-round rebuild.
BENCHMARK(BM_AnalyzeClosure)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_AnalyzeBfs)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_AnalyzeIncremental)->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

BENCHMARK_MAIN();
