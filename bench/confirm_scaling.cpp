//===- bench/confirm_scaling.cpp - Machine-triage cost + verdict table --------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Confirmation over the ten committed app models (EXPERIMENTS.md
// "Machine triage by controlled replay"):
//
//  1. Verdict quality: how the detector's predictions triage out under
//     the default budget -- confirmed (crash reproduced at the
//     predicted site) / infeasible / unconfirmed -- per app.  Every app
//     model must reproduce at least one of its seeded races as a real
//     crash, or the bench fails.
//
//  2. Replay cost: replays executed and wall-clock per app, at 1 and 4
//     worker threads.  Replays re-execute the whole deterministic
//     simulator, so this prices the fan-out the fleet would pay to
//     auto-confirm a batch.
//
//  3. Determinism: the full per-race verdict + evidence summary is
//     byte-compared across thread counts; any divergence fails the
//     bench.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "confirm/Confirm.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

using namespace cafa;
using namespace cafa::apps;

namespace {

double nowMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string summaryBytes(const ConfirmSummary &Sum) {
  std::ostringstream OS;
  for (const RaceConfirmation &C : Sum.PerRace)
    OS << static_cast<int>(C.Verdict) << '|' << C.SchedulesTried << '|'
       << C.Detail << '\n';
  return OS.str();
}

} // namespace

int main() {
  std::printf("%-12s %6s %10s %11s %12s %8s %9s %9s\n", "app", "races",
              "confirmed", "infeasible", "unconfirmed", "replays",
              "t1(ms)", "t4(ms)");

  unsigned TotalConfirmed = 0;
  bool Deterministic = true, EveryAppConfirmed = true;
  for (const std::string &Name : appNames()) {
    AppModel Model = buildApp(Name);
    Trace T = runScenario(Model.S, RuntimeOptions());
    AnalysisResult R = analyzeTrace(T, DetectorOptions());

    ConfirmOptions One;
    One.Threads = 1;
    double T0 = nowMillis();
    ConfirmSummary SumOne = confirmRaces(Model.S, T, R.Report, One);
    double MsOne = nowMillis() - T0;

    ConfirmOptions Four;
    Four.Threads = 4;
    double T1 = nowMillis();
    ConfirmSummary SumFour = confirmRaces(Model.S, T, R.Report, Four);
    double MsFour = nowMillis() - T1;

    if (summaryBytes(SumOne) != summaryBytes(SumFour)) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: %s verdicts differ "
                           "at 1 vs 4 threads\n",
                   Name.c_str());
      Deterministic = false;
    }
    if (SumOne.Confirmed == 0)
      EveryAppConfirmed = false;
    TotalConfirmed += SumOne.Confirmed;

    std::printf("%-12s %6zu %10u %11u %12u %8llu %9.1f %9.1f\n",
                Name.c_str(), R.Report.Races.size(), SumOne.Confirmed,
                SumOne.Infeasible, SumOne.Unconfirmed,
                static_cast<unsigned long long>(SumOne.SchedulesRun),
                MsOne, MsFour);
  }

  std::printf("\nverdicts byte-identical at 1 vs 4 threads: %s\n",
              Deterministic ? "yes" : "NO");
  std::printf("every app reproduces >=1 predicted UAF as confirmed: %s "
              "(%u confirmed total)\n",
              EveryAppConfirmed ? "yes" : "NO", TotalConfirmed);
  return (Deterministic && EveryAppConfirmed) ? 0 : 1;
}
