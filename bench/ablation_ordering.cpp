//===- bench/ablation_ordering.cpp - Causality-model ablation (DESIGN.md C) ---===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Ablation C: what each causality design decision buys.  Per app:
//   cafa          -- the full model (Table 1 configuration);
//   conventional  -- total event order per looper (thread-based view):
//                    only the (c)-style races remain detectable;
//   no-queue      -- CAFA without event-queue rules 1-4: falsely
//                    concurrent events inflate the report;
//   no-atomicity  -- CAFA without the atomicity rule;
//   no-external   -- CAFA without the external-input chain.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"

#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

int main() {
  std::printf("%-14s %8s %14s %10s %14s %13s\n", "Application", "cafa",
              "conventional", "no-queue", "no-atomicity", "no-external");
  uint64_t Sum[5] = {};
  for (const std::string &Name : appNames()) {
    AppModel Model = buildApp(Name);
    Trace T = runScenario(Model.S, RuntimeOptions());
    TaskIndex Index(T);
    AccessDb Db = extractAccesses(T, Index);

    auto count = [&](HbOptions HbOpt) {
      HbIndex Hb(T, Index, HbOpt);
      DetectorOptions Opt;
      Opt.Classify = false;
      return detectUseFreeRaces(T, Index, Db, Hb, Opt).Races.size();
    };

    HbOptions Cafa;
    HbOptions Conventional;
    Conventional.Model = OrderingModel::Conventional;
    HbOptions NoQueue;
    NoQueue.EnableQueueRules = false;
    HbOptions NoAtomicity;
    NoAtomicity.EnableAtomicityRule = false;
    HbOptions NoExternal;
    NoExternal.EnableExternalInputRule = false;

    size_t N0 = count(Cafa), N1 = count(Conventional), N2 = count(NoQueue),
           N3 = count(NoAtomicity), N4 = count(NoExternal);
    std::printf("%-14s %8zu %14zu %10zu %14zu %13zu\n", Name.c_str(), N0,
                N1, N2, N3, N4);
    Sum[0] += N0;
    Sum[1] += N1;
    Sum[2] += N2;
    Sum[3] += N3;
    Sum[4] += N4;
  }
  std::printf("%-14s %8llu %14llu %10llu %14llu %13llu\n", "Overall",
              static_cast<unsigned long long>(Sum[0]),
              static_cast<unsigned long long>(Sum[1]),
              static_cast<unsigned long long>(Sum[2]),
              static_cast<unsigned long long>(Sum[3]),
              static_cast<unsigned long long>(Sum[4]));
  std::printf("\nconventional misses the (a)/(b) races; dropping queue/"
              "atomicity/external rules adds falsely-concurrent reports\n");
  return 0;
}
