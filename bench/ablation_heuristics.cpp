//===- bench/ablation_heuristics.cpp - Filter ablation (DESIGN.md A) ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Ablation A: the contribution of the Section 4.3 commutativity
// heuristics and the lockset check.  For every app, report the number of
// races with each filter disabled in turn; the delta over the default
// configuration is exactly the benign reports that filter suppresses.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"

#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

int main() {
  std::printf("%-14s %9s %12s %14s %12s %10s\n", "Application", "default",
              "no-ifguard", "no-intraalloc", "no-lockset", "none");
  uint64_t Sum[5] = {};
  for (const std::string &Name : appNames()) {
    AppModel Model = buildApp(Name);
    Trace T = runScenario(Model.S, RuntimeOptions());
    TaskIndex Index(T);
    AccessDb Db = extractAccesses(T, Index);
    HbIndex Hb(T, Index, HbOptions());

    auto count = [&](bool IfGuard, bool IntraAlloc, bool Lockset) {
      DetectorOptions Opt;
      Opt.IfGuardFilter = IfGuard;
      Opt.IntraEventAllocFilter = IntraAlloc;
      Opt.LocksetFilter = Lockset;
      Opt.Classify = false; // classification does not affect the count
      return detectUseFreeRaces(T, Index, Db, Hb, Opt).Races.size();
    };

    size_t Default = count(true, true, true);
    size_t NoGuard = count(false, true, true);
    size_t NoAlloc = count(true, false, true);
    size_t NoLock = count(true, true, false);
    size_t None = count(false, false, false);
    std::printf("%-14s %9zu %12zu %14zu %12zu %10zu\n", Name.c_str(),
                Default, NoGuard, NoAlloc, NoLock, None);
    Sum[0] += Default;
    Sum[1] += NoGuard;
    Sum[2] += NoAlloc;
    Sum[3] += NoLock;
    Sum[4] += None;
  }
  std::printf("%-14s %9llu %12llu %14llu %12llu %10llu\n", "Overall",
              static_cast<unsigned long long>(Sum[0]),
              static_cast<unsigned long long>(Sum[1]),
              static_cast<unsigned long long>(Sum[2]),
              static_cast<unsigned long long>(Sum[3]),
              static_cast<unsigned long long>(Sum[4]));
  std::printf("\nevery filtered report is a benign commutative pair; the "
              "paper's default config reports 115 with 60%% harmful\n");
  return 0;
}
