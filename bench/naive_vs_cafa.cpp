//===- bench/naive_vs_cafa.cpp - Section 4.1's motivating count ---------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Section 4.1 comparison: on a ConnectBot trace, a naive
// detector that reports every pair of conflicting unordered memory
// accesses produces on the order of 1,664 races, while CAFA's use-free
// detector reports 3.  The same sweep over all ten apps shows the ratio
// holds generally (the paper quotes only ConnectBot).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "support/Format.h"

#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

int main(int argc, char **argv) {
  bool AllApps = argc > 1 && std::string(argv[1]) == "--all";
  std::vector<std::string> Names =
      AllApps ? appNames() : std::vector<std::string>{"connectbot"};

  std::printf("%-14s %12s %12s %10s\n", "Application", "naive races",
              "CAFA races", "ratio");
  for (const std::string &Name : Names) {
    AppModel Model = buildApp(Name);
    Trace T = runScenario(Model.S, RuntimeOptions());
    TaskIndex Index(T);
    HbIndex Hb(T, Index, HbOptions());

    NaiveRaceResult Naive =
        detectLowLevelRaces(T, Index, Hb, NaiveDetectorOptions());
    AccessDb Db = extractAccesses(T, Index);
    RaceReport Report =
        detectUseFreeRaces(T, Index, Db, Hb, DetectorOptions());

    std::printf("%-14s %12s %12zu %9.0fx\n", Name.c_str(),
                withThousandsSep(Naive.StaticRaces).c_str(),
                Report.Races.size(),
                Report.Races.empty()
                    ? 0.0
                    : static_cast<double>(Naive.StaticRaces) /
                          static_cast<double>(Report.Races.size()));
    if (Naive.CappedPairs)
      std::printf("  (pair-scan cap hit on %llu cells)\n",
                  static_cast<unsigned long long>(Naive.CappedPairs));
  }
  std::printf("\npaper (ConnectBot, 30 s trace): 1,664 naive vs 3 CAFA\n");
  return 0;
}
