//===- bench/table1_races.cpp - Reproduces Table 1 ----------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1 of the paper: for each of the ten application
// models, run the instrumented simulation, analyze the trace with CAFA,
// and report reported races / true races by category (a,b,c) / false
// positives by type (I,II,III), joined against the models' ground truth.
// The paper's reference row is printed alongside for comparison.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "support/Format.h"

#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

int main(int argc, char **argv) {
  bool Verbose = argc > 1 && std::string(argv[1]) == "-v";

  std::vector<Table1Row> Measured;
  std::vector<Table1Row> Paper;

  for (const std::string &Name : appNames()) {
    AppModel Model = buildApp(Name);
    RuntimeStats Stats;
    Trace T = runScenario(Model.S, RuntimeOptions(), &Stats);
    AnalysisResult R = analyzeTrace(T, DetectorOptions());
    Table1Row Row = evaluateReport(R.Report, Model.Truth, T, Name);
    Measured.push_back(Row);
    Paper.push_back(Model.PaperRow);

    if (Verbose || Row.Unexpected || Row.Missed) {
      std::printf("--- %s: %s", Name.c_str(),
                  renderRaceReport(R.Report, T).c_str());
      if (Row.Missed) {
        std::printf("  labeled pairs:\n");
        for (const GroundTruthEntry &E : Model.Truth.Entries)
          std::printf("    %s:%u ~ %s:%u [%s] %s\n",
                      T.methodName(E.UseMethod).c_str(), E.UsePc,
                      T.methodName(E.FreeMethod).c_str(), E.FreePc,
                      raceLabelName(E.Label), E.Note.c_str());
      }
      std::printf("  npe=%llu blocked=%llu\n",
                  static_cast<unsigned long long>(
                      Stats.NullPointerExceptions),
                  static_cast<unsigned long long>(
                      Stats.BlockedAtQuiescence));
    }
  }

  std::printf("Table 1 (measured):\n%s\n",
              renderTable1(Measured).c_str());
  std::printf("Table 1 (paper reference):\n%s\n",
              renderTable1(Paper).c_str());
  return 0;
}
