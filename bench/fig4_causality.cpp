//===- bench/fig4_causality.cpp - Reproduces Figure 4 -------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 4: for each example trace, derive the event-level
// happens-before relations under the CAFA causality model and print the
// verdict next to the paper's.  Scenarios 4a-4f match the figure; the
// two extra rows exercise event-queue rules 3 and 4 explicitly.
//
//===----------------------------------------------------------------------===//

#include "cafa/Fig4.h"
#include "hb/HbIndex.h"
#include "trace/Validate.h"

#include <cstdio>

using namespace cafa;

namespace {

const char *verdict(bool AB, bool BA) {
  if (AB && BA)
    return "A<->B (cycle: BUG)";
  if (AB)
    return "A -> B";
  if (BA)
    return "B -> A";
  return "unordered";
}

} // namespace

int main() {
  int Failures = 0;
  std::printf("%-18s %-12s %-12s %-9s  %s\n", "scenario", "derived",
              "expected", "rule", "explanation");
  for (Fig4Scenario &S : buildFig4Scenarios()) {
    if (Status St = validateTrace(S.T); !St.ok()) {
      std::printf("%-18s INVALID TRACE: %s\n", S.Name.c_str(),
                  St.message().c_str());
      ++Failures;
      continue;
    }
    TaskIndex Index(S.T);
    HbIndex Hb(S.T, Index, HbOptions());
    bool AB = Hb.taskOrdered(S.A, S.B);
    bool BA = Hb.taskOrdered(S.B, S.A);
    bool Ok = AB == S.ExpectAB && BA == S.ExpectBA;
    if (!Ok)
      ++Failures;
    std::printf("%-18s %-12s %-12s %-9s  %s%s\n", S.Name.c_str(),
                verdict(AB, BA), verdict(S.ExpectAB, S.ExpectBA),
                S.Rule.c_str(), S.Explanation.c_str(),
                Ok ? "" : "   [MISMATCH]");
  }
  if (Failures) {
    std::printf("\n%d scenario(s) FAILED\n", Failures);
    return 1;
  }
  std::printf("\nall scenarios match the paper\n");
  return 0;
}
