//===- bench/fig8_slowdown.cpp - Reproduces Figure 8 --------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 8: the CPU-time slowdown of collecting traces, per
// application.  Each app runs twice on the identical schedule -- once on
// the "stock ROM" (no instrumentation) and once on the "CAFA ROM"
// (records constructed and serialized to the logger device) -- and the
// bar is the CPU-time ratio.  The paper reports 2x-6x across its ten
// apps; the per-app spread comes from how compute-heavy an app's
// handlers are relative to the operations they emit.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// Runs \p S once with the given tracing mode; returns consumed host CPU
/// nanoseconds (min of \p Repeats runs, to shed scheduler noise).
uint64_t measureCpu(const Scenario &S, bool Tracing, int Repeats) {
  uint64_t Best = UINT64_MAX;
  for (int I = 0; I != Repeats; ++I) {
    RuntimeOptions Opt;
    Opt.Tracing = Tracing;
    Runtime Rt(S, Opt);
    if (!Rt.run().ok())
      reportFatalError("scenario failed in fig8 bench");
    Best = std::min(Best, Rt.stats().HostCpuNanos);
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  int Repeats = argc > 1 ? std::atoi(argv[1]) : 2;

  std::printf("%-14s %12s %12s %10s   %s\n", "Application", "base(ms)",
              "traced(ms)", "slowdown", "bar");
  double MinSlow = 1e9, MaxSlow = 0;
  for (const std::string &Name : appNames()) {
    AppModel Model = buildApp(Name);
    uint64_t Base = measureCpu(Model.S, /*Tracing=*/false, Repeats);
    uint64_t Traced = measureCpu(Model.S, /*Tracing=*/true, Repeats);
    double Slow = static_cast<double>(Traced) /
                  static_cast<double>(std::max<uint64_t>(Base, 1));
    MinSlow = std::min(MinSlow, Slow);
    MaxSlow = std::max(MaxSlow, Slow);
    std::string Bar(static_cast<size_t>(Slow * 8.0), '#');
    std::printf("%-14s %12.1f %12.1f %9.2fx   %s\n", Name.c_str(),
                static_cast<double>(Base) / 1e6,
                static_cast<double>(Traced) / 1e6, Slow, Bar.c_str());
  }
  std::printf("\nrange: %.2fx - %.2fx (paper: ~2x - 6x)\n", MinSlow,
              MaxSlow);
  return 0;
}
