//===- bench/fleet_scaling.cpp - Fleet batch wall-clock vs workers ------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The fleet supervisor's two cost axes (EXPERIMENTS.md "Supervised
// fleet batches"):
//
//  1. Batch wall-clock vs worker count: the same multi-trace batch run
//     at --workers=1/2/4.  Workers are whole processes, so the scaling
//     ceiling is the host's core count -- on a single-core box the
//     sweep measures supervisor overhead, not parallel speedup, and
//     the printout says so.  The aggregate JSON must be byte-identical
//     at every width (the determinism contract).
//
//  2. Retry overhead: every worker SIGKILLed once after its first
//     snapshot (--chaos-kill-after-save), so every job completes on
//     attempt 2 by *resuming* the dead worker's checkpoint.  The
//     difference against the fault-free batch prices one crash+resume
//     cycle per job; without checkpoint reuse it would price a full
//     re-analysis per job.
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "fleet/Fleet.h"
#include "rt/Runtime.h"
#include "support/Format.h"
#include "trace/TraceIO.h"

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

using namespace cafa;
using namespace cafa::apps;

namespace {

/// Records \p Count traces with distinct race populations.
std::vector<std::string> recordCorpus(const std::string &Dir,
                                      size_t Count) {
  static const char *Apps[] = {"zxing", "todolist", "browser", "music"};
  std::vector<std::string> Paths;
  Table1Row Dummy;
  for (size_t I = 0; I < Count; ++I) {
    AppBuilder App(formatString("fleetbench_%zu", I));
    App.seedIntraThreadRace(formatString("intra%zu", I));
    if (I % 2)
      App.seedInterThreadRace(formatString("inter%zu", I));
    App.fillVolumeTo(800 + 200 * (I % 4));
    AppModel Model = App.finish(Dummy);
    Trace T = runScenario(Model.S, RuntimeOptions());
    std::string Path =
        Dir + "/" + formatString("%s_%zu.trace", Apps[I % 4], I);
    if (!writeTraceFile(T, Path).ok()) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      std::exit(1);
    }
    Paths.push_back(Path);
  }
  return Paths;
}

std::vector<FleetJob> makeBatch(const std::vector<std::string> &Corpus,
                                size_t Jobs) {
  std::vector<FleetJob> Batch;
  for (size_t I = 0; I < Jobs; ++I) {
    FleetJob Job;
    Job.Id = formatString("j%02zu", I);
    Job.TracePath = Corpus[I % Corpus.size()];
    Batch.push_back(Job);
  }
  return Batch;
}

} // namespace

int main(int argc, char **argv) {
  std::string Analyzer =
      argc > 1 ? argv[1] : std::string(CAFA_FLEET_ANALYZER_PATH);
  std::string Scratch = "/tmp/cafa_fleet_bench";
  ::mkdir(Scratch.c_str(), 0755);

  const size_t NumJobs = 12;
  std::printf("host cores: %u (worker scaling is bounded by this)\n\n",
              std::thread::hardware_concurrency());
  std::vector<std::string> Corpus = recordCorpus(Scratch, 4);
  std::vector<FleetJob> Batch = makeBatch(Corpus, NumJobs);

  // --- Axis 1: wall-clock vs worker count -------------------------------
  std::printf("batch of %zu jobs, fault-free\n", NumJobs);
  std::printf("%8s %14s %10s %8s\n", "workers", "wall(ms)", "speedup",
              "races");
  std::string RefJson;
  double BaseMillis = 0;
  for (unsigned Workers : {1u, 2u, 4u}) {
    FleetOptions Options;
    Options.AnalyzerPath = Analyzer;
    Options.CheckpointRoot =
        Scratch + formatString("/w%u.fleet", Workers);
    Options.Workers = Workers;
    FleetResult Result;
    if (Status S = runFleet(Batch, Options, Result); !S.ok()) {
      std::fprintf(stderr, "fleet failed: %s\n", S.message().c_str());
      return 1;
    }
    if (RefJson.empty()) {
      RefJson = Result.AggregateJson;
      BaseMillis = Result.WallMillis;
    } else if (Result.AggregateJson != RefJson) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: aggregate differs at "
                   "--workers=%u\n",
                   Workers);
      return 1;
    }
    std::printf("%8u %14.1f %9.2fx %8zu\n", Workers, Result.WallMillis,
                BaseMillis / Result.WallMillis, Result.DistinctRaces);
  }
  std::printf("aggregate JSON byte-identical across all widths: yes\n\n");

  // --- Axis 2: one crash + resume per job -------------------------------
  std::printf("batch of %zu jobs, every worker killed after its first "
              "snapshot\n",
              NumJobs);
  FleetOptions Chaos;
  Chaos.AnalyzerPath = Analyzer;
  Chaos.CheckpointRoot = Scratch + "/chaos.fleet";
  Chaos.Workers = 2;
  Chaos.CheckpointEveryMillis = 1;
  Chaos.Backoff.InitialMillis = 0; // price the resume, not the sleep
  Chaos.ChaosArgsForAttempt =
      [](const FleetJob &, unsigned Attempt) -> std::vector<std::string> {
    if (Attempt == 1)
      return {"--chaos-kill-after-save"};
    return {};
  };
  FleetResult ChaosResult;
  if (Status S = runFleet(Batch, Chaos, ChaosResult); !S.ok()) {
    std::fprintf(stderr, "fleet failed: %s\n", S.message().c_str());
    return 1;
  }
  FleetOptions Clean = Chaos;
  Clean.CheckpointRoot = Scratch + "/clean.fleet";
  Clean.ChaosArgsForAttempt = nullptr;
  FleetResult CleanResult;
  if (Status S = runFleet(Batch, Clean, CleanResult); !S.ok()) {
    std::fprintf(stderr, "fleet failed: %s\n", S.message().c_str());
    return 1;
  }
  std::printf("%22s %14s %10s %18s\n", "", "wall(ms)", "retries",
              "resumedCompletions");
  std::printf("%22s %14.1f %10u %18u\n", "fault-free",
              CleanResult.WallMillis, CleanResult.Retries,
              CleanResult.ResumedCompletions);
  std::printf("%22s %14.1f %10u %18u\n", "crash+resume per job",
              ChaosResult.WallMillis, ChaosResult.Retries,
              ChaosResult.ResumedCompletions);
  std::printf("retry overhead: %.1f%% (each retry resumes its "
              "predecessor's snapshot; a restart-from-scratch policy "
              "would approach +100%%)\n",
              100.0 * (ChaosResult.WallMillis - CleanResult.WallMillis) /
                  CleanResult.WallMillis);
  return 0;
}
