//===- fuzz/salvage_analyze_fuzz.cpp - Fuzz salvage -> analyze ----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Fuzz entry over the full ingestion-to-report pipeline: arbitrary bytes
// are salvaged as a trace, validated, and analyzed; the salvaged trace
// is then re-serialized, damaged once more by the deterministic
// FaultInjector (the mutation family and seed are derived from the
// input, so every crash is replayable), and pushed through the pipeline
// again.  The property under test is the robustness contract from
// docs/robustness.md: no byte stream may crash, hang, or trip
// ASan/UBSan anywhere in salvage -> validate -> analyze.
//
// Two build modes (see fuzz/CMakeLists.txt):
//   - default: a standalone driver; run it over corpus files/directories
//     (or no arguments for the built-in seeds).  Registered in ctest as
//     fuzz_driver_smoke so the harness itself can never rot.
//   - -DCAFA_FUZZER=ON (clang only): a libFuzzer binary for coverage-
//     guided fuzzing under ASan/UBSan, smoke-run in CI.
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"
#include "trace/FaultInjector.h"
#include "trace/IngestSession.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <cstdint>
#include <cstring>
#include <string>

using namespace cafa;

namespace {

uint64_t fnv1a(const uint8_t *Data, size_t Size) {
  uint64_t H = 1469598103934665603ull;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 1099511628211ull;
  }
  return H;
}

/// Salvage -> validate -> analyze one candidate stream.  Returns false
/// when salvage rejected the stream outright (over error budget).
bool pipelineOnce(const std::string &Text) {
  Trace T;
  IngestReport Ingest;
  // Tiny shards + two lexer threads: every input exercises the sharded
  // merge path (mid-record shard cuts, name-id remapping), not just the
  // single-shard fast case.
  IngestOptions IOpt;
  IOpt.Threads = 2;
  IOpt.ShardBytes = 64;
  if (!ingestTrace(Text, T, Ingest, IOpt).ok())
    return false;

  // Salvaged traces may legitimately contain events that were begun but
  // never sent; anything else validateTrace flags is a salvage bug the
  // assert below should surface loudly.
  ValidateOptions VOpt;
  VOpt.AllowUnsentEvents = true;
  if (!validateTrace(T, VOpt).ok())
    return false;

  // Keep per-input cost bounded: classification off, a round cap for
  // pathological queue structures, and a generous deadline backstop so
  // a quadratic corner becomes a partial report instead of a hang.
  // Two analysis threads put the parallel rule-engine / detector paths
  // (and their sequential-fallback commit logic) under fuzz as well.
  DetectorOptions Opt;
  Opt.Classify = false;
  Opt.Hb.MaxFixpointRounds = 8;
  Opt.Hb.Threads = 2;
  Opt.DeadlineMillis = 50;
  AnalysisResult R = analyzeTrace(T, Opt);
  (void)R;

  // Same trace through the windowed streaming scan at a deliberately
  // tiny sweep cadence: salvaged traces are exactly the hostile shapes
  // (quiet tasks, dangling events, mid-record damage) where the
  // per-task retirement horizons and push pruning earn their keep.
  Opt.WindowEvents = 16;
  AnalysisResult W = analyzeTrace(T, Opt);
  (void)W;
  return true;
}

int runOne(const uint8_t *Data, size_t Size) {
  constexpr size_t MaxInputBytes = 1 << 20;
  if (Size > MaxInputBytes)
    return 0;
  std::string Text(reinterpret_cast<const char *>(Data), Size);
  if (!pipelineOnce(Text))
    return 0;

  // Round 2: re-serialize what salvage kept, injure it again with a
  // mutation chosen by the input itself, and re-ingest.  This reaches
  // the "almost well-formed" neighbourhood that raw fuzz bytes rarely
  // hit.
  Trace T;
  IngestReport Ingest;
  if (!ingestTrace(Text, T, Ingest).ok())
    return 0;
  uint64_t H = fnv1a(Data, Size);
  FaultKind Kind = static_cast<FaultKind>(H % NumFaultKinds);
  InjectedFault Fault = injectFault(serializeTrace(T), Kind, H);
  pipelineOnce(Fault.Text);
  return 0;
}

} // namespace

#if defined(CAFA_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  return runOne(Data, Size);
}

#else // standalone driver

#include <algorithm>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <sys/stat.h>
#include <vector>

namespace {

int Executed = 0;

void runBuffer(const std::string &Bytes, const std::string &Name) {
  runOne(reinterpret_cast<const uint8_t *>(Bytes.data()), Bytes.size());
  ++Executed;
  std::fprintf(stderr, "ok %s (%zu bytes)\n", Name.c_str(), Bytes.size());
}

void runFile(const std::string &Path);

void runPath(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0) {
    std::fprintf(stderr, "error: cannot stat %s\n", Path.c_str());
    return;
  }
  if (!S_ISDIR(St.st_mode)) {
    runFile(Path);
    return;
  }
  DIR *Dir = ::opendir(Path.c_str());
  if (!Dir)
    return;
  std::vector<std::string> Entries;
  while (struct dirent *E = ::readdir(Dir)) {
    if (E->d_name[0] == '.')
      continue;
    Entries.push_back(Path + "/" + E->d_name);
  }
  ::closedir(Dir);
  // Deterministic order regardless of readdir's.
  std::sort(Entries.begin(), Entries.end());
  for (const std::string &E : Entries)
    runPath(E);
}

void runFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read %s\n", Path.c_str());
    return;
  }
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  runBuffer(Bytes, Path);
}

/// Built-in seeds for an argument-less run: a valid header, a tiny
/// well-formed trace, and assorted damage around both.
const char *BuiltinSeeds[] = {
    "",
    "cafa-trace v1\n",
    "cafa-trace v1\nthread 0 main\nmethod 0 run 16\n"
    "begin 0 0\nptrwrite 0 1 2 0 3\nend 0 0\n",
    "cafa-trace v1\nthread 0 main\nbegin 0",
    "garbage\nmore garbage\n\x01\x02\xff\n",
    "cafa-trace v1\nthread 99999999999999999999 x\n",
};

} // namespace

int main(int argc, char **argv) {
  if (argc <= 1) {
    int I = 0;
    for (const char *Seed : BuiltinSeeds)
      runBuffer(Seed, "builtin-" + std::to_string(I++));
  } else {
    for (int I = 1; I != argc; ++I)
      runPath(argv[I]);
  }
  std::fprintf(stderr, "executed %d input(s)\n", Executed);
  return Executed > 0 ? 0 : 1;
}

#endif // CAFA_LIBFUZZER
