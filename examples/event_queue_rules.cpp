//===- examples/event_queue_rules.cpp - Figure 4 interactively ----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Walks through the causality model's event-queue reasoning on the
// paper's Figure 4 examples: for each scenario, prints the trace, the
// derived verdict under the full model, and the verdict with the
// responsible rule switched off (showing what each rule buys).
//
//   $ ./event_queue_rules
//
//===----------------------------------------------------------------------===//

#include "cafa/Fig4.h"
#include "hb/HbIndex.h"

#include <cstdio>

using namespace cafa;

namespace {

const char *verdict(const HbIndex &Hb, TaskId A, TaskId B) {
  bool AB = Hb.taskOrdered(A, B);
  bool BA = Hb.taskOrdered(B, A);
  if (AB)
    return "A -> B";
  if (BA)
    return "B -> A";
  return "unordered";
}

void printTrace(const Trace &T) {
  for (uint32_t I = 0; I != T.numRecords(); ++I) {
    const TraceRecord &Rec = T.record(I);
    std::printf("    %-10s %s", T.taskName(Rec.Task).c_str(),
                opKindName(Rec.Kind));
    if (Rec.Kind == OpKind::Send)
      std::printf("(%s, delay=%llums)",
                  T.taskName(Rec.targetTask()).c_str(),
                  static_cast<unsigned long long>(Rec.delayMs()));
    else if (Rec.Kind == OpKind::SendAtFront)
      std::printf("(%s)", T.taskName(Rec.targetTask()).c_str());
    std::printf("\n");
  }
}

} // namespace

int main() {
  for (Fig4Scenario &S : buildFig4Scenarios()) {
    std::printf("=== %s ===\n", S.Name.c_str());
    std::printf("  %s\n  trace:\n", S.Explanation.c_str());
    printTrace(S.T);

    TaskIndex Index(S.T);
    HbIndex Full(S.T, Index, HbOptions());
    std::printf("  full model:          %s\n", verdict(Full, S.A, S.B));

    if (S.Rule != "none") {
      HbOptions Opt;
      if (S.Rule == "atomicity")
        Opt.EnableAtomicityRule = false;
      else
        Opt.EnableQueueRules = false;
      HbIndex Without(S.T, Index, Opt);
      std::printf("  without %-10s   %s\n", (S.Rule + ":").c_str(),
                  verdict(Without, S.A, S.B));
    }
    std::printf("\n");
  }
  return 0;
}
