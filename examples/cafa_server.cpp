//===- examples/cafa_server.cpp - Analysis daemon driver ----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Analysis-as-a-service driver over src/server/: a long-running daemon
// accepting trace submissions on a Unix socket, running each as an
// isolated checkpoint-resuming offline_analyzer worker, and folding
// every terminal outcome into a persistent cross-trace race store that
// accumulates across restarts.
//
//   $ ./cafa_server serve --socket=/tmp/cafa.sock --store=races.journal
//         --checkpoint-root=state/ --workers=4 &
//   $ ./cafa_server ctl /tmp/cafa.sock submit user1 traces/user1.trace
//   $ ./cafa_server ctl /tmp/cafa.sock report
//   $ ./cafa_server ctl /tmp/cafa.sock drain
//
// serve exit codes: 0 drained clean, 2 usage/setup error, 6 drained but
// jobs were cut short by a signal (resumable: restart and resubmit).
// ctl exit codes: 0 the daemon answered "ok"/with data, 1 the daemon
// answered "err ...", 2 usage or connection failure.
// See docs/server.md for the protocol and lifecycle.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace cafa;

static int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s serve --socket=<path> --store=<path> [options]\n"
      "  %s ctl <socket> <command> [args...]\n"
      "serve options:\n"
      "  --socket=<path>          Unix socket for the control plane\n"
      "  --store=<path>           race-store journal (created if absent)\n"
      "  --checkpoint-root=<dir>  per-job state root (default:\n"
      "                           <store>.jobs)\n"
      "  --analyzer=<path>        offline_analyzer binary (default: next\n"
      "                           to this binary; CAFA_ANALYZER overrides)\n"
      "  --workers=<n>            concurrent worker processes (default 1)\n"
      "  --max-attempts=<n>       attempts per job (default 3)\n"
      "  --max-queue=<n>          admission bound: refuse submissions\n"
      "                           past this many queued+running (default 64)\n"
      "  --drain-grace=<ms>       SIGTERM: let running workers finish for\n"
      "                           this long before checkpoint-kill (default 5000)\n"
      "  --watchdog=<ms>          kill a worker running longer (default off)\n"
      "  --rlimit-as=<bytes>      RLIMIT_AS jail per worker (default off)\n"
      "  --mem-limit=<bytes>      soft worker mem limit, attempt 1\n"
      "  --deadline=<ms>          soft worker deadline, attempt 1\n"
      "  --checkpoint-every=<ms>  worker snapshot cadence (default 10)\n"
      "  --backoff-initial=<ms> / --backoff-max=<ms> / --seed=<n>\n"
      "  --analysis-threads=<n> / --ingest-threads=<n>  forwarded\n"
      "  --strict                 forwarded (salvage incidents fail jobs)\n"
      "ctl commands:\n"
      "  submit <id> <trace> [worker-args...]   queue one analysis\n"
      "  status                                 queue + store JSON\n"
      "  report                                 cross-trace aggregate JSON\n"
      "  compact                                rewrite the store journal\n"
      "  drain                                  finish queued work and exit\n"
      "  ping                                   liveness probe\n"
      "serve exit codes: 0 drained clean, 2 usage/setup error,\n"
      "                  6 drained with jobs cut short (resumable)\n",
      Prog, Prog);
  return 2;
}

/// offline_analyzer next to this binary, via /proc/self/exe.
static std::string defaultAnalyzerPath() {
  char Buf[PATH_MAX];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "";
  Buf[N] = '\0';
  std::string Self(Buf);
  size_t Slash = Self.find_last_of('/');
  if (Slash == std::string::npos)
    return "";
  return Self.substr(0, Slash) + "/offline_analyzer";
}

static volatile std::sig_atomic_t StopRequested = 0;
static void onStopSignal(int) { StopRequested = 1; }

static int runServe(int argc, char **argv) {
  ServerOptions Options;
  if (const char *Env = std::getenv("CAFA_ANALYZER"))
    Options.Fleet.AnalyzerPath = Env;

  auto numArg = [](const char *Arg, const char *Prefix,
                   unsigned long long &Out) {
    size_t Len = std::strlen(Prefix);
    if (std::strncmp(Arg, Prefix, Len) != 0)
      return false;
    char *End = nullptr;
    Out = std::strtoull(Arg + Len, &End, 0);
    return End != Arg + Len && *End == '\0';
  };
  auto doubleArg = [](const char *Arg, const char *Prefix, double &Out) {
    size_t Len = std::strlen(Prefix);
    if (std::strncmp(Arg, Prefix, Len) != 0)
      return false;
    char *End = nullptr;
    Out = std::strtod(Arg + Len, &End);
    return End != Arg + Len && *End == '\0';
  };

  for (int I = 2; I != argc; ++I) {
    const char *Arg = argv[I];
    unsigned long long N = 0;
    double D = 0;
    if (std::strncmp(Arg, "--socket=", 9) == 0)
      Options.SocketPath = Arg + 9;
    else if (std::strncmp(Arg, "--store=", 8) == 0)
      Options.StorePath = Arg + 8;
    else if (std::strncmp(Arg, "--checkpoint-root=", 18) == 0)
      Options.Fleet.CheckpointRoot = Arg + 18;
    else if (std::strncmp(Arg, "--analyzer=", 11) == 0)
      Options.Fleet.AnalyzerPath = Arg + 11;
    else if (std::strcmp(Arg, "--strict") == 0)
      Options.Fleet.Strict = true;
    else if (numArg(Arg, "--workers=", N) && N > 0)
      Options.Fleet.Workers = static_cast<unsigned>(N);
    else if (numArg(Arg, "--max-attempts=", N) && N > 0)
      Options.Fleet.MaxAttempts = static_cast<unsigned>(N);
    else if (numArg(Arg, "--max-queue=", N) && N > 0)
      Options.MaxQueue = static_cast<size_t>(N);
    else if (doubleArg(Arg, "--drain-grace=", D))
      Options.DrainGraceMillis = D;
    else if (doubleArg(Arg, "--watchdog=", D))
      Options.Fleet.WatchdogMillis = D;
    else if (numArg(Arg, "--rlimit-as=", N))
      Options.Fleet.RlimitBytes = static_cast<size_t>(N);
    else if (numArg(Arg, "--mem-limit=", N))
      Options.Fleet.MemLimitBytes = static_cast<size_t>(N);
    else if (doubleArg(Arg, "--deadline=", D))
      Options.Fleet.DeadlineMillis = D;
    else if (doubleArg(Arg, "--checkpoint-every=", D))
      Options.Fleet.CheckpointEveryMillis = D;
    else if (doubleArg(Arg, "--backoff-initial=", D))
      Options.Fleet.Backoff.InitialMillis = D;
    else if (doubleArg(Arg, "--backoff-max=", D))
      Options.Fleet.Backoff.MaxMillis = D;
    else if (numArg(Arg, "--seed=", N))
      Options.Fleet.Backoff.Seed = N;
    else if (numArg(Arg, "--analysis-threads=", N) && N > 0)
      Options.Fleet.AnalysisThreads = static_cast<unsigned>(N);
    else if (numArg(Arg, "--ingest-threads=", N) && N > 0)
      Options.Fleet.IngestThreads = static_cast<unsigned>(N);
    else
      return usage(argv[0]);
  }

  if (Options.SocketPath.empty() || Options.StorePath.empty())
    return usage(argv[0]);
  if (Options.Fleet.AnalyzerPath.empty())
    Options.Fleet.AnalyzerPath = defaultAnalyzerPath();
  if (Options.Fleet.CheckpointRoot.empty())
    Options.Fleet.CheckpointRoot = Options.StorePath + ".jobs";

  // SIGTERM/SIGINT start the fast drain; SIGPIPE would otherwise kill
  // the daemon when a ctl client hangs up mid-reply.
  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGPIPE, SIG_IGN);

  Server Daemon(Options);
  if (Status S = Daemon.setup(); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return ServerExitUsage;
  }
  std::fprintf(stderr,
               "cafa_server: listening on %s, store %s, %u worker(s)\n",
               Options.SocketPath.c_str(), Options.StorePath.c_str(),
               Options.Fleet.Workers);
  int Code = Daemon.run(&StopRequested);
  std::fprintf(stderr, "cafa_server: drained, exit %d\n", Code);
  return Code;
}

static int runCtl(int argc, char **argv) {
  if (argc < 4)
    return usage(argv[0]);
  const std::string SocketPath = argv[2];
  std::string Command;
  for (int I = 3; I != argc; ++I) {
    if (I > 3)
      Command += " ";
    Command += argv[I];
  }
  std::string Response;
  if (Status S = serverRequest(SocketPath, Command, Response); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 2;
  }
  std::printf("%s", Response.c_str());
  // Single-line protocol errors are the daemon refusing the command.
  return Response.rfind("err ", 0) == 0 ? 1 : 0;
}

int main(int argc, char **argv) {
  if (argc < 2)
    return usage(argv[0]);
  if (std::strcmp(argv[1], "serve") == 0)
    return runServe(argc, argv);
  if (std::strcmp(argv[1], "ctl") == 0)
    return runCtl(argc, argv);
  return usage(argv[0]);
}
