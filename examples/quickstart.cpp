//===- examples/quickstart.cpp - Minimal end-to-end use of CAFA ---------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The smallest complete CAFA program: model an app with two logically
// concurrent operations on a looper -- a delayed refresh that uses a
// pointer and a user-initiated pause that frees it -- then run the
// instrumented simulation and the offline analyzer, and print the race.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"
#include "ir/IrBuilder.h"

#include <cstdio>

using namespace cafa;

int main() {
  // 1. Describe the program: one process, one looper, one shared pointer.
  auto M = std::make_shared<Module>();
  ProcessId App = M->addProcess("quickstart");
  QueueId Main = M->addQueue("main", App);
  FieldId Session = M->addStaticField("session", /*IsObject=*/true);
  ClassId SessionClass = M->addClass("Session");

  IrBuilder B(*M);

  // Session.ping(): the work the refresh performs on the session.
  B.beginMethod("Session.ping", 1);
  B.work(2);
  MethodId Ping = B.endMethod();

  // onRefresh: `session.ping()` -- reads the pointer and dereferences it.
  B.beginMethod("onRefresh", 2);
  B.sgetObject(1, Session);
  B.invokeVirtual(1, Ping);
  MethodId OnRefresh = B.endMethod();

  // onPause: `session = null` -- the free.
  B.beginMethod("onPause", 1);
  B.constNull(0);
  B.sputObject(Session, 0);
  MethodId OnPause = B.endMethod();

  // appMain: allocate the session, then post a refresh 20 ms out.
  B.beginMethod("appMain", 1);
  B.newInstance(0, SessionClass);
  B.sputObject(Session, 0);
  B.sendEvent(Main, OnRefresh, /*DelayMs=*/20);
  MethodId AppMain = B.endMethod();

  // 2. Drive it: boot thread at t=0, user pause at t=50 ms.
  Scenario S;
  S.AppName = "quickstart";
  S.Program = M;
  S.BootThreads.push_back({0, AppMain, App, "app-main"});
  S.ExternalEvents.push_back({50'000, Main, OnPause, "onPause"});

  // 3. Run instrumented ("CAFA ROM") and analyze the trace offline.
  RuntimeStats Stats;
  Trace T = runScenario(S, RuntimeOptions(), &Stats);
  AnalysisResult R = analyzeTrace(T, DetectorOptions());

  std::printf("simulated %llu events, %zu trace records\n",
              static_cast<unsigned long long>(Stats.EventsProcessed),
              T.numRecords());
  std::printf("%s", renderRaceReport(R.Report, T).c_str());
  // Expected: one use-free race, category (a) -- the refresh and the
  // pause are concurrent even though one looper ran both.
  return R.Report.Races.size() == 1 ? 0 : 1;
}
