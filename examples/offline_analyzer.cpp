//===- examples/offline_analyzer.cpp - Trace files like the real tool ---------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's deployment splits collection from analysis: the ROM writes
// the logger device, the analyzer (often on a server) reads the dump.
// This example does the same with trace files:
//
//   $ ./offline_analyzer record zxing /tmp/zxing.trace   # collect
//   $ ./offline_analyzer analyze /tmp/zxing.trace        # analyze later
//   $ ./offline_analyzer analyze /tmp/zxing.trace --json # CI-friendly
//   $ ./offline_analyzer analyze /tmp/zxing.trace --reach=closure
//   $ ./offline_analyzer dot /tmp/zxing.trace            # Graphviz digest
//
// --reach selects the happens-before reachability oracle (incremental /
// closure / bfs; see docs/hb-reachability.md for when to pick which).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "hb/DotExport.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <cstdio>
#include <cstring>

using namespace cafa;
using namespace cafa::apps;

static int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s record <app> <trace-file>      collect a trace\n"
               "  %s analyze <trace-file> [--json]\n"
               "     [--reach=incremental|closure|bfs]  analyze a trace\n"
               "  %s dot <trace-file>               task-order Graphviz\n"
               "apps:",
               Prog, Prog, Prog);
  for (const std::string &Name : appNames())
    std::fprintf(stderr, " %s", Name.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

int main(int argc, char **argv) {
  if (argc >= 4 && std::strcmp(argv[1], "record") == 0) {
    AppModel Model = buildApp(argv[2]);
    RuntimeStats Stats;
    Trace T = runScenario(Model.S, RuntimeOptions(), &Stats);
    if (Status S = writeTraceFile(T, argv[3]); !S.ok()) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 1;
    }
    std::printf("recorded %zu records (%llu events) to %s\n",
                T.numRecords(),
                static_cast<unsigned long long>(Stats.EventsProcessed),
                argv[3]);
    return 0;
  }

  if (argc >= 3 && std::strcmp(argv[1], "analyze") == 0) {
    bool Json = false;
    DetectorOptions Options;
    for (int I = 3; I != argc; ++I) {
      if (std::strcmp(argv[I], "--json") == 0) {
        Json = true;
      } else if (std::strcmp(argv[I], "--reach=incremental") == 0) {
        Options.Hb.Reach = ReachMode::Incremental;
      } else if (std::strcmp(argv[I], "--reach=closure") == 0) {
        Options.Hb.Reach = ReachMode::Closure;
      } else if (std::strcmp(argv[I], "--reach=bfs") == 0) {
        Options.Hb.Reach = ReachMode::Bfs;
      } else {
        return usage(argv[0]);
      }
    }
    Trace T;
    if (Status S = readTraceFile(argv[2], T); !S.ok()) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 1;
    }
    if (Status S = validateTrace(T); !S.ok()) {
      std::fprintf(stderr, "invalid trace: %s\n", S.message().c_str());
      return 1;
    }
    AnalysisResult R = analyzeTrace(T, Options);
    if (Json) {
      std::printf("%s", renderRaceReportJson(R.Report, T).c_str());
      return 0;
    }
    std::printf("%s", renderTraceStats(R.TraceStatistics).c_str());
    std::printf("analysis: extract %.1f ms, happens-before %.1f ms "
                "(%u fixpoint rounds), detect %.1f ms\n\n",
                R.ExtractMillis, R.HbBuildMillis,
                R.HbStats.FixpointRounds, R.DetectMillis);
    std::printf("%s", renderRaceReport(R.Report, T).c_str());
    return 0;
  }

  if (argc >= 3 && std::strcmp(argv[1], "dot") == 0) {
    Trace T;
    if (Status S = readTraceFile(argv[2], T); !S.ok()) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 1;
    }
    TaskIndex Index(T);
    HbIndex Hb(T, Index, HbOptions());
    std::printf("%s", exportTaskOrderDot(Hb, T).c_str());
    return 0;
  }

  return usage(argv[0]);
}
