//===- examples/offline_analyzer.cpp - Trace files like the real tool ---------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's deployment splits collection from analysis: the ROM writes
// the logger device, the analyzer (often on a server) reads the dump.
// This example does the same with trace files:
//
//   $ ./offline_analyzer record zxing /tmp/zxing.trace   # collect
//   $ ./offline_analyzer analyze /tmp/zxing.trace        # analyze later
//   $ ./offline_analyzer analyze /tmp/zxing.trace --json # CI-friendly
//   $ ./offline_analyzer analyze /tmp/zxing.trace --reach=closure
//   $ ./offline_analyzer analyze /tmp/big.trace --window=65536
//   $ ./offline_analyzer dot /tmp/zxing.trace            # Graphviz digest
//
// --reach selects the happens-before reachability oracle (incremental /
// closure / chain / bfs; see the mode decision table in
// docs/hb-reachability.md for when to pick which).  Unset, the choice
// also honors the CAFA_REACH environment variable.
// --window=<records> runs the windowed streaming detector scan
// (docs/windowed-analysis.md): bounded resident overlay, byte-identical
// report.  Unset, CAFA_WINDOW decides; --window=off pins the batch scan
// even under memory pressure.  The stats block (stderr) reports the
// process peak RSS and the window overlay's high-water mark.
// Damaged dumps are salvaged by default (--strict insists on a pristine
// file); --mem-limit=<bytes> and --deadline=<ms> engage the graceful-
// degradation ladder (docs/robustness.md).
//
// Ingestion is sharded across --ingest-threads=<n> worker threads
// (default: hardware concurrency; the CAFA_INGEST_THREADS environment
// variable overrides the default).  The salvaged trace and its report
// are bit-identical at every thread count, so the flag is purely a
// wall-clock knob (docs/trace-format.md, "Sharded ingestion").
//
// Crash-safe checkpointing (docs/robustness.md): --checkpoint-dir=<dir>
// snapshots analysis progress there (atomically, at --checkpoint-every=
// <ms> cadence and always when a deadline cuts a phase); --resume picks
// an interrupted analysis back up from the snapshot and continues to a
// report bit-identical to an uninterrupted run.  A corrupt or mismatched
// snapshot is rejected with a diagnostic and the analysis restarts
// cleanly.  The same directory also holds the *ingest* checkpoint: a
// crash mid-ingest resumes from the last merged shard instead of
// re-reading the whole dump.
//
// Scripted callers triage on the exit code -- the report goes to stdout,
// every diagnostic to stderr:
//   0  clean analysis, no races
//   1  clean analysis, races reported
//   2  unreadable input (parse/ingest failure) or usage error
//   3  analysis completed degraded: the input needed salvage repairs, or
//      a deadline cut the analysis short (report flagged partial)
//   4  clean analysis resumed from a checkpoint and completed (races
//      or not -- the report says; distinguishes "finished the
//      interrupted job" for orchestrating scripts)
// The full contract is pinned by tests/integration/ExitCodesTest and
// documented in docs/robustness.md §6; the fleet supervisor's retry
// policy (docs/fleet.md) keys off exactly these codes.
//
// The --chaos-* flags are fault-injection hooks for the fleet chaos
// suite (worker hang / crash-after-checkpoint / OOM); they exist so
// supervisor tests can script worker failures deterministically and
// have no effect on analysis results.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"
#include "cafa/ReportJson.h"
#include "confirm/Confirm.h"
#include "hb/DotExport.h"
#include "trace/IngestSession.h"
#include "trace/TraceIO.h"
#include "trace/Validate.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/resource.h>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cafa;
using namespace cafa::apps;

static int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s record <app> <trace-file>      collect a trace\n"
               "  %s analyze <trace-file> [--json] [--strict|--salvage]\n"
               "     [--ingest-threads=<n>] [--analysis-threads=<n>]\n"
               "     [--reach=incremental|closure|chain|bfs]\n"
               "     [--window=<records>|--window=off]\n"
               "     [--mem-limit=<bytes>] [--deadline=<ms>]\n"
               "     [--checkpoint-dir=<dir>] [--checkpoint-every=<ms>]\n"
               "     [--resume]                     analyze\n"
               "     [--confirm[=<n>] --app=<name>] replay-confirm races\n"
               "     [--chaos-hang-ms=<n> | --chaos-kill-after-save |\n"
               "      --chaos-alloc-mb=<n>]  fault hooks for the fleet\n"
               "                             chaos suite (docs/fleet.md)\n"
               "  %s dot <trace-file>               task-order Graphviz\n"
               "exit codes: 0 no races, 1 races, 2 unreadable input,\n"
               "            3 degraded/partial analysis,\n"
               "            4 resumed from checkpoint and completed\n"
               "apps:",
               Prog, Prog, Prog);
  for (const std::string &Name : appNames())
    std::fprintf(stderr, " %s", Name.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

int main(int argc, char **argv) {
  if (argc >= 4 && std::strcmp(argv[1], "record") == 0) {
    AppModel Model = buildApp(argv[2]);
    RuntimeStats Stats;
    Trace T = runScenario(Model.S, RuntimeOptions(), &Stats);
    if (Status S = writeTraceFile(T, argv[3]); !S.ok()) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 1;
    }
    std::printf("recorded %zu records (%llu events) to %s\n",
                T.numRecords(),
                static_cast<unsigned long long>(Stats.EventsProcessed),
                argv[3]);
    return 0;
  }

  if (argc >= 3 && std::strcmp(argv[1], "analyze") == 0) {
    bool Json = false;
    DetectorOptions Options;
    IngestOptions Ingest;
    CheckpointOptions Ckpt;
    unsigned long ChaosHangMillis = 0;
    bool ChaosKillAfterSave = false;
    unsigned long ChaosAllocMb = 0;
    bool Confirm = false;
    unsigned ConfirmBound = 0; // 0 = auto (CAFA_CONFIRM, else 4)
    std::string AppName;
    for (int I = 3; I != argc; ++I) {
      if (std::strcmp(argv[I], "--json") == 0) {
        Json = true;
      } else if (std::strcmp(argv[I], "--strict") == 0) {
        Ingest.Salvage.Strict = true;
      } else if (std::strcmp(argv[I], "--salvage") == 0) {
        Ingest.Salvage.Strict = false; // the default; kept for scripts
      } else if (std::strncmp(argv[I], "--ingest-threads=", 17) == 0) {
        char *End = nullptr;
        unsigned long N = std::strtoul(argv[I] + 17, &End, 10);
        if (End == argv[I] + 17 || *End != '\0' || N == 0)
          return usage(argv[0]);
        Ingest.Threads = static_cast<unsigned>(N);
      } else if (std::strncmp(argv[I], "--analysis-threads=", 19) == 0) {
        char *End = nullptr;
        unsigned long N = std::strtoul(argv[I] + 19, &End, 10);
        if (End == argv[I] + 19 || *End != '\0' || N == 0)
          return usage(argv[0]);
        Options.Hb.Threads = static_cast<unsigned>(N);
      } else if (std::strcmp(argv[I], "--reach=incremental") == 0) {
        Options.Hb.Reach = ReachMode::Incremental;
      } else if (std::strcmp(argv[I], "--reach=closure") == 0) {
        Options.Hb.Reach = ReachMode::Closure;
      } else if (std::strcmp(argv[I], "--reach=chain") == 0) {
        Options.Hb.Reach = ReachMode::Chain;
      } else if (std::strcmp(argv[I], "--reach=bfs") == 0) {
        Options.Hb.Reach = ReachMode::Bfs;
      } else if (std::strcmp(argv[I], "--window=off") == 0) {
        Options.WindowEvents = DetectorOptions::WindowOff;
      } else if (std::strncmp(argv[I], "--window=", 9) == 0) {
        char *End = nullptr;
        unsigned long long N = std::strtoull(argv[I] + 9, &End, 10);
        if (End == argv[I] + 9 || *End != '\0' || N == 0)
          return usage(argv[0]);
        Options.WindowEvents = N;
      } else if (std::strncmp(argv[I], "--mem-limit=", 12) == 0) {
        Options.Hb.MemLimitBytes =
            std::strtoull(argv[I] + 12, nullptr, 10);
      } else if (std::strncmp(argv[I], "--deadline=", 11) == 0) {
        Options.DeadlineMillis = std::strtod(argv[I] + 11, nullptr);
      } else if (std::strncmp(argv[I], "--checkpoint-dir=", 17) == 0) {
        Ckpt.Directory = argv[I] + 17;
      } else if (std::strncmp(argv[I], "--checkpoint-every=", 19) == 0) {
        Ckpt.EveryMillis = std::strtod(argv[I] + 19, nullptr);
      } else if (std::strcmp(argv[I], "--resume") == 0) {
        Ckpt.Resume = true;
      } else if (std::strcmp(argv[I], "--confirm") == 0) {
        Confirm = true;
      } else if (std::strncmp(argv[I], "--confirm=", 10) == 0) {
        char *End = nullptr;
        unsigned long N = std::strtoul(argv[I] + 10, &End, 10);
        if (End == argv[I] + 10 || *End != '\0' || N == 0)
          return usage(argv[0]);
        Confirm = true;
        ConfirmBound = static_cast<unsigned>(N);
      } else if (std::strncmp(argv[I], "--app=", 6) == 0) {
        AppName = argv[I] + 6;
      } else if (std::strncmp(argv[I], "--chaos-hang-ms=", 16) == 0) {
        ChaosHangMillis = std::strtoul(argv[I] + 16, nullptr, 10);
      } else if (std::strcmp(argv[I], "--chaos-kill-after-save") == 0) {
        ChaosKillAfterSave = true;
      } else if (std::strncmp(argv[I], "--chaos-alloc-mb=", 17) == 0) {
        ChaosAllocMb = std::strtoul(argv[I] + 17, nullptr, 10);
      } else {
        return usage(argv[0]);
      }
    }
    if (ChaosKillAfterSave && !Ckpt.enabled()) {
      std::fprintf(stderr, "error: --chaos-kill-after-save needs "
                           "--checkpoint-dir=<dir>\n");
      return 2;
    }
    if ((Ckpt.Resume || Ckpt.EveryMillis > 0) && !Ckpt.enabled()) {
      std::fprintf(stderr, "error: --resume/--checkpoint-every need "
                           "--checkpoint-dir=<dir>\n");
      return 2;
    }
    if (Confirm) {
      // Confirmation replays the scenario; traces do not carry their
      // app model, so the caller must say which one produced the trace.
      if (AppName.empty()) {
        std::fprintf(stderr, "error: --confirm needs --app=<name> (the "
                             "trace does not name its scenario)\n");
        return 2;
      }
      bool Known = false;
      for (const std::string &Name : appNames())
        Known = Known || Name == AppName;
      if (!Known) {
        std::fprintf(stderr, "error: unknown app '%s'\n", AppName.c_str());
        return usage(argv[0]);
      }
    }

    // The ingest checkpoint shares the analysis checkpoint directory:
    // one --checkpoint-dir covers the whole pipeline.
    Ingest.CheckpointDirectory = Ckpt.Directory;
    Ingest.Resume = Ckpt.Resume;

    // A non-windowed run slurps the whole input; pre-check its size
    // against --mem-limit so an oversized dump fails with a usage error
    // up front instead of OOMing mid-ingest.  A windowed run streams
    // from the mapping, so the budget applies to the overlay instead.
    if (Options.Hb.MemLimitBytes > 0 &&
        resolveWindowEvents(Options.WindowEvents) ==
            DetectorOptions::WindowOff)
      Ingest.MaxInputBytes = Options.Hb.MemLimitBytes;

    Trace T;
    IngestReport Ingested;
    IngestSession Session(Ingest);
    Status FeedStatus = Session.feedFile(argv[2]);
    Status IngestStatus =
        FeedStatus.ok() ? Session.finish(T, Ingested) : FeedStatus;
    const IngestResumeOutcome &IRes = Session.resumeOutcome();
    if (IRes.Attempted) {
      if (IRes.Resumed)
        std::fprintf(stderr,
                     "note: ingest resumed from checkpoint (%llu bytes / "
                     "%llu shards already merged)\n",
                     static_cast<unsigned long long>(IRes.BytesSkipped),
                     static_cast<unsigned long long>(IRes.ShardsSkipped));
      else if (!IRes.NoSnapshot)
        std::fprintf(stderr,
                     "warning: ingest checkpoint rejected (%s), "
                     "re-ingesting from the start\n",
                     IRes.RejectReason.c_str());
    }
    if (!IngestStatus.ok()) {
      std::fprintf(stderr, "error: %s\n%s", IngestStatus.message().c_str(),
                   Ingested.summary().c_str());
      return 2;
    }
    if (!Ingested.clean())
      std::fprintf(stderr, "%s", Ingested.summary().c_str());
    ValidateOptions VOpt;
    VOpt.AllowUnsentEvents = true;
    if (Status S = validateTrace(T, VOpt); !S.ok()) {
      std::fprintf(stderr, "invalid trace: %s\n", S.message().c_str());
      return 2;
    }

    // Chaos hooks (fleet chaos suite; see the file header).  The hang
    // and allocation land *before* analyzeTrace so --deadline cannot
    // mask them: a hung worker looks hung, an OOM-jailed worker dies on
    // the allocation.
    std::vector<char> ChaosBallast;
    if (ChaosAllocMb > 0) {
      ChaosBallast.resize(static_cast<size_t>(ChaosAllocMb) << 20);
      // Touch every page so the jail sees committed memory, not just a
      // reservation.
      for (size_t I = 0; I < ChaosBallast.size(); I += 4096)
        ChaosBallast[I] = 0x5A;
    }
    if (ChaosHangMillis > 0)
      ::usleep(ChaosHangMillis * 1000);
    if (ChaosKillAfterSave) {
      // Die the way a real worker crash does: SIGKILL mid-analysis, but
      // only once a snapshot exists on disk -- the scenario where
      // "retry is resume" must hold.  The watcher polls for the
      // atomically-renamed snapshot file.
      std::thread([Path = checkpointPath(Ckpt.Directory)] {
        struct stat St;
        while (::stat(Path.c_str(), &St) != 0)
          ::usleep(1000);
        ::kill(::getpid(), SIGKILL);
      }).detach();
    }

    AnalysisOptions AOpt(Options);
    AOpt.Checkpoint = Ckpt;
    AnalysisResult R = analyzeTrace(T, AOpt);
    const ResumeOutcome &Res = R.Resume;
    if (Res.Attempted) {
      if (Res.Resumed)
        std::fprintf(stderr,
                     "note: resumed from checkpoint (phase %s, %u fixpoint "
                     "rounds done)\n",
                     Res.Phase.c_str(), Res.HbRoundsDone);
      else if (Res.NoSnapshot)
        std::fprintf(stderr,
                     "note: no checkpoint found, starting fresh\n");
      else
        std::fprintf(stderr,
                     "warning: checkpoint rejected (%s), restarting "
                     "analysis cleanly\n",
                     Res.RejectReason.c_str());
    }
    if (!Res.SaveError.empty())
      std::fprintf(stderr,
                   "warning: checkpoint save failed (%s); analysis "
                   "continues but is not resumable\n",
                   Res.SaveError.c_str());
    if (Res.HasBaseline) {
      std::fprintf(stderr,
                   "note: vs interrupted run: %u race(s) confirmed, %u "
                   "new, %zu retracted\n",
                   Res.ConfirmedRaces, Res.NewRaces,
                   Res.RetractedRaces.size());
      for (const std::string &Label : Res.RetractedRaces)
        std::fprintf(stderr, "note: retracted (provisional race "
                             "disappeared): %s\n",
                     Label.c_str());
    }
    if (R.Degradation.DowngradedForMemory)
      std::fprintf(stderr,
                   "note: reachability oracle downgraded %s -> %s to fit "
                   "--mem-limit (results unaffected)\n",
                   reachModeName(R.Degradation.RequestedReach),
                   reachModeName(R.Degradation.UsedReach));
    if (R.WindowEventsUsed)
      std::fprintf(stderr,
                   "note: windowed scan (window %llu records%s; results "
                   "unaffected)\n",
                   static_cast<unsigned long long>(R.WindowEventsUsed),
                   R.WindowShedByMemory ? ", engaged by --mem-limit" : "");
    if (R.Report.Partial)
      std::fprintf(stderr, "warning: partial analysis (%s)\n",
                   R.Report.PartialCause.c_str());
    // Peak RSS covers the whole process (trace included); the overlay
    // high-water is the windowed scan's own resident analysis state.
    struct rusage Usage;
    ::getrusage(RUSAGE_SELF, &Usage);
    unsigned long long PeakRssBytes =
        static_cast<unsigned long long>(Usage.ru_maxrss) * 1024ull;
    if (!Json) {
      std::fprintf(stderr, "%s",
                   renderTraceStats(R.TraceStatistics).c_str());
      std::fprintf(stderr,
                   "analysis: extract %.1f ms, happens-before %.1f ms "
                   "(%u fixpoint rounds), detect %.1f ms\n",
                   R.ExtractMillis, R.HbBuildMillis,
                   R.HbStats.FixpointRounds, R.DetectMillis);
      std::fprintf(stderr,
                   "memory: peak rss %llu bytes, happens-before %zu bytes",
                   PeakRssBytes, R.HbMemoryBytes);
      if (R.WindowEventsUsed)
        std::fprintf(stderr,
                     ", window overlay high-water %zu bytes (%zu "
                     "reachability rows x %u chains, retained %zu bytes)",
                     R.WindowedDetect.OverlayHighWaterBytes,
                     R.WindowedDetect.ReachHighWaterRows,
                     R.WindowedDetect.Chains,
                     R.WindowedDetect.RetainedHighWaterBytes);
      std::fprintf(stderr, "\n\n");
    } else {
      // One machine-readable stats line on stderr; stdout stays the
      // report alone so byte-compare harnesses are unaffected.
      std::fprintf(stderr,
                   "{\"stats\":{\"peak_rss_bytes\":%llu,"
                   "\"hb_bytes\":%zu,\"window_events\":%llu,"
                   "\"overlay_high_water_bytes\":%zu,"
                   "\"reach_high_water_rows\":%zu,\"chains\":%u,"
                   "\"retained_high_water_bytes\":%zu}}\n",
                   PeakRssBytes, R.HbMemoryBytes,
                   static_cast<unsigned long long>(R.WindowEventsUsed),
                   R.WindowedDetect.OverlayHighWaterBytes,
                   R.WindowedDetect.ReachHighWaterRows,
                   R.WindowedDetect.Chains,
                   R.WindowedDetect.RetainedHighWaterBytes);
    }
    RaceDocument Doc = buildRaceDocument(R.Report, T);
    if (Confirm) {
      AppModel Model = buildApp(AppName);
      ConfirmOptions COpt;
      COpt.MaxSchedules = ConfirmBound;
      COpt.Threads = Options.Hb.Threads;
      ConfirmSummary CSum = confirmRaces(Model.S, T, R.Report, COpt);
      applyConfirmVerdicts(CSum, Doc);
      std::fprintf(stderr,
                   "confirm: %u confirmed, %u infeasible, %u unconfirmed "
                   "(%llu replay(s))\n",
                   CSum.Confirmed, CSum.Infeasible, CSum.Unconfirmed,
                   static_cast<unsigned long long>(CSum.SchedulesRun));
      for (size_t I = 0; I < CSum.PerRace.size(); ++I)
        std::fprintf(stderr, "confirm #%zu: %s\n", I + 1,
                     CSum.PerRace[I].Detail.c_str());
    }
    std::printf("%s", Json ? renderRaceReportJson(Doc).c_str()
                           : renderRaceReportText(Doc).c_str());
    if (R.Report.Partial || !Ingested.clean())
      return 3;
    if (Res.Resumed)
      return 4;
    return R.Report.Races.empty() ? 0 : 1;
  }

  if (argc >= 3 && std::strcmp(argv[1], "dot") == 0) {
    Trace T;
    if (Status S = readTraceFile(argv[2], T); !S.ok()) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 2;
    }
    TaskIndex Index(T);
    HbIndex Hb(T, Index, HbOptions());
    std::printf("%s", exportTaskOrderDot(Hb, T).c_str());
    return 0;
  }

  return usage(argv[0]);
}
