//===- examples/mytracks_usefree.cpp - The paper's Figure 1 story -------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Runs the bundled MyTracks application model (the paper's motivating
// example) and walks through its report: the Figure 1 providerUtils race
// delivered through the recording service's Binder connection, the
// worker-thread races a conventional detector misses, and the
// flag-guarded false positives.
//
//   $ ./mytracks_usefree
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "cafa/Cafa.h"

#include <cstdio>
#include <map>

using namespace cafa;
using namespace cafa::apps;

int main() {
  AppModel Model = buildMyTracks();
  std::printf("running the instrumented MyTracks model...\n");
  RuntimeStats Stats;
  Trace T = runScenario(Model.S, RuntimeOptions(), &Stats);
  std::printf("  %llu events processed, %zu records collected\n\n",
              static_cast<unsigned long long>(Stats.EventsProcessed),
              T.numRecords());

  AnalysisResult R = analyzeTrace(T, DetectorOptions());

  // Join reports with the model's ground truth for annotated output.
  std::map<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>,
           const GroundTruthEntry *>
      Labels;
  for (const GroundTruthEntry &E : Model.Truth.Entries)
    Labels[{E.UseMethod.value(), E.UsePc, E.FreeMethod.value(),
            E.FreePc}] = &E;

  std::printf("CAFA reported %zu use-free races:\n", R.Report.Races.size());
  size_t N = 0;
  for (const UseFreeRace &Race : R.Report.Races) {
    auto It = Labels.find({Race.Use.Method.value(), Race.Use.Pc,
                           Race.Free.Method.value(), Race.Free.Pc});
    const char *Verdict =
        It == Labels.end() ? "?" : raceLabelName(It->second->Label);
    std::printf("  #%zu [%s/%s] %s\n", ++N,
                raceCategoryName(Race.Category), Verdict,
                renderRaceLine(Race, T).c_str());
    if (It != Labels.end())
      std::printf("        %s\n", It->second->Note.c_str());
  }

  Table1Row Row = evaluateReport(R.Report, Model.Truth, T, "mytracks");
  std::printf("\nTable 1 row: reported=%llu a=%llu b=%llu c=%llu "
              "I=%llu II=%llu III=%llu (paper: 8 / 1 3 0 / 0 4 0)\n",
              static_cast<unsigned long long>(Row.Reported),
              static_cast<unsigned long long>(Row.TrueA),
              static_cast<unsigned long long>(Row.TrueB),
              static_cast<unsigned long long>(Row.TrueC),
              static_cast<unsigned long long>(Row.FpI),
              static_cast<unsigned long long>(Row.FpII),
              static_cast<unsigned long long>(Row.FpIII));
  return 0;
}
