//===- examples/commutative_events.cpp - Figures 2 and 5 ----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Why low-level race detection drowns in false positives on event-driven
// code, and how CAFA's design avoids it.  Builds one app containing:
//
//   - Figure 2's commutative scalar conflict (onPause writes
//     resizeAllowed, onLayout reads it): a "race" to a naive detector,
//     harmless in reality because events are atomic;
//   - Figure 5's commutative use-free pairs: a null-checked re-read
//     (if-guard) and an allocate-then-use (intra-event-allocation);
//   - one real use-after-free hazard.
//
// Then compares the naive count against CAFA with filters on and off.
//
//   $ ./commutative_events
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"
#include "cafa/Cafa.h"

#include <cstdio>

using namespace cafa;
using namespace cafa::apps;

int main() {
  AppBuilder App("connectbot-mini");
  // Figure 2: commutative scalar conflicts (20 widget fields).
  App.addNaiveNoise(/*NumFields=*/20, /*ReaderInstances=*/3,
                    /*WriterInstances=*/2);
  // Figure 5: commutative use-free pairs.
  App.addGuardedCommutativePair("onFocusHandler");
  App.addAllocBeforeUsePair("onResumeHandler");
  // And one real bug.
  App.seedIntraThreadRace("staleSession");
  Table1Row Dummy;
  AppModel Model = App.finish(Dummy);

  Trace T = runScenario(Model.S, RuntimeOptions());
  TaskIndex Index(T);
  HbIndex Hb(T, Index, HbOptions());
  AccessDb Db = extractAccesses(T, Index);

  NaiveRaceResult Naive =
      detectLowLevelRaces(T, Index, Hb, NaiveDetectorOptions());
  std::printf("naive low-level detector:   %llu races "
              "(commutative conflicts included)\n",
              static_cast<unsigned long long>(Naive.StaticRaces));

  DetectorOptions NoFilters;
  NoFilters.IfGuardFilter = false;
  NoFilters.IntraEventAllocFilter = false;
  RaceReport Unfiltered = detectUseFreeRaces(T, Index, Db, Hb, NoFilters);
  std::printf("use-free, no heuristics:    %zu races\n",
              Unfiltered.Races.size());

  RaceReport Filtered =
      detectUseFreeRaces(T, Index, Db, Hb, DetectorOptions());
  std::printf("use-free + heuristics:      %zu race(s)\n\n",
              Filtered.Races.size());
  std::printf("%s", renderRaceReport(Filtered, T).c_str());
  std::printf("\nfilters removed: if-guard=%llu intra-event-alloc=%llu\n",
              static_cast<unsigned long long>(
                  Filtered.Filters.IfGuardFiltered),
              static_cast<unsigned long long>(
                  Filtered.Filters.IntraEventAlloc));
  return Filtered.Races.size() == 1 ? 0 : 1;
}
