//===- examples/cafa_fleet.cpp - Supervised batch analysis driver -------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Thin driver over the fleet supervisor (src/fleet/): takes a manifest
// of trace files, runs each analysis as an isolated offline_analyzer
// child process, and emits one aggregate cross-trace report.
//
//   $ ./cafa_fleet run nightly.manifest --workers=4 --json
//
// Faults are contained per job: a worker that crashes or OOMs is
// retried with capped jittered backoff and *resumes from its own
// checkpoint sub-directory*; a hung worker is killed by the watchdog; a
// job that keeps failing lands in a terminal failed:<cause> state while
// the rest of the batch completes.  See docs/fleet.md.
//
// Exit codes (triage-friendly, one step up from offline_analyzer's):
//   0  every job done, no races anywhere
//   1  every job done, races reported
//   2  usage / manifest / setup error (no batch ran)
//   3  batch completed but some jobs degraded (partial reports)
//   5  batch completed but some jobs failed terminally
//
//===----------------------------------------------------------------------===//

#include "fleet/Fleet.h"
#include "trace/Manifest.h"

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace cafa;

static int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s run <manifest> [options]\n"
      "manifest: one job per line, '<trace-path>' or '<id> <trace-path>'\n"
      "          ('#' comments; relative paths resolve against the\n"
      "          manifest's directory)\n"
      "options:\n"
      "  --analyzer=<path>        offline_analyzer binary (default: next\n"
      "                           to this binary; CAFA_ANALYZER overrides)\n"
      "  --checkpoint-root=<dir>  per-job state root (default:\n"
      "                           <manifest>.fleet)\n"
      "  --workers=<n>            concurrent worker processes (default 1)\n"
      "  --max-attempts=<n>       attempts per job (default 3)\n"
      "  --watchdog=<ms>          kill a worker running longer (default off)\n"
      "  --rlimit-as=<bytes>      RLIMIT_AS jail per worker (default off)\n"
      "  --mem-limit=<bytes>      soft worker mem limit, attempt 1\n"
      "  --deadline=<ms>          soft worker deadline, attempt 1\n"
      "  --checkpoint-every=<ms>  worker snapshot cadence (default 10)\n"
      "  --backoff-initial=<ms>   first retry delay (default 100)\n"
      "  --backoff-max=<ms>       retry delay cap (default 30000)\n"
      "  --seed=<n>               backoff jitter seed (default 0x5EEDCAFA)\n"
      "  --analysis-threads=<n> / --ingest-threads=<n>  forwarded\n"
      "  --strict                 forwarded (salvage incidents fail jobs)\n"
      "  --json                   aggregate report as JSON on stdout\n"
      "exit codes: 0 all done no races, 1 all done races, 2 usage error,\n"
      "            3 some jobs partial, 5 some jobs failed\n",
      Prog);
  return 2;
}

/// offline_analyzer next to this binary, via /proc/self/exe.
static std::string defaultAnalyzerPath() {
  char Buf[PATH_MAX];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "";
  Buf[N] = '\0';
  std::string Self(Buf);
  size_t Slash = Self.find_last_of('/');
  if (Slash == std::string::npos)
    return "";
  return Self.substr(0, Slash) + "/offline_analyzer";
}

int main(int argc, char **argv) {
  if (argc < 3 || std::strcmp(argv[1], "run") != 0)
    return usage(argv[0]);
  const std::string ManifestPath = argv[2];

  FleetOptions Options;
  bool Json = false;
  if (const char *Env = std::getenv("CAFA_ANALYZER"))
    Options.AnalyzerPath = Env;

  auto numArg = [](const char *Arg, const char *Prefix,
                   unsigned long long &Out) {
    size_t Len = std::strlen(Prefix);
    if (std::strncmp(Arg, Prefix, Len) != 0)
      return false;
    char *End = nullptr;
    Out = std::strtoull(Arg + Len, &End, 0);
    return End != Arg + Len && *End == '\0';
  };
  auto doubleArg = [](const char *Arg, const char *Prefix, double &Out) {
    size_t Len = std::strlen(Prefix);
    if (std::strncmp(Arg, Prefix, Len) != 0)
      return false;
    char *End = nullptr;
    Out = std::strtod(Arg + Len, &End);
    return End != Arg + Len && *End == '\0';
  };

  for (int I = 3; I != argc; ++I) {
    const char *Arg = argv[I];
    unsigned long long N = 0;
    double D = 0;
    if (std::strcmp(Arg, "--json") == 0)
      Json = true;
    else if (std::strcmp(Arg, "--strict") == 0)
      Options.Strict = true;
    else if (std::strncmp(Arg, "--analyzer=", 11) == 0)
      Options.AnalyzerPath = Arg + 11;
    else if (std::strncmp(Arg, "--checkpoint-root=", 18) == 0)
      Options.CheckpointRoot = Arg + 18;
    else if (numArg(Arg, "--workers=", N) && N > 0)
      Options.Workers = static_cast<unsigned>(N);
    else if (numArg(Arg, "--max-attempts=", N) && N > 0)
      Options.MaxAttempts = static_cast<unsigned>(N);
    else if (doubleArg(Arg, "--watchdog=", D))
      Options.WatchdogMillis = D;
    else if (numArg(Arg, "--rlimit-as=", N))
      Options.RlimitBytes = static_cast<size_t>(N);
    else if (numArg(Arg, "--mem-limit=", N))
      Options.MemLimitBytes = static_cast<size_t>(N);
    else if (doubleArg(Arg, "--deadline=", D))
      Options.DeadlineMillis = D;
    else if (doubleArg(Arg, "--checkpoint-every=", D))
      Options.CheckpointEveryMillis = D;
    else if (doubleArg(Arg, "--backoff-initial=", D))
      Options.Backoff.InitialMillis = D;
    else if (doubleArg(Arg, "--backoff-max=", D))
      Options.Backoff.MaxMillis = D;
    else if (numArg(Arg, "--seed=", N))
      Options.Backoff.Seed = N;
    else if (numArg(Arg, "--analysis-threads=", N) && N > 0)
      Options.AnalysisThreads = static_cast<unsigned>(N);
    else if (numArg(Arg, "--ingest-threads=", N) && N > 0)
      Options.IngestThreads = static_cast<unsigned>(N);
    else
      return usage(argv[0]);
  }

  if (Options.AnalyzerPath.empty())
    Options.AnalyzerPath = defaultAnalyzerPath();
  if (Options.CheckpointRoot.empty())
    Options.CheckpointRoot = ManifestPath + ".fleet";

  std::vector<ManifestEntry> Entries;
  if (Status S = readManifestFile(ManifestPath, Entries); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 2;
  }
  if (Entries.empty()) {
    std::fprintf(stderr, "error: manifest %s names no jobs\n",
                 ManifestPath.c_str());
    return 2;
  }
  std::vector<FleetJob> Jobs;
  Jobs.reserve(Entries.size());
  for (const ManifestEntry &Entry : Entries) {
    FleetJob Job;
    Job.Id = Entry.Id;
    Job.TracePath = Entry.TracePath;
    Jobs.push_back(std::move(Job));
  }

  std::fprintf(stderr, "fleet: %zu job(s), %u worker(s), analyzer %s\n",
               Jobs.size(), Options.Workers,
               Options.AnalyzerPath.c_str());
  FleetResult Result;
  if (Status S = runFleet(Jobs, Options, Result); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 2;
  }

  // Aggregate to stdout; the per-job narrative to stderr.
  std::fprintf(stderr, "%s", Result.AggregateText.c_str());
  std::fprintf(stderr, "fleet wall time: %.1f ms\n", Result.WallMillis);
  if (Json)
    std::printf("%s", Result.AggregateJson.c_str());
  else
    std::printf("%s", Result.AggregateText.c_str());

  if (Result.Failed > 0)
    return 5;
  if (Result.Partial > 0)
    return 3;
  return Result.DistinctRaces > 0 ? 1 : 0;
}
