//===- examples/cafa_fleet.cpp - Supervised batch analysis driver -------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Thin driver over the fleet supervisor (src/fleet/): takes a manifest
// of trace files, runs each analysis as an isolated offline_analyzer
// child process, and emits one aggregate cross-trace report.
//
//   $ ./cafa_fleet run nightly.manifest --workers=4 --json
//
// Faults are contained per job: a worker that crashes or OOMs is
// retried with capped jittered backoff and *resumes from its own
// checkpoint sub-directory*; a hung worker is killed by the watchdog; a
// job that keeps failing lands in a terminal failed:<cause> state while
// the rest of the batch completes.  See docs/fleet.md.
//
// SIGTERM/SIGINT drain the batch instead of killing it mid-write:
// running workers are checkpoint-killed, unfinished jobs land in the
// "interrupted" state, and the aggregate for whatever *did* complete is
// still emitted (flagged with the interrupted count).  Re-running the
// same manifest against the same checkpoint root resumes the
// interrupted jobs.
//
// Exit codes (triage-friendly, one step up from offline_analyzer's):
//   0  every job done, no races anywhere
//   1  every job done, races reported
//   2  usage / manifest / setup error (no batch ran)
//   3  batch completed but some jobs degraded (partial reports)
//   5  batch completed but some jobs failed terminally
//   6  batch interrupted by a signal (unfinished jobs are resumable)
//
//===----------------------------------------------------------------------===//

#include "fleet/Fleet.h"
#include "support/DurableFile.h"
#include "trace/Manifest.h"

#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace cafa;

static int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s run <manifest> [options]\n"
      "manifest: one job per line, '<trace-path>' or '<id> <trace-path>'\n"
      "          ('#' comments; relative paths resolve against the\n"
      "          manifest's directory)\n"
      "options:\n"
      "  --analyzer=<path>        offline_analyzer binary (default: next\n"
      "                           to this binary; CAFA_ANALYZER overrides)\n"
      "  --checkpoint-root=<dir>  per-job state root (default:\n"
      "                           <manifest>.fleet)\n"
      "  --workers=<n>            concurrent worker processes (default 1)\n"
      "  --max-attempts=<n>       attempts per job (default 3)\n"
      "  --watchdog=<ms>          kill a worker running longer (default off)\n"
      "  --rlimit-as=<bytes>      RLIMIT_AS jail per worker (default off)\n"
      "  --mem-limit=<bytes>      soft worker mem limit, attempt 1\n"
      "  --deadline=<ms>          soft worker deadline, attempt 1\n"
      "  --checkpoint-every=<ms>  worker snapshot cadence (default 10)\n"
      "  --backoff-initial=<ms>   first retry delay (default 100)\n"
      "  --backoff-max=<ms>       retry delay cap (default 30000)\n"
      "  --seed=<n>               backoff jitter seed (default 0x5EEDCAFA)\n"
      "  --analysis-threads=<n> / --ingest-threads=<n>  forwarded\n"
      "  --window=<records>       forwarded: workers run the windowed\n"
      "                           streaming scan (bounded overlay memory)\n"
      "  --strict                 forwarded (salvage incidents fail jobs)\n"
      "  --worker-arg=<arg>       extra analyzer argument, passed to every\n"
      "                           worker (repeatable)\n"
      "  --output=<path>          also write the aggregate there, durably\n"
      "                           (atomic tmp+fsync+rename; JSON with\n"
      "                           --json, text otherwise)\n"
      "  --json                   aggregate report as JSON on stdout\n"
      "exit codes: 0 all done no races, 1 all done races, 2 usage error,\n"
      "            3 some jobs partial, 5 some jobs failed,\n"
      "            6 interrupted by signal (unfinished jobs resumable)\n",
      Prog);
  return 2;
}

// SIGTERM/SIGINT request a drain; the supervisor polls the flag between
// ticks (FleetOptions::StopFlag), so the handler only sets it.
static volatile std::sig_atomic_t StopRequested = 0;
static void onStopSignal(int) { StopRequested = 1; }

/// offline_analyzer next to this binary, via /proc/self/exe.
static std::string defaultAnalyzerPath() {
  char Buf[PATH_MAX];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "";
  Buf[N] = '\0';
  std::string Self(Buf);
  size_t Slash = Self.find_last_of('/');
  if (Slash == std::string::npos)
    return "";
  return Self.substr(0, Slash) + "/offline_analyzer";
}

int main(int argc, char **argv) {
  if (argc < 3 || std::strcmp(argv[1], "run") != 0)
    return usage(argv[0]);
  const std::string ManifestPath = argv[2];

  FleetOptions Options;
  bool Json = false;
  std::string OutputPath;
  std::vector<std::string> WorkerArgs;
  if (const char *Env = std::getenv("CAFA_ANALYZER"))
    Options.AnalyzerPath = Env;

  auto numArg = [](const char *Arg, const char *Prefix,
                   unsigned long long &Out) {
    size_t Len = std::strlen(Prefix);
    if (std::strncmp(Arg, Prefix, Len) != 0)
      return false;
    char *End = nullptr;
    Out = std::strtoull(Arg + Len, &End, 0);
    return End != Arg + Len && *End == '\0';
  };
  auto doubleArg = [](const char *Arg, const char *Prefix, double &Out) {
    size_t Len = std::strlen(Prefix);
    if (std::strncmp(Arg, Prefix, Len) != 0)
      return false;
    char *End = nullptr;
    Out = std::strtod(Arg + Len, &End);
    return End != Arg + Len && *End == '\0';
  };

  for (int I = 3; I != argc; ++I) {
    const char *Arg = argv[I];
    unsigned long long N = 0;
    double D = 0;
    if (std::strcmp(Arg, "--json") == 0)
      Json = true;
    else if (std::strcmp(Arg, "--strict") == 0)
      Options.Strict = true;
    else if (std::strncmp(Arg, "--analyzer=", 11) == 0)
      Options.AnalyzerPath = Arg + 11;
    else if (std::strncmp(Arg, "--checkpoint-root=", 18) == 0)
      Options.CheckpointRoot = Arg + 18;
    else if (numArg(Arg, "--workers=", N) && N > 0)
      Options.Workers = static_cast<unsigned>(N);
    else if (numArg(Arg, "--max-attempts=", N) && N > 0)
      Options.MaxAttempts = static_cast<unsigned>(N);
    else if (doubleArg(Arg, "--watchdog=", D))
      Options.WatchdogMillis = D;
    else if (numArg(Arg, "--rlimit-as=", N))
      Options.RlimitBytes = static_cast<size_t>(N);
    else if (numArg(Arg, "--mem-limit=", N))
      Options.MemLimitBytes = static_cast<size_t>(N);
    else if (doubleArg(Arg, "--deadline=", D))
      Options.DeadlineMillis = D;
    else if (doubleArg(Arg, "--checkpoint-every=", D))
      Options.CheckpointEveryMillis = D;
    else if (doubleArg(Arg, "--backoff-initial=", D))
      Options.Backoff.InitialMillis = D;
    else if (doubleArg(Arg, "--backoff-max=", D))
      Options.Backoff.MaxMillis = D;
    else if (numArg(Arg, "--seed=", N))
      Options.Backoff.Seed = N;
    else if (numArg(Arg, "--analysis-threads=", N) && N > 0)
      Options.AnalysisThreads = static_cast<unsigned>(N);
    else if (numArg(Arg, "--ingest-threads=", N) && N > 0)
      Options.IngestThreads = static_cast<unsigned>(N);
    else if (numArg(Arg, "--window=", N) && N > 0)
      Options.WindowEvents = N;
    else if (std::strncmp(Arg, "--worker-arg=", 13) == 0)
      WorkerArgs.push_back(Arg + 13);
    else if (std::strncmp(Arg, "--output=", 9) == 0)
      OutputPath = Arg + 9;
    else
      return usage(argv[0]);
  }

  if (Options.AnalyzerPath.empty())
    Options.AnalyzerPath = defaultAnalyzerPath();
  if (Options.CheckpointRoot.empty())
    Options.CheckpointRoot = ManifestPath + ".fleet";

  std::vector<ManifestEntry> Entries;
  if (Status S = readManifestFile(ManifestPath, Entries); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 2;
  }
  if (Entries.empty()) {
    std::fprintf(stderr, "error: manifest %s names no jobs\n",
                 ManifestPath.c_str());
    return 2;
  }
  std::vector<FleetJob> Jobs;
  Jobs.reserve(Entries.size());
  for (const ManifestEntry &Entry : Entries) {
    FleetJob Job;
    Job.Id = Entry.Id;
    Job.TracePath = Entry.TracePath;
    Job.ExtraArgs = WorkerArgs;
    Jobs.push_back(std::move(Job));
  }

  std::signal(SIGTERM, onStopSignal);
  std::signal(SIGINT, onStopSignal);
  Options.StopFlag = &StopRequested;

  std::fprintf(stderr, "fleet: %zu job(s), %u worker(s), analyzer %s\n",
               Jobs.size(), Options.Workers,
               Options.AnalyzerPath.c_str());
  FleetResult Result;
  if (Status S = runFleet(Jobs, Options, Result); !S.ok()) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 2;
  }

  // Aggregate to stdout; the per-job narrative to stderr.  An
  // interrupted batch still reports everything that completed.
  std::fprintf(stderr, "%s", Result.AggregateText.c_str());
  std::fprintf(stderr, "fleet wall time: %.1f ms\n", Result.WallMillis);
  if (Result.WasInterrupted)
    std::fprintf(stderr,
                 "fleet: interrupted by signal; %u job(s) unfinished "
                 "(resumable via the same checkpoint root)\n",
                 Result.Interrupted);
  if (Json)
    std::printf("%s", Result.AggregateJson.c_str());
  else
    std::printf("%s", Result.AggregateText.c_str());
  if (!OutputPath.empty()) {
    // Durable: a crash right here must leave the previous aggregate (or
    // none), never a torn file a dashboard would half-parse.
    const std::string &Body =
        Json ? Result.AggregateJson : Result.AggregateText;
    if (Status S = durableWrite(OutputPath, Body); !S.ok()) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 2;
    }
  }

  if (Result.WasInterrupted)
    return 6;
  if (Result.Failed > 0)
    return 5;
  if (Result.Partial > 0)
    return 3;
  return Result.DistinctRaces > 0 ? 1 : 0;
}
