//===- support/Backoff.h - Capped jittered exponential backoff -*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Retry-delay schedule for supervisors that restart crashed or hung
/// workers: exponential growth from an initial delay, a hard cap, and
/// subtractive jitter so a fleet of failing jobs does not retry in
/// lockstep (the classic thundering-herd problem).
///
/// Determinism matters here as everywhere else in CAFA: the jitter comes
/// from a seeded support/Rng, so two Backoff instances constructed with
/// the same policy emit the same delay sequence on every platform.  The
/// fleet supervisor seeds each job's Backoff from (fleet seed, job
/// index), which keeps chaos-test schedules replayable.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_BACKOFF_H
#define CAFA_SUPPORT_BACKOFF_H

#include "support/Rng.h"

namespace cafa {

/// Tuning for one Backoff schedule.
struct BackoffPolicy {
  /// Delay before the first retry, in milliseconds.  0 selects the
  /// zero-sleep fast path: every delay is exactly 0 and the jitter RNG
  /// is never consulted (tests retry instantly and stay deterministic
  /// regardless of seed).
  double InitialMillis = 100.0;
  /// Hard ceiling applied after growth and before jitter; no returned
  /// delay ever exceeds it.
  double MaxMillis = 30000.0;
  /// Growth factor between consecutive retries.
  double Multiplier = 2.0;
  /// Fraction of the grown delay eligible to be jittered *away*:
  /// the returned delay is uniform in [base*(1-JitterFraction), base].
  /// Subtractive jitter keeps the cap exact.  0 disables jitter.
  double JitterFraction = 0.5;
  /// Seed for the jitter stream.
  uint64_t Seed = 0x5EEDCAFAull;
};

/// Produces the delay schedule for one retried job.
class Backoff {
public:
  explicit Backoff(const BackoffPolicy &P = BackoffPolicy())
      : Policy(P), Jitter(P.Seed) {}

  /// Returns the delay (milliseconds) to wait before the next retry and
  /// advances the schedule.
  double nextDelayMillis() {
    double Base = Policy.InitialMillis;
    // Multiply step by step instead of pow() so a long failure streak
    // saturates at the cap instead of overflowing.
    for (unsigned I = 0; I < Attempt && Base < Policy.MaxMillis; ++I)
      Base *= Policy.Multiplier;
    if (Base > Policy.MaxMillis)
      Base = Policy.MaxMillis;
    ++Attempt;
    if (Base <= 0)
      return 0; // zero-sleep fast path: no RNG draw
    if (Policy.JitterFraction > 0) {
      constexpr uint64_t Grain = 1u << 20;
      double U = static_cast<double>(Jitter.below(Grain)) /
                 static_cast<double>(Grain); // uniform in [0, 1)
      Base -= Base * Policy.JitterFraction * U;
    }
    return Base;
  }

  /// Number of delays handed out so far.
  unsigned attempts() const { return Attempt; }

  /// Restarts the growth ladder.  The jitter stream keeps advancing --
  /// a reset schedule stays deterministic but does not replay the same
  /// jitter values.
  void reset() { Attempt = 0; }

private:
  BackoffPolicy Policy;
  Rng Jitter;
  unsigned Attempt = 0;
};

} // namespace cafa

#endif // CAFA_SUPPORT_BACKOFF_H
