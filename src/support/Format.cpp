//===- support/Format.cpp - printf-style string formatting ---------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

using namespace cafa;

std::string cafa::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string cafa::withThousandsSep(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Out;
  size_t N = Digits.size();
  for (size_t I = 0; I != N; ++I) {
    if (I != 0 && (N - I) % 3 == 0)
      Out.push_back(',');
    Out.push_back(Digits[I]);
  }
  return Out;
}

std::string cafa::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S.substr(0, Width);
  return std::string(Width - S.size(), ' ') + S;
}

std::string cafa::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S.substr(0, Width);
  return S + std::string(Width - S.size(), ' ');
}
