//===- support/Status.cpp - Lightweight error propagation ----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Status.h"

#include <cstdio>
#include <cstdlib>

using namespace cafa;

void cafa::reportFatalError(const char *Message) {
  std::fprintf(stderr, "cafa fatal error: %s\n", Message);
  std::abort();
}
