//===- support/Timer.cpp - Wall and CPU time measurement -----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

#include <ctime>

using namespace cafa;

static uint64_t readClock(clockid_t Clock) {
  timespec Ts;
  clock_gettime(Clock, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(Ts.tv_nsec);
}

uint64_t cafa::wallTimeNanos() { return readClock(CLOCK_MONOTONIC); }

uint64_t cafa::cpuTimeNanos() { return readClock(CLOCK_PROCESS_CPUTIME_ID); }
