//===- support/BitVec.cpp - Dense dynamic bit vector ---------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/BitVec.h"

// BitVec is header-only; this file anchors the library target.
