//===- support/Deprecated.h - Deprecation annotation macro -----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CAFA_DEPRECATED(Msg) marks a legacy API surface that newer code should
/// not call, with a migration note shown in the compiler warning.
///
/// Translation units that *pin* legacy behaviour on purpose (back-compat
/// tests, the wrappers' own implementation files) define
/// CAFA_NO_DEPRECATION_WARNINGS before including any CAFA header to
/// compile the annotations away.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_DEPRECATED_H
#define CAFA_SUPPORT_DEPRECATED_H

#if defined(CAFA_NO_DEPRECATION_WARNINGS)
#define CAFA_DEPRECATED(Msg)
#else
#define CAFA_DEPRECATED(Msg) [[deprecated(Msg)]]
#endif

#endif // CAFA_SUPPORT_DEPRECATED_H
