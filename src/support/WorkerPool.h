//===- support/WorkerPool.h - Shared lazy-start worker pool ---------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A small fixed-size thread pool shared by the parallel phases of the
// pipeline: sharded trace ingestion (trace/IngestSession) and the
// parallel analysis mode (hb/Reachability row sweeps, the HbIndex rule
// engine, and the detector pair scan).  Two usage styles:
//
//  - submit(): fire-and-forget jobs drained FIFO by the helper threads.
//    Completion is the caller's business (IngestSession tracks per-job
//    Done flags under its own lock).  With zero helpers the job runs
//    inline, which is the deterministic 1-thread path.
//
//  - parallelFor(N, Fn): the calling thread *participates*.  Tasks
//    0..N-1 are claimed from a shared atomic counter by the caller and
//    up to min(helpers, N-1) helper threads; the call returns only when
//    every task has finished.  Determinism discipline: callers keep
//    per-TASK (not per-worker) result buffers and merge them in task
//    order afterwards, so the output never depends on which thread ran
//    which task.
//
// Threads start lazily on first use and are joined by the destructor;
// jobs still queued at destruction are discarded (all current callers
// drain explicitly before tearing the pool down).
//
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_WORKERPOOL_H
#define CAFA_SUPPORT_WORKERPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cafa {

class WorkerPool {
public:
  /// \p HelperThreads is the number of *extra* threads: 0 means every
  /// submit() and parallelFor() runs entirely on the calling thread.
  explicit WorkerPool(unsigned HelperThreads);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  unsigned helperThreads() const { return Helpers; }

  /// Enqueues \p Job for a helper thread (runs inline with 0 helpers).
  void submit(std::function<void()> Job);

  /// Runs Fn(0..NumTasks-1) across the caller plus the helper threads;
  /// returns when all tasks have completed.  Task claim order is
  /// nondeterministic -- callers must not encode ordering assumptions in
  /// Fn beyond "tasks are disjoint".
  void parallelFor(size_t NumTasks, const std::function<void(size_t)> &Fn);

private:
  struct Batch;

  void ensureStartedLocked();
  void workerMain();

  const unsigned Helpers;
  std::mutex Mu;
  std::condition_variable WorkCv;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  bool Stop = false;
};

/// Resolves a requested worker-thread count: 0 consults \p EnvVar, then
/// std::thread::hardware_concurrency(), then falls back to 1; any result
/// is capped at 256.  Shared by CAFA_INGEST_THREADS and
/// CAFA_ANALYSIS_THREADS so both knobs behave identically.
unsigned resolveWorkerThreads(unsigned Requested, const char *EnvVar);

/// resolveWorkerThreads with the CAFA_ANALYSIS_THREADS environment knob
/// (the --analysis-threads default).
unsigned resolveAnalysisThreads(unsigned Requested);

} // namespace cafa

#endif // CAFA_SUPPORT_WORKERPOOL_H
