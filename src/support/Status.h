//===- support/Status.h - Lightweight error propagation --------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal Status / Expected pair for recoverable errors.
///
/// The CAFA libraries do not use C++ exceptions.  Programmatic errors are
/// asserted; recoverable errors (malformed trace files, bad options) are
/// propagated with \ref Status or \ref Expected, in the spirit of LLVM's
/// Error / Expected scheme but without the checked-flag machinery, which
/// this project does not need.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_STATUS_H
#define CAFA_SUPPORT_STATUS_H

#include <cassert>
#include <string>
#include <utility>

namespace cafa {

/// The result of an operation that can fail with a diagnostic message.
class Status {
public:
  /// Creates a success value.
  Status() = default;

  /// Creates a failure carrying \p Message.  Messages follow the LLVM
  /// diagnostic style: lowercase first word, no trailing period.
  static Status error(std::string Message) {
    Status S;
    S.Failed = true;
    S.Message = std::move(Message);
    return S;
  }

  /// Creates an explicit success value (for symmetry with error()).
  static Status success() { return Status(); }

  /// Returns true on success.
  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Returns the diagnostic message; empty on success.
  const std::string &message() const { return Message; }

private:
  bool Failed = false;
  std::string Message;
};

/// Either a value of type \p T or a failure Status.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure from an error Status.
  Expected(Status S) : Err(std::move(S)) {
    assert(!Err.ok() && "Expected constructed from a success Status");
  }

  /// Returns true if a value is present.
  bool ok() const { return Err.ok(); }
  explicit operator bool() const { return ok(); }

  /// Returns the contained value; must only be called when ok().
  T &get() {
    assert(ok() && "accessing value of failed Expected");
    return Value;
  }
  const T &get() const {
    assert(ok() && "accessing value of failed Expected");
    return Value;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// Returns the failure Status; success() when ok().
  const Status &status() const { return Err; }

  /// Moves the value out; must only be called when ok().
  T take() {
    assert(ok() && "taking value of failed Expected");
    return std::move(Value);
  }

private:
  T Value{};
  Status Err;
};

/// Aborts the process with \p Message.  Used for invariant violations that
/// must be reported even in builds with assertions disabled.
[[noreturn]] void reportFatalError(const char *Message);

} // namespace cafa

#endif // CAFA_SUPPORT_STATUS_H
