//===- support/Subprocess.h - Supervised child processes -------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fork/exec wrapper for supervisors that isolate work in child
/// processes: redirect stdout/stderr to files, optionally jail the child
/// under RLIMIT_AS, poll without blocking, and kill hung children.  The
/// destructor never leaks a running child -- an abandoned subprocess is
/// SIGKILLed and reaped.
///
/// Used by the fleet supervisor (src/fleet/) to run one analysis per
/// trace with crash/hang/OOM isolation; see docs/fleet.md.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_SUBPROCESS_H
#define CAFA_SUPPORT_SUBPROCESS_H

#include "support/Status.h"

#include <csignal>
#include <string>
#include <sys/types.h>
#include <vector>

namespace cafa {

/// How to launch one child process.
struct SubprocessOptions {
  /// Argv[0] is the program path, exec'd directly (no PATH search).
  std::vector<std::string> Argv;
  /// Redirect the child's stdout/stderr into these files (truncated);
  /// empty inherits the parent's stream.
  std::string StdoutPath;
  std::string StderrPath;
  /// When nonzero, setrlimit(RLIMIT_AS) in the child before exec: an
  /// allocation past this ceiling fails inside the child instead of
  /// taking the supervisor down with it.  (Incompatible with ASan,
  /// which reserves terabytes of shadow address space.)
  size_t MemLimitBytes = 0;
};

/// How a child ended.
struct SubprocessExit {
  bool Exited = false;   ///< child called exit(); ExitCode is valid
  int ExitCode = -1;
  bool Signaled = false; ///< child died on a signal; Signal is valid
  int Signal = 0;
};

/// One supervised child process.
class Subprocess {
public:
  Subprocess() = default;
  ~Subprocess() { abandon(); }

  Subprocess(const Subprocess &) = delete;
  Subprocess &operator=(const Subprocess &) = delete;

  /// Forks and execs.  Failure to reach exec in the child surfaces as
  /// exit code 127 (the shell convention), not as a Status.
  Status start(const SubprocessOptions &Options);

  /// True between a successful start() and the reap of the exit status.
  bool running() const { return Pid > 0 && !Reaped; }

  /// Non-blocking: reaps the child if it has ended.  Returns true once
  /// the exit status is available via exitInfo().
  bool poll();

  /// Blocks until the child ends, then returns the exit status.
  const SubprocessExit &wait();

  /// Sends \p Sig to the child (default SIGKILL).  The caller still
  /// polls/waits to reap.
  void kill(int Sig = SIGKILL);

  const SubprocessExit &exitInfo() const { return Exit; }
  pid_t pid() const { return Pid; }

private:
  /// SIGKILL + reap if still running (destructor path).
  void abandon();

  pid_t Pid = -1;
  bool Reaped = false;
  SubprocessExit Exit;
};

} // namespace cafa

#endif // CAFA_SUPPORT_SUBPROCESS_H
