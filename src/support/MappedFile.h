//===- support/MappedFile.h - Read-only file memory mapping ----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only memory mapping of a regular file, used by the sharded
/// ingestion path so multi-GB trace dumps are lexed straight out of the
/// page cache instead of being copied into a resident std::string.
///
/// open() maps only plain regular files; pipes, sockets, devices, and
/// empty files report NotMappable so callers can fall back to buffered
/// reads (IngestSession keeps its chunked ifstream path for exactly
/// that).  The mapping is advised for sequential access and unmapped in
/// the destructor; views handed out (contents()) must not outlive the
/// object.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_MAPPEDFILE_H
#define CAFA_SUPPORT_MAPPEDFILE_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace cafa {

/// RAII read-only mapping of one regular file.
class MappedFile {
public:
  MappedFile() = default;
  ~MappedFile() { reset(); }

  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  MappedFile(MappedFile &&O) noexcept { *this = std::move(O); }
  MappedFile &operator=(MappedFile &&O) noexcept {
    if (this != &O) {
      reset();
      Base = O.Base;
      Size = O.Size;
      O.Base = nullptr;
      O.Size = 0;
    }
    return *this;
  }

  /// Why open() did not produce a mapping.
  enum class Outcome {
    Mapped,      ///< contents() is valid
    NotMappable, ///< not a regular file (or empty): use buffered reads
    Error,       ///< open/fstat/mmap failed on a regular file
  };

  /// Maps \p Path read-only.  On NotMappable the caller should fall back
  /// to a buffered reader; on Error \p ErrOut (when non-null) receives a
  /// diagnostic.
  Outcome open(const std::string &Path, Status *ErrOut = nullptr);

  /// Unmaps (no-op when nothing is mapped).
  void reset();

  bool mapped() const { return Base != nullptr; }
  size_t size() const { return Size; }

  /// The whole file as a view.  Valid until reset()/destruction.
  std::string_view contents() const {
    return std::string_view(static_cast<const char *>(Base), Size);
  }

  /// Byte size of \p Path if it is a regular file, -1 otherwise (the
  /// pre-flight the ingest size budget check uses; never opens the
  /// file's contents).
  static int64_t regularFileSize(const std::string &Path);

private:
  void *Base = nullptr;
  size_t Size = 0;
};

} // namespace cafa

#endif // CAFA_SUPPORT_MAPPEDFILE_H
