//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable PRNG used by the runtime simulator and the
/// application models.
///
/// Reproducibility matters here: the evaluation harness must regenerate the
/// same traces (and therefore the same race reports) on every run, so we do
/// not use std::mt19937 whose distributions are not specified bit-exactly
/// across standard libraries.  SplitMix64 seeds an xoshiro256** generator;
/// both are tiny, fast, and fully specified.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_RNG_H
#define CAFA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace cafa {

/// SplitMix64 step; used to expand a single seed into generator state.
inline uint64_t splitMix64(uint64_t &State) {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

/// A deterministic xoshiro256** generator.
class Rng {
public:
  /// Seeds the generator.  Equal seeds yield identical sequences on every
  /// platform.
  explicit Rng(uint64_t Seed = 0x5EEDCAFAull) {
    uint64_t SM = Seed;
    for (uint64_t &Word : State)
      Word = splitMix64(SM);
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound).  \p Bound must be nonzero.
  /// Uses rejection sampling so the result is exactly uniform.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a nonzero bound");
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform integer in the closed interval [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den != 0 && "chance() requires a nonzero denominator");
    return below(Den) < Num;
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace cafa

#endif // CAFA_SUPPORT_RNG_H
