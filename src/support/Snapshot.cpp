//===- support/Snapshot.cpp - Versioned checksummed binary snapshots ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Snapshot.h"

#include "support/DurableFile.h"

#include <bit>
#include <cstdio>
#include <cstring>

using namespace cafa;

uint64_t cafa::fnv1a64(const void *Data, size_t Size, uint64_t Seed) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

/// File framing: 8-byte magic, then three little-endian header fields,
/// then the payload.  28 bytes total before the payload.
constexpr size_t MagicBytes = 8;

void appendLe(std::string &Out, uint64_t V, int Bytes) {
  for (int I = 0; I != Bytes; ++I)
    Out.push_back(static_cast<char>((V >> (I * 8)) & 0xFF));
}

uint64_t readLe(const char *P, int Bytes) {
  uint64_t V = 0;
  for (int I = 0; I != Bytes; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(P[I])) << (I * 8);
  return V;
}

} // namespace

void SnapshotWriter::u32(uint32_t V) { appendLe(Buf, V, 4); }

void SnapshotWriter::u64(uint64_t V) { appendLe(Buf, V, 8); }

void SnapshotWriter::str(std::string_view S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.append(S.data(), S.size());
}

void SnapshotWriter::u64s(const uint64_t *Words, size_t N) {
  if constexpr (std::endian::native == std::endian::little) {
    // Bulk append: closure-row blobs can be megabytes and the per-word
    // loop below would dominate the save.
    Buf.append(reinterpret_cast<const char *>(Words), N * 8);
  } else {
    for (size_t I = 0; I != N; ++I)
      u64(Words[I]);
  }
}

Status SnapshotWriter::writeFileAtomic(const std::string &Path,
                                       const char *Magic,
                                       uint32_t Version) const {
  std::string Framed;
  Framed.reserve(MagicBytes + 20 + Buf.size());
  Framed.append(Magic, MagicBytes);
  appendLe(Framed, Version, 4);
  appendLe(Framed, Buf.size(), 8);
  appendLe(Framed, fnv1a64(Buf.data(), Buf.size()), 8);
  Framed.append(Buf);
  return durableWrite(Path, Framed);
}

Status SnapshotReader::loadFile(const std::string &Path, const char *Magic,
                                uint32_t Version) {
  Payload.clear();
  Pos = 0;

  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Status::error("cannot open '" + Path + "'");
  std::string Data;
  char Chunk[1 << 16];
  for (size_t N; (N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0;)
    Data.append(Chunk, N);
  bool ReadErr = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadErr)
    return Status::error("cannot read '" + Path + "'");

  if (Data.size() < MagicBytes + 20)
    return Status::error("snapshot truncated (no complete header)");
  if (std::memcmp(Data.data(), Magic, MagicBytes) != 0)
    return Status::error("not a snapshot file (bad magic)");
  uint32_t GotVersion =
      static_cast<uint32_t>(readLe(Data.data() + MagicBytes, 4));
  if (GotVersion != Version)
    return Status::error("unsupported snapshot version " +
                         std::to_string(GotVersion) + " (expected " +
                         std::to_string(Version) + ")");
  uint64_t PayloadSize = readLe(Data.data() + MagicBytes + 4, 8);
  uint64_t Checksum = readLe(Data.data() + MagicBytes + 12, 8);
  if (Data.size() - (MagicBytes + 20) != PayloadSize)
    return Status::error("snapshot truncated (payload length mismatch)");
  const char *P = Data.data() + MagicBytes + 20;
  if (fnv1a64(P, PayloadSize) != Checksum)
    return Status::error("snapshot checksum mismatch (corrupted file)");
  Payload.assign(P, PayloadSize);
  return Status::success();
}

bool SnapshotReader::u8(uint8_t &V) {
  if (Payload.size() - Pos < 1)
    return false;
  V = static_cast<uint8_t>(Payload[Pos++]);
  return true;
}

bool SnapshotReader::u32(uint32_t &V) {
  if (Payload.size() - Pos < 4)
    return false;
  V = static_cast<uint32_t>(readLe(Payload.data() + Pos, 4));
  Pos += 4;
  return true;
}

bool SnapshotReader::u64(uint64_t &V) {
  if (Payload.size() - Pos < 8)
    return false;
  V = readLe(Payload.data() + Pos, 8);
  Pos += 8;
  return true;
}

bool SnapshotReader::str(std::string &S, size_t MaxLen) {
  uint32_t Len;
  if (!u32(Len))
    return false;
  if (Len > MaxLen || Payload.size() - Pos < Len)
    return false;
  S.assign(Payload.data() + Pos, Len);
  Pos += Len;
  return true;
}

bool SnapshotReader::u64s(uint64_t *Words, size_t N) {
  if (N > (Payload.size() - Pos) / 8)
    return false;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(Words, Payload.data() + Pos, N * 8);
    Pos += N * 8;
  } else {
    for (size_t I = 0; I != N; ++I)
      u64(Words[I]);
  }
  return true;
}
