//===- support/MappedFile.cpp - Read-only file memory mapping ----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/MappedFile.h"

#include "support/Format.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace cafa;

int64_t MappedFile::regularFileSize(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
    return -1;
  return static_cast<int64_t>(St.st_size);
}

MappedFile::Outcome MappedFile::open(const std::string &Path,
                                     Status *ErrOut) {
  reset();
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    if (ErrOut)
      *ErrOut = Status::error(formatString("cannot open '%s': %s",
                                           Path.c_str(),
                                           std::strerror(errno)));
    return Outcome::Error;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    int E = errno;
    ::close(Fd);
    if (ErrOut)
      *ErrOut = Status::error(formatString("cannot stat '%s': %s",
                                           Path.c_str(), std::strerror(E)));
    return Outcome::Error;
  }
  if (!S_ISREG(St.st_mode) || St.st_size == 0) {
    // Pipes, devices, and empty files: the buffered reader's territory.
    ::close(Fd);
    return Outcome::NotMappable;
  }
  size_t Bytes = static_cast<size_t>(St.st_size);
  void *P = ::mmap(nullptr, Bytes, PROT_READ, MAP_PRIVATE, Fd, 0);
  // The mapping holds its own reference; the descriptor is not needed
  // past this point either way.
  ::close(Fd);
  if (P == MAP_FAILED) {
    if (ErrOut)
      *ErrOut = Status::error(formatString("cannot mmap '%s': %s",
                                           Path.c_str(),
                                           std::strerror(errno)));
    return Outcome::Error;
  }
#ifdef POSIX_MADV_SEQUENTIAL
  ::posix_madvise(P, Bytes, POSIX_MADV_SEQUENTIAL);
#endif
  Base = P;
  Size = Bytes;
  return Outcome::Mapped;
}

void MappedFile::reset() {
  if (Base) {
    ::munmap(Base, Size);
    Base = nullptr;
    Size = 0;
  }
}
