//===- support/Ids.h - Strongly typed integer identifiers ------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed integer identifiers used throughout the CAFA libraries.
///
/// Every entity in a trace (task, event queue, heap object, memory cell,
/// monitor, listener, method, ...) is referred to by a compact 32-bit id.
/// Using distinct wrapper types prevents accidentally mixing id spaces,
/// which is an easy bug to write in a trace analyzer where everything is
/// ultimately "just an integer".
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_IDS_H
#define CAFA_SUPPORT_IDS_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cafa {

/// A strongly typed wrapper around a 32-bit index.
///
/// \tparam Tag an empty struct that distinguishes otherwise identical id
/// types at compile time.  Ids are totally ordered and hashable so they can
/// be used as container keys.  Value 0xFFFFFFFF is reserved as the invalid
/// sentinel returned by \ref invalid().
template <typename Tag> class StrongId {
public:
  using ValueType = uint32_t;

  constexpr StrongId() : Value(InvalidValue) {}
  constexpr explicit StrongId(ValueType V) : Value(V) {}

  /// Returns the sentinel id that compares unequal to every valid id.
  static constexpr StrongId invalid() { return StrongId(); }

  /// Returns true if this id holds a real (non-sentinel) value.
  constexpr bool isValid() const { return Value != InvalidValue; }

  /// Returns the raw integer value; must only be called on valid ids when
  /// indexing containers.
  constexpr ValueType value() const { return Value; }

  /// Returns the raw value usable as a vector index.
  constexpr size_t index() const { return static_cast<size_t>(Value); }

  friend constexpr bool operator==(StrongId A, StrongId B) {
    return A.Value == B.Value;
  }
  friend constexpr bool operator!=(StrongId A, StrongId B) {
    return A.Value != B.Value;
  }
  friend constexpr bool operator<(StrongId A, StrongId B) {
    return A.Value < B.Value;
  }
  friend constexpr bool operator<=(StrongId A, StrongId B) {
    return A.Value <= B.Value;
  }
  friend constexpr bool operator>(StrongId A, StrongId B) {
    return A.Value > B.Value;
  }
  friend constexpr bool operator>=(StrongId A, StrongId B) {
    return A.Value >= B.Value;
  }

private:
  static constexpr ValueType InvalidValue = 0xFFFFFFFFu;
  ValueType Value;
};

/// A task is a unit of logically concurrent execution: either a regular
/// thread or a single event processed by a looper thread (Section 3.2 of
/// the paper).
using TaskId = StrongId<struct TaskIdTag>;

/// A looper thread's event queue.  Exactly one looper drains each queue.
using QueueId = StrongId<struct QueueIdTag>;

/// A simulated OS-level thread (looper or regular).
using ThreadId = StrongId<struct ThreadIdTag>;

/// A simulated process; Binder IPC crosses process boundaries.
using ProcessId = StrongId<struct ProcessIdTag>;

/// A heap object allocated by the simulated VM.  Object id 0 is reserved
/// for null, matching the Dalvik convention of null references.
using ObjectId = StrongId<struct ObjectIdTag>;

/// A class (type) in a mini-Dalvik module.
using ClassId = StrongId<struct ClassIdTag>;

/// A field slot declared by a class or as a static field.
using FieldId = StrongId<struct FieldIdTag>;

/// A memory cell: one (object, field) instance or one static field.  This
/// is the granularity at which races are detected ("the address of the
/// object pointer" in Section 5.3).
using VarId = StrongId<struct VarIdTag>;

/// A method in a mini-Dalvik module.
using MethodId = StrongId<struct MethodIdTag>;

/// An event-listener registration slot (Section 3.2 register/perform).
using ListenerId = StrongId<struct ListenerIdTag>;

/// A monitor used by wait/notify.
using MonitorId = StrongId<struct MonitorIdTag>;

/// A lock guarding critical sections (lockset analysis only; no HB edges).
using LockId = StrongId<struct LockIdTag>;

/// A pipe / Unix-domain-socket style message channel.
using PipeId = StrongId<struct PipeIdTag>;

/// A Binder RPC transaction id used to correlate IPC send/receive.
using TransactionId = StrongId<struct TransactionIdTag>;

/// A node in the happens-before graph.
using NodeId = StrongId<struct NodeIdTag>;

} // namespace cafa

namespace std {
template <typename Tag> struct hash<cafa::StrongId<Tag>> {
  size_t operator()(cafa::StrongId<Tag> Id) const {
    return std::hash<uint32_t>()(Id.value());
  }
};
} // namespace std

#endif // CAFA_SUPPORT_IDS_H
