//===- support/BitVec.h - Dense dynamic bit vector -------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense dynamic bit vector tuned for the happens-before transitive
/// closure, where the hot operation is OR-ing one row of the closure matrix
/// into another.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_BITVEC_H
#define CAFA_SUPPORT_BITVEC_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace cafa {

/// A fixed-universe set of small integers backed by 64-bit words.
class BitVec {
public:
  BitVec() = default;

  /// Creates a vector holding \p NumBits bits, all clear.
  explicit BitVec(size_t NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  /// Returns the universe size in bits.
  size_t size() const { return NumBits; }

  /// Resizes to \p NewNumBits; newly added bits are clear.
  void resize(size_t NewNumBits) {
    NumBits = NewNumBits;
    Words.resize((NewNumBits + 63) / 64, 0);
    clearTail();
  }

  /// Sets bit \p I.
  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I >> 6] |= (uint64_t(1) << (I & 63));
  }

  /// Clears bit \p I.
  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I >> 6] &= ~(uint64_t(1) << (I & 63));
  }

  /// Returns bit \p I.
  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  /// Clears all bits.
  void clear() { std::memset(Words.data(), 0, Words.size() * 8); }

  /// ORs \p Other into this vector.  Universe sizes must match.
  /// \returns true if any bit changed.
  bool orWith(const BitVec &Other) {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    uint64_t Changed = 0;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      uint64_t New = Old | Other.Words[I];
      Words[I] = New;
      Changed |= Old ^ New;
    }
    return Changed != 0;
  }

  /// ORs \p Other into this vector, skipping all words before the one
  /// holding \p FromBit.  The caller asserts Other has no set bit below
  /// \p FromBit (e.g. closure rows over a DAG in topological order only
  /// hold bits above the row's own node).  \returns true if any bit
  /// changed.
  bool orWithFrom(const BitVec &Other, size_t FromBit) {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    uint64_t Changed = 0;
    for (size_t I = FromBit >> 6, E = Words.size(); I < E; ++I) {
      uint64_t Old = Words[I];
      uint64_t New = Old | Other.Words[I];
      Words[I] = New;
      Changed |= Old ^ New;
    }
    return Changed != 0;
  }

  /// Returns the number of 64-bit backing words.
  size_t numWords() const { return Words.size(); }

  /// Returns backing word \p I (bits [64*I, 64*I+63]).
  uint64_t word(size_t I) const { return Words[I]; }

  /// Overwrites backing word \p I wholesale; bits past size() are masked
  /// off so count()/none() stay exact.  Used to import serialized
  /// closure rows (support/Snapshot.h).
  void setWord(size_t I, uint64_t V) {
    Words[I] = V;
    if (I + 1 == Words.size())
      clearTail();
  }

  /// Copies \p Other's words from the word holding \p FromBit onward,
  /// leaving earlier words untouched.  Universe sizes must match.  Used
  /// to snapshot the live half of a closure row before a delta sweep
  /// mutates it, so the sweep can enumerate exactly the bits it added.
  void assignFrom(const BitVec &Other, size_t FromBit) {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    size_t W = FromBit >> 6;
    std::memcpy(Words.data() + W, Other.Words.data() + W,
                (Words.size() - W) * 8);
  }

  /// Clears backing words [\p LoWord, \p HiWord).  Used by the
  /// column-strip parallel closure sweep, where each worker owns a
  /// contiguous word range of every row.
  void clearWords(size_t LoWord, size_t HiWord) {
    assert(LoWord <= HiWord && HiWord <= Words.size() && "word range");
    std::memset(Words.data() + LoWord, 0, (HiWord - LoWord) * 8);
  }

  /// ORs \p Other's backing words [\p LoWord, \p HiWord) into this
  /// vector.  Universe sizes must match.  \returns true if any bit in
  /// the range changed.
  bool orWithRange(const BitVec &Other, size_t LoWord, size_t HiWord) {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    assert(LoWord <= HiWord && HiWord <= Words.size() && "word range");
    uint64_t Changed = 0;
    for (size_t I = LoWord; I != HiWord; ++I) {
      uint64_t Old = Words[I];
      uint64_t New = Old | Other.Words[I];
      Words[I] = New;
      Changed |= Old ^ New;
    }
    return Changed != 0;
  }

  /// Copies \p Other's backing words [\p LoWord, \p HiWord) over this
  /// vector's, leaving words outside the range untouched.  Universe
  /// sizes must match.
  void assignRange(const BitVec &Other, size_t LoWord, size_t HiWord) {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    assert(LoWord <= HiWord && HiWord <= Words.size() && "word range");
    std::memcpy(Words.data() + LoWord, Other.Words.data() + LoWord,
                (HiWord - LoWord) * 8);
  }

  /// Returns true if this vector and \p Other share any set bit.
  bool anyCommon(const BitVec &Other) const {
    assert(NumBits == Other.NumBits && "universe size mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & Other.Words[I])
        return true;
    return false;
  }

  /// Returns the number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Returns true if no bit is set.
  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  /// Calls \p Fn(index) for every set bit in ascending order.
  template <typename FnT> void forEachSetBit(FnT Fn) const {
    for (size_t WI = 0, E = Words.size(); WI != E; ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  /// Returns the approximate heap footprint in bytes.
  size_t memoryBytes() const { return Words.capacity() * 8; }

private:
  /// Keeps bits past NumBits clear so count()/none() stay exact.
  void clearTail() {
    if (NumBits % 64 == 0 || Words.empty())
      return;
    Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace cafa

#endif // CAFA_SUPPORT_BITVEC_H
