//===- support/WorkerPool.cpp - Shared lazy-start worker pool -------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"

#include "support/Resolve.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>

using namespace cafa;

/// One parallelFor invocation in flight.  Helpers and the caller claim
/// task indices from Next; the caller blocks until Finished == NumTasks,
/// which guarantees every Fn invocation has returned before parallelFor
/// does (Fn is borrowed by reference).
struct WorkerPool::Batch {
  size_t NumTasks = 0;
  const std::function<void(size_t)> *Fn = nullptr;
  std::atomic<size_t> Next{0};
  std::mutex Mu;
  std::condition_variable Cv;
  size_t Finished = 0; // guarded by Mu

  void run() {
    size_t Ran = 0;
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= NumTasks)
        break;
      (*Fn)(I);
      ++Ran;
    }
    if (Ran) {
      std::lock_guard<std::mutex> L(Mu);
      Finished += Ran;
      if (Finished == NumTasks)
        Cv.notify_all();
    }
  }
};

WorkerPool::WorkerPool(unsigned HelperThreads) : Helpers(HelperThreads) {}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Stop = true;
    Queue.clear(); // discard: callers drain explicitly when jobs matter
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::ensureStartedLocked() {
  if (!Threads.empty() || Stop)
    return;
  Threads.reserve(Helpers);
  for (unsigned I = 0; I != Helpers; ++I)
    Threads.emplace_back([this] { workerMain(); });
}

void WorkerPool::workerMain() {
  std::unique_lock<std::mutex> L(Mu);
  for (;;) {
    WorkCv.wait(L, [&] { return Stop || !Queue.empty(); });
    if (Queue.empty())
      return; // stopping and drained
    std::function<void()> Job = std::move(Queue.front());
    Queue.pop_front();
    L.unlock();
    Job();
    L.lock();
  }
}

void WorkerPool::submit(std::function<void()> Job) {
  if (Helpers == 0) {
    Job(); // deterministic inline path
    return;
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    ensureStartedLocked();
    Queue.push_back(std::move(Job));
  }
  WorkCv.notify_one();
}

void WorkerPool::parallelFor(size_t NumTasks,
                             const std::function<void(size_t)> &Fn) {
  if (NumTasks == 0)
    return;
  if (Helpers == 0 || NumTasks == 1) {
    for (size_t I = 0; I != NumTasks; ++I)
      Fn(I);
    return;
  }

  auto B = std::make_shared<Batch>();
  B->NumTasks = NumTasks;
  B->Fn = &Fn;

  // At most NumTasks-1 helpers can do useful work (the caller claims
  // too); a helper that arrives after all tasks are claimed exits
  // without touching Fn.
  size_t Enlisted = std::min<size_t>(Helpers, NumTasks - 1);
  {
    std::lock_guard<std::mutex> L(Mu);
    ensureStartedLocked();
    for (size_t I = 0; I != Enlisted; ++I)
      Queue.push_back([B] { B->run(); });
  }
  WorkCv.notify_all();

  B->run(); // caller participates

  std::unique_lock<std::mutex> L(B->Mu);
  B->Cv.wait(L, [&] { return B->Finished == B->NumTasks; });
}

unsigned cafa::resolveWorkerThreads(unsigned Requested, const char *EnvVar) {
  unsigned N = resolveRequestEnv<unsigned>(
      Requested, 0, EnvVar,
      [](const char *Env) -> std::optional<unsigned> {
        char *End = nullptr;
        unsigned long V = std::strtoul(Env, &End, 10);
        if (End != Env && *End == '\0' && V >= 1)
          return static_cast<unsigned>(V > 256 ? 256 : V);
        return std::nullopt;
      },
      [] {
        unsigned HW = std::thread::hardware_concurrency();
        return HW == 0 ? 1u : HW;
      });
  return N > 256 ? 256u : N;
}

unsigned cafa::resolveAnalysisThreads(unsigned Requested) {
  return resolveWorkerThreads(Requested, "CAFA_ANALYSIS_THREADS");
}
