//===- support/StringInterner.cpp - String uniquing pool -----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace cafa;

StrId StringInterner::intern(std::string_view S) {
  auto It = Index.find(std::string(S));
  if (It != Index.end())
    return StrId(It->second);
  uint32_t Id = static_cast<uint32_t>(Strings.size());
  Strings.emplace_back(S);
  Index.emplace(Strings.back(), Id);
  return StrId(Id);
}

const std::string &StringInterner::str(StrId Id) const {
  assert(Id.isValid() && Id.index() < Strings.size() &&
         "string id out of range");
  return Strings[Id.index()];
}
