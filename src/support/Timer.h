//===- support/Timer.h - Wall and CPU time measurement ---------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timers used by the evaluation harness.  Figure 8 of the paper reports
/// CPU-time slowdown of instrumented runs, so we expose both wall time and
/// process CPU time.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_TIMER_H
#define CAFA_SUPPORT_TIMER_H

#include <cstdint>

namespace cafa {

/// Returns monotonic wall-clock time in nanoseconds.
uint64_t wallTimeNanos();

/// Returns this process's consumed CPU time in nanoseconds.
uint64_t cpuTimeNanos();

/// Measures elapsed wall and CPU time between construction and query.
class Timer {
public:
  Timer() { restart(); }

  /// Resets the start point to now.
  void restart() {
    StartWall = wallTimeNanos();
    StartCpu = cpuTimeNanos();
  }

  /// Returns wall nanoseconds since construction/restart.
  uint64_t elapsedWallNanos() const { return wallTimeNanos() - StartWall; }

  /// Returns CPU nanoseconds since construction/restart.
  uint64_t elapsedCpuNanos() const { return cpuTimeNanos() - StartCpu; }

  /// Returns wall milliseconds since construction/restart.
  double elapsedWallMillis() const {
    return static_cast<double>(elapsedWallNanos()) / 1e6;
  }

private:
  uint64_t StartWall = 0;
  uint64_t StartCpu = 0;
};

} // namespace cafa

#endif // CAFA_SUPPORT_TIMER_H
