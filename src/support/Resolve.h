//===- support/Resolve.h - Request/env/default precedence ------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One template for the request > environment > default precedence every
/// CAFA knob follows (thread counts, the reachability oracle, the
/// confirmation bound): an explicit request always wins; when the
/// request is the knob's "auto" sentinel, a well-formed environment
/// variable decides; otherwise the built-in default applies.  The
/// environment never overrides an explicit request, so mode-pinning
/// tests stay pinned even under CI legs that force a knob fleet-wide.
///
/// The per-knob resolvers (resolveWorkerThreads, resolveReachMode,
/// resolveConfirmBound) are thin wrappers supplying the sentinel, the
/// variable name, and the parse/default callables.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_RESOLVE_H
#define CAFA_SUPPORT_RESOLVE_H

#include <cstdlib>
#include <optional>

namespace cafa {

/// Resolves one knob with request > environment > default precedence.
///
/// \param Requested   the caller's value.
/// \param AutoValue   the sentinel meaning "caller did not choose".
/// \param EnvVar      environment variable consulted for auto requests
///                    (null disables the environment layer).
/// \param Parse       callable std::optional<T>(const char *): parses the
///                    environment string; std::nullopt rejects it (a
///                    malformed variable falls through to the default,
///                    it never poisons the knob).
/// \param Default     callable T(): the value when neither the request
///                    nor the environment decided.
template <typename T, typename ParseFn, typename DefaultFn>
T resolveRequestEnv(T Requested, T AutoValue, const char *EnvVar,
                    ParseFn Parse, DefaultFn Default) {
  if (!(Requested == AutoValue))
    return Requested;
  if (EnvVar) {
    if (const char *Env = std::getenv(EnvVar)) {
      std::optional<T> Parsed = Parse(Env);
      if (Parsed)
        return *Parsed;
    }
  }
  return Default();
}

} // namespace cafa

#endif // CAFA_SUPPORT_RESOLVE_H
