//===- support/DurableFile.h - Crash-durable file writes -------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two durable-write primitives every persistent artifact in this
/// project is built on:
///
///  - \ref durableWrite publishes a whole file atomically: the bytes go
///    to a sibling ".tmp" file, are flushed and fsync'd, and only then
///    renamed over the destination.  A crash at any point leaves either
///    the old file or the new one on disk -- never a torn hybrid.
///    Checkpoint snapshots (support/Snapshot), fleet aggregate outputs
///    (cafa_fleet --output), and race-store compactions all write
///    through here.
///
///  - \ref durableAppend extends an append-only journal: the bytes are
///    written at the end of the file and fsync'd before the call
///    returns.  A crash can tear the *appended suffix* (that is what
///    per-record checksums and replay-time truncation are for --
///    cafa/RaceStore), but never damages the previously synced prefix.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_DURABLEFILE_H
#define CAFA_SUPPORT_DURABLEFILE_H

#include "support/Status.h"

#include <string_view>

namespace cafa {

/// Atomically replaces the file at \p Path with \p Data via sibling
/// temp file + fsync + rename.  The temp file lives in the same
/// directory so the rename cannot cross a filesystem boundary.
Status durableWrite(const std::string &Path, std::string_view Data);

/// Appends \p Data to the file at \p Path (creating it if absent) and
/// fsyncs before returning, so an acknowledged append survives a
/// subsequent crash or power cut.
Status durableAppend(const std::string &Path, std::string_view Data);

} // namespace cafa

#endif // CAFA_SUPPORT_DURABLEFILE_H
