//===- support/DurableFile.cpp - Crash-durable file writes --------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/DurableFile.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace cafa;

Status cafa::durableWrite(const std::string &Path, std::string_view Data) {
  // Temp file in the same directory so the final rename cannot cross a
  // filesystem boundary (rename is only atomic within one).
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Status::error("cannot create '" + Tmp + "'");
  bool Ok = std::fwrite(Data.data(), 1, Data.size(), F) == Data.size();
  Ok = std::fflush(F) == 0 && Ok;
#if defined(__unix__) || defined(__APPLE__)
  // Durability before visibility: the data must be on disk before the
  // rename publishes it, or a crash could leave a named-but-empty file.
  Ok = fsync(fileno(F)) == 0 && Ok;
#endif
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return Status::error("cannot write '" + Tmp + "'");
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Status::error("cannot rename '" + Tmp + "' to '" + Path + "'");
  }
  return Status::success();
}

Status cafa::durableAppend(const std::string &Path, std::string_view Data) {
#if defined(__unix__) || defined(__APPLE__)
  // O_APPEND so every write lands at the current end even if another
  // handle grew the file since open.
  int Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (Fd < 0)
    return Status::error("cannot open '" + Path + "' for append");
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      ::close(Fd);
      return Status::error("cannot append to '" + Path + "'");
    }
    Off += static_cast<size_t>(N);
  }
  bool Synced = ::fsync(Fd) == 0;
  bool Closed = ::close(Fd) == 0;
  if (!Synced || !Closed)
    return Status::error("cannot sync '" + Path + "'");
  return Status::success();
#else
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  if (!F)
    return Status::error("cannot open '" + Path + "' for append");
  bool Ok = std::fwrite(Data.data(), 1, Data.size(), F) == Data.size();
  Ok = std::fflush(F) == 0 && Ok;
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok)
    return Status::error("cannot append to '" + Path + "'");
  return Status::success();
#endif
}
