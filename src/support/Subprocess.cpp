//===- support/Subprocess.cpp - Supervised child processes --------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace cafa;

namespace {

/// Opens \p Path for truncating write and dup2s it onto \p TargetFd.
/// Child-side only; on failure the child proceeds with the inherited
/// stream (the supervisor still sees the exit status, which is what the
/// retry policy keys off).
void redirectInChild(const std::string &Path, int TargetFd) {
  if (Path.empty())
    return;
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return;
  ::dup2(Fd, TargetFd);
  ::close(Fd);
}

void decodeStatus(int Raw, SubprocessExit &Exit) {
  Exit.Exited = WIFEXITED(Raw);
  Exit.ExitCode = Exit.Exited ? WEXITSTATUS(Raw) : -1;
  Exit.Signaled = WIFSIGNALED(Raw);
  Exit.Signal = Exit.Signaled ? WTERMSIG(Raw) : 0;
}

} // namespace

Status Subprocess::start(const SubprocessOptions &Options) {
  if (Options.Argv.empty())
    return Status::error("subprocess needs a program to run");
  if (Pid > 0)
    return Status::error("subprocess already started");

  pid_t Child = ::fork();
  if (Child < 0)
    return Status::error(std::string("fork failed: ") +
                         std::strerror(errno));
  if (Child == 0) {
    if (Options.MemLimitBytes > 0) {
      struct rlimit Lim;
      Lim.rlim_cur = Options.MemLimitBytes;
      Lim.rlim_max = Options.MemLimitBytes;
      ::setrlimit(RLIMIT_AS, &Lim);
    }
    redirectInChild(Options.StdoutPath, STDOUT_FILENO);
    redirectInChild(Options.StderrPath, STDERR_FILENO);
    std::vector<char *> Argv;
    Argv.reserve(Options.Argv.size() + 1);
    for (const std::string &A : Options.Argv)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    ::execv(Argv[0], Argv.data());
    _exit(127);
  }
  Pid = Child;
  Reaped = false;
  Exit = SubprocessExit();
  return Status::success();
}

bool Subprocess::poll() {
  if (Pid <= 0)
    return false;
  if (Reaped)
    return true;
  int Raw = 0;
  pid_t Done = ::waitpid(Pid, &Raw, WNOHANG);
  if (Done != Pid)
    return false;
  decodeStatus(Raw, Exit);
  Reaped = true;
  return true;
}

const SubprocessExit &Subprocess::wait() {
  if (Pid > 0 && !Reaped) {
    int Raw = 0;
    // Retry on EINTR so a stray signal in the supervisor does not leak
    // a zombie.
    while (::waitpid(Pid, &Raw, 0) < 0 && errno == EINTR) {
    }
    decodeStatus(Raw, Exit);
    Reaped = true;
  }
  return Exit;
}

void Subprocess::kill(int Sig) {
  if (Pid > 0 && !Reaped)
    ::kill(Pid, Sig);
}

void Subprocess::abandon() {
  if (Pid > 0 && !Reaped) {
    ::kill(Pid, SIGKILL);
    wait();
  }
}
