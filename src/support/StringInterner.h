//===- support/StringInterner.h - String uniquing pool ---------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings (method names, class names, app names) into dense
/// 32-bit ids so trace records stay fixed-size and comparisons are O(1).
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_STRINGINTERNER_H
#define CAFA_SUPPORT_STRINGINTERNER_H

#include "support/Ids.h"

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cafa {

/// Identifies an interned string within one StringInterner.
using StrId = StrongId<struct StrIdTag>;

/// A pool of uniqued strings with stable ids.
class StringInterner {
public:
  /// Interns \p S, returning its id; repeated calls with equal strings
  /// return the same id.
  StrId intern(std::string_view S);

  /// Returns the string for \p Id.  \p Id must come from this interner.
  const std::string &str(StrId Id) const;

  /// Returns the number of distinct strings interned.
  size_t size() const { return Strings.size(); }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> Index;
};

} // namespace cafa

#endif // CAFA_SUPPORT_STRINGINTERNER_H
