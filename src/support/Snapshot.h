//===- support/Snapshot.h - Versioned checksummed binary snapshots -*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny binary serialization layer for crash-safe state snapshots
/// (checkpoint/resume of the analysis pipeline, docs/robustness.md).
///
/// Design constraints, in order:
///  - a half-written or bit-flipped file must be *detected*, never
///    mis-decoded: every file carries a magic, a format version, the
///    payload length, and an FNV-1a checksum over the payload, and the
///    reader refuses anything that does not check out;
///  - writes are atomic at the filesystem level: the payload goes to a
///    sibling temp file, is flushed and fsync'd, and only then renamed
///    over the destination, so a crash leaves either the old snapshot or
///    the new one -- never a torn hybrid;
///  - decoding is bounds-checked primitive by primitive: a truncated or
///    hostile payload makes reads fail, it never reads out of bounds.
///
/// Encoding: fixed-width little-endian integers, length-prefixed strings
/// and arrays.  No varints, no alignment tricks -- snapshots are
/// ephemeral work-in-progress state, not an archival format, so
/// simplicity and verifiability win over density.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_SNAPSHOT_H
#define CAFA_SUPPORT_SNAPSHOT_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace cafa {

/// FNV-1a 64-bit over a byte range, continuing from \p Seed (pass the
/// previous return value to hash discontiguous pieces).
uint64_t fnv1a64(const void *Data, size_t Size,
                 uint64_t Seed = 0xcbf29ce484222325ull);

/// Folds one 64-bit value into an FNV-1a hash (field-wise hashing of
/// structs without relying on their memory layout).
inline uint64_t fnv1a64Mix(uint64_t Hash, uint64_t Value) {
  for (int I = 0; I != 8; ++I) {
    Hash ^= (Value >> (I * 8)) & 0xFF;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

/// Appends primitives to a growing payload buffer, then writes the
/// framed file atomically.
class SnapshotWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  /// Length-prefixed string (u32 length + raw bytes).
  void str(std::string_view S);
  /// \p N raw 64-bit words (the caller writes the count separately).
  void u64s(const uint64_t *Words, size_t N);

  const std::string &buffer() const { return Buf; }

  /// Writes header + payload to \p Path via a sibling ".tmp" file,
  /// fsync, and rename.  \p Magic must be exactly 8 bytes.
  Status writeFileAtomic(const std::string &Path, const char *Magic,
                         uint32_t Version) const;

private:
  std::string Buf;
};

/// Loads and verifies a snapshot file, then hands out bounds-checked
/// primitive reads.  Every read returns false once the payload is
/// exhausted; decoders check as they go and bail out cleanly.
class SnapshotReader {
public:
  /// Reads \p Path, verifying magic, version, length, and checksum.
  /// On failure the reader holds no payload and every read fails.
  Status loadFile(const std::string &Path, const char *Magic,
                  uint32_t Version);

  /// Adopts an already-verified payload held in memory, for callers
  /// that frame records themselves (e.g. the race-store journal, whose
  /// per-record checksums are checked before decoding).
  void setPayload(std::string Bytes) {
    Payload = std::move(Bytes);
    Pos = 0;
  }

  bool u8(uint8_t &V);
  bool u32(uint32_t &V);
  bool u64(uint64_t &V);
  /// Reads a length-prefixed string of at most \p MaxLen bytes (the cap
  /// guards decode loops against corrupt lengths).
  bool str(std::string &S, size_t MaxLen = 1 << 20);
  bool u64s(uint64_t *Words, size_t N);

  /// True when the whole payload was consumed (decoders should verify
  /// this to reject trailing garbage).
  bool atEnd() const { return Pos == Payload.size(); }

private:
  std::string Payload;
  size_t Pos = 0;
};

} // namespace cafa

#endif // CAFA_SUPPORT_SNAPSHOT_H
