//===- support/Format.h - printf-style string formatting -------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-formatting helpers for diagnostics and report rendering.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SUPPORT_FORMAT_H
#define CAFA_SUPPORT_FORMAT_H

#include <string>

namespace cafa {

/// Returns a std::string produced by printf-style formatting.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders \p Value with thousands separators, e.g. 1664 -> "1,664".
std::string withThousandsSep(uint64_t Value);

/// Left-pads or truncates \p S to exactly \p Width columns.
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads or truncates \p S to exactly \p Width columns.
std::string padRight(const std::string &S, size_t Width);

} // namespace cafa

#endif // CAFA_SUPPORT_FORMAT_H
