//===- apps/Camera.cpp - AOSP camera model ------------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Camera (Section 6.1): the AOSP built-in camera; the trace takes a
// picture, switches to the home screen, returns and shoots again.  The
// pause path releases the camera handle while capture-pipeline events are
// still in flight (the Section 6.2 pattern).  Table 1: 9 reports =
// 1 intra-thread + 1 inter-thread + 5 Type II + 2 Type III false
// positives.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildCamera() {
  AppBuilder App("camera");

  // A delayed shutter-sound/preview-restart event races onPause's
  // camera-handle release on the main looper.
  App.seedIntraThreadRace("previewRestart");

  // The JPEG-save worker posts a thumbnail update masking the race from
  // a conventional detector.
  App.seedInterThreadRace("jpegSave");

  static const char *const Flags[] = {
      "previewActive", "focusLocked", "flashReady", "storageOk",
      "faceDetectOn",
  };
  for (const char *Name : Flags)
    App.seedFlagGuardedFp(Name);

  // The preview surface and its cached alias confuse deref matching.
  App.seedAliasMismatchFp("previewSurface");
  App.seedAliasMismatchFp("overlayTexture");

  App.addGuardedCommutativePair("zoomBarUpdate");
  App.addAllocBeforeUsePair("modeSwitch");
  App.addLockProtectedPair("hardwareLock");

  App.addNaiveNoise(/*NumFields=*/56, /*ReaderInstances=*/5,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("exifCommit");
  App.addAtomicityOrderedPair("surfaceDetach");
  App.addExternalOrderedPair("settingsPanel");

  App.fillVolumeTo(7'287, /*WorkPerTick=*/2);
  return App.finish(paperRow(7'287, 1, 1, 0, 0, 5, 2));
}
