//===- apps/AppKit.cpp - Building blocks for application models --------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/AppKit.h"

#include <cassert>

using namespace cafa;
using namespace cafa::apps;

AppBuilder::AppBuilder(std::string AppName)
    : M(std::make_shared<Module>()), B(*M), AppName(std::move(AppName)) {
  App = M->addProcess(this->AppName);
  Main = M->addQueue("main", App);
}

QueueId AppBuilder::backgroundQueue() {
  if (!Background.isValid())
    Background = M->addQueue("background", App);
  return Background;
}

ProcessId AppBuilder::serviceProcess() {
  if (!Service.isValid())
    Service = M->addProcess(AppName + "-service");
  return Service;
}

MethodId AppBuilder::victimMethod() {
  if (!Victim.isValid()) {
    B.beginMethod("Victim.run", 1);
    B.work(2);
    Victim = B.endMethod();
  }
  return Victim;
}

uint64_t AppBuilder::reserveWindow(uint64_t SpanMicros) {
  uint64_t Start = TimeCursor;
  TimeCursor += SpanMicros;
  return Start;
}

void AppBuilder::atBoot(std::function<void(IrBuilder &)> Emitter) {
  BootEmitters.push_back(std::move(Emitter));
}

FieldId AppBuilder::pointerField(const std::string &Name) {
  FieldId Field = M->addStaticField(Name, /*IsObject=*/true);
  ClassId Class = M->addClass(Name + ".Class");
  atBoot([Field, Class](IrBuilder &B) {
    B.newInstance(0, Class);
    B.sputObject(Field, 0);
  });
  return Field;
}

void AppBuilder::external(uint64_t AtMicros, MethodId Handler,
                          const std::string &Name, QueueId Queue) {
  ExternalEventSpec Spec;
  Spec.AtMicros = AtMicros;
  Spec.Queue = Queue.isValid() ? Queue : Main;
  Spec.Handler = Handler;
  Spec.Name = Name;
  Externals.push_back(std::move(Spec));
  ++EventCount;
}

void AppBuilder::delayedPost(uint64_t AtMicros, MethodId Handler) {
  QueueId Queue = Main;
  int32_t DelayMs = static_cast<int32_t>(AtMicros / 1000);
  atBoot([Queue, Handler, DelayMs](IrBuilder &B) {
    B.sendEvent(Queue, Handler, DelayMs);
  });
  ++EventCount;
}

AppBuilder::Site AppBuilder::makeFreeMethod(const std::string &Name,
                                            FieldId Field) {
  B.beginMethod(Name, 1);
  B.constNull(0);
  Site S;
  S.Pc = B.nextPc();
  B.sputObject(Field, 0);
  S.Method = B.endMethod();
  return S;
}

AppBuilder::Site AppBuilder::makeUseMethod(const std::string &Name,
                                           FieldId Field,
                                           int32_t SleepBeforeMicros) {
  MethodId Run = victimMethod();
  B.beginMethod(Name, 2);
  if (SleepBeforeMicros > 0)
    B.sleep(SleepBeforeMicros);
  Site S;
  S.Pc = B.nextPc();
  B.sgetObject(1, Field);
  B.invokeVirtual(1, Run);
  S.Method = B.endMethod();
  return S;
}

void AppBuilder::forkWorkerAtBoot(MethodId Body) {
  atBoot([Body](IrBuilder &B) { B.forkThread(0, Body); });
  ++WorkerCount;
}

void AppBuilder::label(Site Use, Site Free, RaceLabel L, RaceCategory C,
                       const std::string &Note) {
  GroundTruthEntry E;
  E.UseMethod = Use.Method;
  E.UsePc = Use.Pc;
  E.FreeMethod = Free.Method;
  E.FreePc = Free.Pc;
  E.Label = L;
  E.ExpectedCategory = C;
  E.Note = Note;
  Truth.Entries.push_back(std::move(E));
}

// --- Harmful race seeds ----------------------------------------------------

void AppBuilder::seedIntraThreadRace(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  Site Use = makeUseMethod(Name + "_onTimer", Field);
  Site Free = makeFreeMethod(Name + "_onPause", Field);
  uint64_t W = reserveWindow(30'000);
  delayedPost(W + 5'000, Use.Method);
  external(W + 20'000, Free.Method, Name + "_onPause");
  label(Use, Free, RaceLabel::Harmful, RaceCategory::IntraThread,
        "delayed event vs lifecycle free on the same looper");
}

void AppBuilder::seedRpcIntraThreadRace(const std::string &Name) {
  FieldId Field = pointerField(Name + ".providerUtils");
  Site Use = makeUseMethod(Name + "_onServiceConnected", Field);
  Site Free = makeFreeMethod(Name + "_onDestroy", Field);

  ProcessId Svc = serviceProcess();
  QueueId Queue = Main;
  B.beginMethod(Name + "_onBind", 1);
  B.work(2);
  B.sendEvent(Queue, Use.Method, 0);
  MethodId OnBind = B.endMethod();
  ++EventCount; // the RPC thread posts onServiceConnected

  B.beginMethod(Name + "_onResume", 1);
  B.binderCall(Svc, OnBind);
  MethodId OnResume = B.endMethod();

  uint64_t W = reserveWindow(40'000);
  external(W, OnResume, Name + "_onResume");
  external(W + 30'000, Free.Method, Name + "_onDestroy");
  label(Use, Free, RaceLabel::Harmful, RaceCategory::IntraThread,
        "Figure 1: RPC-delivered event vs onDestroy free");
}

void AppBuilder::seedInterThreadRace(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  uint64_t W = reserveWindow(30'000);

  B.beginMethod(Name + "_uiUpdate", 1);
  B.work(1);
  MethodId UiUpdate = B.endMethod();
  ++EventCount; // posted by the worker below

  // Worker: compute, use the pointer, then post a UI update.  The posted
  // event is what fools a total-event-order detector into `use < free`.
  MethodId Run = victimMethod();
  QueueId Queue = Main;
  B.beginMethod(Name + "_worker", 2);
  B.sleep(static_cast<int32_t>(W + 5'000));
  Site Use;
  Use.Pc = B.nextPc();
  B.sgetObject(1, Field);
  B.invokeVirtual(1, Run);
  B.sendEvent(Queue, UiUpdate, 0);
  Use.Method = B.endMethod();
  forkWorkerAtBoot(Use.Method);

  Site Free = makeFreeMethod(Name + "_onStop", Field);
  external(W + 20'000, Free.Method, Name + "_onStop");
  label(Use, Free, RaceLabel::Harmful, RaceCategory::InterThread,
        "worker use masked from a conventional detector by a posted "
        "UI event");
}

void AppBuilder::seedConventionalRace(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  uint64_t W = reserveWindow(30'000);
  Site Use = makeUseMethod(Name + "_worker", Field,
                           static_cast<int32_t>(W + 5'000));
  forkWorkerAtBoot(Use.Method);
  Site Free = makeFreeMethod(Name + "_onStop", Field);
  external(W + 20'000, Free.Method, Name + "_onStop");
  label(Use, Free, RaceLabel::Harmful, RaceCategory::Conventional,
        "plain cross-thread use vs event free; both detectors see it");
}

// --- False-positive seeds ----------------------------------------------------

void AppBuilder::seedUninstrumentedListenerFp(const std::string &Name,
                                              bool Instrumented) {
  FieldId Field = pointerField(Name + ".ptr");
  ClassId Class = M->addClass(Name + ".Fresh");
  QueueId Bg = backgroundQueue();
  ListenerId Listener =
      M->addListener(Name + ".listener", Bg, Instrumented);

  Site Use = makeUseMethod(Name + "_onCallback", Field);
  ++EventCount; // the listener dispatch event
  Site Free = makeFreeMethod(Name + "_onStop", Field);

  // onStart: reallocate the pointer and register the callback.  With a
  // traced listener, register < perform orders the free before the use;
  // untraced, the detector sees them as concurrent.
  B.beginMethod(Name + "_onStart", 1);
  B.newInstance(0, Class);
  B.sputObject(Field, 0);
  B.registerListener(Listener, Use.Method);
  MethodId OnStart = B.endMethod();

  uint64_t W = reserveWindow(40'000);
  external(W, Free.Method, Name + "_onStop");
  external(W + 10'000, OnStart, Name + "_onStart");

  // A sensor-poll worker fires the callback; a thread (not an external
  // event) so the external-input rule cannot order it.
  B.beginMethod(Name + "_sensorPoll", 1);
  B.sleep(static_cast<int32_t>(W + 25'000));
  B.triggerListener(Listener);
  MethodId Poll = B.endMethod();
  forkWorkerAtBoot(Poll);

  label(Use, Free, RaceLabel::FalseTypeI, RaceCategory::Conventional,
        "ordered in reality by an uninstrumented listener registration");
}

void AppBuilder::seedFlagGuardedFp(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  FieldId Flag = M->addStaticField(Name + ".enabled", /*IsObject=*/false);
  atBoot([Flag](IrBuilder &B) {
    B.constInt(0, 1);
    B.sput(Flag, 0);
  });

  // Use guarded by the boolean flag; if-guard cannot see it (Type II).
  MethodId Run = victimMethod();
  B.beginMethod(Name + "_onTick", 2);
  Label Skip = B.newLabel();
  B.sget(0, Flag);
  B.ifIntEqz(0, Skip);
  Site Use;
  Use.Pc = B.nextPc();
  B.sgetObject(1, Field);
  B.invokeVirtual(1, Run);
  B.bind(Skip);
  MethodId OnTick = B.endMethod();
  Use.Method = OnTick;

  // The pause path clears the flag, then frees -- commutative in truth.
  B.beginMethod(Name + "_onPause", 1);
  B.constInt(0, 0);
  B.sput(Flag, 0);
  B.constNull(0);
  Site Free;
  Free.Pc = B.nextPc();
  B.sputObject(Field, 0);
  Free.Method = B.endMethod();

  uint64_t W = reserveWindow(30'000);
  delayedPost(W + 5'000, OnTick);
  external(W + 20'000, Free.Method, Name + "_onPause");
  label(Use, Free, RaceLabel::FalseTypeII, RaceCategory::IntraThread,
        "benign: guarded by a boolean flag invisible to if-guard");
}

void AppBuilder::seedAliasMismatchFp(const std::string &Name) {
  FieldId Stable = M->addStaticField(Name + ".view", /*IsObject=*/true);
  FieldId Racy = M->addStaticField(Name + ".cache", /*IsObject=*/true);
  ClassId Class = M->addClass(Name + ".Shared");
  atBoot([Stable, Racy, Class](IrBuilder &B) {
    B.newInstance(0, Class);
    B.sputObject(Stable, 0);
    B.sputObject(Racy, 0); // alias: both fields hold the same object
  });

  // The handler reads both aliases and dereferences through the stable
  // one; nearest-previous-read matching pins the deref on the racy read.
  MethodId Run = victimMethod();
  B.beginMethod(Name + "_onDraw", 3);
  B.sgetObject(1, Stable);
  Site Use;
  Use.Pc = B.nextPc();
  B.sgetObject(2, Racy);
  B.invokeVirtual(1, Run);
  Use.Method = B.endMethod();

  Site Free = makeFreeMethod(Name + "_dropCache", Racy);

  uint64_t W = reserveWindow(30'000);
  delayedPost(W + 5'000, Use.Method);
  external(W + 20'000, Free.Method, Name + "_dropCache");
  label(Use, Free, RaceLabel::FalseTypeIII, RaceCategory::IntraThread,
        "deref through a stable alias misattributed to the racy field");
}

// --- Benign patterns the filters must suppress -------------------------------

void AppBuilder::addGuardedCommutativePair(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  MethodId Run = victimMethod();
  // Figure 5 onFocus: `if (handler != null) handler.run()` -- javac
  // re-reads the field inside the guarded region.
  B.beginMethod(Name + "_onFocus", 2);
  Label Skip = B.newLabel();
  B.sgetObject(0, Field);
  B.ifEqz(0, Skip);
  B.sgetObject(1, Field);
  B.invokeVirtual(1, Run);
  B.bind(Skip);
  MethodId OnFocus = B.endMethod();

  Site Free = makeFreeMethod(Name + "_onPause", Field);
  uint64_t W = reserveWindow(30'000);
  delayedPost(W + 5'000, OnFocus);
  external(W + 20'000, Free.Method, Name + "_onPause");
}

void AppBuilder::addAllocBeforeUsePair(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  ClassId Class = M->addClass(Name + ".Fresh");
  MethodId Run = victimMethod();
  // Figure 5 onResume: allocate, then use -- always safe.
  B.beginMethod(Name + "_onResume", 2);
  B.newInstance(0, Class);
  B.sputObject(Field, 0);
  B.sgetObject(1, Field);
  B.invokeVirtual(1, Run);
  MethodId OnResume = B.endMethod();

  Site Free = makeFreeMethod(Name + "_onPause", Field);
  uint64_t W = reserveWindow(30'000);
  delayedPost(W + 5'000, OnResume);
  external(W + 20'000, Free.Method, Name + "_onPause");
}

void AppBuilder::addFreeThenAllocPair(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  ClassId Class = M->addClass(Name + ".Fresh");
  // Cleanup that frees and immediately reinitializes: the null value
  // never escapes the event.
  B.beginMethod(Name + "_recycle", 1);
  B.constNull(0);
  B.sputObject(Field, 0);
  B.newInstance(0, Class);
  B.sputObject(Field, 0);
  MethodId Recycle = B.endMethod();

  Site Use = makeUseMethod(Name + "_onShow", Field);
  uint64_t W = reserveWindow(30'000);
  delayedPost(W + 5'000, Use.Method);
  external(W + 20'000, Recycle, Name + "_recycle");
}

void AppBuilder::addLockProtectedPair(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  LockId Lock = M->addLock(Name + ".lock");
  MethodId Run = victimMethod();
  uint64_t W = reserveWindow(30'000);

  B.beginMethod(Name + "_readerThread", 2);
  B.sleep(static_cast<int32_t>(W + 2'000));
  B.monitorEnter(Lock);
  B.sgetObject(1, Field);
  B.invokeVirtual(1, Run);
  B.monitorExit(Lock);
  MethodId Reader = B.endMethod();
  forkWorkerAtBoot(Reader);

  B.beginMethod(Name + "_closerThread", 1);
  B.sleep(static_cast<int32_t>(W + 15'000));
  B.monitorEnter(Lock);
  B.constNull(0);
  B.sputObject(Field, 0);
  B.monitorExit(Lock);
  MethodId Closer = B.endMethod();
  forkWorkerAtBoot(Closer);
}

void AppBuilder::addQueueOrderedPair(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  Site Use = makeUseMethod(Name + "_refresh", Field);
  Site Free = makeFreeMethod(Name + "_teardown", Field);
  uint64_t W = reserveWindow(30'000);
  // Same sender, same delay: queue rule 1 guarantees FIFO, so the use
  // always precedes the free.
  delayedPost(W + 5'000, Use.Method);
  delayedPost(W + 5'000, Free.Method);
}

void AppBuilder::addAtomicityOrderedPair(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  MethodId Run = victimMethod();
  uint64_t W = reserveWindow(30'000);

  Site Free = makeFreeMethod(Name + "_finalize", Field);

  // The finalizer thread is forked before the use, then posts the free;
  // fork < begin(T) < send < begin(F) gives begin(U) < end(F), so the
  // atomicity rule orders the whole events U -> F.  A record-level path
  // from the use itself does not exist.
  QueueId Queue = Main;
  B.beginMethod(Name + "_finalizerThread", 1);
  B.sleep(10'000);
  B.sendEvent(Queue, Free.Method, 0);
  MethodId Finalizer = B.endMethod();
  ++EventCount; // the posted free event

  B.beginMethod(Name + "_onDetach", 2);
  B.forkThread(0, Finalizer);
  B.sgetObject(1, Field);
  B.invokeVirtual(1, Run);
  MethodId OnDetach = B.endMethod();

  external(W, OnDetach, Name + "_onDetach");
}

void AppBuilder::addExternalOrderedPair(const std::string &Name) {
  FieldId Field = pointerField(Name + ".ptr");
  Site Use = makeUseMethod(Name + "_onShow", Field);
  Site Free = makeFreeMethod(Name + "_onHide", Field);
  uint64_t W = reserveWindow(30'000);
  // Two user actions: the external-input rule chains them.
  external(W, Use.Method, Name + "_onShow");
  external(W + 10'000, Free.Method, Name + "_onHide");
}

// --- Noise and volume ----------------------------------------------------------

void AppBuilder::addNaiveNoise(uint32_t NumFields, uint32_t ReaderInstances,
                               uint32_t WriterInstances,
                               uint32_t ExtraReadPcs) {
  assert(ReaderInstances > 0 && WriterInstances > 0 &&
         "noise needs at least one reader and one writer event");
  std::vector<FieldId> Fields;
  Fields.reserve(NumFields);
  for (uint32_t I = 0; I != NumFields; ++I)
    Fields.push_back(M->addStaticField(
        "widget" + std::to_string(I) + ".state", /*IsObject=*/false));

  // Reader: two reads per field (two racing pcs each), plus the
  // fine-adjustment reads on the first field.
  B.beginMethod("noise_onLayout", 1);
  for (FieldId F : Fields) {
    B.sget(0, F);
    B.sget(0, F);
  }
  for (uint32_t I = 0; I != ExtraReadPcs && !Fields.empty(); ++I)
    B.sget(0, Fields.front());
  MethodId Reader = B.endMethod();

  // Writer: two writes per field.
  B.beginMethod("noise_onConfigChange", 1);
  B.constInt(0, 1);
  for (FieldId F : Fields) {
    B.sput(F, 0);
    B.sput(F, 0);
  }
  MethodId Writer = B.endMethod();

  uint64_t W = reserveWindow(20'000 + 2'000 * WriterInstances);

  // Reader events posted by a layout ticker thread (so they are not
  // chained with the external writer events).
  QueueId Queue = Main;
  B.beginMethod("noise_layoutTicker", 2);
  {
    Label Loop = B.newLabel();
    B.sleep(static_cast<int32_t>(W));
    B.constInt(0, static_cast<int32_t>(ReaderInstances));
    B.bind(Loop);
    B.sendEvent(Queue, Reader, 0);
    B.addInt(0, 0, -1);
    B.ifIntNez(0, Loop);
  }
  MethodId Ticker = B.endMethod();
  forkWorkerAtBoot(Ticker);
  EventCount += ReaderInstances;

  for (uint32_t I = 0; I != WriterInstances; ++I)
    external(W + 10'000 + 2'000 * static_cast<uint64_t>(I), Writer,
             "noise_onConfigChange");
}

void AppBuilder::fillVolumeTo(uint64_t TargetEvents, int32_t WorkPerTick) {
  assert(TargetEvents >= EventCount &&
         "volume target below already-planned events");
  uint64_t Remaining = TargetEvents - EventCount;
  if (Remaining == 0)
    return;

  B.beginMethod("tick", 1);
  B.work(WorkPerTick);
  MethodId Tick = B.endMethod();

  uint64_t Posted = Remaining * 7 / 10;
  uint64_t ExternalCount = Remaining - Posted;

  if (Posted > 0) {
    QueueId Queue = Main;
    B.beginMethod("tickPoster", 2);
    Label Loop = B.newLabel();
    B.sleep(5'000);
    B.constInt(0, static_cast<int32_t>(Posted));
    B.bind(Loop);
    B.sendEvent(Queue, Tick, 0);
    B.addInt(0, 0, -1);
    B.ifIntNez(0, Loop);
    MethodId Poster = B.endMethod();
    forkWorkerAtBoot(Poster);
    EventCount += Posted;
  }

  // External ticks spread over the first ~90 ms, before seed windows.
  uint64_t Span = 90'000;
  for (uint64_t I = 0; I != ExternalCount; ++I)
    external(5'000 + (I * Span) / (ExternalCount ? ExternalCount : 1),
             Tick, "tick");
}

AppModel AppBuilder::finish(const Table1Row &PaperRow) {
  // Assemble the bootstrap thread from the registered emitters.
  B.beginMethod("appInit", 4);
  for (const auto &Emitter : BootEmitters)
    Emitter(B);
  MethodId Init = B.endMethod();

  AppModel Model;
  Model.S.AppName = AppName;
  Model.S.Program = M;
  Model.S.ExternalEvents = std::move(Externals);
  Model.S.BootThreads.push_back({0, Init, App, AppName + "-init"});
  Model.Truth = std::move(Truth);
  Model.PaperRow = PaperRow;
  Model.PaperRow.App = AppName;
  return Model;
}
