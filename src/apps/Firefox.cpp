//===- apps/Firefox.cpp - Mozilla Firefox model -------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Firefox 25 (Section 6.1): Mozilla's Android browser, exercised with the
// same browse-search-back script as Browser.  Gecko's compositor and
// background service threads produce both masked and plain cross-thread
// races; its heavy use of framework listener packages yields the largest
// Type I count.  Table 1: 25 reports = 6 inter-thread + 10 conventional +
// 4 Type I + 5 Type II false positives.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildFirefox() {
  AppBuilder App("firefox");

  static const char *const MaskedWorkers[] = {
      "geckoEvent",   "compositorFrame", "sessionStore",
      "telemetryPing", "awesomeBarQuery", "readerParse",
  };
  for (const char *Name : MaskedWorkers)
    App.seedInterThreadRace(Name);

  static const char *const PlainWorkers[] = {
      "faviconFetch", "historyExpire", "syncAdapter",  "addonUpdate",
      "safeBrowsing", "prefFlush",     "mediaDecode",  "fontShape",
      "tileUpload",   "profileMigrate",
  };
  for (const char *Name : PlainWorkers)
    App.seedConventionalRace(Name);

  static const char *const Listeners[] = {
      "gamepadMonitor", "batteryObserver", "orientationHook",
      "clipboardWatch",
  };
  for (const char *Name : Listeners)
    App.seedUninstrumentedListenerFp(Name);

  static const char *const Flags[] = {
      "geckoReady", "tabsRestored", "menuOpen", "fullscreen",
      "textSelection",
  };
  for (const char *Name : Flags)
    App.seedFlagGuardedFp(Name);

  App.addGuardedCommutativePair("urlbarUpdate");
  App.addAllocBeforeUsePair("tabStripOpen");
  App.addFreeThenAllocPair("layerRecycle");
  App.addLockProtectedPair("dbMutex");

  App.addNaiveNoise(/*NumFields=*/80, /*ReaderInstances=*/5,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("sessionCommit");
  App.addAtomicityOrderedPair("geckoDetach");
  App.addExternalOrderedPair("doorHanger");

  App.fillVolumeTo(5'467, /*WorkPerTick=*/4);
  return App.finish(paperRow(5'467, 0, 6, 10, 4, 5, 0));
}
