//===- apps/Vlc.cpp - VLC media player model ----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// VLC 0.2.0 (Section 6.1): media player; the trace plays a clip, pauses
// to the home screen, and resumes.  Most reports are benign player-state
// races guarded by playback flags.  Table 1: 7 reports = 1 conventional +
// 5 Type II + 1 Type III false positives.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildVlc() {
  AppBuilder App("vlc");

  // The native decoder thread races the surface teardown.
  App.seedConventionalRace("decoderSurface");

  static const char *const Flags[] = {
      "isPlaying", "audioFocus", "overlayShown", "seekable",
      "hardwareAccel",
  };
  for (const char *Name : Flags)
    App.seedFlagGuardedFp(Name);

  // The equalizer view is cached under two aliases.
  App.seedAliasMismatchFp("equalizer");

  App.addGuardedCommutativePair("osdUpdate");
  App.addAllocBeforeUsePair("playlistOpen");
  App.addLockProtectedPair("libvlcLock");

  App.addNaiveNoise(/*NumFields=*/40, /*ReaderInstances=*/4,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("playlistCommit");
  App.addExternalOrderedPair("controlsOverlay");

  App.fillVolumeTo(2'805, /*WorkPerTick=*/6);
  return App.finish(paperRow(2'805, 0, 0, 1, 0, 5, 1));
}
