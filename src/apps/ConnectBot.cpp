//===- apps/ConnectBot.cpp - SSH client model ---------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// ConnectBot 1.7 (Section 6.1): an SSH client.  The paper's trace covers
// connecting to a host and logging in.  Table 1: 3 reports = 2 inter-thread
// violations + 1 Type I false positive; Section 4.1 additionally reports
// 1,664 naive low-level races on this trace, dominated by commutative
// terminal-layout conflicts like Figure 2's resizeAllowed pattern -- the
// addNaiveNoise widgets model exactly that shape.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildConnectBot() {
  AppBuilder App("connectbot");

  // The SSH relay thread delivers host status and terminal-bridge
  // updates that race with the activity teardown path.
  App.seedInterThreadRace("hostStatus");
  App.seedInterThreadRace("terminalBridge");

  // The password-prompt helper is wired through an Android framework
  // listener package the prototype does not instrument.
  App.seedUninstrumentedListenerFp("promptHelper");

  // Benign commutative pairs the filters suppress.
  App.addGuardedCommutativePair("consoleRedraw");
  App.addAllocBeforeUsePair("sessionOpen");
  App.addLockProtectedPair("bufferSync");

  // Figure 2 noise: terminal layout/pause conflicts.  ~4 low-level races
  // per widget field; the seeds above add a handful more, landing near
  // the paper's 1,664.
  App.addNaiveNoise(/*NumFields=*/412, /*ReaderInstances=*/6,
                    /*WriterInstances=*/4, /*ExtraReadPcs=*/1);

  App.addQueueOrderedPair("portForward");

  App.fillVolumeTo(3'058, /*WorkPerTick=*/1);
  return App.finish(paperRow(3'058, 0, 2, 0, 1, 0, 0));
}
