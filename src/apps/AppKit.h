//===- apps/AppKit.h - Building blocks for application models --*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Construction kit for the ten application models of Section 6.1.
///
/// Each paper application is modeled as a mini-Dalvik program whose
/// concurrency structure reproduces the racy patterns the paper found,
/// with exact ground-truth labels.  The kit provides one seeding helper
/// per race category / false-positive type:
///
///  - (a) intra-thread: an event posted with a delay races a later
///    external lifecycle event on the same looper (and the Figure 1
///    variant where the racing event arrives via a Binder RPC);
///  - (b) inter-thread, conventional-masked: a worker thread uses the
///    pointer and then posts a UI event that the looper processes before
///    the freeing event, so a total-event-order detector derives a bogus
///    use < free path;
///  - (c) conventional: a plain cross-thread use vs. event free that both
///    detectors see;
///  - FP-I: the ordering edge lives in an *uninstrumented* listener
///    (register/perform records are missing from the trace);
///  - FP-II: the use is guarded by a boolean flag the if-guard heuristic
///    cannot see;
///  - FP-III: two aliased pointer fields make the nearest-previous-read
///    matching attribute the dereference to the wrong (racy) field;
///  - benign commutative pairs that the if-guard / intra-event-allocation
///    / lockset filters are expected to suppress;
///  - low-level noise (Figure 2-style scalar read-write conflicts across
///    concurrent events) that only the naive detector counts;
///  - volume ticks to calibrate the per-app "Events" column exactly.
///
/// The builder tracks exactly how many events the scenario will generate
/// so fillVolumeTo() can hit the paper's per-app event count.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_APPS_APPKIT_H
#define CAFA_APPS_APPKIT_H

#include "detect/GroundTruth.h"
#include "ir/IrBuilder.h"
#include "rt/Scenario.h"

#include <functional>
#include <string>
#include <vector>

namespace cafa {
namespace apps {

/// One ready-to-run application model.
struct AppModel {
  Scenario S;
  GroundTruth Truth;
  /// The paper's Table 1 row for this app (used by tests and benches as
  /// the reference).
  Table1Row PaperRow;
};

/// Builds one application model.  Helpers may be called in any order;
/// finish() assembles the bootstrap code and returns the model.
class AppBuilder {
public:
  explicit AppBuilder(std::string AppName);

  Module &module() { return *M; }
  QueueId mainQueue() const { return Main; }
  ProcessId appProcess() const { return App; }

  /// Lazily created second looper in the app process (render/background
  /// handler thread); used by listener seeds.
  QueueId backgroundQueue();

  /// Lazily created service process (GPS/recording/media service).
  ProcessId serviceProcess();

  // --- Harmful race seeds -----------------------------------------------

  /// Category (a): delayed event uses a pointer a later external
  /// lifecycle event frees (same looper, logically concurrent).
  void seedIntraThreadRace(const std::string &Name);

  /// Category (a), Figure 1 shape: the racing use arrives through a
  /// Binder RPC round-trip instead of a delayed post.
  void seedRpcIntraThreadRace(const std::string &Name);

  /// Category (b): worker-thread use masked from a conventional detector
  /// by a posted event.
  void seedInterThreadRace(const std::string &Name);

  /// Category (c): plain worker-thread use vs. event free; found by both
  /// detectors.
  void seedConventionalRace(const std::string &Name);

  // --- False-positive seeds ----------------------------------------------

  /// FP-I: ordering edge exists only through an uninstrumented listener.
  /// \p Instrumented exists for tests: with a traced listener the same
  /// seed must NOT be reported.
  void seedUninstrumentedListenerFp(const std::string &Name,
                                    bool Instrumented = false);

  /// FP-II: use guarded by a boolean flag (invisible to if-guard).
  void seedFlagGuardedFp(const std::string &Name);

  /// FP-III: aliased fields mislead the dereference-to-read matching.
  void seedAliasMismatchFp(const std::string &Name);

  // --- Benign patterns the filters must suppress -------------------------

  /// Figure 5 onFocus: null-checked re-read; if-guard filters it.
  void addGuardedCommutativePair(const std::string &Name);

  /// Figure 5 onResume: allocation before use in the same event;
  /// intra-event-allocation filters it.
  void addAllocBeforeUsePair(const std::string &Name);

  /// Cleanup event that frees then reallocates; intra-event-allocation
  /// filters races against its free.
  void addFreeThenAllocPair(const std::string &Name);

  /// Cross-thread use/free both under one lock; lockset filters it.
  void addLockProtectedPair(const std::string &Name);

  // --- Benign pairs ordered by one specific causality rule ---------------
  // (These make the ordering-model ablation meaningful: disabling the
  // rule turns each pair into a spurious report.)

  /// Use and free posted back to back with equal delays: safe by event
  /// queue rule 1 only.
  void addQueueOrderedPair(const std::string &Name);

  /// The free is posted by a thread forked at the *start* of the using
  /// event: safe by the atomicity rule only (Figure 4a shape).
  void addAtomicityOrderedPair(const std::string &Name);

  /// Use and free in two successive external events: safe by the
  /// external-input rule only.
  void addExternalOrderedPair(const std::string &Name);

  // --- Noise and volume ----------------------------------------------------

  /// Figure 2-style commutative scalar conflicts: \p NumFields fields,
  /// each with two reader pcs (events posted from a ticker thread) and
  /// two writer pcs (external events), yielding ~4 low-level races per
  /// field for the naive detector and none for CAFA.
  /// \p ExtraReadPcs adds that many further read sites on the first
  /// field (2 more races each) -- the fine-adjustment knob used to land
  /// ConnectBot's count on the paper's 1,664.
  void addNaiveNoise(uint32_t NumFields, uint32_t ReaderInstances,
                     uint32_t WriterInstances, uint32_t ExtraReadPcs = 0);

  /// Pads the scenario to exactly \p TargetEvents events using inert
  /// tick events (a mix of external inputs and looper posts).
  /// \p WorkPerTick tunes the app's compute-to-record ratio, which is
  /// what differentiates per-app tracing slowdown in Figure 8.
  void fillVolumeTo(uint64_t TargetEvents, int32_t WorkPerTick = 2);

  /// Events the scenario will generate so far.
  uint64_t plannedEvents() const { return EventCount; }

  /// Assembles bootstrap code and returns the finished model.
  /// \p PaperRow carries the paper's reference numbers.
  AppModel finish(const Table1Row &PaperRow);

private:
  /// A static code location (for ground-truth labeling).
  struct Site {
    MethodId Method;
    uint32_t Pc = 0;
  };

  /// Reserves a fresh [start, start+span) window on the scenario
  /// timeline and returns its start (microseconds).
  uint64_t reserveWindow(uint64_t SpanMicros);

  /// Registers code to run in the bootstrap thread (allocations, forks,
  /// delayed sends).  Emitters run in registration order.
  void atBoot(std::function<void(IrBuilder &)> Emitter);

  /// Declares a static object field initialized to a fresh object at
  /// boot.
  FieldId pointerField(const std::string &Name);

  /// Adds an external event at \p AtMicros running \p Handler.
  void external(uint64_t AtMicros, MethodId Handler,
                const std::string &Name, QueueId Queue = QueueId());

  /// Emits (into the boot thread) a delayed post of \p Handler on the
  /// main queue, executing at roughly \p AtMicros.
  void delayedPost(uint64_t AtMicros, MethodId Handler);

  /// Builds a method that frees \p Field; returns the free site.
  Site makeFreeMethod(const std::string &Name, FieldId Field);

  /// Builds a method that uses \p Field after sleeping
  /// \p SleepBeforeMicros; returns the use site (the pointer read's pc).
  Site makeUseMethod(const std::string &Name, FieldId Field,
                     int32_t SleepBeforeMicros = 0);

  /// Forks a worker thread at boot whose body is \p Body.
  void forkWorkerAtBoot(MethodId Body);

  /// Records a ground-truth label for a seeded pair.
  void label(Site Use, Site Free, RaceLabel Label, RaceCategory Category,
             const std::string &Note);

  /// The shared no-op victim method invoked by uses.
  MethodId victimMethod();


  std::shared_ptr<Module> M;
  IrBuilder B;
  std::string AppName;
  ProcessId App;
  QueueId Main;
  QueueId Background;  // invalid until backgroundQueue()
  ProcessId Service;   // invalid until serviceProcess()
  MethodId Victim;     // invalid until victimMethod()

  std::vector<std::function<void(IrBuilder &)>> BootEmitters;
  std::vector<ExternalEventSpec> Externals;
  GroundTruth Truth;
  uint64_t TimeCursor = 100'000; // seed windows start at 100 ms
  uint64_t EventCount = 0;
  uint32_t WorkerCount = 0;
};

} // namespace apps
} // namespace cafa

#endif // CAFA_APPS_APPKIT_H
