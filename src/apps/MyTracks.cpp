//===- apps/MyTracks.cpp - GPS tracker model ----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// MyTracks 1.1.7 (Section 6.1): Google's GPS track recorder.  The trace
// records a short track, pauses, and resumes.  Table 1: 8 reports =
// 1 intra-thread (the Figure 1 providerUtils race, delivered through the
// TrackRecordingService Binder connection) + 3 inter-thread violations +
// 4 Type II false positives (boolean-guarded uses the heuristics cannot
// prove commutative; cf. the startRecordingNewTrack TODO in Section 6.2).
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildMyTracks() {
  AppBuilder App("mytracks");

  // Figure 1: onServiceConnected (posted by the recording service over
  // Binder) races onDestroy's providerUtils free.
  App.seedRpcIntraThreadRace("track");

  // GPS/chart/stats worker threads race the activity teardown.
  App.seedInterThreadRace("gpsSignal");
  App.seedInterThreadRace("chartUpdate");
  App.seedInterThreadRace("statsRefresh");

  // Recording-state flags guard these uses; if-guard cannot see them.
  App.seedFlagGuardedFp("recordingState");
  App.seedFlagGuardedFp("sensorBinding");
  App.seedFlagGuardedFp("mapOverlay");
  App.seedFlagGuardedFp("voiceAnnouncer");

  App.addGuardedCommutativePair("trackListRefresh");
  App.addAllocBeforeUsePair("markerInsert");
  App.addFreeThenAllocPair("statsAggregate");
  App.addLockProtectedPair("providerSync");

  App.addNaiveNoise(/*NumFields=*/64, /*ReaderInstances=*/5,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("trackSave");
  App.addAtomicityOrderedPair("sensorDetach");
  App.addExternalOrderedPair("mapToggle");

  App.fillVolumeTo(6'628, /*WorkPerTick=*/3);
  return App.finish(paperRow(6'628, 1, 3, 0, 0, 4, 0));
}
