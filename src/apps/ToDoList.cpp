//===- apps/ToDoList.cpp - To-do widget model ---------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// ToDoList 1.1.7 (Section 6.1): a home-screen to-do widget.  The trace
// adds two notes and deletes them.  Almost all of its races are between
// widget-refresh events and note-database teardown on the same looper --
// the paper's standout intra-thread row (8 of 13 total category-(a)
// violations), including the swallowed NullPointerException of Section
// 6.2 that silently drops user input.  Table 1: 9 reports = 8
// intra-thread + 1 Type II false positive.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildToDoList() {
  AppBuilder App("todolist");

  // Widget refresh timers race the note-database close path.
  App.seedIntraThreadRace("noteAdd");
  App.seedIntraThreadRace("noteDelete");
  App.seedIntraThreadRace("noteCheck");
  App.seedIntraThreadRace("widgetRefresh");
  App.seedIntraThreadRace("listReload");
  App.seedIntraThreadRace("dbFlush");
  App.seedIntraThreadRace("cursorSwap");
  App.seedIntraThreadRace("prefsReload");

  // The update path is guarded by an isOpen flag (the catch-NPE hack).
  App.seedFlagGuardedFp("dbUpdate");

  App.addGuardedCommutativePair("widgetDraw");
  App.addFreeThenAllocPair("cursorRecycle");

  App.addNaiveNoise(/*NumFields=*/32, /*ReaderInstances=*/4,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("noteSync");
  App.addAtomicityOrderedPair("widgetDetach");

  App.fillVolumeTo(7'122, /*WorkPerTick=*/1);
  return App.finish(paperRow(7'122, 8, 0, 0, 0, 1, 0));
}
