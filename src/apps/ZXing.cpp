//===- apps/ZXing.cpp - Barcode scanner model ---------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// ZXing 4.5.1 (Section 6.1): camera barcode scanner.  The trace scans a
// barcode, pauses to the home screen, resumes and scans again.  Section
// 6.2 highlights its pause-path cleanup frees racing decode-thread events.
// Table 1: 5 reports = 2 inter-thread + one of each false-positive type.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildZXing() {
  AppBuilder App("zxing");

  // The decode worker publishes results that race the onPause cleanup.
  App.seedInterThreadRace("decodeResult");
  App.seedInterThreadRace("previewFrame");

  // Auto-focus callbacks come through an uninstrumented camera package.
  App.seedUninstrumentedListenerFp("autoFocus");

  // The torch toggle is guarded by a boolean the heuristics cannot see.
  App.seedFlagGuardedFp("torchState");

  // The viewfinder caches the surface object under two aliases.
  App.seedAliasMismatchFp("viewfinder");

  App.addGuardedCommutativePair("resultOverlay");
  App.addAllocBeforeUsePair("scanRestart");
  App.addLockProtectedPair("cameraHandle");

  App.addNaiveNoise(/*NumFields=*/48, /*ReaderInstances=*/5,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("beepPlayer");
  App.addExternalOrderedPair("historyPanel");

  App.fillVolumeTo(4'554, /*WorkPerTick=*/4);
  return App.finish(paperRow(4'554, 0, 2, 0, 1, 1, 1));
}
