//===- apps/FBReader.cpp - E-book reader model --------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// FBReader 1.9.6.1 (Section 6.1): e-book reader; the trace pages through
// the tutorial, rotates the device, and returns to the first page.  The
// rotation path tears down and rebuilds the view hierarchy, racing page
// pre-render workers.  Table 1: 9 reports = 1 intra-thread + 3
// inter-thread + 1 conventional + 2 Type I + 2 Type II false positives.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildFBReader() {
  AppBuilder App("fbreader");

  // A delayed page-cache trim races the rotation teardown.
  App.seedIntraThreadRace("pageCacheTrim");

  App.seedInterThreadRace("pageRender");
  App.seedInterThreadRace("footnotePopup");
  App.seedInterThreadRace("libraryScan");

  App.seedConventionalRace("hyphenationLoad");

  App.seedUninstrumentedListenerFp("batteryLevel");
  App.seedUninstrumentedListenerFp("tipsRotation");

  App.seedFlagGuardedFp("animationEnabled");
  App.seedFlagGuardedFp("nightMode");

  App.addGuardedCommutativePair("tocRefresh");
  App.addFreeThenAllocPair("bitmapRecycle");
  App.addLockProtectedPair("bookModelLock");

  App.addNaiveNoise(/*NumFields=*/44, /*ReaderInstances=*/5,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("positionSave");
  App.addAtomicityOrderedPair("viewDetach");

  App.fillVolumeTo(3'528, /*WorkPerTick=*/3);
  return App.finish(paperRow(3'528, 1, 3, 1, 2, 2, 0));
}
