//===- apps/Music.cpp - AOSP music player model -------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Music (Section 6.1): the AOSP audio player; the trace plays an MP3,
// pauses to the home screen, and resumes.  Playback-progress timers race
// the pause path on the main looper.  Table 1: 5 reports = 2 intra-thread
// + 2 Type II + 1 Type III false positives.  (Section 6.4 calls out
// Music's analysis time -- its event volume is near the top of the set.)
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildMusic() {
  AppBuilder App("music");

  // Progress/album-art refresh timers race the service unbind free.
  App.seedIntraThreadRace("progressRefresh");
  App.seedIntraThreadRace("albumArtSwap");

  App.seedFlagGuardedFp("serviceBound");
  App.seedFlagGuardedFp("shuffleMode");

  App.seedAliasMismatchFp("nowPlayingRow");

  App.addGuardedCommutativePair("lyricsScroll");
  App.addFreeThenAllocPair("visualizerReset");
  App.addLockProtectedPair("playerLock");

  App.addNaiveNoise(/*NumFields=*/36, /*ReaderInstances=*/4,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("queueCommit");
  App.addExternalOrderedPair("nowPlayingPanel");

  App.fillVolumeTo(6'684, /*WorkPerTick=*/1);
  return App.finish(paperRow(6'684, 2, 0, 0, 0, 2, 1));
}
