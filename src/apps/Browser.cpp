//===- apps/Browser.cpp - AOSP browser model ----------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Browser (Section 6.1): the AOSP built-in browser.  The trace loads the
// Google homepage, searches, follows a link, and navigates back.  The
// network and WebView worker threads make this the report-heaviest row.
// Table 1: 35 reports = 8 inter-thread + 19 conventional + 1 Type I +
// 7 Type II false positives.
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"
#include "apps/AppsCommon.h"

#include <string>

using namespace cafa;
using namespace cafa::apps;

AppModel cafa::apps::buildBrowser() {
  AppBuilder App("browser");

  static const char *const MaskedWorkers[] = {
      "pageLoad",    "resourceFetch", "faviconStore", "historyWrite",
      "cookieSync",  "tabSnapshot",   "jsCallback",   "geoPermission",
  };
  for (const char *Name : MaskedWorkers)
    App.seedInterThreadRace(Name);

  static const char *const PlainWorkers[] = {
      "dnsPrefetch",   "cacheEvict",    "imageDecode",  "cssParse",
      "domLayout",     "scrollPrefetch","downloadPoll", "formAutofill",
      "sslVerify",     "pluginScan",    "bookmarkSync", "searchSuggest",
      "thumbCapture",  "zoomRecalc",    "fontLoad",     "mediaProbe",
      "certCacheWarm", "quotaCheck",    "spdyPing",
  };
  for (const char *Name : PlainWorkers)
    App.seedConventionalRace(Name);

  App.seedUninstrumentedListenerFp("webViewClient");

  static const char *const Flags[] = {
      "privateMode", "jsEnabled",    "pageFinished", "tabActive",
      "reloadGuard", "progressShown", "findInPage",
  };
  for (const char *Name : Flags)
    App.seedFlagGuardedFp(Name);

  App.addGuardedCommutativePair("titleUpdate");
  App.addAllocBeforeUsePair("tabOpen");
  App.addFreeThenAllocPair("webViewRecycle");
  App.addLockProtectedPair("cacheLock");

  App.addNaiveNoise(/*NumFields=*/72, /*ReaderInstances=*/5,
                    /*WriterInstances=*/3);

  App.addQueueOrderedPair("tabCommit");
  App.addAtomicityOrderedPair("webViewDetach");
  App.addExternalOrderedPair("menuPanel");

  App.fillVolumeTo(3'965, /*WorkPerTick=*/5);
  return App.finish(paperRow(3'965, 0, 8, 19, 1, 7, 0));
}
