//===- apps/Registry.cpp - App model registry ---------------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "apps/Apps.h"

#include "support/Status.h"

using namespace cafa;
using namespace cafa::apps;

namespace {

using BuilderFn = AppModel (*)();

struct RegistryEntry {
  const char *Name;
  BuilderFn Build;
};

const RegistryEntry Registry[] = {
    {"connectbot", buildConnectBot}, {"mytracks", buildMyTracks},
    {"zxing", buildZXing},           {"todolist", buildToDoList},
    {"browser", buildBrowser},       {"firefox", buildFirefox},
    {"vlc", buildVlc},               {"fbreader", buildFBReader},
    {"camera", buildCamera},         {"music", buildMusic},
};

} // namespace

const std::vector<std::string> &cafa::apps::appNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> V;
    for (const RegistryEntry &E : Registry)
      V.push_back(E.Name);
    return V;
  }();
  return Names;
}

AppModel cafa::apps::buildApp(const std::string &Name) {
  for (const RegistryEntry &E : Registry)
    if (Name == E.Name)
      return E.Build();
  reportFatalError(("unknown application model: " + Name).c_str());
}

std::vector<AppModel> cafa::apps::buildAllApps() {
  std::vector<AppModel> Models;
  Models.reserve(std::size(Registry));
  for (const RegistryEntry &E : Registry)
    Models.push_back(E.Build());
  return Models;
}
