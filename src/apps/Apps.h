//===- apps/Apps.h - The ten modeled applications --------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for the ten applications of Section 6.1.  Each model
/// reproduces the paper's per-app Table 1 row: the same event volume, the
/// same number of seeded harmful races per category, and the same false
/// positives per type, arising from the concurrency patterns the paper
/// describes (pause-path frees, RPC-delivered events, flag-guarded uses,
/// uninstrumented listeners, aliased pointer reads).
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_APPS_APPS_H
#define CAFA_APPS_APPS_H

#include "apps/AppKit.h"

#include <string>
#include <vector>

namespace cafa {
namespace apps {

AppModel buildConnectBot(); ///< SSH client; the naive-detector case study
AppModel buildMyTracks();   ///< GPS tracker; Figure 1's RPC race
AppModel buildZXing();      ///< barcode scanner
AppModel buildToDoList();   ///< to-do widget; intra-thread-race heavy
AppModel buildBrowser();    ///< AOSP browser; largest report count
AppModel buildFirefox();    ///< Mozilla browser
AppModel buildVlc();        ///< media player
AppModel buildFBReader();   ///< e-book reader
AppModel buildCamera();     ///< AOSP camera
AppModel buildMusic();      ///< AOSP audio player

/// Names in Table 1 order.
const std::vector<std::string> &appNames();

/// Builds the app named \p Name; aborts on unknown names.
AppModel buildApp(const std::string &Name);

/// Builds all ten models in Table 1 order.
std::vector<AppModel> buildAllApps();

} // namespace apps
} // namespace cafa

#endif // CAFA_APPS_APPS_H
