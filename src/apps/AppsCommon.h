//===- apps/AppsCommon.h - Shared helpers for app models -------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helpers shared by the per-application builder files.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_APPS_APPSCOMMON_H
#define CAFA_APPS_APPSCOMMON_H

#include "apps/AppKit.h"

namespace cafa {
namespace apps {

/// Builds the paper's reference Table 1 row.
inline Table1Row paperRow(uint64_t Events, uint64_t A, uint64_t B,
                          uint64_t C, uint64_t I, uint64_t II,
                          uint64_t III) {
  Table1Row Row;
  Row.Events = Events;
  Row.TrueA = A;
  Row.TrueB = B;
  Row.TrueC = C;
  Row.FpI = I;
  Row.FpII = II;
  Row.FpIII = III;
  Row.Reported = A + B + C + I + II + III;
  return Row;
}

} // namespace apps
} // namespace cafa

#endif // CAFA_APPS_APPSCOMMON_H
