//===- cafa/RaceRecord.cpp - First-class race data model ----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/RaceRecord.h"

#include "trace/Trace.h"

using namespace cafa;

const char *cafa::confirmVerdictName(ConfirmVerdict V) {
  switch (V) {
  case ConfirmVerdict::None:
    return "";
  case ConfirmVerdict::Confirmed:
    return "confirmed";
  case ConfirmVerdict::Infeasible:
    return "infeasible";
  case ConfirmVerdict::Unconfirmed:
    return "unconfirmed";
  }
  return "";
}

bool cafa::confirmVerdictFromName(const std::string &Name,
                                  ConfirmVerdict &Out) {
  if (Name.empty()) {
    Out = ConfirmVerdict::None;
    return true;
  }
  if (Name == "confirmed") {
    Out = ConfirmVerdict::Confirmed;
    return true;
  }
  if (Name == "infeasible") {
    Out = ConfirmVerdict::Infeasible;
    return true;
  }
  if (Name == "unconfirmed") {
    Out = ConfirmVerdict::Unconfirmed;
    return true;
  }
  return false;
}

ConfirmVerdict cafa::mergeConfirmVerdicts(ConfirmVerdict A,
                                          ConfirmVerdict B) {
  // Evidence strength, strongest first: a reproduced crash, a proven
  // impossibility, an exhausted budget, nothing attempted.
  auto Rank = [](ConfirmVerdict V) -> int {
    switch (V) {
    case ConfirmVerdict::Confirmed:
      return 3;
    case ConfirmVerdict::Infeasible:
      return 2;
    case ConfirmVerdict::Unconfirmed:
      return 1;
    case ConfirmVerdict::None:
      return 0;
    }
    return 0;
  };
  return Rank(A) >= Rank(B) ? A : B;
}

RaceDocument cafa::buildRaceDocument(const RaceReport &Report,
                                     const Trace &T) {
  RaceDocument Doc;
  Doc.Races.reserve(Report.Races.size());
  for (const UseFreeRace &Race : Report.Races) {
    RaceRecord R;
    R.UseMethod = T.methodName(Race.Use.Method);
    R.UsePc = Race.Use.Pc;
    R.UseTask = T.taskName(Race.Use.Task);
    R.UseRecord = Race.Use.Record;
    R.FreeMethod = T.methodName(Race.Free.Method);
    R.FreePc = Race.Free.Pc;
    R.FreeTask = T.taskName(Race.Free.Task);
    R.FreeRecord = Race.Free.Record;
    R.Category = raceCategoryName(Race.Category);
    R.DynamicCount = Race.DynamicCount;
    Doc.Races.push_back(std::move(R));
  }
  Doc.Filters = Report.Filters;
  Doc.Partial = Report.Partial;
  Doc.PartialCause = Report.PartialCause;
  Doc.PartialDetail = Report.PartialDetail;
  Doc.Provisional = Report.racesProvisional();
  return Doc;
}
