//===- cafa/Cafa.cpp - Public facade of the CAFA library ---------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"

#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <tuple>

using namespace cafa;

namespace {

/// Retirement cadence the memory-pressure ladder uses when it engages
/// the windowed scan on its own (no explicit --window / CAFA_WINDOW):
/// large enough that the sweep cost is noise, small enough that retained
/// accesses turn over well before the batch tables' footprint.
constexpr uint64_t DefaultPressureWindow = 65536;

} // namespace

AnalysisResult cafa::analyzeTrace(const Trace &T,
                                  const AnalysisOptions &Analysis) {
  const DetectorOptions &Options = Analysis.Detector;
  const CheckpointOptions &CkptOpt = Analysis.Checkpoint;
  const DerefResolver *Resolver = Analysis.Resolver;
  AnalysisResult Result;
  Result.TraceStatistics = computeTraceStats(T);

  // DeadlineMillis bounds the whole pipeline here: each phase gets what
  // the previous phases left over (floored at a hair above zero so a
  // blown budget still means "stop at the first checkpoint", not "run
  // unbounded").
  Timer Total;
  DetectorOptions Opt = Options;
  auto Remaining = [&] {
    return std::max(Options.DeadlineMillis - Total.elapsedWallMillis(),
                    0.001);
  };

  // Windowed streaming detection (docs/windowed-analysis.md): resolved
  // up front so the primary fixpoint can pick a frontier-friendly
  // oracle; the memory-pressure ladder may still engage it after the
  // build (below).  A windowed run changes the reach *default* from
  // Incremental to Chain -- the windowed scan sheds the oracle right
  // after the fixpoint, so the low-memory rung is the right pick -- but
  // an explicit request or CAFA_REACH keeps full precedence.
  uint64_t Window = resolveWindowEvents(Options.WindowEvents);
  bool Windowed = Window != DetectorOptions::WindowOff;
  if (Windowed && Opt.Hb.Reach == ReachMode::Auto &&
      !std::getenv("CAFA_REACH"))
    Opt.Hb.Reach = ReachMode::Chain;

  // Checkpoint identity: every snapshot carries the trace fingerprint
  // and the semantic-options digest, and resume refuses anything that
  // does not match -- continuing another trace's fixpoint would produce
  // confidently wrong reports, the one unacceptable failure mode.
  ResumeOutcome &RO = Result.Resume;
  bool CkptOn = CkptOpt.enabled();
  std::string Path;
  uint64_t Fp = 0, Digest = 0;
  if (CkptOn) {
    Path = checkpointPath(CkptOpt.Directory);
    Fp = traceFingerprint(T);
    Digest = detectorOptionsDigest(Options, Resolver != nullptr);
  }
  bool WroteSnapshot = false;
  auto RecordSaveError = [&](const Status &S) {
    if (S.ok())
      WroteSnapshot = true;
    else if (RO.SaveError.empty())
      RO.SaveError = S.message();
  };
  auto StampIdentity = [&](AnalysisSnapshot &Out) {
    Out.TraceFingerprint = Fp;
    Out.NumRecords = T.numRecords();
    Out.OptionsDigest = Digest;
  };

  AnalysisSnapshot Snap;
  bool HaveSnap = false;
  if (CkptOn && CkptOpt.Resume) {
    RO.Attempted = true;
    if (std::FILE *F = std::fopen(Path.c_str(), "rb")) {
      std::fclose(F);
      Status S = loadAnalysisSnapshot(Snap, Path);
      if (!S.ok())
        RO.RejectReason = S.message();
      else if (Snap.NumRecords != T.numRecords() ||
               Snap.TraceFingerprint != Fp)
        RO.RejectReason = "snapshot does not match this trace";
      else if (Snap.OptionsDigest != Digest)
        RO.RejectReason =
            "snapshot was taken under different analysis options";
      else
        HaveSnap = true;
    } else {
      RO.NoSnapshot = true;
    }
  }

  Timer Phase;
  TaskIndex Index(T);

  HbCheckpointing HbCk;
  if (CkptOn) {
    HbCk.EveryMillis = CkptOpt.EveryMillis;
    HbCk.Save = [&](const HbFrontier &F) {
      AnalysisSnapshot Out;
      StampIdentity(Out);
      Out.Phase = SnapshotPhase::HbFixpoint;
      Out.Hb = F;
      RecordSaveError(saveAnalysisSnapshot(Out, Path));
    };
  }
  if (HaveSnap) {
    HbCk.Resume = &Snap.Hb;
    RO.Resumed = true;
    RO.Phase =
        Snap.Phase == SnapshotPhase::Detect ? "detect" : "hb-fixpoint";
    RO.HbRoundsDone = Snap.Hb.RoundsDone;
  }

  if (Opt.DeadlineMillis > 0)
    Opt.Hb.DeadlineMillis = Remaining();
  Phase.restart();
  HbIndex Hb(T, Index, Opt.Hb, CkptOn ? &HbCk : nullptr);
  Result.HbBuildMillis = Phase.elapsedWallMillis();
  Result.HbStats = Hb.ruleStats();
  Result.HbMemoryBytes = Hb.memoryBytes();
  Result.Degradation = Hb.degradation();

  // Memory-pressure rung of the degradation ladder: when the oracle had
  // to be downgraded to fit Hb.MemLimitBytes and the caller left the
  // window on auto, shed to the windowed scan before the batch detector
  // materializes its access tables -- strictly less resident memory,
  // byte-identical report.  An explicit WindowOff pins the batch scan.
  if (!Windowed && Options.WindowEvents == 0 &&
      Hb.degradation().DowngradedForMemory) {
    Window = DefaultPressureWindow;
    Windowed = true;
    Result.WindowShedByMemory = true;
  }

  // The batch detector scans a fully materialized AccessDb; the
  // windowed scan streams its own extraction passes (ExtractMillis
  // stays 0 and the tallies land in Result.WindowedDetect).
  AccessDb Db;
  if (!Windowed) {
    Phase.restart();
    Db = extractAccesses(T, Index, Resolver);
    Result.ExtractMillis = Phase.elapsedWallMillis();
  }

  // Detector-phase checkpointing only makes sense over a saturated
  // relation: a frontier scanned against a cut relation would bake its
  // too-weak "unordered" verdicts into the resumed report, so such
  // state is never saved and never reused.  Each scan mode has its own
  // frontier shape; a snapshot cut in the other mode contributes its Hb
  // frontier (adopted above) and detection restarts from scratch --
  // recompute, never reject.
  bool DetectCkptOn = CkptOn && !Hb.degradation().DeadlineExceeded;
  DetectCheckpointing DetCk;
  WindowedDetectCheckpointing WDetCk;
  DetectFrontier LastDetect;
  WindowedDetectFrontier LastWDetect;
  bool HaveLastDetect = false, HaveLastWDetect = false;
  HbFrontier HbFinal;
  if (DetectCkptOn) {
    HbFinal = Hb.exportFrontier();
    if (Windowed) {
      WDetCk.EveryMillis = CkptOpt.EveryMillis;
      WDetCk.Save = [&](const WindowedDetectFrontier &F) {
        LastWDetect = F;
        HaveLastWDetect = true;
        AnalysisSnapshot Out;
        StampIdentity(Out);
        Out.Phase = SnapshotPhase::Detect;
        Out.Hb = HbFinal;
        Out.HasWindowedDetect = true;
        Out.WindowedDetect = F;
        RecordSaveError(saveAnalysisSnapshot(Out, Path));
      };
      if (HaveSnap && Snap.Phase == SnapshotPhase::Detect &&
          Snap.HasWindowedDetect && Snap.Hb.Saturated)
        WDetCk.Resume = &Snap.WindowedDetect;
    } else {
      DetCk.EveryMillis = CkptOpt.EveryMillis;
      DetCk.Save = [&](const DetectFrontier &F) {
        LastDetect = F;
        HaveLastDetect = true;
        AnalysisSnapshot Out;
        StampIdentity(Out);
        Out.Phase = SnapshotPhase::Detect;
        Out.Hb = HbFinal;
        Out.HasDetect = true;
        Out.Detect = F;
        RecordSaveError(saveAnalysisSnapshot(Out, Path));
      };
      if (HaveSnap && Snap.Phase == SnapshotPhase::Detect && Snap.HasDetect &&
          Snap.Hb.Saturated)
        DetCk.Resume = &Snap.Detect;
    }
  }

  if (Opt.DeadlineMillis > 0)
    Opt.DeadlineMillis = Remaining();
  Phase.restart();
  if (Windowed) {
    // The windowed scan orders pairs from its own frontier rows; the
    // primary oracle is dead weight from here on (the frontier blob,
    // when wanted, was exported above).
    Hb.shedOracle();
    Result.WindowEventsUsed = Window;
    Result.Report = detectUseFreeRacesWindowed(
        T, Index, Hb, Opt, Window, Resolver, &Result.WindowedDetect,
        DetectCkptOn ? &WDetCk : nullptr);
  } else {
    Result.Report = detectUseFreeRaces(T, Index, Db, Hb, Opt,
                                       DetectCkptOn ? &DetCk : nullptr);
  }
  Result.DetectMillis = Phase.elapsedWallMillis();

  if (!CkptOn)
    return Result;

  auto raceKey = [](uint32_t UseMethod, uint32_t UsePc, uint32_t FreeMethod,
                    uint32_t FreePc) {
    return std::make_tuple(UseMethod, UsePc, FreeMethod, FreePc);
  };
  if (Result.Report.Partial) {
    // Final partial rewrite: keep the frontier resumable and attach the
    // partial report's races, so the run that finishes the job can diff
    // its complete report against this provisional one.
    AnalysisSnapshot Out;
    StampIdentity(Out);
    if (DetectCkptOn && HaveLastWDetect) {
      Out.Phase = SnapshotPhase::Detect;
      Out.Hb = HbFinal;
      Out.HasWindowedDetect = true;
      Out.WindowedDetect = LastWDetect;
    } else if (DetectCkptOn && HaveLastDetect) {
      Out.Phase = SnapshotPhase::Detect;
      Out.Hb = HbFinal;
      Out.HasDetect = true;
      Out.Detect = LastDetect;
    } else {
      Out.Phase = SnapshotPhase::HbFixpoint;
      Out.Hb = Hb.exportFrontier();
    }
    Out.HasPartialRaces = true;
    Out.PartialRaces.reserve(Result.Report.Races.size());
    for (const UseFreeRace &Race : Result.Report.Races)
      Out.PartialRaces.push_back({Race.Use.Method.value(), Race.Use.Pc,
                                  Race.Free.Method.value(), Race.Free.Pc,
                                  renderRaceLine(Race, T)});
    RecordSaveError(saveAnalysisSnapshot(Out, Path));
  } else {
    // Complete run: diff against the partial baseline (if the snapshot
    // carried one), then retire the snapshot -- a stale file must not
    // shadow a finished analysis.
    if (HaveSnap && Snap.HasPartialRaces) {
      RO.HasBaseline = true;
      std::set<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>> Final;
      for (const UseFreeRace &Race : Result.Report.Races)
        Final.insert(raceKey(Race.Use.Method.value(), Race.Use.Pc,
                             Race.Free.Method.value(), Race.Free.Pc));
      for (const PartialRaceKey &K : Snap.PartialRaces) {
        if (Final.count(raceKey(K.UseMethod, K.UsePc, K.FreeMethod,
                                K.FreePc)))
          ++RO.ConfirmedRaces;
        else
          RO.RetractedRaces.push_back(K.Label);
      }
      RO.NewRaces =
          static_cast<uint32_t>(Result.Report.Races.size()) -
          RO.ConfirmedRaces;
    }
    // Never delete a snapshot we rejected and did not overwrite: it
    // belongs to a different trace/options run (or is evidence of
    // corruption worth inspecting), not to this analysis.
    if (RO.RejectReason.empty() || WroteSnapshot)
      std::remove(Path.c_str());
  }
  return Result;
}

AnalysisResult cafa::analyzeScenario(const Scenario &S,
                                     const RuntimeOptions &RtOptions,
                                     const DetectorOptions &DetOptions,
                                     const GroundTruth *Truth,
                                     Table1Row *RowOut) {
  RuntimeOptions Rt = RtOptions;
  Rt.Tracing = true; // analysis needs a trace regardless of caller intent
  Trace T = runScenario(S, Rt);
  AnalysisResult Result = analyzeTrace(T, DetOptions);
  if (Truth && RowOut)
    *RowOut = evaluateReport(Result.Report, *Truth, T, S.AppName);
  return Result;
}
