//===- cafa/Cafa.cpp - Public facade of the CAFA library ---------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"

#include "support/Timer.h"

using namespace cafa;

AnalysisResult cafa::analyzeTrace(const Trace &T,
                                  const DetectorOptions &Options,
                                  const DerefResolver *Resolver) {
  AnalysisResult Result;
  Result.TraceStatistics = computeTraceStats(T);

  Timer Phase;
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index, Resolver);
  Result.ExtractMillis = Phase.elapsedWallMillis();

  Phase.restart();
  HbIndex Hb(T, Index, Options.Hb);
  Result.HbBuildMillis = Phase.elapsedWallMillis();
  Result.HbStats = Hb.ruleStats();
  Result.HbMemoryBytes = Hb.memoryBytes();

  Phase.restart();
  Result.Report = detectUseFreeRaces(T, Index, Db, Hb, Options);
  Result.DetectMillis = Phase.elapsedWallMillis();
  return Result;
}

AnalysisResult cafa::analyzeScenario(const Scenario &S,
                                     const RuntimeOptions &RtOptions,
                                     const DetectorOptions &DetOptions,
                                     const GroundTruth *Truth,
                                     Table1Row *RowOut) {
  RuntimeOptions Rt = RtOptions;
  Rt.Tracing = true; // analysis needs a trace regardless of caller intent
  Trace T = runScenario(S, Rt);
  AnalysisResult Result = analyzeTrace(T, DetOptions);
  if (Truth && RowOut)
    *RowOut = evaluateReport(Result.Report, *Truth, T, S.AppName);
  return Result;
}
