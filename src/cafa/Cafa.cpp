//===- cafa/Cafa.cpp - Public facade of the CAFA library ---------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"

#include "support/Timer.h"

#include <algorithm>

using namespace cafa;

AnalysisResult cafa::analyzeTrace(const Trace &T,
                                  const DetectorOptions &Options,
                                  const DerefResolver *Resolver) {
  AnalysisResult Result;
  Result.TraceStatistics = computeTraceStats(T);

  // DeadlineMillis bounds the whole pipeline here: each phase gets what
  // the previous phases left over (floored at a hair above zero so a
  // blown budget still means "stop at the first checkpoint", not "run
  // unbounded").
  Timer Total;
  DetectorOptions Opt = Options;
  auto Remaining = [&] {
    return std::max(Options.DeadlineMillis - Total.elapsedWallMillis(),
                    0.001);
  };

  Timer Phase;
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index, Resolver);
  Result.ExtractMillis = Phase.elapsedWallMillis();

  if (Opt.DeadlineMillis > 0)
    Opt.Hb.DeadlineMillis = Remaining();
  Phase.restart();
  HbIndex Hb(T, Index, Opt.Hb);
  Result.HbBuildMillis = Phase.elapsedWallMillis();
  Result.HbStats = Hb.ruleStats();
  Result.HbMemoryBytes = Hb.memoryBytes();
  Result.Degradation = Hb.degradation();

  if (Opt.DeadlineMillis > 0)
    Opt.DeadlineMillis = Remaining();
  Phase.restart();
  Result.Report = detectUseFreeRaces(T, Index, Db, Hb, Opt);
  Result.DetectMillis = Phase.elapsedWallMillis();
  return Result;
}

AnalysisResult cafa::analyzeScenario(const Scenario &S,
                                     const RuntimeOptions &RtOptions,
                                     const DetectorOptions &DetOptions,
                                     const GroundTruth *Truth,
                                     Table1Row *RowOut) {
  RuntimeOptions Rt = RtOptions;
  Rt.Tracing = true; // analysis needs a trace regardless of caller intent
  Trace T = runScenario(S, Rt);
  AnalysisResult Result = analyzeTrace(T, DetOptions);
  if (Truth && RowOut)
    *RowOut = evaluateReport(Result.Report, *Truth, T, S.AppName);
  return Result;
}
