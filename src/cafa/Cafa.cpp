//===- cafa/Cafa.cpp - Public facade of the CAFA library ---------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/Cafa.h"

#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <tuple>

using namespace cafa;

AnalysisResult cafa::analyzeTrace(const Trace &T,
                                  const AnalysisOptions &Analysis) {
  const DetectorOptions &Options = Analysis.Detector;
  const CheckpointOptions &CkptOpt = Analysis.Checkpoint;
  const DerefResolver *Resolver = Analysis.Resolver;
  AnalysisResult Result;
  Result.TraceStatistics = computeTraceStats(T);

  // DeadlineMillis bounds the whole pipeline here: each phase gets what
  // the previous phases left over (floored at a hair above zero so a
  // blown budget still means "stop at the first checkpoint", not "run
  // unbounded").
  Timer Total;
  DetectorOptions Opt = Options;
  auto Remaining = [&] {
    return std::max(Options.DeadlineMillis - Total.elapsedWallMillis(),
                    0.001);
  };

  // Checkpoint identity: every snapshot carries the trace fingerprint
  // and the semantic-options digest, and resume refuses anything that
  // does not match -- continuing another trace's fixpoint would produce
  // confidently wrong reports, the one unacceptable failure mode.
  ResumeOutcome &RO = Result.Resume;
  bool CkptOn = CkptOpt.enabled();
  std::string Path;
  uint64_t Fp = 0, Digest = 0;
  if (CkptOn) {
    Path = checkpointPath(CkptOpt.Directory);
    Fp = traceFingerprint(T);
    Digest = detectorOptionsDigest(Options, Resolver != nullptr);
  }
  bool WroteSnapshot = false;
  auto RecordSaveError = [&](const Status &S) {
    if (S.ok())
      WroteSnapshot = true;
    else if (RO.SaveError.empty())
      RO.SaveError = S.message();
  };
  auto StampIdentity = [&](AnalysisSnapshot &Out) {
    Out.TraceFingerprint = Fp;
    Out.NumRecords = T.numRecords();
    Out.OptionsDigest = Digest;
  };

  AnalysisSnapshot Snap;
  bool HaveSnap = false;
  if (CkptOn && CkptOpt.Resume) {
    RO.Attempted = true;
    if (std::FILE *F = std::fopen(Path.c_str(), "rb")) {
      std::fclose(F);
      Status S = loadAnalysisSnapshot(Snap, Path);
      if (!S.ok())
        RO.RejectReason = S.message();
      else if (Snap.NumRecords != T.numRecords() ||
               Snap.TraceFingerprint != Fp)
        RO.RejectReason = "snapshot does not match this trace";
      else if (Snap.OptionsDigest != Digest)
        RO.RejectReason =
            "snapshot was taken under different analysis options";
      else
        HaveSnap = true;
    } else {
      RO.NoSnapshot = true;
    }
  }

  Timer Phase;
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index, Resolver);
  Result.ExtractMillis = Phase.elapsedWallMillis();

  HbCheckpointing HbCk;
  if (CkptOn) {
    HbCk.EveryMillis = CkptOpt.EveryMillis;
    HbCk.Save = [&](const HbFrontier &F) {
      AnalysisSnapshot Out;
      StampIdentity(Out);
      Out.Phase = SnapshotPhase::HbFixpoint;
      Out.Hb = F;
      RecordSaveError(saveAnalysisSnapshot(Out, Path));
    };
  }
  if (HaveSnap) {
    HbCk.Resume = &Snap.Hb;
    RO.Resumed = true;
    RO.Phase =
        Snap.Phase == SnapshotPhase::Detect ? "detect" : "hb-fixpoint";
    RO.HbRoundsDone = Snap.Hb.RoundsDone;
  }

  if (Opt.DeadlineMillis > 0)
    Opt.Hb.DeadlineMillis = Remaining();
  Phase.restart();
  HbIndex Hb(T, Index, Opt.Hb, CkptOn ? &HbCk : nullptr);
  Result.HbBuildMillis = Phase.elapsedWallMillis();
  Result.HbStats = Hb.ruleStats();
  Result.HbMemoryBytes = Hb.memoryBytes();
  Result.Degradation = Hb.degradation();

  // Detector-phase checkpointing only makes sense over a saturated
  // relation: a frontier scanned against a cut relation would bake its
  // too-weak "unordered" verdicts into the resumed report, so such
  // state is never saved and never reused.
  bool DetectCkptOn = CkptOn && !Hb.degradation().DeadlineExceeded;
  DetectCheckpointing DetCk;
  DetectFrontier LastDetect;
  bool HaveLastDetect = false;
  HbFrontier HbFinal;
  if (DetectCkptOn) {
    HbFinal = Hb.exportFrontier();
    DetCk.EveryMillis = CkptOpt.EveryMillis;
    DetCk.Save = [&](const DetectFrontier &F) {
      LastDetect = F;
      HaveLastDetect = true;
      AnalysisSnapshot Out;
      StampIdentity(Out);
      Out.Phase = SnapshotPhase::Detect;
      Out.Hb = HbFinal;
      Out.HasDetect = true;
      Out.Detect = F;
      RecordSaveError(saveAnalysisSnapshot(Out, Path));
    };
    if (HaveSnap && Snap.Phase == SnapshotPhase::Detect && Snap.HasDetect &&
        Snap.Hb.Saturated)
      DetCk.Resume = &Snap.Detect;
  }

  if (Opt.DeadlineMillis > 0)
    Opt.DeadlineMillis = Remaining();
  Phase.restart();
  Result.Report = detectUseFreeRaces(T, Index, Db, Hb, Opt,
                                     DetectCkptOn ? &DetCk : nullptr);
  Result.DetectMillis = Phase.elapsedWallMillis();

  if (!CkptOn)
    return Result;

  auto raceKey = [](uint32_t UseMethod, uint32_t UsePc, uint32_t FreeMethod,
                    uint32_t FreePc) {
    return std::make_tuple(UseMethod, UsePc, FreeMethod, FreePc);
  };
  if (Result.Report.Partial) {
    // Final partial rewrite: keep the frontier resumable and attach the
    // partial report's races, so the run that finishes the job can diff
    // its complete report against this provisional one.
    AnalysisSnapshot Out;
    StampIdentity(Out);
    if (DetectCkptOn && HaveLastDetect) {
      Out.Phase = SnapshotPhase::Detect;
      Out.Hb = HbFinal;
      Out.HasDetect = true;
      Out.Detect = LastDetect;
    } else {
      Out.Phase = SnapshotPhase::HbFixpoint;
      Out.Hb = Hb.exportFrontier();
    }
    Out.HasPartialRaces = true;
    Out.PartialRaces.reserve(Result.Report.Races.size());
    for (const UseFreeRace &Race : Result.Report.Races)
      Out.PartialRaces.push_back({Race.Use.Method.value(), Race.Use.Pc,
                                  Race.Free.Method.value(), Race.Free.Pc,
                                  renderRaceLine(Race, T)});
    RecordSaveError(saveAnalysisSnapshot(Out, Path));
  } else {
    // Complete run: diff against the partial baseline (if the snapshot
    // carried one), then retire the snapshot -- a stale file must not
    // shadow a finished analysis.
    if (HaveSnap && Snap.HasPartialRaces) {
      RO.HasBaseline = true;
      std::set<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>> Final;
      for (const UseFreeRace &Race : Result.Report.Races)
        Final.insert(raceKey(Race.Use.Method.value(), Race.Use.Pc,
                             Race.Free.Method.value(), Race.Free.Pc));
      for (const PartialRaceKey &K : Snap.PartialRaces) {
        if (Final.count(raceKey(K.UseMethod, K.UsePc, K.FreeMethod,
                                K.FreePc)))
          ++RO.ConfirmedRaces;
        else
          RO.RetractedRaces.push_back(K.Label);
      }
      RO.NewRaces =
          static_cast<uint32_t>(Result.Report.Races.size()) -
          RO.ConfirmedRaces;
    }
    // Never delete a snapshot we rejected and did not overwrite: it
    // belongs to a different trace/options run (or is evidence of
    // corruption worth inspecting), not to this analysis.
    if (RO.RejectReason.empty() || WroteSnapshot)
      std::remove(Path.c_str());
  }
  return Result;
}

AnalysisResult cafa::analyzeScenario(const Scenario &S,
                                     const RuntimeOptions &RtOptions,
                                     const DetectorOptions &DetOptions,
                                     const GroundTruth *Truth,
                                     Table1Row *RowOut) {
  RuntimeOptions Rt = RtOptions;
  Rt.Tracing = true; // analysis needs a trace regardless of caller intent
  Trace T = runScenario(S, Rt);
  AnalysisResult Result = analyzeTrace(T, DetOptions);
  if (Truth && RowOut)
    *RowOut = evaluateReport(Result.Report, *Truth, T, S.AppName);
  return Result;
}
