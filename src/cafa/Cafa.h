//===- cafa/Cafa.h - Public facade of the CAFA library ---------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop public API.  A downstream user typically does:
///
/// \code
///   Scenario S = buildMyApp();                  // or apps::buildMyTracks()
///   Trace T = runScenario(S, RuntimeOptions()); // instrumented execution
///   AnalysisResult R = analyzeTrace(T, DetectorOptions());
///   std::cout << renderRaceReport(R.Report, T);
/// \endcode
///
/// Everything the facade exposes is also reachable through the individual
/// libraries (rt, hb, detect) for finer control.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CAFA_CAFA_H
#define CAFA_CAFA_CAFA_H

#include "cafa/Checkpoint.h"
#include "detect/Baselines.h"
#include "detect/DerefDataflow.h"
#include "detect/GroundTruth.h"
#include "detect/UseFreeDetector.h"
#include "rt/Runtime.h"
#include "trace/TraceStats.h"

namespace cafa {

/// Timings and statistics from one offline analysis.
struct AnalysisResult {
  RaceReport Report;
  HbRuleStats HbStats;
  TraceStats TraceStatistics;
  /// Phase wall times in milliseconds.
  double ExtractMillis = 0;
  double HbBuildMillis = 0;
  double DetectMillis = 0;
  /// Approximate happens-before memory (graph + reachability oracle).
  size_t HbMemoryBytes = 0;
  /// What the graceful-degradation ladder did to the primary
  /// happens-before build (oracle downgrade under Hb.MemLimitBytes,
  /// blown fixpoint deadline).  Report.Partial mirrors the deadline bit.
  HbDegradation Degradation;
  /// What the checkpoint/resume machinery did (see CheckpointOptions).
  /// Provenance only -- never feeds back into Report, so resumed runs
  /// stay bit-identical to uninterrupted ones.
  ResumeOutcome Resume;
  /// Retirement cadence of the windowed streaming scan, or 0 when the
  /// batch detector ran.  ExtractMillis is 0 on the windowed path --
  /// its extraction passes stream inside DetectMillis and never
  /// materialize an AccessDb.
  uint64_t WindowEventsUsed = 0;
  /// The window was engaged by the memory-pressure ladder (the primary
  /// oracle had to be downgraded to fit Hb.MemLimitBytes) rather than
  /// by an explicit request or CAFA_WINDOW.
  bool WindowShedByMemory = false;
  /// Observability counters of the windowed scan (zeroed on the batch
  /// path).
  WindowedDetectStats WindowedDetect;
};

/// Everything one offline analysis run can be configured with, in one
/// aggregate so analyzeTrace() needs exactly one overload:
///  - Detector: detection + happens-before tuning (detect/).
///  - Checkpoint: crash-safe snapshot/resume of the analysis phases
///    (cafa/Checkpoint.h); default-disabled.
///  - Resolver: Section 6.3 static-dataflow deref matching (removes
///    Type III false positives; requires the application bytecode).
struct AnalysisOptions {
  DetectorOptions Detector;
  CheckpointOptions Checkpoint;
  const DerefResolver *Resolver = nullptr;

  AnalysisOptions() = default;
  /// Implicit on purpose: `analyzeTrace(T, DetectorOptions{...})` --
  /// the overwhelmingly common call shape -- binds to the unified
  /// overload without touching the call site.
  AnalysisOptions(const DetectorOptions &Det) : Detector(Det) {}
};

/// Runs the full offline pipeline on \p T.
///
/// Degradation: Options.Detector.DeadlineMillis is interpreted here as
/// the budget for the *whole* pipeline; the happens-before and
/// detection phases each receive whatever the preceding phases left
/// over, so one number bounds the end-to-end analysis.  On expiry the
/// returned Report is flagged Partial with a machine-readable cause.
///
/// Checkpointing: with Options.Checkpoint enabled, analysis progress is
/// snapshotted into Checkpoint.Directory at the configured cadence and
/// always when a deadline cuts a phase; with Checkpoint.Resume, a
/// validated snapshot restores the interrupted fixpoint or pair scan
/// mid-flight and the run continues to a report bit-identical to an
/// uninterrupted one.  A corrupt or mismatched snapshot degrades to a
/// clean restart (Result.Resume says why) -- never a wrong answer.  The
/// snapshot is deleted once the analysis completes cleanly.
AnalysisResult analyzeTrace(const Trace &T,
                            const AnalysisOptions &Options = AnalysisOptions());

/// Runs scenario + analysis end to end.  \p Truth, when non-null, is
/// joined into a Table 1 row stored in \p RowOut.
AnalysisResult analyzeScenario(const Scenario &S,
                               const RuntimeOptions &RtOptions,
                               const DetectorOptions &DetOptions,
                               const GroundTruth *Truth = nullptr,
                               Table1Row *RowOut = nullptr);

} // namespace cafa

#endif // CAFA_CAFA_CAFA_H
