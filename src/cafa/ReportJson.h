//===- cafa/ReportJson.h - Machine-readable report output ------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON rendering of race reports and Table 1 rows, for CI pipelines and
/// downstream tooling that consumes CAFA's findings programmatically.
/// The schema is flat and stable:
///
/// \code
/// {
///   "races": [ { "category": "a", "dynamicCount": 1,
///                "use":  {"method": "...", "pc": 3, "task": "..."},
///                "free": {"method": "...", "pc": 7, "task": "..."} } ],
///   "filters": { "candidates": 10, "orderedByHb": 2, ... },
///   "partial": false
/// }
/// \endcode
///
/// When the analysis hit a degradation deadline, "partial" is true and a
/// "partialCause" string ("hb-deadline" or "detect-deadline") follows:
///
/// \code
///   "partial": true,
///   "partialCause": "detect-deadline"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CAFA_REPORTJSON_H
#define CAFA_CAFA_REPORTJSON_H

#include "detect/GroundTruth.h"
#include "detect/RaceReport.h"

#include <string>
#include <vector>

namespace cafa {

/// Renders a race report as JSON (names resolved against \p T).
std::string renderRaceReportJson(const RaceReport &Report, const Trace &T);

/// Renders Table 1 rows as a JSON array.
std::string renderTable1Json(const std::vector<Table1Row> &Rows);

/// Escapes a string for embedding in JSON (exposed for tests).
std::string jsonEscape(const std::string &S);

} // namespace cafa

#endif // CAFA_CAFA_REPORTJSON_H
