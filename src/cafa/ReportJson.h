//===- cafa/ReportJson.h - Machine-readable report output ------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering and parsing of race reports in the shared RaceDocument
/// model (cafa/RaceRecord.h), for CI pipelines and downstream tooling
/// that consumes CAFA's findings programmatically.  This is the single
/// place race JSON is produced or interpreted -- the fleet supervisor
/// and the race store consume RaceDocument values, never raw JSON.
/// The schema is flat and stable:
///
/// \code
/// {
///   "races": [ { "category": "a", "dynamicCount": 1,
///                "use":  {"method": "...", "pc": 3, "task": "...",
///                         "record": 12},
///                "free": {"method": "...", "pc": 7, "task": "...",
///                         "record": 30} } ],
///   "filters": { "candidates": 10, "orderedByHb": 2, ... },
///   "partial": false
/// }
/// \endcode
///
/// When the analysis hit a degradation deadline, "partial" is true and a
/// "partialCause" string ("hb-deadline" or "detect-deadline") follows:
///
/// \code
///   "partial": true,
///   "partialCause": "detect-deadline"
/// \endcode
///
/// When confirmation ran (offline_analyzer --confirm), each race gains a
/// "confirm" field with its verdict:
///
/// \code
///   {"category": "a", "dynamicCount": 1, "confirm": "confirmed", ...}
/// \endcode
///
/// Reports that never went through confirmation render without the
/// field, byte-identical to pre-confirmation builds.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CAFA_REPORTJSON_H
#define CAFA_CAFA_REPORTJSON_H

#include "cafa/RaceRecord.h"
#include "detect/GroundTruth.h"
#include "detect/RaceReport.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace cafa {

/// Renders a race document as JSON.
std::string renderRaceReportJson(const RaceDocument &Doc);

/// Renders a race report as JSON (names resolved against \p T).
/// Equivalent to renderRaceReportJson(buildRaceDocument(Report, T)).
std::string renderRaceReportJson(const RaceReport &Report, const Trace &T);

/// Renders a race document for humans.  For a verdict-free document
/// this is byte-identical to renderRaceReport(Report, T) on the report
/// the document was built from; verdicts append a per-race marker.
std::string renderRaceReportText(const RaceDocument &Doc);

/// Parses the JSON emitted by renderRaceReportJson back into a
/// document.  Tolerates unknown fields (schema growth) but fails on
/// malformed JSON or missing race keys; on failure \p Out is left
/// empty.
Status parseRaceReportJson(const std::string &Json, RaceDocument &Out);

/// Renders Table 1 rows as a JSON array.
std::string renderTable1Json(const std::vector<Table1Row> &Rows);

/// Escapes a string for embedding in JSON (exposed for tests).
std::string jsonEscape(const std::string &S);

} // namespace cafa

#endif // CAFA_CAFA_REPORTJSON_H
