//===- cafa/Fig4.h - The paper's Figure 4 causality scenarios --*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The six example traces of the paper's Figure 4 (plus two extras that
/// exercise event-queue rules 3 and 4 directly), each with the
/// happens-before verdict the causality model must derive.  Shared by the
/// fig4_causality benchmark binary and the hb test suite.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CAFA_FIG4_H
#define CAFA_CAFA_FIG4_H

#include "trace/Trace.h"

#include <string>
#include <vector>

namespace cafa {

/// One Figure 4 scenario: a trace, the two events of interest, and the
/// expected event-level orders.
struct Fig4Scenario {
  std::string Name;
  std::string Explanation;
  Trace T;
  TaskId A;
  TaskId B;
  /// Expected: end(A) happens before begin(B).
  bool ExpectAB = false;
  /// Expected: end(B) happens before begin(A).
  bool ExpectBA = false;
  /// The rule responsible (for display and for ablation checks):
  /// "atomicity", "queue-1" ... "queue-4", or "none".
  std::string Rule;
};

/// Builds all scenarios: Figure 4 (a)-(f) plus rules 3 and 4.
std::vector<Fig4Scenario> buildFig4Scenarios();

} // namespace cafa

#endif // CAFA_CAFA_FIG4_H
