//===- cafa/RaceStore.h - Persistent cross-trace race store ----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis daemon's persistent memory: an append-only, checksummed
/// journal of terminal job outcomes (per-job FleetReport rows plus their
/// parsed race reports).  Where runFleet's aggregate lives and dies with
/// one batch, the store accumulates across batches, daemon restarts,
/// and kill -9 -- occurrence counts keep growing as new traces arrive.
///
/// Durability model (built on support/DurableFile):
///
///  - every appendJob() is one framed record -- u32 payload length +
///    FNV-1a checksum + payload -- appended and fsync'd before the call
///    returns, so an acknowledged append survives a crash;
///  - a crash can tear only the *suffix* being appended.  open()
///    replays the journal and truncates at the first record that fails
///    its length or checksum check, recovering the store to its last
///    valid prefix (never rejecting the whole file);
///  - the header carries a schema fingerprint; a journal written by an
///    incompatible schema fails open() *without modifying the file*, so
///    a version skew never silently destroys data;
///  - compact() rewrites the journal canonically (atomic tmp + fsync +
///    rename), dropping any recovered-away garbage; the same set of
///    records always compacts to byte-identical journal bytes.
///
/// Rendering: renderJson()/renderText() feed the stored rows -- sorted
/// by job id -- through FleetAggregator.  Rows in state "done" are
/// normalized first (exit 4 becomes the 0/1 the races imply, resumed
/// and attempt counters reset), so the aggregate depends only on the
/// set of analyzed traces, not on the operational history of how many
/// daemon restarts it took: an interrupted-and-resumed batch renders
/// byte-identical to an uninterrupted one.  The raw operational fields
/// stay in the journal and surface through stats() for the daemon's
/// status endpoint.  See docs/server.md.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CAFA_RACESTORE_H
#define CAFA_CAFA_RACESTORE_H

#include "cafa/FleetReport.h"
#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cafa {

/// One replayed/stored journal entry: the job row as the supervisor saw
/// it (raw operational fields) plus the parsed report when one exists.
struct StoredJob {
  FleetJobStatus Row;
  RaceDocument Report;
  bool HasReport = false;
};

class RaceStore {
public:
  /// Counters for the daemon's status endpoint.  Raw values: resumed /
  /// attempts come straight from the journal, before any render-time
  /// normalization.
  struct Stats {
    size_t Jobs = 0;              ///< stored terminal jobs
    size_t Done = 0;
    size_t Partial = 0;
    size_t Failed = 0;
    /// Jobs whose stored row has Resumed set -- completions that
    /// adopted a predecessor's checkpoint (exit 4).  This is the
    /// restart-accounting the chaos suite pins.
    size_t ResumedCompletions = 0;
    size_t DistinctRaces = 0;
    size_t JournalBytes = 0;      ///< current on-disk journal size
    /// open() found and truncated a torn/corrupt tail.
    bool RecoveredTail = false;
    size_t RecoveredBytes = 0;    ///< bytes dropped by the truncation
    /// Replayed records skipped because an earlier record already
    /// claimed their job id (should not happen in normal operation).
    size_t DuplicatesDropped = 0;
  };

  /// Fingerprint of the record schema this build reads and writes,
  /// stamped into every journal header.
  static uint64_t schemaFingerprint();

  /// Opens (creating if absent) the journal at \p Path and replays it.
  /// A torn or corrupt tail is truncated away -- the store recovers to
  /// its last valid prefix.  A header from an incompatible schema or
  /// format version fails without touching the file.
  Status open(const std::string &Path);

  bool isOpen() const { return Open; }
  const std::string &path() const { return JournalPath; }

  /// Appends one terminal job outcome (the same row/report pair
  /// FleetAggregator::addJob takes), fsync'd before returning.
  /// Rejects duplicate ids and the non-final "interrupted" state (an
  /// interrupted job is resumable work, not a result).
  Status appendJob(const FleetJobStatus &Row,
                   const RaceDocument *Report);

  bool hasJob(const std::string &Id) const;
  size_t numJobs() const { return Jobs.size(); }
  const std::vector<StoredJob> &jobs() const { return Jobs; }

  /// Rewrites the journal canonically in place (atomic replace),
  /// dropping truncated-away garbage.  Byte-deterministic: the same
  /// stored records always produce the same journal bytes.
  Status compact();

  /// Current counters (DistinctRaces is computed on the fly).
  Stats stats() const;

  /// The cross-batch aggregate (FleetAggregator schema), rows sorted by
  /// job id and normalized as described in the file comment.
  std::string renderJson(unsigned MaxExemplars = 3) const;
  std::string renderText(unsigned MaxExemplars = 3) const;

private:
  Status replay(const std::string &Data);

  bool Open = false;
  std::string JournalPath;
  std::vector<StoredJob> Jobs;
  std::map<std::string, size_t> Index; ///< job id -> Jobs index
  size_t JournalBytes = 0;
  bool RecoveredTail = false;
  size_t RecoveredBytes = 0;
  size_t DuplicatesDropped = 0;
};

} // namespace cafa

#endif // CAFA_CAFA_RACESTORE_H
