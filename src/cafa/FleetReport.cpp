//===- cafa/FleetReport.cpp - Cross-trace race aggregation --------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/FleetReport.h"

#include "cafa/ReportJson.h"
#include "support/Format.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace cafa;

//===----------------------------------------------------------------------===//
// Minimal JSON reader
//===----------------------------------------------------------------------===//
//
// The fleet only ever parses JSON this project itself emitted
// (renderRaceReportJson), so a small strict reader is enough; it still
// parses arbitrary well-formed JSON so schema growth on the emitter side
// cannot break older supervisors.

namespace {

struct JsonValue {
  enum Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Fields;

  /// Returns the named object field, or null when absent.
  const JsonValue *field(const char *Name) const {
    for (const auto &[Key, Value] : Fields)
      if (Key == Name)
        return &Value;
    return nullptr;
  }
};

class JsonReader {
public:
  JsonReader(const std::string &Text) : Text(Text) {}

  Status parse(JsonValue &Out) {
    Status S = value(Out);
    if (!S.ok())
      return S;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing bytes after JSON value");
    return Status::success();
  }

private:
  Status fail(const std::string &Why) {
    return Status::error(
        formatString("report JSON byte %zu: %s", Pos, Why.c_str()));
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Status value(JsonValue &Out) {
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.K = JsonValue::String;
      return string(Out.Str);
    }
    if (C == 't' || C == 'f')
      return boolean(Out);
    if (C == 'n') {
      if (Text.compare(Pos, 4, "null") != 0)
        return fail("bad literal");
      Pos += 4;
      Out.K = JsonValue::Null;
      return Status::success();
    }
    return number(Out);
  }

  Status object(JsonValue &Out) {
    Out.K = JsonValue::Object;
    ++Pos; // '{'
    if (eat('}'))
      return Status::success();
    for (;;) {
      skipSpace();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      if (Status S = string(Key); !S.ok())
        return S;
      if (!eat(':'))
        return fail("expected ':'");
      JsonValue V;
      if (Status S = value(V); !S.ok())
        return S;
      Out.Fields.emplace_back(std::move(Key), std::move(V));
      if (eat(','))
        continue;
      if (eat('}'))
        return Status::success();
      return fail("expected ',' or '}'");
    }
  }

  Status array(JsonValue &Out) {
    Out.K = JsonValue::Array;
    ++Pos; // '['
    if (eat(']'))
      return Status::success();
    for (;;) {
      JsonValue V;
      if (Status S = value(V); !S.ok())
        return S;
      Out.Items.push_back(std::move(V));
      if (eat(','))
        continue;
      if (eat(']'))
        return Status::success();
      return fail("expected ',' or ']'");
    }
  }

  Status string(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Status::success();
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // Our emitter only produces \u00xx for control bytes; decode
        // the Latin-1 range and reject the rest rather than guessing
        // at UTF-16 surrogate handling we never emit.
        if (Code > 0xFF)
          return fail("unsupported \\u escape beyond U+00FF");
        Out.push_back(static_cast<char>(Code));
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status boolean(JsonValue &Out) {
    Out.K = JsonValue::Bool;
    if (Text.compare(Pos, 4, "true") == 0) {
      Out.B = true;
      Pos += 4;
      return Status::success();
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Out.B = false;
      Pos += 5;
      return Status::success();
    }
    return fail("bad literal");
  }

  Status number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    Out.K = JsonValue::Number;
    Out.Num = std::strtod(Text.c_str() + Start, nullptr);
    return Status::success();
  }

  const std::string &Text;
  size_t Pos = 0;
};

/// Reads one "use"/"free" access object into the string/pc pair.
Status readAccess(const JsonValue &Access, std::string &Method,
                  uint32_t &Pc, std::string &Task) {
  const JsonValue *M = Access.field("method");
  const JsonValue *P = Access.field("pc");
  if (!M || M->K != JsonValue::String || !P || P->K != JsonValue::Number)
    return Status::error("race access missing method/pc");
  Method = M->Str;
  Pc = static_cast<uint32_t>(P->Num);
  if (const JsonValue *T = Access.field("task");
      T && T->K == JsonValue::String)
    Task = T->Str;
  return Status::success();
}

} // namespace

Status cafa::parseRaceReportJson(const std::string &Json,
                                 ParsedRaceReport &Out) {
  Out = ParsedRaceReport();
  JsonValue Root;
  if (Status S = JsonReader(Json).parse(Root); !S.ok())
    return S;
  if (Root.K != JsonValue::Object)
    return Status::error("report JSON is not an object");

  ParsedRaceReport Report;
  if (const JsonValue *Partial = Root.field("partial");
      Partial && Partial->K == JsonValue::Bool)
    Report.Partial = Partial->B;
  if (const JsonValue *Cause = Root.field("partialCause");
      Cause && Cause->K == JsonValue::String)
    Report.PartialCause = Cause->Str;

  const JsonValue *Races = Root.field("races");
  if (!Races || Races->K != JsonValue::Array)
    return Status::error("report JSON has no races array");
  for (const JsonValue &Entry : Races->Items) {
    if (Entry.K != JsonValue::Object)
      return Status::error("race entry is not an object");
    const JsonValue *Use = Entry.field("use");
    const JsonValue *Free = Entry.field("free");
    if (!Use || !Free)
      return Status::error("race entry missing use/free");
    ParsedRace Race;
    if (Status S = readAccess(*Use, Race.UseMethod, Race.UsePc,
                              Race.UseTask);
        !S.ok())
      return S;
    if (Status S = readAccess(*Free, Race.FreeMethod, Race.FreePc,
                              Race.FreeTask);
        !S.ok())
      return S;
    if (const JsonValue *Cat = Entry.field("category");
        Cat && Cat->K == JsonValue::String)
      Race.Category = Cat->Str;
    if (const JsonValue *Dyn = Entry.field("dynamicCount");
        Dyn && Dyn->K == JsonValue::Number)
      Race.DynamicCount = static_cast<uint32_t>(Dyn->Num);
    Report.Races.push_back(std::move(Race));
  }
  Out = std::move(Report);
  return Status::success();
}

//===----------------------------------------------------------------------===//
// FleetAggregator
//===----------------------------------------------------------------------===//

void FleetAggregator::addJob(const FleetJobStatus &Job,
                             const ParsedRaceReport *Report) {
  FleetJobStatus Row = Job;
  Row.Races = Report ? Report->Races.size() : 0;
  JobRows.push_back(Row);
  if (!Report)
    return;
  for (const ParsedRace &Race : Report->Races) {
    std::array<uint32_t, 4> Key = {
        Methods.intern(Race.UseMethod).value(), Race.UsePc,
        Methods.intern(Race.FreeMethod).value(), Race.FreePc};
    auto [It, Inserted] = Merged.try_emplace(Key);
    MergedRace &M = It->second;
    if (Inserted) {
      M.UseMethod = StrId(Key[0]);
      M.UsePc = Race.UsePc;
      M.FreeMethod = StrId(Key[2]);
      M.FreePc = Race.FreePc;
      M.Category = Race.Category;
      M.FromPartial = true;
    }
    M.Jobs += 1;
    M.DynamicCount += Race.DynamicCount;
    M.FromPartial = M.FromPartial && Report->Partial;
    if (M.Exemplars.size() < MaxExemplars)
      M.Exemplars.push_back(Job.TracePath);
  }
}

size_t FleetAggregator::numPartialJobs() const {
  size_t N = 0;
  for (const FleetJobStatus &Row : JobRows)
    N += Row.Partial ? 1 : 0;
  return N;
}

std::vector<const FleetAggregator::MergedRace *>
FleetAggregator::sortedRaces() const {
  std::vector<const MergedRace *> Out;
  Out.reserve(Merged.size());
  for (const auto &[Key, Race] : Merged)
    Out.push_back(&Race);
  // Lexicographic static-key order: independent of both job order and
  // interner insertion order, so the rendering is deterministic across
  // any completion interleaving.
  std::sort(Out.begin(), Out.end(),
            [this](const MergedRace *A, const MergedRace *B) {
              const std::string &AU = Methods.str(A->UseMethod);
              const std::string &BU = Methods.str(B->UseMethod);
              if (AU != BU)
                return AU < BU;
              if (A->UsePc != B->UsePc)
                return A->UsePc < B->UsePc;
              const std::string &AF = Methods.str(A->FreeMethod);
              const std::string &BF = Methods.str(B->FreeMethod);
              if (AF != BF)
                return AF < BF;
              return A->FreePc < B->FreePc;
            });
  return Out;
}

std::string FleetAggregator::renderJson() const {
  std::ostringstream OS;
  OS << "{\n  \"jobs\": [";
  bool First = true;
  unsigned Done = 0, Partial = 0, Failed = 0, Interrupted = 0;
  unsigned Retries = 0, Resumed = 0;
  for (const FleetJobStatus &Row : JobRows) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << formatString(
        "    {\"id\": \"%s\", \"trace\": \"%s\", \"state\": \"%s\", "
        "\"exitCode\": %d, \"attempts\": %u, \"resumed\": %s, "
        "\"partial\": %s, \"races\": %zu}",
        jsonEscape(Row.Id).c_str(), jsonEscape(Row.TracePath).c_str(),
        jsonEscape(Row.State).c_str(), Row.ExitCode, Row.Attempts,
        Row.Resumed ? "true" : "false", Row.Partial ? "true" : "false",
        Row.Races);
    if (Row.State.rfind("failed:", 0) == 0)
      ++Failed;
    else if (Row.State == "interrupted")
      ++Interrupted;
    else if (Row.Partial)
      ++Partial;
    else
      ++Done;
    Retries += Row.Attempts > 0 ? Row.Attempts - 1 : 0;
    Resumed += Row.Resumed ? 1 : 0;
  }
  OS << "\n  ],\n";
  // "interrupted" appears only when nonzero so uninterrupted batches
  // keep their pinned byte-identical schema.
  std::string InterruptedField =
      Interrupted > 0 ? formatString(", \"interrupted\": %u", Interrupted)
                      : std::string();
  OS << formatString(
      "  \"summary\": {\"jobs\": %zu, \"done\": %u, \"partial\": %u, "
      "\"failed\": %u%s, \"retries\": %u, \"resumedCompletions\": %u, "
      "\"distinctRaces\": %zu},\n",
      JobRows.size(), Done, Partial, Failed, InterruptedField.c_str(),
      Retries, Resumed, Merged.size());
  OS << "  \"races\": [";
  First = true;
  for (const MergedRace *Race : sortedRaces()) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << formatString(
        "    {\"useMethod\": \"%s\", \"usePc\": %u, \"freeMethod\": "
        "\"%s\", \"freePc\": %u,\n"
        "     \"category\": \"%s\", \"jobs\": %u, \"dynamicCount\": "
        "%llu%s,\n     \"exemplars\": [",
        jsonEscape(Methods.str(Race->UseMethod)).c_str(), Race->UsePc,
        jsonEscape(Methods.str(Race->FreeMethod)).c_str(), Race->FreePc,
        jsonEscape(Race->Category).c_str(), Race->Jobs,
        static_cast<unsigned long long>(Race->DynamicCount),
        Race->FromPartial ? ", \"fromPartialOnly\": true" : "");
    for (size_t I = 0; I < Race->Exemplars.size(); ++I)
      OS << (I ? ", " : "") << '"' << jsonEscape(Race->Exemplars[I])
         << '"';
    OS << "]}";
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}

std::string FleetAggregator::renderText() const {
  std::ostringstream OS;
  unsigned Done = 0, Partial = 0, Failed = 0, Interrupted = 0;
  unsigned Retries = 0, Resumed = 0;
  for (const FleetJobStatus &Row : JobRows) {
    if (Row.State.rfind("failed:", 0) == 0)
      ++Failed;
    else if (Row.State == "interrupted")
      ++Interrupted;
    else if (Row.Partial)
      ++Partial;
    else
      ++Done;
    Retries += Row.Attempts > 0 ? Row.Attempts - 1 : 0;
    Resumed += Row.Resumed ? 1 : 0;
  }
  // Interrupted jobs are called out only when present, keeping the
  // common-case header byte-stable for the chaos pins.
  std::string InterruptedField =
      Interrupted > 0 ? formatString(", %u interrupted", Interrupted)
                      : std::string();
  OS << formatString(
      "fleet: %zu job(s): %u done, %u partial, %u failed%s; %u retr%s, "
      "%u resumed completion(s)\n",
      JobRows.size(), Done, Partial, Failed, InterruptedField.c_str(),
      Retries, Retries == 1 ? "y" : "ies", Resumed);
  for (const FleetJobStatus &Row : JobRows)
    OS << formatString("  %-24s %-14s attempts=%u exit=%d races=%zu%s\n",
                       Row.Id.c_str(), Row.State.c_str(), Row.Attempts,
                       Row.ExitCode, Row.Races,
                       Row.Resumed ? " (resumed)" : "");
  OS << formatString("distinct races across fleet: %zu\n", Merged.size());
  for (const MergedRace *Race : sortedRaces()) {
    OS << formatString(
        "  [%s] use %s+%u / free %s+%u: %u job(s), %llu dynamic%s\n",
        Race->Category.c_str(), Methods.str(Race->UseMethod).c_str(),
        Race->UsePc, Methods.str(Race->FreeMethod).c_str(), Race->FreePc,
        Race->Jobs, static_cast<unsigned long long>(Race->DynamicCount),
        Race->FromPartial ? " (partial reports only)" : "");
    for (const std::string &Exemplar : Race->Exemplars)
      OS << "      exemplar: " << Exemplar << "\n";
  }
  return OS.str();
}
