//===- cafa/FleetReport.cpp - Cross-trace race aggregation --------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/FleetReport.h"

#include "cafa/ReportJson.h"
#include "support/Format.h"

#include <algorithm>
#include <sstream>

using namespace cafa;

void FleetAggregator::addJob(const FleetJobStatus &Job,
                             const RaceDocument *Report) {
  FleetJobStatus Row = Job;
  Row.Races = Report ? Report->Races.size() : 0;
  JobRows.push_back(Row);
  if (!Report)
    return;
  for (const RaceRecord &Race : Report->Races) {
    std::array<uint32_t, 4> Key = {
        Methods.intern(Race.UseMethod).value(), Race.UsePc,
        Methods.intern(Race.FreeMethod).value(), Race.FreePc};
    auto [It, Inserted] = Merged.try_emplace(Key);
    MergedRace &M = It->second;
    if (Inserted) {
      M.UseMethod = StrId(Key[0]);
      M.UsePc = Race.UsePc;
      M.FreeMethod = StrId(Key[2]);
      M.FreePc = Race.FreePc;
      M.Category = Race.Category;
      M.FromPartial = true;
    }
    M.Jobs += 1;
    M.DynamicCount += Race.DynamicCount;
    M.FromPartial = M.FromPartial && Report->Partial;
    M.Verdict = mergeConfirmVerdicts(M.Verdict, Race.Verdict);
    if (M.Exemplars.size() < MaxExemplars)
      M.Exemplars.push_back(Job.TracePath);
  }
}

size_t FleetAggregator::numPartialJobs() const {
  size_t N = 0;
  for (const FleetJobStatus &Row : JobRows)
    N += Row.Partial ? 1 : 0;
  return N;
}

std::vector<const FleetAggregator::MergedRace *>
FleetAggregator::sortedRaces() const {
  std::vector<const MergedRace *> Out;
  Out.reserve(Merged.size());
  for (const auto &[Key, Race] : Merged)
    Out.push_back(&Race);
  // Lexicographic static-key order: independent of both job order and
  // interner insertion order, so the rendering is deterministic across
  // any completion interleaving.
  std::sort(Out.begin(), Out.end(),
            [this](const MergedRace *A, const MergedRace *B) {
              const std::string &AU = Methods.str(A->UseMethod);
              const std::string &BU = Methods.str(B->UseMethod);
              if (AU != BU)
                return AU < BU;
              if (A->UsePc != B->UsePc)
                return A->UsePc < B->UsePc;
              const std::string &AF = Methods.str(A->FreeMethod);
              const std::string &BF = Methods.str(B->FreeMethod);
              if (AF != BF)
                return AF < BF;
              return A->FreePc < B->FreePc;
            });
  return Out;
}

std::string FleetAggregator::renderJson() const {
  std::ostringstream OS;
  OS << "{\n  \"jobs\": [";
  bool First = true;
  unsigned Done = 0, Partial = 0, Failed = 0, Interrupted = 0;
  unsigned Retries = 0, Resumed = 0;
  for (const FleetJobStatus &Row : JobRows) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << formatString(
        "    {\"id\": \"%s\", \"trace\": \"%s\", \"state\": \"%s\", "
        "\"exitCode\": %d, \"attempts\": %u, \"resumed\": %s, "
        "\"partial\": %s, \"races\": %zu}",
        jsonEscape(Row.Id).c_str(), jsonEscape(Row.TracePath).c_str(),
        jsonEscape(Row.State).c_str(), Row.ExitCode, Row.Attempts,
        Row.Resumed ? "true" : "false", Row.Partial ? "true" : "false",
        Row.Races);
    if (Row.State.rfind("failed:", 0) == 0)
      ++Failed;
    else if (Row.State == "interrupted")
      ++Interrupted;
    else if (Row.Partial)
      ++Partial;
    else
      ++Done;
    Retries += Row.Attempts > 0 ? Row.Attempts - 1 : 0;
    Resumed += Row.Resumed ? 1 : 0;
  }
  OS << "\n  ],\n";
  // "interrupted" appears only when nonzero so uninterrupted batches
  // keep their pinned byte-identical schema.
  std::string InterruptedField =
      Interrupted > 0 ? formatString(", \"interrupted\": %u", Interrupted)
                      : std::string();
  OS << formatString(
      "  \"summary\": {\"jobs\": %zu, \"done\": %u, \"partial\": %u, "
      "\"failed\": %u%s, \"retries\": %u, \"resumedCompletions\": %u, "
      "\"distinctRaces\": %zu},\n",
      JobRows.size(), Done, Partial, Failed, InterruptedField.c_str(),
      Retries, Resumed, Merged.size());
  OS << "  \"races\": [";
  First = true;
  for (const MergedRace *Race : sortedRaces()) {
    OS << (First ? "\n" : ",\n");
    First = false;
    // Like "interrupted" above: the verdict appears only once some job
    // confirmed, so pre-confirmation aggregates keep their pinned bytes.
    std::string ConfirmField =
        Race->Verdict == ConfirmVerdict::None
            ? std::string()
            : formatString(", \"confirm\": \"%s\"",
                           confirmVerdictName(Race->Verdict));
    OS << formatString(
        "    {\"useMethod\": \"%s\", \"usePc\": %u, \"freeMethod\": "
        "\"%s\", \"freePc\": %u,\n"
        "     \"category\": \"%s\", \"jobs\": %u, \"dynamicCount\": "
        "%llu%s%s,\n     \"exemplars\": [",
        jsonEscape(Methods.str(Race->UseMethod)).c_str(), Race->UsePc,
        jsonEscape(Methods.str(Race->FreeMethod)).c_str(), Race->FreePc,
        jsonEscape(Race->Category).c_str(), Race->Jobs,
        static_cast<unsigned long long>(Race->DynamicCount),
        ConfirmField.c_str(),
        Race->FromPartial ? ", \"fromPartialOnly\": true" : "");
    for (size_t I = 0; I < Race->Exemplars.size(); ++I)
      OS << (I ? ", " : "") << '"' << jsonEscape(Race->Exemplars[I])
         << '"';
    OS << "]}";
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}

std::string FleetAggregator::renderText() const {
  std::ostringstream OS;
  unsigned Done = 0, Partial = 0, Failed = 0, Interrupted = 0;
  unsigned Retries = 0, Resumed = 0;
  for (const FleetJobStatus &Row : JobRows) {
    if (Row.State.rfind("failed:", 0) == 0)
      ++Failed;
    else if (Row.State == "interrupted")
      ++Interrupted;
    else if (Row.Partial)
      ++Partial;
    else
      ++Done;
    Retries += Row.Attempts > 0 ? Row.Attempts - 1 : 0;
    Resumed += Row.Resumed ? 1 : 0;
  }
  // Interrupted jobs are called out only when present, keeping the
  // common-case header byte-stable for the chaos pins.
  std::string InterruptedField =
      Interrupted > 0 ? formatString(", %u interrupted", Interrupted)
                      : std::string();
  OS << formatString(
      "fleet: %zu job(s): %u done, %u partial, %u failed%s; %u retr%s, "
      "%u resumed completion(s)\n",
      JobRows.size(), Done, Partial, Failed, InterruptedField.c_str(),
      Retries, Retries == 1 ? "y" : "ies", Resumed);
  for (const FleetJobStatus &Row : JobRows)
    OS << formatString("  %-24s %-14s attempts=%u exit=%d races=%zu%s\n",
                       Row.Id.c_str(), Row.State.c_str(), Row.Attempts,
                       Row.ExitCode, Row.Races,
                       Row.Resumed ? " (resumed)" : "");
  OS << formatString("distinct races across fleet: %zu\n", Merged.size());
  for (const MergedRace *Race : sortedRaces()) {
    std::string ConfirmField =
        Race->Verdict == ConfirmVerdict::None
            ? std::string()
            : formatString(", %s", confirmVerdictName(Race->Verdict));
    OS << formatString(
        "  [%s] use %s+%u / free %s+%u: %u job(s), %llu dynamic%s%s\n",
        Race->Category.c_str(), Methods.str(Race->UseMethod).c_str(),
        Race->UsePc, Methods.str(Race->FreeMethod).c_str(), Race->FreePc,
        Race->Jobs, static_cast<unsigned long long>(Race->DynamicCount),
        ConfirmField.c_str(),
        Race->FromPartial ? " (partial reports only)" : "");
    for (const std::string &Exemplar : Race->Exemplars)
      OS << "      exemplar: " << Exemplar << "\n";
  }
  return OS.str();
}
