//===- cafa/RaceRecord.h - First-class race data model ---------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one race data model every CAFA layer shares.  A RaceRecord is a
/// self-contained description of one reported use-free race: names are
/// resolved strings (no Trace needed to interpret it), so the same value
/// travels from the detector's report through JSON rendering, the fleet
/// supervisor's re-parse of worker output, the RaceStore journal, and
/// the confirmation subsystem's verdicts -- instead of four parallel
/// representations re-deriving each other.
///
/// A RaceDocument is one trace's full report: the records plus the
/// filter counters and the partial-analysis markers.  ReportJson renders
/// and parses it (renderRaceReportJson / parseRaceReportJson);
/// buildRaceDocument() lifts the detector's trace-bound RaceReport into
/// one.  The rendering of a verdict-free document is byte-identical to
/// the pre-RaceDocument output (golden-pinned), so the refactor is
/// invisible to stored corpora and downstream tooling.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CAFA_RACERECORD_H
#define CAFA_CAFA_RACERECORD_H

#include "detect/RaceReport.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cafa {

/// Machine-triage verdict for one race, produced by the confirmation
/// subsystem (src/confirm/): replay the trace's scenario under a
/// synthesized schedule that puts the free before the use and see
/// whether the predicted crash manifests.
enum class ConfirmVerdict : uint8_t {
  /// Confirmation was not attempted (the default for every report).
  None = 0,
  /// A flipping schedule reproduced the crash at the predicted use
  /// site: the race is real.
  Confirmed = 1,
  /// Every flipping schedule violates happens-before: the pair cannot
  /// be reordered, the report is a false positive.
  Infeasible = 2,
  /// The exploration budget ran out without reproducing the crash;
  /// the race remains unproven either way.
  Unconfirmed = 3,
};

/// Returns "confirmed" / "infeasible" / "unconfirmed"; empty for None.
const char *confirmVerdictName(ConfirmVerdict V);

/// Inverse of confirmVerdictName.  Returns false (leaving \p Out
/// untouched) for unknown names; the empty string parses to None.
bool confirmVerdictFromName(const std::string &Name, ConfirmVerdict &Out);

/// Merge lattice for cross-trace aggregation: the verdict carrying the
/// best evidence wins.  A crash reproduced in any trace beats a
/// refutation in another (their schedules differ), which beats an
/// exhausted budget, which beats not having tried.
ConfirmVerdict mergeConfirmVerdicts(ConfirmVerdict A, ConfirmVerdict B);

/// One reported use-free race, fully resolved.  Method and task names
/// are strings so the value is meaningful without the originating Trace
/// (the fleet supervisor and the race store run in processes that never
/// see one); record ids locate the dynamic instance inside that trace.
struct RaceRecord {
  std::string UseMethod;
  uint32_t UsePc = 0;
  std::string UseTask;
  uint32_t UseRecord = 0;
  std::string FreeMethod;
  uint32_t FreePc = 0;
  std::string FreeTask;
  uint32_t FreeRecord = 0;
  std::string Category; ///< "a" / "b" / "c"
  uint32_t DynamicCount = 1;
  ConfirmVerdict Verdict = ConfirmVerdict::None;
};

/// One trace's full race report in the shared model.
struct RaceDocument {
  std::vector<RaceRecord> Races;
  FilterCounters Filters;
  bool Partial = false;
  std::string PartialCause;
  std::string PartialDetail;
  /// The happens-before relation was cut, so every race may still be
  /// ordered away by the saturated fixpoint (RaceReport's
  /// racesProvisional()).
  bool Provisional = false;
};

/// Lifts the detector's trace-bound report into the shared model,
/// resolving names against \p T.  Verdicts start as None.
RaceDocument buildRaceDocument(const RaceReport &Report, const Trace &T);

} // namespace cafa

#endif // CAFA_CAFA_RACERECORD_H
