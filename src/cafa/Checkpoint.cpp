//===- cafa/Checkpoint.cpp - Crash-safe analysis checkpoints -----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/Checkpoint.h"

#include "support/Snapshot.h"

using namespace cafa;

namespace {

/// File identity.  Bump the version on any payload layout change; old
/// snapshots are then rejected and the run restarts cleanly -- wrong
/// answers from silently mis-decoded state are the one unacceptable
/// failure mode.
constexpr char SnapshotMagic[9] = "CAFACKPT";
constexpr uint32_t SnapshotVersion = 4; // v4: windowed detect frontier

/// Caps on length-prefixed counts, so a corrupt count that slipped past
/// the checksum cannot drive a multi-gigabyte allocation.  Generous:
/// real traces stay orders of magnitude below these.
constexpr uint64_t MaxEdges = uint64_t(1) << 32;
constexpr uint64_t MaxCursors = uint64_t(1) << 28;
constexpr uint64_t MaxRowWords = uint64_t(1) << 32;
constexpr uint64_t MaxRaces = uint64_t(1) << 24;
constexpr uint64_t MaxSurvivors = uint64_t(1) << 28;
constexpr uint32_t MaxRules = 16;

void putStats(SnapshotWriter &W, const HbRuleStats &S) {
  W.u64(S.ProgramOrderEdges);
  W.u64(S.ForkJoinEdges);
  W.u64(S.NotifyWaitEdges);
  W.u64(S.ListenerEdges);
  W.u64(S.SendEdges);
  W.u64(S.ExternalChainEdges);
  W.u64(S.IpcEdges);
  W.u64(S.AtomicityEdges);
  W.u64(S.QueueRule1Edges);
  W.u64(S.QueueRule2Edges);
  W.u64(S.QueueRule3Edges);
  W.u64(S.QueueRule4Edges);
  W.u64(S.ConventionalOrderEdges);
  W.u32(S.FixpointRounds);
}

bool getStats(SnapshotReader &R, HbRuleStats &S) {
  return R.u64(S.ProgramOrderEdges) && R.u64(S.ForkJoinEdges) &&
         R.u64(S.NotifyWaitEdges) && R.u64(S.ListenerEdges) &&
         R.u64(S.SendEdges) && R.u64(S.ExternalChainEdges) &&
         R.u64(S.IpcEdges) && R.u64(S.AtomicityEdges) &&
         R.u64(S.QueueRule1Edges) && R.u64(S.QueueRule2Edges) &&
         R.u64(S.QueueRule3Edges) && R.u64(S.QueueRule4Edges) &&
         R.u64(S.ConventionalOrderEdges) && R.u32(S.FixpointRounds);
}

void putCursors(SnapshotWriter &W, const std::vector<HbScanCursor> &Cs) {
  W.u64(Cs.size());
  for (const HbScanCursor &C : Cs) {
    W.u32(C.Gap);
    W.u32(C.I);
  }
}

bool getCursors(SnapshotReader &R, std::vector<HbScanCursor> &Cs) {
  uint64_t N;
  if (!R.u64(N) || N > MaxCursors)
    return false;
  Cs.resize(N);
  for (HbScanCursor &C : Cs)
    if (!R.u32(C.Gap) || !R.u32(C.I))
      return false;
  return true;
}

void putHbFrontier(SnapshotWriter &W, const HbFrontier &F) {
  W.u8(static_cast<uint8_t>(F.UsedReach));
  W.u32(F.RoundsDone);
  W.u8(F.Saturated ? 1 : 0);
  putStats(W, F.Stats);
  W.u64(F.DerivedEdges.size());
  for (const HbEdge &E : F.DerivedEdges) {
    W.u32(E.From.value());
    W.u32(E.To.value());
  }
  putCursors(W, F.AtomCursors);
  putCursors(W, F.SendCursors);
  W.u64(F.RowWords);
  W.u64(F.ClosureRows.size());
  W.u64s(F.ClosureRows.data(), F.ClosureRows.size());
  W.u64(F.ChainState.size());
  W.u64s(F.ChainState.data(), F.ChainState.size());
  W.u32(static_cast<uint32_t>(F.UnsaturatedRules.size()));
  for (const std::string &Rule : F.UnsaturatedRules)
    W.str(Rule);
}

bool getHbFrontier(SnapshotReader &R, HbFrontier &F) {
  // Auto is a request sentinel, never a built oracle: every value past
  // Chain is malformed.
  uint8_t Reach, Saturated;
  if (!R.u8(Reach) || Reach > static_cast<uint8_t>(ReachMode::Chain) ||
      !R.u32(F.RoundsDone) || !R.u8(Saturated) || Saturated > 1 ||
      !getStats(R, F.Stats))
    return false;
  F.UsedReach = static_cast<ReachMode>(Reach);
  F.Saturated = Saturated != 0;
  uint64_t N;
  if (!R.u64(N) || N > MaxEdges)
    return false;
  F.DerivedEdges.resize(N);
  for (HbEdge &E : F.DerivedEdges) {
    uint32_t From, To;
    if (!R.u32(From) || !R.u32(To))
      return false;
    E.From = NodeId(From);
    E.To = NodeId(To);
  }
  if (!getCursors(R, F.AtomCursors) || !getCursors(R, F.SendCursors))
    return false;
  uint64_t RowWords, NumWords;
  if (!R.u64(RowWords) || !R.u64(NumWords) || NumWords > MaxRowWords)
    return false;
  F.RowWords = RowWords;
  F.ClosureRows.resize(NumWords);
  if (!R.u64s(F.ClosureRows.data(), NumWords))
    return false;
  uint64_t NumChainWords;
  if (!R.u64(NumChainWords) || NumChainWords > MaxRowWords)
    return false;
  F.ChainState.resize(NumChainWords);
  if (!R.u64s(F.ChainState.data(), NumChainWords))
    return false;
  uint32_t NumRules;
  if (!R.u32(NumRules) || NumRules > MaxRules)
    return false;
  F.UnsaturatedRules.resize(NumRules);
  for (std::string &Rule : F.UnsaturatedRules)
    if (!R.str(Rule, 64))
      return false;
  return true;
}

void putDetectFrontier(SnapshotWriter &W, const DetectFrontier &F) {
  W.u32(F.UseIdx);
  W.u32(F.FreePos);
  W.u8(F.FiltersShed ? 1 : 0);
  W.u64(F.Filters.OrderedByHb);
  W.u64(F.Filters.SameTask);
  W.u64(F.Filters.LocksetProtected);
  W.u64(F.Filters.IfGuardFiltered);
  W.u64(F.Filters.IntraEventAlloc);
  W.u64(F.Filters.CandidatePairs);
  W.u64(F.Races.size());
  for (const DetectFrontier::RaceEntry &E : F.Races) {
    W.u32(E.UseRecord);
    W.u32(E.FreeRecord);
    W.u8(E.Category);
    W.u32(E.DynamicCount);
  }
}

void putWindowedDetectFrontier(SnapshotWriter &W,
                               const WindowedDetectFrontier &F) {
  W.u32(F.CursorRecord);
  W.u64(F.PairsDoneAtCursor);
  W.u8(F.FiltersShed ? 1 : 0);
  W.u64(F.Filters.OrderedByHb);
  W.u64(F.Filters.SameTask);
  W.u64(F.Filters.LocksetProtected);
  W.u64(F.Filters.IfGuardFiltered);
  W.u64(F.Filters.IntraEventAlloc);
  W.u64(F.Filters.CandidatePairs);
  W.u64(F.Survivors.size());
  for (const WindowedDetectFrontier::SurvivorEntry &S : F.Survivors) {
    W.u32(S.UseOrd);
    W.u32(S.FreeOrd);
    W.u32(S.UseRecord);
    W.u32(S.FreeRecord);
    W.u32(S.UseMethod);
    W.u32(S.UsePc);
    W.u32(S.FreeMethod);
    W.u32(S.FreePc);
    W.u8(S.SameLooper);
  }
}

bool getWindowedDetectFrontier(SnapshotReader &R,
                               WindowedDetectFrontier &F) {
  uint8_t Shed;
  if (!R.u32(F.CursorRecord) || !R.u64(F.PairsDoneAtCursor) ||
      !R.u8(Shed) || Shed > 1)
    return false;
  F.FiltersShed = Shed != 0;
  if (!R.u64(F.Filters.OrderedByHb) || !R.u64(F.Filters.SameTask) ||
      !R.u64(F.Filters.LocksetProtected) ||
      !R.u64(F.Filters.IfGuardFiltered) ||
      !R.u64(F.Filters.IntraEventAlloc) ||
      !R.u64(F.Filters.CandidatePairs))
    return false;
  uint64_t N;
  if (!R.u64(N) || N > MaxSurvivors)
    return false;
  F.Survivors.resize(N);
  for (WindowedDetectFrontier::SurvivorEntry &S : F.Survivors)
    if (!R.u32(S.UseOrd) || !R.u32(S.FreeOrd) || !R.u32(S.UseRecord) ||
        !R.u32(S.FreeRecord) || !R.u32(S.UseMethod) || !R.u32(S.UsePc) ||
        !R.u32(S.FreeMethod) || !R.u32(S.FreePc) || !R.u8(S.SameLooper) ||
        S.SameLooper > 1)
      return false;
  return true;
}

bool getDetectFrontier(SnapshotReader &R, DetectFrontier &F) {
  uint8_t Shed;
  if (!R.u32(F.UseIdx) || !R.u32(F.FreePos) || !R.u8(Shed) || Shed > 1)
    return false;
  F.FiltersShed = Shed != 0;
  if (!R.u64(F.Filters.OrderedByHb) || !R.u64(F.Filters.SameTask) ||
      !R.u64(F.Filters.LocksetProtected) ||
      !R.u64(F.Filters.IfGuardFiltered) ||
      !R.u64(F.Filters.IntraEventAlloc) ||
      !R.u64(F.Filters.CandidatePairs))
    return false;
  uint64_t N;
  if (!R.u64(N) || N > MaxRaces)
    return false;
  F.Races.resize(N);
  for (DetectFrontier::RaceEntry &E : F.Races)
    if (!R.u32(E.UseRecord) || !R.u32(E.FreeRecord) || !R.u8(E.Category) ||
        !R.u32(E.DynamicCount))
      return false;
  return true;
}

} // namespace

uint64_t cafa::traceFingerprint(const Trace &T) {
  uint64_t H = fnv1a64("trace", 5);
  H = fnv1a64Mix(H, T.numRecords());
  H = fnv1a64Mix(H, T.numTasks());
  H = fnv1a64Mix(H, T.numQueues());
  H = fnv1a64Mix(H, T.numMethods());
  H = fnv1a64Mix(H, T.numListeners());
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
       ++I) {
    const TraceRecord &Rec = T.record(I);
    H = fnv1a64Mix(H, Rec.Task.value());
    H = fnv1a64Mix(H, static_cast<uint64_t>(Rec.Kind));
    H = fnv1a64Mix(H, Rec.Method.value());
    H = fnv1a64Mix(H, Rec.Pc);
    H = fnv1a64Mix(H, Rec.Arg0);
    H = fnv1a64Mix(H, Rec.Arg1);
    H = fnv1a64Mix(H, Rec.Arg2);
    H = fnv1a64Mix(H, Rec.Time);
  }
  return H;
}

uint64_t cafa::detectorOptionsDigest(const DetectorOptions &Options,
                                     bool HasResolver) {
  uint64_t H = fnv1a64("options", 7);
  H = fnv1a64Mix(H, static_cast<uint64_t>(Options.Hb.Model));
  H = fnv1a64Mix(H, Options.Hb.EnableAtomicityRule);
  H = fnv1a64Mix(H, Options.Hb.EnableQueueRules);
  H = fnv1a64Mix(H, Options.Hb.EnableListenerRule);
  H = fnv1a64Mix(H, Options.Hb.EnableExternalInputRule);
  H = fnv1a64Mix(H, Options.Hb.MaxFixpointRounds);
  H = fnv1a64Mix(H, Options.IfGuardFilter);
  H = fnv1a64Mix(H, Options.IntraEventAllocFilter);
  H = fnv1a64Mix(H, Options.LocksetFilter);
  H = fnv1a64Mix(H, Options.Classify);
  H = fnv1a64Mix(H, HasResolver);
  return H;
}

std::string cafa::checkpointPath(const std::string &Directory) {
  return Directory + "/analysis.ckpt";
}

Status cafa::saveAnalysisSnapshot(const AnalysisSnapshot &Snap,
                                  const std::string &Path) {
  SnapshotWriter W;
  W.u64(Snap.TraceFingerprint);
  W.u64(Snap.NumRecords);
  W.u64(Snap.OptionsDigest);
  W.u8(static_cast<uint8_t>(Snap.Phase));
  putHbFrontier(W, Snap.Hb);
  W.u8(Snap.HasDetect ? 1 : 0);
  if (Snap.HasDetect)
    putDetectFrontier(W, Snap.Detect);
  W.u8(Snap.HasWindowedDetect ? 1 : 0);
  if (Snap.HasWindowedDetect)
    putWindowedDetectFrontier(W, Snap.WindowedDetect);
  W.u8(Snap.HasPartialRaces ? 1 : 0);
  if (Snap.HasPartialRaces) {
    W.u32(static_cast<uint32_t>(Snap.PartialRaces.size()));
    for (const PartialRaceKey &K : Snap.PartialRaces) {
      W.u32(K.UseMethod);
      W.u32(K.UsePc);
      W.u32(K.FreeMethod);
      W.u32(K.FreePc);
      W.str(K.Label);
    }
  }
  return W.writeFileAtomic(Path, SnapshotMagic, SnapshotVersion);
}

Status cafa::loadAnalysisSnapshot(AnalysisSnapshot &Snap,
                                  const std::string &Path) {
  SnapshotReader R;
  Status S = R.loadFile(Path, SnapshotMagic, SnapshotVersion);
  if (!S.ok())
    return S;
  auto Malformed = [] {
    return Status::error("snapshot payload malformed");
  };
  uint8_t Phase, HasDetect, HasWindowed, HasPartial;
  if (!R.u64(Snap.TraceFingerprint) || !R.u64(Snap.NumRecords) ||
      !R.u64(Snap.OptionsDigest) || !R.u8(Phase) ||
      Phase > static_cast<uint8_t>(SnapshotPhase::Detect))
    return Malformed();
  Snap.Phase = static_cast<SnapshotPhase>(Phase);
  if (!getHbFrontier(R, Snap.Hb))
    return Malformed();
  if (!R.u8(HasDetect) || HasDetect > 1)
    return Malformed();
  Snap.HasDetect = HasDetect != 0;
  if (Snap.HasDetect && !getDetectFrontier(R, Snap.Detect))
    return Malformed();
  if (!R.u8(HasWindowed) || HasWindowed > 1)
    return Malformed();
  Snap.HasWindowedDetect = HasWindowed != 0;
  if (Snap.HasWindowedDetect &&
      !getWindowedDetectFrontier(R, Snap.WindowedDetect))
    return Malformed();
  if (!R.u8(HasPartial) || HasPartial > 1)
    return Malformed();
  Snap.HasPartialRaces = HasPartial != 0;
  if (Snap.HasPartialRaces) {
    uint32_t N;
    if (!R.u32(N) || N > MaxRaces)
      return Malformed();
    Snap.PartialRaces.resize(N);
    for (PartialRaceKey &K : Snap.PartialRaces)
      if (!R.u32(K.UseMethod) || !R.u32(K.UsePc) || !R.u32(K.FreeMethod) ||
          !R.u32(K.FreePc) || !R.str(K.Label, 4096))
        return Malformed();
  }
  if (!R.atEnd())
    return Status::error("snapshot has trailing bytes");
  return Status::success();
}
