//===- cafa/RaceStore.cpp - Persistent cross-trace race store -----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Journal layout:
//
//   +--------+---------+---------------------+
//   | magic  | version | schema fingerprint  |   20-byte header
//   | 8 B    | u32 LE  | u64 LE              |
//   +--------+---------+---------------------+
//   | u32 len | u64 fnv1a(payload) | payload |   record, repeated
//   +---------+--------------------+---------+
//
// Records are encoded with support/Snapshot's SnapshotWriter (fixed
// little-endian primitives, length-prefixed strings) and decoded with
// SnapshotReader::setPayload after the frame checksum passes.  The
// replay stops -- and truncates -- at the first frame whose length
// overruns the file or whose checksum fails: an append tears only at
// the tail, so everything before the first bad frame is intact by
// construction, and everything after it is unreachable anyway (frame
// boundaries cannot be re-synchronized past a corrupt length).
//
//===----------------------------------------------------------------------===//

#include "cafa/RaceStore.h"

#include "support/DurableFile.h"
#include "support/Snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace cafa;

namespace {

constexpr char JournalMagic[8] = {'C', 'A', 'F', 'A', 'R', 'S', 'T', '1'};
constexpr uint32_t JournalVersion = 1;
constexpr size_t HeaderBytes = 8 + 4 + 8;
constexpr size_t FrameBytes = 4 + 8; // u32 length + u64 checksum
/// Upper bound on one record; a corrupt length field past this is
/// rejected without trusting it.
constexpr uint32_t MaxRecordBytes = 64u << 20;

void appendLe(std::string &Out, uint64_t V, int Bytes) {
  for (int I = 0; I != Bytes; ++I)
    Out.push_back(static_cast<char>((V >> (I * 8)) & 0xFF));
}

uint64_t readLe(const char *P, int Bytes) {
  uint64_t V = 0;
  for (int I = 0; I != Bytes; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(P[I])) << (I * 8);
  return V;
}

std::string encodeHeader() {
  std::string Out;
  Out.append(JournalMagic, sizeof(JournalMagic));
  appendLe(Out, JournalVersion, 4);
  appendLe(Out, RaceStore::schemaFingerprint(), 8);
  return Out;
}

/// Record payload: the stored row plus its optional report.
std::string encodeRecord(const StoredJob &Job) {
  SnapshotWriter W;
  W.str(Job.Row.Id);
  W.str(Job.Row.TracePath);
  W.str(Job.Row.State);
  W.u32(Job.Row.Attempts);
  // Exit codes can be -1 (signal deaths); two's-complement through u64.
  W.u64(static_cast<uint64_t>(static_cast<int64_t>(Job.Row.ExitCode)));
  W.u8(Job.Row.Resumed ? 1 : 0);
  W.u8(Job.Row.Partial ? 1 : 0);
  W.u8(Job.HasReport ? 1 : 0);
  if (Job.HasReport) {
    W.u8(Job.Report.Partial ? 1 : 0);
    W.str(Job.Report.PartialCause);
    W.u32(static_cast<uint32_t>(Job.Report.Races.size()));
    for (const RaceRecord &Race : Job.Report.Races) {
      W.str(Race.UseMethod);
      W.u32(Race.UsePc);
      W.str(Race.UseTask);
      W.u32(Race.UseRecord);
      W.str(Race.FreeMethod);
      W.u32(Race.FreePc);
      W.str(Race.FreeTask);
      W.u32(Race.FreeRecord);
      W.str(Race.Category);
      W.u32(Race.DynamicCount);
      W.u8(static_cast<uint8_t>(Race.Verdict));
    }
  }

  std::string Out;
  const std::string &Payload = W.buffer();
  appendLe(Out, Payload.size(), 4);
  appendLe(Out, fnv1a64(Payload.data(), Payload.size()), 8);
  Out.append(Payload);
  return Out;
}

bool decodeRecord(std::string Payload, StoredJob &Out) {
  SnapshotReader R;
  R.setPayload(std::move(Payload));
  StoredJob Job;
  uint64_t Exit;
  uint8_t Resumed, Partial, HasReport;
  if (!R.str(Job.Row.Id) || !R.str(Job.Row.TracePath) ||
      !R.str(Job.Row.State) || !R.u32(Job.Row.Attempts) || !R.u64(Exit) ||
      !R.u8(Resumed) || !R.u8(Partial) || !R.u8(HasReport))
    return false;
  Job.Row.ExitCode =
      static_cast<int>(static_cast<int64_t>(Exit));
  Job.Row.Resumed = Resumed != 0;
  Job.Row.Partial = Partial != 0;
  Job.HasReport = HasReport != 0;
  if (Job.HasReport) {
    uint8_t ReportPartial;
    uint32_t NumRaces;
    if (!R.u8(ReportPartial) || !R.str(Job.Report.PartialCause) ||
        !R.u32(NumRaces))
      return false;
    Job.Report.Partial = ReportPartial != 0;
    Job.Report.Races.reserve(NumRaces);
    for (uint32_t I = 0; I != NumRaces; ++I) {
      RaceRecord Race;
      uint8_t Verdict;
      if (!R.str(Race.UseMethod) || !R.u32(Race.UsePc) ||
          !R.str(Race.UseTask) || !R.u32(Race.UseRecord) ||
          !R.str(Race.FreeMethod) || !R.u32(Race.FreePc) ||
          !R.str(Race.FreeTask) || !R.u32(Race.FreeRecord) ||
          !R.str(Race.Category) || !R.u32(Race.DynamicCount) ||
          !R.u8(Verdict))
        return false;
      if (Verdict > static_cast<uint8_t>(ConfirmVerdict::Unconfirmed))
        return false; // checksum ok but not a verdict: treat as corrupt
      Race.Verdict = static_cast<ConfirmVerdict>(Verdict);
      Job.Report.Races.push_back(std::move(Race));
    }
    Job.Row.Races = Job.Report.Races.size();
  }
  if (!R.atEnd())
    return false;
  Out = std::move(Job);
  return true;
}

std::string readFileOrFail(const std::string &Path, bool &Exists,
                           bool &ReadOk) {
  Exists = false;
  ReadOk = true;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return "";
  Exists = true;
  std::string Data;
  char Chunk[1 << 16];
  for (size_t N; (N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0;)
    Data.append(Chunk, N);
  ReadOk = std::ferror(F) == 0;
  std::fclose(F);
  return Data;
}

} // namespace

uint64_t RaceStore::schemaFingerprint() {
  // Hash of the record schema description; any field change here (or in
  // encodeRecord) must change this string, bumping the fingerprint so
  // old journals are refused instead of mis-decoded.
  static const char Schema[] =
      "racestore.v2:id,trace,state,attempts:u32,exit:i64,resumed:u8,"
      "partial:u8,report?{partial:u8,cause,races[use,usePc:u32,useTask,"
      "useRec:u32,free,freePc:u32,freeTask,freeRec:u32,category,"
      "dynamic:u32,confirm:u8]}";
  return fnv1a64(Schema, sizeof(Schema) - 1);
}

Status RaceStore::open(const std::string &Path) {
  Open = false;
  JournalPath = Path;
  Jobs.clear();
  Index.clear();
  JournalBytes = 0;
  RecoveredTail = false;
  RecoveredBytes = 0;
  DuplicatesDropped = 0;

  bool Exists, ReadOk;
  std::string Data = readFileOrFail(Path, Exists, ReadOk);
  if (Exists && !ReadOk)
    return Status::error("cannot read race store '" + Path + "'");

  if (!Exists || Data.empty()) {
    // Fresh store: publish the header durably before acknowledging.
    std::string Header = encodeHeader();
    if (Status S = durableAppend(Path, Header); !S.ok())
      return S;
    JournalBytes = Header.size();
    Open = true;
    return Status::success();
  }

  if (Data.size() < HeaderBytes) {
    // The initial header append itself tore (crash during store
    // creation).  Nothing valid exists yet; start over.
    std::string Header = encodeHeader();
    if (Status S = durableWrite(Path, Header); !S.ok())
      return S;
    RecoveredTail = true;
    RecoveredBytes = Data.size();
    JournalBytes = Header.size();
    Open = true;
    return Status::success();
  }

  // The guard rails: never decode records from a file this build does
  // not understand, and never "fix" such a file either.
  if (std::memcmp(Data.data(), JournalMagic, sizeof(JournalMagic)) != 0)
    return Status::error("'" + Path + "' is not a race store journal");
  uint32_t Version = static_cast<uint32_t>(readLe(Data.data() + 8, 4));
  if (Version != JournalVersion)
    return Status::error("race store '" + Path + "' has version " +
                         std::to_string(Version) + " (this build reads " +
                         std::to_string(JournalVersion) + ")");
  uint64_t Fingerprint = readLe(Data.data() + 12, 8);
  if (Fingerprint != schemaFingerprint())
    return Status::error(
        "race store '" + Path +
        "' was written by an incompatible schema (fingerprint mismatch); "
        "refusing to touch it");

  if (Status S = replay(Data); !S.ok())
    return S;
  Open = true;
  return Status::success();
}

Status RaceStore::replay(const std::string &Data) {
  size_t Pos = HeaderBytes;
  while (Pos < Data.size()) {
    size_t Remaining = Data.size() - Pos;
    if (Remaining < FrameBytes)
      break; // torn frame header
    uint32_t Len = static_cast<uint32_t>(readLe(Data.data() + Pos, 4));
    uint64_t Checksum = readLe(Data.data() + Pos + 4, 8);
    if (Len > MaxRecordBytes || Len > Remaining - FrameBytes)
      break; // torn or corrupt length
    const char *Payload = Data.data() + Pos + FrameBytes;
    if (fnv1a64(Payload, Len) != Checksum)
      break; // bit flip or torn payload
    StoredJob Job;
    if (!decodeRecord(std::string(Payload, Len), Job))
      break; // checksum ok but undecodable: treat as corrupt
    if (Index.count(Job.Row.Id)) {
      ++DuplicatesDropped;
    } else {
      Index[Job.Row.Id] = Jobs.size();
      Jobs.push_back(std::move(Job));
    }
    Pos += FrameBytes + Len;
  }

  JournalBytes = Pos;
  if (Pos < Data.size()) {
    // Recover to the last valid prefix: drop the torn/corrupt tail so
    // future appends extend a clean journal.  Frame boundaries cannot
    // be trusted past a bad frame, so everything after it goes too.
    RecoveredTail = true;
    RecoveredBytes = Data.size() - Pos;
#if defined(__unix__) || defined(__APPLE__)
    if (::truncate(JournalPath.c_str(), static_cast<off_t>(Pos)) != 0)
      return Status::error("cannot truncate torn tail of '" +
                           JournalPath + "'");
#else
    // No truncate on this platform: rewrite the valid prefix atomically.
    if (Status S = durableWrite(JournalPath, Data.substr(0, Pos)); !S.ok())
      return S;
#endif
  }
  return Status::success();
}

Status RaceStore::appendJob(const FleetJobStatus &Row,
                            const RaceDocument *Report) {
  if (!Open)
    return Status::error("race store is not open");
  if (Row.Id.empty())
    return Status::error("race store job with empty id");
  if (Row.State == "interrupted")
    return Status::error("race store refuses non-final state "
                         "'interrupted' for job '" +
                         Row.Id + "'");
  if (Index.count(Row.Id))
    return Status::error("race store already holds job '" + Row.Id + "'");

  StoredJob Job;
  Job.Row = Row;
  Job.HasReport = Report != nullptr;
  if (Report) {
    Job.Report = *Report;
    Job.Row.Races = Report->Races.size();
  } else {
    Job.Row.Races = 0;
  }

  std::string Record = encodeRecord(Job);
  if (Status S = durableAppend(JournalPath, Record); !S.ok())
    return S;
  JournalBytes += Record.size();
  Index[Job.Row.Id] = Jobs.size();
  Jobs.push_back(std::move(Job));
  return Status::success();
}

bool RaceStore::hasJob(const std::string &Id) const {
  return Index.count(Id) != 0;
}

Status RaceStore::compact() {
  if (!Open)
    return Status::error("race store is not open");
  std::string Canonical = encodeHeader();
  for (const StoredJob &Job : Jobs)
    Canonical.append(encodeRecord(Job));
  if (Status S = durableWrite(JournalPath, Canonical); !S.ok())
    return S;
  JournalBytes = Canonical.size();
  // The rewrite disposed of whatever the recovery truncated around.
  RecoveredTail = false;
  RecoveredBytes = 0;
  DuplicatesDropped = 0;
  return Status::success();
}

RaceStore::Stats RaceStore::stats() const {
  Stats S;
  S.Jobs = Jobs.size();
  S.JournalBytes = JournalBytes;
  S.RecoveredTail = RecoveredTail;
  S.RecoveredBytes = RecoveredBytes;
  S.DuplicatesDropped = DuplicatesDropped;
  FleetAggregator Aggregator;
  for (const StoredJob &Job : Jobs) {
    if (Job.Row.State.rfind("failed:", 0) == 0)
      ++S.Failed;
    else if (Job.Row.Partial)
      ++S.Partial;
    else
      ++S.Done;
    S.ResumedCompletions += Job.Row.Resumed ? 1 : 0;
    Aggregator.addJob(Job.Row, Job.HasReport ? &Job.Report : nullptr);
  }
  S.DistinctRaces = Aggregator.numDistinctRaces();
  return S;
}

namespace {

/// Render-time normalization: a "done" job's analysis result is fully
/// determined by its trace, so the operational history of *getting* it
/// (resumed-from-checkpoint exit 4, retry counts) is erased here --
/// that is what makes an interrupted-and-resumed batch render
/// byte-identical to an uninterrupted one.  Partial and failed rows
/// keep their raw fields: there the operational history *is* the
/// result.  Raw values remain in the journal and in stats().
FleetJobStatus normalizedRow(const StoredJob &Job) {
  FleetJobStatus Row = Job.Row;
  if (Row.State == "done") {
    Row.ExitCode = Job.HasReport && !Job.Report.Races.empty() ? 1 : 0;
    Row.Resumed = false;
    Row.Attempts = 1;
  }
  return Row;
}

FleetAggregator buildAggregator(const std::vector<StoredJob> &Jobs,
                                unsigned MaxExemplars) {
  // Id order, not insertion order: batches may arrive in any
  // interleaving across restarts, and the aggregate must not care.
  std::vector<const StoredJob *> Sorted;
  Sorted.reserve(Jobs.size());
  for (const StoredJob &Job : Jobs)
    Sorted.push_back(&Job);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const StoredJob *A, const StoredJob *B) {
              return A->Row.Id < B->Row.Id;
            });
  FleetAggregator Aggregator(MaxExemplars);
  for (const StoredJob *Job : Sorted)
    Aggregator.addJob(normalizedRow(*Job),
                      Job->HasReport ? &Job->Report : nullptr);
  return Aggregator;
}

} // namespace

std::string RaceStore::renderJson(unsigned MaxExemplars) const {
  return buildAggregator(Jobs, MaxExemplars).renderJson();
}

std::string RaceStore::renderText(unsigned MaxExemplars) const {
  return buildAggregator(Jobs, MaxExemplars).renderText();
}
