//===- cafa/Checkpoint.h - Crash-safe analysis checkpoints -----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe checkpoint/resume for the offline analysis pipeline.
///
/// A snapshot freezes analysis progress at a consistent boundary -- a
/// happens-before fixpoint round or a detector pair-scan position --
/// into one versioned, checksummed file written atomically (temp file +
/// rename; see support/Snapshot.h).  analyzeTrace() takes snapshots at a
/// configurable cadence and always when a deadline cuts a phase, so an
/// interrupted or killed run can be resumed with
/// CheckpointOptions::Resume and continue to a report *bit-identical* to
/// an uninterrupted run.
///
/// A snapshot is only trusted after validation: file checksum, trace
/// content fingerprint + record count, and a digest of the semantic
/// analysis options.  Any mismatch -- corruption, a different trace, a
/// different rule configuration -- degrades to a clean restart with a
/// diagnostic, never a wrong answer.  See docs/robustness.md.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CAFA_CHECKPOINT_H
#define CAFA_CAFA_CHECKPOINT_H

#include "detect/UseFreeDetector.h"
#include "support/Status.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace cafa {

/// Checkpointing knobs for analyzeTrace().
struct CheckpointOptions {
  /// Directory holding the snapshot file; empty disables checkpointing.
  std::string Directory;
  /// Cadence in wall milliseconds between periodic snapshots.  0 means
  /// "only at deadline cuts" -- a cut phase always leaves a snapshot
  /// behind regardless of cadence.
  double EveryMillis = 0;
  /// Try to resume from an existing snapshot in Directory.  A missing,
  /// corrupt, or mismatched snapshot falls back to a clean start (the
  /// outcome says which).
  bool Resume = false;

  bool enabled() const { return !Directory.empty(); }
};

/// Which phase a snapshot froze.
enum class SnapshotPhase : uint8_t {
  /// The happens-before fixpoint was mid-flight; the snapshot carries
  /// only the HB frontier.
  HbFixpoint = 0,
  /// The HB relation was saturated and the detector scan was mid-flight
  /// (or finished with a partial report); the snapshot carries both
  /// frontiers.
  Detect = 1,
};

/// A race identity that survives across processes: the static (use
/// site, free site) pair, plus its rendered label for diagnostics.
/// Partial reports store these so a resumed run can tell which of its
/// races were already present ("confirmed") and which provisional races
/// disappeared once the analysis completed ("retracted").
struct PartialRaceKey {
  uint32_t UseMethod = 0;
  uint32_t UsePc = 0;
  uint32_t FreeMethod = 0;
  uint32_t FreePc = 0;
  std::string Label;
};

/// Everything one snapshot file holds.
struct AnalysisSnapshot {
  /// Content hash of the trace the analysis ran over (traceFingerprint).
  uint64_t TraceFingerprint = 0;
  /// Record count, validated separately for a cheap first-line check.
  uint64_t NumRecords = 0;
  /// Digest of the semantic analysis options (detectorOptionsDigest).
  uint64_t OptionsDigest = 0;
  SnapshotPhase Phase = SnapshotPhase::HbFixpoint;
  HbFrontier Hb;
  bool HasDetect = false;
  DetectFrontier Detect;
  /// The detect phase was the windowed streaming scan; the snapshot
  /// carries its frontier instead of (never alongside) the batch one.
  /// Cross-mode resume recomputes rather than rejects: a batch run
  /// finding a windowed frontier (or vice versa) adopts the Hb frontier
  /// and redoes detection from scratch in its own mode.
  bool HasWindowedDetect = false;
  WindowedDetectFrontier WindowedDetect;
  /// Races of the partial report this snapshot accompanied, for the
  /// confirmed/retracted diff on resume.  Only final partial-result
  /// snapshots carry these.
  bool HasPartialRaces = false;
  std::vector<PartialRaceKey> PartialRaces;
};

/// What the resume path did, for diagnostics and exit codes.  Pure
/// provenance: nothing here feeds back into the analysis, so a resumed
/// run's report stays bit-identical to an uninterrupted one.
struct ResumeOutcome {
  /// Resume was requested (CheckpointOptions::Resume with a directory).
  bool Attempted = false;
  /// No snapshot file existed (fresh start, not an error).
  bool NoSnapshot = false;
  /// A snapshot was validated and the analysis continued from it.
  bool Resumed = false;
  /// Why a present snapshot was rejected (corrupt file, trace mismatch,
  /// options mismatch).  Empty when nothing was rejected.
  std::string RejectReason;
  /// Phase resumed from: "hb-fixpoint" or "detect".
  std::string Phase;
  /// Fixpoint rounds restored from the snapshot.
  uint32_t HbRoundsDone = 0;
  /// First checkpoint write that failed mid-run, if any (the analysis
  /// continues; only resumability is lost).
  std::string SaveError;
  /// The snapshot carried a partial report's races, so the fields below
  /// are meaningful.
  bool HasBaseline = false;
  /// Races present in both the partial baseline and the final report.
  uint32_t ConfirmedRaces = 0;
  /// Races only in the final report (the cut scan had not reached them).
  uint32_t NewRaces = 0;
  /// Labels of provisional races that disappeared once the fixpoint
  /// saturated -- the "could still disappear" candidates that did.
  std::vector<std::string> RetractedRaces;
};

/// Content hash of \p T: record count, table sizes, and every record's
/// fields.  Two traces collide only if they are byte-equivalent at the
/// record level, which is exactly the "same analysis input" criterion.
uint64_t traceFingerprint(const Trace &T);

/// Digest of the options that change analysis *results*: the causality
/// model, rule toggles, round cap, filters, classification, and whether
/// a deref resolver was attached.  Deliberately excludes pure
/// time/memory knobs (Reach, MemLimitBytes, DeadlineMillis, and the
/// windowed-scan cadence WindowEvents) -- those change how fast and in
/// how much memory the same answer arrives, and a snapshot taken under
/// one budget must remain resumable under another.
uint64_t detectorOptionsDigest(const DetectorOptions &Options,
                               bool HasResolver);

/// The snapshot file analyzeTrace() uses inside \p Directory.
std::string checkpointPath(const std::string &Directory);

/// Serializes \p Snap into \p Path atomically (temp file + fsync +
/// rename).  A crash mid-save leaves either the previous snapshot or
/// none -- never a torn file.
Status saveAnalysisSnapshot(const AnalysisSnapshot &Snap,
                            const std::string &Path);

/// Loads and validates the file framing (magic, version, checksum) and
/// payload structure of \p Path into \p Snap.  Trace/options validation
/// is the caller's job -- this function only guarantees the snapshot is
/// well-formed.
Status loadAnalysisSnapshot(AnalysisSnapshot &Snap, const std::string &Path);

} // namespace cafa

#endif // CAFA_CAFA_CHECKPOINT_H
