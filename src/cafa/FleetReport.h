//===- cafa/FleetReport.h - Cross-trace race aggregation -------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet supervisor's cross-trace report: per-job RaceDocument
/// values (worker JSON parsed once, by ReportJson's parseRaceReportJson)
/// are merged by *static race identity* -- the (use method, use pc,
/// free method, free pc) tuple that already deduplicates dynamic
/// instances within one trace -- so the same race reported from a
/// million users' traces collapses into one aggregate entry with an
/// occurrence count, the best confirmation verdict seen, and exemplar
/// trace paths, instead of being re-triaged once per trace.
///
/// The aggregate is deterministic by construction: jobs appear in
/// manifest order, merged races in lexicographic static-key order, and
/// no wall-clock data enters the JSON rendering.  Running the same batch
/// twice (at any worker count, with any interleaving of job completions)
/// yields byte-identical aggregate JSON.  See docs/fleet.md.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CAFA_FLEETREPORT_H
#define CAFA_CAFA_FLEETREPORT_H

#include "cafa/RaceRecord.h"
#include "support/Status.h"
#include "support/StringInterner.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cafa {

/// Per-job metadata carried into the aggregate.
struct FleetJobStatus {
  std::string Id;
  std::string TracePath;
  /// Terminal supervisor state: "done", "done:partial",
  /// "failed:<cause>" (docs/fleet.md lists the causes), or
  /// "interrupted" (the batch was stopped before this job finished;
  /// its checkpoint remains resumable).
  std::string State;
  unsigned Attempts = 0;
  int ExitCode = -1;
  /// Some attempt completed from a predecessor's checkpoint (exit 4).
  bool Resumed = false;
  /// The accepted report was partial (exit 3).
  bool Partial = false;
  /// Races the job's report contributed to the merge.
  size_t Races = 0;
};

/// Merges per-job reports into one fleet report.
class FleetAggregator {
public:
  explicit FleetAggregator(unsigned MaxExemplars = 3)
      : MaxExemplars(MaxExemplars) {}

  /// Records \p Job and merges \p Report's races (null for jobs that
  /// produced no report, i.e. terminal failures).  Call in manifest
  /// order -- job rows and exemplar lists preserve insertion order.
  void addJob(const FleetJobStatus &Job, const RaceDocument *Report);

  /// Distinct static races across all merged reports.
  size_t numDistinctRaces() const { return Merged.size(); }

  /// Jobs whose report was flagged partial; their races may
  /// under-approximate, so the aggregate marks them.
  size_t numPartialJobs() const;

  /// Renders the aggregate as JSON (schema in docs/fleet.md).
  std::string renderJson() const;

  /// Renders a human-readable summary.
  std::string renderText() const;

private:
  struct MergedRace {
    StrId UseMethod;
    uint32_t UsePc = 0;
    StrId FreeMethod;
    uint32_t FreePc = 0;
    std::string Category;
    uint32_t Jobs = 0;            ///< jobs whose report contains this race
    uint64_t DynamicCount = 0;    ///< summed across jobs
    bool FromPartial = false;     ///< seen only in partial reports so far
    /// Best confirmation evidence across jobs (mergeConfirmVerdicts);
    /// None until some job ran confirmation.
    ConfirmVerdict Verdict = ConfirmVerdict::None;
    std::vector<std::string> Exemplars; ///< first MaxExemplars trace paths
  };

  /// Sorted copy of the merged table (lexicographic static key).
  std::vector<const MergedRace *> sortedRaces() const;

  unsigned MaxExemplars;
  StringInterner Methods;
  /// Keyed by interned (use method, use pc, free method, free pc).
  std::map<std::array<uint32_t, 4>, MergedRace> Merged;
  std::vector<FleetJobStatus> JobRows;
};

} // namespace cafa

#endif // CAFA_CAFA_FLEETREPORT_H
