//===- cafa/Fig4.cpp - The paper's Figure 4 causality scenarios ---------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/Fig4.h"

#include "trace/TraceBuilder.h"

using namespace cafa;

std::vector<Fig4Scenario> cafa::buildFig4Scenarios() {
  std::vector<Fig4Scenario> Out;

  // (a) Atomicity rule.  Event A forks thread T which registers listener
  // L; event B performs L.  fork(A,T) < perform(B,L) makes
  // begin(A) < end(B), so atomicity orders the whole events: A -> B.
  {
    Fig4Scenario S;
    S.Name = "4a-atomicity";
    S.Explanation = "fork(A,T) < register(T,L) < perform(B,L) => A -> B "
                    "by the atomicity rule";
    S.Rule = "atomicity";
    TraceBuilder TB;
    QueueId Q = TB.addQueue("main");
    TaskId A = TB.addEvent("A", Q, 0);
    TaskId B = TB.addEvent("B", Q, 0);
    // Two unrelated senders: their sends carry no order, so only the
    // atomicity rule can relate A and B.
    TaskId S1 = TB.addThread("S1");
    TaskId S2 = TB.addThread("S2");
    TaskId T = TB.addThread("T");
    ListenerId L = TB.addListener("L");
    TB.begin(S1).send(S1, A, 0).end(S1);
    TB.begin(S2).send(S2, B, 0).end(S2);
    TB.begin(A).fork(A, T).end(A);
    TB.begin(T).registerListener(T, L);
    TB.begin(B).performListener(B, L).end(B);
    TB.end(T);
    S.T = TB.take();
    S.A = A;
    S.B = B;
    S.ExpectAB = true;
    Out.push_back(std::move(S));
  }

  // (b) Queue rule 1: ordered sends with equal delays keep FIFO order.
  {
    Fig4Scenario S;
    S.Name = "4b-queue1-fifo";
    S.Explanation = "send(T,A,1) < send(T,B,1), equal delays => A -> B";
    S.Rule = "queue-1";
    TraceBuilder TB;
    QueueId Q = TB.addQueue("main");
    TaskId T = TB.addThread("T");
    TaskId A = TB.addEvent("A", Q, 1);
    TaskId B = TB.addEvent("B", Q, 1);
    TB.begin(T).send(T, A, 1).send(T, B, 1).end(T);
    TB.begin(A).end(A);
    TB.begin(B).end(B);
    S.T = TB.take();
    S.A = A;
    S.B = B;
    S.ExpectAB = true;
    Out.push_back(std::move(S));
  }

  // (c) Queue rule 1 negative: the earlier send has the larger delay, so
  // the later event can overtake it -- no order either way.
  {
    Fig4Scenario S;
    S.Name = "4c-queue1-delay";
    S.Explanation = "send(T,A,5) < send(T,B,0): B may run first => no "
                    "order";
    S.Rule = "none";
    TraceBuilder TB;
    QueueId Q = TB.addQueue("main");
    TaskId T = TB.addThread("T");
    TaskId A = TB.addEvent("A", Q, 5);
    TaskId B = TB.addEvent("B", Q, 0);
    TB.begin(T).send(T, A, 5).send(T, B, 0).end(T);
    TB.begin(B).end(B); // B overtakes A in this execution
    TB.begin(A).end(A);
    S.T = TB.take();
    S.A = A;
    S.B = B;
    Out.push_back(std::move(S));
  }

  // (d) Queue rule 2: both sends inside event C on the same looper.  C
  // ends before anything else runs (atomicity), so sendAtFront(C,B) <
  // begin(A) is derivable and B jumps ahead: B -> A.
  {
    Fig4Scenario S;
    S.Name = "4d-queue2-front";
    S.Explanation = "send(C,A,0) < sendAtFront(C,B) < begin(A) (via "
                    "atomicity on C) => B -> A";
    S.Rule = "queue-2";
    TraceBuilder TB;
    QueueId Q = TB.addQueue("main");
    TaskId C = TB.addEvent("C", Q, 0, false, /*External=*/true);
    TaskId A = TB.addEvent("A", Q, 0);
    TaskId B = TB.addEvent("B", Q, 0, /*AtFront=*/true);
    TB.begin(C).send(C, A, 0).sendAtFront(C, B).end(C);
    TB.begin(B).end(B);
    TB.begin(A).end(A);
    S.T = TB.take();
    S.A = A;
    S.B = B;
    S.ExpectBA = true;
    Out.push_back(std::move(S));
  }

  // (e) Queue rule 2 negative: A is already running when B is pushed to
  // the front -- no order.
  {
    Fig4Scenario S;
    S.Name = "4e-front-race";
    S.Explanation = "A begins before sendAtFront(T,B): either order is "
                    "possible => no order";
    S.Rule = "none";
    TraceBuilder TB;
    QueueId Q = TB.addQueue("main");
    TaskId T = TB.addThread("T");
    TaskId A = TB.addEvent("A", Q, 0);
    TaskId B = TB.addEvent("B", Q, 0, /*AtFront=*/true);
    TB.begin(T).send(T, A, 0);
    TB.begin(A);
    TB.sendAtFront(T, B).end(T);
    TB.end(A);
    TB.begin(B).end(B);
    S.T = TB.take();
    S.A = A;
    S.B = B;
    Out.push_back(std::move(S));
  }

  // (f) Queue rule 2 negative, other interleaving observed: B ran first,
  // but nothing guarantees it -- still no order.
  {
    Fig4Scenario S;
    S.Name = "4f-front-race";
    S.Explanation = "sendAtFront(T,B) not ordered before begin(A) => no "
                    "order, even though B ran first here";
    S.Rule = "none";
    TraceBuilder TB;
    QueueId Q = TB.addQueue("main");
    TaskId T = TB.addThread("T");
    TaskId A = TB.addEvent("A", Q, 0);
    TaskId B = TB.addEvent("B", Q, 0, /*AtFront=*/true);
    TB.begin(T).send(T, A, 0).sendAtFront(T, B).end(T);
    TB.begin(B).end(B);
    TB.begin(A).end(A);
    S.T = TB.take();
    S.A = A;
    S.B = B;
    Out.push_back(std::move(S));
  }

  // Extra: queue rule 3 -- an event already at the front precedes any
  // later-sent event.
  {
    Fig4Scenario S;
    S.Name = "rule3-front-first";
    S.Explanation = "sendAtFront(T,A) < send(T,B,0) => A -> B";
    S.Rule = "queue-3";
    TraceBuilder TB;
    QueueId Q = TB.addQueue("main");
    TaskId T = TB.addThread("T");
    TaskId A = TB.addEvent("A", Q, 0, /*AtFront=*/true);
    TaskId B = TB.addEvent("B", Q, 0);
    TB.begin(T).sendAtFront(T, A).send(T, B, 0).end(T);
    TB.begin(A).end(A);
    TB.begin(B).end(B);
    S.T = TB.take();
    S.A = A;
    S.B = B;
    S.ExpectAB = true;
    Out.push_back(std::move(S));
  }

  // Extra: queue rule 4 -- two front-sends inside one event; the later
  // one lands in front of the earlier one.
  {
    Fig4Scenario S;
    S.Name = "rule4-front-front";
    S.Explanation = "sendAtFront(C,A) < sendAtFront(C,B) < begin(A) "
                    "(via atomicity on C) => B -> A";
    S.Rule = "queue-4";
    TraceBuilder TB;
    QueueId Q = TB.addQueue("main");
    TaskId C = TB.addEvent("C", Q, 0, false, /*External=*/true);
    TaskId A = TB.addEvent("A", Q, 0, /*AtFront=*/true);
    TaskId B = TB.addEvent("B", Q, 0, /*AtFront=*/true);
    TB.begin(C).sendAtFront(C, A).sendAtFront(C, B).end(C);
    TB.begin(B).end(B);
    TB.begin(A).end(A);
    S.T = TB.take();
    S.A = A;
    S.B = B;
    S.ExpectBA = true;
    Out.push_back(std::move(S));
  }

  return Out;
}
