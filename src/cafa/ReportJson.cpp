//===- cafa/ReportJson.cpp - Machine-readable report output -------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/ReportJson.h"

#include "support/Format.h"

#include <sstream>

using namespace cafa;

std::string cafa::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out.push_back(C);
    }
  }
  return Out;
}

namespace {

/// Renders one access as a JSON object.
std::string accessJson(const PtrAccess &Acc, const Trace &T) {
  return formatString(
      "{\"method\": \"%s\", \"pc\": %u, \"task\": \"%s\", "
      "\"record\": %u}",
      jsonEscape(T.methodName(Acc.Method)).c_str(), Acc.Pc,
      jsonEscape(T.taskName(Acc.Task)).c_str(), Acc.Record);
}

} // namespace

std::string cafa::renderRaceReportJson(const RaceReport &Report,
                                       const Trace &T) {
  std::ostringstream OS;
  OS << "{\n  \"races\": [";
  bool First = true;
  // Only a cut happens-before relation makes findings provisional; the
  // field is omitted entirely from complete reports so resumed runs stay
  // byte-identical to uninterrupted ones.
  const char *Provisional =
      Report.racesProvisional() ? ", \"provisional\": true" : "";
  for (const UseFreeRace &Race : Report.Races) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << formatString(
        "    {\"category\": \"%s\", \"dynamicCount\": %u%s,\n"
        "     \"use\": %s,\n     \"free\": %s}",
        raceCategoryName(Race.Category), Race.DynamicCount, Provisional,
        accessJson(Race.Use, T).c_str(), accessJson(Race.Free, T).c_str());
  }
  const FilterCounters &F = Report.Filters;
  OS << "\n  ],\n";
  OS << formatString(
      "  \"filters\": {\"candidates\": %llu, \"orderedByHb\": %llu, "
      "\"sameTask\": %llu, \"lockset\": %llu, \"ifGuard\": %llu, "
      "\"intraEventAlloc\": %llu},\n",
      static_cast<unsigned long long>(F.CandidatePairs),
      static_cast<unsigned long long>(F.OrderedByHb),
      static_cast<unsigned long long>(F.SameTask),
      static_cast<unsigned long long>(F.LocksetProtected),
      static_cast<unsigned long long>(F.IfGuardFiltered),
      static_cast<unsigned long long>(F.IntraEventAlloc));
  OS << formatString("  \"partial\": %s",
                     Report.Partial ? "true" : "false");
  if (Report.Partial) {
    OS << formatString(",\n  \"partialCause\": \"%s\"",
                       jsonEscape(Report.PartialCause).c_str());
    if (!Report.PartialDetail.empty())
      OS << formatString(",\n  \"partialDetail\": \"%s\"",
                         jsonEscape(Report.PartialDetail).c_str());
  }
  OS << "\n}\n";
  return OS.str();
}

std::string cafa::renderTable1Json(const std::vector<Table1Row> &Rows) {
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const Table1Row &Row : Rows) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << formatString(
        "  {\"app\": \"%s\", \"events\": %llu, \"reported\": %llu, "
        "\"trueA\": %llu, \"trueB\": %llu, \"trueC\": %llu, "
        "\"fpI\": %llu, \"fpII\": %llu, \"fpIII\": %llu, "
        "\"unexpected\": %llu, \"missed\": %llu}",
        jsonEscape(Row.App).c_str(),
        static_cast<unsigned long long>(Row.Events),
        static_cast<unsigned long long>(Row.Reported),
        static_cast<unsigned long long>(Row.TrueA),
        static_cast<unsigned long long>(Row.TrueB),
        static_cast<unsigned long long>(Row.TrueC),
        static_cast<unsigned long long>(Row.FpI),
        static_cast<unsigned long long>(Row.FpII),
        static_cast<unsigned long long>(Row.FpIII),
        static_cast<unsigned long long>(Row.Unexpected),
        static_cast<unsigned long long>(Row.Missed));
  }
  OS << "\n]\n";
  return OS.str();
}
