//===- cafa/ReportJson.cpp - Machine-readable report output -------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "cafa/ReportJson.h"

#include "support/Format.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace cafa;

std::string cafa::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out.push_back(C);
    }
  }
  return Out;
}

namespace {

/// Renders one access as a JSON object.
std::string accessJson(const std::string &Method, uint32_t Pc,
                       const std::string &Task, uint32_t Record) {
  return formatString(
      "{\"method\": \"%s\", \"pc\": %u, \"task\": \"%s\", "
      "\"record\": %u}",
      jsonEscape(Method).c_str(), Pc, jsonEscape(Task).c_str(), Record);
}

} // namespace

std::string cafa::renderRaceReportJson(const RaceDocument &Doc) {
  std::ostringstream OS;
  OS << "{\n  \"races\": [";
  bool First = true;
  // Only a cut happens-before relation makes findings provisional; the
  // field is omitted entirely from complete reports so resumed runs stay
  // byte-identical to uninterrupted ones.
  const char *Provisional =
      Doc.Provisional ? ", \"provisional\": true" : "";
  for (const RaceRecord &Race : Doc.Races) {
    OS << (First ? "\n" : ",\n");
    First = false;
    // The verdict field appears only once confirmation ran, so
    // unconfirmed corpora keep their pinned pre-confirmation bytes.
    std::string Confirm =
        Race.Verdict == ConfirmVerdict::None
            ? std::string()
            : formatString(", \"confirm\": \"%s\"",
                           confirmVerdictName(Race.Verdict));
    OS << formatString(
        "    {\"category\": \"%s\", \"dynamicCount\": %u%s%s,\n"
        "     \"use\": %s,\n     \"free\": %s}",
        Race.Category.c_str(), Race.DynamicCount, Provisional,
        Confirm.c_str(),
        accessJson(Race.UseMethod, Race.UsePc, Race.UseTask,
                   Race.UseRecord)
            .c_str(),
        accessJson(Race.FreeMethod, Race.FreePc, Race.FreeTask,
                   Race.FreeRecord)
            .c_str());
  }
  const FilterCounters &F = Doc.Filters;
  OS << "\n  ],\n";
  OS << formatString(
      "  \"filters\": {\"candidates\": %llu, \"orderedByHb\": %llu, "
      "\"sameTask\": %llu, \"lockset\": %llu, \"ifGuard\": %llu, "
      "\"intraEventAlloc\": %llu},\n",
      static_cast<unsigned long long>(F.CandidatePairs),
      static_cast<unsigned long long>(F.OrderedByHb),
      static_cast<unsigned long long>(F.SameTask),
      static_cast<unsigned long long>(F.LocksetProtected),
      static_cast<unsigned long long>(F.IfGuardFiltered),
      static_cast<unsigned long long>(F.IntraEventAlloc));
  OS << formatString("  \"partial\": %s", Doc.Partial ? "true" : "false");
  if (Doc.Partial) {
    OS << formatString(",\n  \"partialCause\": \"%s\"",
                       jsonEscape(Doc.PartialCause).c_str());
    if (!Doc.PartialDetail.empty())
      OS << formatString(",\n  \"partialDetail\": \"%s\"",
                         jsonEscape(Doc.PartialDetail).c_str());
  }
  OS << "\n}\n";
  return OS.str();
}

std::string cafa::renderRaceReportJson(const RaceReport &Report,
                                       const Trace &T) {
  return renderRaceReportJson(buildRaceDocument(Report, T));
}

std::string cafa::renderRaceReportText(const RaceDocument &Doc) {
  std::ostringstream OS;
  OS << Doc.Races.size() << " use-free race(s) reported\n";
  size_t N = 0;
  // A race found against a cut happens-before relation may be ordered
  // away once the fixpoint saturates; mark it so a partial report is
  // never mistaken for a confirmed finding.  Complete reports render
  // without any marker -- resumed runs stay byte-identical to
  // uninterrupted ones.
  const char *Suffix = Doc.Provisional ? "  (provisional)" : "";
  for (const RaceRecord &Race : Doc.Races) {
    std::string Verdict =
        Race.Verdict == ConfirmVerdict::None
            ? std::string()
            : formatString("  => %s", confirmVerdictName(Race.Verdict));
    OS << formatString(
        "  #%zu  use %s:%u in %s  ~  free %s:%u in %s  [%s, x%u]%s%s\n",
        ++N, Race.UseMethod.c_str(), Race.UsePc, Race.UseTask.c_str(),
        Race.FreeMethod.c_str(), Race.FreePc, Race.FreeTask.c_str(),
        Race.Category.c_str(), Race.DynamicCount, Suffix,
        Verdict.c_str());
  }
  const FilterCounters &F = Doc.Filters;
  OS << formatString(
      "candidates=%llu orderedByHb=%llu sameTask=%llu lockset=%llu "
      "ifGuard=%llu intraEventAlloc=%llu\n",
      static_cast<unsigned long long>(F.CandidatePairs),
      static_cast<unsigned long long>(F.OrderedByHb),
      static_cast<unsigned long long>(F.SameTask),
      static_cast<unsigned long long>(F.LocksetProtected),
      static_cast<unsigned long long>(F.IfGuardFiltered),
      static_cast<unsigned long long>(F.IntraEventAlloc));
  if (Doc.Partial) {
    OS << formatString("PARTIAL result (%s): analysis stopped early; "
                       "races may be missing or unfiltered\n",
                       Doc.PartialCause.c_str());
    if (!Doc.PartialDetail.empty())
      OS << formatString("  %s\n", Doc.PartialDetail.c_str());
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Minimal JSON reader
//===----------------------------------------------------------------------===//
//
// CAFA only ever parses JSON this project itself emitted
// (renderRaceReportJson), so a small strict reader is enough; it still
// parses arbitrary well-formed JSON so schema growth on the emitter side
// cannot break older supervisors.

namespace {

struct JsonValue {
  enum Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Fields;

  /// Returns the named object field, or null when absent.
  const JsonValue *field(const char *Name) const {
    for (const auto &[Key, Value] : Fields)
      if (Key == Name)
        return &Value;
    return nullptr;
  }
};

class JsonReader {
public:
  JsonReader(const std::string &Text) : Text(Text) {}

  Status parse(JsonValue &Out) {
    Status S = value(Out);
    if (!S.ok())
      return S;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing bytes after JSON value");
    return Status::success();
  }

private:
  Status fail(const std::string &Why) {
    return Status::error(
        formatString("report JSON byte %zu: %s", Pos, Why.c_str()));
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Status value(JsonValue &Out) {
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.K = JsonValue::String;
      return string(Out.Str);
    }
    if (C == 't' || C == 'f')
      return boolean(Out);
    if (C == 'n') {
      if (Text.compare(Pos, 4, "null") != 0)
        return fail("bad literal");
      Pos += 4;
      Out.K = JsonValue::Null;
      return Status::success();
    }
    return number(Out);
  }

  Status object(JsonValue &Out) {
    Out.K = JsonValue::Object;
    ++Pos; // '{'
    if (eat('}'))
      return Status::success();
    for (;;) {
      skipSpace();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      if (Status S = string(Key); !S.ok())
        return S;
      if (!eat(':'))
        return fail("expected ':'");
      JsonValue V;
      if (Status S = value(V); !S.ok())
        return S;
      Out.Fields.emplace_back(std::move(Key), std::move(V));
      if (eat(','))
        continue;
      if (eat('}'))
        return Status::success();
      return fail("expected ',' or '}'");
    }
  }

  Status array(JsonValue &Out) {
    Out.K = JsonValue::Array;
    ++Pos; // '['
    if (eat(']'))
      return Status::success();
    for (;;) {
      JsonValue V;
      if (Status S = value(V); !S.ok())
        return S;
      Out.Items.push_back(std::move(V));
      if (eat(','))
        continue;
      if (eat(']'))
        return Status::success();
      return fail("expected ',' or ']'");
    }
  }

  Status string(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Status::success();
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // Our emitter only produces \u00xx for control bytes; decode
        // the Latin-1 range and reject the rest rather than guessing
        // at UTF-16 surrogate handling we never emit.
        if (Code > 0xFF)
          return fail("unsupported \\u escape beyond U+00FF");
        Out.push_back(static_cast<char>(Code));
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status boolean(JsonValue &Out) {
    Out.K = JsonValue::Bool;
    if (Text.compare(Pos, 4, "true") == 0) {
      Out.B = true;
      Pos += 4;
      return Status::success();
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Out.B = false;
      Pos += 5;
      return Status::success();
    }
    return fail("bad literal");
  }

  Status number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    Out.K = JsonValue::Number;
    Out.Num = std::strtod(Text.c_str() + Start, nullptr);
    return Status::success();
  }

  const std::string &Text;
  size_t Pos = 0;
};

/// Reads one "use"/"free" access object into a record's fields.
Status readAccess(const JsonValue &Access, std::string &Method,
                  uint32_t &Pc, std::string &Task, uint32_t &Record) {
  const JsonValue *M = Access.field("method");
  const JsonValue *P = Access.field("pc");
  if (!M || M->K != JsonValue::String || !P || P->K != JsonValue::Number)
    return Status::error("race access missing method/pc");
  Method = M->Str;
  Pc = static_cast<uint32_t>(P->Num);
  if (const JsonValue *T = Access.field("task");
      T && T->K == JsonValue::String)
    Task = T->Str;
  if (const JsonValue *R = Access.field("record");
      R && R->K == JsonValue::Number)
    Record = static_cast<uint32_t>(R->Num);
  return Status::success();
}

/// Reads one filter counter, tolerating its absence.
void readCounter(const JsonValue &Filters, const char *Name,
                 uint64_t &Out) {
  if (const JsonValue *V = Filters.field(Name);
      V && V->K == JsonValue::Number)
    Out = static_cast<uint64_t>(V->Num);
}

} // namespace

Status cafa::parseRaceReportJson(const std::string &Json,
                                 RaceDocument &Out) {
  Out = RaceDocument();
  JsonValue Root;
  if (Status S = JsonReader(Json).parse(Root); !S.ok())
    return S;
  if (Root.K != JsonValue::Object)
    return Status::error("report JSON is not an object");

  RaceDocument Doc;
  if (const JsonValue *Partial = Root.field("partial");
      Partial && Partial->K == JsonValue::Bool)
    Doc.Partial = Partial->B;
  if (const JsonValue *Cause = Root.field("partialCause");
      Cause && Cause->K == JsonValue::String)
    Doc.PartialCause = Cause->Str;
  if (const JsonValue *Detail = Root.field("partialDetail");
      Detail && Detail->K == JsonValue::String)
    Doc.PartialDetail = Detail->Str;
  if (const JsonValue *Filters = Root.field("filters");
      Filters && Filters->K == JsonValue::Object) {
    readCounter(*Filters, "candidates", Doc.Filters.CandidatePairs);
    readCounter(*Filters, "orderedByHb", Doc.Filters.OrderedByHb);
    readCounter(*Filters, "sameTask", Doc.Filters.SameTask);
    readCounter(*Filters, "lockset", Doc.Filters.LocksetProtected);
    readCounter(*Filters, "ifGuard", Doc.Filters.IfGuardFiltered);
    readCounter(*Filters, "intraEventAlloc", Doc.Filters.IntraEventAlloc);
  }

  const JsonValue *Races = Root.field("races");
  if (!Races || Races->K != JsonValue::Array)
    return Status::error("report JSON has no races array");
  for (const JsonValue &Entry : Races->Items) {
    if (Entry.K != JsonValue::Object)
      return Status::error("race entry is not an object");
    const JsonValue *Use = Entry.field("use");
    const JsonValue *Free = Entry.field("free");
    if (!Use || !Free)
      return Status::error("race entry missing use/free");
    RaceRecord Race;
    if (Status S = readAccess(*Use, Race.UseMethod, Race.UsePc,
                              Race.UseTask, Race.UseRecord);
        !S.ok())
      return S;
    if (Status S = readAccess(*Free, Race.FreeMethod, Race.FreePc,
                              Race.FreeTask, Race.FreeRecord);
        !S.ok())
      return S;
    if (const JsonValue *Cat = Entry.field("category");
        Cat && Cat->K == JsonValue::String)
      Race.Category = Cat->Str;
    if (const JsonValue *Dyn = Entry.field("dynamicCount");
        Dyn && Dyn->K == JsonValue::Number)
      Race.DynamicCount = static_cast<uint32_t>(Dyn->Num);
    if (const JsonValue *Prov = Entry.field("provisional");
        Prov && Prov->K == JsonValue::Bool && Prov->B)
      Doc.Provisional = true;
    if (const JsonValue *Verdict = Entry.field("confirm");
        Verdict && Verdict->K == JsonValue::String)
      // Unknown verdict names stay None: a newer worker's verdict must
      // not fail an older supervisor's parse.
      confirmVerdictFromName(Verdict->Str, Race.Verdict);
    Doc.Races.push_back(std::move(Race));
  }
  Out = std::move(Doc);
  return Status::success();
}

std::string cafa::renderTable1Json(const std::vector<Table1Row> &Rows) {
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const Table1Row &Row : Rows) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << formatString(
        "  {\"app\": \"%s\", \"events\": %llu, \"reported\": %llu, "
        "\"trueA\": %llu, \"trueB\": %llu, \"trueC\": %llu, "
        "\"fpI\": %llu, \"fpII\": %llu, \"fpIII\": %llu, "
        "\"unexpected\": %llu, \"missed\": %llu}",
        jsonEscape(Row.App).c_str(),
        static_cast<unsigned long long>(Row.Events),
        static_cast<unsigned long long>(Row.Reported),
        static_cast<unsigned long long>(Row.TrueA),
        static_cast<unsigned long long>(Row.TrueB),
        static_cast<unsigned long long>(Row.TrueC),
        static_cast<unsigned long long>(Row.FpI),
        static_cast<unsigned long long>(Row.FpII),
        static_cast<unsigned long long>(Row.FpIII),
        static_cast<unsigned long long>(Row.Unexpected),
        static_cast<unsigned long long>(Row.Missed));
  }
  OS << "\n]\n";
  return OS.str();
}
