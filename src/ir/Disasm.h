//===- ir/Disasm.h - Mini-Dalvik disassembler ------------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable printing of mini-Dalvik methods, used in diagnostics,
/// examples, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_IR_DISASM_H
#define CAFA_IR_DISASM_H

#include "ir/Module.h"

#include <string>

namespace cafa {

/// Renders one instruction as text, e.g. "iput-object v0.providerUtils <- v2".
std::string disassembleInstr(const Module &M, const Instr &I, uint32_t Pc);

/// Renders a whole method with pc labels.
std::string disassembleMethod(const Module &M, MethodId Method);

/// Renders every method in the module.
std::string disassembleModule(const Module &M);

} // namespace cafa

#endif // CAFA_IR_DISASM_H
