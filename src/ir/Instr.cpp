//===- ir/Instr.cpp - Mini-Dalvik instruction set --------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/Instr.h"

#include <cassert>

using namespace cafa;

static const char *const OpcodeNames[] = {
    "nop",           "const-null",     "const-int",
    "move",          "new-instance",   "iget-object",
    "iput-object",   "sget-object",    "sput-object",
    "iget",          "iput",           "sget",
    "sput",          "invoke-virtual", "invoke-static",
    "return-void",   "if-eqz",         "if-nez",
    "if-eq",         "if-int-eqz",     "if-int-nez",
    "goto",          "add-int",        "monitor-enter",
    "monitor-exit",  "wait",           "notify",
    "fork-thread",   "join-thread",    "send-event",
    "send-at-front", "register-listener", "trigger-listener",
    "binder-call",   "pipe-write",
    "pipe-read",     "send-at-time",
    "work",          "sleep",
};

static_assert(sizeof(OpcodeNames) / sizeof(OpcodeNames[0]) == NumOpcodes,
              "OpcodeNames must cover every Opcode");

const char *cafa::opcodeName(Opcode Op) {
  unsigned Index = static_cast<unsigned>(Op);
  assert(Index < NumOpcodes && "invalid opcode");
  return OpcodeNames[Index];
}

bool cafa::isBranch(Opcode Op) {
  switch (Op) {
  case Opcode::IfEqz:
  case Opcode::IfNez:
  case Opcode::IfEq:
  case Opcode::IfIntEqz:
  case Opcode::IfIntNez:
  case Opcode::Goto:
    return true;
  default:
    return false;
  }
}

bool cafa::isGuardBranch(Opcode Op) {
  return Op == Opcode::IfEqz || Op == Opcode::IfNez || Op == Opcode::IfEq;
}

bool cafa::isTerminator(Opcode Op) {
  return Op == Opcode::ReturnVoid || Op == Opcode::Goto;
}
