//===- ir/Module.h - Mini-Dalvik program container -------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module is the static description of one simulated Android system
/// image: the application's classes, fields, methods, plus the runtime
/// topology instructions refer to (processes, event queues, listeners,
/// locks, monitors).  The application models in src/apps each build one
/// Module with IrBuilder; the runtime interprets it.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_IR_MODULE_H
#define CAFA_IR_MODULE_H

#include "ir/Instr.h"
#include "support/Ids.h"
#include "support/StringInterner.h"

#include <cassert>
#include <string>
#include <vector>

namespace cafa {

/// A class with object-pointer and scalar field slots.
struct ClassDef {
  StrId Name;
};

/// One field.  Instance fields belong to a class; static fields stand
/// alone.  Object fields hold references (their null writes are frees);
/// scalar fields hold integers.
struct FieldDef {
  StrId Name;
  /// Owning class; invalid for static fields.
  ClassId Owner;
  bool IsObject = false;
  bool IsStatic = false;
};

/// One method: straight-line register code.
struct MethodDef {
  StrId Name;
  uint16_t NumRegs = 0;
  std::vector<Instr> Code;
};

/// One simulated process.
struct ProcessDef {
  StrId Name;
};

/// One event queue, drained by a dedicated looper thread in Process.
struct QueueDef {
  StrId Name;
  ProcessId Process;
};

/// One listener slot.  Uninstrumented listeners model the Android
/// packages the paper's prototype does not trace (Type I FPs).
struct ListenerDef {
  StrId Name;
  /// The queue on which the registered callback is performed (Android
  /// delivers listener callbacks on a specific looper).
  QueueId DeliveryQueue;
  bool Instrumented = true;
};

/// A named lock (lockset analysis only).
struct LockDef {
  StrId Name;
};

/// A named monitor for wait/notify.
struct MonitorDef {
  StrId Name;
};

/// A unidirectional message pipe (Section 5.2's "Other IPC Channels":
/// latency-critical IPC through pipes / Unix domain sockets, traced by
/// tagging each message with a unique id).
struct PipeDef {
  StrId Name;
};

/// A complete mini-Dalvik program plus its runtime topology.
class Module {
public:
  StringInterner &names() { return Names; }
  const StringInterner &names() const { return Names; }

  ClassId addClass(std::string_view Name) {
    Classes.push_back({Names.intern(Name)});
    return ClassId(static_cast<uint32_t>(Classes.size() - 1));
  }
  FieldId addField(std::string_view Name, ClassId Owner, bool IsObject) {
    Fields.push_back({Names.intern(Name), Owner, IsObject, false});
    return FieldId(static_cast<uint32_t>(Fields.size() - 1));
  }
  FieldId addStaticField(std::string_view Name, bool IsObject) {
    Fields.push_back({Names.intern(Name), ClassId::invalid(), IsObject,
                      true});
    return FieldId(static_cast<uint32_t>(Fields.size() - 1));
  }
  ProcessId addProcess(std::string_view Name) {
    Processes.push_back({Names.intern(Name)});
    return ProcessId(static_cast<uint32_t>(Processes.size() - 1));
  }
  QueueId addQueue(std::string_view Name, ProcessId Process) {
    Queues.push_back({Names.intern(Name), Process});
    return QueueId(static_cast<uint32_t>(Queues.size() - 1));
  }
  ListenerId addListener(std::string_view Name, QueueId DeliveryQueue,
                         bool Instrumented = true) {
    Listeners.push_back({Names.intern(Name), DeliveryQueue, Instrumented});
    return ListenerId(static_cast<uint32_t>(Listeners.size() - 1));
  }
  LockId addLock(std::string_view Name) {
    Locks.push_back({Names.intern(Name)});
    return LockId(static_cast<uint32_t>(Locks.size() - 1));
  }
  MonitorId addMonitor(std::string_view Name) {
    Monitors.push_back({Names.intern(Name)});
    return MonitorId(static_cast<uint32_t>(Monitors.size() - 1));
  }
  PipeId addPipe(std::string_view Name) {
    Pipes.push_back({Names.intern(Name)});
    return PipeId(static_cast<uint32_t>(Pipes.size() - 1));
  }
  MethodId addMethod(MethodDef Def) {
    Methods.push_back(std::move(Def));
    return MethodId(static_cast<uint32_t>(Methods.size() - 1));
  }

  size_t numClasses() const { return Classes.size(); }
  size_t numFields() const { return Fields.size(); }
  size_t numMethods() const { return Methods.size(); }
  size_t numProcesses() const { return Processes.size(); }
  size_t numQueues() const { return Queues.size(); }
  size_t numListeners() const { return Listeners.size(); }
  size_t numLocks() const { return Locks.size(); }
  size_t numMonitors() const { return Monitors.size(); }
  size_t numPipes() const { return Pipes.size(); }

  const ClassDef &classDef(ClassId Id) const {
    assert(Id.index() < Classes.size() && "class id out of range");
    return Classes[Id.index()];
  }
  const FieldDef &fieldDef(FieldId Id) const {
    assert(Id.index() < Fields.size() && "field id out of range");
    return Fields[Id.index()];
  }
  const MethodDef &methodDef(MethodId Id) const {
    assert(Id.index() < Methods.size() && "method id out of range");
    return Methods[Id.index()];
  }
  const ProcessDef &processDef(ProcessId Id) const {
    assert(Id.index() < Processes.size() && "process id out of range");
    return Processes[Id.index()];
  }
  const QueueDef &queueDef(QueueId Id) const {
    assert(Id.index() < Queues.size() && "queue id out of range");
    return Queues[Id.index()];
  }
  const ListenerDef &listenerDef(ListenerId Id) const {
    assert(Id.index() < Listeners.size() && "listener id out of range");
    return Listeners[Id.index()];
  }
  const LockDef &lockDef(LockId Id) const {
    assert(Id.index() < Locks.size() && "lock id out of range");
    return Locks[Id.index()];
  }
  const MonitorDef &monitorDef(MonitorId Id) const {
    assert(Id.index() < Monitors.size() && "monitor id out of range");
    return Monitors[Id.index()];
  }
  const PipeDef &pipeDef(PipeId Id) const {
    assert(Id.index() < Pipes.size() && "pipe id out of range");
    return Pipes[Id.index()];
  }

  /// Returns the name of \p Id or a placeholder.
  std::string methodName(MethodId Id) const;

private:
  StringInterner Names;
  std::vector<ClassDef> Classes;
  std::vector<FieldDef> Fields;
  std::vector<MethodDef> Methods;
  std::vector<ProcessDef> Processes;
  std::vector<QueueDef> Queues;
  std::vector<ListenerDef> Listeners;
  std::vector<LockDef> Locks;
  std::vector<MonitorDef> Monitors;
  std::vector<PipeDef> Pipes;
};

} // namespace cafa

#endif // CAFA_IR_MODULE_H
