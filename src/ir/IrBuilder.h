//===- ir/IrBuilder.h - Method construction helper -------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent builder for mini-Dalvik methods with forward-reference labels.
/// Application models use this the way Clang uses IRBuilder: declare a
/// method, emit instructions, bind labels, finish.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_IR_IRBUILDER_H
#define CAFA_IR_IRBUILDER_H

#include "ir/Module.h"

#include <cassert>
#include <string_view>
#include <vector>

namespace cafa {

/// A branch target within the method being built.
class Label {
  friend class IrBuilder;
  explicit Label(uint32_t Index) : Index(Index) {}
  uint32_t Index;

public:
  Label() : Index(0xFFFFFFFFu) {}
};

/// Builds one method at a time into a Module.
class IrBuilder {
public:
  explicit IrBuilder(Module &M) : M(M) {}

  /// Starts a new method.  \p NumRegs is the frame's register count.
  IrBuilder &beginMethod(std::string_view Name, uint16_t NumRegs);

  /// Finishes the current method (resolving all labels, appending a
  /// trailing return if the last instruction can fall through) and adds
  /// it to the module.
  MethodId endMethod();

  /// Creates an unbound label.
  Label newLabel();

  /// Binds \p L to the next emitted instruction.
  IrBuilder &bind(Label L);

  /// Returns the pc the next instruction will get.
  uint32_t nextPc() const { return static_cast<uint32_t>(Code.size()); }

  // --- Data movement and heap access ------------------------------------
  IrBuilder &nop();
  IrBuilder &constNull(Reg Dst);
  IrBuilder &constInt(Reg Dst, int32_t Value);
  IrBuilder &move(Reg Dst, Reg Src);
  IrBuilder &newInstance(Reg Dst, ClassId Class);
  IrBuilder &igetObject(Reg Dst, Reg Receiver, FieldId Field);
  IrBuilder &iputObject(Reg Receiver, FieldId Field, Reg Src);
  IrBuilder &sgetObject(Reg Dst, FieldId Field);
  IrBuilder &sputObject(FieldId Field, Reg Src);
  IrBuilder &iget(Reg Dst, Reg Receiver, FieldId Field);
  IrBuilder &iput(Reg Receiver, FieldId Field, Reg Src);
  IrBuilder &sget(Reg Dst, FieldId Field);
  IrBuilder &sput(FieldId Field, Reg Src);
  IrBuilder &addInt(Reg Dst, Reg Src, int32_t Imm);

  // --- Calls -------------------------------------------------------------
  IrBuilder &invokeVirtual(Reg Receiver, MethodId Callee, Reg Arg = NoReg);
  IrBuilder &invokeStatic(MethodId Callee, Reg Arg = NoReg);
  IrBuilder &returnVoid();

  // --- Branches ----------------------------------------------------------
  IrBuilder &ifEqz(Reg Obj, Label Target);
  IrBuilder &ifNez(Reg Obj, Label Target);
  IrBuilder &ifEq(Reg ObjA, Reg ObjB, Label Target);
  IrBuilder &ifIntEqz(Reg Scalar, Label Target);
  IrBuilder &ifIntNez(Reg Scalar, Label Target);
  IrBuilder &gotoLabel(Label Target);

  // --- Concurrency -------------------------------------------------------
  IrBuilder &monitorEnter(LockId Lock);
  IrBuilder &monitorExit(LockId Lock);
  IrBuilder &waitMonitor(MonitorId Monitor);
  IrBuilder &notifyMonitor(MonitorId Monitor);
  IrBuilder &forkThread(Reg HandleDst, MethodId Body, Reg Arg = NoReg);
  IrBuilder &joinThread(Reg Handle);
  IrBuilder &sendEvent(QueueId Queue, MethodId Handler, int32_t DelayMs,
                       Reg Arg = NoReg);
  IrBuilder &sendEventAtFront(QueueId Queue, MethodId Handler,
                              Reg Arg = NoReg);
  IrBuilder &registerListener(ListenerId Listener, MethodId Handler,
                              Reg Arg = NoReg);
  IrBuilder &triggerListener(ListenerId Listener);
  IrBuilder &binderCall(ProcessId Target, MethodId Remote, Reg Arg = NoReg);
  IrBuilder &pipeWrite(PipeId Pipe, Reg Arg = NoReg);
  IrBuilder &pipeRead(PipeId Pipe, Reg Dst = NoReg);
  IrBuilder &sendEventAtTime(QueueId Queue, MethodId Handler,
                             int32_t AtMillis, Reg Arg = NoReg);
  IrBuilder &work(int32_t Units);
  IrBuilder &sleep(int32_t Micros);

private:
  IrBuilder &emit(Instr I);
  IrBuilder &emitBranch(Opcode Op, Reg A, Reg B, Label Target);

  Module &M;
  bool Building = false;
  StrId CurrentName;
  uint16_t CurrentRegs = 0;
  std::vector<Instr> Code;
  /// Label index -> bound pc (0xFFFFFFFF while unbound).
  std::vector<uint32_t> LabelPcs;
  /// (instruction pc, label index) fixups resolved at endMethod().
  std::vector<std::pair<uint32_t, uint32_t>> Fixups;
};

} // namespace cafa

#endif // CAFA_IR_IRBUILDER_H
