//===- ir/Verifier.h - Static module checking ------------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static verification of mini-Dalvik modules before interpretation:
/// register indices within frames, branch targets within method bodies,
/// id operands within module tables, and no fall-through off a method
/// end.  Application models are hand-built, so catching malformed code at
/// load time keeps interpreter faults from masquerading as race bugs.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_IR_VERIFIER_H
#define CAFA_IR_VERIFIER_H

#include "ir/Module.h"
#include "support/Status.h"

namespace cafa {

/// Verifies every method in \p M; returns the first problem found.
Status verifyModule(const Module &M);

/// Verifies a single method of \p M.
Status verifyMethod(const Module &M, MethodId Method);

} // namespace cafa

#endif // CAFA_IR_VERIFIER_H
