//===- ir/Instr.h - Mini-Dalvik instruction set ----------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-Dalvik instruction set executed by the runtime simulator.
///
/// This is a register machine deliberately shaped like the Dalvik subset
/// the paper instruments (Section 5.3): the i-get-object / i-put-object /
/// s-get-object / s-put-object family whose null writes are *frees*, the
/// dereferencing instructions (field access and virtual invoke), and the
/// three pointer-testing branches if-eqz / if-nez / if-eq that drive the
/// if-guard heuristic.  On top of that it has the concurrency operations
/// of the Android programming model: fork/join, monitor wait/notify,
/// lock enter/exit, event send (with delay) and sendAtFront, listener
/// register, and Binder RPC.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_IR_INSTR_H
#define CAFA_IR_INSTR_H

#include "support/Ids.h"

#include <cstdint>

namespace cafa {

/// Register index within a method frame.  Register 0xFF is the "no
/// register" sentinel for optional operands.
using Reg = uint8_t;
constexpr Reg NoReg = 0xFF;

/// Mini-Dalvik opcodes.  Operand meaning is documented per opcode using
/// the Instr field names A, B (registers), Imm (signed immediate /
/// branch offset / delay), Ref and Aux (ids into module tables).
enum class Opcode : uint8_t {
  /// No operation (padding; keeps pc layouts stable in tests).
  Nop,
  /// A <- null.
  ConstNull,
  /// A <- Imm (scalar).
  ConstInt,
  /// A <- B (any value).
  Move,
  /// A <- new object of class Ref.
  NewInstance,
  /// A <- B.field[Ref]; object-pointer read, dereferences B.
  IGetObject,
  /// A.field[Ref] <- B; object-pointer write, dereferences A.  Writing
  /// null is a *free*, writing an object is an *allocation*.
  IPutObject,
  /// A <- static object field Ref (pointer read, no dereference).
  SGetObject,
  /// static object field Ref <- A (pointer write).
  SPutObject,
  /// A <- B.field[Ref]; scalar read, dereferences B.
  IGet,
  /// A.field[Ref] <- B; scalar write, dereferences A.
  IPut,
  /// A <- static scalar field Ref.
  SGet,
  /// static scalar field Ref <- A.
  SPut,
  /// Virtual call of method Ref on receiver A (dereferences A; callee
  /// sees the receiver in its v0).  B optionally passes one extra object
  /// argument (callee v1).
  InvokeVirtual,
  /// Static call of method Ref; A optionally passes one object argument
  /// (callee v0).
  InvokeStatic,
  /// Return from the current method.
  ReturnVoid,
  /// Branch by Imm (relative to this pc) if object in A is null.
  IfEqz,
  /// Branch by Imm if object in A is non-null.
  IfNez,
  /// Branch by Imm if objects in A and B are the same reference.
  IfEq,
  /// Branch by Imm if scalar in A is zero.  This is the boolean-flag
  /// test the if-guard heuristic cannot see (Type II false positives).
  IfIntEqz,
  /// Branch by Imm if scalar in A is nonzero.
  IfIntNez,
  /// Unconditional branch by Imm.
  Goto,
  /// A <- B + Imm (scalar arithmetic for workloads).
  AddInt,
  /// Acquire lock Ref (lockset only; no happens-before edge).
  MonitorEnter,
  /// Release lock Ref.
  MonitorExit,
  /// Block on monitor Ref until notified.
  WaitMonitor,
  /// Wake one waiter of monitor Ref.
  NotifyMonitor,
  /// Fork a thread running method Ref; A receives the thread handle;
  /// B optionally passes one object argument (thread v0).
  ForkThread,
  /// Join the thread whose handle is in A.
  JoinThread,
  /// Enqueue an event on queue Aux running handler Ref after Imm ms;
  /// A optionally passes one object argument (handler v0).
  SendEvent,
  /// Enqueue an event at the *front* of queue Aux running handler Ref;
  /// A optionally passes one object argument.  No delay (Android's
  /// sendMessageAtFrontOfQueue takes none).
  SendEventAtFront,
  /// Register handler Aux for listener slot Ref; A optionally captures
  /// one object argument delivered to the handler.
  RegisterListener,
  /// Fire listener slot Ref: enqueue an event on the queue recorded at
  /// registration that performs the registered handler.
  TriggerListener,
  /// Asynchronous Binder RPC: run method Ref in process Aux on a fresh
  /// IPC thread; A optionally passes one object argument.
  BinderCall,
  /// Write one message into pipe Ref; A optionally passes one object
  /// with the message.  Each message carries a unique transaction id so
  /// the analyzer can correlate it with the matching read (Section 5.2).
  PipeWrite,
  /// Blocking read of one message from pipe Ref; A optionally receives
  /// the passed object.
  PipeRead,
  /// Enqueue an event on queue Aux running handler Ref once absolute
  /// simulated time Imm (milliseconds) is reached; A optionally passes
  /// one object argument.  Android's sendMessageAtTime; the runtime
  /// converts it to the equivalent delay at send time.
  SendEventAtTime,
  /// Burn Imm units of interpreter work (models computation; costs both
  /// simulated time and host CPU).
  Work,
  /// Advance simulated time by Imm microseconds at negligible host cost
  /// (models a blocking sleep/poll; threads use it to schedule their
  /// actions on the scenario timeline).
  Sleep,
};

/// Number of opcodes (for dispatch tables and verification).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Sleep) + 1;

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// One mini-Dalvik instruction.
struct Instr {
  Opcode Op = Opcode::Nop;
  Reg A = NoReg;
  Reg B = NoReg;
  /// Signed immediate: branch offset (relative), delay ms, constant, or
  /// work amount, depending on Op.
  int32_t Imm = 0;
  /// Primary id operand (field, method, class, lock, monitor, listener).
  uint32_t Ref = 0;
  /// Secondary id operand (queue or process).
  uint32_t Aux = 0;
};

/// Returns true for opcodes that use Imm as a pc-relative branch offset.
bool isBranch(Opcode Op);

/// Returns true for the pointer-testing branches the if-guard heuristic
/// logs (if-eqz / if-nez / if-eq).
bool isGuardBranch(Opcode Op);

/// Returns true if execution cannot fall through this opcode.
bool isTerminator(Opcode Op);

} // namespace cafa

#endif // CAFA_IR_INSTR_H
