//===- ir/Verifier.cpp - Static module checking ----------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "support/Format.h"

using namespace cafa;

namespace {

/// Context for diagnosing one method.
struct MethodChecker {
  const Module &M;
  MethodId Method;
  const MethodDef &Def;

  Status fail(uint32_t Pc, const char *What) const {
    return Status::error(formatString(
        "method '%s' pc %u (%s): %s", M.methodName(Method).c_str(), Pc,
        opcodeName(Def.Code[Pc].Op), What));
  }

  bool regOk(Reg R) const { return R != NoReg && R < Def.NumRegs; }
  bool optRegOk(Reg R) const { return R == NoReg || R < Def.NumRegs; }

  Status check() const;
  Status checkInstr(uint32_t Pc, const Instr &I) const;
};

Status MethodChecker::check() const {
  if (Def.Code.empty())
    return Status::error(formatString("method '%s' has no code",
                                      M.methodName(Method).c_str()));
  if (!isTerminator(Def.Code.back().Op))
    return fail(static_cast<uint32_t>(Def.Code.size() - 1),
                "method may fall off its end");
  for (uint32_t Pc = 0, E = static_cast<uint32_t>(Def.Code.size()); Pc != E;
       ++Pc) {
    if (Status S = checkInstr(Pc, Def.Code[Pc]); !S.ok())
      return S;
  }
  return Status::success();
}

Status MethodChecker::checkInstr(uint32_t Pc, const Instr &I) const {
  // Branch target bounds.
  if (isBranch(I.Op)) {
    int64_t Target = static_cast<int64_t>(Pc) + I.Imm;
    if (Target < 0 || Target > static_cast<int64_t>(Def.Code.size()))
      return fail(Pc, "branch target out of range");
    if (I.Imm == 0)
      return fail(Pc, "branch to itself would not terminate");
  }

  switch (I.Op) {
  case Opcode::Nop:
  case Opcode::ReturnVoid:
    break;
  case Opcode::ConstNull:
  case Opcode::ConstInt:
    if (!regOk(I.A))
      return fail(Pc, "destination register out of range");
    break;
  case Opcode::Move:
  case Opcode::AddInt:
    if (!regOk(I.A) || !regOk(I.B))
      return fail(Pc, "register out of range");
    break;
  case Opcode::NewInstance:
    if (!regOk(I.A))
      return fail(Pc, "destination register out of range");
    if (I.Ref >= M.numClasses())
      return fail(Pc, "unknown class");
    break;
  case Opcode::IGetObject:
  case Opcode::IGet:
    if (!regOk(I.A) || !regOk(I.B))
      return fail(Pc, "register out of range");
    if (I.Ref >= M.numFields())
      return fail(Pc, "unknown field");
    if (M.fieldDef(FieldId(I.Ref)).IsStatic)
      return fail(Pc, "instance access to a static field");
    if (M.fieldDef(FieldId(I.Ref)).IsObject !=
        (I.Op == Opcode::IGetObject))
      return fail(Pc, "field kind mismatch (object vs scalar)");
    break;
  case Opcode::IPutObject:
  case Opcode::IPut:
    if (!regOk(I.A) || !regOk(I.B))
      return fail(Pc, "register out of range");
    if (I.Ref >= M.numFields())
      return fail(Pc, "unknown field");
    if (M.fieldDef(FieldId(I.Ref)).IsStatic)
      return fail(Pc, "instance access to a static field");
    if (M.fieldDef(FieldId(I.Ref)).IsObject !=
        (I.Op == Opcode::IPutObject))
      return fail(Pc, "field kind mismatch (object vs scalar)");
    break;
  case Opcode::SGetObject:
  case Opcode::SPutObject:
  case Opcode::SGet:
  case Opcode::SPut:
    if (!regOk(I.A))
      return fail(Pc, "register out of range");
    if (I.Ref >= M.numFields())
      return fail(Pc, "unknown field");
    if (!M.fieldDef(FieldId(I.Ref)).IsStatic)
      return fail(Pc, "static access to an instance field");
    if (M.fieldDef(FieldId(I.Ref)).IsObject !=
        (I.Op == Opcode::SGetObject || I.Op == Opcode::SPutObject))
      return fail(Pc, "field kind mismatch (object vs scalar)");
    break;
  case Opcode::InvokeVirtual:
    if (!regOk(I.A) || !optRegOk(I.B))
      return fail(Pc, "register out of range");
    if (I.Ref >= M.numMethods())
      return fail(Pc, "unknown callee");
    break;
  case Opcode::InvokeStatic:
    if (!optRegOk(I.A))
      return fail(Pc, "register out of range");
    if (I.Ref >= M.numMethods())
      return fail(Pc, "unknown callee");
    break;
  case Opcode::IfEqz:
  case Opcode::IfNez:
  case Opcode::IfIntEqz:
  case Opcode::IfIntNez:
    if (!regOk(I.A))
      return fail(Pc, "register out of range");
    break;
  case Opcode::IfEq:
    if (!regOk(I.A) || !regOk(I.B))
      return fail(Pc, "register out of range");
    break;
  case Opcode::Goto:
    break;
  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
    if (I.Ref >= M.numLocks())
      return fail(Pc, "unknown lock");
    break;
  case Opcode::WaitMonitor:
  case Opcode::NotifyMonitor:
    if (I.Ref >= M.numMonitors())
      return fail(Pc, "unknown monitor");
    break;
  case Opcode::ForkThread:
    if (!regOk(I.A) || !optRegOk(I.B))
      return fail(Pc, "register out of range");
    if (I.Ref >= M.numMethods())
      return fail(Pc, "unknown thread body method");
    break;
  case Opcode::JoinThread:
    if (!regOk(I.A))
      return fail(Pc, "register out of range");
    break;
  case Opcode::SendEvent:
  case Opcode::SendEventAtTime:
    if (I.Imm < 0)
      return fail(Pc, I.Op == Opcode::SendEvent
                          ? "negative event delay"
                          : "negative absolute event time");
    [[fallthrough]];
  case Opcode::SendEventAtFront:
    if (!optRegOk(I.A))
      return fail(Pc, "argument register out of range");
    if (I.Ref >= M.numMethods())
      return fail(Pc, "unknown event handler");
    if (I.Aux >= M.numQueues())
      return fail(Pc, "unknown event queue");
    break;
  case Opcode::RegisterListener:
    if (!optRegOk(I.A))
      return fail(Pc, "argument register out of range");
    if (I.Ref >= M.numListeners())
      return fail(Pc, "unknown listener");
    if (I.Aux >= M.numMethods())
      return fail(Pc, "unknown listener handler");
    break;
  case Opcode::TriggerListener:
    if (I.Ref >= M.numListeners())
      return fail(Pc, "unknown listener");
    break;
  case Opcode::BinderCall:
    if (!optRegOk(I.A))
      return fail(Pc, "argument register out of range");
    if (I.Ref >= M.numMethods())
      return fail(Pc, "unknown remote method");
    if (I.Aux >= M.numProcesses())
      return fail(Pc, "unknown target process");
    break;
  case Opcode::PipeWrite:
  case Opcode::PipeRead:
    if (!optRegOk(I.A))
      return fail(Pc, "register out of range");
    if (I.Ref >= M.numPipes())
      return fail(Pc, "unknown pipe");
    break;
  case Opcode::Work:
    if (I.Imm < 0)
      return fail(Pc, "negative work amount");
    break;
  case Opcode::Sleep:
    if (I.Imm < 0)
      return fail(Pc, "negative sleep duration");
    break;
  }
  return Status::success();
}

} // namespace

Status cafa::verifyMethod(const Module &M, MethodId Method) {
  MethodChecker Checker{M, Method, M.methodDef(Method)};
  return Checker.check();
}

Status cafa::verifyModule(const Module &M) {
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.numMethods()); I != E;
       ++I) {
    if (Status S = verifyMethod(M, MethodId(I)); !S.ok())
      return S;
  }
  // Every queue must live in a declared process.
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.numQueues()); I != E;
       ++I) {
    const QueueDef &Q = M.queueDef(QueueId(I));
    if (!Q.Process.isValid() || Q.Process.index() >= M.numProcesses())
      return Status::error(
          formatString("queue %u has no valid owning process", I));
  }
  // Every listener must deliver to a declared queue.
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.numListeners()); I != E;
       ++I) {
    const ListenerDef &L = M.listenerDef(ListenerId(I));
    if (!L.DeliveryQueue.isValid() ||
        L.DeliveryQueue.index() >= M.numQueues())
      return Status::error(
          formatString("listener %u has no valid delivery queue", I));
  }
  return Status::success();
}
