//===- ir/Module.cpp - Mini-Dalvik program container ------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "support/Format.h"

using namespace cafa;

std::string Module::methodName(MethodId Id) const {
  if (!Id.isValid() || Id.index() >= Methods.size())
    return "<invalid method>";
  const MethodDef &Def = Methods[Id.index()];
  if (Def.Name.isValid())
    return Names.str(Def.Name);
  return formatString("<method %u>", Id.value());
}
