//===- ir/IrBuilder.cpp - Method construction helper ----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/IrBuilder.h"

using namespace cafa;

IrBuilder &IrBuilder::beginMethod(std::string_view Name, uint16_t NumRegs) {
  assert(!Building && "beginMethod while another method is open");
  Building = true;
  CurrentName = M.names().intern(Name);
  CurrentRegs = NumRegs;
  Code.clear();
  LabelPcs.clear();
  Fixups.clear();
  return *this;
}

MethodId IrBuilder::endMethod() {
  assert(Building && "endMethod without beginMethod");
  // Methods must not fall off the end; append a return when the last
  // instruction can fall through (or the body is empty).
  if (Code.empty() || !isTerminator(Code.back().Op))
    returnVoid();

  for (auto [Pc, LabelIndex] : Fixups) {
    assert(LabelIndex < LabelPcs.size() && "fixup references unknown label");
    uint32_t Target = LabelPcs[LabelIndex];
    assert(Target != 0xFFFFFFFFu && "branch to a label that was never bound");
    Code[Pc].Imm = static_cast<int32_t>(Target) - static_cast<int32_t>(Pc);
  }

  MethodDef Def;
  Def.Name = CurrentName;
  Def.NumRegs = CurrentRegs;
  Def.Code = std::move(Code);
  Building = false;
  Code.clear();
  return M.addMethod(std::move(Def));
}

Label IrBuilder::newLabel() {
  LabelPcs.push_back(0xFFFFFFFFu);
  return Label(static_cast<uint32_t>(LabelPcs.size() - 1));
}

IrBuilder &IrBuilder::bind(Label L) {
  assert(L.Index < LabelPcs.size() && "binding an unknown label");
  assert(LabelPcs[L.Index] == 0xFFFFFFFFu && "label bound twice");
  LabelPcs[L.Index] = nextPc();
  return *this;
}

IrBuilder &IrBuilder::emit(Instr I) {
  assert(Building && "emitting outside beginMethod/endMethod");
  Code.push_back(I);
  return *this;
}

IrBuilder &IrBuilder::emitBranch(Opcode Op, Reg A, Reg B, Label Target) {
  assert(Target.Index < LabelPcs.size() && "branch to an unknown label");
  Fixups.emplace_back(nextPc(), Target.Index);
  Instr I;
  I.Op = Op;
  I.A = A;
  I.B = B;
  return emit(I);
}

IrBuilder &IrBuilder::nop() { return emit({}); }

IrBuilder &IrBuilder::constNull(Reg Dst) {
  Instr I;
  I.Op = Opcode::ConstNull;
  I.A = Dst;
  return emit(I);
}

IrBuilder &IrBuilder::constInt(Reg Dst, int32_t Value) {
  Instr I;
  I.Op = Opcode::ConstInt;
  I.A = Dst;
  I.Imm = Value;
  return emit(I);
}

IrBuilder &IrBuilder::move(Reg Dst, Reg Src) {
  Instr I;
  I.Op = Opcode::Move;
  I.A = Dst;
  I.B = Src;
  return emit(I);
}

IrBuilder &IrBuilder::newInstance(Reg Dst, ClassId Class) {
  Instr I;
  I.Op = Opcode::NewInstance;
  I.A = Dst;
  I.Ref = Class.value();
  return emit(I);
}

IrBuilder &IrBuilder::igetObject(Reg Dst, Reg Receiver, FieldId Field) {
  Instr I;
  I.Op = Opcode::IGetObject;
  I.A = Dst;
  I.B = Receiver;
  I.Ref = Field.value();
  return emit(I);
}

IrBuilder &IrBuilder::iputObject(Reg Receiver, FieldId Field, Reg Src) {
  Instr I;
  I.Op = Opcode::IPutObject;
  I.A = Receiver;
  I.B = Src;
  I.Ref = Field.value();
  return emit(I);
}

IrBuilder &IrBuilder::sgetObject(Reg Dst, FieldId Field) {
  Instr I;
  I.Op = Opcode::SGetObject;
  I.A = Dst;
  I.Ref = Field.value();
  return emit(I);
}

IrBuilder &IrBuilder::sputObject(FieldId Field, Reg Src) {
  Instr I;
  I.Op = Opcode::SPutObject;
  I.A = Src;
  I.Ref = Field.value();
  return emit(I);
}

IrBuilder &IrBuilder::iget(Reg Dst, Reg Receiver, FieldId Field) {
  Instr I;
  I.Op = Opcode::IGet;
  I.A = Dst;
  I.B = Receiver;
  I.Ref = Field.value();
  return emit(I);
}

IrBuilder &IrBuilder::iput(Reg Receiver, FieldId Field, Reg Src) {
  Instr I;
  I.Op = Opcode::IPut;
  I.A = Receiver;
  I.B = Src;
  I.Ref = Field.value();
  return emit(I);
}

IrBuilder &IrBuilder::sget(Reg Dst, FieldId Field) {
  Instr I;
  I.Op = Opcode::SGet;
  I.A = Dst;
  I.Ref = Field.value();
  return emit(I);
}

IrBuilder &IrBuilder::sput(FieldId Field, Reg Src) {
  Instr I;
  I.Op = Opcode::SPut;
  I.A = Src;
  I.Ref = Field.value();
  return emit(I);
}

IrBuilder &IrBuilder::addInt(Reg Dst, Reg Src, int32_t Imm) {
  Instr I;
  I.Op = Opcode::AddInt;
  I.A = Dst;
  I.B = Src;
  I.Imm = Imm;
  return emit(I);
}

IrBuilder &IrBuilder::invokeVirtual(Reg Receiver, MethodId Callee, Reg Arg) {
  Instr I;
  I.Op = Opcode::InvokeVirtual;
  I.A = Receiver;
  I.B = Arg;
  I.Ref = Callee.value();
  return emit(I);
}

IrBuilder &IrBuilder::invokeStatic(MethodId Callee, Reg Arg) {
  Instr I;
  I.Op = Opcode::InvokeStatic;
  I.A = Arg;
  I.Ref = Callee.value();
  return emit(I);
}

IrBuilder &IrBuilder::returnVoid() {
  Instr I;
  I.Op = Opcode::ReturnVoid;
  return emit(I);
}

IrBuilder &IrBuilder::ifEqz(Reg Obj, Label Target) {
  return emitBranch(Opcode::IfEqz, Obj, NoReg, Target);
}

IrBuilder &IrBuilder::ifNez(Reg Obj, Label Target) {
  return emitBranch(Opcode::IfNez, Obj, NoReg, Target);
}

IrBuilder &IrBuilder::ifEq(Reg ObjA, Reg ObjB, Label Target) {
  return emitBranch(Opcode::IfEq, ObjA, ObjB, Target);
}

IrBuilder &IrBuilder::ifIntEqz(Reg Scalar, Label Target) {
  return emitBranch(Opcode::IfIntEqz, Scalar, NoReg, Target);
}

IrBuilder &IrBuilder::ifIntNez(Reg Scalar, Label Target) {
  return emitBranch(Opcode::IfIntNez, Scalar, NoReg, Target);
}

IrBuilder &IrBuilder::gotoLabel(Label Target) {
  return emitBranch(Opcode::Goto, NoReg, NoReg, Target);
}

IrBuilder &IrBuilder::monitorEnter(LockId Lock) {
  Instr I;
  I.Op = Opcode::MonitorEnter;
  I.Ref = Lock.value();
  return emit(I);
}

IrBuilder &IrBuilder::monitorExit(LockId Lock) {
  Instr I;
  I.Op = Opcode::MonitorExit;
  I.Ref = Lock.value();
  return emit(I);
}

IrBuilder &IrBuilder::waitMonitor(MonitorId Monitor) {
  Instr I;
  I.Op = Opcode::WaitMonitor;
  I.Ref = Monitor.value();
  return emit(I);
}

IrBuilder &IrBuilder::notifyMonitor(MonitorId Monitor) {
  Instr I;
  I.Op = Opcode::NotifyMonitor;
  I.Ref = Monitor.value();
  return emit(I);
}

IrBuilder &IrBuilder::forkThread(Reg HandleDst, MethodId Body, Reg Arg) {
  Instr I;
  I.Op = Opcode::ForkThread;
  I.A = HandleDst;
  I.B = Arg;
  I.Ref = Body.value();
  return emit(I);
}

IrBuilder &IrBuilder::joinThread(Reg Handle) {
  Instr I;
  I.Op = Opcode::JoinThread;
  I.A = Handle;
  return emit(I);
}

IrBuilder &IrBuilder::sendEvent(QueueId Queue, MethodId Handler,
                                int32_t DelayMs, Reg Arg) {
  assert(DelayMs >= 0 && "event delay cannot be negative");
  Instr I;
  I.Op = Opcode::SendEvent;
  I.A = Arg;
  I.Imm = DelayMs;
  I.Ref = Handler.value();
  I.Aux = Queue.value();
  return emit(I);
}

IrBuilder &IrBuilder::sendEventAtFront(QueueId Queue, MethodId Handler,
                                       Reg Arg) {
  Instr I;
  I.Op = Opcode::SendEventAtFront;
  I.A = Arg;
  I.Ref = Handler.value();
  I.Aux = Queue.value();
  return emit(I);
}

IrBuilder &IrBuilder::registerListener(ListenerId Listener, MethodId Handler,
                                       Reg Arg) {
  Instr I;
  I.Op = Opcode::RegisterListener;
  I.A = Arg;
  I.Ref = Listener.value();
  I.Aux = Handler.value();
  return emit(I);
}

IrBuilder &IrBuilder::triggerListener(ListenerId Listener) {
  Instr I;
  I.Op = Opcode::TriggerListener;
  I.Ref = Listener.value();
  return emit(I);
}

IrBuilder &IrBuilder::binderCall(ProcessId Target, MethodId Remote, Reg Arg) {
  Instr I;
  I.Op = Opcode::BinderCall;
  I.A = Arg;
  I.Ref = Remote.value();
  I.Aux = Target.value();
  return emit(I);
}

IrBuilder &IrBuilder::pipeWrite(PipeId Pipe, Reg Arg) {
  Instr I;
  I.Op = Opcode::PipeWrite;
  I.A = Arg;
  I.Ref = Pipe.value();
  return emit(I);
}

IrBuilder &IrBuilder::pipeRead(PipeId Pipe, Reg Dst) {
  Instr I;
  I.Op = Opcode::PipeRead;
  I.A = Dst;
  I.Ref = Pipe.value();
  return emit(I);
}

IrBuilder &IrBuilder::sendEventAtTime(QueueId Queue, MethodId Handler,
                                      int32_t AtMillis, Reg Arg) {
  assert(AtMillis >= 0 && "absolute event time cannot be negative");
  Instr I;
  I.Op = Opcode::SendEventAtTime;
  I.A = Arg;
  I.Imm = AtMillis;
  I.Ref = Handler.value();
  I.Aux = Queue.value();
  return emit(I);
}

IrBuilder &IrBuilder::work(int32_t Units) {
  assert(Units >= 0 && "work units cannot be negative");
  Instr I;
  I.Op = Opcode::Work;
  I.Imm = Units;
  return emit(I);
}

IrBuilder &IrBuilder::sleep(int32_t Micros) {
  assert(Micros >= 0 && "sleep duration cannot be negative");
  Instr I;
  I.Op = Opcode::Sleep;
  I.Imm = Micros;
  return emit(I);
}
