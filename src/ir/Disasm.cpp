//===- ir/Disasm.cpp - Mini-Dalvik disassembler -----------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "ir/Disasm.h"

#include "support/Format.h"

#include <sstream>

using namespace cafa;

static std::string regName(Reg R) {
  if (R == NoReg)
    return "-";
  return formatString("v%u", R);
}

static std::string fieldName(const Module &M, uint32_t Ref) {
  if (Ref >= M.numFields())
    return formatString("<field %u>", Ref);
  return M.names().str(M.fieldDef(FieldId(Ref)).Name);
}

std::string cafa::disassembleInstr(const Module &M, const Instr &I,
                                   uint32_t Pc) {
  const char *Name = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::Nop:
  case Opcode::ReturnVoid:
    return Name;
  case Opcode::ConstNull:
    return formatString("%s %s", Name, regName(I.A).c_str());
  case Opcode::ConstInt:
    return formatString("%s %s, #%d", Name, regName(I.A).c_str(), I.Imm);
  case Opcode::Move:
  case Opcode::AddInt:
    return formatString("%s %s, %s%s", Name, regName(I.A).c_str(),
                        regName(I.B).c_str(),
                        I.Op == Opcode::AddInt
                            ? formatString(", #%d", I.Imm).c_str()
                            : "");
  case Opcode::NewInstance:
    return formatString("%s %s, %s", Name, regName(I.A).c_str(),
                        M.names().str(M.classDef(ClassId(I.Ref)).Name)
                            .c_str());
  case Opcode::IGetObject:
  case Opcode::IGet:
    return formatString("%s %s <- %s.%s", Name, regName(I.A).c_str(),
                        regName(I.B).c_str(), fieldName(M, I.Ref).c_str());
  case Opcode::IPutObject:
  case Opcode::IPut:
    return formatString("%s %s.%s <- %s", Name, regName(I.A).c_str(),
                        fieldName(M, I.Ref).c_str(), regName(I.B).c_str());
  case Opcode::SGetObject:
  case Opcode::SGet:
    return formatString("%s %s <- %s", Name, regName(I.A).c_str(),
                        fieldName(M, I.Ref).c_str());
  case Opcode::SPutObject:
  case Opcode::SPut:
    return formatString("%s %s <- %s", Name, fieldName(M, I.Ref).c_str(),
                        regName(I.A).c_str());
  case Opcode::InvokeVirtual:
    return formatString("%s %s.%s(%s)", Name, regName(I.A).c_str(),
                        M.methodName(MethodId(I.Ref)).c_str(),
                        regName(I.B).c_str());
  case Opcode::InvokeStatic:
    return formatString("%s %s(%s)", Name,
                        M.methodName(MethodId(I.Ref)).c_str(),
                        regName(I.A).c_str());
  case Opcode::IfEqz:
  case Opcode::IfNez:
  case Opcode::IfIntEqz:
  case Opcode::IfIntNez:
    return formatString("%s %s, -> %d", Name, regName(I.A).c_str(),
                        static_cast<int32_t>(Pc) + I.Imm);
  case Opcode::IfEq:
    return formatString("%s %s, %s, -> %d", Name, regName(I.A).c_str(),
                        regName(I.B).c_str(),
                        static_cast<int32_t>(Pc) + I.Imm);
  case Opcode::Goto:
    return formatString("%s -> %d", Name, static_cast<int32_t>(Pc) + I.Imm);
  case Opcode::MonitorEnter:
  case Opcode::MonitorExit:
    return formatString("%s %s", Name,
                        M.names().str(M.lockDef(LockId(I.Ref)).Name)
                            .c_str());
  case Opcode::WaitMonitor:
  case Opcode::NotifyMonitor:
    return formatString("%s %s", Name,
                        M.names().str(M.monitorDef(MonitorId(I.Ref)).Name)
                            .c_str());
  case Opcode::ForkThread:
    return formatString("%s %s <- %s(%s)", Name, regName(I.A).c_str(),
                        M.methodName(MethodId(I.Ref)).c_str(),
                        regName(I.B).c_str());
  case Opcode::JoinThread:
    return formatString("%s %s", Name, regName(I.A).c_str());
  case Opcode::SendEvent:
    return formatString("%s %s.%s delay=%dms (%s)", Name,
                        M.names().str(M.queueDef(QueueId(I.Aux)).Name)
                            .c_str(),
                        M.methodName(MethodId(I.Ref)).c_str(), I.Imm,
                        regName(I.A).c_str());
  case Opcode::SendEventAtFront:
    return formatString("%s %s.%s (%s)", Name,
                        M.names().str(M.queueDef(QueueId(I.Aux)).Name)
                            .c_str(),
                        M.methodName(MethodId(I.Ref)).c_str(),
                        regName(I.A).c_str());
  case Opcode::RegisterListener:
    return formatString("%s %s -> %s (%s)", Name,
                        M.names()
                            .str(M.listenerDef(ListenerId(I.Ref)).Name)
                            .c_str(),
                        M.methodName(MethodId(I.Aux)).c_str(),
                        regName(I.A).c_str());
  case Opcode::TriggerListener:
    return formatString("%s %s", Name,
                        M.names()
                            .str(M.listenerDef(ListenerId(I.Ref)).Name)
                            .c_str());
  case Opcode::BinderCall:
    return formatString("%s %s::%s(%s)", Name,
                        M.names()
                            .str(M.processDef(ProcessId(I.Aux)).Name)
                            .c_str(),
                        M.methodName(MethodId(I.Ref)).c_str(),
                        regName(I.A).c_str());
  case Opcode::PipeWrite:
  case Opcode::PipeRead:
    return formatString("%s %s (%s)", Name,
                        M.names().str(M.pipeDef(PipeId(I.Ref)).Name)
                            .c_str(),
                        regName(I.A).c_str());
  case Opcode::SendEventAtTime:
    return formatString("%s %s.%s at=%dms (%s)", Name,
                        M.names().str(M.queueDef(QueueId(I.Aux)).Name)
                            .c_str(),
                        M.methodName(MethodId(I.Ref)).c_str(), I.Imm,
                        regName(I.A).c_str());
  case Opcode::Work:
    return formatString("%s #%d", Name, I.Imm);
  case Opcode::Sleep:
    return formatString("%s #%dus", Name, I.Imm);
  }
  return Name;
}

std::string cafa::disassembleMethod(const Module &M, MethodId Method) {
  const MethodDef &Def = M.methodDef(Method);
  std::ostringstream OS;
  OS << "method " << M.methodName(Method) << " (regs=" << Def.NumRegs
     << "):\n";
  for (uint32_t Pc = 0, E = static_cast<uint32_t>(Def.Code.size()); Pc != E;
       ++Pc)
    OS << formatString("  %4u: %s\n", Pc,
                       disassembleInstr(M, Def.Code[Pc], Pc).c_str());
  return OS.str();
}

std::string cafa::disassembleModule(const Module &M) {
  std::ostringstream OS;
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.numMethods()); I != E;
       ++I)
    OS << disassembleMethod(M, MethodId(I));
  return OS.str();
}
