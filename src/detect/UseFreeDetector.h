//===- detect/UseFreeDetector.h - The CAFA race detector -------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The use-free race detector of Section 4: candidate (use, free) pairs
/// on the same pointer cell that are unordered under the causality model,
/// with three suppression mechanisms -- lockset mutual exclusion (the
/// Section 3.2 stand-in for the removed unlock->lock edges), and the
/// if-guard and intra-event-allocation commutativity heuristics of
/// Section 4.3 (both applicable only between events of one looper).
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_DETECT_USEFREEDETECTOR_H
#define CAFA_DETECT_USEFREEDETECTOR_H

#include "detect/RaceReport.h"
#include "hb/HbIndex.h"

#include <functional>

namespace cafa {

/// Detector configuration (defaults reproduce the paper's tool).
struct DetectorOptions {
  /// Causality model construction.
  HbOptions Hb;
  /// Apply the if-guard commutativity heuristic.
  bool IfGuardFilter = true;
  /// Apply the intra-event-allocation commutativity heuristic.
  bool IntraEventAllocFilter = true;
  /// Suppress pairs protected by a common lock.
  bool LocksetFilter = true;
  /// Split non-(a) races into (b)/(c) by also running the conventional
  /// model (costs a second happens-before construction).
  bool Classify = true;
  /// Graceful degradation: when positive, a wall-clock budget in
  /// milliseconds for the candidate-pair scan, measured from detector
  /// entry.  The deadline is a two-rung ladder (docs/robustness.md):
  /// the first expiry sheds the lockset and if-guard filters for the
  /// rest of the scan -- cheaper per pair, strictly more races
  /// reported, never fewer -- flags the report Partial with
  /// PartialCause = "filters-shed", and extends the budget to 2x so
  /// the leaner scan can finish.  If even that expires (or no
  /// sheddable filter is enabled), the scan stops where it stands and
  /// PartialCause becomes "detect-deadline".  analyzeTrace treats
  /// DeadlineMillis as the *whole-pipeline* budget and hands the
  /// detector whatever the extract and happens-before phases left
  /// over.  0 = off.
  double DeadlineMillis = 0;
};

/// Everything needed to freeze the candidate-pair scan at a pair
/// boundary and restore it in another process.  The scan order
/// (Db.Uses outer, FreesByVar[use.var] inner) is deterministic, so a
/// cursor plus the accumulated races and counters resumes to exactly
/// the report an uninterrupted scan produces.
struct DetectFrontier {
  /// Next unprocessed pair: use index into Db.Uses, position into that
  /// use's FreesByVar list.  Everything lexicographically below has been
  /// scanned and is reflected in Races/Filters.
  uint32_t UseIdx = 0;
  uint32_t FreePos = 0;
  /// The deadline ladder's first rung had already shed the lockset and
  /// if-guard filters when this frontier was frozen; a resume continues
  /// with them shed (and the report flagged accordingly), so the
  /// resumed report equals the uninterrupted shed run's.
  bool FiltersShed = false;
  FilterCounters Filters;
  /// One reported race, keyed by the trace records of its first dynamic
  /// instance (stable across processes; the full PtrAccess is
  /// rehydrated from a freshly extracted AccessDb on resume).
  struct RaceEntry {
    uint32_t UseRecord = 0;
    uint32_t FreeRecord = 0;
    uint8_t Category = 0;
    uint32_t DynamicCount = 1;
  };
  std::vector<RaceEntry> Races;
};

/// Checkpoint hooks for the pair scan.  Save, when set, is called at
/// cadence ticks (EveryMillis of wall time since detector entry,
/// polled at the same ~4k-pair granularity as the deadline clock) and
/// always when the detect deadline cuts the scan.  Resume seeds the
/// scan from a saved frontier; the detector validates it against the
/// extracted accesses and sets ResumeAccepted, silently starting from
/// scratch on any mismatch (a stale frontier must degrade to a clean
/// run, never a wrong report).
struct DetectCheckpointing {
  double EveryMillis = 0;
  std::function<void(const DetectFrontier &)> Save;
  const DetectFrontier *Resume = nullptr;
  bool ResumeAccepted = false;
};

/// Runs the full CAFA pipeline on \p T: extract accesses, build the
/// causality model, detect and filter use-free races, classify.
RaceReport detectUseFreeRaces(const Trace &T, const DetectorOptions &Options);

/// Same, but reuses an already-extracted \p Db and built \p Hb (the
/// benchmarks time phases separately).  \p Ckpt, when non-null, enables
/// crash-safe checkpoint/resume of the pair scan (see
/// DetectCheckpointing).
RaceReport detectUseFreeRaces(const Trace &T, const TaskIndex &Index,
                              const AccessDb &Db, const HbIndex &Hb,
                              const DetectorOptions &Options,
                              DetectCheckpointing *Ckpt = nullptr);

/// Returns true if \p Use is proven safe by a guarded branch, per the
/// Figure 6 pc-interval rules.  Exposed for unit testing.
bool isUseIfGuarded(const Trace &T, const AccessDb &Db, const PtrAccess &Use);

} // namespace cafa

#endif // CAFA_DETECT_USEFREEDETECTOR_H
