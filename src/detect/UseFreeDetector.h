//===- detect/UseFreeDetector.h - The CAFA race detector -------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The use-free race detector of Section 4: candidate (use, free) pairs
/// on the same pointer cell that are unordered under the causality model,
/// with three suppression mechanisms -- lockset mutual exclusion (the
/// Section 3.2 stand-in for the removed unlock->lock edges), and the
/// if-guard and intra-event-allocation commutativity heuristics of
/// Section 4.3 (both applicable only between events of one looper).
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_DETECT_USEFREEDETECTOR_H
#define CAFA_DETECT_USEFREEDETECTOR_H

#include "detect/RaceReport.h"
#include "hb/HbIndex.h"

#include <functional>

namespace cafa {

/// Detector configuration (defaults reproduce the paper's tool).
struct DetectorOptions {
  /// Causality model construction.
  HbOptions Hb;
  /// Apply the if-guard commutativity heuristic.
  bool IfGuardFilter = true;
  /// Apply the intra-event-allocation commutativity heuristic.
  bool IntraEventAllocFilter = true;
  /// Suppress pairs protected by a common lock.
  bool LocksetFilter = true;
  /// Split non-(a) races into (b)/(c) by also running the conventional
  /// model (costs a second happens-before construction).
  bool Classify = true;
  /// Graceful degradation: when positive, a wall-clock budget in
  /// milliseconds for the candidate-pair scan, measured from detector
  /// entry.  The deadline is a two-rung ladder (docs/robustness.md):
  /// the first expiry sheds the lockset and if-guard filters for the
  /// rest of the scan -- cheaper per pair, strictly more races
  /// reported, never fewer -- flags the report Partial with
  /// PartialCause = "filters-shed", and extends the budget to 2x so
  /// the leaner scan can finish.  If even that expires (or no
  /// sheddable filter is enabled), the scan stops where it stands and
  /// PartialCause becomes "detect-deadline".  analyzeTrace treats
  /// DeadlineMillis as the *whole-pipeline* budget and hands the
  /// detector whatever the extract and happens-before phases left
  /// over.  0 = off.
  double DeadlineMillis = 0;
  /// Windowed streaming scan (docs/windowed-analysis.md).  0 = auto:
  /// the CAFA_WINDOW environment variable decides; when it is unset
  /// the batch scan runs, unless analyzeTrace sheds to the windowed
  /// scan under memory pressure.  WindowOff pins the batch scan
  /// regardless of the environment.  Any other value runs the
  /// windowed scan with retirement sweeps every WindowEvents records.
  /// The two scans emit byte-identical reports; the window trades
  /// resident overlay memory for a second extraction pass.
  uint64_t WindowEvents = 0;
  /// Sentinel for WindowEvents: never use the windowed scan.
  static constexpr uint64_t WindowOff = ~0ull;
};

/// Resolves DetectorOptions::WindowEvents with request > environment
/// (CAFA_WINDOW, a positive record count) > default (WindowOff)
/// precedence.
uint64_t resolveWindowEvents(uint64_t Requested);

/// Everything needed to freeze the candidate-pair scan at a pair
/// boundary and restore it in another process.  The scan order
/// (Db.Uses outer, FreesByVar[use.var] inner) is deterministic, so a
/// cursor plus the accumulated races and counters resumes to exactly
/// the report an uninterrupted scan produces.
struct DetectFrontier {
  /// Next unprocessed pair: use index into Db.Uses, position into that
  /// use's FreesByVar list.  Everything lexicographically below has been
  /// scanned and is reflected in Races/Filters.
  uint32_t UseIdx = 0;
  uint32_t FreePos = 0;
  /// The deadline ladder's first rung had already shed the lockset and
  /// if-guard filters when this frontier was frozen; a resume continues
  /// with them shed (and the report flagged accordingly), so the
  /// resumed report equals the uninterrupted shed run's.
  bool FiltersShed = false;
  FilterCounters Filters;
  /// One reported race, keyed by the trace records of its first dynamic
  /// instance (stable across processes; the full PtrAccess is
  /// rehydrated from a freshly extracted AccessDb on resume).
  struct RaceEntry {
    uint32_t UseRecord = 0;
    uint32_t FreeRecord = 0;
    uint8_t Category = 0;
    uint32_t DynamicCount = 1;
  };
  std::vector<RaceEntry> Races;
};

/// Checkpoint hooks for the pair scan.  Save, when set, is called at
/// cadence ticks (EveryMillis of wall time since detector entry,
/// polled at the same ~4k-pair granularity as the deadline clock) and
/// always when the detect deadline cuts the scan.  Resume seeds the
/// scan from a saved frontier; the detector validates it against the
/// extracted accesses and sets ResumeAccepted, silently starting from
/// scratch on any mismatch (a stale frontier must degrade to a clean
/// run, never a wrong report).
struct DetectCheckpointing {
  double EveryMillis = 0;
  std::function<void(const DetectFrontier &)> Save;
  const DetectFrontier *Resume = nullptr;
  bool ResumeAccepted = false;
};

/// Frozen state of the windowed streaming scan (WindowedScan.cpp) at a
/// pair boundary.  Unlike the batch DetectFrontier, races are not yet
/// committed when the scan freezes -- dedup and classification run once
/// at the end over the survivor set -- so the frontier carries the
/// surviving pairs instead, identified by their stable use/free
/// ordinals (positions in promotion/record order, identical across
/// processes by construction).
struct WindowedDetectFrontier {
  /// First record whose admitted pairs are not fully processed.
  uint32_t CursorRecord = 0;
  /// Pairs admitted at CursorRecord that were already processed (the
  /// within-record enumeration order -- retained-bucket insertion
  /// order -- is deterministic, so a count is a cursor).
  uint64_t PairsDoneAtCursor = 0;
  bool FiltersShed = false;
  FilterCounters Filters;
  /// One surviving pair.  Records and sites ride along for validation
  /// and for rebuilding the dedup key without the access bodies.
  struct SurvivorEntry {
    uint32_t UseOrd = 0, FreeOrd = 0;
    uint32_t UseRecord = 0, FreeRecord = 0;
    uint32_t UseMethod = 0, UsePc = 0, FreeMethod = 0, FreePc = 0;
    uint8_t SameLooper = 0;
  };
  std::vector<SurvivorEntry> Survivors;
};

/// Checkpoint hooks for the windowed scan; same contract as
/// DetectCheckpointing (cadence saves, save on deadline cut, validated
/// resume that silently restarts from scratch on mismatch).
struct WindowedDetectCheckpointing {
  double EveryMillis = 0;
  std::function<void(const WindowedDetectFrontier &)> Save;
  const WindowedDetectFrontier *Resume = nullptr;
  bool ResumeAccepted = false;
};

/// Observability counters of one windowed scan, surfaced in the
/// analyzer's stats block and the scaling bench.
struct WindowedDetectStats {
  /// Retirement sweep cadence actually used (records).
  uint64_t WindowEvents = 0;
  /// Chain count of the frontier reachability rows.
  uint32_t Chains = 0;
  /// Peak simultaneously-live reachability rows / their bytes.
  size_t ReachHighWaterRows = 0;
  size_t ReachHighWaterBytes = 0;
  /// Peak bytes of retained (not yet retired) accesses and branches.
  size_t RetainedHighWaterBytes = 0;
  /// Peak of the combined analysis overlay (rows + retained accesses),
  /// sampled at every insertion and sweep.
  size_t OverlayHighWaterBytes = 0;
  /// Extraction tallies.  The windowed path never materializes an
  /// AccessDb, so analyzeTrace fills its trace stats from these.
  uint64_t NumUses = 0, NumFrees = 0, NumAllocs = 0, NumBranches = 0;
  uint64_t UnmatchedReads = 0, UnmatchedDerefs = 0;
};

/// Windowed streaming detection over a *final* (post-fixpoint) \p Hb:
/// two extraction passes (a counting pre-pass deriving retention
/// horizons, then the scan itself), pairs evaluated as their later
/// access streams by, accesses retired once no future counterpart can
/// pair with them.  Emits a report byte-identical to the batch
/// detectUseFreeRaces at every window size -- the window is only the
/// retirement sweep cadence -- while never holding the full access
/// tables or a full reachability closure resident.  \p WindowEvents
/// must be a concrete cadence (not 0/WindowOff; callers resolve
/// first).  \p Index is only consulted for the conventional-model
/// classification pass.
RaceReport detectUseFreeRacesWindowed(
    const Trace &T, const TaskIndex &Index, const HbIndex &Hb,
    const DetectorOptions &Options, uint64_t WindowEvents,
    const DerefResolver *Resolver = nullptr,
    WindowedDetectStats *Stats = nullptr,
    WindowedDetectCheckpointing *Ckpt = nullptr);

/// Runs the full CAFA pipeline on \p T: extract accesses, build the
/// causality model, detect and filter use-free races, classify.
RaceReport detectUseFreeRaces(const Trace &T, const DetectorOptions &Options);

/// Same, but reuses an already-extracted \p Db and built \p Hb (the
/// benchmarks time phases separately).  \p Ckpt, when non-null, enables
/// crash-safe checkpoint/resume of the pair scan (see
/// DetectCheckpointing).
RaceReport detectUseFreeRaces(const Trace &T, const TaskIndex &Index,
                              const AccessDb &Db, const HbIndex &Hb,
                              const DetectorOptions &Options,
                              DetectCheckpointing *Ckpt = nullptr);

/// Returns true if \p Use is proven safe by a guarded branch, per the
/// Figure 6 pc-interval rules.  Exposed for unit testing.
bool isUseIfGuarded(const Trace &T, const AccessDb &Db, const PtrAccess &Use);

} // namespace cafa

#endif // CAFA_DETECT_USEFREEDETECTOR_H
