//===- detect/Accesses.cpp - Use/free/alloc extraction ----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/Accesses.h"

#include "detect/DerefDataflow.h"

#include <algorithm>
#include <unordered_map>

using namespace cafa;

namespace {

/// Information about a pointer read awaiting a matching dereference.
struct LastRead {
  uint32_t Record = 0;
  VarId Var;
  MethodId Method;
  uint32_t Pc = 0;
  uint64_t Frame = 0;
  std::vector<uint32_t> Lockset;
};

/// Per-task scan state.
struct TaskScan {
  std::vector<uint64_t> FrameStack;
  std::vector<uint32_t> LockStack;
  /// object id -> most recent pointer read producing it (heuristic
  /// matching; Section 5.3).
  std::unordered_map<uint64_t, LastRead> ReadsByObject;
  /// Per open frame: load pc -> most recent read at that pc (precise
  /// matching via the static resolver).
  std::vector<std::unordered_map<uint32_t, LastRead>> FrameReadsByPc;
};

/// Accumulates the streamed items into an AccessDb (the batch path).
class DbSink final : public AccessSink {
public:
  explicit DbSink(AccessDb &Db) : Db(Db) {}
  void onUse(PtrAccess Use, size_t) override {
    Db.Uses.push_back(std::move(Use));
  }
  void onFree(PtrAccess Free) override {
    Db.Frees.push_back(std::move(Free));
  }
  void onAlloc(PtrAccess Alloc) override {
    Db.Allocs.push_back(std::move(Alloc));
  }
  void onBranch(GuardBranch Br) override {
    Db.Branches.push_back(std::move(Br));
  }

private:
  AccessDb &Db;
};

} // namespace

AccessSink::~AccessSink() = default;

StreamExtractCounts cafa::streamAccesses(const Trace &T,
                                         const DerefResolver *Resolver,
                                         AccessSink &Sink) {
  std::vector<TaskScan> Scans(T.numTasks());
  // Read record indices already promoted (first dereference wins).
  std::unordered_map<uint32_t, size_t> UseByReadRecord;
  uint64_t TotalReads = 0;

  // Promotes \p LR to a use (first dereference wins).
  auto promoteUse = [&](const LastRead &LR, TaskId Task,
                        uint32_t DerefRecord) {
    if (UseByReadRecord.count(LR.Record))
      return;
    PtrAccess Use;
    Use.Record = LR.Record;
    Use.Task = Task;
    Use.Var = LR.Var;
    Use.Method = LR.Method;
    Use.Pc = LR.Pc;
    Use.Frame = LR.Frame;
    Use.DerefRecord = DerefRecord;
    Use.Lockset = LR.Lockset;
    size_t Ordinal = UseByReadRecord.size();
    UseByReadRecord.emplace(LR.Record, Ordinal);
    Sink.onUse(std::move(Use), Ordinal);
  };

  // Looks up the read matched by a querying site, preferring the static
  // resolution when available.  Returns nullptr when nothing matches.
  auto matchSite = [&](TaskScan &Scan, const TraceRecord &Rec,
                       uint64_t Object) -> const LastRead * {
    if (Resolver && Rec.Method.isValid() && !Scan.FrameReadsByPc.empty()) {
      int64_t LoadPc = Resolver->loadFor(Rec.Method, Rec.Pc);
      if (LoadPc != DerefResolver::Unresolved) {
        auto &FrameMap = Scan.FrameReadsByPc.back();
        auto It = FrameMap.find(static_cast<uint32_t>(LoadPc));
        if (It != FrameMap.end())
          return &It->second;
        // Statically resolved but dynamically absent (should not happen
        // for well-formed traces); fall through to the heuristic.
      }
    }
    auto It = Scan.ReadsByObject.find(Object);
    return It == Scan.ReadsByObject.end() ? nullptr : &It->second;
  };

  StreamExtractCounts Counts;
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
       ++I) {
    const TraceRecord &Rec = T.record(I);
    TaskScan &Scan = Scans[Rec.Task.index()];

    switch (Rec.Kind) {
    case OpKind::MethodEnter:
      Scan.FrameStack.push_back(Rec.frameId());
      Scan.FrameReadsByPc.emplace_back();
      break;
    case OpKind::MethodExit:
      if (!Scan.FrameStack.empty()) {
        Scan.FrameStack.pop_back();
        Scan.FrameReadsByPc.pop_back();
      }
      break;
    case OpKind::LockAcquire:
      Scan.LockStack.push_back(static_cast<uint32_t>(Rec.Arg0));
      break;
    case OpKind::LockRelease:
      if (!Scan.LockStack.empty())
        Scan.LockStack.pop_back();
      break;

    case OpKind::PtrRead: {
      uint64_t Obj = Rec.Arg1;
      if (Obj == 0)
        break; // a null read can never be dereferenced safely; skip
      ++TotalReads;
      LastRead LR;
      LR.Record = I;
      LR.Var = Rec.var();
      LR.Method = Rec.Method;
      LR.Pc = Rec.Pc;
      LR.Frame = Scan.FrameStack.empty() ? 0 : Scan.FrameStack.back();
      LR.Lockset = Scan.LockStack;
      std::sort(LR.Lockset.begin(), LR.Lockset.end());
      Sink.onPtrRead(I, Rec.Task, LR.Var, LR.Method, LR.Pc, LR.Frame,
                     LR.Lockset);
      if (!Scan.FrameReadsByPc.empty())
        Scan.FrameReadsByPc.back()[Rec.Pc] = LR;
      Scan.ReadsByObject[Obj] = std::move(LR);
      break;
    }

    case OpKind::PtrWrite: {
      PtrAccess Acc;
      Acc.Record = I;
      Acc.Task = Rec.Task;
      Acc.Var = Rec.var();
      Acc.Method = Rec.Method;
      Acc.Pc = Rec.Pc;
      Acc.Frame = Scan.FrameStack.empty() ? 0 : Scan.FrameStack.back();
      Acc.Lockset = Scan.LockStack;
      std::sort(Acc.Lockset.begin(), Acc.Lockset.end());
      if (Rec.isFree())
        Sink.onFree(std::move(Acc));
      else
        Sink.onAlloc(std::move(Acc));
      break;
    }

    case OpKind::Deref: {
      const LastRead *LR = matchSite(Scan, Rec, Rec.Arg0);
      if (!LR) {
        ++Counts.UnmatchedDerefs;
        break;
      }
      promoteUse(*LR, Rec.Task, I);
      break;
    }

    case OpKind::Branch: {
      GuardBranch Br;
      Br.Record = I;
      Br.Task = Rec.Task;
      Br.Kind = Rec.branchKind();
      Br.Method = Rec.Method;
      Br.Pc = Rec.Pc;
      Br.TargetPc = Rec.branchTargetPc();
      Br.Frame = Scan.FrameStack.empty() ? 0 : Scan.FrameStack.back();
      if (const LastRead *LR = matchSite(Scan, Rec, Rec.Arg1))
        Br.Var = LR->Var;
      Sink.onBranch(std::move(Br));
      break;
    }

    default:
      break;
    }
    if (!Sink.onRecordDone(I))
      break;
  }

  Counts.UnmatchedReads = TotalReads - UseByReadRecord.size();
  return Counts;
}

AccessDb cafa::extractAccesses(const Trace &T, const TaskIndex &Index,
                               const DerefResolver *Resolver) {
  (void)Index;
  AccessDb Db;
  DbSink Sink(Db);
  StreamExtractCounts Counts = streamAccesses(T, Resolver, Sink);
  Db.UnmatchedReads = Counts.UnmatchedReads;
  Db.UnmatchedDerefs = Counts.UnmatchedDerefs;
  return Db;
}
