//===- detect/UseFreeDetector.cpp - The CAFA race detector -------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/UseFreeDetector.h"

#include "support/Timer.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace cafa;

namespace {

/// Returns true if both tasks are events processed by the same looper
/// (the scope in which the commutativity heuristics apply).
bool sameLooperEvents(const Trace &T, TaskId A, TaskId B) {
  const TaskInfo &IA = T.taskInfo(A);
  const TaskInfo &IB = T.taskInfo(B);
  return IA.Kind == TaskKind::Event && IB.Kind == TaskKind::Event &&
         IA.Queue.isValid() && IA.Queue == IB.Queue;
}

/// Returns true if two sorted locksets share an element.
bool locksetsIntersect(const std::vector<uint32_t> &A,
                       const std::vector<uint32_t> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}

/// Figure 6: returns true if a use at \p UsePc is inside the region the
/// branch proves non-null.
bool pcInGuardRegion(const Trace &T, const GuardBranch &Br, uint32_t UsePc) {
  uint32_t CodeSize = T.methodInfo(Br.Method).CodeSize;
  if (Br.Kind == BranchKind::IfEqz) {
    // Logged when NOT taken; the fall-through path is non-null.
    if (Br.TargetPc > Br.Pc)
      return UsePc > Br.Pc && UsePc < Br.TargetPc; // forward: until target
    return UsePc > Br.Pc && UsePc < CodeSize;      // backward: to func end
  }
  // IfNez / IfEq: logged when taken; the target path is non-null.
  if (Br.TargetPc > Br.Pc)
    return UsePc >= Br.TargetPc && UsePc < CodeSize; // forward jump
  return UsePc >= Br.TargetPc && UsePc < Br.Pc;      // backward jump
}

/// Returns true if \p Br guards \p Use: same task, same frame instance,
/// same matched pointer, branch executed before the use, use pc inside
/// the non-null region.
bool branchGuardsUse(const Trace &T, const GuardBranch &Br,
                     const PtrAccess &Use) {
  if (Br.Task != Use.Task || Br.Frame != Use.Frame ||
      !Br.Var.isValid() || Br.Var != Use.Var)
    return false;
  if (Br.Record >= Use.Record)
    return false;
  return pcInGuardRegion(T, Br, Use.Pc);
}

/// Deduplication key: the static (use site, free site) pair.
struct StaticKey {
  uint32_t UseMethod, UsePc, FreeMethod, FreePc;
  bool operator<(const StaticKey &O) const {
    return std::tie(UseMethod, UsePc, FreeMethod, FreePc) <
           std::tie(O.UseMethod, O.UsePc, O.FreeMethod, O.FreePc);
  }
};

/// Indexes built once per detection run.
struct DetectIndexes {
  /// var id -> indices into Db.Frees.
  std::vector<std::vector<uint32_t>> FreesByVar;
  /// (task, var) -> sorted alloc record indices.
  std::unordered_map<uint64_t, std::vector<uint32_t>> AllocsByTaskVar;
  /// (task, frame, var) -> indices into Db.Branches.
  std::unordered_map<uint64_t, std::vector<uint32_t>> BranchesByFrameVar;
  /// Memoized if-guard verdicts per use (-1 unknown, 0 no, 1 yes).
  std::vector<int8_t> GuardedMemo;

  static uint64_t taskVarKey(TaskId Task, VarId Var) {
    return (static_cast<uint64_t>(Task.value()) << 32) | Var.value();
  }
  static uint64_t frameVarKey(uint64_t Frame, VarId Var) {
    // Frame ids are globally unique, so (frame, var) needs no task.
    return (Frame << 20) ^ Var.value();
  }

  DetectIndexes(const AccessDb &Db) {
    uint32_t MaxVar = 0;
    for (const PtrAccess &A : Db.Frees)
      MaxVar = std::max(MaxVar, A.Var.value() + 1);
    for (const PtrAccess &A : Db.Uses)
      MaxVar = std::max(MaxVar, A.Var.value() + 1);
    FreesByVar.resize(MaxVar);
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Frees.size()); I != E;
         ++I)
      FreesByVar[Db.Frees[I].Var.index()].push_back(I);
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Allocs.size());
         I != E; ++I) {
      const PtrAccess &A = Db.Allocs[I];
      AllocsByTaskVar[taskVarKey(A.Task, A.Var)].push_back(A.Record);
    }
    for (auto &[K, V] : AllocsByTaskVar)
      std::sort(V.begin(), V.end());
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Branches.size());
         I != E; ++I) {
      const GuardBranch &Br = Db.Branches[I];
      if (Br.Var.isValid())
        BranchesByFrameVar[frameVarKey(Br.Frame, Br.Var)].push_back(I);
    }
    GuardedMemo.assign(Db.Uses.size(), -1);
  }

  bool allocInTaskAfter(TaskId Task, VarId Var, uint32_t Record) const {
    auto It = AllocsByTaskVar.find(taskVarKey(Task, Var));
    if (It == AllocsByTaskVar.end())
      return false;
    return std::upper_bound(It->second.begin(), It->second.end(), Record) !=
           It->second.end();
  }
  bool allocInTaskBefore(TaskId Task, VarId Var, uint32_t Record) const {
    auto It = AllocsByTaskVar.find(taskVarKey(Task, Var));
    if (It == AllocsByTaskVar.end())
      return false;
    return !It->second.empty() && It->second.front() < Record;
  }
};

} // namespace

bool cafa::isUseIfGuarded(const Trace &T, const AccessDb &Db,
                          const PtrAccess &Use) {
  for (const GuardBranch &Br : Db.Branches)
    if (branchGuardsUse(T, Br, Use))
      return true;
  return false;
}

RaceReport cafa::detectUseFreeRaces(const Trace &T, const TaskIndex &Index,
                                    const AccessDb &Db, const HbIndex &Hb,
                                    const DetectorOptions &Options,
                                    DetectCheckpointing *Ckpt) {
  RaceReport Report;
  if (Hb.degradation().DeadlineExceeded) {
    // The happens-before fixpoint was cut short: the relation
    // under-approximates, so extra candidates may survive the ordering
    // filter.  Everything reported is still a genuine candidate.
    Report.Partial = true;
    Report.PartialCause = "hb-deadline";
    const std::vector<std::string> &Rules =
        Hb.degradation().UnsaturatedRules;
    if (!Rules.empty()) {
      Report.PartialDetail = "unsaturated rules:";
      for (size_t I = 0; I != Rules.size(); ++I)
        Report.PartialDetail += (I ? ", " : " ") + Rules[I];
    }
  }
  DetectIndexes Ix(Db);

  // The conventional model for (b)/(c) classification, built on demand.
  // Skipped once the pipeline is already past a deadline: a second
  // happens-before construction would dig the hole deeper, and the
  // (b)/(c) split is a refinement, not a soundness requirement.
  std::unique_ptr<HbIndex> ConvHb;
  if (Options.Classify && !Report.Partial) {
    HbOptions ConvOpts = Options.Hb;
    ConvOpts.Model = OrderingModel::Conventional;
    ConvHb = std::make_unique<HbIndex>(T, Index, ConvOpts);
  }

  auto isGuarded = [&](uint32_t UseIdx) {
    int8_t &Memo = Ix.GuardedMemo[UseIdx];
    if (Memo >= 0)
      return Memo != 0;
    const PtrAccess &Use = Db.Uses[UseIdx];
    bool Guarded = false;
    auto It = Ix.BranchesByFrameVar.find(
        DetectIndexes::frameVarKey(Use.Frame, Use.Var));
    if (It != Ix.BranchesByFrameVar.end()) {
      for (uint32_t BrIdx : It->second) {
        if (branchGuardsUse(T, Db.Branches[BrIdx], Use)) {
          Guarded = true;
          break;
        }
      }
    }
    Memo = Guarded ? 1 : 0;
    return Guarded;
  };

  std::map<StaticKey, size_t> Dedup;

  // Resume path: restore the races, counters, and cursor of a frozen
  // scan.  Records are validated against the freshly extracted accesses
  // -- any mismatch means the frontier belongs to a different trace or
  // extractor and the scan silently restarts from scratch, which is
  // always correct, just slower.
  uint32_t StartUse = 0, StartFree = 0;
  if (Ckpt && Ckpt->Resume) {
    const DetectFrontier &R = *Ckpt->Resume;
    std::unordered_map<uint32_t, uint32_t> UseByRecord, FreeByRecord;
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Uses.size()); I != E;
         ++I)
      UseByRecord.emplace(Db.Uses[I].Record, I);
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Frees.size()); I != E;
         ++I)
      FreeByRecord.emplace(Db.Frees[I].Record, I);
    bool Ok = R.UseIdx <= Db.Uses.size();
    if (Ok && R.UseIdx < Db.Uses.size()) {
      const PtrAccess &U = Db.Uses[R.UseIdx];
      Ok = U.Var.index() < Ix.FreesByVar.size()
               ? R.FreePos <= Ix.FreesByVar[U.Var.index()].size()
               : R.FreePos == 0;
    }
    std::vector<UseFreeRace> Restored;
    for (const DetectFrontier::RaceEntry &E : R.Races) {
      auto UIt = UseByRecord.find(E.UseRecord);
      auto FIt = FreeByRecord.find(E.FreeRecord);
      if (UIt == UseByRecord.end() || FIt == FreeByRecord.end() ||
          E.Category > static_cast<uint8_t>(RaceCategory::Conventional)) {
        Ok = false;
        break;
      }
      UseFreeRace Race;
      Race.Use = Db.Uses[UIt->second];
      Race.Free = Db.Frees[FIt->second];
      Race.Category = static_cast<RaceCategory>(E.Category);
      Race.DynamicCount = E.DynamicCount;
      Restored.push_back(std::move(Race));
    }
    if (Ok) {
      StartUse = R.UseIdx;
      StartFree = R.FreePos;
      Report.Filters = R.Filters;
      Report.Races = std::move(Restored);
      for (size_t I = 0; I != Report.Races.size(); ++I) {
        const UseFreeRace &Race = Report.Races[I];
        Dedup.emplace(StaticKey{Race.Use.Method.value(), Race.Use.Pc,
                                Race.Free.Method.value(), Race.Free.Pc},
                      I);
      }
      Ckpt->ResumeAccepted = true;
    }
  }

  // Snapshots the scan at the next unprocessed pair (\p UseIdx, \p J).
  auto freezeScan = [&](uint32_t UseIdx, uint32_t J) {
    DetectFrontier F;
    F.UseIdx = UseIdx;
    F.FreePos = J;
    F.Filters = Report.Filters;
    F.Races.reserve(Report.Races.size());
    for (const UseFreeRace &Race : Report.Races)
      F.Races.push_back({Race.Use.Record, Race.Free.Record,
                         static_cast<uint8_t>(Race.Category),
                         Race.DynamicCount});
    return F;
  };

  // Deadline bookkeeping: a Timer query per pair would dominate the
  // scan, so the clock is only consulted every ~4k pairs.  Checkpoint
  // cadence rides the same poll.
  Timer DetectTimer;
  bool WantClock = Options.DeadlineMillis > 0 ||
                   (Ckpt && Ckpt->Save && Ckpt->EveryMillis > 0);
  uint64_t PairsSinceCheck = 0;
  double LastSaveMs = 0;
  bool OutOfTime = false;

  for (uint32_t UseIdx = StartUse,
                UE = static_cast<uint32_t>(Db.Uses.size());
       UseIdx != UE && !OutOfTime; ++UseIdx) {
    const PtrAccess &Use = Db.Uses[UseIdx];
    if (Use.Var.index() >= Ix.FreesByVar.size())
      continue;
    const std::vector<uint32_t> &FreeList = Ix.FreesByVar[Use.Var.index()];
    for (uint32_t J = UseIdx == StartUse ? StartFree : 0,
                  JE = static_cast<uint32_t>(FreeList.size());
         J != JE; ++J) {
      if (WantClock && ++PairsSinceCheck >= 4096) {
        PairsSinceCheck = 0;
        double Elapsed = DetectTimer.elapsedWallMillis();
        if (Options.DeadlineMillis > 0 && Elapsed > Options.DeadlineMillis) {
          // Pair (UseIdx, J) is not yet processed: it is exactly where a
          // resumed scan picks up.
          if (Ckpt && Ckpt->Save)
            Ckpt->Save(freezeScan(UseIdx, J));
          OutOfTime = true;
          break;
        }
        if (Ckpt && Ckpt->Save && Ckpt->EveryMillis > 0 &&
            Elapsed - LastSaveMs >= Ckpt->EveryMillis) {
          LastSaveMs = Elapsed;
          Ckpt->Save(freezeScan(UseIdx, J));
        }
      }
      uint32_t FreeIdx = FreeList[J];
      const PtrAccess &Free = Db.Frees[FreeIdx];
      ++Report.Filters.CandidatePairs;

      if (Use.Task == Free.Task) {
        ++Report.Filters.SameTask;
        continue;
      }
      if (Hb.ordered(Use.Record, Free.Record)) {
        ++Report.Filters.OrderedByHb;
        continue;
      }
      if (Options.LocksetFilter &&
          locksetsIntersect(Use.Lockset, Free.Lockset)) {
        ++Report.Filters.LocksetProtected;
        continue;
      }

      bool SameLooper = sameLooperEvents(T, Use.Task, Free.Task);
      if (SameLooper) {
        if (Options.IfGuardFilter && isGuarded(UseIdx)) {
          ++Report.Filters.IfGuardFiltered;
          continue;
        }
        if (Options.IntraEventAllocFilter &&
            (Ix.allocInTaskAfter(Free.Task, Free.Var, Free.Record) ||
             Ix.allocInTaskBefore(Use.Task, Use.Var, Use.Record))) {
          ++Report.Filters.IntraEventAlloc;
          continue;
        }
      }

      StaticKey Key{Use.Method.value(), Use.Pc, Free.Method.value(),
                    Free.Pc};
      auto It = Dedup.find(Key);
      if (It != Dedup.end()) {
        ++Report.Races[It->second].DynamicCount;
        continue;
      }

      UseFreeRace Race;
      Race.Use = Use;
      Race.Free = Free;
      if (SameLooper) {
        Race.Category = RaceCategory::IntraThread;
      } else if (ConvHb &&
                 !ConvHb->ordered(Use.Record, Free.Record)) {
        Race.Category = RaceCategory::Conventional;
      } else {
        Race.Category = RaceCategory::InterThread;
      }
      Dedup.emplace(Key, Report.Races.size());
      Report.Races.push_back(std::move(Race));
    }
  }
  if (OutOfTime && !Report.Partial) {
    Report.Partial = true;
    Report.PartialCause = "detect-deadline";
  }
  return Report;
}

RaceReport cafa::detectUseFreeRaces(const Trace &T,
                                    const DetectorOptions &Options) {
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  HbIndex Hb(T, Index, Options.Hb);
  return detectUseFreeRaces(T, Index, Db, Hb, Options);
}
