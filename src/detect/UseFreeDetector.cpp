//===- detect/UseFreeDetector.cpp - The CAFA race detector -------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/UseFreeDetector.h"

#include "detect/DetectShared.h"
#include "support/Timer.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace cafa;
// The per-pair predicates (sameLooperEvents, locksetsIntersect,
// branchGuardsUse, StaticKey, ...) are shared with the windowed scan.
using namespace cafa::detail;

namespace {

/// Indexes built once per detection run.
struct DetectIndexes {
  /// var id -> indices into Db.Frees.
  std::vector<std::vector<uint32_t>> FreesByVar;
  /// (task, var) -> sorted alloc record indices.
  std::unordered_map<uint64_t, std::vector<uint32_t>> AllocsByTaskVar;
  /// (task, frame, var) -> indices into Db.Branches.
  std::unordered_map<uint64_t, std::vector<uint32_t>> BranchesByFrameVar;
  /// Memoized if-guard verdicts per use (-1 unknown, 0 no, 1 yes).
  std::vector<int8_t> GuardedMemo;

  static uint64_t taskVarKey(TaskId Task, VarId Var) {
    return (static_cast<uint64_t>(Task.value()) << 32) | Var.value();
  }
  static uint64_t frameVarKey(uint64_t Frame, VarId Var) {
    // Frame ids are globally unique, so (frame, var) needs no task.
    return (Frame << 20) ^ Var.value();
  }

  DetectIndexes(const AccessDb &Db) {
    uint32_t MaxVar = 0;
    for (const PtrAccess &A : Db.Frees)
      MaxVar = std::max(MaxVar, A.Var.value() + 1);
    for (const PtrAccess &A : Db.Uses)
      MaxVar = std::max(MaxVar, A.Var.value() + 1);
    FreesByVar.resize(MaxVar);
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Frees.size()); I != E;
         ++I)
      FreesByVar[Db.Frees[I].Var.index()].push_back(I);
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Allocs.size());
         I != E; ++I) {
      const PtrAccess &A = Db.Allocs[I];
      AllocsByTaskVar[taskVarKey(A.Task, A.Var)].push_back(A.Record);
    }
    for (auto &[K, V] : AllocsByTaskVar)
      std::sort(V.begin(), V.end());
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Branches.size());
         I != E; ++I) {
      const GuardBranch &Br = Db.Branches[I];
      if (Br.Var.isValid())
        BranchesByFrameVar[frameVarKey(Br.Frame, Br.Var)].push_back(I);
    }
    GuardedMemo.assign(Db.Uses.size(), -1);
  }

  bool allocInTaskAfter(TaskId Task, VarId Var, uint32_t Record) const {
    auto It = AllocsByTaskVar.find(taskVarKey(Task, Var));
    if (It == AllocsByTaskVar.end())
      return false;
    return std::upper_bound(It->second.begin(), It->second.end(), Record) !=
           It->second.end();
  }
  bool allocInTaskBefore(TaskId Task, VarId Var, uint32_t Record) const {
    auto It = AllocsByTaskVar.find(taskVarKey(Task, Var));
    if (It == AllocsByTaskVar.end())
      return false;
    return !It->second.empty() && It->second.front() < Record;
  }
};

} // namespace

bool cafa::isUseIfGuarded(const Trace &T, const AccessDb &Db,
                          const PtrAccess &Use) {
  for (const GuardBranch &Br : Db.Branches)
    if (branchGuardsUse(T, Br, Use))
      return true;
  return false;
}

RaceReport cafa::detectUseFreeRaces(const Trace &T, const TaskIndex &Index,
                                    const AccessDb &Db, const HbIndex &Hb,
                                    const DetectorOptions &Options,
                                    DetectCheckpointing *Ckpt) {
  RaceReport Report;
  if (Hb.degradation().DeadlineExceeded) {
    // The happens-before fixpoint was cut short: the relation
    // under-approximates, so extra candidates may survive the ordering
    // filter.  Everything reported is still a genuine candidate.
    Report.Partial = true;
    Report.PartialCause = "hb-deadline";
    const std::vector<std::string> &Rules =
        Hb.degradation().UnsaturatedRules;
    if (!Rules.empty()) {
      Report.PartialDetail = "unsaturated rules:";
      for (size_t I = 0; I != Rules.size(); ++I)
        Report.PartialDetail += (I ? ", " : " ") + Rules[I];
    }
  }
  DetectIndexes Ix(Db);

  // The conventional model for (b)/(c) classification, built on demand.
  // Skipped once the pipeline is already past a deadline: a second
  // happens-before construction would dig the hole deeper, and the
  // (b)/(c) split is a refinement, not a soundness requirement.
  std::unique_ptr<HbIndex> ConvHb;
  if (Options.Classify && !Report.Partial) {
    HbOptions ConvOpts = Options.Hb;
    ConvOpts.Model = OrderingModel::Conventional;
    ConvHb = std::make_unique<HbIndex>(T, Index, ConvOpts);
  }

  auto isGuarded = [&](uint32_t UseIdx) {
    int8_t &Memo = Ix.GuardedMemo[UseIdx];
    if (Memo >= 0)
      return Memo != 0;
    const PtrAccess &Use = Db.Uses[UseIdx];
    bool Guarded = false;
    auto It = Ix.BranchesByFrameVar.find(
        DetectIndexes::frameVarKey(Use.Frame, Use.Var));
    if (It != Ix.BranchesByFrameVar.end()) {
      for (uint32_t BrIdx : It->second) {
        if (branchGuardsUse(T, Db.Branches[BrIdx], Use)) {
          Guarded = true;
          break;
        }
      }
    }
    Memo = Guarded ? 1 : 0;
    return Guarded;
  };

  std::map<StaticKey, size_t> Dedup;

  // Deadline ladder state (see DetectorOptions::DeadlineMillis): rung 1
  // sheds the lockset and if-guard filters and doubles the budget; rung
  // 2 cuts the scan.  Shedding only ever un-suppresses pairs, so a shed
  // report's race set is a superset of the complete run's.
  bool FiltersShed = false;
  double DeadlineLimit = Options.DeadlineMillis;
  const bool CanShed = Options.LocksetFilter || Options.IfGuardFilter;
  auto MarkShed = [&] {
    FiltersShed = true;
    DeadlineLimit = Options.DeadlineMillis * 2;
    Report.Partial = true;
    if (Report.PartialCause.empty())
      Report.PartialCause = "filters-shed";
    if (Report.PartialDetail.empty())
      Report.PartialDetail =
          "lockset and if-guard filters shed mid-scan; extra races "
          "possible, none missing from the scanned region";
  };

  // Resume path: restore the races, counters, and cursor of a frozen
  // scan.  Records are validated against the freshly extracted accesses
  // -- any mismatch means the frontier belongs to a different trace or
  // extractor and the scan silently restarts from scratch, which is
  // always correct, just slower.
  uint32_t StartUse = 0, StartFree = 0;
  if (Ckpt && Ckpt->Resume) {
    const DetectFrontier &R = *Ckpt->Resume;
    std::unordered_map<uint32_t, uint32_t> UseByRecord, FreeByRecord;
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Uses.size()); I != E;
         ++I)
      UseByRecord.emplace(Db.Uses[I].Record, I);
    for (uint32_t I = 0, E = static_cast<uint32_t>(Db.Frees.size()); I != E;
         ++I)
      FreeByRecord.emplace(Db.Frees[I].Record, I);
    bool Ok = R.UseIdx <= Db.Uses.size();
    if (Ok && R.UseIdx < Db.Uses.size()) {
      const PtrAccess &U = Db.Uses[R.UseIdx];
      Ok = U.Var.index() < Ix.FreesByVar.size()
               ? R.FreePos <= Ix.FreesByVar[U.Var.index()].size()
               : R.FreePos == 0;
    }
    std::vector<UseFreeRace> Restored;
    for (const DetectFrontier::RaceEntry &E : R.Races) {
      auto UIt = UseByRecord.find(E.UseRecord);
      auto FIt = FreeByRecord.find(E.FreeRecord);
      if (UIt == UseByRecord.end() || FIt == FreeByRecord.end() ||
          E.Category > static_cast<uint8_t>(RaceCategory::Conventional)) {
        Ok = false;
        break;
      }
      UseFreeRace Race;
      Race.Use = Db.Uses[UIt->second];
      Race.Free = Db.Frees[FIt->second];
      Race.Category = static_cast<RaceCategory>(E.Category);
      Race.DynamicCount = E.DynamicCount;
      Restored.push_back(std::move(Race));
    }
    if (Ok) {
      StartUse = R.UseIdx;
      StartFree = R.FreePos;
      if (R.FiltersShed)
        MarkShed();
      Report.Filters = R.Filters;
      Report.Races = std::move(Restored);
      for (size_t I = 0; I != Report.Races.size(); ++I) {
        const UseFreeRace &Race = Report.Races[I];
        Dedup.emplace(StaticKey{Race.Use.Method.value(), Race.Use.Pc,
                                Race.Free.Method.value(), Race.Free.Pc},
                      I);
      }
      Ckpt->ResumeAccepted = true;
    }
  }

  // Snapshots the scan at the next unprocessed pair (\p UseIdx, \p J).
  auto freezeScan = [&](uint32_t UseIdx, uint32_t J) {
    DetectFrontier F;
    F.UseIdx = UseIdx;
    F.FreePos = J;
    F.FiltersShed = FiltersShed;
    F.Filters = Report.Filters;
    F.Races.reserve(Report.Races.size());
    for (const UseFreeRace &Race : Report.Races)
      F.Races.push_back({Race.Use.Record, Race.Free.Record,
                         static_cast<uint8_t>(Race.Category),
                         Race.DynamicCount});
    return F;
  };

  // Deadline bookkeeping: a Timer query per pair would dominate the
  // scan, so the clock is only consulted every ~4k pairs (at block
  // barriers in the parallel mode).  Checkpoint cadence rides the same
  // poll.
  Timer DetectTimer;
  bool WantClock = Options.DeadlineMillis > 0 ||
                   (Ckpt && Ckpt->Save && Ckpt->EveryMillis > 0);
  uint64_t PairsSinceCheck = 0;
  double LastSaveMs = 0;
  bool OutOfTime = false;

  // Polls the deadline ladder and the checkpoint cadence with the next
  // unprocessed pair at (\p UseIdx, \p J).
  auto pollClock = [&](uint32_t UseIdx, uint32_t J) {
    double Elapsed = DetectTimer.elapsedWallMillis();
    if (Options.DeadlineMillis > 0 && Elapsed > DeadlineLimit) {
      if (!FiltersShed && CanShed) {
        // Rung 1: trade precision for completion -- drop the two
        // suppression-only filters and keep scanning on a doubled
        // budget.
        MarkShed();
        return;
      }
      // Rung 2: out of road.  Pair (UseIdx, J) is not yet processed:
      // it is exactly where a resumed scan picks up.
      if (Ckpt && Ckpt->Save)
        Ckpt->Save(freezeScan(UseIdx, J));
      OutOfTime = true;
      return;
    }
    if (Ckpt && Ckpt->Save && Ckpt->EveryMillis > 0 &&
        Elapsed - LastSaveMs >= Ckpt->EveryMillis) {
      LastSaveMs = Elapsed;
      Ckpt->Save(freezeScan(UseIdx, J));
    }
  };

  // The pure per-pair filter pipeline: everything whose verdict depends
  // only on the pair itself (and the frozen shed state), which is what
  // makes it safe to evaluate from worker threads.  Dedup,
  // dynamic-instance counting, and classification are order-dependent
  // and stay sequential (commitPair).  GuardedMemo stays safe in
  // parallel because uses are partitioned: exactly one worker ever
  // touches a given use's memo slot.
  auto evalPair = [&](uint32_t UseIdx, uint32_t FreeIdx, bool Shed,
                      FilterCounters &C, bool &SameLooper) {
    const PtrAccess &Use = Db.Uses[UseIdx];
    const PtrAccess &Free = Db.Frees[FreeIdx];
    ++C.CandidatePairs;
    if (Use.Task == Free.Task) {
      ++C.SameTask;
      return false;
    }
    if (Hb.ordered(Use.Record, Free.Record)) {
      ++C.OrderedByHb;
      return false;
    }
    if (Options.LocksetFilter && !Shed &&
        locksetsIntersect(Use.Lockset, Free.Lockset)) {
      ++C.LocksetProtected;
      return false;
    }
    SameLooper = sameLooperEvents(T, Use.Task, Free.Task);
    if (SameLooper) {
      if (Options.IfGuardFilter && !Shed && isGuarded(UseIdx)) {
        ++C.IfGuardFiltered;
        return false;
      }
      if (Options.IntraEventAllocFilter &&
          (Ix.allocInTaskAfter(Free.Task, Free.Var, Free.Record) ||
           Ix.allocInTaskBefore(Use.Task, Use.Var, Use.Record))) {
        ++C.IntraEventAlloc;
        return false;
      }
    }
    return true;
  };

  // Sequential commit of one surviving pair, in scan order: static-site
  // dedup, dynamic-instance counting, Table 1 classification.
  auto commitPair = [&](uint32_t UseIdx, uint32_t FreeIdx,
                        bool SameLooper) {
    const PtrAccess &Use = Db.Uses[UseIdx];
    const PtrAccess &Free = Db.Frees[FreeIdx];
    StaticKey Key{Use.Method.value(), Use.Pc, Free.Method.value(),
                  Free.Pc};
    auto It = Dedup.find(Key);
    if (It != Dedup.end()) {
      ++Report.Races[It->second].DynamicCount;
      return;
    }
    UseFreeRace Race;
    Race.Use = Use;
    Race.Free = Free;
    if (SameLooper) {
      Race.Category = RaceCategory::IntraThread;
    } else if (ConvHb && !ConvHb->ordered(Use.Record, Free.Record)) {
      Race.Category = RaceCategory::Conventional;
    } else {
      Race.Category = RaceCategory::InterThread;
    }
    Dedup.emplace(Key, Report.Races.size());
    Report.Races.push_back(std::move(Race));
  };

  const uint32_t UE = static_cast<uint32_t>(Db.Uses.size());

  // Parallel analysis mode (Options.Hb.Threads, docs/robustness.md):
  // uses are scanned in contiguous blocks; each block fans its pairs
  // out across workers as per-worker survivor lists, then the
  // survivors are committed in scan order.  Every per-pair verdict is
  // pure given the frozen shed state, and the commit order equals the
  // sequential scan's, so reports are bit-identical at every thread
  // count.  Requires an oracle whose queries are safe from many
  // threads (row-backed closures; the BFS floor mutates scratch).
  unsigned Threads = resolveAnalysisThreads(Options.Hb.Threads);
  bool Parallel =
      Threads > 1 && Hb.concurrentQueriesSafe() && Db.Uses.size() >= 64;
  WorkerPool Pool(Parallel ? Threads - 1 : 0);

  if (!Parallel) {
    for (uint32_t UseIdx = StartUse; UseIdx != UE && !OutOfTime;
         ++UseIdx) {
      const PtrAccess &Use = Db.Uses[UseIdx];
      if (Use.Var.index() >= Ix.FreesByVar.size())
        continue;
      const std::vector<uint32_t> &FreeList =
          Ix.FreesByVar[Use.Var.index()];
      for (uint32_t J = UseIdx == StartUse ? StartFree : 0,
                    JE = static_cast<uint32_t>(FreeList.size());
           J != JE; ++J) {
        if (WantClock && ++PairsSinceCheck >= 4096) {
          PairsSinceCheck = 0;
          pollClock(UseIdx, J);
          if (OutOfTime)
            break;
        }
        bool SameLooper = false;
        if (evalPair(UseIdx, FreeList[J], FiltersShed, Report.Filters,
                     SameLooper))
          commitPair(UseIdx, FreeList[J], SameLooper);
      }
    }
  } else {
    // Blocks match the sequential clock cadence (~4k pairs) when the
    // clock matters, so deadline cuts and cadence saves land at
    // comparable pair counts; otherwise they are sized for throughput.
    const uint64_t BlockPairs = WantClock ? 4096 : 65536;
    const uint64_t ChunkPairs =
        std::max<uint64_t>(BlockPairs / (Pool.helperThreads() + 1), 512);
    struct Survivor {
      uint32_t UseIdx, FreeIdx;
      bool SameLooper;
    };
    struct Chunk {
      uint32_t UseBegin, UseEnd;
      FilterCounters C;
      std::vector<Survivor> Out;
    };
    // Pairs of a use before the scan cursor (only the resume use can
    // have any).
    auto SkippedPairs = [&](uint32_t UseIdx, uint64_t N) {
      return UseIdx == StartUse ? std::min<uint64_t>(N, StartFree) : 0;
    };
    uint32_t UseIdx = StartUse;
    while (UseIdx < UE && !OutOfTime) {
      // Carve the next block of ~BlockPairs pairs into contiguous
      // per-worker chunks balanced by pair count.
      std::vector<Chunk> Chunks;
      uint64_t InBlock = 0, InChunk = 0;
      uint32_t ChunkBegin = UseIdx, U = UseIdx;
      for (; U < UE && InBlock < BlockPairs; ++U) {
        const PtrAccess &Use = Db.Uses[U];
        uint64_t N = Use.Var.index() < Ix.FreesByVar.size()
                         ? Ix.FreesByVar[Use.Var.index()].size()
                         : 0;
        N -= SkippedPairs(U, N);
        InBlock += N;
        InChunk += N;
        if (InChunk >= ChunkPairs) {
          Chunks.push_back({ChunkBegin, U + 1, {}, {}});
          ChunkBegin = U + 1;
          InChunk = 0;
        }
      }
      if (ChunkBegin < U)
        Chunks.push_back({ChunkBegin, U, {}, {}});
      const bool Shed = FiltersShed; // frozen for the whole block
      Pool.parallelFor(Chunks.size(), [&](size_t CI) {
        Chunk &Ch = Chunks[CI];
        for (uint32_t UI = Ch.UseBegin; UI != Ch.UseEnd; ++UI) {
          const PtrAccess &Use = Db.Uses[UI];
          if (Use.Var.index() >= Ix.FreesByVar.size())
            continue;
          const std::vector<uint32_t> &FreeList =
              Ix.FreesByVar[Use.Var.index()];
          for (uint32_t J = UI == StartUse ? StartFree : 0,
                        JE = static_cast<uint32_t>(FreeList.size());
               J != JE; ++J) {
            bool SameLooper = false;
            if (evalPair(UI, FreeList[J], Shed, Ch.C, SameLooper))
              Ch.Out.push_back({UI, FreeList[J], SameLooper});
          }
        }
      });
      for (Chunk &Ch : Chunks) {
        Report.Filters.OrderedByHb += Ch.C.OrderedByHb;
        Report.Filters.SameTask += Ch.C.SameTask;
        Report.Filters.LocksetProtected += Ch.C.LocksetProtected;
        Report.Filters.IfGuardFiltered += Ch.C.IfGuardFiltered;
        Report.Filters.IntraEventAlloc += Ch.C.IntraEventAlloc;
        Report.Filters.CandidatePairs += Ch.C.CandidatePairs;
        for (const Survivor &S : Ch.Out)
          commitPair(S.UseIdx, S.FreeIdx, S.SameLooper);
      }
      UseIdx = U;
      // Same cadence as the sequential scan: poll once ~4k pairs have
      // been evaluated since the last poll, with the cursor at the next
      // unprocessed pair.  No trailing poll after the final block -- a
      // finished scan is complete, not cut.
      PairsSinceCheck += InBlock;
      if (WantClock && PairsSinceCheck >= 4096 && UseIdx < UE) {
        PairsSinceCheck = 0;
        pollClock(UseIdx, UseIdx == StartUse ? StartFree : 0);
      }
    }
  }
  if (OutOfTime) {
    Report.Partial = true;
    // "filters-shed" promotes to the harder cut; an earlier
    // "hb-deadline" keeps priority (first deadline hit wins).
    if (Report.PartialCause.empty() ||
        Report.PartialCause == "filters-shed")
      Report.PartialCause = "detect-deadline";
    if (FiltersShed && Report.PartialCause == "detect-deadline")
      Report.PartialDetail =
          "filters shed, then the extended budget expired; scan cut";
  }
  return Report;
}

RaceReport cafa::detectUseFreeRaces(const Trace &T,
                                    const DetectorOptions &Options) {
  TaskIndex Index(T);
  AccessDb Db = extractAccesses(T, Index);
  HbIndex Hb(T, Index, Options.Hb);
  return detectUseFreeRaces(T, Index, Db, Hb, Options);
}
