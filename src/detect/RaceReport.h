//===- detect/RaceReport.h - Detector output structures --------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The detector's output: use-free races deduplicated to static (use
/// site, free site) pairs, with their Table 1 classification and the
/// filter counters that explain what was pruned.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_DETECT_RACEREPORT_H
#define CAFA_DETECT_RACEREPORT_H

#include "detect/Accesses.h"

#include <string>
#include <vector>

namespace cafa {

/// Table 1 true-race categories (assigned by the detector; whether the
/// race is actually harmful is the evaluation harness's ground truth).
enum class RaceCategory : uint8_t {
  /// (a) between two events of the same looper thread.
  IntraThread,
  /// (b) between threads, missed by a conventional detector.
  InterThread,
  /// (c) between threads, also found by a conventional detector.
  Conventional,
};

/// Returns "a"/"b"/"c" for rendering.
const char *raceCategoryName(RaceCategory C);

/// One reported use-free race (deduplicated static pair; the recorded
/// accesses are the first dynamic instance observed).
struct UseFreeRace {
  PtrAccess Use;
  PtrAccess Free;
  RaceCategory Category = RaceCategory::IntraThread;
  /// Number of dynamic (use, free) instances collapsed into this entry.
  uint32_t DynamicCount = 1;
};

/// Why a candidate pair was suppressed.
struct FilterCounters {
  uint64_t OrderedByHb = 0;       ///< not a race: happens-before ordered
  uint64_t SameTask = 0;          ///< same task: program order
  uint64_t LocksetProtected = 0;  ///< common lock across threads
  uint64_t IfGuardFiltered = 0;   ///< use proven non-null by a guard
  uint64_t IntraEventAlloc = 0;   ///< allocation masks the free/use
  uint64_t CandidatePairs = 0;    ///< dynamic pairs examined
};

/// The full detector output for one trace.
struct RaceReport {
  std::vector<UseFreeRace> Races;
  FilterCounters Filters;
  /// True when the analysis hit a degradation deadline and stopped
  /// early: the happens-before relation may under-approximate (extra
  /// candidates survive) and candidate pairs past the cutoff were never
  /// scanned (races may be missing).  Consumers must not treat a
  /// partial report as a clean bill of health.
  bool Partial = false;
  /// Machine-readable cause when Partial is set: "hb-deadline" (the
  /// fixpoint was cut -- rounds lost), "filters-shed" (the detect
  /// deadline's first rung dropped the lockset/if-guard filters but the
  /// scan completed: extra races possible, none missing), or
  /// "detect-deadline" (the pair scan was cut).  The first deadline hit
  /// wins, except that "filters-shed" promotes to "detect-deadline"
  /// when the extended budget also expires.
  std::string PartialCause;
  /// Elaboration of PartialCause, when one exists.  For "hb-deadline"
  /// this names the rule families the cut left short of their fixpoint
  /// (e.g. "unsaturated rules: atomicity, event-queue") -- the missing
  /// edges are drawn from exactly these rules, so every reported race is
  /// *provisional*: it may be ordered away once the fixpoint saturates.
  /// Empty when Partial is false or no detail is known.
  std::string PartialDetail;

  size_t numRaces() const { return Races.size(); }
  size_t countCategory(RaceCategory C) const;

  /// True when the races in this report could still be ordered away by
  /// a saturated fixpoint: the happens-before relation was cut short,
  /// so "unordered" verdicts are provisional.  Detect-deadline cuts do
  /// not set this -- the relation was complete, only the scan stopped.
  bool racesProvisional() const { return Partial && PartialCause == "hb-deadline"; }
};

/// Renders a report for humans (one block per race, names resolved
/// against \p T).
std::string renderRaceReport(const RaceReport &Report, const Trace &T);

/// Renders one race as a single line.
std::string renderRaceLine(const UseFreeRace &Race, const Trace &T);

} // namespace cafa

#endif // CAFA_DETECT_RACEREPORT_H
