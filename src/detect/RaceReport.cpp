//===- detect/RaceReport.cpp - Detector output structures --------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/RaceReport.h"

#include "support/Format.h"

#include <sstream>

using namespace cafa;

const char *cafa::raceCategoryName(RaceCategory C) {
  switch (C) {
  case RaceCategory::IntraThread:
    return "a";
  case RaceCategory::InterThread:
    return "b";
  case RaceCategory::Conventional:
    return "c";
  }
  return "?";
}

size_t RaceReport::countCategory(RaceCategory C) const {
  size_t N = 0;
  for (const UseFreeRace &R : Races)
    if (R.Category == C)
      ++N;
  return N;
}

std::string cafa::renderRaceLine(const UseFreeRace &Race, const Trace &T) {
  return formatString(
      "use %s:%u in %s  ~  free %s:%u in %s  [%s, x%u]",
      T.methodName(Race.Use.Method).c_str(), Race.Use.Pc,
      T.taskName(Race.Use.Task).c_str(),
      T.methodName(Race.Free.Method).c_str(), Race.Free.Pc,
      T.taskName(Race.Free.Task).c_str(),
      raceCategoryName(Race.Category), Race.DynamicCount);
}

std::string cafa::renderRaceReport(const RaceReport &Report, const Trace &T) {
  std::ostringstream OS;
  OS << Report.Races.size() << " use-free race(s) reported\n";
  size_t N = 0;
  // A race found against a cut happens-before relation may be ordered
  // away once the fixpoint saturates; mark it so a partial report is
  // never mistaken for a confirmed finding.  Complete reports render
  // without any marker -- resumed runs stay byte-identical to
  // uninterrupted ones.
  const char *Suffix = Report.racesProvisional() ? "  (provisional)" : "";
  for (const UseFreeRace &Race : Report.Races)
    OS << formatString("  #%zu  %s%s\n", ++N,
                       renderRaceLine(Race, T).c_str(), Suffix);
  const FilterCounters &F = Report.Filters;
  OS << formatString(
      "candidates=%llu orderedByHb=%llu sameTask=%llu lockset=%llu "
      "ifGuard=%llu intraEventAlloc=%llu\n",
      static_cast<unsigned long long>(F.CandidatePairs),
      static_cast<unsigned long long>(F.OrderedByHb),
      static_cast<unsigned long long>(F.SameTask),
      static_cast<unsigned long long>(F.LocksetProtected),
      static_cast<unsigned long long>(F.IfGuardFiltered),
      static_cast<unsigned long long>(F.IntraEventAlloc));
  if (Report.Partial) {
    OS << formatString("PARTIAL result (%s): analysis stopped early; "
                       "races may be missing or unfiltered\n",
                       Report.PartialCause.c_str());
    if (!Report.PartialDetail.empty())
      OS << formatString("  %s\n", Report.PartialDetail.c_str());
  }
  return OS.str();
}
