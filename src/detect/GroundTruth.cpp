//===- detect/GroundTruth.cpp - Seeded-race labels and evaluation ------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/GroundTruth.h"

#include "support/Format.h"
#include "trace/TraceStats.h"

#include <map>
#include <sstream>

using namespace cafa;

const char *cafa::raceLabelName(RaceLabel Label) {
  switch (Label) {
  case RaceLabel::Harmful:
    return "harmful";
  case RaceLabel::FalseTypeI:
    return "FP-I";
  case RaceLabel::FalseTypeII:
    return "FP-II";
  case RaceLabel::FalseTypeIII:
    return "FP-III";
  }
  return "?";
}

namespace {
using PairKey = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>;

PairKey keyOf(MethodId UseMethod, uint32_t UsePc, MethodId FreeMethod,
              uint32_t FreePc) {
  return {UseMethod.value(), UsePc, FreeMethod.value(), FreePc};
}
} // namespace

Table1Row cafa::evaluateReport(const RaceReport &Report,
                               const GroundTruth &Truth, const Trace &T,
                               const std::string &AppName) {
  Table1Row Row;
  Row.App = AppName;
  Row.Events = T.numEvents();
  Row.Reported = Report.Races.size();

  std::map<PairKey, const GroundTruthEntry *> Labels;
  for (const GroundTruthEntry &E : Truth.Entries)
    Labels[keyOf(E.UseMethod, E.UsePc, E.FreeMethod, E.FreePc)] = &E;

  std::map<PairKey, bool> Matched;
  for (const UseFreeRace &Race : Report.Races) {
    PairKey Key = keyOf(Race.Use.Method, Race.Use.Pc, Race.Free.Method,
                        Race.Free.Pc);
    auto It = Labels.find(Key);
    if (It == Labels.end()) {
      ++Row.Unexpected;
      continue;
    }
    Matched[Key] = true;
    switch (It->second->Label) {
    case RaceLabel::Harmful:
      switch (Race.Category) {
      case RaceCategory::IntraThread:
        ++Row.TrueA;
        break;
      case RaceCategory::InterThread:
        ++Row.TrueB;
        break;
      case RaceCategory::Conventional:
        ++Row.TrueC;
        break;
      }
      break;
    case RaceLabel::FalseTypeI:
      ++Row.FpI;
      break;
    case RaceLabel::FalseTypeII:
      ++Row.FpII;
      break;
    case RaceLabel::FalseTypeIII:
      ++Row.FpIII;
      break;
    }
  }

  for (const auto &[Key, Entry] : Labels)
    if (!Matched.count(Key))
      ++Row.Missed;
  return Row;
}

std::string cafa::renderTable1(const std::vector<Table1Row> &Rows) {
  std::ostringstream OS;
  OS << padRight("Application", 14) << padLeft("Events", 8)
     << padLeft("Reported", 10) << padLeft("(a)", 5) << padLeft("(b)", 5)
     << padLeft("(c)", 5) << padLeft("I", 5) << padLeft("II", 5)
     << padLeft("III", 5) << padLeft("unexp", 7) << padLeft("miss", 6)
     << '\n';
  Table1Row Total;
  Total.App = "Overall";
  for (const Table1Row &Row : Rows) {
    OS << padRight(Row.App, 14)
       << padLeft(withThousandsSep(Row.Events), 8)
       << padLeft(std::to_string(Row.Reported), 10)
       << padLeft(std::to_string(Row.TrueA), 5)
       << padLeft(std::to_string(Row.TrueB), 5)
       << padLeft(std::to_string(Row.TrueC), 5)
       << padLeft(std::to_string(Row.FpI), 5)
       << padLeft(std::to_string(Row.FpII), 5)
       << padLeft(std::to_string(Row.FpIII), 5)
       << padLeft(std::to_string(Row.Unexpected), 7)
       << padLeft(std::to_string(Row.Missed), 6) << '\n';
    Total.Events += Row.Events;
    Total.Reported += Row.Reported;
    Total.TrueA += Row.TrueA;
    Total.TrueB += Row.TrueB;
    Total.TrueC += Row.TrueC;
    Total.FpI += Row.FpI;
    Total.FpII += Row.FpII;
    Total.FpIII += Row.FpIII;
    Total.Unexpected += Row.Unexpected;
    Total.Missed += Row.Missed;
  }
  OS << padRight(Total.App, 14) << padLeft("", 8)
     << padLeft(std::to_string(Total.Reported), 10)
     << padLeft(std::to_string(Total.TrueA), 5)
     << padLeft(std::to_string(Total.TrueB), 5)
     << padLeft(std::to_string(Total.TrueC), 5)
     << padLeft(std::to_string(Total.FpI), 5)
     << padLeft(std::to_string(Total.FpII), 5)
     << padLeft(std::to_string(Total.FpIII), 5)
     << padLeft(std::to_string(Total.Unexpected), 7)
     << padLeft(std::to_string(Total.Missed), 6) << '\n';
  uint64_t TrueTotal = Total.trueTotal();
  if (Total.Reported > 0)
    OS << formatString("harmful: %llu of %llu reported (%.0f%%)\n",
                       static_cast<unsigned long long>(TrueTotal),
                       static_cast<unsigned long long>(Total.Reported),
                       100.0 * static_cast<double>(TrueTotal) /
                           static_cast<double>(Total.Reported));
  return OS.str();
}
