//===- detect/WindowedScan.cpp - Windowed streaming detection ---------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The bounded-memory counterpart of the batch pair scan in
// UseFreeDetector.cpp (docs/windowed-analysis.md).  Two extraction
// passes over the record stream:
//
//  - Pass A (PrePassSink) counts and indexes without retaining bodies:
//    use ordinals keyed by read record, per-cell last-use/last-free
//    records (the retention horizons), per-(task, cell) alloc spans
//    (all the intra-event-alloc filter ever consults), and the global
//    query horizon for the frontier reachability rows.
//
//  - Pass B (WindowScanSink) streams accesses in record order.  A pair
//    (use, free) is evaluated exactly once, at the record of its later
//    element: when a free streams by it meets the retained uses of its
//    cell, and when a promoted read streams by it meets the retained
//    frees.  Retained accesses drop at their pass-A horizon -- the
//    record after which no future counterpart can pair with them --
//    swept every WindowEvents records (the window is only the sweep
//    cadence, which is why every window size emits identical reports).
//    Happens-before queries go to WindowedReach, whose frontier rows
//    advance with the same cursor.
//
// Surviving pairs are tiny ordinal tuples; dedup, dynamic-instance
// counting, and (b)/(c) classification run once at the end, over the
// survivors sorted into the batch scan's (use, free) order, committing
// through the same logic -- so the two detectors' reports are
// byte-identical on every complete run.
//
//===----------------------------------------------------------------------===//

#include "detect/UseFreeDetector.h"

#include "detect/DetectShared.h"
#include "hb/WindowedReach.h"
#include "support/Resolve.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace cafa;
using namespace cafa::detail;

uint64_t cafa::resolveWindowEvents(uint64_t Requested) {
  return resolveRequestEnv<uint64_t>(
      Requested, 0, "CAFA_WINDOW",
      [](const char *S) -> std::optional<uint64_t> {
        char *End = nullptr;
        unsigned long long V = std::strtoull(S, &End, 10);
        if (End == S || *End != '\0' || V == 0)
          return std::nullopt;
        return static_cast<uint64_t>(V);
      },
      [] { return DetectorOptions::WindowOff; });
}

namespace {

uint64_t taskVarKey(TaskId Task, VarId Var) {
  return (static_cast<uint64_t>(Task.value()) << 32) | Var.value();
}

/// Pass A: derives every per-cell and per-task horizon the streaming
/// scan needs, without retaining any access body.
class PrePassSink final : public AccessSink {
public:
  struct UsePromo {
    uint32_t Ordinal = 0;
    uint32_t DerefRecord = 0;
  };

  /// read record -> promotion (only promoted reads become uses).
  std::unordered_map<uint32_t, UsePromo> PromoByReadRecord;
  /// use ordinal -> read record / free ordinal -> free record (resume
  /// validation and stable identity).
  std::vector<uint32_t> UseRecordByOrd;
  std::vector<uint32_t> FreeRecordByOrd;
  /// Per cell: last promoted-read record / last free record (0 when
  /// none -- a record-0 access yields the same horizon arithmetic).
  std::vector<uint32_t> LastUseReadByVar;
  std::vector<uint32_t> LastFreeByVar;
  std::vector<uint8_t> HasUseByVar;
  std::vector<uint8_t> HasFreeByVar;
  /// (task, cell) -> [first, last] alloc record: everything
  /// allocInTaskBefore/After ever ask.
  std::unordered_map<uint64_t, std::pair<uint32_t, uint32_t>> AllocSpans;
  /// Last record that is the later element of any candidate pair
  /// (over-approximated by the last access record overall).
  uint32_t QueryHorizon = 0;
  uint64_t NumAllocs = 0;
  uint64_t NumBranches = 0;

  void onUse(PtrAccess Use, size_t Ordinal) override {
    assert(Ordinal == UseRecordByOrd.size() && "promotion order broken");
    PromoByReadRecord.emplace(
        Use.Record,
        UsePromo{static_cast<uint32_t>(Ordinal), Use.DerefRecord});
    UseRecordByOrd.push_back(Use.Record);
    uint32_t V = Use.Var.index();
    growVar(V);
    LastUseReadByVar[V] = std::max(LastUseReadByVar[V], Use.Record);
    HasUseByVar[V] = 1;
    QueryHorizon = std::max(QueryHorizon, Use.Record);
  }

  void onFree(PtrAccess Free) override {
    FreeRecordByOrd.push_back(Free.Record);
    uint32_t V = Free.Var.index();
    growVar(V);
    LastFreeByVar[V] = std::max(LastFreeByVar[V], Free.Record);
    HasFreeByVar[V] = 1;
    QueryHorizon = std::max(QueryHorizon, Free.Record);
  }

  void onAlloc(PtrAccess Alloc) override {
    ++NumAllocs;
    auto [It, New] = AllocSpans.try_emplace(
        taskVarKey(Alloc.Task, Alloc.Var),
        std::make_pair(Alloc.Record, Alloc.Record));
    if (!New) {
      It->second.first = std::min(It->second.first, Alloc.Record);
      It->second.second = std::max(It->second.second, Alloc.Record);
    }
  }

  void onBranch(GuardBranch Br) override {
    (void)Br;
    ++NumBranches;
  }

  bool allocInTaskAfter(TaskId Task, VarId Var, uint32_t Record) const {
    auto It = AllocSpans.find(taskVarKey(Task, Var));
    return It != AllocSpans.end() && It->second.second > Record;
  }
  bool allocInTaskBefore(TaskId Task, VarId Var, uint32_t Record) const {
    auto It = AllocSpans.find(taskVarKey(Task, Var));
    return It != AllocSpans.end() && It->second.first < Record;
  }

  bool hasUse(uint32_t V) const {
    return V < HasUseByVar.size() && HasUseByVar[V];
  }
  bool hasFree(uint32_t V) const {
    return V < HasFreeByVar.size() && HasFreeByVar[V];
  }

private:
  void growVar(uint32_t V) {
    if (V >= LastUseReadByVar.size()) {
      LastUseReadByVar.resize(V + 1, 0);
      LastFreeByVar.resize(V + 1, 0);
      HasUseByVar.resize(V + 1, 0);
      HasFreeByVar.resize(V + 1, 0);
    }
  }
};

/// One retained use: body plus ordinal plus the memoized if-guard
/// verdict (-1 unknown).
struct RetUse {
  PtrAccess A;
  uint32_t Ord = 0;
  int8_t GuardMemo = -1;
};

struct RetFree {
  PtrAccess A;
  uint32_t Ord = 0;
};

/// Everything retained for one pointer cell, dropped kind-by-kind as
/// the sweep passes each kind's horizon.
struct VarBucket {
  std::vector<RetUse> Uses;
  std::vector<RetFree> Frees;
  /// frame id -> branches of this cell in that frame (record order).
  std::unordered_map<uint64_t, std::vector<GuardBranch>> BranchesByFrame;
  size_t UseBytes = 0, FreeBytes = 0, BranchBytes = 0;

  bool empty() const {
    return Uses.empty() && Frees.empty() && BranchesByFrame.empty();
  }
};

/// First dynamic instance per static site pair, maintained online so
/// the commit phase has the access bodies without retaining one per
/// survivor.
struct MinInst {
  uint32_t UseOrd = ~0u, FreeOrd = ~0u;
  PtrAccess Use, Free;
  bool HasBodies = false;
};

/// Pass B: the streaming scan itself.
class WindowScanSink final : public AccessSink {
public:
  WindowScanSink(const Trace &T, const DetectorOptions &Options,
                 const PrePassSink &Pre, WindowedReach &WR,
                 RaceReport &Report, uint64_t Window,
                 WindowedDetectCheckpointing *Ckpt)
      : T(T), Options(Options), Pre(Pre), WR(WR), Report(Report),
        Window(Window), Ckpt(Ckpt),
        CanShed(Options.LocksetFilter || Options.IfGuardFilter) {
    NextSweepRecord = static_cast<uint64_t>(Window);
    DeadlineLimit = Options.DeadlineMillis;
    buildSweepSchedule();
    WantClock = Options.DeadlineMillis > 0 ||
                (Ckpt && Ckpt->Save && Ckpt->EveryMillis > 0);
  }

  // Scan results, read by the driver after streamAccesses returns.
  std::vector<WindowedDetectFrontier::SurvivorEntry> Survivors;
  std::map<StaticKey, MinInst> MinInstances;
  bool FiltersShed = false;
  bool OutOfTime = false;
  size_t RetainedHighWaterBytes = 0;
  size_t OverlayHighWaterBytes = 0;

  // Resume state, seeded by the driver before the scan.
  uint32_t ResumeCursor = 0;
  uint64_t ResumeSkip = 0;
  std::unordered_set<uint32_t> NeededUseOrds, NeededFreeOrds;
  std::unordered_map<uint32_t, PtrAccess> CapturedUses, CapturedFrees;

  void markShed() {
    FiltersShed = true;
    DeadlineLimit = Options.DeadlineMillis * 2;
    Report.Partial = true;
    if (Report.PartialCause.empty())
      Report.PartialCause = "filters-shed";
    if (Report.PartialDetail.empty())
      Report.PartialDetail =
          "lockset and if-guard filters shed mid-scan; extra races "
          "possible, none missing from the scanned region";
  }

  void onPtrRead(uint32_t Record, TaskId Task, VarId Var, MethodId Method,
                 uint32_t Pc, uint64_t Frame,
                 const std::vector<uint32_t> &SortedLockset) override {
    auto It = Pre.PromoByReadRecord.find(Record);
    if (It == Pre.PromoByReadRecord.end())
      return; // this read is never dereferenced: not a use
    const uint32_t Ord = It->second.Ordinal;
    const uint32_t V = Var.index();

    PtrAccess Use;
    Use.Record = Record;
    Use.Task = Task;
    Use.Var = Var;
    Use.Method = Method;
    Use.Pc = Pc;
    Use.Frame = Frame;
    Use.DerefRecord = It->second.DerefRecord;
    Use.Lockset = SortedLockset;

    if (!NeededUseOrds.empty() && NeededUseOrds.count(Ord))
      CapturedUses.emplace(Ord, Use);

    if (!Pre.hasFree(V))
      return; // the cell is never freed: no pairs, ever
    if (!OutOfTime)
      WR.advanceTo(Record);

    int8_t Memo = -1;
    auto BIt = Buckets.find(V);
    if (BIt != Buckets.end()) {
      // Pairs whose later element is this use, against every earlier
      // free of the cell (all still retained: the free sub-bucket's
      // horizon is the cell's last promoted read, i.e. >= Record).
      for (const RetFree &F : BIt->second.Frees) {
        handlePair(Use, Ord, Memo, F.A, F.Ord, Record);
        if (OutOfTime)
          return;
      }
    }
    if (Pre.LastFreeByVar[V] > Record) {
      // Future frees of this cell exist: retain the use until the last
      // of them has streamed by.
      VarBucket &B = Buckets[V];
      size_t Bytes = sizeof(RetUse) + Use.Lockset.capacity() * sizeof(uint32_t);
      B.UseBytes += Bytes;
      RetainedBytes += Bytes;
      B.Uses.push_back(RetUse{std::move(Use), Ord, Memo});
      noteOverlay();
    }
  }

  void onFree(PtrAccess Free) override {
    const uint32_t Ord = NextFreeOrd++;
    const uint32_t V = Free.Var.index();
    if (!NeededFreeOrds.empty() && NeededFreeOrds.count(Ord))
      CapturedFrees.emplace(Ord, Free);
    if (!Pre.hasUse(V))
      return; // the cell is never used: no pairs, ever
    if (!OutOfTime)
      WR.advanceTo(Free.Record);

    auto BIt = Buckets.find(V);
    if (BIt != Buckets.end()) {
      // Pairs whose later element is this free, against every retained
      // earlier use of the cell.
      for (RetUse &U : BIt->second.Uses) {
        handlePair(U.A, U.Ord, U.GuardMemo, Free, Ord, Free.Record);
        if (OutOfTime)
          return;
      }
    }
    if (Pre.LastUseReadByVar[V] > Free.Record) {
      VarBucket &B = Buckets[V];
      size_t Bytes =
          sizeof(RetFree) + Free.Lockset.capacity() * sizeof(uint32_t);
      B.FreeBytes += Bytes;
      RetainedBytes += Bytes;
      B.Frees.push_back(RetFree{std::move(Free), Ord});
      noteOverlay();
    }
  }

  void onBranch(GuardBranch Br) override {
    if (!Br.Var.isValid())
      return; // unmatched branches never guard anything
    const uint32_t V = Br.Var.index();
    if (!Pre.hasUse(V) || !Pre.hasFree(V))
      return; // no pairs on this cell: isGuarded is never consulted
    if (Br.Record >= Pre.LastUseReadByVar[V])
      return; // guards only reads after it; none are coming
    VarBucket &B = Buckets[V];
    B.BranchBytes += sizeof(GuardBranch);
    RetainedBytes += sizeof(GuardBranch);
    B.BranchesByFrame[Br.Frame].push_back(std::move(Br));
    noteOverlay();
  }

  bool onRecordDone(uint32_t Record) override {
    PairsDoneThisRecord = 0;
    if (static_cast<uint64_t>(Record) >= NextSweepRecord) {
      NextSweepRecord = static_cast<uint64_t>(Record) + Window;
      if (!OutOfTime) {
        WR.advanceTo(Record);
        sweep(Record);
        noteOverlay();
      }
    }
    return !OutOfTime;
  }

  /// Snapshot at the next unprocessed pair of \p Record.
  WindowedDetectFrontier freeze(uint32_t Record, uint64_t Done) const {
    WindowedDetectFrontier F;
    F.CursorRecord = Record;
    F.PairsDoneAtCursor = Done;
    F.FiltersShed = FiltersShed;
    F.Filters = Report.Filters;
    F.Survivors = Survivors;
    return F;
  }

private:
  void buildSweepSchedule() {
    for (uint32_t V = 0,
                  E = static_cast<uint32_t>(Pre.LastUseReadByVar.size());
         V != E; ++V) {
      if (!Pre.HasUseByVar[V] || !Pre.HasFreeByVar[V])
        continue; // nothing of this cell is ever retained
      uint32_t LastUse = Pre.LastUseReadByVar[V];
      uint32_t LastFree = Pre.LastFreeByVar[V];
      // Frees serve use-reads up to the last one; uses serve frees up
      // to the last one; branches serve if-guard checks at any pair
      // admission, bounded by the later of the two.
      Schedule.push_back({LastUse, V, KindFrees});
      Schedule.push_back({LastFree, V, KindUses});
      Schedule.push_back({std::max(LastUse, LastFree), V, KindBranches});
    }
    std::sort(Schedule.begin(), Schedule.end(),
              [](const SweepEntry &A, const SweepEntry &B) {
                return std::tie(A.Horizon, A.Var, A.Kind) <
                       std::tie(B.Horizon, B.Var, B.Kind);
              });
  }

  void sweep(uint32_t Record) {
    while (SweepPtr < Schedule.size() &&
           Schedule[SweepPtr].Horizon <= Record) {
      const SweepEntry &E = Schedule[SweepPtr++];
      auto It = Buckets.find(E.Var);
      if (It == Buckets.end())
        continue;
      VarBucket &B = It->second;
      switch (E.Kind) {
      case KindFrees:
        RetainedBytes -= B.FreeBytes;
        B.FreeBytes = 0;
        B.Frees.clear();
        B.Frees.shrink_to_fit();
        break;
      case KindUses:
        RetainedBytes -= B.UseBytes;
        B.UseBytes = 0;
        B.Uses.clear();
        B.Uses.shrink_to_fit();
        break;
      case KindBranches:
        RetainedBytes -= B.BranchBytes;
        B.BranchBytes = 0;
        B.BranchesByFrame.clear();
        break;
      }
      if (B.empty())
        Buckets.erase(It);
    }
  }

  void noteOverlay() {
    RetainedHighWaterBytes = std::max(RetainedHighWaterBytes, RetainedBytes);
    size_t Overlay = RetainedBytes +
                     WR.liveRows() * WR.numChains() * sizeof(uint32_t);
    OverlayHighWaterBytes = std::max(OverlayHighWaterBytes, Overlay);
  }

  bool isGuarded(const PtrAccess &Use, int8_t &Memo) {
    if (Memo >= 0)
      return Memo != 0;
    bool Guarded = false;
    auto BIt = Buckets.find(Use.Var.index());
    if (BIt != Buckets.end()) {
      auto FIt = BIt->second.BranchesByFrame.find(Use.Frame);
      if (FIt != BIt->second.BranchesByFrame.end()) {
        for (const GuardBranch &Br : FIt->second) {
          if (branchGuardsUse(T, Br, Use)) {
            Guarded = true;
            break;
          }
        }
      }
    }
    Memo = Guarded ? 1 : 0;
    return Guarded;
  }

  void pollClock(uint32_t Record, uint64_t Done) {
    double Elapsed = Clock.elapsedWallMillis();
    if (Options.DeadlineMillis > 0 && Elapsed > DeadlineLimit) {
      if (!FiltersShed && CanShed) {
        markShed();
        return;
      }
      if (Ckpt && Ckpt->Save)
        Ckpt->Save(freeze(Record, Done));
      OutOfTime = true;
      return;
    }
    if (Ckpt && Ckpt->Save && Ckpt->EveryMillis > 0 &&
        Elapsed - LastSaveMs >= Ckpt->EveryMillis) {
      LastSaveMs = Elapsed;
      Ckpt->Save(freeze(Record, Done));
    }
  }

  /// Evaluates one (use, free) pair at its admission record -- the
  /// same filter pipeline, in the same order, as the batch evalPair.
  void handlePair(const PtrAccess &Use, uint32_t UseOrd, int8_t &Memo,
                  const PtrAccess &Free, uint32_t FreeOrd,
                  uint32_t AdmitRecord) {
    if (OutOfTime)
      return;
    // Resume replay: pairs admitted before the frozen cursor (and the
    // first PairsDoneAtCursor pairs at it) are already reflected in the
    // restored counters and survivors.
    if (AdmitRecord < ResumeCursor ||
        (AdmitRecord == ResumeCursor && PairsDoneThisRecord < ResumeSkip)) {
      ++PairsDoneThisRecord;
      return;
    }
    if (WantClock && ++PairsSinceCheck >= 4096) {
      PairsSinceCheck = 0;
      pollClock(AdmitRecord, PairsDoneThisRecord);
      if (OutOfTime)
        return;
    }
    ++PairsDoneThisRecord;

    FilterCounters &C = Report.Filters;
    ++C.CandidatePairs;
    if (Use.Task == Free.Task) {
      ++C.SameTask;
      return;
    }
    if (WR.orderedCrossTask(Use.Record, Free.Record)) {
      ++C.OrderedByHb;
      return;
    }
    if (Options.LocksetFilter && !FiltersShed &&
        locksetsIntersect(Use.Lockset, Free.Lockset)) {
      ++C.LocksetProtected;
      return;
    }
    bool SameLooper = sameLooperEvents(T, Use.Task, Free.Task);
    if (SameLooper) {
      if (Options.IfGuardFilter && !FiltersShed && isGuarded(Use, Memo)) {
        ++C.IfGuardFiltered;
        return;
      }
      if (Options.IntraEventAllocFilter &&
          (Pre.allocInTaskAfter(Free.Task, Free.Var, Free.Record) ||
           Pre.allocInTaskBefore(Use.Task, Use.Var, Use.Record))) {
        ++C.IntraEventAlloc;
        return;
      }
    }

    Survivors.push_back({UseOrd, FreeOrd, Use.Record, Free.Record,
                         Use.Method.value(), Use.Pc, Free.Method.value(),
                         Free.Pc, static_cast<uint8_t>(SameLooper)});
    StaticKey Key{Use.Method.value(), Use.Pc, Free.Method.value(), Free.Pc};
    MinInst &M = MinInstances[Key];
    if (std::make_pair(UseOrd, FreeOrd) < std::make_pair(M.UseOrd, M.FreeOrd)) {
      M.UseOrd = UseOrd;
      M.FreeOrd = FreeOrd;
      M.Use = Use;
      M.Free = Free;
      M.HasBodies = true;
    }
  }

  enum Kind : uint8_t { KindFrees = 0, KindUses = 1, KindBranches = 2 };
  struct SweepEntry {
    uint32_t Horizon;
    uint32_t Var;
    uint8_t Kind;
  };

  const Trace &T;
  const DetectorOptions &Options;
  const PrePassSink &Pre;
  WindowedReach &WR;
  RaceReport &Report;
  const uint64_t Window;
  WindowedDetectCheckpointing *Ckpt;
  const bool CanShed;

  std::unordered_map<uint32_t, VarBucket> Buckets;
  std::vector<SweepEntry> Schedule;
  size_t SweepPtr = 0;
  uint64_t NextSweepRecord = 0;
  size_t RetainedBytes = 0;
  uint32_t NextFreeOrd = 0;
  uint64_t PairsDoneThisRecord = 0;

  Timer Clock;
  bool WantClock = false;
  double DeadlineLimit = 0;
  double LastSaveMs = 0;
  uint64_t PairsSinceCheck = 0;
};

/// Fallback body capture for the rare resume-then-cut-again corner: a
/// restored survivor's first instance may stream after the new cut, so
/// its body was never captured.  One targeted pass fills the gaps and
/// stops as soon as everything is in hand.
class CaptureSink final : public AccessSink {
public:
  CaptureSink(const PrePassSink &Pre,
              const std::unordered_set<uint32_t> &WantUses,
              const std::unordered_set<uint32_t> &WantFrees,
              std::unordered_map<uint32_t, PtrAccess> &Uses,
              std::unordered_map<uint32_t, PtrAccess> &Frees)
      : Pre(Pre), WantUses(WantUses), WantFrees(WantFrees), Uses(Uses),
        Frees(Frees), Remaining(WantUses.size() + WantFrees.size()) {}

  void onPtrRead(uint32_t Record, TaskId Task, VarId Var, MethodId Method,
                 uint32_t Pc, uint64_t Frame,
                 const std::vector<uint32_t> &SortedLockset) override {
    auto It = Pre.PromoByReadRecord.find(Record);
    if (It == Pre.PromoByReadRecord.end())
      return;
    uint32_t Ord = It->second.Ordinal;
    if (!WantUses.count(Ord) || Uses.count(Ord))
      return;
    PtrAccess Use;
    Use.Record = Record;
    Use.Task = Task;
    Use.Var = Var;
    Use.Method = Method;
    Use.Pc = Pc;
    Use.Frame = Frame;
    Use.DerefRecord = It->second.DerefRecord;
    Use.Lockset = SortedLockset;
    Uses.emplace(Ord, std::move(Use));
    --Remaining;
  }

  void onFree(PtrAccess Free) override {
    uint32_t Ord = NextFreeOrd++;
    if (WantFrees.count(Ord) && !Frees.count(Ord)) {
      Frees.emplace(Ord, std::move(Free));
      --Remaining;
    }
  }

  bool onRecordDone(uint32_t) override { return Remaining > 0; }

private:
  const PrePassSink &Pre;
  const std::unordered_set<uint32_t> &WantUses;
  const std::unordered_set<uint32_t> &WantFrees;
  std::unordered_map<uint32_t, PtrAccess> &Uses;
  std::unordered_map<uint32_t, PtrAccess> &Frees;
  uint32_t NextFreeOrd = 0;
  size_t Remaining = 0;
};

} // namespace

RaceReport cafa::detectUseFreeRacesWindowed(
    const Trace &T, const TaskIndex &Index, const HbIndex &Hb,
    const DetectorOptions &Options, uint64_t WindowEvents,
    const DerefResolver *Resolver, WindowedDetectStats *Stats,
    WindowedDetectCheckpointing *Ckpt) {
  assert(WindowEvents != 0 && WindowEvents != DetectorOptions::WindowOff &&
         "callers resolve the window first");
  RaceReport Report;
  if (Hb.degradation().DeadlineExceeded) {
    // Same preamble as the batch detector: a cut fixpoint
    // under-approximates the relation, so the report is provisional.
    Report.Partial = true;
    Report.PartialCause = "hb-deadline";
    const std::vector<std::string> &Rules =
        Hb.degradation().UnsaturatedRules;
    if (!Rules.empty()) {
      Report.PartialDetail = "unsaturated rules:";
      for (size_t I = 0; I != Rules.size(); ++I)
        Report.PartialDetail += (I ? ", " : " ") + Rules[I];
    }
  }
  // Whether classification will run: decided at entry exactly like the
  // batch detector (which constructs the conventional model up front);
  // the construction itself is deferred to the commit phase so the
  // scan runs with the overlay alone resident.
  const bool WantConv = Options.Classify && !Report.Partial;

  // Pass A: horizons and ordinals, no bodies.
  PrePassSink Pre;
  StreamExtractCounts Counts = streamAccesses(T, Resolver, Pre);

  WindowedReach WR(Hb.graph(), Pre.QueryHorizon);
  WindowScanSink Scan(T, Options, Pre, WR, Report, WindowEvents, Ckpt);

  // Resume: validate the frontier's survivors against the pass-A
  // ordinals; any mismatch silently degrades to a full scan.
  if (Ckpt && Ckpt->Resume) {
    const WindowedDetectFrontier &R = *Ckpt->Resume;
    bool Ok = R.CursorRecord <= T.numRecords();
    for (const WindowedDetectFrontier::SurvivorEntry &S : R.Survivors) {
      if (S.UseOrd >= Pre.UseRecordByOrd.size() ||
          Pre.UseRecordByOrd[S.UseOrd] != S.UseRecord ||
          S.FreeOrd >= Pre.FreeRecordByOrd.size() ||
          Pre.FreeRecordByOrd[S.FreeOrd] != S.FreeRecord) {
        Ok = false;
        break;
      }
    }
    if (Ok) {
      Scan.ResumeCursor = R.CursorRecord;
      Scan.ResumeSkip = R.PairsDoneAtCursor;
      Scan.Survivors = R.Survivors;
      Report.Filters = R.Filters;
      if (R.FiltersShed)
        Scan.markShed();
      // Seed the per-key first instances; their bodies stream by
      // during the replay and are captured by ordinal.
      for (const WindowedDetectFrontier::SurvivorEntry &S : R.Survivors) {
        StaticKey Key{S.UseMethod, S.UsePc, S.FreeMethod, S.FreePc};
        MinInst &M = Scan.MinInstances[Key];
        if (std::make_pair(S.UseOrd, S.FreeOrd) <
            std::make_pair(M.UseOrd, M.FreeOrd)) {
          M.UseOrd = S.UseOrd;
          M.FreeOrd = S.FreeOrd;
          M.HasBodies = false;
        }
      }
      for (const auto &[Key, M] : Scan.MinInstances) {
        (void)Key;
        Scan.NeededUseOrds.insert(M.UseOrd);
        Scan.NeededFreeOrds.insert(M.FreeOrd);
      }
      Ckpt->ResumeAccepted = true;
    }
  }

  // Pass B: the scan.
  streamAccesses(T, Resolver, Scan);

  if (Scan.OutOfTime) {
    Report.Partial = true;
    if (Report.PartialCause.empty() ||
        Report.PartialCause == "filters-shed")
      Report.PartialCause = "detect-deadline";
    if (Scan.FiltersShed && Report.PartialCause == "detect-deadline")
      Report.PartialDetail =
          "filters shed, then the extended budget expired; scan cut";
  }

  // Fill any first-instance bodies the replay captured; chase the rare
  // stragglers (resumed survivors cut off again before their records)
  // with one targeted pass.
  {
    std::unordered_set<uint32_t> MissUses, MissFrees;
    for (auto &[Key, M] : Scan.MinInstances) {
      (void)Key;
      if (M.HasBodies)
        continue;
      if (!Scan.CapturedUses.count(M.UseOrd))
        MissUses.insert(M.UseOrd);
      if (!Scan.CapturedFrees.count(M.FreeOrd))
        MissFrees.insert(M.FreeOrd);
    }
    if (!MissUses.empty() || !MissFrees.empty()) {
      CaptureSink Capture(Pre, MissUses, MissFrees, Scan.CapturedUses,
                          Scan.CapturedFrees);
      streamAccesses(T, Resolver, Capture);
    }
    for (auto &[Key, M] : Scan.MinInstances) {
      (void)Key;
      if (M.HasBodies)
        continue;
      M.Use = Scan.CapturedUses.at(M.UseOrd);
      M.Free = Scan.CapturedFrees.at(M.FreeOrd);
      M.HasBodies = true;
    }
  }

  // Commit: sort the survivors into the batch scan's order (use-major
  // by promotion ordinal, frees in record order within) and replay the
  // batch commit -- dedup, dynamic counting, Table 1 classification.
  std::sort(Scan.Survivors.begin(), Scan.Survivors.end(),
            [](const WindowedDetectFrontier::SurvivorEntry &A,
               const WindowedDetectFrontier::SurvivorEntry &B) {
              return std::tie(A.UseOrd, A.FreeOrd) <
                     std::tie(B.UseOrd, B.FreeOrd);
            });
  std::unique_ptr<HbIndex> ConvHb;
  std::map<StaticKey, size_t> Dedup;
  for (const WindowedDetectFrontier::SurvivorEntry &S : Scan.Survivors) {
    StaticKey Key{S.UseMethod, S.UsePc, S.FreeMethod, S.FreePc};
    auto It = Dedup.find(Key);
    if (It != Dedup.end()) {
      ++Report.Races[It->second].DynamicCount;
      continue;
    }
    const MinInst &M = Scan.MinInstances.at(Key);
    assert(M.UseOrd == S.UseOrd && M.FreeOrd == S.FreeOrd &&
           "sorted first survivor is the per-key minimum");
    UseFreeRace Race;
    Race.Use = M.Use;
    Race.Free = M.Free;
    if (S.SameLooper) {
      Race.Category = RaceCategory::IntraThread;
    } else {
      if (WantConv && !ConvHb) {
        // Deferred conventional model, BFS-backed: answers are
        // oracle-independent and the query count is one per
        // first-instance race, so the O(N^2) closure never builds.
        HbOptions ConvOpts = Options.Hb;
        ConvOpts.Model = OrderingModel::Conventional;
        ConvOpts.Reach = ReachMode::Bfs;
        ConvHb = std::make_unique<HbIndex>(T, Index, ConvOpts);
      }
      Race.Category = ConvHb && !ConvHb->ordered(S.UseRecord, S.FreeRecord)
                          ? RaceCategory::Conventional
                          : RaceCategory::InterThread;
    }
    Dedup.emplace(Key, Report.Races.size());
    Report.Races.push_back(std::move(Race));
  }

  if (Stats) {
    Stats->WindowEvents = WindowEvents;
    Stats->Chains = WR.numChains();
    Stats->ReachHighWaterRows = WR.highWaterRows();
    Stats->ReachHighWaterBytes = WR.highWaterRowBytes();
    Stats->RetainedHighWaterBytes = Scan.RetainedHighWaterBytes;
    Stats->OverlayHighWaterBytes = Scan.OverlayHighWaterBytes;
    Stats->NumUses = Pre.UseRecordByOrd.size();
    Stats->NumFrees = Pre.FreeRecordByOrd.size();
    Stats->NumAllocs = Pre.NumAllocs;
    Stats->NumBranches = Pre.NumBranches;
    Stats->UnmatchedReads = Counts.UnmatchedReads;
    Stats->UnmatchedDerefs = Counts.UnmatchedDerefs;
  }
  return Report;
}
